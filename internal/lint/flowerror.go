package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// FlowErrorAnalyzer enforces the repo's error contract:
//
//   - sentinel errors (Err* package variables of type error) must be matched
//     with errors.Is, never == or != — every public error crosses at least
//     one %w/FlowError wrapping layer, so identity comparison silently stops
//     matching. This rule runs everywhere, including test files.
//   - in the root package (the public API boundary), an exported function
//     must not return a bare errors.New/fmt.Errorf value: it must be wrapped
//     in a *FlowError (via flowErr or a FlowError literal) so callers can
//     match the stage.
//   - fmt.Errorf calls that format an error argument must use %w, not %v or
//     %s, or errors.Is/As stop seeing the cause.
//   - flowErr calls and FlowError literals must use a named Stage* constant,
//     not a numeric literal.
var FlowErrorAnalyzer = &Analyzer{
	Name: "flowerror",
	Doc:  "enforce errors.Is for sentinels, FlowError wrapping at the API boundary, and %w wrapping",
	Run:  runFlowError,
}

func runFlowError(pass *Pass) {
	for _, file := range pass.Files {
		checkSentinelComparisons(pass, file)
		if pass.testFiles[file] {
			continue
		}
		checkErrorfWrapping(pass, file)
		if isRootPkg(pass.PkgPath) {
			checkAPIBoundaryReturns(pass, file)
			checkFlowStageArgs(pass, file)
		}
	}
}

// checkSentinelComparisons flags err == ErrFoo / err != ErrFoo where either
// side is a sentinel error variable.
func checkSentinelComparisons(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			if name, ok := sentinelErrorName(pass.Info, side); ok {
				pass.Reportf(bin.Pos(), "comparison with sentinel %s using %s: use errors.Is — sentinels cross wrapping layers", name, bin.Op)
				return true
			}
		}
		return true
	})
}

// sentinelErrorName reports whether e names a package-level error variable
// following the Err* naming convention (possibly package-qualified).
func sentinelErrorName(info *types.Info, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch v := e.(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return "", false
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || obj.Parent() == nil || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	if !strings.HasPrefix(obj.Name(), "Err") {
		return "", false
	}
	return obj.Name(), isErrorType(obj.Type())
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// checkErrorfWrapping flags fmt.Errorf calls that pass an error-typed
// argument but have no %w verb in their (constant) format string.
func checkErrorfWrapping(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := selectorCall(pass.Info, call, "fmt"); !ok || name != "Errorf" {
			return true
		}
		if len(call.Args) < 2 {
			return true
		}
		format, ok := constantString(pass.Info, call.Args[0])
		if !ok || strings.Contains(format, "%w") {
			return true
		}
		for _, arg := range call.Args[1:] {
			tv, ok := pass.Info.Types[arg]
			if ok && tv.Type != nil && isErrorType(tv.Type) {
				pass.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w: the cause becomes invisible to errors.Is/As")
				return true
			}
		}
		return true
	})
}

func constantString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	s, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return "", false
	}
	return s, true
}

// checkAPIBoundaryReturns flags `return ... errors.New(...)` and
// `return ... fmt.Errorf(...)` in exported root-package functions: errors
// crossing the public boundary must be stage-tagged *FlowErrors.
func checkAPIBoundaryReturns(pass *Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || !fn.Name.IsExported() {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				call, ok := res.(*ast.CallExpr)
				if !ok {
					continue
				}
				if name, ok := selectorCall(pass.Info, call, "errors"); ok && name == "New" {
					pass.Reportf(res.Pos(), "exported %s returns a bare errors.New error: wrap it in a *FlowError (flowErr) so callers can match the stage", fn.Name.Name)
				}
				if name, ok := selectorCall(pass.Info, call, "fmt"); ok && name == "Errorf" {
					pass.Reportf(res.Pos(), "exported %s returns a bare fmt.Errorf error: wrap it in a *FlowError (flowErr) so callers can match the stage", fn.Name.Name)
				}
			}
			return true
		})
	}
}

// checkFlowStageArgs flags flowErr calls and FlowError literals whose stage
// is a numeric literal instead of a named Stage* constant.
func checkFlowStageArgs(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "flowErr" && len(v.Args) > 0 {
				if isNumericLiteral(v.Args[0]) {
					pass.Reportf(v.Args[0].Pos(), "flowErr called with a numeric stage: use a named Stage* constant")
				}
			}
		case *ast.CompositeLit:
			if isFlowErrorLit(pass.Info, v) {
				for _, el := range v.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Stage" && isNumericLiteral(kv.Value) {
						pass.Reportf(kv.Value.Pos(), "FlowError literal with a numeric Stage: use a named Stage* constant")
					}
				}
			}
		}
		return true
	})
}

func isNumericLiteral(e ast.Expr) bool {
	if p, ok := e.(*ast.ParenExpr); ok {
		e = p.X
	}
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.INT
}

func isFlowErrorLit(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && named.Obj().Name() == "FlowError"
}
