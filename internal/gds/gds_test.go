package gds

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/layout"
)

func TestReal8RoundTrip(t *testing.T) {
	vals := []float64{0, 1, -1, 1e-9, 1e-3, 0.25, 1234.5, -6.25e-7, 16, 1.0 / 16}
	for _, v := range vals {
		got := decodeReal8(encodeReal8(v))
		if v == 0 {
			if got != 0 {
				t.Errorf("zero encoded to %g", got)
			}
			continue
		}
		if math.Abs(got-v) > math.Abs(v)*1e-14 {
			t.Errorf("real8 roundtrip %g -> %g", v, got)
		}
	}
}

func TestReal8RoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		v := (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(20)-10))
		if v == 0 {
			return true
		}
		got := decodeReal8(encodeReal8(v))
		return math.Abs(got-v) <= math.Abs(v)*1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	l := layout.New("TESTCHIP")
	l.Add(geom.R(0, 0, 100, 1000))
	l.AddOnLayer(geom.R(-500, -700, -100, -200), 7)
	l.Add(geom.R(1<<30, 0, 1<<30+50, 60))
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "TESTCHIP" {
		t.Errorf("name = %q", got.Name)
	}
	if len(got.Features) != len(l.Features) {
		t.Fatalf("features = %d, want %d", len(got.Features), len(l.Features))
	}
	for i := range l.Features {
		if got.Features[i] != l.Features[i] {
			t.Errorf("feature %d: %+v != %+v", i, got.Features[i], l.Features[i])
		}
	}
}

func TestEmptyLayoutRoundTrip(t *testing.T) {
	l := layout.New("")
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Features) != 0 || got.Name != "TOP" {
		t.Errorf("got %+v", got)
	}
}

func TestCoordinateRangeCheck(t *testing.T) {
	l := layout.New("big")
	l.Add(geom.R(0, 0, int64(math.MaxInt32)+10, 100))
	var buf bytes.Buffer
	if err := Write(&buf, l); err == nil {
		t.Fatal("out-of-range coordinates must be rejected")
	}
}

func TestReadErrors(t *testing.T) {
	// Truncated stream.
	l := layout.New("x")
	l.Add(geom.R(0, 0, 10, 10))
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 5, len(full) / 2, len(full) - 3} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	// Garbage.
	if _, err := Read(bytes.NewReader([]byte{0, 8, 0x99, 0, 1, 2, 3, 4})); err == nil {
		t.Error("stream without HEADER must fail")
	}
	// Empty.
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream must fail")
	}
}

func TestNonRectangularBoundaryRejected(t *testing.T) {
	// Handcraft a triangle boundary.
	var buf bytes.Buffer
	w := func(b ...byte) { buf.Write(b) }
	rec := func(rt, dt byte, payload []byte) {
		n := 4 + len(payload)
		w(byte(n>>8), byte(n), rt, dt)
		buf.Write(payload)
	}
	rec(recHEADER, dtInt16, []byte{2, 88})
	units := append(encodeReal8(1e-3), encodeReal8(1e-9)...)
	rec(recUNITS, dtReal8, units)
	rec(recBOUNDARY, dtNone, nil)
	xy := make([]byte, 0, 32)
	pts := []int32{0, 0, 100, 0, 50, 100, 0, 0}
	for _, v := range pts {
		xy = append(xy, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	rec(recXY, dtInt32, xy)
	rec(recENDEL, dtNone, nil)
	rec(recENDLIB, dtNone, nil)
	if _, err := Read(&buf); err == nil {
		t.Fatal("triangle boundary must be rejected")
	}
}

func TestManyFeaturesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	l := layout.New("MANY")
	for i := 0; i < 5000; i++ {
		x := int64(rng.Intn(1 << 20))
		y := int64(rng.Intn(1 << 20))
		l.AddOnLayer(geom.R(x, y, x+int64(rng.Intn(1000)+1), y+int64(rng.Intn(1000)+1)), rng.Intn(64))
	}
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Features) != 5000 {
		t.Fatalf("features = %d", len(got.Features))
	}
	for i := range l.Features {
		if got.Features[i] != l.Features[i] {
			t.Fatalf("feature %d mismatch", i)
		}
	}
}

// writeRawBoundary emits a minimal GDS stream containing one boundary with
// the given vertices.
func writeRawBoundary(pts []int32) *bytes.Buffer {
	var buf bytes.Buffer
	rec := func(rt, dt byte, payload []byte) {
		n := 4 + len(payload)
		buf.Write([]byte{byte(n >> 8), byte(n), rt, dt})
		buf.Write(payload)
	}
	rec(recHEADER, dtInt16, []byte{2, 88})
	units := append(encodeReal8(1e-3), encodeReal8(1e-9)...)
	rec(recUNITS, dtReal8, units)
	rec(recBOUNDARY, dtNone, nil)
	xy := make([]byte, 0, 4*len(pts))
	for _, v := range pts {
		xy = append(xy, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	rec(recXY, dtInt32, xy)
	rec(recENDEL, dtNone, nil)
	rec(recENDLIB, dtNone, nil)
	return &buf
}

func TestRectilinearPolygonBoundaryDecomposed(t *testing.T) {
	// L-shaped boundary: must come back as two rectangles covering it.
	buf := writeRawBoundary([]int32{
		0, 0, 200, 0, 200, 100, 100, 100, 100, 300, 0, 300, 0, 0,
	})
	l, err := Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Features) != 2 {
		t.Fatalf("features = %d, want 2 (decomposed L)", len(l.Features))
	}
	var area int64
	for _, f := range l.Features {
		area += f.Rect.Area()
	}
	if area != 200*100+100*200 {
		t.Fatalf("area = %d", area)
	}
}

func TestPolygonBoundaryCrossShape(t *testing.T) {
	// Plus/cross shape: 3 slabs.
	buf := writeRawBoundary([]int32{
		100, 0, 200, 0, 200, 100, 300, 100, 300, 200,
		200, 200, 200, 300, 100, 300, 100, 200, 0, 200,
		0, 100, 100, 100, 100, 0,
	})
	l, err := Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	var area int64
	for _, f := range l.Features {
		area += f.Rect.Area()
	}
	if area != 100*100*5 {
		t.Fatalf("cross area = %d, want %d", area, 100*100*5)
	}
}
