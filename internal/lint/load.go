package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, fully type-checked package.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
	Path      string
	Dir       string
	testFiles map[*ast.File]bool
}

// Loader parses and type-checks packages with the standard library's source
// importer, so the suite needs no pre-built export data and no external
// dependencies. One Loader shares a FileSet and an import cache across every
// package it loads; loading the whole repo type-checks each dependency once.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader with a fresh FileSet and import cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Load parses and type-checks the package in dir under the given import
// path. Non-test files and in-package _test.go files are included; external
// test packages (package foo_test files) are skipped — they are a separate
// package. Type-check errors are load failures: the suite analyzes only code
// that compiles.
func (l *Loader) Load(dir, path string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	var files []*ast.File
	testFiles := map[*ast.File]bool{}
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if !isTest {
			if pkgName == "" {
				pkgName = f.Name.Name
			} else if f.Name.Name != pkgName {
				return nil, fmt.Errorf("%s: multiple packages in %s (%s and %s)", name, dir, pkgName, f.Name.Name)
			}
		}
		files = append(files, f)
		testFiles[f] = isTest
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	// Resolve the package name from non-test files, then drop external test
	// package files (package <name>_test).
	if pkgName == "" {
		pkgName = files[0].Name.Name
	}
	kept := files[:0]
	for _, f := range files {
		if f.Name.Name != pkgName {
			delete(testFiles, f)
			continue
		}
		kept = append(kept, f)
	}
	files = kept

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		Path:      path,
		Dir:       dir,
		testFiles: testFiles,
	}, nil
}

// RepoPackages enumerates every package directory of the module rooted at
// root (identified by its go.mod), as (dir, importPath) pairs in stable
// order. testdata trees, hidden directories, and directories without Go
// files are skipped — the same set `go list ./...` would report.
func RepoPackages(root string) ([][2]string, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	var out [][2]string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		out = append(out, [2]string{p, ip})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i][1] < out[j][1] })
	return out, nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// ModulePath reads the module path out of root/go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}
