// Package graph exercises the suppression machinery: a reasoned allow
// silences a finding, a reasonless allow is itself a finding, and an allow
// naming an unknown analyzer is a finding. Loaded under
// "repro/internal/graph" so the determinism analyzer applies.
package graph

// Allowed carries a reasoned allow: the append finding is suppressed.
func Allowed(m map[int]int) []int {
	var out []int
	for k := range m {
		//aapsmvet:allow determinism demo: callers treat the result as a set
		out = append(out, k)
	}
	return out
}

//aapsmvet:allow determinism
func MissingReason() {}

//aapsmvet:allow nosuchanalyzer the analyzer name is misspelled
func UnknownAnalyzer() {}
