package persist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"
)

// TestFaultStoreDeterministic: two wrappers with the same seed and config
// make identical fault decisions for identical operation sequences.
func TestFaultStoreDeterministic(t *testing.T) {
	cfg := FaultConfig{Seed: 42, WriteFail: 0.3, WriteENOSPC: 0.1, WriteTorn: 0.1, ReadFail: 0.2, ReadCorrupt: 0.2}
	run := func() ([]string, FaultStats) {
		fs := NewFaultStore(NewMemStore(), cfg)
		var outcomes []string
		data := Encode(sampleState(false))
		for i := 0; i < 200; i++ {
			ref := Ref{ID: fmt.Sprintf("s-%d", i), Hash: "aa"}
			if err := fs.Put(ref, data); err != nil {
				outcomes = append(outcomes, fmt.Sprintf("put%d:%v", i, err))
			}
			got, err := fs.Get(ref)
			switch {
			case err != nil:
				outcomes = append(outcomes, fmt.Sprintf("get%d:%v", i, err))
			case !bytes.Equal(got, data):
				outcomes = append(outcomes, fmt.Sprintf("get%d:corrupt", i))
			}
		}
		return outcomes, fs.Stats()
	}
	o1, s1 := run()
	o2, s2 := run()
	if !reflect.DeepEqual(o1, o2) {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", o1, o2)
	}
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	if s1.WriteFails == 0 || s1.ENOSPCs == 0 || s1.TornWrites == 0 || s1.ReadFails == 0 || s1.ReadCorrupts == 0 {
		t.Fatalf("expected every fault class at these rates over 200 ops: %+v", s1)
	}
}

// TestFaultStoreErrorIdentity: injected faults are recognizable via
// ErrInjected, and ENOSPC additionally satisfies errors.Is(err, ENOSPC).
func TestFaultStoreErrorIdentity(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), FaultConfig{Seed: 1, WriteENOSPC: 1})
	err := fs.Put(Ref{ID: "x-1", Hash: "aa"}, []byte("d"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC identity, got %v", err)
	}

	fs2 := NewFaultStore(NewMemStore(), FaultConfig{})
	sentinel := errors.New("boom")
	fs2.FailNextPuts(2, sentinel)
	for i := 0; i < 2; i++ {
		err := fs2.Put(Ref{ID: "y-1", Hash: "bb"}, []byte("d"))
		if !errors.Is(err, ErrInjected) || !errors.Is(err, sentinel) {
			t.Fatalf("forced fail %d: %v", i, err)
		}
	}
	if err := fs2.Put(Ref{ID: "y-1", Hash: "bb"}, []byte("d")); err != nil {
		t.Fatalf("after forced window: %v", err)
	}
	if st := fs2.Stats(); st.ForcedFaults != 2 {
		t.Fatalf("forced fault count: %+v", st)
	}
}

// TestFaultStoreTornWrite: a torn Put really persists a strict prefix
// through the inner store, and the codec rejects the artifact.
func TestFaultStoreTornWrite(t *testing.T) {
	inner := NewMemStore()
	fs := NewFaultStore(inner, FaultConfig{Seed: 3})
	fs.TearNextPuts(1)
	data := Encode(sampleState(true))
	ref := Ref{ID: "torn-1", Hash: "cc"}
	if err := fs.Put(ref, data); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn put: %v", err)
	}
	got, err := inner.Get(ref)
	if err != nil {
		t.Fatalf("torn artifact missing: %v", err)
	}
	if len(got) == 0 || len(got) >= len(data) || !bytes.Equal(got, data[:len(got)]) {
		t.Fatalf("torn artifact is not a strict prefix: %d of %d bytes", len(got), len(data))
	}
	if _, err := Decode(got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn artifact decoded: %v", err)
	}
	if !errors.Is(Validate(got), ErrCorrupt) {
		t.Fatal("Validate accepted a torn artifact")
	}
}

// TestFaultStoreReadCorruption: corrupted reads flip exactly one byte, and
// the codec checksum catches it.
func TestFaultStoreReadCorruption(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), FaultConfig{Seed: 5, ReadCorrupt: 1})
	data := Encode(sampleState(false))
	ref := Ref{ID: "rc-1", Hash: "dd"}
	if err := fs.Put(ref, data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Get(ref)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != data[i] {
			diff++
		}
	}
	if len(got) != len(data) || diff != 1 {
		t.Fatalf("want exactly one flipped byte, got %d (len %d vs %d)", diff, len(got), len(data))
	}
	if _, err := Decode(got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted read decoded: %v", err)
	}
}

// TestFaultStoreLatency: injected latency delays operations.
func TestFaultStoreLatency(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), FaultConfig{Latency: 30 * time.Millisecond})
	start := time.Now()
	if err := fs.Put(Ref{ID: "slow-1", Hash: "ee"}, []byte("d")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency not injected: op took %v", d)
	}
}

func TestFaultStorePassthrough(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), FaultConfig{})
	ref := Ref{ID: "ok-1", Hash: "ff"}
	if err := fs.Put(ref, []byte("d")); err != nil {
		t.Fatal(err)
	}
	if got, err := fs.Get(ref); err != nil || string(got) != "d" {
		t.Fatalf("get: %q, %v", got, err)
	}
	refs, err := fs.List()
	if err != nil || len(refs) != 1 {
		t.Fatalf("list: %v, %v", refs, err)
	}
	if err := fs.Delete(ref); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultBlobStore(t *testing.T) {
	fb := NewFaultBlobStore(NewMemBlobStore(), FaultConfig{Seed: 9, WriteFail: 1})
	if _, err := fb.PutBlob([]byte("blob")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected blob failure, got %v", err)
	}
	fb.Stats()

	ok := NewFaultBlobStore(NewMemBlobStore(), FaultConfig{})
	h, err := ok.PutBlob([]byte("blob"))
	if err != nil || h != BlobHash([]byte("blob")) {
		t.Fatalf("putblob: %s, %v", h, err)
	}
	if got, err := ok.GetBlob(h); err != nil || string(got) != "blob" {
		t.Fatalf("getblob: %q, %v", got, err)
	}
}

func TestParseFaultConfig(t *testing.T) {
	cfg, extra, err := ParseFaultConfig("seed=7, write-fail=0.1,enospc=0.05,torn=0.02,read-fail=0.01,read-corrupt=0.03,latency=2ms,panic=0.2")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultConfig{Seed: 7, WriteFail: 0.1, WriteENOSPC: 0.05, WriteTorn: 0.02,
		ReadFail: 0.01, ReadCorrupt: 0.03, Latency: 2 * time.Millisecond}
	if cfg != want {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}
	if extra["panic"] != "0.2" {
		t.Fatalf("extra keys: %v", extra)
	}
	for _, bad := range []string{"write-fail=2", "seed=x", "latency=-1s", "write-fail=0.6,torn=0.6", "novalue"} {
		if _, _, err := ParseFaultConfig(bad); err == nil {
			t.Errorf("ParseFaultConfig(%q) accepted", bad)
		}
	}
}

// TestDiskStoreSweepsCrashDebris: a fresh DiskStore over a directory holding
// crash artifacts — orphaned temp files and torn snapshots — removes them,
// keeps intact and version-skewed snapshots, and leaves foreign files alone.
func TestDiskStoreSweepsCrashDebris(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := Ref{ID: "good-1", Hash: "aabb"}
	goodData := Encode(sampleState(false))
	if err := s.Put(good, goodData); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Plant crash debris next to the good snapshot.
	hashDir := filepath.Join(dir, good.Hash)
	tornDir := filepath.Join(dir, "ccdd")
	os.MkdirAll(tornDir, 0o755)
	write := func(path string, data []byte) {
		t.Helper()
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(filepath.Join(dir, ".tmp-123"), []byte("x"))
	write(filepath.Join(hashDir, ".tmp-456"), []byte("x"))
	write(filepath.Join(hashDir, "torn-2.p.snap"), goodData[:len(goodData)/2])
	write(filepath.Join(tornDir, "torn-3.e.snap"), []byte("short"))
	write(filepath.Join(hashDir, "NOTES.txt"), []byte("foreign"))
	skew := append([]byte(nil), goodData...)
	skew[len(snapMagic)]++ // version bump
	write(filepath.Join(hashDir, "newer-4.p.snap"), reseal(skew))

	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, gone := range []string{
		filepath.Join(dir, ".tmp-123"),
		filepath.Join(hashDir, ".tmp-456"),
		filepath.Join(hashDir, "torn-2.p.snap"),
		filepath.Join(tornDir, "torn-3.e.snap"),
		filepath.Join(tornDir), // emptied by the sweep
	} {
		if _, err := os.Stat(gone); !os.IsNotExist(err) {
			t.Errorf("%s survived the sweep (%v)", gone, err)
		}
	}
	for _, kept := range []string{
		filepath.Join(hashDir, good.ID+".p.snap"),
		filepath.Join(hashDir, "NOTES.txt"),
		filepath.Join(hashDir, "newer-4.p.snap"),
	} {
		if _, err := os.Stat(kept); err != nil {
			t.Errorf("%s did not survive the sweep: %v", kept, err)
		}
	}
	if got, err := s2.Get(good); err != nil || !bytes.Equal(got, goodData) {
		t.Fatalf("good snapshot after sweep: %v", err)
	}
}

// TestCrashConsistencyTornWrites is the torture loop: repeatedly tear a
// snapshot write mid-flight (the simulated kill-during-write), reopen the
// store as a restart would, and require that every reopen yields either the
// previous intact snapshot or none — never a torn artifact.
func TestCrashConsistencyTornWrites(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	ref := Ref{ID: "crash-1", Hash: "abcd"}
	var lastGood []byte
	for i := 0; i < 30; i++ {
		disk, err := NewDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		// Validate what the "restart" sees before writing anything new.
		if data, err := disk.Get(ref); err == nil {
			if verr := Validate(data); verr != nil {
				t.Fatalf("iter %d: restart saw an invalid snapshot: %v", i, verr)
			}
			if lastGood != nil && !bytes.Equal(data, lastGood) {
				t.Fatalf("iter %d: restart saw neither old nor new snapshot", i)
			}
		} else if !errors.Is(err, ErrNotFound) {
			t.Fatalf("iter %d: get: %v", i, err)
		}

		st := sampleState(i%2 == 0)
		st.DetectRuns = i // vary the payload per iteration
		data := Encode(st)
		fs := NewFaultStore(disk, FaultConfig{Seed: int64(i)})
		if i%3 != 0 {
			fs.TearNextPuts(1) // kill during this write
		}
		if err := fs.Put(ref, data); err == nil {
			lastGood = data
		}
		fs.Close()
	}
	if lastGood == nil {
		t.Fatal("no write ever succeeded; loop is vacuous")
	}
}
