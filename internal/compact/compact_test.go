package compact

import (
	"testing"

	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
)

func rules() layout.Rules { return layout.Default90nm() }

func detect(t *testing.T, l *layout.Layout) (*core.ConflictGraph, *core.Detection) {
	t.Helper()
	cg, err := core.BuildGraph(l, rules(), core.PCG)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.Detect(cg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return cg, det
}

func TestExpandDensePair(t *testing.T) {
	l := layout.New("pair")
	l.Add(geom.R(0, 0, 100, 1000))
	l.Add(geom.R(350, 0, 450, 1000))
	cg, det := detect(t, l)
	if len(det.FinalConflicts) == 0 {
		t.Fatal("expected conflicts")
	}
	reqs, unconvertible := RequirementsFromConflicts(l, rules(), cg.Set, det.FinalConflicts)
	if len(unconvertible) != 0 || len(reqs) == 0 {
		t.Fatalf("reqs=%v unconvertible=%v", reqs, unconvertible)
	}
	res, err := Expand(l, rules(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.MovedX == 0 || res.AddedWidth <= 0 {
		t.Fatalf("expansion did nothing: %+v", res)
	}
	// Expanded layout: DRC clean and phase assignable.
	if !drc.Clean(res.Layout, rules()) {
		t.Fatalf("DRC broken: %v", drc.Check(res.Layout, rules()))
	}
	ok, err := core.IsPhaseAssignable(res.Layout, rules())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expanded layout must be phase-assignable")
	}
}

func TestExpandPreservesGapsAndWidths(t *testing.T) {
	l := layout.New("chain")
	// Three wires; conflict only between 0 and 1 (pitch 350); wire 2 is a
	// legal neighbor at pitch 500 from wire 1.
	l.Add(geom.R(0, 0, 100, 1000))
	l.Add(geom.R(350, 0, 450, 1000))
	l.Add(geom.R(850, 0, 950, 1000))
	cg, det := detect(t, l)
	reqs, _ := RequirementsFromConflicts(l, rules(), cg.Set, det.FinalConflicts)
	res, err := Expand(l, rules(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range res.Layout.Features {
		if f.Rect.Width() != l.Features[i].Rect.Width() ||
			f.Rect.Height() != l.Features[i].Rect.Height() {
			t.Errorf("feature %d resized", i)
		}
	}
	// Gap between 1 and 2 must not shrink.
	g01 := geom.GapX(res.Layout.Features[1].Rect, res.Layout.Features[2].Rect)
	if g01 < 400 {
		t.Errorf("gap 1-2 shrank to %d", g01)
	}
	ok, _ := core.IsPhaseAssignable(res.Layout, rules())
	if !ok {
		t.Fatal("not assignable after expansion")
	}
}

func TestExpandKeepsJunctionsTogether(t *testing.T) {
	l := layout.New("junc")
	// A T junction to the left of a dense pair: expanding the pair must not
	// tear the junction.
	l.Add(geom.R(0, 0, 100, 1000))     // 0 vertical
	l.Add(geom.R(100, 450, 500, 550))  // 1 horizontal, touches 0
	l.Add(geom.R(5000, 0, 5100, 1000)) // 2 dense pair a
	l.Add(geom.R(5350, 0, 5450, 1000)) // 3 dense pair b
	cg, det := detect(t, l)
	reqs, _ := RequirementsFromConflicts(l, rules(), cg.Set, det.FinalConflicts)
	// Keep only the pair requirement(s) between 2 and 3.
	var pairReqs []Requirement
	for _, q := range reqs {
		if (q.A == 2 && q.B == 3) || (q.A == 3 && q.B == 2) {
			pairReqs = append(pairReqs, q)
		}
	}
	if len(pairReqs) == 0 {
		t.Skip("no pair requirement; junction conflicts dominated")
	}
	res, err := Expand(l, rules(), pairReqs)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Layout.Features[0].Rect
	b := res.Layout.Features[1].Rect
	if a.X1 != b.X0 || b.Y0 != 450+dy(l, res, 1) {
		// The junction faces must still touch.
		if geom.Separation(a, b) != 0 {
			t.Fatalf("junction torn apart: %v vs %v", a, b)
		}
	}
}

func dy(before *layout.Layout, res *Result, i int) int64 {
	return res.Layout.Features[i].Rect.Y0 - before.Features[i].Rect.Y0
}

func TestRequirementsSkipFeatureEdges(t *testing.T) {
	l := layout.New("fe")
	l.Add(geom.R(0, 0, 100, 1000))
	cg, _ := detect(t, l)
	fake := []core.Conflict{{Meta: core.EdgeMeta{Kind: core.FeatureEdge, Feature: 0}}}
	reqs, unconvertible := RequirementsFromConflicts(l, rules(), cg.Set, fake)
	if len(reqs) != 0 || len(unconvertible) != 1 {
		t.Fatalf("reqs=%v unconvertible=%v", reqs, unconvertible)
	}
}

func TestExpandNoRequirementsNoop(t *testing.T) {
	l := layout.New("noop")
	l.Add(geom.R(0, 0, 100, 1000))
	res, err := Expand(l, rules(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.AddedWidth != 0 || res.MovedX != 0 || res.MovedY != 0 {
		t.Fatalf("noop moved things: %+v", res)
	}
}

func TestExpandRejectsOverlappingRequirement(t *testing.T) {
	l := layout.New("bad")
	l.Add(geom.R(0, 0, 100, 1000))
	l.Add(geom.R(50, 0, 150, 500)) // overlaps feature 0 in x
	_, err := Expand(l, rules(), []Requirement{{A: 0, B: 1, Axis: XAxis, MinGap: 300}})
	if err == nil {
		t.Fatal("overlapping-span requirement must be rejected")
	}
}
