package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/shifter"
)

// Incremental is a stateful edit-and-re-detect engine: it owns a working
// copy of a layout, accepts feature mutations (add / move / delete), and
// re-runs the detection flow after each batch of edits while reusing every
// cached per-cluster result whose inputs the edits provably did not touch.
//
// Exactness is the design invariant: an Incremental Detect returns a
// Detection bit-identical to BuildGraph + DetectContext on the current
// layout. It achieves that by tracking stable identities for features and
// shifter-overlap pairs, patching the overlap set and the crossing-pair set
// from the geometric neighborhood of each edit (a persistent geom.Grid over
// feature rectangles prunes the candidates), and re-running the expensive
// planarize → bipartize → recheck pipeline only on conflict clusters that
// contain a changed edge or inherit taint from a changed previous cluster.
// Clean clusters keep their previous shard results, which are re-merged
// through freshly computed edge index maps.
//
// An Incremental is not safe for concurrent use; the Session layer
// serializes access.
type Incremental struct {
	rules layout.Rules
	kind  GraphKind
	opt   Options

	lay *layout.Layout // owned working copy, mutated in place

	featUID []int32 // stable uid per feature slot, parallel to lay.Features
	featOf  []int32 // uid -> current feature index, -1 once deleted
	nextUID int32

	grid *geom.Grid // live feature rectangles, keyed by feature uid

	pairs     []pairRec // live overlap-pair records, unordered
	nextOvUID int32

	// Pending edit effects since the last successful Detect.
	dirty   map[int32]bool // uids of features whose constraints must be recomputed
	deleted map[int32]bool // uids of features removed since the last Detect

	prev *incSnapshot // last successful detection state; nil before the first
	gen  int          // generation counter: incremented per successful Detect

	// Downstream-stage state (the incremental pipeline, ISSUE 5): phase
	// assignment reuses the previous generation's per-cluster two-coloring,
	// correction keeps persistent cut-position span indexes, and DRC keeps
	// the violating feature pairs keyed by stable uids.
	assignGen  int    // generation prevColors was computed for (0 = none)
	prevColors []int8 // node 2-coloring of the assignGen graph

	cutV, cutH geom.SpanSet // vertical-feature x-spans / horizontal-feature y-spans

	drcReady bool            // drcPairs reflects the layout as of the last DRC
	drcPairs map[uint64]bool // packed uid pairs with a live spacing violation
	drcDirty map[int32]bool  // uids edited since the last DRC
	drcDel   map[int32]bool  // uids deleted since the last DRC

	stats IncStats
}

// pairRec is the stable identity of one shifter-overlap constraint: the two
// flanking shifters are named by (feature uid, side), so the record survives
// any renumbering of untouched features.
type pairRec struct {
	uidA, uidB   int32
	sideA, sideB shifter.Side
	deficit      int64
	uid          int32 // stable pair-instance uid
}

// incSnapshot captures everything a later Detect needs to decide reuse, plus
// the transition maps the downstream stages use for their own cluster-scoped
// reuse at this generation.
type incSnapshot struct {
	set         *shifter.Set
	det         *Detection
	nodeKeys    []int64 // stable identity per graph node
	edgeKeys    []int64 // stable identity per graph edge
	crossPairs  [][2]int
	edgeCluster []int32 // cluster id per edge
	nShards     int
	results     []*shardResult // per cluster; nil for edge-less parts

	gen          int     // generation this snapshot was committed at
	nodeCluster  []int32 // cluster id per node
	dirtyCluster []bool  // clusters re-solved by the transition into gen
	// newToOldNode maps this generation's node indices to the previous
	// generation's; nil when the transition was a full recompute (first run
	// or fallback), in which case downstream stages must not reuse.
	newToOldNode []int
	ovUID        []int32 // stable pair uid per overlap index
	featCluster  []int32 // cluster per feature index (-1 for non-critical)
	ovCluster    []int32 // cluster per overlap index
}

// Identity-key tags (low 2 bits): 0/1 carry a shifter side or an overlap
// edge half, 2 marks overlap (aux) nodes, 3 marks feature edges. The high
// bits carry the feature or pair uid; the two uid spaces never meet under
// the same tag, so keys are collision-free.
func shifterNodeKey(featUID int32, side shifter.Side) int64 {
	return int64(featUID)<<2 | int64(side)
}
func auxNodeKey(ovUID int32) int64 { return int64(ovUID)<<2 | 2 }
func overlapEdgeKey(ovUID int32, half int) int64 {
	return int64(ovUID)<<2 | int64(half)
}
func featureEdgeKey(featUID int32) int64 { return int64(featUID)<<2 | 3 }

// IncStats reports the cumulative work profile of an Incremental engine.
// The JSON tags are the wire form served by aapsmd's session-info endpoint.
type IncStats struct {
	// Edits counts accepted mutations (add/move/delete).
	Edits int `json:"edits"`
	// Detects counts successful Detect calls, FullDetects those that could
	// reuse nothing (the first run, or a run after state loss).
	Detects     int `json:"detects"`
	FullDetects int `json:"full_detects"`
	// ShardsReused / ShardsSolved tally conflict clusters whose result was
	// taken from cache vs recomputed, across all Detects.
	ShardsReused int `json:"shards_reused"`
	ShardsSolved int `json:"shards_solved"`
	// FallbackDirty counts clusters conservatively re-solved because a reuse
	// invariant check failed; it should stay 0.
	FallbackDirty int `json:"fallback_dirty"`

	// Instance-aware fast-path tallies (full detects on hierarchical
	// layouts): HierClustersReused counts instance-pure clusters whose
	// result was spliced from an identical representative,
	// HierClustersSolved the representatives actually solved, and
	// HierFallbackClusters those crossing instance boundaries that solved
	// flat.
	HierClustersReused   int `json:"hier_clusters_reused"`
	HierClustersSolved   int `json:"hier_clusters_solved"`
	HierFallbackClusters int `json:"hier_fallback_clusters"`

	// Downstream-stage reuse counters (…Reused = work taken from cache,
	// …Solved = work actually performed), cumulative like the shard tallies.
	// AssignClusters count conflict clusters per phase-assignment coloring;
	// VerifyChecks and MaskChecks count per-feature/per-overlap constraint
	// checks; CorrIntervals count per-conflict correction-interval
	// computations; DRCPairs count spacing-pair evaluations (reused = cached
	// violating pairs carried over a re-check).
	AssignClustersReused int `json:"assign_clusters_reused"`
	AssignClustersSolved int `json:"assign_clusters_solved"`
	VerifyChecksReused   int `json:"verify_checks_reused"`
	VerifyChecksSolved   int `json:"verify_checks_solved"`
	CorrIntervalsReused  int `json:"corr_intervals_reused"`
	CorrIntervalsSolved  int `json:"corr_intervals_solved"`
	MaskChecksReused     int `json:"mask_checks_reused"`
	MaskChecksSolved     int `json:"mask_checks_solved"`
	DRCPairsReused       int `json:"drc_pairs_reused"`
	DRCPairsSolved       int `json:"drc_pairs_solved"`
}

// NewIncremental starts an edit session on a deep copy of l (the caller's
// layout is never touched). The options configure every subsequent Detect.
func NewIncremental(l *layout.Layout, r layout.Rules, kind GraphKind, opt Options) (*Incremental, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	inc := &Incremental{
		rules:    r,
		kind:     kind,
		opt:      opt,
		lay:      l.Clone(),
		dirty:    make(map[int32]bool),
		deleted:  make(map[int32]bool),
		grid:     geom.NewGrid(featureGridCell(r)),
		drcPairs: make(map[uint64]bool),
		drcDirty: make(map[int32]bool),
		drcDel:   make(map[int32]bool),
	}
	inc.featUID = make([]int32, len(inc.lay.Features))
	inc.featOf = make([]int32, 0, len(inc.lay.Features))
	for i, f := range inc.lay.Features {
		uid := inc.nextUID
		inc.nextUID++
		inc.featUID[i] = uid
		inc.featOf = append(inc.featOf, int32(i))
		inc.grid.Insert(uid, f.Rect)
		inc.cutSpanInsert(f)
	}
	return inc, nil
}

// cutSpanInsert registers a feature in the correction cut-position indexes:
// a vertical feature's x-span blocks vertical cuts (they would stretch its
// width), a horizontal feature's y-span blocks horizontal cuts.
func (inc *Incremental) cutSpanInsert(f layout.Feature) {
	if f.Orient() == layout.Vertical {
		inc.cutV.Insert(f.Rect.X0, f.Rect.X1)
	} else {
		inc.cutH.Insert(f.Rect.Y0, f.Rect.Y1)
	}
}

// cutSpanRemove cancels a cutSpanInsert for the feature's previous shape.
func (inc *Incremental) cutSpanRemove(f layout.Feature) {
	if f.Orient() == layout.Vertical {
		inc.cutV.Remove(f.Rect.X0, f.Rect.X1)
	} else {
		inc.cutH.Remove(f.Rect.Y0, f.Rect.Y1)
	}
}

// featureGridCell sizes the persistent feature grid near the interaction
// reach so neighborhood queries touch few cells.
func featureGridCell(r layout.Rules) int64 {
	c := 2 * (2*(r.ShifterGap+r.ShifterWidth) + r.MinShifterSpacing)
	if c < 16 {
		c = 16
	}
	return c
}

// reach is the interaction radius of an edit: a feature farther than this
// from a rectangle cannot share an overlap constraint with a feature inside
// it (shifters extend ShifterGap+ShifterWidth beyond each feature and couple
// below MinShifterSpacing).
func (inc *Incremental) reach() int64 {
	return 2*(inc.rules.ShifterGap+inc.rules.ShifterWidth) + inc.rules.MinShifterSpacing + 1
}

// Layout returns the engine's working copy. Callers must treat it as
// read-only and mutate only through the edit methods.
func (inc *Incremental) Layout() *layout.Layout { return inc.lay }

// Stats returns the cumulative work counters.
func (inc *Incremental) Stats() IncStats { return inc.stats }

// SetWorkers bounds the worker pool used to re-solve dirty clusters.
func (inc *Incremental) SetWorkers(n int) { inc.opt.Workers = n }

// AddFeature appends a feature and returns its index.
func (inc *Incremental) AddFeature(r geom.Rect, layer int) int {
	fi := len(inc.lay.Features)
	inc.lay.Features = append(inc.lay.Features, layout.Feature{Rect: r, Layer: layer})
	if h := inc.lay.Hier; h != nil {
		h.FeatureInstance = append(h.FeatureInstance, -1)
	}
	uid := inc.nextUID
	inc.nextUID++
	inc.featUID = append(inc.featUID, uid)
	inc.featOf = append(inc.featOf, int32(fi))
	inc.grid.Insert(uid, r)
	inc.cutSpanInsert(inc.lay.Features[fi])
	inc.dirty[uid] = true
	inc.drcDirty[uid] = true
	inc.stats.Edits++
	return fi
}

// MoveFeature moves (or resizes) feature i to rectangle r.
func (inc *Incremental) MoveFeature(i int, r geom.Rect) error {
	if i < 0 || i >= len(inc.lay.Features) {
		return fmt.Errorf("core: move: feature index %d out of range [0,%d)", i, len(inc.lay.Features))
	}
	f := &inc.lay.Features[i]
	uid := inc.featUID[i]
	inc.grid.Remove(uid, f.Rect)
	inc.cutSpanRemove(*f)
	f.Rect = r
	inc.grid.Insert(uid, r)
	inc.cutSpanInsert(*f)
	if h := inc.lay.Hier; h != nil {
		// Provenance is lost once a placed feature moves: the cluster it
		// lands in no longer matches its cell's canonical shape.
		h.FeatureInstance[i] = -1
	}
	inc.dirty[uid] = true
	inc.drcDirty[uid] = true
	inc.stats.Edits++
	return nil
}

// DeleteFeature removes feature i; later features shift down one index, as
// with a slice deletion.
func (inc *Incremental) DeleteFeature(i int) error {
	if i < 0 || i >= len(inc.lay.Features) {
		return fmt.Errorf("core: delete: feature index %d out of range [0,%d)", i, len(inc.lay.Features))
	}
	uid := inc.featUID[i]
	inc.grid.Remove(uid, inc.lay.Features[i].Rect)
	inc.cutSpanRemove(inc.lay.Features[i])
	inc.lay.Features = append(inc.lay.Features[:i], inc.lay.Features[i+1:]...)
	if h := inc.lay.Hier; h != nil {
		h.FeatureInstance = append(h.FeatureInstance[:i], h.FeatureInstance[i+1:]...)
	}
	inc.featUID = append(inc.featUID[:i], inc.featUID[i+1:]...)
	for j := i; j < len(inc.featUID); j++ {
		inc.featOf[inc.featUID[j]] = int32(j)
	}
	inc.featOf[uid] = -1
	delete(inc.dirty, uid)
	inc.deleted[uid] = true
	delete(inc.drcDirty, uid)
	inc.drcDel[uid] = true
	inc.stats.Edits++
	return nil
}

// Detect re-runs the detection flow on the current layout, reusing every
// cluster result the pending edits did not invalidate. The returned
// Detection is bit-identical to a from-scratch BuildGraph + DetectContext
// on the same layout. With no pending edits the previous Detection is
// returned unchanged.
func (inc *Incremental) Detect(ctx context.Context) (*Detection, error) {
	if inc.prev != nil && len(inc.dirty) == 0 && len(inc.deleted) == 0 {
		return inc.prev.det, nil
	}
	start := time.Now() //aapsmvet:allow determinism stage-timing telemetry only; durations land in Stats, never in results
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// --- 1. Patch the overlap-pair records from the edit neighborhood. ---
	records, droppedOv, freshOvMark, err := inc.patchPairs()
	if err != nil {
		return nil, err
	}

	// --- 2. Rebuild the shifter set in from-scratch order. ---
	set, ovRecs := inc.buildSet(records)

	// --- 3. Rebuild the conflict graph (same constructor as from-scratch,
	// so drawing, positions and index spaces match exactly). ---
	cg, err := BuildGraphFromSet(inc.lay, inc.rules, set, inc.kind)
	if err != nil {
		return nil, err
	}
	g := cg.Drawing.G
	det := &Detection{Graph: cg}
	det.Stats.GraphNodes = cg.Nodes()
	det.Stats.GraphEdges = cg.Edges()

	// --- 4. Stable identities and survivor matching against the previous
	// generation. ---
	nodeKeys, edgeKeys := inc.identityKeys(set, ovRecs)
	isNewEdge := func(key int64) bool {
		if key&3 == 3 {
			return inc.dirty[int32(key>>2)]
		}
		return int32(key>>2) >= freshOvMark
	}
	isDeadEdge := func(key int64) bool {
		if key&3 == 3 {
			uid := int32(key >> 2)
			return inc.dirty[uid] || inc.deleted[uid]
		}
		return droppedOv[int32(key>>2)]
	}
	isNewNode := func(key int64) bool {
		if key&3 == 2 {
			return int32(key>>2) >= freshOvMark
		}
		return inc.dirty[int32(key>>2)]
	}
	isDeadNode := func(key int64) bool {
		if key&3 == 2 {
			return droppedOv[int32(key>>2)]
		}
		uid := int32(key >> 2)
		return inc.dirty[uid] || inc.deleted[uid]
	}

	var oldToNewEdge, newToOldEdge, newToOldNode []int
	var changedNode []bool
	full := inc.prev == nil
	if !full {
		oldToNewEdge, newToOldEdge, err = matchSurvivors(inc.prev.edgeKeys, edgeKeys, isDeadEdge, isNewEdge)
		if err == nil {
			_, newToOldNode, err = matchSurvivors(inc.prev.nodeKeys, nodeKeys, isDeadNode, isNewNode)
			if err == nil {
				changedNode = make([]bool, g.N())
				oldPos := inc.prev.det.Graph.Drawing.Pos
				for nv, ov := range newToOldNode {
					if ov < 0 {
						changedNode[nv] = true
					} else if oldPos[ov] != cg.Drawing.Pos[nv] {
						changedNode[nv] = true
					}
				}
			}
		}
		if err != nil {
			// A survivor-matching inconsistency means a reuse invariant is
			// broken; fall back to a full recompute rather than risk a wrong
			// result. The differential test suite treats this as a bug
			// signal via FallbackDirty.
			inc.stats.FallbackDirty++
			full = true
		}
	}

	// --- 5. Dirty edges and the patched crossing-pair set. ---
	m := g.M()
	dirtyEdge := make([]bool, m)
	if full {
		for e := range dirtyEdge {
			dirtyEdge[e] = true
		}
	} else {
		for e := 0; e < m; e++ {
			if newToOldEdge[e] < 0 {
				dirtyEdge[e] = true
				continue
			}
			ed := g.Edge(e)
			if changedNode[ed.U] || changedNode[ed.V] {
				dirtyEdge[e] = true
			}
		}
	}

	tCross := time.Now() //aapsmvet:allow determinism stage-timing telemetry only; durations land in Stats, never in results
	var crossPairs [][2]int
	if full {
		crossPairs = cg.Drawing.Crossings()
	} else {
		crossPairs = inc.patchCrossings(cg, dirtyEdge, oldToNewEdge)
	}
	det.Stats.CrossTime = time.Since(tCross)
	det.Stats.CrossingPairs = len(crossPairs)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// --- 6. Cluster partition, taint propagation, dirty-cluster set. ---
	labels, nShards := conflictClusters(g, crossPairs)
	edgeCluster := make([]int32, m)
	for e := 0; e < m; e++ {
		edgeCluster[e] = int32(labels[g.Edge(e).U])
	}

	dirtyCluster := make([]bool, nShards)
	reuseFrom := make([]int32, nShards)
	for i := range reuseFrom {
		reuseFrom[i] = -1
	}
	if full {
		for i := range dirtyCluster {
			dirtyCluster[i] = true
		}
	} else {
		// Old clusters touched by a death or a dirty survivor taint every
		// edge they still own.
		tainted := make([]bool, inc.prev.nShards)
		for oe, ne := range oldToNewEdge {
			if ne < 0 {
				tainted[inc.prev.edgeCluster[oe]] = true
			}
		}
		for e := 0; e < m; e++ {
			if dirtyEdge[e] && newToOldEdge[e] >= 0 {
				tainted[inc.prev.edgeCluster[newToOldEdge[e]]] = true
			}
		}
		oldSize := make([]int32, inc.prev.nShards)
		for _, c := range inc.prev.edgeCluster {
			oldSize[c]++
		}
		// Pass 1: a cluster owning any dirty edge, or any survivor of a
		// tainted old cluster, must be re-solved.
		newSize := make([]int32, nShards)
		for e := 0; e < m; e++ {
			c := edgeCluster[e]
			newSize[c]++
			if dirtyEdge[e] || tainted[inc.prev.edgeCluster[newToOldEdge[e]]] {
				dirtyCluster[c] = true
			}
		}
		// Pass 2: every remaining cluster must coincide exactly with one
		// untainted old cluster; any disagreement means a reuse invariant
		// broke, and the cluster is conservatively re-solved.
		for e := 0; e < m; e++ {
			c := edgeCluster[e]
			if dirtyCluster[c] {
				continue
			}
			oc := inc.prev.edgeCluster[newToOldEdge[e]]
			if reuseFrom[c] < 0 {
				reuseFrom[c] = oc
			} else if reuseFrom[c] != oc {
				// Two untainted old clusters cannot merge without a dirty
				// link.
				dirtyCluster[c] = true
				inc.stats.FallbackDirty++
			}
		}
		for c := 0; c < nShards; c++ {
			if dirtyCluster[c] || reuseFrom[c] < 0 {
				continue
			}
			if newSize[c] != oldSize[reuseFrom[c]] {
				dirtyCluster[c] = true
				inc.stats.FallbackDirty++
			}
		}
	}

	// --- 7. Re-induce and re-solve only the dirty clusters. ---
	shards := cg.Drawing.InducedComponentsSubset(labels, nShards, dirtyCluster)
	localEdge := make([]int32, m)
	for c := range shards {
		if !dirtyCluster[c] {
			continue
		}
		for le, ge := range shards[c].EdgeOf {
			localEdge[ge] = int32(le)
		}
	}
	pairsByShard := make([][][2]int, nShards)
	for _, p := range crossPairs {
		c := edgeCluster[p[0]]
		if dirtyCluster[c] {
			pairsByShard[c] = append(pairsByShard[c], [2]int{int(localEdge[p[0]]), int(localEdge[p[1]])})
		}
	}
	jobs := make([]shardJob, nShards)
	for c := range shards {
		if dirtyCluster[c] && shards[c].D != nil && shards[c].D.G.M() > 0 {
			jobs[c] = shardJob{d: shards[c].D, pairs: pairsByShard[c]}
		}
	}
	// Instance-aware fast path — full detects only: with every cluster
	// dirty, the job list is complete and each distinct instance-pure
	// cluster shape solves once. Incremental detects already reuse clean
	// clusters wholesale, which subsumes per-instance dedup.
	var plan *hierPlan
	if full {
		if plan = hierDedupPlan(cg, labels, nShards, jobs); plan != nil {
			plan.blankDuplicates(jobs)
		}
	}
	results := make([]*shardResult, nShards)
	if err := runShards(ctx, jobs, results, inc.opt.Workers, inc.opt); err != nil {
		return nil, err
	}
	if plan != nil {
		plan.spliceResults(results, nil)
		inc.stats.HierClustersReused += plan.reused
		inc.stats.HierClustersSolved += plan.solved
		inc.stats.HierFallbackClusters += plan.fallback
		det.Stats.HierReusedShards = plan.reused
		det.Stats.HierSolvedShards = plan.solved
		det.Stats.HierFallbackShards = plan.fallback
	}
	fresh := make([]bool, nShards)
	for c := range results {
		if dirtyCluster[c] {
			if plan != nil && plan.rep[c] >= 0 {
				// Spliced from a representative: counted above, and not
				// fresh, so merge-time durations count the solve once.
				continue
			}
			fresh[c] = true
			if results[c] != nil {
				inc.stats.ShardsSolved++
			}
			continue
		}
		if reuseFrom[c] >= 0 {
			results[c] = inc.prev.results[reuseFrom[c]]
			inc.stats.ShardsReused++
			det.Stats.ReusedShards++
		}
	}

	// --- 8. Merge in cluster order, exactly as the from-scratch flow. ---
	edgeOf := make([][]int, nShards)
	for c := range shards {
		edgeOf[c] = shards[c].EdgeOf
		if n := len(shards[c].EdgeOf); n > 0 {
			det.Stats.Shards++
			if n > det.Stats.LargestShardEdges {
				det.Stats.LargestShardEdges = n
			}
		}
	}
	if err := mergeShards(det, cg, edgeOf, results, fresh); err != nil {
		return nil, err
	}
	det.Stats.TotalTime = time.Since(start)

	// --- 9. Commit the new state, including the transition maps the
	// downstream stages (assignment, correction, mask, DRC) use for their
	// own cluster-scoped reuse at this generation. ---
	inc.pairs = records
	inc.gen++
	nodeCluster := make([]int32, len(labels))
	for v, c := range labels {
		nodeCluster[v] = int32(c)
	}
	featCluster := make([]int32, len(inc.lay.Features))
	for fi := range featCluster {
		featCluster[fi] = -1
	}
	for fi, pair := range set.PairOf {
		featCluster[fi] = nodeCluster[cg.ShifterNode[pair[0]]]
	}
	ovCluster := make([]int32, len(set.Overlaps))
	for oi := range set.Overlaps {
		// Aux (overlap) nodes follow the shifter nodes in construction order.
		ovCluster[oi] = nodeCluster[len(set.Shifters)+oi]
	}
	ovUID := make([]int32, len(ovRecs))
	for i, rec := range ovRecs {
		ovUID[i] = rec.uid
	}
	if full {
		newToOldNode = nil
	}
	inc.prev = &incSnapshot{
		set:          set,
		det:          det,
		nodeKeys:     nodeKeys,
		edgeKeys:     edgeKeys,
		crossPairs:   crossPairs,
		edgeCluster:  edgeCluster,
		nShards:      nShards,
		results:      results,
		gen:          inc.gen,
		nodeCluster:  nodeCluster,
		dirtyCluster: dirtyCluster,
		newToOldNode: newToOldNode,
		ovUID:        ovUID,
		featCluster:  featCluster,
		ovCluster:    ovCluster,
	}
	inc.dirty = make(map[int32]bool)
	inc.deleted = make(map[int32]bool)
	inc.stats.Detects++
	if full {
		inc.stats.FullDetects++
	}
	return det, nil
}

// patchPairs drops every overlap-pair record touching an edited or deleted
// feature and re-enumerates the pairs of each edited feature against its
// geometric neighborhood. On the first run it enumerates everything via the
// same generator the from-scratch flow uses.
func (inc *Incremental) patchPairs() (records []pairRec, droppedOv map[int32]bool, freshOvMark int32, err error) {
	droppedOv = make(map[int32]bool)
	freshOvMark = inc.nextOvUID
	if inc.prev == nil && len(inc.pairs) == 0 {
		set, err := shifter.Generate(inc.lay, inc.rules)
		if err != nil {
			return nil, nil, 0, err
		}
		records = make([]pairRec, 0, len(set.Overlaps))
		for _, ov := range set.Overlaps {
			a, b := set.Shifters[ov.A], set.Shifters[ov.B]
			records = append(records, pairRec{
				uidA: inc.featUID[a.Feature], sideA: a.Side,
				uidB: inc.featUID[b.Feature], sideB: b.Side,
				deficit: ov.Deficit,
				uid:     inc.newOvUID(),
			})
		}
		return records, droppedOv, freshOvMark, nil
	}

	touched := func(uid int32) bool { return inc.dirty[uid] || inc.deleted[uid] }
	records = make([]pairRec, 0, len(inc.pairs)+8)
	for _, rec := range inc.pairs {
		if touched(rec.uidA) || touched(rec.uidB) {
			droppedOv[rec.uid] = true
			continue
		}
		records = append(records, rec)
	}

	// Deterministic processing order: dirty features by current index.
	dirtyIdx := make([]int, 0, len(inc.dirty))
	for uid := range inc.dirty {
		if fi := inc.featOf[uid]; fi >= 0 {
			dirtyIdx = append(dirtyIdx, int(fi))
		}
	}
	sort.Ints(dirtyIdx)
	for _, fi := range dirtyIdx {
		f := inc.lay.Features[fi]
		if !inc.rules.IsCritical(f) {
			continue
		}
		fUID := inc.featUID[fi]
		loF, hiF := shifter.Flanks(f, inc.rules)
		fShifters := [2]geom.Rect{loF, hiF}
		inc.grid.Query(f.Rect.Expand(inc.reach()), nil, func(gUID int32) {
			gi := inc.featOf[gUID]
			if gi < 0 || int(gi) == fi {
				return
			}
			if inc.dirty[gUID] && int(gi) < fi {
				return // the pair was handled from the other side
			}
			gf := inc.lay.Features[gi]
			if !inc.rules.IsCritical(gf) {
				return
			}
			loG, hiG := shifter.Flanks(gf, inc.rules)
			gShifters := [2]geom.Rect{loG, hiG}
			for sa := 0; sa < 2; sa++ {
				for sb := 0; sb < 2; sb++ {
					deficit, ok := shifter.OverlapDeficit(fShifters[sa], gShifters[sb], inc.rules)
					if !ok {
						continue
					}
					records = append(records, pairRec{
						uidA: fUID, sideA: shifter.Side(sa),
						uidB: gUID, sideB: shifter.Side(sb),
						deficit: deficit,
						uid:     inc.newOvUID(),
					})
				}
			}
		})
	}
	return records, droppedOv, freshOvMark, nil
}

func (inc *Incremental) newOvUID() int32 {
	uid := inc.nextOvUID
	inc.nextOvUID++
	return uid
}

// buildSet materializes the shifter set of the current layout from the pair
// records, in exactly the order shifter.Generate produces: shifters by
// (feature, side), overlaps sorted by (A, B). ovRecs parallels set.Overlaps.
func (inc *Incremental) buildSet(records []pairRec) (*shifter.Set, []pairRec) {
	set := &shifter.Set{PairOf: make(map[int][2]int)}
	base := make([]int32, len(inc.lay.Features))
	for fi, f := range inc.lay.Features {
		base[fi] = -1
		if !inc.rules.IsCritical(f) {
			continue
		}
		lo, hi := shifter.Flanks(f, inc.rules)
		a := len(set.Shifters)
		set.Shifters = append(set.Shifters,
			shifter.Shifter{Rect: lo, Feature: fi, Side: shifter.LowSide},
			shifter.Shifter{Rect: hi, Feature: fi, Side: shifter.HighSide},
		)
		set.PairOf[fi] = [2]int{a, a + 1}
		base[fi] = int32(a)
	}
	type ovTmp struct {
		ov  shifter.Overlap
		rec pairRec
	}
	tmp := make([]ovTmp, 0, len(records))
	for _, rec := range records {
		a := int(base[inc.featOf[rec.uidA]]) + int(rec.sideA)
		b := int(base[inc.featOf[rec.uidB]]) + int(rec.sideB)
		if a > b {
			a, b = b, a
		}
		tmp = append(tmp, ovTmp{shifter.Overlap{A: a, B: b, Deficit: rec.deficit}, rec})
	}
	sort.Slice(tmp, func(i, j int) bool {
		if tmp[i].ov.A != tmp[j].ov.A {
			return tmp[i].ov.A < tmp[j].ov.A
		}
		return tmp[i].ov.B < tmp[j].ov.B
	})
	ovRecs := make([]pairRec, len(tmp))
	set.Overlaps = make([]shifter.Overlap, len(tmp))
	for i, t := range tmp {
		set.Overlaps[i] = t.ov
		ovRecs[i] = t.rec
	}
	return set, ovRecs
}

// identityKeys computes the stable node and edge identity keys of the graph
// BuildGraphFromSet constructs from this set: shifter nodes, then one aux
// node per overlap; overlap edges (two per overlap, in overlap order), then
// one feature edge per critical feature in feature order.
func (inc *Incremental) identityKeys(set *shifter.Set, ovRecs []pairRec) (nodeKeys, edgeKeys []int64) {
	nodeKeys = make([]int64, 0, len(set.Shifters)+len(set.Overlaps))
	for _, sh := range set.Shifters {
		nodeKeys = append(nodeKeys, shifterNodeKey(inc.featUID[sh.Feature], sh.Side))
	}
	for _, rec := range ovRecs {
		nodeKeys = append(nodeKeys, auxNodeKey(rec.uid))
	}
	edgeKeys = make([]int64, 0, 2*len(set.Overlaps)+len(set.PairOf))
	for _, rec := range ovRecs {
		edgeKeys = append(edgeKeys, overlapEdgeKey(rec.uid, 0), overlapEdgeKey(rec.uid, 1))
	}
	for fi := range inc.lay.Features {
		if _, ok := set.PairOf[fi]; ok {
			edgeKeys = append(edgeKeys, featureEdgeKey(inc.featUID[fi]))
		}
	}
	return nodeKeys, edgeKeys
}

// matchSurvivors aligns two identity-key sequences whose surviving elements
// keep their relative order: old elements for which isDead holds and new
// elements for which isNew holds are unmatched; the remainders must zip
// one-to-one with equal keys. It returns oldToNew and newToOld index maps
// (-1 where unmatched) or an error when the zip invariant fails.
func matchSurvivors(oldKeys, newKeys []int64, isDead, isNew func(int64) bool) (oldToNew, newToOld []int, err error) {
	oldToNew = make([]int, len(oldKeys))
	newToOld = make([]int, len(newKeys))
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	for i := range newToOld {
		newToOld[i] = -1
	}
	oi := 0
	advance := func() {
		for oi < len(oldKeys) && isDead(oldKeys[oi]) {
			oi++
		}
	}
	advance()
	for ni, key := range newKeys {
		if isNew(key) {
			continue
		}
		if oi >= len(oldKeys) || oldKeys[oi] != key {
			return nil, nil, fmt.Errorf("core: incremental survivor mismatch at new index %d", ni)
		}
		oldToNew[oi] = ni
		newToOld[ni] = oi
		oi++
		advance()
	}
	if oi != len(oldKeys) {
		return nil, nil, fmt.Errorf("core: incremental survivor mismatch: %d old elements unconsumed", len(oldKeys)-oi)
	}
	return oldToNew, newToOld, nil
}

// patchCrossings assembles the current crossing-pair set from the previous
// one: pairs between two clean surviving edges carry over through the index
// maps; every pair involving a dirty edge is recomputed exactly on the
// geometric neighborhood of the dirty edges.
func (inc *Incremental) patchCrossings(cg *ConflictGraph, dirtyEdge []bool, oldToNewEdge []int) [][2]int {
	d := cg.Drawing
	m := d.G.M()
	out := make([][2]int, 0, len(inc.prev.crossPairs)+8)
	for _, p := range inc.prev.crossPairs {
		na, nb := oldToNewEdge[p[0]], oldToNewEdge[p[1]]
		if na >= 0 && nb >= 0 && !dirtyEdge[na] && !dirtyEdge[nb] {
			out = append(out, [2]int{na, nb})
		}
	}
	var region geom.Rect
	bounds := make([]geom.Rect, m)
	var dirtyExtent int64
	nDirty := 0
	for e := 0; e < m; e++ {
		bounds[e] = d.EdgeBounds(e)
		if dirtyEdge[e] {
			region = region.Union(bounds[e])
			dirtyExtent += bounds[e].Width() + bounds[e].Height()
			nDirty++
		}
	}
	if nDirty > 0 {
		// Candidate edges are those whose bounds meet some dirty edge's
		// bounds. A grid over just the dirty bounds keeps the candidate set
		// proportional to the true neighborhoods even when a batch edits
		// far-apart corners of the layout (the union box alone would admit
		// everything in between); the union box remains as a cheap
		// pre-filter before the per-edge grid query.
		cell := dirtyExtent/int64(2*nDirty) + 1
		if cell < 16 {
			cell = 16
		}
		dg := geom.NewGrid(cell)
		for e := 0; e < m; e++ {
			if dirtyEdge[e] {
				dg.Insert(int32(e), bounds[e])
			}
		}
		seen := make([]bool, m)
		local := make([]int, 0, 64)
		for e := 0; e < m; e++ {
			if !bounds[e].Intersects(region) {
				continue
			}
			hit := dirtyEdge[e]
			if !hit {
				eb := bounds[e]
				dg.Query(eb, seen, func(de int32) {
					if bounds[de].Intersects(eb) {
						hit = true
					}
				})
			}
			if hit {
				local = append(local, e)
			}
		}
		out = append(out, d.CrossingsAmong(local, dirtyEdge)...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}
