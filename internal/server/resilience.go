package server

import (
	"math/rand"
	"sync"
	"time"
)

// This file holds the server's degraded-operation machinery: the bounded
// asynchronous retry queue that re-attempts failed snapshot writes with
// capped exponential backoff, the persistence health tracker behind /readyz,
// and the bounded synchronous retry around blob writes.
//
// The invariant the pieces maintain together: a session whose snapshot
// cannot be persisted is never silently dropped. The eviction path readmits
// it pinned (exempt from LRU/TTL eviction), a retry is queued here, and the
// first successful write — from the retry, the periodic flush, or a later
// eviction — unpins it and clears the queue entry.

// snapRetry tracks snapshot writes awaiting an asynchronous retry, keyed by
// session ID so repeated failures of one session occupy one slot. The map is
// bounded: once full, new failures rely on the periodic flush loop as the
// backstop instead of queueing.
type snapRetry struct {
	mu      sync.Mutex
	pending map[string]int // session ID -> retry attempts scheduled so far
}

// backoffDelay returns the capped exponential backoff with ±25% jitter for
// the n-th retry attempt (0-based).
func (s *Server) backoffDelay(attempt int) time.Duration {
	min, max := s.cfg.SnapshotRetryMin, s.cfg.SnapshotRetryMax
	d := min
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Jitter desynchronizes retries of many sessions that failed together
	// (one disk-full event fails a whole flush sweep at once).
	jitter := time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	return d + jitter
}

// scheduleRetry queues an asynchronous snapshot retry for session id. New
// sessions are refused once the queue is full (the periodic flush still
// covers them); a session already queued reschedules with its next backoff
// step.
func (s *Server) scheduleRetry(id string) {
	if s.cfg.Snapshots == nil || s.cfg.SnapshotRetryQueue <= 0 {
		return
	}
	s.retry.mu.Lock()
	attempt, queued := s.retry.pending[id]
	if !queued {
		if len(s.retry.pending) >= s.cfg.SnapshotRetryQueue {
			s.retry.mu.Unlock()
			return
		}
		attempt = 0
	}
	s.retry.pending[id] = attempt + 1
	s.retry.mu.Unlock()
	time.AfterFunc(s.backoffDelay(attempt), func() { s.retrySnapshot(id) })
}

// retrySnapshot is the timer callback: re-attempt the snapshot write for a
// queued session. A session that is no longer live has nothing to persist
// (it was either written by another path or explicitly deleted), so its
// queue entry is dropped. A failed attempt reschedules with the next
// backoff step; snapshotWrite clears the entry on success.
func (s *Server) retrySnapshot(id string) {
	select {
	case <-s.stop:
		s.clearRetry(id)
		return
	default:
	}
	ent, ok := s.store.get(id)
	if !ok {
		s.clearRetry(id)
		return
	}
	defer s.store.release(ent)
	s.metrics.snapshotRetries.Add(1)
	if s.snapshotWrite(ent) != nil {
		s.scheduleRetry(id)
	}
}

// clearRetry drops a session's queue entry (snapshot written, or session
// gone).
func (s *Server) clearRetry(id string) {
	s.retry.mu.Lock()
	delete(s.retry.pending, id)
	s.retry.mu.Unlock()
}

// pendingRetries returns the number of sessions queued for a snapshot
// retry.
func (s *Server) pendingRetries() int {
	s.retry.mu.Lock()
	defer s.retry.mu.Unlock()
	return len(s.retry.pending)
}

// storeHealth summarizes recent persistence-store behavior for the
// readiness probe: consecutive write failures mark the store degraded, one
// success clears it.
type storeHealth struct {
	mu      sync.Mutex
	streak  int    // consecutive snapshot-write failures
	lastErr string // most recent failure, for the /readyz body
}

func (h *storeHealth) noteErr(err error) {
	h.mu.Lock()
	h.streak++
	h.lastErr = err.Error()
	h.mu.Unlock()
}

func (h *storeHealth) noteOK() {
	h.mu.Lock()
	h.streak = 0
	h.lastErr = ""
	h.mu.Unlock()
}

func (h *storeHealth) snapshot() (streak int, lastErr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.streak, h.lastErr
}

// Ready reports whether the server should receive traffic: serving (not
// draining) and, when persistence is configured, the store healthy (no
// current failure streak). A degraded store keeps /healthz green — the
// daemon is alive and serving from memory — but flips /readyz so
// orchestrators stop routing new sessions to an instance that cannot
// persist them.
func (s *Server) Ready() bool {
	if s.Draining() {
		return false
	}
	if s.cfg.Snapshots != nil {
		if streak, _ := s.health.snapshot(); streak > 0 {
			return false
		}
	}
	return true
}

// putBlobRetry archives an upload body with a short bounded synchronous
// retry: blob writes happen inline in create requests, so the budget is a
// few quick attempts, not the snapshot queue's long backoff.
func (s *Server) putBlobRetry(data []byte) (string, error) {
	const attempts = 3
	var (
		h   string
		err error
	)
	for i := 0; i < attempts; i++ {
		if i > 0 {
			s.metrics.blobRetries.Add(1)
			time.Sleep(s.backoffDelay(0) / 4)
		}
		h, err = s.cfg.Blobs.PutBlob(data)
		if err == nil {
			return h, nil
		}
	}
	return "", err
}
