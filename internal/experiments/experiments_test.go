package experiments

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/layout"
)

func TestTable1RowSmall(t *testing.T) {
	d := bench.Design{Name: "t1", Params: bench.DefaultParams(5, 2, 60)}
	row, err := RunTable1Row(d, layout.Default90nm())
	if err != nil {
		t.Fatal(err)
	}
	if row.Polygons == 0 || row.Nodes == 0 || row.Edges == 0 {
		t.Fatalf("empty row: %+v", row)
	}
	if row.NP > row.PCG {
		t.Errorf("NP %d must not exceed PCG %d", row.NP, row.PCG)
	}
	if row.PCG > row.GB {
		t.Errorf("PCG %d must not exceed GB %d", row.PCG, row.GB)
	}
	if row.CrossingsFG < row.CrossingsPCG {
		t.Errorf("FG crossings %d below PCG %d", row.CrossingsFG, row.CrossingsPCG)
	}
	if row.GGadgetNodes >= row.OGadgetNodes {
		t.Errorf("generalized gadget nodes %d should be < optimized %d",
			row.GGadgetNodes, row.OGadgetNodes)
	}
	if !strings.Contains(row.String(), "t1") {
		t.Error("row rendering")
	}
	if !strings.Contains(Table1Header(), "PCG") {
		t.Error("header rendering")
	}
}

func TestTable2RowSmall(t *testing.T) {
	d := bench.Design{Name: "t2", Params: bench.DefaultParams(6, 2, 60)}
	row, err := RunTable2Row(d, layout.Default90nm())
	if err != nil {
		t.Fatal(err)
	}
	if !row.DRCClean {
		t.Error("modified layout must be DRC clean")
	}
	if !row.Assignable {
		t.Error("modified layout must be phase-assignable")
	}
	if row.Conflicts > 0 && (row.AreaIncrease <= 0 || row.GridLines == 0) {
		t.Errorf("inconsistent row: %+v", row)
	}
	if row.MaxPerLine < 1 && row.Conflicts > 0 {
		t.Errorf("max per line: %+v", row)
	}
	if !strings.Contains(row.String(), "t2") || !strings.Contains(Table2Header(), "grid") {
		t.Error("rendering")
	}
}

func TestRunFigure2Relations(t *testing.T) {
	st, err := RunFigure2(layout.Default90nm())
	if err != nil {
		t.Fatal(err)
	}
	if st.FGNodes <= st.PCGNodes {
		t.Errorf("FG nodes %d should exceed PCG nodes %d", st.FGNodes, st.PCGNodes)
	}
	if st.FGCrossings < st.PCGCrossings {
		t.Errorf("FG crossings %d below PCG %d", st.FGCrossings, st.PCGCrossings)
	}
	if st.FGBends == 0 {
		t.Error("FG must have detour bends")
	}
}

func TestRunFigure34Monotone(t *testing.T) {
	prevG, prevO := 0, 0
	for _, deg := range []int{3, 5, 8, 12, 20} {
		st, err := RunFigure34(deg)
		if err != nil {
			t.Fatal(err)
		}
		if st.GeneralizedNodes <= prevG || st.OptimizedNodes <= prevO {
			t.Errorf("degree %d: sizes must grow (%+v)", deg, st)
		}
		if deg > 3 && st.GeneralizedNodes >= st.OptimizedNodes {
			t.Errorf("degree %d: generalized %d not smaller than optimized %d",
				deg, st.GeneralizedNodes, st.OptimizedNodes)
		}
		prevG, prevO = st.GeneralizedNodes, st.OptimizedNodes
	}
}

func TestImprovementPercent(t *testing.T) {
	r := Table1Row{OGadgetTime: 100, GGadgetTime: 84}
	if got := r.Improvement(); got < 15.9 || got > 16.1 {
		t.Errorf("improvement = %f", got)
	}
	if (Table1Row{}).Improvement() != 0 {
		t.Error("zero time improvement")
	}
}

func TestRunCorrectionComparison(t *testing.T) {
	d := bench.Design{Name: "cc", Params: bench.DefaultParams(8, 2, 60)}
	cmp, err := RunCorrectionComparison(d, layout.Default90nm())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Conflicts == 0 {
		t.Fatal("expected conflicts")
	}
	if cmp.EndToEndAreaPct <= 0 || cmp.CompactionAreaPct <= 0 {
		t.Fatalf("both strategies must add area: %+v", cmp)
	}
	if cmp.CompactionMoved == 0 {
		t.Error("compaction must move features")
	}
}
