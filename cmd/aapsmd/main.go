// Command aapsmd serves the AAPSM pipeline as a long-running HTTP/JSON
// service over the Engine/Session API: clients create sessions from layout
// uploads, then address every stage of the paper's flow — detection, phase
// assignment, correction, mask view, DRC, SVG render — and apply batched
// edits with incremental re-detection, all against a bounded LRU+TTL session
// store.
//
// Usage:
//
//	aapsmd [-addr :8080] [-parallelism N] [-detect-workers N]
//	       [-store-capacity N] [-session-ttl 30m] [-request-timeout 60s]
//	       [-max-body 33554432] [-graph pcg|fg] [-method gen|opt|lawler]
//	       [-improved-recheck] [-no-incremental] [-drain-timeout 15s]
//	       [-store-dir DIR] [-flush-interval 30s]
//	       [-max-inflight N] [-max-session-inflight N] [-queue-wait 1s]
//	       [-batch-max N] [-batch-wait 2ms]
//	       [-stream-max N] [-stream-heartbeat 15s]
//	       [-read-timeout 2m] [-write-timeout 2m] [-idle-timeout 2m]
//	       [-chaos SPEC]
//
// Concurrent POST /edits requests to one session coalesce into merged
// batches: up to -batch-max requests collected over at most -batch-wait run
// one incremental re-pipeline and fan the results back out per request.
// GET /v1/sessions/{id}/stream holds a Server-Sent Events connection
// (bounded by -stream-max, kept alive by -stream-heartbeat pings) that
// pushes per-stage results after every committed batch.
//
// See the README's "Serving", "Persistence" and "Failure modes" sections for
// the endpoint reference and curl examples. -store-dir enables session
// persistence: snapshots land in DIR/snapshots (written on eviction, every
// -flush-interval, and at shutdown) and raw GDS upload bodies in DIR/blobs,
// so sessions survive a crash or restart and are rehydrated on their next
// request. SIGINT/SIGTERM starts a graceful drain: /healthz flips to 503,
// in-flight requests finish (bounded by -drain-timeout), every live session
// is flushed, then the process exits 0.
//
// -chaos wraps the persistence stores in a deterministic fault injector for
// torture testing (never use it in production). The spec is comma-separated
// key=value pairs: seed=N, write-fail=P, enospc=P, torn=P, read-fail=P,
// read-corrupt=P, latency=DUR, plus panic=P to fire injected panics inside
// shard solvers. Probabilities are 0..1; e.g.
//
//	aapsmd -store-dir /tmp/aapsm -chaos 'seed=7,write-fail=0.1,torn=0.05'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	aapsm "repro"
	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		par      = flag.Int("parallelism", 0, "engine worker bound (0 = GOMAXPROCS)")
		workers  = flag.Int("detect-workers", 1, "shard workers per session detection")
		capacity = flag.Int("store-capacity", 1024, "max live sessions (LRU eviction past it)")
		ttl      = flag.Duration("session-ttl", 30*time.Minute, "idle session lifetime (negative = never expire)")
		reqTO    = flag.Duration("request-timeout", 60*time.Second, "per-request pipeline timeout (negative = none)")
		maxBody  = flag.Int64("max-body", 32<<20, "max upload body bytes")
		graph    = flag.String("graph", "pcg", "graph representation: pcg | fg")
		method   = flag.String("method", "gen", "T-join reduction: gen | opt | lawler")
		imp      = flag.Bool("improved-recheck", false, "use parity-based crossing recheck")
		noInc    = flag.Bool("no-incremental", false, "do not arm sessions for incremental edit-and-re-detect")
		drainTO  = flag.Duration("drain-timeout", 15*time.Second, "max wait for in-flight requests on shutdown")
		storeDir = flag.String("store-dir", "", "persistence root: snapshots + GDS blobs survive restarts (empty = in-memory only)")
		flushInt = flag.Duration("flush-interval", 30*time.Second, "period of the background snapshot flush (negative = eviction/shutdown only)")
		maxInfl  = flag.Int("max-inflight", 256, "max concurrently admitted requests; past it requests queue then 429 (negative = unlimited)")
		maxSess  = flag.Int("max-session-inflight", 16, "max concurrent requests per session (negative = unlimited)")
		qWait    = flag.Duration("queue-wait", time.Second, "how long a request may queue for an admission slot before a 429 (negative = shed immediately)")
		batchMax = flag.Int("batch-max", 32, "max edit requests coalesced into one merged batch (negative = no coalescing)")
		batchW   = flag.Duration("batch-wait", 2*time.Millisecond, "how long a batch lingers for more edit requests before running (negative = run as soon as the session is free)")
		streamN  = flag.Int("stream-max", 256, "max concurrent streaming connections (negative = unbounded)")
		streamHB = flag.Duration("stream-heartbeat", 15*time.Second, "idle-stream keep-alive ping period")
		readTO   = flag.Duration("read-timeout", 2*time.Minute, "http.Server full-request read timeout")
		writeTO  = flag.Duration("write-timeout", 2*time.Minute, "http.Server response write timeout")
		idleTO   = flag.Duration("idle-timeout", 2*time.Minute, "http.Server keep-alive idle timeout")
		chaos    = flag.String("chaos", "", "fault-injection spec (dev/torture only): seed=,write-fail=,enospc=,torn=,read-fail=,read-corrupt=,latency=,panic=")
		rules    = flag.String("rules", "bright-90nm", "default rules profile for new sessions (per-session override: POST /v1/sessions?profile=)")
	)
	flag.Parse()

	if _, err := aapsm.ProfileByName(*rules); err != nil {
		fatalf("%v", err)
	}
	opts := []aapsm.EngineOption{
		aapsm.WithProfile(*rules),
		aapsm.WithParallelism(*par),
		aapsm.WithImprovedRecheck(*imp),
	}
	switch *graph {
	case "pcg":
		opts = append(opts, aapsm.WithGraph(aapsm.PCG))
	case "fg":
		opts = append(opts, aapsm.WithGraph(aapsm.FG))
	default:
		fatalf("unknown -graph %q", *graph)
	}
	switch *method {
	case "gen":
		opts = append(opts, aapsm.WithTJoinMethod(aapsm.GeneralizedGadgets))
	case "opt":
		opts = append(opts, aapsm.WithTJoinMethod(aapsm.OptimizedGadgets))
	case "lawler":
		opts = append(opts, aapsm.WithTJoinMethod(aapsm.LawlerReduction))
	default:
		fatalf("unknown -method %q", *method)
	}

	cfg := server.Config{
		Engine:             aapsm.NewEngine(opts...),
		StoreCapacity:      *capacity,
		SessionTTL:         *ttl,
		RequestTimeout:     *reqTO,
		DetectWorkers:      *workers,
		MaxBodyBytes:       *maxBody,
		IncrementalOff:     *noInc,
		FlushInterval:      *flushInt,
		MaxInflight:        *maxInfl,
		MaxSessionInflight: *maxSess,
		QueueWait:          *qWait,
		BatchMax:           *batchMax,
		BatchWait:          *batchW,
		MaxStreams:         *streamN,
		StreamHeartbeat:    *streamHB,
	}
	if *storeDir != "" {
		snaps, err := persist.NewDiskStore(filepath.Join(*storeDir, "snapshots"))
		if err != nil {
			fatalf("open snapshot store: %v", err)
		}
		blobs, err := persist.NewDiskBlobStore(filepath.Join(*storeDir, "blobs"))
		if err != nil {
			fatalf("open blob store: %v", err)
		}
		cfg.Snapshots = snaps
		cfg.Blobs = blobs
	}
	if *chaos != "" {
		applyChaos(&cfg, *chaos)
	}
	srv := server.New(cfg)
	defer srv.Close()

	// Full read/write/idle timeouts (not just the header timeout) so a
	// stalled or abandoned client cannot hold a connection and its admission
	// slot forever.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTO,
		WriteTimeout:      *writeTO,
		IdleTimeout:       *idleTO,
	}

	// Bind before serving so `-addr 127.0.0.1:0` works: the kernel picks a
	// free port and the log line reports the actual address. Harness scripts
	// (the CI smoke) parse that line instead of hard-coding a port, so
	// parallel runs cannot collide.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen %s: %v", *addr, err)
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("aapsmd listening on %s (capacity %d, ttl %v)", ln.Addr(), *capacity, *ttl)
		errc <- httpSrv.Serve(ln)
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("aapsmd draining (up to %v)", *drainTO)
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		// A timeout here means in-flight requests were cut off; report it
		// but still exit cleanly — the drain did all it could.
		log.Printf("aapsmd shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("aapsmd serve: %v", err)
	}
	if *storeDir != "" {
		// Persist even sessions that were never evicted, so a graceful stop
		// loses nothing.
		srv.FlushAll()
		log.Printf("aapsmd flushed sessions to %s", *storeDir)
	}
	log.Printf("aapsmd stopped")
}

// applyChaos wraps the configured stores in deterministic fault injectors
// and arms the shard-solver panic hook, per the -chaos spec. Without
// -store-dir it installs in-memory stores first so every injected failure
// path is still exercised.
func applyChaos(cfg *server.Config, spec string) {
	fcfg, extra, err := persist.ParseFaultConfig(spec)
	if err != nil {
		fatalf("-chaos: %v", err)
	}
	panicP := 0.0
	if v, ok := extra["panic"]; ok {
		panicP, err = strconv.ParseFloat(v, 64)
		if err != nil || panicP < 0 || panicP > 1 {
			fatalf("-chaos: panic=%q: want a probability in [0,1]", v)
		}
		delete(extra, "panic")
	}
	for k := range extra {
		fatalf("-chaos: unknown key %q", k)
	}
	if cfg.Snapshots == nil {
		cfg.Snapshots = persist.NewMemStore()
		cfg.Blobs = persist.NewMemBlobStore()
	}
	cfg.Snapshots = persist.NewFaultStore(cfg.Snapshots, fcfg)
	cfg.Blobs = persist.NewFaultBlobStore(cfg.Blobs, fcfg)
	if panicP > 0 {
		var mu sync.Mutex
		rng := rand.New(rand.NewSource(fcfg.Seed + 1))
		hook := func() {
			mu.Lock()
			fire := rng.Float64() < panicP
			mu.Unlock()
			if fire {
				panic("chaos: injected shard-solver panic")
			}
		}
		core.FaultHook.Store(&hook)
	}
	log.Printf("aapsmd CHAOS MODE: injecting faults (%s) — never use in production", spec)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "aapsmd: "+format+"\n", args...)
	os.Exit(2)
}
