package tjoin

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func mustSolve(t *testing.T, f func() (Result, error)) Result {
	t.Helper()
	r, err := f()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEmptyTerminalSet(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 5)
	for _, cap := range []int{1, 3, Unbounded} {
		r := mustSolve(t, func() (Result, error) { return SolveGadget(g, nil, cap) })
		if len(r.Edges) != 0 || r.Weight != 0 {
			t.Errorf("cap %d: empty T should give empty join, got %v", cap, r)
		}
	}
	r := mustSolve(t, func() (Result, error) { return SolveLawler(g, nil) })
	if len(r.Edges) != 0 {
		t.Error("lawler empty T")
	}
}

func TestSingleEdgeJoin(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 5)
	T := []int{0, 1}
	for _, cap := range []int{1, 2, 3, Unbounded} {
		r := mustSolve(t, func() (Result, error) { return SolveGadget(g, T, cap) })
		if r.Weight != 5 || len(r.Edges) != 1 {
			t.Fatalf("cap %d: %+v", cap, r)
		}
		if err := CheckJoin(g, T, r.Edges); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPathJoin(t *testing.T) {
	// Path 0-1-2-3, terminals {0,3}: join = whole path.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	T := []int{0, 3}
	for _, cap := range []int{1, 2, 3, Unbounded} {
		r := mustSolve(t, func() (Result, error) { return SolveGadget(g, T, cap) })
		if r.Weight != 6 || len(r.Edges) != 3 {
			t.Fatalf("cap %d: %+v", cap, r)
		}
	}
	r := mustSolve(t, func() (Result, error) { return SolveLawler(g, T) })
	if r.Weight != 6 {
		t.Fatalf("lawler: %+v", r)
	}
}

func TestCycleShortSide(t *testing.T) {
	// 4-cycle with terminals adjacent: take the cheaper arc.
	g := graph.New(4)
	g.AddEdge(0, 1, 10) // direct
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 1) // long way costs 3
	T := []int{0, 1}
	for _, cap := range []int{1, 3, Unbounded} {
		r := mustSolve(t, func() (Result, error) { return SolveGadget(g, T, cap) })
		if r.Weight != 3 {
			t.Fatalf("cap %d: weight %d, want 3", cap, r.Weight)
		}
		if err := CheckJoin(g, T, r.Edges); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNoJoinOddComponent(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	// Terminals 0,1,2: component {2,3} has odd terminal count.
	T := []int{0, 1, 2}
	if _, err := SolveGadget(g, T, Unbounded); !errors.Is(err, ErrNoTJoin) {
		t.Fatalf("gadget err = %v", err)
	}
	if _, err := SolveLawler(g, T); !errors.Is(err, ErrNoTJoin) {
		t.Fatalf("lawler err = %v", err)
	}
	if _, err := SolveExhaustive(g, T); !errors.Is(err, ErrNoTJoin) {
		t.Fatalf("exhaustive err = %v", err)
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 1, 4)
	g.AddEdge(1, 1, 1)
	T := []int{0, 1}
	r := mustSolve(t, func() (Result, error) { return SolveGadget(g, T, Unbounded) })
	if r.Weight != 4 || len(r.Edges) != 1 || r.Edges[0] != 1 {
		t.Fatalf("%+v", r)
	}
}

func TestParallelEdges(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 9)
	g.AddEdge(0, 1, 2)
	T := []int{0, 1}
	for _, cap := range []int{1, 3, Unbounded} {
		r := mustSolve(t, func() (Result, error) { return SolveGadget(g, T, cap) })
		if r.Weight != 2 || len(r.Edges) != 1 || r.Edges[0] != 1 {
			t.Fatalf("cap %d: %+v", cap, r)
		}
	}
	// Terminals empty but parallel odd cycle? T = {} keeps empty join even
	// though both parallel edges form a cycle of weight 11.
	r := mustSolve(t, func() (Result, error) { return SolveGadget(g, nil, 3) })
	if len(r.Edges) != 0 {
		t.Fatalf("%+v", r)
	}
}

func TestFourTerminalsPairing(t *testing.T) {
	// Star: center 4, leaves 0..3. T = all leaves. Join must pair leaves
	// through the center: all four spokes.
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, 4, int64(i+1))
	}
	T := []int{0, 1, 2, 3}
	for _, cap := range []int{1, 2, 3, Unbounded} {
		r := mustSolve(t, func() (Result, error) { return SolveGadget(g, T, cap) })
		if r.Weight != 10 || len(r.Edges) != 4 {
			t.Fatalf("cap %d: %+v", cap, r)
		}
		if err := CheckJoin(g, T, r.Edges); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGadgetSizesShrinkWithLargerGroups(t *testing.T) {
	// A node of degree 8 with terminals elsewhere; generalized gadget must
	// materialize fewer nodes than the optimized (cap-3) one.
	g := graph.New(9)
	for i := 0; i < 8; i++ {
		g.AddEdge(i, 8, 1)
	}
	T := []int{0, 1}
	rOpt := mustSolve(t, func() (Result, error) { return SolveGadget(g, T, 3) })
	rGen := mustSolve(t, func() (Result, error) { return SolveGadget(g, T, Unbounded) })
	if rOpt.Weight != rGen.Weight {
		t.Fatalf("weights differ: %d vs %d", rOpt.Weight, rGen.Weight)
	}
	if rGen.GadgetNodes >= rOpt.GadgetNodes {
		t.Errorf("generalized nodes %d should be < optimized nodes %d",
			rGen.GadgetNodes, rOpt.GadgetNodes)
	}
}

func randGraph(rng *rand.Rand, maxN, maxM int) (*graph.Graph, []int) {
	n := rng.Intn(maxN-1) + 2
	g := graph.New(n)
	m := rng.Intn(maxM)
	for i := 0; i < m; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n), int64(rng.Intn(20)))
	}
	// Random even-size terminal set among nodes.
	var T []int
	for v := 0; v < n; v++ {
		if rng.Intn(2) == 0 {
			T = append(T, v)
		}
	}
	if len(T)%2 == 1 {
		T = T[:len(T)-1]
	}
	return g, T
}

func TestRandomCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	caps := []int{1, 2, 3, 5, Unbounded}
	for trial := 0; trial < 300; trial++ {
		g, T := randGraph(rng, 7, 12)
		want, errW := SolveExhaustive(g, T)
		for _, cap := range caps {
			got, err := SolveGadget(g, T, cap)
			if errW != nil {
				if err == nil {
					t.Fatalf("trial %d cap %d: expected error, got weight %d", trial, cap, got.Weight)
				}
				continue
			}
			if err != nil {
				t.Fatalf("trial %d cap %d: %v", trial, cap, err)
			}
			if got.Weight != want.Weight {
				t.Fatalf("trial %d cap %d: weight %d, want %d (n=%d edges=%v T=%v)",
					trial, cap, got.Weight, want.Weight, g.N(), g.Edges(), T)
			}
			if err := CheckJoin(g, T, got.Edges); err != nil {
				t.Fatalf("trial %d cap %d: %v", trial, cap, err)
			}
		}
		gotL, errL := SolveLawler(g, T)
		if errW != nil {
			if errL == nil {
				t.Fatalf("trial %d lawler: expected error", trial)
			}
			continue
		}
		if errL != nil {
			t.Fatalf("trial %d lawler: %v", trial, errL)
		}
		if gotL.Weight != want.Weight {
			t.Fatalf("trial %d lawler: weight %d, want %d", trial, gotL.Weight, want.Weight)
		}
		if err := CheckJoin(g, T, gotL.Edges); err != nil {
			t.Fatalf("trial %d lawler join: %v", trial, err)
		}
	}
}

func TestLargerRandomAgreement(t *testing.T) {
	// Bigger graphs: gadget vs lawler (no exhaustive).
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(20) + 5
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), int64(rng.Intn(50)))
		}
		var T []int
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				T = append(T, v)
			}
		}
		if len(T)%2 == 1 {
			T = T[:len(T)-1]
		}
		rl, errL := SolveLawler(g, T)
		rg, errG := SolveGadget(g, T, Unbounded)
		ro, errO := SolveGadget(g, T, 3)
		if (errL != nil) != (errG != nil) || (errL != nil) != (errO != nil) {
			t.Fatalf("trial %d: error disagreement %v %v %v", trial, errL, errG, errO)
		}
		if errL != nil {
			continue
		}
		if rl.Weight != rg.Weight || rl.Weight != ro.Weight {
			t.Fatalf("trial %d: weights lawler=%d gen=%d opt=%d", trial, rl.Weight, rg.Weight, ro.Weight)
		}
		for _, r := range []Result{rl, rg, ro} {
			if err := CheckJoin(g, T, r.Edges); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func TestValidationErrors(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, -1)
	if _, err := SolveGadget(g, []int{0, 1}, 3); err == nil {
		t.Error("negative weights must be rejected")
	}
	h := graph.New(2)
	h.AddEdge(0, 1, 1)
	if _, err := SolveGadget(h, []int{0, 0}, 3); err == nil {
		t.Error("duplicate terminals must be rejected")
	}
	if _, err := SolveGadget(h, []int{5, 1}, 3); err == nil {
		t.Error("out-of-range terminal must be rejected")
	}
	if _, err := SolveGadget(h, []int{0, 1}, 0); err == nil {
		t.Error("groupCap 0 must be rejected")
	}
	if err := CheckJoin(h, []int{0, 1}, []int{0, 0}); err == nil {
		t.Error("duplicate join edge must be rejected")
	}
	if err := CheckJoin(h, []int{0}, []int{0}); err == nil {
		t.Error("wrong parity must be rejected")
	}
	if err := CheckJoin(h, []int{0, 1}, []int{0}); err != nil {
		t.Errorf("valid join rejected: %v", err)
	}
}

func TestSolveComponentsMatchesWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(888))
	for trial := 0; trial < 100; trial++ {
		// Two or three islands plus noise.
		g := graph.New(0)
		var T []int
		for isl := 0; isl < rng.Intn(3)+1; isl++ {
			base := g.N()
			n := rng.Intn(5) + 2
			for i := 0; i < n; i++ {
				g.AddNode()
			}
			for i := 0; i < 2*n; i++ {
				g.AddEdge(base+rng.Intn(n), base+rng.Intn(n), int64(rng.Intn(15)))
			}
			var isT []int
			for v := base; v < base+n; v++ {
				if rng.Intn(2) == 0 {
					isT = append(isT, v)
				}
			}
			if len(isT)%2 == 1 {
				isT = isT[:len(isT)-1]
			}
			T = append(T, isT...)
		}
		if g.M() > 20 {
			continue
		}
		want, errW := SolveExhaustive(g, T)
		for _, m := range []Method{MethodGeneralizedGadget, MethodOptimizedGadget, MethodLawler} {
			got, err := Solve(g, T, Options{Method: m})
			if errW != nil {
				if err == nil {
					t.Fatalf("trial %d m=%d: expected error", trial, m)
				}
				continue
			}
			if err != nil {
				t.Fatalf("trial %d m=%d: %v", trial, m, err)
			}
			if got.Weight != want.Weight {
				t.Fatalf("trial %d m=%d: weight %d want %d", trial, m, got.Weight, want.Weight)
			}
			if err := CheckJoin(g, T, got.Edges); err != nil {
				t.Fatalf("trial %d m=%d: %v", trial, m, err)
			}
		}
	}
}

func TestSolveExhaustiveContextCancellation(t *testing.T) {
	// A 20-edge instance spins through 2^20 masks; a pre-cancelled context
	// must abort promptly with ctx.Err() instead of enumerating them.
	g := graph.New(10)
	for i := 0; i < 20; i++ {
		g.AddEdge(i%10, (i+1)%10, int64(i%5+1))
	}
	T := []int{0, 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveExhaustiveContext(ctx, g, T); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// And an intact context still solves it, agreeing with the gadget path.
	want, err := SolveGadget(g, T, Unbounded)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveExhaustiveContext(context.Background(), g, T)
	if err != nil {
		t.Fatal(err)
	}
	if got.Weight != want.Weight {
		t.Fatalf("weight %d, want %d", got.Weight, want.Weight)
	}
}

func TestLawlerSparsificationStress(t *testing.T) {
	// Clustered instances with heavy ties: the closure pruning must never
	// change the optimum. Exhaustive is the ground truth.
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 200; trial++ {
		g := graph.New(0)
		var T []int
		for isl := 0; isl < rng.Intn(2)+1; isl++ {
			base := g.N()
			n := rng.Intn(4) + 2
			for i := 0; i < n; i++ {
				g.AddNode()
			}
			for i := 0; i < n+rng.Intn(n); i++ {
				// Small weight range forces many equal-weight ties.
				g.AddEdge(base+rng.Intn(n), base+rng.Intn(n), int64(rng.Intn(3)))
			}
			var isT []int
			for v := base; v < base+n; v++ {
				if rng.Intn(2) == 0 {
					isT = append(isT, v)
				}
			}
			if len(isT)%2 == 1 {
				isT = isT[:len(isT)-1]
			}
			T = append(T, isT...)
		}
		if g.M() > 20 {
			continue
		}
		want, errW := SolveExhaustive(g, T)
		got, err := SolveLawler(g, T)
		if errW != nil {
			if err == nil {
				t.Fatalf("trial %d: expected error", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Weight != want.Weight {
			t.Fatalf("trial %d: weight %d, want %d (edges=%v T=%v)",
				trial, got.Weight, want.Weight, g.Edges(), T)
		}
		if err := CheckJoin(g, T, got.Edges); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
