package aapsm

import "repro/internal/bench"

// BenchmarkParams parameterizes the synthetic standard-cell layout
// generator used by the reproduction experiments.
type BenchmarkParams = bench.Params

// BenchmarkDesign is one named entry of the benchmark suite.
type BenchmarkDesign = bench.Design

// DefaultBenchmarkParams returns the balanced generator configuration for
// the given size.
func DefaultBenchmarkParams(seed int64, rows, gatesPerRow int) BenchmarkParams {
	return bench.DefaultParams(seed, rows, gatesPerRow)
}

// GenerateBenchmark builds a deterministic synthetic layout.
func GenerateBenchmark(name string, p BenchmarkParams) *Layout {
	return bench.Generate(name, p)
}

// BenchmarkSuite returns the designs d1..d8 used to regenerate the paper's
// Table 1 and Table 2 (≈1 K to ≈160 K polygons).
func BenchmarkSuite() []BenchmarkDesign { return bench.Suite() }

// Figure1Layout returns the paper's Figure 1 situation: an odd cycle of
// phase dependencies with no valid assignment.
func Figure1Layout() *Layout { return bench.Figure1Layout() }

// Figure2Layout returns the layout used to contrast the PCG with the FG.
func Figure2Layout() *Layout { return bench.Figure2Layout() }

// Figure5Layout returns stacked aligned conflicts correctable by one
// end-to-end vertical space.
func Figure5Layout() *Layout { return bench.Figure5Layout() }
