package lint

import (
	"go/ast"
	"go/types"
)

// CtxflowAnalyzer enforces that cancellation stays threaded through the
// pipeline:
//
//   - context.Background() / context.TODO() are banned in non-main, non-test
//     code: library code receives its context, it never invents one;
//   - in the pipeline packages and the root package, a function that takes a
//     context.Context must not drop it on the floor when calling a
//     context-less function that has a context-aware sibling: calling
//     Solve(...) where SolveContext(ctx, ...) exists (or Foo where FooCtx
//     exists) severs cancellation for the whole subtree;
//   - passing a nil literal where a callee expects a context.Context is
//     flagged everywhere.
var CtxflowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "ban context.Background/TODO in library code and flag dropped-context calls in pipeline packages",
	Run:  runCtxflow,
}

func runCtxflow(pass *Pass) {
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		if pass.testFiles[file] {
			continue
		}
		if !isMain {
			checkNoFreshContexts(pass, file)
		}
		checkNilContextArgs(pass, file)
		if isPipelinePkg(pass.PkgPath) || isRootPkg(pass.PkgPath) {
			checkDroppedContexts(pass, file)
		}
	}
}

func isRootPkg(path string) bool { return path == "repro" }

func checkNoFreshContexts(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := selectorCall(pass.Info, call, "context"); ok && (name == "Background" || name == "TODO") {
			pass.Reportf(call.Pos(), "context.%s in library code: accept a context.Context from the caller instead", name)
		}
		return true
	})
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkNilContextArgs flags explicit nil passed for a context.Context
// parameter.
func checkNilContextArgs(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sig := callSignature(pass.Info, call)
		if sig == nil {
			return true
		}
		for i, arg := range call.Args {
			if i >= sig.Params().Len() {
				break
			}
			if !isContextType(sig.Params().At(i).Type()) {
				continue
			}
			if id, ok := arg.(*ast.Ident); ok && id.Name == "nil" {
				if _, isNil := pass.Info.Uses[id].(*types.Nil); isNil {
					pass.Reportf(arg.Pos(), "nil passed as context.Context: pass the caller's ctx (or context.Background in main)")
				}
			}
		}
		return true
	})
}

func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// checkDroppedContexts flags calls, inside a function that has a
// context.Context parameter, to a context-less function F when a sibling
// FContext (or FCtx) with a leading context parameter exists in the same
// scope — the ctx should have been threaded through.
func checkDroppedContexts(pass *Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || !funcHasCtxParam(pass, fn) {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeObject(pass.Info, call)
			if callee == nil {
				return true
			}
			sig, ok := callee.Type().(*types.Signature)
			if !ok || signatureTakesCtx(sig) {
				return true
			}
			if sibling := contextSibling(callee); sibling != "" {
				pass.Reportf(call.Pos(), "call to %s drops ctx: use %s and pass the caller's context", callee.Name(), sibling)
			}
			return true
		})
	}
}

func funcHasCtxParam(pass *Pass, fn *ast.FuncDecl) bool {
	obj := pass.Info.Defs[fn.Name]
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	return ok && signatureTakesCtx(sig)
}

func signatureTakesCtx(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// calleeObject resolves the function or method object a call targets, or nil
// for indirect calls, builtins, and conversions.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// contextSibling returns the name of a context-taking variant of fn visible
// in the same package scope (or, for methods, the same receiver type), or
// "".
func contextSibling(fn types.Object) string {
	f, ok := fn.(*types.Func)
	if !ok || f.Pkg() == nil {
		return ""
	}
	for _, suffix := range []string{"Context", "Ctx"} {
		name := f.Name() + suffix
		sig := f.Type().(*types.Signature)
		if sig.Recv() != nil {
			// Method: look for a sibling method on the same receiver type.
			rt := sig.Recv().Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			named, ok := rt.(*types.Named)
			if !ok {
				continue
			}
			for i := 0; i < named.NumMethods(); i++ {
				m := named.Method(i)
				if m.Name() == name && signatureTakesCtx(m.Type().(*types.Signature)) {
					return name
				}
			}
			continue
		}
		if obj := f.Pkg().Scope().Lookup(name); obj != nil {
			if sibSig, ok := obj.Type().(*types.Signature); ok && signatureTakesCtx(sibSig) {
				return name
			}
		}
	}
	return ""
}
