package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Ref names one stored snapshot: the session ID it belongs to, the content
// hash of the layout the session was created from, and whether the session
// had diverged from that content (edited) at snapshot time. Pristine
// snapshots additionally satisfy create-by-hash rehydration; edited ones are
// reachable only by ID.
type Ref struct {
	ID     string
	Hash   string
	Edited bool
}

// ErrNotFound marks a Get/Delete for a snapshot the store does not hold.
var ErrNotFound = errors.New("persist: snapshot not found")

// Store is a snapshot index: encoded session snapshots keyed by Ref. Put
// replaces any previous snapshot for the same session ID (including one with
// a different Edited flag — a session snapshots pristine first and edited
// later). Implementations are safe for concurrent use.
type Store interface {
	Put(ref Ref, data []byte) error
	Get(ref Ref) ([]byte, error)
	List() ([]Ref, error)
	Delete(ref Ref) error
	Close() error
}

// ---- memory store ----

// MemStore is an in-process Store for tests and single-process setups.
type MemStore struct {
	mu   sync.Mutex
	byID map[string]memSnap
}

type memSnap struct {
	ref  Ref
	data []byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{byID: make(map[string]memSnap)}
}

func (m *MemStore) Put(ref Ref, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byID[ref.ID] = memSnap{ref: ref, data: append([]byte(nil), data...)}
	return nil
}

func (m *MemStore) Get(ref Ref) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.byID[ref.ID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, ref.ID)
	}
	return append([]byte(nil), s.data...), nil
}

func (m *MemStore) List() ([]Ref, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	refs := make([]Ref, 0, len(m.byID))
	for _, s := range m.byID {
		refs = append(refs, s.ref)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].ID < refs[j].ID })
	return refs, nil
}

func (m *MemStore) Delete(ref Ref) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byID[ref.ID]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, ref.ID)
	}
	delete(m.byID, ref.ID)
	return nil
}

func (m *MemStore) Close() error { return nil }

// ---- disk store ----

// DiskStore persists snapshots as one file per session under a
// directory-per-content-hash layout:
//
//	root/<hash>/<id>.p.snap   pristine snapshot
//	root/<hash>/<id>.e.snap   edited snapshot
//
// Writes are atomic (temp file + rename + directory fsync), so a crash
// mid-flush leaves either the old snapshot or the new one, never a torn
// file; torn data is additionally caught by the codec checksum at read time.
// Files that do not match the naming scheme are ignored by List, so foreign
// files in the tree cannot break startup.
type DiskStore struct {
	root string
	mu   sync.Mutex
}

var snapFileRe = regexp.MustCompile(`^([A-Za-z0-9_.-]+)\.([pe])\.snap$`)

// NewDiskStore opens (creating if needed) a disk store rooted at dir. Crash
// debris from a previous process — orphaned temp files from interrupted
// atomic writes, and snapshot files whose contents fail envelope validation
// (truncated or torn by a crash mid-write) — is swept on open, so torn
// artifacts never linger or satisfy List.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &DiskStore{root: dir}
	d.sweepOrphans()
	return d, nil
}

// sweepOrphans removes crash debris at startup: `.tmp-*` files an
// interrupted atomic write left behind, snapshot files whose envelope fails
// validation (ErrCorrupt — a crash truncated or tore them; rehydration would
// reject them anyway), and hash directories emptied by the sweep. Snapshots
// from another format version (ErrVersion) are intact data a different build
// can read, so they are kept. Best-effort: unreadable entries are skipped.
func (d *DiskStore) sweepOrphans() {
	dirs, err := os.ReadDir(d.root)
	if err != nil {
		return
	}
	for _, de := range dirs {
		if !de.IsDir() {
			if strings.HasPrefix(de.Name(), ".tmp-") {
				os.Remove(filepath.Join(d.root, de.Name()))
			}
			continue
		}
		sub := filepath.Join(d.root, de.Name())
		files, err := os.ReadDir(sub)
		if err != nil {
			continue
		}
		kept := 0
		for _, fe := range files {
			name := fe.Name()
			path := filepath.Join(sub, name)
			switch {
			case fe.IsDir():
				kept++
			case strings.HasPrefix(name, ".tmp-"):
				os.Remove(path)
			case snapFileRe.MatchString(name):
				data, rerr := os.ReadFile(path)
				if rerr == nil && errors.Is(Validate(data), ErrCorrupt) {
					os.Remove(path)
				} else {
					kept++
				}
			default:
				kept++ // foreign file: List ignores it, leave it alone
			}
		}
		if kept == 0 {
			os.Remove(sub)
		}
	}
}

func (d *DiskStore) path(ref Ref) (string, error) {
	if err := checkComponent(ref.Hash); err != nil {
		return "", fmt.Errorf("persist: bad snapshot hash %q: %w", ref.Hash, err)
	}
	if err := checkComponent(ref.ID); err != nil {
		return "", fmt.Errorf("persist: bad snapshot id %q: %w", ref.ID, err)
	}
	flavor := "p"
	if ref.Edited {
		flavor = "e"
	}
	return filepath.Join(d.root, ref.Hash, ref.ID+"."+flavor+".snap"), nil
}

// checkComponent rejects names that could escape the store directory or
// collide with the file naming scheme.
func checkComponent(s string) error {
	if s == "" || len(s) > 255 {
		return errors.New("empty or oversized path component")
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("character %q not allowed", c)
		}
	}
	if strings.HasPrefix(s, ".") {
		return errors.New("leading dot not allowed")
	}
	return nil
}

func (d *DiskStore) Put(ref Ref, data []byte) error {
	path, err := d.path(ref)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, path)
	}
	if werr != nil {
		os.Remove(tmpName)
		return werr
	}
	syncDir(dir)
	// A session that diverged after its pristine snapshot (or vice versa)
	// must not leave a stale sibling of the other flavor behind.
	other := Ref{ID: ref.ID, Hash: ref.Hash, Edited: !ref.Edited}
	if op, err := d.path(other); err == nil {
		os.Remove(op)
	}
	return nil
}

func (d *DiskStore) Get(ref Ref) ([]byte, error) {
	path, err := d.path(ref)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, ref.ID)
	}
	return data, err
}

func (d *DiskStore) List() ([]Ref, error) {
	dirs, err := os.ReadDir(d.root)
	if err != nil {
		return nil, err
	}
	var refs []Ref
	for _, de := range dirs {
		if !de.IsDir() || checkComponent(de.Name()) != nil {
			continue
		}
		files, err := os.ReadDir(filepath.Join(d.root, de.Name()))
		if err != nil {
			continue
		}
		for _, fe := range files {
			m := snapFileRe.FindStringSubmatch(fe.Name())
			if fe.IsDir() || m == nil {
				continue
			}
			refs = append(refs, Ref{ID: m[1], Hash: de.Name(), Edited: m[2] == "e"})
		}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].ID < refs[j].ID })
	return refs, nil
}

func (d *DiskStore) Delete(ref Ref) error {
	path, err := d.path(ref)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	err = os.Remove(path)
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotFound, ref.ID)
	}
	// Prune the hash directory once its last snapshot is gone; a non-empty
	// directory makes Remove fail, which is fine.
	os.Remove(filepath.Dir(path))
	return err
}

func (d *DiskStore) Close() error { return nil }

// syncDir fsyncs a directory so a rename survives power loss; best-effort
// (some filesystems reject directory fsync).
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}
