// Package mask synthesizes the manufacturing view of a phase-assigned
// layout: the feature layer plus the 0° and 180° shifter aperture layers,
// emitted as one GDSII-compatible layout. This is the artifact an AAPSM flow
// hands to mask data preparation once conflicts are detected and corrected.
//
// The view is tone-aware. On a bright-field mask the drawn features are
// chrome on a clear background (LayerChrome); on a dark-field mask they are
// clear openings etched into chrome (LayerOpening). The phase-consistency
// conditions are tone-independent, so Validate applies unchanged.
package mask

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/shifter"
)

// Conventional layer numbers for the emitted mask view.
const (
	// LayerChrome carries the drawn features of a bright-field mask.
	LayerChrome = 0
	// LayerOpening carries the drawn features of a dark-field mask: clear
	// openings in the chrome background.
	LayerOpening = 1
	// LayerShifter0 carries 0° shifter apertures.
	LayerShifter0 = 10
	// LayerShifter180 carries 180° shifter apertures.
	LayerShifter180 = 11
)

// ErrPhaseCount is returned when the assignment does not cover the shifter
// set.
var ErrPhaseCount = errors.New("mask: phase assignment does not match shifter set")

// Build combines a layout, its shifter set and a phase assignment into a
// single multi-layer layout. Features keep their original layers when
// non-zero; layer-0 features land on the tone's feature layer — LayerChrome
// (also 0) on a bright-field mask, LayerOpening on a dark-field mask.
func Build(l *layout.Layout, set *shifter.Set, phases []core.Phase, tone layout.Tone) (*layout.Layout, error) {
	if len(phases) != len(set.Shifters) {
		return nil, fmt.Errorf("%w: %d phases for %d shifters", ErrPhaseCount, len(phases), len(set.Shifters))
	}
	featureLayer := LayerChrome
	if tone == layout.DarkField {
		featureLayer = LayerOpening
	}
	out := layout.New(l.Name + ".mask")
	for _, f := range l.Features {
		ly := f.Layer
		if ly == 0 {
			ly = featureLayer
		}
		out.AddOnLayer(f.Rect, ly)
	}
	for i, s := range set.Shifters {
		layerNum := LayerShifter0
		if phases[i] == core.Phase180 {
			layerNum = LayerShifter180
		}
		out.AddOnLayer(s.Rect, layerNum)
	}
	return out, nil
}

// Stats summarizes a mask view.
type Stats struct {
	Chrome, Phase0, Phase180 int
}

// Count tallies shapes per mask layer.
func Count(l *layout.Layout) Stats {
	var s Stats
	for _, f := range l.Features {
		switch f.Layer {
		case LayerShifter0:
			s.Phase0++
		case LayerShifter180:
			s.Phase180++
		default:
			s.Chrome++
		}
	}
	return s
}

// Validate checks the mask view's physical consistency: every critical
// chrome feature is flanked by exactly two apertures of opposite phase, and
// no two opposite-phase apertures violate the shifter spacing rule unless
// the pair was waived by detection.
func Validate(l *layout.Layout, set *shifter.Set, phases []core.Phase, waived map[int]bool, r layout.Rules) []string {
	return ValidateSubset(l, set, phases, waived, r, nil, nil)
}

// ValidateSubset is Validate restricted to the features and overlaps the
// filters admit (a nil filter admits everything). The incremental pipeline
// passes filters marking the conflict clusters the last edit touched: clean
// clusters kept their phases and waivers bit-for-bit, so a previously clean
// validation cannot regress there and re-checking only the dirty scope
// decides consistency for the whole mask.
func ValidateSubset(l *layout.Layout, set *shifter.Set, phases []core.Phase, waived map[int]bool, r layout.Rules, checkFeature, checkOverlap func(int) bool) []string {
	var problems []string
	// PairOf is a map: iterate its keys in sorted order so the problem list
	// (and the first problem surfaced in ErrMaskInconsistent) is stable
	// across runs instead of following randomized map order.
	feats := make([]int, 0, len(set.PairOf))
	for fi := range set.PairOf {
		feats = append(feats, fi)
	}
	sort.Ints(feats)
	for _, fi := range feats {
		pair := set.PairOf[fi]
		if checkFeature != nil && !checkFeature(fi) {
			continue
		}
		if phases[pair[0]] == phases[pair[1]] {
			problems = append(problems,
				fmt.Sprintf("feature %d flanked by same-phase apertures", fi))
		}
	}
	for oi, ov := range set.Overlaps {
		if checkOverlap != nil && !checkOverlap(oi) {
			continue
		}
		if waived[oi] {
			continue
		}
		if phases[ov.A] != phases[ov.B] {
			problems = append(problems,
				fmt.Sprintf("overlapping apertures %d,%d carry opposite phases", ov.A, ov.B))
		}
	}
	return problems
}
