package aapsm

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Engine is an immutable configuration of the AAPSM flow: process rules,
// graph representation, T-join reduction, recheck mode and worker count.
// Build one with NewEngine and functional options; a single Engine is safe
// for concurrent use from any number of goroutines and is the factory for
// per-layout Sessions.
//
//	eng := aapsm.NewEngine(
//		aapsm.WithRules(aapsm.Default90nmRules()),
//		aapsm.WithGraph(aapsm.PCG),
//		aapsm.WithImprovedRecheck(true),
//	)
//	s := eng.NewSession(l)
//	res, err := s.Detect(ctx)
type Engine struct {
	rules   Rules
	opts    DetectOptions
	workers int
	// profile is the registry name the rules came from ("" for custom rules
	// set via WithRules).
	profile string
	// err is the sticky construction error (e.g. WithProfile with an unknown
	// name); every stage of every session derived from the engine reports it.
	err error
}

// EngineOption configures NewEngine.
type EngineOption func(*Engine)

// WithRules sets the process rules (default: Default90nmRules). It resets
// the engine's profile name to "" (custom rules); use WithProfile to pick a
// registered preset by name.
func WithRules(r Rules) EngineOption {
	return func(e *Engine) { e.rules, e.profile = r, "" }
}

// WithGraph selects the graph representation: PCG (default) or the FG
// baseline.
func WithGraph(k GraphKind) EngineOption {
	return func(e *Engine) { e.opts.Graph = k }
}

// WithTJoinMethod selects the reduction used by the optimal bipartization
// step (default: GeneralizedGadgets).
func WithTJoinMethod(m TJoinMethod) EngineOption {
	return func(e *Engine) { e.opts.Method = m }
}

// WithImprovedRecheck toggles the parity-based re-admission of
// planarization-removed edges in flow step 3 (never selects more conflicts
// than the paper's coloring recheck; default off = the paper's method).
func WithImprovedRecheck(on bool) EngineOption {
	return func(e *Engine) { e.opts.ImprovedRecheck = on }
}

// WithParallelism bounds the engine's worker pools (n <= 0 means
// runtime.GOMAXPROCS(0), the default). The bound applies independently at
// two levels: DetectBatch runs up to n layouts concurrently, and within one
// detection up to n conflict clusters of the layout are processed
// concurrently (detection shards the flow by cluster; results are
// bit-identical for any n).
func WithParallelism(n int) EngineOption {
	return func(e *Engine) { e.workers = n }
}

// NewEngine builds an immutable Engine from the options.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{rules: Default90nmRules()}
	for _, o := range opts {
		o(e)
	}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	return e
}

// Rules returns the engine's process rules.
func (e *Engine) Rules() Rules { return e.rules }

// Profile returns the registry name of the engine's rules profile, or ""
// when the rules were set directly with WithRules (or defaulted).
func (e *Engine) Profile() string { return e.profile }

// Err returns the engine's sticky construction error, nil for a usable
// engine. A non-nil Err (e.g. WithProfile with an unregistered name) is also
// returned by every stage of every session the engine creates.
func (e *Engine) Err() error { return e.err }

// DetectOptions returns the engine's detection configuration in the legacy
// one-shot form.
func (e *Engine) DetectOptions() DetectOptions { return e.opts }

// Parallelism returns the DetectBatch worker bound.
func (e *Engine) Parallelism() int { return e.workers }

// NewSession starts a pipeline session on one layout. The layout must not be
// mutated while the session is in use.
func (e *Engine) NewSession(l *Layout) *Session {
	return &Session{engine: e, layout: l, verifyCleanGen: -1, maskCleanGen: -1}
}

// NewSessionWithParallelism starts a session whose detection uses at most n
// shard workers instead of the engine-wide bound (n <= 0 keeps the default).
// Services multiplexing many concurrent sessions over one engine use this
// the same way DetectBatch divides its budget: each session gets a small
// per-detection fan-out so total concurrency stays near the request-level
// parallelism instead of multiplying by it.
func (e *Engine) NewSessionWithParallelism(l *Layout, n int) *Session {
	s := e.NewSession(l)
	if n > 0 {
		s.detectWorkers = n
	}
	return s
}

// Detect is the one-shot form of NewSession(l).Detect(ctx) for callers that
// do not need later stages.
func (e *Engine) Detect(ctx context.Context, l *Layout) (*Result, error) {
	return e.NewSession(l).Detect(ctx)
}

// DetectBatch runs detection over many layouts on a bounded worker pool of
// at most Parallelism() goroutines. Results are returned in input order. On
// failure the remaining work is cancelled and the first causal error is
// returned (a *FlowError naming the failing layout); results computed before
// the failure are still present in the returned slice.
//
// The worker budget is shared, not compounded: each batch-invoked detection
// gets Parallelism()/batchWidth shard workers (at least 1), so the total
// concurrency stays near Parallelism() instead of squaring it.
func (e *Engine) DetectBatch(ctx context.Context, layouts []*Layout) ([]*Result, error) {
	if len(layouts) == 0 {
		return nil, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*Result, len(layouts))
	errs := make([]error, len(layouts))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := e.workers
	if workers > len(layouts) {
		workers = len(layouts)
	}
	inner := e.workers / workers
	if inner < 1 {
		inner = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				s := e.NewSession(layouts[i])
				s.detectWorkers = inner
				r, err := s.Detect(ctx)
				if err != nil {
					errs[i] = err
					cancel() // stop the rest of the batch promptly
					continue
				}
				results[i] = r
			}
		}()
	}
	for i := range layouts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Prefer a causal error over the context errors it provoked in sibling
	// workers; among causal errors, return the lowest input index.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil || (isContextErr(first) && !isContextErr(err)) {
			first = err
		}
	}
	return results, first
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
