package layout

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestOrient(t *testing.T) {
	if (Feature{Rect: geom.R(0, 0, 100, 10)}).Orient() != Horizontal {
		t.Error("wide feature should be horizontal")
	}
	if (Feature{Rect: geom.R(0, 0, 10, 100)}).Orient() != Vertical {
		t.Error("tall feature should be vertical")
	}
	if (Feature{Rect: geom.R(0, 0, 50, 50)}).Orient() != Horizontal {
		t.Error("square ties to horizontal")
	}
}

func TestBBoxAndArea(t *testing.T) {
	l := New("t")
	if l.Area() != 0 {
		t.Error("empty layout area")
	}
	l.Add(geom.R(0, 0, 100, 100))
	l.Add(geom.R(200, 300, 250, 400))
	if got := l.BBox(); got != geom.R(0, 0, 250, 400) {
		t.Errorf("bbox = %v", got)
	}
	if l.Area() != 250*400 {
		t.Errorf("area = %d", l.Area())
	}
	c := l.Clone()
	c.Add(geom.R(-50, 0, 0, 10))
	if l.BBox() == c.BBox() {
		t.Error("clone must be independent")
	}
}

func TestRulesValidate(t *testing.T) {
	r := Default90nm()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := r
	bad.ShifterWidth = 0
	if bad.Validate() == nil {
		t.Error("zero shifter width must fail")
	}
	bad = r
	bad.ShifterGap = -1
	if bad.Validate() == nil {
		t.Error("negative gap must fail")
	}
	bad = r
	bad.FeatureConflictWeight = 10
	if bad.Validate() == nil {
		t.Error("non-dominating feature weight must fail")
	}
}

func TestIsCritical(t *testing.T) {
	r := Default90nm() // critical width 150
	if !r.IsCritical(Feature{Rect: geom.R(0, 0, 100, 1000)}) {
		t.Error("100nm wire is critical")
	}
	if r.IsCritical(Feature{Rect: geom.R(0, 0, 200, 1000)}) {
		t.Error("200nm wire is not critical")
	}
	if r.IsCritical(Feature{Rect: geom.R(0, 0, 0, 1000)}) {
		t.Error("degenerate feature is not critical")
	}
	l := New("c")
	l.Add(geom.R(0, 0, 100, 1000))
	l.Add(geom.R(500, 0, 800, 1000))
	l.Add(geom.R(1000, 0, 1100, 400))
	idx := l.CriticalIndices(r)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 2 {
		t.Errorf("critical = %v", idx)
	}
}

func TestTextRoundTrip(t *testing.T) {
	l := New("round trip")
	l.Add(geom.R(0, 0, 100, 1000))
	l.AddOnLayer(geom.R(-5, -7, 3, 4), 12)
	var buf bytes.Buffer
	if err := l.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "round_trip" {
		t.Errorf("name = %q", got.Name)
	}
	if len(got.Features) != 2 || got.Features[0] != l.Features[0] || got.Features[1] != l.Features[1] {
		t.Errorf("features = %+v", got.Features)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",
		"rect 0 0 1 1",
		"layout a\nlayout b",
		"layout a\nbogus 1 2",
		"layout a\nrect 1 2 3",
		"layout a\nrect a b c d",
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
	// Comments and blank lines are fine.
	ok := "# header\n\nlayout x\n# body\nrect 0 0 10 10 0\n"
	l, err := ReadText(strings.NewReader(ok))
	if err != nil || len(l.Features) != 1 {
		t.Errorf("comment handling: %v %v", l, err)
	}
}
