// Package persist is the session persistence subsystem: a versioned,
// checksummed binary codec for pipeline session snapshots (the layout plus
// the incremental engine's caches), a Store interface with memory and disk
// implementations for the snapshot index, and a content-addressed BlobStore
// for large raw layout uploads. aapsmd uses it to survive restarts: sessions
// are snapshotted on eviction and on periodic/drain-time flushes, and a
// restarted replica rehydrates a session from its snapshot instead of
// re-detecting from scratch.
package persist

import (
	"repro/internal/core"
	"repro/internal/correct"
	"repro/internal/layout"
)

// Memoized-stage bits of SessionState.Memo, in pipeline dependency order.
// A set bit means the stage had a memoized outcome (value or error) at
// snapshot time; restore re-runs exactly those stages, which reproduces the
// outcomes bit-identically because every stage is deterministic given the
// restored engine state.
const (
	MemoDetect uint8 = 1 << iota
	MemoAssign
	MemoCorrect
	MemoMask
	MemoDRC
	MemoJunctions
)

// SessionState is the complete serializable state of a pipeline session:
// the engine configuration fingerprint it is only valid under, the session's
// work counters and stage-cache keys, and the incremental engine state.
type SessionState struct {
	// Configuration fingerprint. A snapshot restores only into an engine
	// with the same rules, graph kind and detection options: the caches
	// embed decisions (shifter geometry, T-join tie-breaking, recheck mode)
	// that silently change under a different configuration.
	Rules layout.Rules
	Kind  core.GraphKind
	// Opt is the core detection configuration with Workers normalized to
	// zero — parallelism affects wall clock only, never results, so it is
	// not part of the fingerprint.
	Opt core.Options
	// Profile is the rules-profile registry name the engine was configured
	// from ("" for custom rules). Part of the fingerprint: services key
	// per-profile engines by it when rehydrating.
	Profile string

	DetectRuns int
	Edits      int

	// Stage-scope cache keys (see Session): the detection generations at
	// which assignment verification / mask validation last came back clean.
	VerifyCleanGen int
	MaskCleanGen   int

	// Memo records which pipeline stages had a memoized outcome (Memo*
	// bits).
	Memo uint8

	// Correction interval cache, as parallel key/value slices with keys
	// ascending (stable overlap-pair uid -> intervals).
	IvKeys []int32
	IvVals []correct.Intervals

	Inc *core.IncrementalState
}
