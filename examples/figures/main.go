// Figures: regenerates the paper's illustrative figures as SVG files from
// live data — Figure 1 (odd phase-dependency cycle), Figure 2 (phase
// conflict graph vs feature graph on the same layout) and Figure 5 (one
// end-to-end space correcting multiple conflicts).
//
// Each figure is one session; Session.RenderSVG reuses the session's
// detection, assignment and (for Figure 5) correction overlays.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	aapsm "repro"
)

func main() {
	ctx := context.Background()

	// Figure 1: the motivating odd cycle, conflicts highlighted in red.
	s1 := aapsm.NewEngine().NewSession(aapsm.Figure1Layout())
	writeSVG(ctx, "figure1.svg", s1)

	// Figure 2: the same layout under both graph representations.
	fig2 := aapsm.Figure2Layout()
	writeSVG(ctx, "figure2_pcg.svg", aapsm.NewEngine(aapsm.WithGraph(aapsm.PCG)).NewSession(fig2))
	writeSVG(ctx, "figure2_fg.svg", aapsm.NewEngine(aapsm.WithGraph(aapsm.FG)).NewSession(fig2))

	// Figure 5: stacked conflicts plus the single correcting cut line. The
	// correction stage runs before rendering so its cuts are drawn too.
	s5 := aapsm.NewEngine().NewSession(aapsm.Figure5Layout())
	if _, err := s5.Correction(ctx); err != nil {
		log.Fatal(err)
	}
	writeSVG(ctx, "figure5.svg", s5)

	fmt.Println("wrote figure1.svg figure2_pcg.svg figure2_fg.svg figure5.svg")
}

func writeSVG(ctx context.Context, path string, s *aapsm.Session) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	err = s.RenderSVG(ctx, f)
	// Close errors can hide truncated output (full disk); never ignore them.
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
}
