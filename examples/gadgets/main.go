// Gadgets: a walkthrough of the paper's §3.1.2 — reducing the dual T-join
// problem to minimum-weight perfect matching with generalized gadgets
// (Figure 3) and the divide-node decomposition for high-degree nodes
// (Figure 4), contrasted with the optimized gadgets of TCAD'99.
//
// Each reduction is one Engine configuration (WithTJoinMethod); the same
// layout runs through all three and the optimal results must agree.
package main

import (
	"context"
	"fmt"
	"log"

	aapsm "repro"
)

func main() {
	ctx := context.Background()
	// A conflict-rich layout: several dense clusters.
	l := aapsm.GenerateBenchmark("gadgetdemo", aapsm.DefaultBenchmarkParams(11, 4, 120))

	fmt.Println("reduction of the dual T-join to minimum-weight perfect matching")
	fmt.Println()
	type variant struct {
		name   string
		method aapsm.TJoinMethod
	}
	variants := []variant{
		{"generalized gadgets (this paper)", aapsm.GeneralizedGadgets},
		{"optimized gadgets (TCAD'99)", aapsm.OptimizedGadgets},
		{"Lawler metric closure (reference)", aapsm.LawlerReduction},
	}
	var firstConflicts int
	for i, v := range variants {
		eng := aapsm.NewEngine(aapsm.WithTJoinMethod(v.method))
		res, err := eng.Detect(ctx, l)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Detection.Stats
		fmt.Printf("%-34s conflicts=%d", v.name, len(res.Conflicts()))
		if s.GadgetNodes > 0 {
			fmt.Printf("  matching instance: %d nodes / %d edges", s.GadgetNodes, s.GadgetEdges)
		}
		fmt.Printf("  matching time %v\n", s.MatchTime)
		if i == 0 {
			firstConflicts = len(res.Conflicts())
		} else if len(res.Conflicts()) != firstConflicts {
			log.Fatalf("reductions disagree: %d vs %d conflicts", len(res.Conflicts()), firstConflicts)
		}
	}
	fmt.Println()
	fmt.Println("all reductions select the same minimal conflict set; the generalized")
	fmt.Println("gadget materializes fewer matching nodes (no divide chains for most")
	fmt.Println("dual degrees), which is where the paper's ~16% runtime gain comes from.")
}
