// Package experiments reproduces the paper's evaluation section: it runs
// the detection and correction flows over the synthetic benchmark suite and
// produces the rows of Table 1 and Table 2 plus the figure statistics. Both
// cmd/benchtab and the top-level benchmark harness drive this package.
//
// The pipeline measurements go through the public Engine/Session API; only
// measurements that need raw graph internals (drawing crossings, gadget
// instance sizes, the greedy baseline on an already-built graph) reach into
// the internal packages directly.
package experiments

import (
	"context"
	"fmt"
	"time"

	aapsm "repro"
	"repro/internal/bench"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/tjoin"
)

// Table1Row is one line of the conflict-detection comparison:
// quality (conflicts selected by NP / FG / PCG / GB) and matching runtime
// with optimized vs generalized gadgets.
type Table1Row struct {
	Design   string
	Polygons int
	Nodes    int // PCG nodes
	Edges    int // PCG edges

	NP  int // bipartization-only conflicts on the PCG (no embedding cost)
	FG  int // full flow on the feature graph
	PCG int // full flow on the phase conflict graph
	GB  int // greedy bipartization baseline

	CrossingsPCG int
	CrossingsFG  int

	// Matching runtime with optimized (TCAD'99) and generalized (this
	// paper) gadgets, plus instance sizes.
	OGadgetTime  time.Duration
	GGadgetTime  time.Duration
	OGadgetNodes int
	GGadgetNodes int
}

// Improvement returns the relative matching-runtime gain of the generalized
// gadget in percent (the paper reports ≈16% on average).
func (r Table1Row) Improvement() float64 {
	if r.OGadgetTime == 0 {
		return 0
	}
	return 100 * (1 - float64(r.GGadgetTime)/float64(r.OGadgetTime))
}

// RunTable1Row executes all four detection variants on one design.
func RunTable1Row(d bench.Design, rules layout.Rules) (Table1Row, error) {
	l := bench.Generate(d.Name, d.Params)
	return Table1RowFor(l, rules)
}

// Table1RowFor executes the Table 1 measurements on an arbitrary layout.
// Matching runtimes are the minimum over a few repetitions on smaller
// designs to suppress scheduler noise.
func Table1RowFor(l *layout.Layout, rules layout.Rules) (Table1Row, error) {
	row := Table1Row{Design: l.Name, Polygons: len(l.Features)}
	//aapsmvet:allow ctxflow experiment driver reproducing a paper table; runs to completion by design, no caller to cancel it
	ctx := context.Background()
	reps := 5
	if len(l.Features) > 50000 {
		reps = 1
	}

	engGen := aapsm.NewEngine(aapsm.WithRules(rules),
		aapsm.WithTJoinMethod(aapsm.GeneralizedGadgets))
	engOpt := aapsm.NewEngine(aapsm.WithRules(rules),
		aapsm.WithTJoinMethod(aapsm.OptimizedGadgets))
	engFG := aapsm.NewEngine(aapsm.WithRules(rules), aapsm.WithGraph(aapsm.FG))

	// PCG + generalized gadgets (the proposed flow).
	resG, err := engGen.Detect(ctx, l)
	if err != nil {
		return row, err
	}
	row.Nodes, row.Edges = resG.Graph.Nodes(), resG.Graph.Edges()
	row.PCG = len(resG.Conflicts())
	row.NP = len(resG.Detection.BipartizationEdges)
	row.CrossingsPCG = resG.Detection.Stats.CrossingPairs
	row.GGadgetTime = resG.Detection.Stats.MatchTime
	row.GGadgetNodes = resG.Detection.Stats.GadgetNodes

	// PCG + optimized gadgets: same conflicts, different runtime.
	resO, err := engOpt.Detect(ctx, l)
	if err != nil {
		return row, err
	}
	row.OGadgetTime = resO.Detection.Stats.MatchTime
	row.OGadgetNodes = resO.Detection.Stats.GadgetNodes

	// A fresh session per repetition re-runs the full flow (memoization is
	// per session, not per engine), keeping the minimum matching time.
	for i := 1; i < reps; i++ {
		r1, err := engGen.Detect(ctx, l)
		if err != nil {
			return row, err
		}
		if t := r1.Detection.Stats.MatchTime; t < row.GGadgetTime {
			row.GGadgetTime = t
		}
		r2, err := engOpt.Detect(ctx, l)
		if err != nil {
			return row, err
		}
		if t := r2.Detection.Stats.MatchTime; t < row.OGadgetTime {
			row.OGadgetTime = t
		}
	}

	// Feature graph baseline.
	resF, err := engFG.Detect(ctx, l)
	if err != nil {
		return row, err
	}
	row.FG = len(resF.Conflicts())
	row.CrossingsFG = resF.Detection.Stats.CrossingPairs

	// Greedy bipartization baseline, reusing the PCG already built above.
	row.GB = len(core.GreedyDetect(resG.Graph).FinalConflicts)
	return row, nil
}

// Table1Header returns the column header line.
func Table1Header() string {
	return fmt.Sprintf("%-6s %8s %8s %8s | %6s %6s %6s %6s | %9s %9s %6s | %10s %10s %7s",
		"design", "polys", "nodes", "edges",
		"NP", "FG", "PCG", "GB",
		"crossPCG", "crossFG", "ratio",
		"O-gadget", "G-gadget", "gain%")
}

// String renders the row like the paper's Table 1.
func (r Table1Row) String() string {
	ratio := 0.0
	if r.CrossingsPCG > 0 {
		ratio = float64(r.CrossingsFG) / float64(r.CrossingsPCG)
	}
	return fmt.Sprintf("%-6s %8d %8d %8d | %6d %6d %6d %6d | %9d %9d %5.1fx | %10v %10v %6.1f%%",
		r.Design, r.Polygons, r.Nodes, r.Edges,
		r.NP, r.FG, r.PCG, r.GB,
		r.CrossingsPCG, r.CrossingsFG, ratio,
		r.OGadgetTime.Round(time.Microsecond), r.GGadgetTime.Round(time.Microsecond),
		r.Improvement())
}

// Table2Row is one line of the layout-modification experiment.
type Table2Row struct {
	Design       string
	AreaUm2      float64 // design area in µm²
	Conflicts    int     // conflicts selected by detection
	GridLines    int     // cut lines actually inserted
	MaxPerLine   int     // most conflicts corrected by a single line
	Unfixable    int     // mask-split fallbacks
	AreaIncrease float64 // percent
	DRCClean     bool
	Assignable   bool // modified layout passes Theorem 1
}

// RunTable2Row executes detection + correction on one design.
func RunTable2Row(d bench.Design, rules layout.Rules) (Table2Row, error) {
	l := bench.Generate(d.Name, d.Params)
	return Table2RowFor(l, rules)
}

// Table2RowFor executes the Table 2 measurement on an arbitrary layout.
func Table2RowFor(l *layout.Layout, rules layout.Rules) (Table2Row, error) {
	row := Table2Row{Design: l.Name, AreaUm2: float64(l.Area()) / 1e6}
	//aapsmvet:allow ctxflow experiment driver reproducing a paper table; runs to completion by design, no caller to cancel it
	ctx := context.Background()
	s := aapsm.NewEngine(aapsm.WithRules(rules)).NewSession(l)
	res, err := s.Detect(ctx)
	if err != nil {
		return row, err
	}
	row.Conflicts = len(res.Conflicts())
	cor, err := s.Correction(ctx) // reuses the session's detection
	if err != nil {
		return row, err
	}
	st := cor.Stats
	row.GridLines = st.Cuts
	row.MaxPerLine = st.MaxPerLine
	row.Unfixable = st.Unfixable
	row.AreaIncrease = st.AreaIncrease
	row.DRCClean = drc.Clean(cor.Layout, rules)
	ok, err := aapsm.Assignable(cor.Layout, rules)
	if err != nil {
		return row, err
	}
	row.Assignable = ok || st.Unfixable > 0
	return row, nil
}

// Table2Header returns the column header line.
func Table2Header() string {
	return fmt.Sprintf("%-6s %12s %10s %6s %5s %10s %8s %6s %6s",
		"design", "area(µm²)", "conflicts", "grid", "max", "unfixable", "area+%", "drc", "phase")
}

// String renders the row like the paper's Table 2.
func (r Table2Row) String() string {
	return fmt.Sprintf("%-6s %12.1f %10d %6d %5d %10d %7.2f%% %6v %6v",
		r.Design, r.AreaUm2, r.Conflicts, r.GridLines, r.MaxPerLine,
		r.Unfixable, r.AreaIncrease, r.DRCClean, r.Assignable)
}

// Figure2Stats compares PCG vs FG on the Figure-2 layout: node, edge and
// crossing counts (the figure's qualitative claim).
type Figure2Stats struct {
	PCGNodes, PCGEdges, PCGCrossings int
	FGNodes, FGEdges, FGCrossings    int
	FGBends                          int
}

// RunFigure2 computes the graph-comparison statistics. It needs raw drawing
// crossings before planarization, so it builds the graphs via internal/core
// rather than running full sessions.
func RunFigure2(rules layout.Rules) (Figure2Stats, error) {
	l := bench.Figure2Layout()
	var st Figure2Stats
	cgP, err := core.BuildGraph(l, rules, core.PCG)
	if err != nil {
		return st, err
	}
	st.PCGNodes, st.PCGEdges = cgP.Nodes(), cgP.Edges()
	st.PCGCrossings = len(cgP.Drawing.Crossings())
	cgF, err := core.BuildGraph(l, rules, core.FG)
	if err != nil {
		return st, err
	}
	st.FGNodes, st.FGEdges = cgF.Nodes()+cgF.BendNodes, cgF.Edges()
	st.FGCrossings = len(cgF.Drawing.Crossings())
	st.FGBends = cgF.BendNodes
	return st, nil
}

// Figure34Stats reports gadget instance sizes for a fixed dual node degree,
// contrasting group caps (Figure 3: generalized gadget construction;
// Figure 4: the degree-5 modified complete gadget).
type Figure34Stats struct {
	Degree           int
	GeneralizedNodes int
	OptimizedNodes   int
	GeneralizedEdges int
	OptimizedEdges   int
}

// RunFigure34 builds a star dual of the given degree and reports the gadget
// sizes produced by both reductions.
func RunFigure34(degree int) (Figure34Stats, error) {
	st := Figure34Stats{Degree: degree}
	g := graphStar(degree)
	T := []int{1, 2} // two leaves
	rg, err := tjoin.SolveGadget(g, T, tjoin.Unbounded)
	if err != nil {
		return st, err
	}
	ro, err := tjoin.SolveGadget(g, T, 3)
	if err != nil {
		return st, err
	}
	st.GeneralizedNodes, st.GeneralizedEdges = rg.GadgetNodes, rg.GadgetEdges
	st.OptimizedNodes, st.OptimizedEdges = ro.GadgetNodes, ro.GadgetEdges
	return st, nil
}

func graphStar(degree int) *graph.Graph {
	g := graph.New(degree + 1)
	for i := 1; i <= degree; i++ {
		g.AddEdge(0, i, int64(i))
	}
	return g
}

// CorrectionComparison contrasts the paper's end-to-end-space correction
// with the related-work compaction-style expansion (refs [2,3]) on the same
// detected conflicts.
type CorrectionComparison struct {
	Design            string
	Conflicts         int
	EndToEndAreaPct   float64
	CompactionAreaPct float64
	CompactionMoved   int
}

// RunCorrectionComparison measures both correction strategies on a design.
func RunCorrectionComparison(d bench.Design, rules layout.Rules) (CorrectionComparison, error) {
	l := bench.Generate(d.Name, d.Params)
	out := CorrectionComparison{Design: d.Name}
	//aapsmvet:allow ctxflow experiment driver reproducing a paper table; runs to completion by design, no caller to cancel it
	ctx := context.Background()
	s := aapsm.NewEngine(aapsm.WithRules(rules)).NewSession(l)
	res, err := s.Detect(ctx)
	if err != nil {
		return out, err
	}
	out.Conflicts = len(res.Conflicts())

	cor, err := s.Correction(ctx)
	if err != nil {
		return out, err
	}
	out.EndToEndAreaPct = cor.Stats.AreaIncrease

	reqs, _ := compact.RequirementsFromConflicts(l, rules, res.Graph.Set, res.Detection.FinalConflicts)
	cres, err := compact.Expand(l, rules, reqs)
	if err != nil {
		return out, err
	}
	before, after := l.Area(), cres.Layout.Area()
	if before > 0 {
		out.CompactionAreaPct = 100 * float64(after-before) / float64(before)
	}
	out.CompactionMoved = cres.MovedX + cres.MovedY
	if !drc.Clean(cres.Layout, rules) {
		return out, fmt.Errorf("experiments: compaction broke DRC on %s", d.Name)
	}
	return out, nil
}
