// Command layoutgen emits synthetic benchmark layouts: a member of the
// d1..d8 reproduction suite, a custom-sized standard-cell layout, or —
// for the hierarchical/polygonal scenarios — a multi-structure GDS library.
//
// Usage:
//
//	layoutgen -design d3 -out d3.txt
//	layoutgen -rows 10 -gates 200 -seed 7 -out custom.gds
//	layoutgen -fixture figure1 -out fig1.txt
//	layoutgen -rows 2 -gates 10 -hier 4x3 -out hier.gds
//	layoutgen -poly -rows 3 -gates 5 -out poly.gds
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	aapsm "repro"
	"repro/internal/gds"
	"repro/internal/geom"
)

func main() {
	var (
		design  = flag.String("design", "", "suite design name (d1..d8)")
		fixture = flag.String("fixture", "", "figure fixture: figure1 | figure2 | figure5")
		rows    = flag.Int("rows", 4, "rows (custom layout)")
		gates   = flag.Int("gates", 100, "gates per row (custom layout)")
		seed    = flag.Int64("seed", 1, "generator seed (custom layout)")
		hier    = flag.String("hier", "", "emit a hierarchical GDS library: the generated layout becomes a cell placed in a COLSxROWS array (e.g. 4x3; -out must end in .gds)")
		poly    = flag.Bool("poly", false, "emit cross-shaped rectilinear polygons (rows x gates grid) as GDS BOUNDARY records (-out must end in .gds)")
		out     = flag.String("out", "", "output path (.txt or .gds); stdout when empty")
	)
	flag.Parse()

	if *hier != "" || *poly {
		if !strings.HasSuffix(*out, ".gds") {
			fatalf("-hier/-poly write a GDS library; -out must end in .gds")
		}
	}
	if *poly {
		lib := polyLibrary(*rows, *gates)
		if *hier != "" {
			cols, rws := parseGrid(*hier)
			arrayLibrary(lib, cols, rws)
		}
		writeLibrary(lib, *out)
		return
	}

	var l *aapsm.Layout
	switch {
	case *fixture != "":
		switch *fixture {
		case "figure1":
			l = aapsm.Figure1Layout()
		case "figure2":
			l = aapsm.Figure2Layout()
		case "figure5":
			l = aapsm.Figure5Layout()
		default:
			fatalf("unknown fixture %q", *fixture)
		}
	case *design != "":
		for _, d := range aapsm.BenchmarkSuite() {
			if d.Name == *design {
				l = aapsm.GenerateBenchmark(d.Name, d.Params)
				break
			}
		}
		if l == nil {
			fatalf("unknown design %q (want d1..d8)", *design)
		}
	default:
		l = aapsm.GenerateBenchmark(fmt.Sprintf("custom-%dx%d", *rows, *gates),
			aapsm.DefaultBenchmarkParams(*seed, *rows, *gates))
	}

	if *hier != "" {
		cols, rws := parseGrid(*hier)
		lib := cellLibrary(l)
		arrayLibrary(lib, cols, rws)
		writeLibrary(lib, *out)
		return
	}

	fmt.Fprintf(os.Stderr, "generated %s: %d features\n", l.Name, len(l.Features))
	if *out == "" {
		if err := aapsm.WriteLayoutText(os.Stdout, l); err != nil {
			fatalf("%v", err)
		}
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if strings.HasSuffix(*out, ".gds") {
		err = aapsm.WriteGDS(f, l)
	} else {
		err = aapsm.WriteLayoutText(f, l)
	}
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "layoutgen: "+format+"\n", args...)
	os.Exit(2)
}

// parseGrid parses a COLSxROWS spec like "4x3".
func parseGrid(s string) (cols, rows int) {
	if n, err := fmt.Sscanf(s, "%dx%d", &cols, &rows); n != 2 || err != nil || cols < 1 || rows < 1 {
		fatalf("bad -hier %q (want COLSxROWS, e.g. 4x3)", s)
	}
	return cols, rows
}

// rectPoly is a rectangle as a 4-point GDS boundary.
func rectPoly(layer int, r aapsm.Rect) gds.Poly {
	return gds.Poly{Layer: layer, Pts: []geom.Point{
		{X: r.X0, Y: r.Y0}, {X: r.X1, Y: r.Y0}, {X: r.X1, Y: r.Y1}, {X: r.X0, Y: r.Y1},
	}}
}

// cellLibrary wraps a flat layout as a single library cell named CELL.
func cellLibrary(l *aapsm.Layout) *gds.Library {
	cell := &gds.Cell{Name: "CELL"}
	for _, f := range l.Features {
		cell.Polys = append(cell.Polys, rectPoly(f.Layer, f.Rect))
	}
	return &gds.Library{Name: l.Name, Cells: []*gds.Cell{cell}}
}

// polyLibrary builds a CELL of rows x gates cross-shaped rectilinear
// polygons at critical width, exercising the reader's polygon decomposition.
func polyLibrary(rows, gates int) *gds.Library {
	const (
		arm   = 100  // arm width (critical: below the 150 nm rule)
		reach = 500  // arm length from the center
		pitch = 1800 // cross-to-cross spacing inside the cell
	)
	cell := &gds.Cell{Name: "CELL"}
	for j := 0; j < rows; j++ {
		for i := 0; i < gates; i++ {
			cx := int64(i) * pitch
			cy := int64(j) * pitch
			// A plus-shaped 12-vertex rectilinear polygon centered on (cx,cy).
			cell.Polys = append(cell.Polys, gds.Poly{Layer: 0, Pts: []geom.Point{
				{X: cx - arm/2, Y: cy - reach}, {X: cx + arm/2, Y: cy - reach},
				{X: cx + arm/2, Y: cy - arm/2}, {X: cx + reach, Y: cy - arm/2},
				{X: cx + reach, Y: cy + arm/2}, {X: cx + arm/2, Y: cy + arm/2},
				{X: cx + arm/2, Y: cy + reach}, {X: cx - arm/2, Y: cy + reach},
				{X: cx - arm/2, Y: cy + arm/2}, {X: cx - reach, Y: cy + arm/2},
				{X: cx - reach, Y: cy - arm/2}, {X: cx - arm/2, Y: cy - arm/2},
			}})
		}
	}
	return &gds.Library{Name: fmt.Sprintf("poly-%dx%d", rows, gates), Cells: []*gds.Cell{cell}}
}

// arrayLibrary adds a TOP cell placing the library's first cell in a
// cols x rows AREF grid. The pitch leaves enough margin past the cell's
// bounding box that shifters of neighboring placements cannot interact, so
// every conflict cluster stays instance-pure and the detection fast path can
// reuse one solved placement for all of them.
func arrayLibrary(lib *gds.Library, cols, rows int) {
	cell := lib.Cells[0]
	minX, minY := int64(1<<62), int64(1<<62)
	maxX, maxY := int64(-1<<62), int64(-1<<62)
	for _, p := range cell.Polys {
		for _, pt := range p.Pts {
			minX, maxX = min(minX, pt.X), max(maxX, pt.X)
			minY, maxY = min(minY, pt.Y), max(maxY, pt.Y)
		}
	}
	// Shifters reach 240 nm past a feature (gap 20 + width 220) and interact
	// within 300 nm; 1000 nm of clearance keeps placements independent.
	const margin = 1000
	lib.Cells = append([]*gds.Cell{{
		Name: "TOP",
		Refs: []gds.Ref{{
			Cell: cell.Name,
			Cols: cols, Rows: rows,
			ColStep: geom.Pt(maxX-minX+margin, 0),
			RowStep: geom.Pt(0, maxY-minY+margin),
		}},
	}}, lib.Cells...)
}

// writeLibrary serializes a hierarchical library and reports its flattened
// size on stderr.
func writeLibrary(lib *gds.Library, out string) {
	l, err := lib.Flatten(gds.ReadOptions{})
	if err != nil {
		fatalf("generated library does not flatten: %v", err)
	}
	fmt.Fprintf(os.Stderr, "generated %s: %d cells, %d flattened features\n", lib.Name, len(lib.Cells), len(l.Features))
	f, err := os.Create(out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := gds.WriteLibrary(f, lib); err != nil {
		fatalf("%v", err)
	}
}
