package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/layout"
)

func rules() layout.Rules { return layout.Default90nm() }

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultParams(42, 3, 100)
	a := Generate("a", p)
	b := Generate("b", p)
	if len(a.Features) != len(b.Features) {
		t.Fatal("nondeterministic feature count")
	}
	for i := range a.Features {
		if a.Features[i] != b.Features[i] {
			t.Fatalf("feature %d differs", i)
		}
	}
}

func TestGeneratedLayoutIsDRCClean(t *testing.T) {
	l := Generate("clean", DefaultParams(7, 4, 120))
	if v := drc.Check(l, rules()); len(v) != 0 {
		t.Fatalf("generator produced DRC violations: %v (first of %d)", v[0], len(v))
	}
}

func TestGeneratedLayoutHasConflicts(t *testing.T) {
	l := Generate("conf", DefaultParams(7, 4, 120))
	ok, err := core.IsPhaseAssignable(l, rules())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("default params must produce phase conflicts")
	}
	// Without dense clusters the layout must be assignable.
	p := DefaultParams(7, 4, 120)
	p.DenseClusterEvery = 0
	safe := Generate("safe", p)
	ok, err = core.IsPhaseAssignable(safe, rules())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("cluster-free layout must be assignable")
	}
}

func TestSuiteSizesGrow(t *testing.T) {
	suite := Suite()
	if len(suite) != 8 {
		t.Fatalf("suite size = %d", len(suite))
	}
	prev := 0
	for _, d := range suite {
		n := d.Params.Rows * d.Params.GatesPerRow
		if n <= prev {
			t.Errorf("%s: size %d does not grow", d.Name, n)
		}
		prev = n
	}
	// The largest design must be in the paper's "full-chip" range.
	last := suite[len(suite)-1]
	if n := last.Params.Rows * last.Params.GatesPerRow; n < 150000 {
		t.Errorf("d8 gate count %d; want ~160K", n)
	}
	if got := SmallSuite(3); len(got) != 3 || got[0].Name != "d1" {
		t.Errorf("SmallSuite = %v", got)
	}
}

func TestFigureFixtures(t *testing.T) {
	r := rules()
	if ok, _ := core.IsPhaseAssignable(Figure1Layout(), r); ok {
		t.Error("figure 1 must conflict")
	}
	f2 := Figure2Layout()
	if len(f2.Features) != 5 {
		t.Error("figure 2 layout shape")
	}
	f5 := Figure5Layout()
	if ok, _ := core.IsPhaseAssignable(f5, r); ok {
		t.Error("figure 5 must conflict")
	}
	if !drc.Clean(Figure1Layout(), r) || !drc.Clean(f2, r) || !drc.Clean(f5, r) {
		t.Error("fixtures must be DRC clean")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats(Figure1Layout(), rules())
	if s == "" {
		t.Fatal("empty stats")
	}
}
