package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func cycle(n int) *Graph {
	g := path(n)
	g.AddEdge(n-1, 0, 1)
	return g
}

func TestBasics(t *testing.T) {
	g := New(3)
	if g.N() != 3 || g.M() != 0 {
		t.Fatal("empty graph counts")
	}
	e0 := g.AddEdge(0, 1, 5)
	e1 := g.AddEdge(1, 2, 7)
	if e0 != 0 || e1 != 1 {
		t.Fatal("edge indices")
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Error("degrees")
	}
	id := g.AddNode()
	if id != 3 || g.N() != 4 {
		t.Error("AddNode")
	}
	g.AddEdge(3, 3, 2) // self loop
	if g.Degree(3) != 2 {
		t.Errorf("self loop degree = %d, want 2", g.Degree(3))
	}
	if g.TotalWeight([]int{0, 1}) != 12 {
		t.Error("TotalWeight")
	}
	c := g.Clone()
	c.AddEdge(0, 2, 1)
	if g.M() == c.M() {
		t.Error("clone not independent")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	comp, n := g.Components()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("0,1,2 should share a component")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Error("3,4 separate component")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Error("5 isolated")
	}
}

func TestTwoColor(t *testing.T) {
	if _, ok := cycle(4).TwoColor(); !ok {
		t.Error("even cycle should be bipartite")
	}
	if _, ok := cycle(5).TwoColor(); ok {
		t.Error("odd cycle should not be bipartite")
	}
	colors, ok := path(4).TwoColor()
	if !ok {
		t.Fatal("path bipartite")
	}
	for i := 0; i+1 < 4; i++ {
		if colors[i] == colors[i+1] {
			t.Error("adjacent same color")
		}
	}
	// Self loop.
	g := New(1)
	g.AddEdge(0, 0, 1)
	if g.IsBipartite() {
		t.Error("self loop should break bipartiteness")
	}
	// Parallel edges keep bipartiteness.
	h := New(2)
	h.AddEdge(0, 1, 1)
	h.AddEdge(0, 1, 2)
	if !h.IsBipartite() {
		t.Error("parallel edges are fine")
	}
}

func TestOddCycle(t *testing.T) {
	if got := cycle(4).OddCycle(); got != nil {
		t.Errorf("even cycle returned odd cycle %v", got)
	}
	for _, n := range []int{3, 5, 7, 9} {
		g := cycle(n)
		oc := g.OddCycle()
		if len(oc)%2 == 0 || len(oc) == 0 {
			t.Fatalf("cycle(%d): odd cycle len %d", n, len(oc))
		}
		checkClosedOddWalk(t, g, oc)
	}
	// Self loop.
	g := New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 1, 1)
	oc := g.OddCycle()
	if len(oc) != 1 || g.Edge(oc[0]).U != g.Edge(oc[0]).V {
		t.Errorf("self loop odd cycle = %v", oc)
	}
	// Two triangles sharing a node.
	h := New(5)
	h.AddEdge(0, 1, 1)
	h.AddEdge(1, 2, 1)
	h.AddEdge(2, 0, 1)
	h.AddEdge(2, 3, 1)
	h.AddEdge(3, 4, 1)
	h.AddEdge(4, 2, 1)
	oc = h.OddCycle()
	if len(oc)%2 == 0 || oc == nil {
		t.Fatalf("odd cycle %v", oc)
	}
	checkClosedOddWalk(t, h, oc)
}

// checkClosedOddWalk verifies the returned edge sequence is a closed walk of
// odd length whose consecutive edges share endpoints.
func checkClosedOddWalk(t *testing.T, g *Graph, cyc []int) {
	t.Helper()
	if len(cyc)%2 == 0 {
		t.Fatalf("cycle length %d is even", len(cyc))
	}
	// Each node must be touched an even number of times by cycle edge
	// endpoints (it is a closed walk).
	touch := map[int]int{}
	for _, ei := range cyc {
		e := g.Edge(ei)
		touch[e.U]++
		touch[e.V]++
	}
	for n, c := range touch {
		if c%2 != 0 {
			t.Fatalf("node %d touched %d times; not a closed walk: %v", n, c, cyc)
		}
	}
}

func TestOddCycleQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		n := rng.Intn(12) + 2
		g := New(n)
		m := rng.Intn(2 * n)
		for i := 0; i < m; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), int64(rng.Intn(10)+1))
		}
		oc := g.OddCycle()
		bip := g.IsBipartite()
		if bip != (oc == nil) {
			return false
		}
		if oc != nil && len(oc)%2 == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSubgraphWithoutEdges(t *testing.T) {
	g := cycle(5)
	sub, oldIdx := g.SubgraphWithoutEdges(map[int]bool{2: true})
	if sub.M() != 4 {
		t.Fatalf("subgraph edges = %d", sub.M())
	}
	if !sub.IsBipartite() {
		t.Error("odd cycle minus an edge should be bipartite")
	}
	for newI, oldI := range oldIdx {
		if g.Edge(oldI) != sub.Edge(newI) {
			t.Error("edge mapping broken")
		}
	}
	if _, ok := g.VerifyBipartition(map[int]bool{2: true}); !ok {
		t.Error("VerifyBipartition")
	}
	if _, ok := g.VerifyBipartition(nil); ok {
		t.Error("VerifyBipartition on intact odd cycle should fail")
	}
}

func TestParityUF(t *testing.T) {
	uf := NewParityUF(4)
	if !uf.UnionDiffer(0, 1) || !uf.UnionDiffer(1, 2) {
		t.Fatal("chain unions should succeed")
	}
	// 0 and 2 are now constrained equal.
	if same, eq := uf.SameSet(0, 2); !same || !eq {
		t.Error("0 and 2 should be same-color")
	}
	if same, eq := uf.SameSet(0, 1); !same || eq {
		t.Error("0 and 1 should be different-color")
	}
	if uf.UnionDiffer(0, 2) {
		t.Error("forcing 0 != 2 should fail (odd triangle)")
	}
	if !uf.UnionDiffer(0, 3) {
		t.Error("fresh union should succeed")
	}
	if same, _ := uf.SameSet(3, 2); !same {
		t.Error("all connected now")
	}
}

func TestGreedyBipartization(t *testing.T) {
	// Odd cycle with one light edge: greedy keeps heavy edges, rejects the
	// last edge that would close the odd cycle (the lightest).
	g := New(3)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 0, 1)
	conf := GreedyBipartization(g)
	if len(conf) != 1 || conf[0] != 2 {
		t.Fatalf("conflicts = %v, want [2]", conf)
	}
	removed := map[int]bool{}
	for _, c := range conf {
		removed[c] = true
	}
	if _, ok := g.VerifyBipartition(removed); !ok {
		t.Error("greedy result must be bipartite")
	}
	// Even cycle: nothing rejected.
	if got := GreedyBipartization(cycle(6)); len(got) != 0 {
		t.Errorf("even cycle conflicts = %v", got)
	}
	// Tree variant rejects chords of even cycles too.
	if got := GreedyTreeBipartization(cycle(6)); len(got) != 1 {
		t.Errorf("tree baseline on even cycle = %v, want one chord", got)
	}
}

func TestGreedyBipartizationAlwaysBipartite(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		n := rng.Intn(15) + 2
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			g.AddEdge(u, v, int64(rng.Intn(50)+1))
		}
		removed := map[int]bool{}
		for _, c := range GreedyBipartization(g) {
			removed[c] = true
		}
		_, ok := g.VerifyBipartition(removed)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSortedEdgeIndices(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 9)
	g.AddEdge(2, 0, 2)
	idx := g.SortedEdgeIndicesByWeightDesc()
	if idx[0] != 1 || idx[1] != 0 || idx[2] != 2 {
		t.Errorf("order = %v", idx)
	}
}

func TestInducedComponents(t *testing.T) {
	// Two components plus an isolated node, with a parallel edge and a
	// self-loop to exercise multigraph mapping.
	g := New(6)
	g.AddEdge(0, 1, 3) // comp A
	g.AddEdge(4, 5, 7) // comp B
	g.AddEdge(1, 0, 9) // comp A, parallel
	g.AddEdge(4, 4, 1) // comp B, self-loop
	g.AddEdge(1, 2, 2) // comp A
	labels, count := g.Components()
	parts, localOf := g.InducedComponents(labels, count)
	if len(parts) != count || count != 3 {
		t.Fatalf("count = %d, parts = %d, want 3", count, len(parts))
	}
	totalNodes, totalEdges := 0, 0
	for c, p := range parts {
		totalNodes += p.G.N()
		totalEdges += p.G.M()
		if len(p.Nodes) != p.G.N() || len(p.EdgeOf) != p.G.M() {
			t.Fatalf("part %d: map sizes %d/%d vs graph %d/%d",
				c, len(p.Nodes), len(p.EdgeOf), p.G.N(), p.G.M())
		}
		for newV, oldV := range p.Nodes {
			if labels[oldV] != c || localOf[oldV] != newV {
				t.Fatalf("part %d: node map inconsistent at %d->%d", c, newV, oldV)
			}
		}
		for newE, oldE := range p.EdgeOf {
			want := g.Edge(oldE)
			got := p.G.Edge(newE)
			if p.Nodes[got.U] != want.U || p.Nodes[got.V] != want.V || got.Weight != want.Weight {
				t.Fatalf("part %d: edge %d maps to %v, want %v", c, newE, got, want)
			}
		}
		// Node and edge order must be preserved (ascending old indices).
		for i := 1; i < len(p.Nodes); i++ {
			if p.Nodes[i] <= p.Nodes[i-1] {
				t.Fatalf("part %d: node order not preserved: %v", c, p.Nodes)
			}
		}
		for i := 1; i < len(p.EdgeOf); i++ {
			if p.EdgeOf[i] <= p.EdgeOf[i-1] {
				t.Fatalf("part %d: edge order not preserved: %v", c, p.EdgeOf)
			}
		}
	}
	if totalNodes != g.N() || totalEdges != g.M() {
		t.Fatalf("partition covers %d/%d nodes/edges, want %d/%d",
			totalNodes, totalEdges, g.N(), g.M())
	}
}

func TestInducedComponentsRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(30) + 1
		g := New(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			g.AddEdge(u, v, int64(rng.Intn(9)))
		}
		labels, count := g.Components()
		parts, _ := g.InducedComponents(labels, count)
		// Each part must be connected and its edge weights must round-trip.
		for _, p := range parts {
			if _, pc := p.G.Components(); p.G.N() > 0 && pc != 1 {
				t.Fatalf("trial %d: part has %d components", trial, pc)
			}
			for newE, oldE := range p.EdgeOf {
				if p.G.Edge(newE).Weight != g.Edge(oldE).Weight {
					t.Fatalf("trial %d: weight mismatch", trial)
				}
			}
		}
	}
}

func TestInducedComponentsCrossEdgePanics(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("partition cutting an edge must panic")
		}
	}()
	g.InducedComponents([]int{0, 1}, 2)
}
