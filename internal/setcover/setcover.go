// Package setcover solves the weighted set covering problem used by the
// layout modification step (paper §3.2): choosing end-to-end cut lines
// (sets) that together correct every detected AAPSM conflict (universe
// elements) at minimum total inserted width.
//
// It stands in for the Berkeley espresso/mincov solver referenced by the
// paper: an exact branch-and-bound is used for small instances and the
// classical greedy H_n-approximation beyond that.
package setcover

import (
	"math/bits"
	"sort"
)

// Set is one candidate subset with a selection cost.
type Set struct {
	Weight  int64
	Members []int
}

// Result of a cover computation.
type Result struct {
	Chosen    []int // indices into the sets slice, ascending
	Weight    int64
	Uncovered []int // universe elements no set contains (never coverable)
}

// ExactThreshold is the largest set count Solve hands to the exact
// branch-and-bound before falling back to greedy.
const ExactThreshold = 22

// Solve covers universe elements 0..n-1 with the given sets: exactly when
// the instance is small, greedily otherwise. Elements contained in no set
// are reported in Uncovered and exempted from the cover.
func Solve(n int, sets []Set) Result {
	if len(sets) <= ExactThreshold && n <= 63 {
		return Exact(n, sets)
	}
	return Greedy(n, sets)
}

// Greedy implements the classical ratio rule: repeatedly pick the set
// minimizing weight per newly covered element. Ties break toward more new
// elements, then lower index, making the result deterministic.
func Greedy(n int, sets []Set) Result {
	var res Result
	coverable := make([]bool, n)
	for _, s := range sets {
		for _, m := range s.Members {
			coverable[m] = true
		}
	}
	covered := make([]bool, n)
	remaining := 0
	for i := 0; i < n; i++ {
		if coverable[i] {
			remaining++
		} else {
			res.Uncovered = append(res.Uncovered, i)
		}
	}
	used := make([]bool, len(sets))
	for remaining > 0 {
		best, bestNew := -1, 0
		for i, s := range sets {
			if used[i] {
				continue
			}
			nw := 0
			for _, m := range s.Members {
				if !covered[m] {
					nw++
				}
			}
			if nw == 0 {
				continue
			}
			if best == -1 || better(s.Weight, nw, sets[best].Weight, bestNew) {
				best, bestNew = i, nw
			}
		}
		if best == -1 {
			break // should not happen: coverable elements remain
		}
		used[best] = true
		res.Chosen = append(res.Chosen, best)
		res.Weight += sets[best].Weight
		for _, m := range sets[best].Members {
			if !covered[m] {
				covered[m] = true
				remaining--
			}
		}
	}
	sort.Ints(res.Chosen)
	return res
}

// better reports whether (w1, n1) is a strictly better greedy pick than
// (w2, n2): lower weight-per-new-element ratio, compared exactly as
// w1*n2 < w2*n1.
func better(w1 int64, n1 int, w2 int64, n2 int) bool {
	l := w1 * int64(n2)
	r := w2 * int64(n1)
	if l != r {
		return l < r
	}
	return n1 > n2
}

// Exact finds a minimum-weight cover by branch and bound over sets, in
// decreasing coverage order with a greedy upper bound. n must be <= 63.
func Exact(n int, sets []Set) Result {
	var res Result
	var coverableMask uint64
	memberMask := make([]uint64, len(sets))
	for i, s := range sets {
		for _, m := range s.Members {
			memberMask[i] |= 1 << uint(m)
		}
		coverableMask |= memberMask[i]
	}
	for i := 0; i < n; i++ {
		if coverableMask&(1<<uint(i)) == 0 {
			res.Uncovered = append(res.Uncovered, i)
		}
	}
	target := coverableMask

	// Upper bound from greedy.
	g := Greedy(n, sets)
	bestW := g.Weight
	bestChoice := append([]int(nil), g.Chosen...)

	// Order sets by weight ascending for effective pruning.
	order := make([]int, len(sets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if sets[order[a]].Weight != sets[order[b]].Weight {
			return sets[order[a]].Weight < sets[order[b]].Weight
		}
		return bits.OnesCount64(memberMask[order[a]]) > bits.OnesCount64(memberMask[order[b]])
	})

	var cur []int
	var rec func(pos int, covered uint64, w int64)
	rec = func(pos int, covered uint64, w int64) {
		if covered == target {
			if w < bestW {
				bestW = w
				bestChoice = append(bestChoice[:0], cur...)
			}
			return
		}
		if w >= bestW || pos == len(order) {
			return
		}
		// Bound: if remaining sets cannot cover the deficit, prune.
		var reach uint64
		for i := pos; i < len(order); i++ {
			reach |= memberMask[order[i]]
		}
		if (covered|reach)&target != target {
			return
		}
		si := order[pos]
		// Branch 1: take it (only if it helps).
		if memberMask[si]&^covered != 0 {
			cur = append(cur, si)
			rec(pos+1, covered|memberMask[si], w+sets[si].Weight)
			cur = cur[:len(cur)-1]
		}
		// Branch 2: skip it.
		rec(pos+1, covered, w)
	}
	rec(0, 0, 0)

	res.Chosen = bestChoice
	res.Weight = bestW
	sort.Ints(res.Chosen)
	return res
}
