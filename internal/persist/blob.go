package persist

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// BlobStore holds large raw layout uploads (GDS bodies) content-addressed by
// SHA-256, so the snapshot index never carries multi-megabyte blobs. PutBlob
// is idempotent: storing the same bytes twice returns the same hash and
// writes once.
type BlobStore interface {
	PutBlob(data []byte) (hash string, err error)
	GetBlob(hash string) ([]byte, error)
	Close() error
}

// BlobHash returns the content address PutBlob would assign to data.
func BlobHash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// checkBlobHash rejects anything that is not a lowercase hex SHA-256, which
// also keeps attacker-controlled hashes from traversing the disk layout.
func checkBlobHash(hash string) error {
	if len(hash) != 64 {
		return fmt.Errorf("persist: blob hash %q: want 64 hex chars", hash)
	}
	for _, c := range hash {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("persist: blob hash %q: non-hex character", hash)
		}
	}
	return nil
}

// MemBlobStore is an in-process BlobStore for tests.
type MemBlobStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

// NewMemBlobStore returns an empty in-memory blob store.
func NewMemBlobStore() *MemBlobStore {
	return &MemBlobStore{blobs: make(map[string][]byte)}
}

func (m *MemBlobStore) PutBlob(data []byte) (string, error) {
	h := BlobHash(data)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.blobs[h]; !ok {
		m.blobs[h] = append([]byte(nil), data...)
	}
	return h, nil
}

func (m *MemBlobStore) GetBlob(hash string) ([]byte, error) {
	if err := checkBlobHash(hash); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.blobs[hash]
	if !ok {
		return nil, fmt.Errorf("%w: blob %s", ErrNotFound, hash)
	}
	return append([]byte(nil), data...), nil
}

func (m *MemBlobStore) Close() error { return nil }

// DiskBlobStore stores blobs at root/<hash[:2]>/<hash>, atomically written.
type DiskBlobStore struct {
	root string
	mu   sync.Mutex
}

// NewDiskBlobStore opens (creating if needed) a blob store rooted at dir.
// Orphaned `.tmp-*` files from atomic writes a crash interrupted are swept
// on open. (A fully-renamed torn blob is self-revealing instead: its content
// hash no longer matches its name, so GetBlob callers verifying the address
// catch it; the store keeps it for forensics.)
func NewDiskBlobStore(dir string) (*DiskBlobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &DiskBlobStore{root: dir}
	d.sweepTemp()
	return d, nil
}

// sweepTemp removes interrupted-write temp files under every shard
// directory; best-effort.
func (d *DiskBlobStore) sweepTemp() {
	dirs, err := os.ReadDir(d.root)
	if err != nil {
		return
	}
	for _, de := range dirs {
		if !de.IsDir() {
			if strings.HasPrefix(de.Name(), ".tmp-") {
				os.Remove(filepath.Join(d.root, de.Name()))
			}
			continue
		}
		files, err := os.ReadDir(filepath.Join(d.root, de.Name()))
		if err != nil {
			continue
		}
		for _, fe := range files {
			if !fe.IsDir() && strings.HasPrefix(fe.Name(), ".tmp-") {
				os.Remove(filepath.Join(d.root, de.Name(), fe.Name()))
			}
		}
	}
}

func (d *DiskBlobStore) blobPath(hash string) string {
	return filepath.Join(d.root, hash[:2], hash)
}

func (d *DiskBlobStore) PutBlob(data []byte) (string, error) {
	h := BlobHash(data)
	path := d.blobPath(h)
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := os.Stat(path); err == nil {
		return h, nil // content-addressed: already stored
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return "", err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, path)
	}
	if werr != nil {
		os.Remove(tmpName)
		return "", werr
	}
	syncDir(dir)
	return h, nil
}

func (d *DiskBlobStore) GetBlob(hash string) ([]byte, error) {
	if err := checkBlobHash(hash); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(d.blobPath(hash))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: blob %s", ErrNotFound, hash)
	}
	return data, err
}

func (d *DiskBlobStore) Close() error { return nil }
