package gds

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/layout"
)

func TestReal8RoundTrip(t *testing.T) {
	vals := []float64{0, 1, -1, 1e-9, 1e-3, 0.25, 1234.5, -6.25e-7, 16, 1.0 / 16}
	for _, v := range vals {
		got := decodeReal8(encodeReal8(v))
		if v == 0 {
			if got != 0 {
				t.Errorf("zero encoded to %g", got)
			}
			continue
		}
		if math.Abs(got-v) > math.Abs(v)*1e-14 {
			t.Errorf("real8 roundtrip %g -> %g", v, got)
		}
	}
}

func TestReal8RoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		v := (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(20)-10))
		if v == 0 {
			return true
		}
		got := decodeReal8(encodeReal8(v))
		return math.Abs(got-v) <= math.Abs(v)*1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	l := layout.New("TESTCHIP")
	l.Add(geom.R(0, 0, 100, 1000))
	l.AddOnLayer(geom.R(-500, -700, -100, -200), 7)
	l.Add(geom.R(1<<30, 0, 1<<30+50, 60))
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "TESTCHIP" {
		t.Errorf("name = %q", got.Name)
	}
	if len(got.Features) != len(l.Features) {
		t.Fatalf("features = %d, want %d", len(got.Features), len(l.Features))
	}
	for i := range l.Features {
		if got.Features[i] != l.Features[i] {
			t.Errorf("feature %d: %+v != %+v", i, got.Features[i], l.Features[i])
		}
	}
}

func TestEmptyLayoutRoundTrip(t *testing.T) {
	l := layout.New("")
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Features) != 0 || got.Name != "TOP" {
		t.Errorf("got %+v", got)
	}
}

func TestCoordinateRangeCheck(t *testing.T) {
	const (
		lo = int64(math.MinInt32)
		hi = int64(math.MaxInt32)
	)
	cases := []struct {
		name string
		rect geom.Rect
		ok   bool
	}{
		{"in-range", geom.Rect{X0: lo, Y0: lo, X1: hi, Y1: hi}, true},
		{"x1 too big", geom.Rect{X0: 0, Y0: 0, X1: hi + 10, Y1: 100}, false},
		{"x0 too small", geom.Rect{X0: lo - 10, Y0: 0, X1: 100, Y1: 100}, false},
		{"y1 too big", geom.Rect{X0: 0, Y0: 0, X1: 100, Y1: hi + 10}, false},
		{"y0 too small", geom.Rect{X0: 0, Y0: lo - 10, X1: 100, Y1: 100}, false},
		// Unnormalized rectangles (X0 > X1, Y0 > Y1): the maximum coordinate
		// sits in X0/Y0 and the minimum in X1/Y1, so a check testing only
		// X0/Y0 against MinInt32 and X1/Y1 against MaxInt32 passes them and
		// the int32() conversions silently wrap.
		{"unnormalized x0 too big", geom.Rect{X0: hi + 10, Y0: 0, X1: 5, Y1: 10}, false},
		{"unnormalized x1 too small", geom.Rect{X0: 5, Y0: 0, X1: lo - 10, Y1: 10}, false},
		{"unnormalized y0 too big", geom.Rect{X0: 0, Y0: hi + 10, X1: 10, Y1: 5}, false},
		{"unnormalized y1 too small", geom.Rect{X0: 0, Y0: 5, X1: 10, Y1: lo - 10}, false},
	}
	for _, tc := range cases {
		l := layout.New("big")
		l.Features = append(l.Features, layout.Feature{Rect: tc.rect})
		var buf bytes.Buffer
		err := Write(&buf, l)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: out-of-range coordinates must be rejected", tc.name)
		}
	}
}

// maxReal8 is the largest magnitude a GDSII real can represent:
// (2^56-1)/2^56 * 16^63.
var maxReal8 = float64(uint64(1)<<56-1) / float64(uint64(1)<<56) * math.Pow(16, 63)

func TestReal8ExtremeValues(t *testing.T) {
	exact := []float64{
		// Extreme in-range exponents round-trip bit-exactly: base-16
		// normalization and the 56-bit mantissa are exact for float64.
		math.Pow(16, 62), -math.Pow(16, 62), math.Pow(16, 63) / 2,
		math.Pow(16, -64), -math.Pow(16, -64), math.Pow(16, -65), // smallest normalized reals
		1e75, -1e75, 5.4e-79,
		maxReal8, -maxReal8,
		math.MaxInt64, 1.5e-60,
	}
	for _, v := range exact {
		if got := decodeReal8(encodeReal8(v)); got != v {
			t.Errorf("round trip %g -> %g", v, got)
		}
	}
	saturate := []struct {
		in, want float64
	}{
		// Above 16^63: saturate to the largest representable real.
		{math.Pow(16, 63), maxReal8},
		{1e308, maxReal8},
		{-1e308, -maxReal8},
		{math.MaxFloat64, maxReal8},
		{math.Inf(1), maxReal8},
		{math.Inf(-1), -maxReal8},
		// Below 16^-65 (including every float64 denormal): flush to zero.
		{math.Pow(16, -66), 0},
		{5e-324, 0},            // smallest positive denormal
		{-5e-324, 0},           //
		{2.2250738585e-308, 0}, // largest denormal neighborhood
		{1e-100, 0},
	}
	for _, tc := range saturate {
		if got := decodeReal8(encodeReal8(tc.in)); got != tc.want {
			t.Errorf("saturating round trip %g -> %g, want %g", tc.in, got, tc.want)
		}
	}
	// NaN flushes to zero rather than emitting a garbage exponent byte.
	if got := decodeReal8(encodeReal8(math.NaN())); got != 0 {
		t.Errorf("NaN encoded to %g, want 0", got)
	}
	// Negative zero encodes as canonical all-zero bytes: GDSII zero carries
	// no sign, and readers must not see a sign bit with a zero mantissa.
	negZero := math.Copysign(0, -1)
	b := encodeReal8(negZero)
	if !bytes.Equal(b, make([]byte, 8)) {
		t.Errorf("negative zero encoded to % x, want all zero", b)
	}
	if got := decodeReal8(b); got != 0 || math.Signbit(got) {
		t.Errorf("negative zero decoded to %g (signbit %v)", got, math.Signbit(got))
	}
	// A denormalized encoding (sign bit set, mantissa zero) decodes to plain
	// zero, and re-encoding it stays canonical.
	if got := decodeReal8([]byte{0xC0, 0, 0, 0, 0, 0, 0, 0}); got != 0 || math.Signbit(got) {
		t.Errorf("signed zero encoding decoded to %g (signbit %v)", got, math.Signbit(got))
	}
}

// FuzzReal8 checks two invariants over arbitrary 8-byte encodings: decoding
// never yields NaN/Inf, and encode∘decode is a projection — after one round
// through encodeReal8 the representation is stable bit-for-bit.
func FuzzReal8(f *testing.F) {
	f.Add(make([]byte, 8))                                        // zero
	f.Add(encodeReal8(1e-9))                                      // the UNITS values
	f.Add(encodeReal8(1e-3))                                      //
	f.Add(encodeReal8(maxReal8))                                  // extremes
	f.Add(encodeReal8(-maxReal8))                                 //
	f.Add(encodeReal8(math.Pow(16, -65)))                         //
	f.Add([]byte{0x00, 0xFF, 0, 0, 0, 0, 0, 0})                   // unnormalized: exp -64
	f.Add([]byte{0x7F, 0, 0, 0, 0, 0, 0, 0x01})                   // tiny mantissa, max exp
	f.Add([]byte{0xC0, 0, 0, 0, 0, 0, 0, 0})                      // signed zero
	f.Add([]byte{0x40, 0x10, 0, 0, 0, 0, 0, 0})                   // 1.0
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}) // -max
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) != 8 {
			return
		}
		v := decodeReal8(b)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("decodeReal8(% x) = %g", b, v)
		}
		e1 := encodeReal8(v)
		v1 := decodeReal8(e1)
		if math.IsNaN(v1) || math.IsInf(v1, 0) {
			t.Fatalf("re-decode of % x = %g", e1, v1)
		}
		e2 := encodeReal8(v1)
		if !bytes.Equal(e1, e2) {
			t.Fatalf("encoding not stable: % x -> %g -> % x -> %g -> % x", b, v, e1, v1, e2)
		}
	})
}

func TestReadErrors(t *testing.T) {
	// Truncated stream.
	l := layout.New("x")
	l.Add(geom.R(0, 0, 10, 10))
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 5, len(full) / 2, len(full) - 3} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	// Garbage.
	if _, err := Read(bytes.NewReader([]byte{0, 8, 0x99, 0, 1, 2, 3, 4})); err == nil {
		t.Error("stream without HEADER must fail")
	}
	// Empty.
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream must fail")
	}
}

func TestNonRectangularBoundaryRejected(t *testing.T) {
	// Handcraft a triangle boundary.
	var buf bytes.Buffer
	w := func(b ...byte) { buf.Write(b) }
	rec := func(rt, dt byte, payload []byte) {
		n := 4 + len(payload)
		w(byte(n>>8), byte(n), rt, dt)
		buf.Write(payload)
	}
	rec(recHEADER, dtInt16, []byte{2, 88})
	units := append(encodeReal8(1e-3), encodeReal8(1e-9)...)
	rec(recUNITS, dtReal8, units)
	rec(recBOUNDARY, dtNone, nil)
	xy := make([]byte, 0, 32)
	pts := []int32{0, 0, 100, 0, 50, 100, 0, 0}
	for _, v := range pts {
		xy = append(xy, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	rec(recXY, dtInt32, xy)
	rec(recENDEL, dtNone, nil)
	rec(recENDLIB, dtNone, nil)
	if _, err := Read(&buf); err == nil {
		t.Fatal("triangle boundary must be rejected")
	}
}

func TestManyFeaturesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	l := layout.New("MANY")
	for i := 0; i < 5000; i++ {
		x := int64(rng.Intn(1 << 20))
		y := int64(rng.Intn(1 << 20))
		l.AddOnLayer(geom.R(x, y, x+int64(rng.Intn(1000)+1), y+int64(rng.Intn(1000)+1)), rng.Intn(64))
	}
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Features) != 5000 {
		t.Fatalf("features = %d", len(got.Features))
	}
	for i := range l.Features {
		if got.Features[i] != l.Features[i] {
			t.Fatalf("feature %d mismatch", i)
		}
	}
}

// writeRawBoundary emits a minimal GDS stream containing one boundary with
// the given vertices.
func writeRawBoundary(pts []int32) *bytes.Buffer {
	var buf bytes.Buffer
	rec := func(rt, dt byte, payload []byte) {
		n := 4 + len(payload)
		buf.Write([]byte{byte(n >> 8), byte(n), rt, dt})
		buf.Write(payload)
	}
	rec(recHEADER, dtInt16, []byte{2, 88})
	units := append(encodeReal8(1e-3), encodeReal8(1e-9)...)
	rec(recUNITS, dtReal8, units)
	rec(recBGNSTR, dtInt16, make([]byte, 24))
	rec(recSTRNAME, dtString, []byte("RAW\x00"))
	rec(recBOUNDARY, dtNone, nil)
	xy := make([]byte, 0, 4*len(pts))
	for _, v := range pts {
		xy = append(xy, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	rec(recXY, dtInt32, xy)
	rec(recENDEL, dtNone, nil)
	rec(recENDSTR, dtNone, nil)
	rec(recENDLIB, dtNone, nil)
	return &buf
}

func TestRectilinearPolygonBoundaryDecomposed(t *testing.T) {
	// L-shaped boundary: must come back as two rectangles covering it.
	buf := writeRawBoundary([]int32{
		0, 0, 200, 0, 200, 100, 100, 100, 100, 300, 0, 300, 0, 0,
	})
	l, err := Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Features) != 2 {
		t.Fatalf("features = %d, want 2 (decomposed L)", len(l.Features))
	}
	var area int64
	for _, f := range l.Features {
		area += f.Rect.Area()
	}
	if area != 200*100+100*200 {
		t.Fatalf("area = %d", area)
	}
}

func TestPolygonBoundaryCrossShape(t *testing.T) {
	// Plus/cross shape: 3 slabs.
	buf := writeRawBoundary([]int32{
		100, 0, 200, 0, 200, 100, 300, 100, 300, 200,
		200, 200, 200, 300, 100, 300, 100, 200, 0, 200,
		0, 100, 100, 100, 100, 0,
	})
	l, err := Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	var area int64
	for _, f := range l.Features {
		area += f.Rect.Area()
	}
	if area != 100*100*5 {
		t.Fatalf("cross area = %d, want %d", area, 100*100*5)
	}
}
