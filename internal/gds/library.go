package gds

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/geom"
)

// ErrUnknownRecord is returned for record types outside the supported
// subset. The reader reports them instead of silently skipping records, so
// a stream the tools cannot faithfully interpret is rejected up front.
var ErrUnknownRecord = errors.New("gds: unsupported record")

// ErrUnsupportedTransform is returned for placement transforms outside the
// rectilinear subgroup: rotations that are not multiples of 90°,
// non-integral or non-positive magnification, or absolute-transform flags.
var ErrUnsupportedTransform = errors.New("gds: unsupported placement transform")

// Poly is one BOUNDARY element: a simple rectilinear polygon on a layer.
// The closing edge back to the first vertex is implicit.
type Poly struct {
	Layer int
	Pts   []geom.Point
}

// Ref is one SREF or AREF element: a placement of another cell. The
// transform applies reflection about the X axis first, then rotation, then
// magnification and translation — the GDSII convention restricted to the
// rectilinear subgroup.
type Ref struct {
	Cell    string
	Origin  geom.Point
	Rot     int   // degrees counterclockwise: 0, 90, 180 or 270
	Reflect bool  // reflect about the X axis (before rotation)
	Mag     int64 // integral magnification; 0 means 1

	// AREF lattice: Cols×Rows placements stepped by ColStep/RowStep in the
	// parent's coordinates (already transformed, per the GDSII AREF XY
	// convention). Both counts are zero for an SREF.
	Cols, Rows       int
	ColStep, RowStep geom.Point
}

// isArray reports whether the ref is an AREF.
func (rf Ref) isArray() bool { return rf.Cols > 0 || rf.Rows > 0 }

// Cell is one GDSII structure: local geometry plus placements.
type Cell struct {
	Name  string
	Polys []Poly
	Refs  []Ref
}

// Library is a parsed GDSII library: an ordered list of cells.
type Library struct {
	Name  string
	Cells []*Cell
}

// CellIndex returns the index of the named cell, or -1.
func (lib *Library) CellIndex(name string) int {
	for i, c := range lib.Cells {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// record is one framed GDSII record.
type record struct {
	rt, dt  byte
	payload []byte
}

func (rec record) i16s() ([]int16, error) {
	if rec.dt != dtInt16 || len(rec.payload)%2 != 0 {
		return nil, fmt.Errorf("gds: malformed int16 record 0x%02x", rec.rt)
	}
	out := make([]int16, len(rec.payload)/2)
	for i := range out {
		out[i] = int16(binary.BigEndian.Uint16(rec.payload[2*i:]))
	}
	return out, nil
}

func (rec record) i32s() ([]int32, error) {
	if rec.dt != dtInt32 || len(rec.payload)%4 != 0 {
		return nil, fmt.Errorf("gds: malformed int32 record 0x%02x", rec.rt)
	}
	out := make([]int32, len(rec.payload)/4)
	for i := range out {
		out[i] = int32(binary.BigEndian.Uint32(rec.payload[4*i:]))
	}
	return out, nil
}

func (rec record) str() string { return string(trimPad(rec.payload)) }

func (rec record) real8() (float64, error) {
	if rec.dt != dtReal8 || len(rec.payload) != 8 {
		return 0, fmt.Errorf("gds: malformed real8 record 0x%02x", rec.rt)
	}
	return decodeReal8(rec.payload), nil
}

// readRecord reads one framed record.
func readRecord(br *bufio.Reader) (record, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return record{}, fmt.Errorf("gds: missing ENDLIB")
		}
		return record{}, err
	}
	length := int(hdr[0])<<8 | int(hdr[1])
	if length < 4 {
		return record{}, fmt.Errorf("gds: record length %d < 4", length)
	}
	rec := record{rt: hdr[2], dt: hdr[3], payload: make([]byte, length-4)}
	if _, err := io.ReadFull(br, rec.payload); err != nil {
		return record{}, fmt.Errorf("gds: truncated record 0x%02x: %w", rec.rt, err)
	}
	return rec, nil
}

// pendingElem accumulates the records of one element until its ENDEL.
type pendingElem struct {
	kind     byte // recBOUNDARY, recSREF or recAREF
	layer    int16
	xy       []int32
	haveXY   bool
	sname    string
	reflect  bool
	mag      float64
	haveMag  bool
	angle    float64
	cols     int16
	rows     int16
	haveGrid bool
}

// ReadLibrary parses a GDSII stream into its structure view. Unsupported
// record types yield ErrUnknownRecord; transforms outside the rectilinear
// subgroup yield ErrUnsupportedTransform.
func ReadLibrary(r io.Reader) (*Library, error) {
	br := bufio.NewReader(r)
	lib := &Library{}
	var cur *Cell       // inside BGNSTR..ENDSTR
	var el *pendingElem // inside an element
	sawHeader := false
	for {
		rec, err := readRecord(br)
		if err != nil {
			return nil, err
		}
		if !sawHeader && rec.rt != recHEADER {
			return nil, fmt.Errorf("gds: stream does not start with HEADER")
		}
		if el != nil {
			done, err := el.consume(rec)
			if err != nil {
				return nil, err
			}
			if done {
				if err := el.finish(cur); err != nil {
					return nil, err
				}
				el = nil
			}
			continue
		}
		switch rec.rt {
		case recHEADER:
			sawHeader = true
		case recBGNLIB:
			// Timestamps; ignored.
		case recLIBNAME:
			lib.Name = rec.str()
		case recUNITS:
			if rec.dt != dtReal8 || len(rec.payload) != 16 {
				return nil, fmt.Errorf("gds: malformed UNITS")
			}
			meters := decodeReal8(rec.payload[8:16])
			// Expect a 1 nm database unit (tolerate rounding).
			if meters < 0.5e-9 || meters > 2e-9 {
				return nil, fmt.Errorf("gds: unsupported database unit %g m (want 1e-9)", meters)
			}
		case recBGNSTR:
			if cur != nil {
				return nil, fmt.Errorf("gds: nested BGNSTR")
			}
			cur = &Cell{}
		case recSTRNAME:
			if cur == nil {
				return nil, fmt.Errorf("gds: STRNAME outside structure")
			}
			cur.Name = rec.str()
		case recENDSTR:
			if cur == nil {
				return nil, fmt.Errorf("gds: ENDSTR outside structure")
			}
			if cur.Name == "" {
				return nil, fmt.Errorf("gds: structure without STRNAME")
			}
			if lib.CellIndex(cur.Name) >= 0 {
				return nil, fmt.Errorf("gds: duplicate structure %q", cur.Name)
			}
			lib.Cells = append(lib.Cells, cur)
			cur = nil
		case recBOUNDARY, recSREF, recAREF:
			if cur == nil {
				return nil, fmt.Errorf("gds: element 0x%02x outside structure", rec.rt)
			}
			el = &pendingElem{kind: rec.rt, mag: 1}
		case recENDLIB:
			if cur != nil {
				return nil, fmt.Errorf("gds: ENDLIB inside structure")
			}
			return lib, nil
		default:
			return nil, fmt.Errorf("%w 0x%02x", ErrUnknownRecord, rec.rt)
		}
	}
}

// consume folds one record into the pending element; it reports true on the
// element's ENDEL.
func (el *pendingElem) consume(rec record) (bool, error) {
	switch rec.rt {
	case recENDEL:
		return true, nil
	case recLAYER:
		if el.kind != recBOUNDARY {
			return false, fmt.Errorf("gds: LAYER inside reference")
		}
		vals, err := rec.i16s()
		if err != nil || len(vals) < 1 {
			return false, fmt.Errorf("gds: malformed LAYER")
		}
		el.layer = vals[0]
	case recDATATYPE:
		if el.kind != recBOUNDARY {
			return false, fmt.Errorf("gds: DATATYPE inside reference")
		}
	case recXY:
		xy, err := rec.i32s()
		if err != nil {
			return false, err
		}
		if len(xy)%2 != 0 {
			return false, fmt.Errorf("gds: malformed XY")
		}
		el.xy = xy
		el.haveXY = true
	case recSNAME:
		if el.kind == recBOUNDARY {
			return false, fmt.Errorf("gds: SNAME inside boundary")
		}
		el.sname = rec.str()
	case recSTRANS:
		if el.kind == recBOUNDARY {
			return false, fmt.Errorf("gds: STRANS inside boundary")
		}
		if rec.dt != dtBits || len(rec.payload) != 2 {
			return false, fmt.Errorf("gds: malformed STRANS")
		}
		bits := binary.BigEndian.Uint16(rec.payload)
		if bits&0x0006 != 0 { // absolute magnification / absolute angle
			return false, fmt.Errorf("%w: absolute STRANS flags 0x%04x", ErrUnsupportedTransform, bits)
		}
		el.reflect = bits&0x8000 != 0
	case recMAG:
		v, err := rec.real8()
		if err != nil {
			return false, err
		}
		el.mag = v
		el.haveMag = true
	case recANGLE:
		v, err := rec.real8()
		if err != nil {
			return false, err
		}
		el.angle = v
	case recCOLROW:
		if el.kind != recAREF {
			return false, fmt.Errorf("gds: COLROW outside AREF")
		}
		vals, err := rec.i16s()
		if err != nil || len(vals) != 2 {
			return false, fmt.Errorf("gds: malformed COLROW")
		}
		el.cols, el.rows = vals[0], vals[1]
		el.haveGrid = true
	default:
		return false, fmt.Errorf("%w 0x%02x inside element", ErrUnknownRecord, rec.rt)
	}
	return false, nil
}

// finish validates the accumulated element and appends it to the cell.
func (el *pendingElem) finish(cur *Cell) error {
	if !el.haveXY {
		return fmt.Errorf("gds: element 0x%02x without XY", el.kind)
	}
	if el.kind == recBOUNDARY {
		n := len(el.xy) / 2
		if n < 4 {
			return ErrNotRectangle
		}
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(int64(el.xy[2*i]), int64(el.xy[2*i+1]))
		}
		cur.Polys = append(cur.Polys, Poly{Layer: int(el.layer), Pts: pts})
		return nil
	}
	if el.sname == "" {
		return fmt.Errorf("gds: reference without SNAME")
	}
	rot, err := rotFromAngle(el.angle)
	if err != nil {
		return err
	}
	mag := int64(1)
	if el.haveMag {
		mag = int64(el.mag)
		if float64(mag) != el.mag || mag < 1 || mag > magLimit {
			return fmt.Errorf("%w: magnification %g", ErrUnsupportedTransform, el.mag)
		}
	}
	rf := Ref{Cell: el.sname, Rot: rot, Reflect: el.reflect, Mag: mag}
	switch el.kind {
	case recSREF:
		if len(el.xy) != 2 {
			return fmt.Errorf("gds: SREF XY wants 1 point, got %d", len(el.xy)/2)
		}
		rf.Origin = geom.Pt(int64(el.xy[0]), int64(el.xy[1]))
	case recAREF:
		if !el.haveGrid {
			return fmt.Errorf("gds: AREF without COLROW")
		}
		if el.cols < 1 || el.rows < 1 {
			return fmt.Errorf("gds: AREF grid %dx%d", el.cols, el.rows)
		}
		if len(el.xy) != 6 {
			return fmt.Errorf("gds: AREF XY wants 3 points, got %d", len(el.xy)/2)
		}
		rf.Origin = geom.Pt(int64(el.xy[0]), int64(el.xy[1]))
		rf.Cols, rf.Rows = int(el.cols), int(el.rows)
		colRef := geom.Pt(int64(el.xy[2]), int64(el.xy[3]))
		rowRef := geom.Pt(int64(el.xy[4]), int64(el.xy[5]))
		rf.ColStep, err = latticeStep(rf.Origin, colRef, rf.Cols)
		if err != nil {
			return fmt.Errorf("gds: AREF column lattice: %w", err)
		}
		rf.RowStep, err = latticeStep(rf.Origin, rowRef, rf.Rows)
		if err != nil {
			return fmt.Errorf("gds: AREF row lattice: %w", err)
		}
	}
	cur.Refs = append(cur.Refs, rf)
	return nil
}

// magLimit bounds a single placement's magnification; the flattener bounds
// the cumulative product separately.
const magLimit = 1 << 16

// rotFromAngle maps a GDSII ANGLE (degrees counterclockwise) onto the
// rectilinear subgroup.
func rotFromAngle(deg float64) (int, error) {
	r := int(deg)
	if float64(r) != deg {
		return 0, fmt.Errorf("%w: angle %g°", ErrUnsupportedTransform, deg)
	}
	r %= 360
	if r < 0 {
		r += 360
	}
	if r%90 != 0 {
		return 0, fmt.Errorf("%w: angle %g°", ErrUnsupportedTransform, deg)
	}
	return r, nil
}

// latticeStep divides the displacement to an AREF reference point by the
// element count on that axis.
func latticeStep(origin, ref geom.Point, n int) (geom.Point, error) {
	dx, dy := ref.X-origin.X, ref.Y-origin.Y
	if dx%int64(n) != 0 || dy%int64(n) != 0 {
		return geom.Point{}, fmt.Errorf("displacement (%d,%d) not divisible by %d", dx, dy, n)
	}
	return geom.Pt(dx/int64(n), dy/int64(n)), nil
}

// libWriter emits framed records.
type libWriter struct {
	bw  *bufio.Writer
	err error
}

func (w *libWriter) emit(rt, dt byte, payload []byte) {
	if w.err != nil {
		return
	}
	length := 4 + len(payload)
	if length > 0xFFFF {
		w.err = fmt.Errorf("gds: record too long (%d)", length)
		return
	}
	hdr := []byte{byte(length >> 8), byte(length), rt, dt}
	if _, err := w.bw.Write(hdr); err != nil {
		w.err = err
		return
	}
	_, w.err = w.bw.Write(payload)
}

func (w *libWriter) i16(vals ...int16) []byte {
	out := make([]byte, 2*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint16(out[2*i:], uint16(v))
	}
	return out
}

func (w *libWriter) i32(vals ...int32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

func (w *libWriter) str(s string) []byte {
	b := []byte(s)
	if len(b)%2 == 1 {
		b = append(b, 0) // records are word-aligned
	}
	return b
}

func (w *libWriter) xyPoint(p geom.Point) (int32, int32, bool) {
	if !inInt32Range(p.X) || !inInt32Range(p.Y) {
		return 0, 0, false
	}
	return int32(p.X), int32(p.Y), true
}

// WriteLibrary serializes a hierarchical library as a GDSII stream. Output
// is deterministic: timestamps are fixed and cells, elements and records
// are emitted in model order.
func WriteLibrary(w io.Writer, lib *Library) error {
	lw := &libWriter{bw: bufio.NewWriter(w)}
	name := lib.Name
	if name == "" {
		name = "LIB"
	}
	ts := lw.i16(2005, 3, 7, 0, 0, 0, 2005, 3, 7, 0, 0, 0)
	lw.emit(recHEADER, dtInt16, lw.i16(600))
	lw.emit(recBGNLIB, dtInt16, ts)
	lw.emit(recLIBNAME, dtString, lw.str(name))
	lw.emit(recUNITS, dtReal8, append(encodeReal8(1e-3), encodeReal8(1e-9)...))
	for _, c := range lib.Cells {
		lw.emit(recBGNSTR, dtInt16, ts)
		lw.emit(recSTRNAME, dtString, lw.str(c.Name))
		for _, p := range c.Polys {
			lw.emit(recBOUNDARY, dtNone, nil)
			lw.emit(recLAYER, dtInt16, lw.i16(int16(p.Layer)))
			lw.emit(recDATATYPE, dtInt16, lw.i16(0))
			pts := p.Pts
			if len(pts) > 0 && pts[0] != pts[len(pts)-1] {
				pts = append(append([]geom.Point(nil), pts...), pts[0])
			}
			xy := make([]int32, 0, 2*len(pts))
			for _, pt := range pts {
				x, y, ok := lw.xyPoint(pt)
				if !ok {
					return fmt.Errorf("gds: cell %q polygon exceeds int32 coordinate range", c.Name)
				}
				xy = append(xy, x, y)
			}
			lw.emit(recXY, dtInt32, lw.i32(xy...))
			lw.emit(recENDEL, dtNone, nil)
		}
		for _, rf := range c.Refs {
			if err := lw.writeRef(c.Name, rf); err != nil {
				return err
			}
		}
		lw.emit(recENDSTR, dtNone, nil)
	}
	lw.emit(recENDLIB, dtNone, nil)
	if lw.err != nil {
		return lw.err
	}
	return lw.bw.Flush()
}

func (lw *libWriter) writeRef(cellName string, rf Ref) error {
	kind := byte(recSREF)
	if rf.isArray() {
		kind = recAREF
	}
	lw.emit(kind, dtNone, nil)
	lw.emit(recSNAME, dtString, lw.str(rf.Cell))
	mag := rf.Mag
	if mag == 0 {
		mag = 1
	}
	if rf.Reflect || rf.Rot != 0 || mag != 1 {
		var bits uint16
		if rf.Reflect {
			bits |= 0x8000
		}
		lw.emit(recSTRANS, dtBits, lw.i16(int16(bits)))
		if mag != 1 {
			lw.emit(recMAG, dtReal8, encodeReal8(float64(mag)))
		}
		if rf.Rot != 0 {
			lw.emit(recANGLE, dtReal8, encodeReal8(float64(rf.Rot)))
		}
	}
	var pts []geom.Point
	if rf.isArray() {
		lw.emit(recCOLROW, dtInt16, lw.i16(int16(rf.Cols), int16(rf.Rows)))
		pts = []geom.Point{
			rf.Origin,
			geom.Pt(rf.Origin.X+rf.ColStep.X*int64(rf.Cols), rf.Origin.Y+rf.ColStep.Y*int64(rf.Cols)),
			geom.Pt(rf.Origin.X+rf.RowStep.X*int64(rf.Rows), rf.Origin.Y+rf.RowStep.Y*int64(rf.Rows)),
		}
	} else {
		pts = []geom.Point{rf.Origin}
	}
	xy := make([]int32, 0, 2*len(pts))
	for _, pt := range pts {
		x, y, ok := lw.xyPoint(pt)
		if !ok {
			return fmt.Errorf("gds: cell %q reference exceeds int32 coordinate range", cellName)
		}
		xy = append(xy, x, y)
	}
	lw.emit(recXY, dtInt32, lw.i32(xy...))
	lw.emit(recENDEL, dtNone, nil)
	return nil
}
