// Correction: the paper's Figure 5 — a single end-to-end vertical space
// corrects multiple AAPSM conflicts at once. The example prints the chosen
// cut lines, shows which conflicts each one fixes, and verifies the widened
// layout.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	aapsm "repro"
)

func main() {
	ctx := context.Background()
	eng := aapsm.NewEngine()
	l := aapsm.Figure5Layout() // five stacked conflict pairs, aligned in x
	s := eng.NewSession(l)

	res, err := s.Detect(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%q: %d conflicts detected across %d rows\n",
		l.Name, len(res.Conflicts()), 5)

	cor, err := s.Correction(ctx) // reuses the detection above
	if err != nil {
		log.Fatal(err)
	}
	for _, cut := range cor.Plan.Cuts {
		fmt.Printf("  %s space at %d nm, width %d nm, corrects %d conflicts\n",
			cut.Dir, cut.Pos, cut.Width, len(cut.Corrects))
	}
	fmt.Printf("max conflicts removed by one line: %d (paper Figure 5's point)\n",
		cor.Plan.MaxPerLine())
	fmt.Printf("area: %.2f µm² -> %.2f µm² (+%.2f%%)\n",
		float64(cor.Stats.AreaBefore)/1e6, float64(cor.Stats.AreaAfter)/1e6,
		cor.Stats.AreaIncrease)

	post := eng.NewSession(cor.Layout)
	err = post.RequireAssignable(ctx)
	if err != nil && !errors.Is(err, aapsm.ErrNotAssignable) {
		log.Fatal(err) // a pipeline failure, not a verdict
	}
	fmt.Printf("modified layout phase-assignable: %v, DRC violations: %d\n",
		err == nil, len(post.DRC()))
}
