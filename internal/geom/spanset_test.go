package geom

import (
	"math/rand"
	"testing"
)

// referenceStab is the brute-force oracle: any span with lo < pos <= hi.
func referenceStab(spans [][2]int64, pos int64) bool {
	for _, s := range spans {
		if s[0] < pos && pos <= s[1] {
			return true
		}
	}
	return false
}

func TestSpanSetBasic(t *testing.T) {
	var s SpanSet
	if s.Stab(0) {
		t.Fatal("empty set must not stab")
	}
	s.Insert(10, 20)
	for pos, want := range map[int64]bool{9: false, 10: false, 11: true, 20: true, 21: false} {
		if got := s.Stab(pos); got != want {
			t.Errorf("Stab(%d) = %v, want %v", pos, got, want)
		}
	}
	s.Remove(10, 20)
	if s.Stab(15) {
		t.Fatal("removed span still stabs")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after remove", s.Len())
	}
}

func TestSpanSetDuplicates(t *testing.T) {
	var s SpanSet
	s.Insert(0, 100)
	s.Insert(0, 100)
	s.Remove(0, 100)
	if !s.Stab(50) {
		t.Fatal("one of two identical spans must survive a single remove")
	}
	s.Remove(0, 100)
	if s.Stab(50) {
		t.Fatal("both spans removed")
	}
}

// TestSpanSetBoundedMemory: a query-free edit stream (insert+remove cycles,
// the shape of an aapsmd session that edits but never corrects) must not
// grow the pending logs without bound — mutations compact past a threshold.
func TestSpanSetBoundedMemory(t *testing.T) {
	var s SpanSet
	for i := int64(0); i < 200; i++ {
		s.Insert(i, i+100) // a modest live population
	}
	for cycle := int64(0); cycle < 20000; cycle++ {
		s.Insert(cycle, cycle+50)
		s.Remove(cycle, cycle+50)
	}
	for _, c := range []*sortedLog{&s.starts, &s.ends} {
		if pending := len(c.adds) + len(c.dels); pending > spanCompactMinPending {
			t.Fatalf("pending log grew to %d entries (threshold %d) over a query-free edit stream",
				pending, spanCompactMinPending)
		}
	}
	if s.Len() != 200 {
		t.Fatalf("Len = %d, want 200", s.Len())
	}
	if !s.Stab(50) || s.Stab(-10) {
		t.Fatal("semantics broken after compaction cycles")
	}
}

// TestSpanSetRandomized mirrors the incremental engine's usage: interleaved
// insert/remove/stab against a brute-force oracle.
func TestSpanSetRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s SpanSet
	var live [][2]int64
	for step := 0; step < 5000; step++ {
		switch {
		case len(live) == 0 || rng.Intn(3) != 0:
			lo := rng.Int63n(2000) - 1000
			hi := lo + rng.Int63n(300)
			s.Insert(lo, hi)
			live = append(live, [2]int64{lo, hi})
		default:
			i := rng.Intn(len(live))
			s.Remove(live[i][0], live[i][1])
			live = append(live[:i], live[i+1:]...)
		}
		if step%7 == 0 {
			pos := rng.Int63n(2400) - 1200
			if got, want := s.Stab(pos), referenceStab(live, pos); got != want {
				t.Fatalf("step %d: Stab(%d) = %v, want %v (%d live)", step, pos, got, want, len(live))
			}
		}
	}
	if s.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(live))
	}
}
