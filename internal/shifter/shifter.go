// Package shifter synthesizes the phase shifters that flank every critical
// feature and detects "overlapping" shifter pairs — pairs closer than the
// minimum shifter spacing, which Condition 2 of the phase assignment problem
// forces onto the same phase.
package shifter

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/layout"
)

// Side identifies which flank of its feature a shifter occupies.
type Side int8

const (
	// LowSide is below a horizontal feature or left of a vertical one.
	LowSide Side = iota
	// HighSide is above a horizontal feature or right of a vertical one.
	HighSide
)

// Shifter is a synthesized phase-shift aperture.
type Shifter struct {
	Rect    geom.Rect
	Feature int // index of the flanked critical feature in the layout
	Side    Side
}

// Center returns the shifter's node position for graph drawings.
func (s Shifter) Center() geom.Point { return s.Rect.Center() }

// Overlap records a pair of shifters separated by less than the minimum
// shifter spacing (Condition 2). Deficit is the extra space needed to pull
// them apart to legality — the edge weight used by conflict detection.
type Overlap struct {
	A, B    int // shifter indices
	Deficit int64
}

// Set is the result of shifter synthesis on a layout.
type Set struct {
	Shifters []Shifter
	// PairOf[f] gives the two shifter indices flanking critical feature f;
	// absent for non-critical features.
	PairOf   map[int][2]int
	Overlaps []Overlap
}

// Generate synthesizes two flanking shifters for every critical feature of
// l and detects all overlapping pairs under rules r.
func Generate(l *layout.Layout, r layout.Rules) (*Set, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	s := &Set{PairOf: make(map[int][2]int)}
	for fi, f := range l.Features {
		if !r.IsCritical(f) {
			continue
		}
		lo, hi := Flanks(f, r)
		a := len(s.Shifters)
		s.Shifters = append(s.Shifters,
			Shifter{Rect: lo, Feature: fi, Side: LowSide},
			Shifter{Rect: hi, Feature: fi, Side: HighSide},
		)
		s.PairOf[fi] = [2]int{a, a + 1}
	}
	s.findOverlaps(r)
	return s, nil
}

// Flanks computes the two shifter rectangles for critical feature f: they
// run the full feature length on both sides of its narrow dimension,
// separated from the feature edge by the shifter gap.
func Flanks(f layout.Feature, r layout.Rules) (lo, hi geom.Rect) {
	rect := f.Rect
	if f.Orient() == layout.Horizontal {
		lo = geom.R(rect.X0, rect.Y0-r.ShifterGap-r.ShifterWidth, rect.X1, rect.Y0-r.ShifterGap)
		hi = geom.R(rect.X0, rect.Y1+r.ShifterGap, rect.X1, rect.Y1+r.ShifterGap+r.ShifterWidth)
		return lo, hi
	}
	lo = geom.R(rect.X0-r.ShifterGap-r.ShifterWidth, rect.Y0, rect.X0-r.ShifterGap, rect.Y1)
	hi = geom.R(rect.X1+r.ShifterGap, rect.Y0, rect.X1+r.ShifterGap+r.ShifterWidth, rect.Y1)
	return lo, hi
}

// OverlapDeficit evaluates the Condition-2 predicate on two shifter
// rectangles: it reports whether the pair is closer than the minimum
// shifter spacing, and if so the extra space needed to legalize it (the
// edge weight conflict detection uses). Every overlap enumeration —
// the full generator below and the incremental engine's neighborhood
// patching — must go through this single definition.
func OverlapDeficit(a, b geom.Rect, r layout.Rules) (int64, bool) {
	sep := geom.Separation(a, b)
	if sep >= r.MinShifterSpacing {
		return 0, false
	}
	return r.MinShifterSpacing - sep, true
}

// findOverlaps fills s.Overlaps with every pair of shifters whose
// rectilinear separation is below the minimum shifter spacing, excluding the
// two flanks of the same feature (those are kept apart by the feature itself
// and are governed by Condition 1 instead). A uniform grid prunes candidate
// pairs.
func (s *Set) findOverlaps(r layout.Rules) {
	if len(s.Shifters) == 0 {
		return
	}
	cell := r.MinShifterSpacing + r.ShifterWidth
	g := geom.NewGrid(cell)
	for i, sh := range s.Shifters {
		g.Insert(int32(i), sh.Rect.Expand(r.MinShifterSpacing/2))
	}
	g.ForEachPair(func(i, j int32) {
		a, b := s.Shifters[i], s.Shifters[j]
		if a.Feature == b.Feature {
			return
		}
		deficit, ok := OverlapDeficit(a.Rect, b.Rect, r)
		if !ok {
			return
		}
		s.Overlaps = append(s.Overlaps, Overlap{A: int(i), B: int(j), Deficit: deficit})
	})
	// Deterministic order for downstream graph construction.
	sortOverlaps(s.Overlaps)
}

func sortOverlaps(o []Overlap) {
	sort.Slice(o, func(i, j int) bool {
		if o[i].A != o[j].A {
			return o[i].A < o[j].A
		}
		return o[i].B < o[j].B
	})
}

// String implements fmt.Stringer for diagnostics.
func (s Shifter) String() string {
	side := "low"
	if s.Side == HighSide {
		side = "high"
	}
	return fmt.Sprintf("shifter{f%d %s %v}", s.Feature, side, s.Rect)
}
