// Package bench generates the deterministic synthetic layouts used to
// reproduce the paper's experiments. The paper evaluates on proprietary
// 90 nm industrial designs (up to ~160 K polygons); these generators build
// standard-cell-style polysilicon layouts that exercise the same code paths:
// rows of vertical poly gates at mixed pitches, occasional horizontal
// straps, and dense clusters whose shifters form odd phase-dependency
// cycles.
//
// All generators are seeded and reproducible.
package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/layout"
)

// Params controls a synthetic standard-cell layout.
type Params struct {
	Seed int64
	// Rows and GatesPerRow set the overall size (features ≈ Rows*GatesPerRow
	// plus straps).
	Rows        int
	GatesPerRow int
	// GateWidth/GateHeight are the poly gate dimensions (critical features).
	GateWidth  int64
	GateHeight int64
	// SafePitch is the default gate pitch; DensePitch is used inside dense
	// clusters (choose < GateWidth+2*ShifterWidth+MinShifterSpacing to
	// force conflicts).
	SafePitch  int64
	DensePitch int64
	// DenseClusterEvery inserts a dense cluster of DenseClusterSize gates
	// after every this many safe gates (0 disables clusters).
	DenseClusterEvery int
	DenseClusterSize  int
	// StrapEvery adds a wide horizontal strap after every this many rows
	// (0 disables). Straps are non-critical.
	StrapEvery int
	// RowGap is the vertical space between rows.
	RowGap int64
	// PitchJitter randomizes pitches by ±PitchJitter nm.
	PitchJitter int64
	// YJitter offsets each gate vertically by ±YJitter nm and HeightSteps
	// varies gate heights in ±HeightSteps*100 nm increments, breaking the
	// collinearity of shifter centers (real cells mix transistor sizes; a
	// perfectly 1-D row makes every conflict edge collinear and forces the
	// planarizer — not the bipartizer — to resolve everything).
	YJitter     int64
	HeightSteps int
}

// DefaultParams returns a balanced parameter set under the Default90nm
// rules: safe pitch 560 keeps chains legal, dense pitch 380 forces the
// classic skip-overlap odd cycles.
func DefaultParams(seed int64, rows, gatesPerRow int) Params {
	return Params{
		Seed:              seed,
		Rows:              rows,
		GatesPerRow:       gatesPerRow,
		GateWidth:         100,
		GateHeight:        1000,
		SafePitch:         560,
		DensePitch:        380,
		DenseClusterEvery: 37,
		DenseClusterSize:  3,
		StrapEvery:        4,
		RowGap:            1300,
		PitchJitter:       25,
		YJitter:           80,
		HeightSteps:       2,
	}
}

// Generate builds the layout described by p. Gates sit on a per-design
// column grid shared by all rows — as placed standard cells do — so
// end-to-end vertical spaces between columns exist; per-row variation comes
// from skipped columns, y offsets and height steps.
func Generate(name string, p Params) *layout.Layout {
	rng := rand.New(rand.NewSource(p.Seed))
	l := layout.New(name)
	jitter := func() int64 {
		if p.PitchJitter == 0 {
			return 0
		}
		return rng.Int63n(2*p.PitchJitter+1) - p.PitchJitter
	}

	// Column grid: x positions for every gate slot, with dense clusters of
	// varying size and pitch (heterogeneous odd-cycle structures).
	cols := make([]int64, 0, p.GatesPerRow)
	x := int64(0)
	sinceCluster := 0
	for len(cols) < p.GatesPerRow {
		inCluster := p.DenseClusterEvery > 0 && sinceCluster >= p.DenseClusterEvery
		if inCluster {
			n := p.DenseClusterSize + rng.Intn(3)
			if n > p.GatesPerRow-len(cols) {
				n = p.GatesPerRow - len(cols)
			}
			for i := 0; i < n; i++ {
				cols = append(cols, x)
				x += p.DensePitch + rng.Int63n(60) - 10
			}
			sinceCluster = 0
			// Extra margin after a cluster so clusters stay independent.
			x += p.SafePitch
			continue
		}
		cols = append(cols, x)
		x += p.SafePitch + jitter()
		sinceCluster++
	}

	y := int64(0)
	for row := 0; row < p.Rows; row++ {
		for _, cx := range cols {
			// Occasional empty slots vary the per-row conflict structure.
			if rng.Intn(12) == 0 {
				continue
			}
			dy := int64(0)
			if p.YJitter > 0 {
				dy = rng.Int63n(2*p.YJitter+1) - p.YJitter
			}
			h := p.GateHeight
			if p.HeightSteps > 0 {
				h += int64(rng.Intn(2*p.HeightSteps+1)-p.HeightSteps) * 100
			}
			l.Add(geom.R(cx, y+dy, cx+p.GateWidth, y+dy+h))
		}
		if p.StrapEvery > 0 && (row+1)%p.StrapEvery == 0 {
			// Wide horizontal strap above the row: non-critical (width
			// 300), cleared above the tallest possible jittered gate.
			sy := y + p.GateHeight + p.YJitter + int64(p.HeightSteps)*100 + 150
			l.Add(geom.R(0, sy, x, sy+300))
		}
		y += p.GateHeight + p.RowGap
	}
	return l
}

// Design is one row of the benchmark suite.
type Design struct {
	Name   string
	Params Params
}

// Suite returns the Table 1/2 design list: sizes grow from ~1 K to ~160 K
// polygons, mirroring the paper's range ("the proposed flow ... could be
// used on a full-chip layout with approximately 160 K polygons").
func Suite() []Design {
	type row struct {
		name  string
		rows  int
		gates int
		seed  int64
	}
	rows := []row{
		{"d1", 4, 250, 101},
		{"d2", 8, 315, 102},
		{"d3", 10, 500, 103},
		{"d4", 16, 625, 104},
		{"d5", 25, 800, 105},
		{"d6", 40, 1000, 106},
		{"d7", 64, 1250, 107},
		{"d8", 100, 1600, 108},
	}
	out := make([]Design, len(rows))
	for i, r := range rows {
		out[i] = Design{Name: r.name, Params: DefaultParams(r.seed, r.rows, r.gates)}
	}
	return out
}

// SmallSuite returns the first n designs (test-sized subsets of Suite).
func SmallSuite(n int) []Design {
	s := Suite()
	if n > len(s) {
		n = len(s)
	}
	return s[:n]
}

// Figure1Layout reproduces the paper's Figure 1 situation: a cluster of
// three parallel critical wires whose shifters form a non-localized odd
// cycle of phase dependencies, so no correct phase assignment exists.
func Figure1Layout() *layout.Layout {
	l := layout.New("figure1")
	l.Add(geom.R(0, 0, 100, 1000))
	l.Add(geom.R(350, 0, 450, 1000))
	l.Add(geom.R(700, 0, 800, 1000))
	return l
}

// Figure2Layout is the small layout used to contrast the phase conflict
// graph with the feature graph: wires of unequal lengths whose overlap
// regions sit away from the midpoints of the shifter center-lines, so the
// FG conflict nodes detour off-line (bending their edges) while the PCG
// stays straight.
func Figure2Layout() *layout.Layout {
	l := layout.New("figure2")
	l.Add(geom.R(0, 0, 100, 900))       // short wire
	l.Add(geom.R(380, 600, 480, 2400))  // long wire, asymmetric overlap
	l.Add(geom.R(760, 0, 860, 1200))    // medium wire
	l.Add(geom.R(1140, 300, 1240, 900)) // short offset wire
	l.Add(geom.R(0, 2900, 1240, 3000))  // horizontal wire above
	return l
}

// Figure5Layout stacks aligned conflict pairs so a single end-to-end
// vertical space corrects several AAPSM conflicts at once (paper Figure 5).
func Figure5Layout() *layout.Layout {
	l := layout.New("figure5")
	for row := int64(0); row < 5; row++ {
		y := row * 1800
		l.Add(geom.R(0, y, 100, y+1000))
		l.Add(geom.R(380, y, 480, y+1000))
	}
	return l
}

// Stats summarizes a generated layout.
func Stats(l *layout.Layout, r layout.Rules) string {
	crit := len(l.CriticalIndices(r))
	return fmt.Sprintf("%s: %d polygons (%d critical), bbox %v",
		l.Name, len(l.Features), crit, l.BBox())
}
