// Package graph provides the weighted undirected multigraph substrate shared
// by the AAPSM conflict-detection flow: connected components, bipartiteness
// testing with odd-cycle extraction, a parity (bipartite) union–find, and
// greedy spanning structures.
//
// Nodes are dense ints 0..N-1; edges are identified by their index in the
// edge list so parallel edges and self-loops are representable (self-loops
// make a graph non-bipartite and are reported as their own odd cycles).
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected weighted edge.
type Edge struct {
	U, V   int
	Weight int64
}

// Graph is an undirected multigraph with int64 edge weights.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]Arc // Arc.To, Arc.Edge index
	dirty bool
}

// Arc is a directed half-edge in an adjacency list.
type Arc struct {
	To   int // head node
	Edge int // index into Edges()
}

// New creates a graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{n: n}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddNode appends a new node and returns its id.
func (g *Graph) AddNode() int {
	g.n++
	g.dirty = true
	return g.n - 1
}

// AddEdge appends an undirected edge and returns its index.
func (g *Graph) AddEdge(u, v int, w int64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, g.n))
	}
	g.edges = append(g.edges, Edge{u, v, w})
	g.dirty = true
	return len(g.edges) - 1
}

// Edges returns the backing edge slice. Callers must not append; mutating
// weights is allowed before the next algorithm call.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns edge i.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Adj returns the adjacency list of node u, rebuilding lazily after
// mutation. Self-loops appear twice (once per end).
func (g *Graph) Adj(u int) []Arc {
	g.build()
	return g.adj[u]
}

func (g *Graph) build() {
	if !g.dirty && g.adj != nil {
		return
	}
	deg := make([]int, g.n)
	for _, e := range g.edges {
		deg[e.U]++
		deg[e.V]++
	}
	g.adj = make([][]Arc, g.n)
	for u := range g.adj {
		g.adj[u] = make([]Arc, 0, deg[u])
	}
	for i, e := range g.edges {
		g.adj[e.U] = append(g.adj[e.U], Arc{e.V, i})
		g.adj[e.V] = append(g.adj[e.V], Arc{e.U, i})
	}
	g.dirty = false
}

// Degree returns the degree of node u (self-loops count twice).
func (g *Graph) Degree(u int) int { return len(g.Adj(u)) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New(g.n)
	out.edges = append([]Edge(nil), g.edges...)
	out.dirty = true
	return out
}

// SubgraphWithoutEdges returns a copy of g with the given edge indices
// removed and a mapping from new edge index to old edge index.
func (g *Graph) SubgraphWithoutEdges(removed map[int]bool) (*Graph, []int) {
	skip := make([]bool, len(g.edges))
	for e := range removed {
		if e >= 0 && e < len(skip) {
			skip[e] = true
		}
	}
	return g.SubgraphWithoutEdgeSet(skip)
}

// SubgraphWithoutEdgeSet is SubgraphWithoutEdges with the removed set as a
// boolean slice indexed by edge — the allocation-light form used by the
// per-cluster detection flow.
func (g *Graph) SubgraphWithoutEdgeSet(skip []bool) (*Graph, []int) {
	kept := 0
	for i := range g.edges {
		if i >= len(skip) || !skip[i] {
			kept++
		}
	}
	out := New(g.n)
	out.edges = make([]Edge, 0, kept)
	oldIdx := make([]int, 0, kept)
	for i, e := range g.edges {
		if i < len(skip) && skip[i] {
			continue
		}
		out.edges = append(out.edges, e)
		out.dirty = true
		oldIdx = append(oldIdx, i)
	}
	return out, oldIdx
}

// Induced is one part of a graph partition produced by InducedComponents: a
// standalone subgraph plus the index maps needed to translate results back to
// the parent graph.
type Induced struct {
	G *Graph
	// Nodes maps new node index -> old node index (ascending).
	Nodes []int
	// EdgeOf maps new edge index -> old edge index (ascending).
	EdgeOf []int
}

// InducedComponents partitions g by the given node labels (labels[v] must be
// in [0, count)) and returns one induced subgraph per label together with a
// shared old-node -> local-node map. Every edge must have both endpoints in
// the same part (self-loops trivially qualify); the function panics
// otherwise, since a partition that cuts edges has no induced decomposition.
//
// Node and edge order is preserved inside each part, so algorithms whose
// tie-breaking depends on index order behave identically on the parts and on
// the whole. The entire extraction is a single O(N+M) pass, unlike repeated
// per-component SubgraphWithoutEdges-style filtering.
func (g *Graph) InducedComponents(labels []int, count int) ([]Induced, []int) {
	return g.InducedComponentsSubset(labels, count, nil)
}

// InducedComponentsSubset is InducedComponents restricted to the parts
// marked in keep: every part's Nodes and EdgeOf index maps are filled (they
// cost one shared O(N+M) pass regardless), but the standalone subgraph G is
// materialized only for kept parts. A nil keep materializes every part.
// The incremental detection engine uses this to re-induce only the dirty
// conflict clusters of an edited layout while still obtaining the edge index
// maps it needs to re-merge cached results for the clean ones.
func (g *Graph) InducedComponentsSubset(labels []int, count int, keep []bool) ([]Induced, []int) {
	if len(labels) != g.n {
		panic(fmt.Sprintf("graph: %d labels for %d nodes", len(labels), g.n))
	}
	parts := make([]Induced, count)
	localOf := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		c := labels[v]
		localOf[v] = len(parts[c].Nodes)
		parts[c].Nodes = append(parts[c].Nodes, v)
	}
	for c := range parts {
		if keep == nil || keep[c] {
			parts[c].G = New(len(parts[c].Nodes))
		}
	}
	for ei, e := range g.edges {
		c := labels[e.U]
		if labels[e.V] != c {
			panic(fmt.Sprintf("graph: edge %d (%d,%d) crosses partition labels %d/%d",
				ei, e.U, e.V, c, labels[e.V]))
		}
		if parts[c].G != nil {
			parts[c].G.AddEdge(localOf[e.U], localOf[e.V], e.Weight)
		}
		parts[c].EdgeOf = append(parts[c].EdgeOf, ei)
	}
	return parts, localOf
}

// Components labels each node with a component id in [0, count) and returns
// (labels, count). Isolated nodes form their own components.
func (g *Graph) Components() ([]int, int) {
	g.build()
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	count := 0
	stack := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = count
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, a := range g.adj[u] {
				if comp[a.To] < 0 {
					comp[a.To] = count
					stack = append(stack, a.To)
				}
			}
		}
		count++
	}
	return comp, count
}

// TwoColor attempts to 2-color the graph by BFS. It returns the coloring
// (0/1 per node, deterministic: each component root gets color 0) and true
// when the graph is bipartite. When it is not, ok is false and colors holds
// the partial coloring at the point of failure.
func (g *Graph) TwoColor() (colors []int8, ok bool) {
	g.build()
	colors = make([]int8, g.n)
	for i := range colors {
		colors[i] = -1
	}
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if colors[s] >= 0 {
			continue
		}
		colors[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range g.adj[u] {
				if a.To == u { // self-loop: never 2-colorable
					return colors, false
				}
				if colors[a.To] < 0 {
					colors[a.To] = 1 - colors[u]
					queue = append(queue, a.To)
				} else if colors[a.To] == colors[u] {
					return colors, false
				}
			}
		}
	}
	return colors, true
}

// IsBipartite reports whether the graph is 2-colorable.
func (g *Graph) IsBipartite() bool {
	_, ok := g.TwoColor()
	return ok
}

// OddCycle returns one odd cycle as a sequence of edge indices, or nil when
// the graph is bipartite. A self-loop is returned as a length-1 cycle.
func (g *Graph) OddCycle() []int {
	g.build()
	color := make([]int8, g.n)
	parentArc := make([]Arc, g.n) // arc used to reach each node
	for i := range color {
		color[i] = -1
	}
	for s := 0; s < g.n; s++ {
		if color[s] >= 0 {
			continue
		}
		color[s] = 0
		parentArc[s] = Arc{-1, -1}
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range g.adj[u] {
				if a.To == u {
					return []int{a.Edge}
				}
				if color[a.To] < 0 {
					color[a.To] = 1 - color[u]
					parentArc[a.To] = Arc{u, a.Edge}
					queue = append(queue, a.To)
					continue
				}
				if color[a.To] != color[u] {
					continue
				}
				// Same-color contact: combine the two tree paths plus this
				// edge into an odd closed walk, then trim to the lowest
				// common ancestor to obtain a simple odd cycle.
				return oddCycleFrom(u, a.To, a.Edge, parentArc)
			}
		}
	}
	return nil
}

// oddCycleFrom builds the odd cycle through BFS-tree ancestors of u and v
// joined by edge uv (edge index e).
func oddCycleFrom(u, v, e int, parentArc []Arc) []int {
	pathEdges := func(x int) (nodes []int, edges []int) {
		for parentArc[x].To >= 0 {
			nodes = append(nodes, x)
			edges = append(edges, parentArc[x].Edge)
			x = parentArc[x].To
		}
		nodes = append(nodes, x)
		return
	}
	un, ue := pathEdges(u)
	vn, ve := pathEdges(v)
	// Find LCA: walk from the roots (ends of the slices) while equal.
	i, j := len(un)-1, len(vn)-1
	for i > 0 && j > 0 && un[i-1] == vn[j-1] {
		i--
		j--
	}
	// Cycle: u ... lca via ue[0..i-1], then lca ... v reversed via ve, then e.
	cycle := append([]int{}, ue[:i]...)
	for k := j - 1; k >= 0; k-- {
		cycle = append(cycle, ve[k])
	}
	cycle = append(cycle, e)
	return cycle
}

// VerifyBipartition checks that removing the edges in removed leaves a
// bipartite graph; it returns the resulting 2-coloring of the remaining
// graph and ok.
func (g *Graph) VerifyBipartition(removed map[int]bool) ([]int8, bool) {
	skip := make([]bool, len(g.edges))
	for e := range removed {
		if e >= 0 && e < len(skip) {
			skip[e] = true
		}
	}
	return g.TwoColorWithoutEdges(skip)
}

// TwoColorWithoutEdges two-colors the graph as if the edges marked in skip
// were deleted, without materializing the subgraph. The coloring is
// identical to SubgraphWithoutEdges + TwoColor (component roots in node
// order get color 0); ok is false when the remaining graph is not
// bipartite, with colors holding the partial coloring at failure.
func (g *Graph) TwoColorWithoutEdges(skip []bool) (colors []int8, ok bool) {
	colors = make([]int8, g.n)
	for i := range colors {
		colors[i] = -1
	}
	return g.TwoColorWithoutEdgesFrom(skip, colors)
}

// TwoColorWithoutEdgesFrom is TwoColorWithoutEdges continuing a partial
// coloring: colors[v] must be -1 (uncolored) or an already-decided 0/1, and
// is extended in place. Pre-colored components are trusted, not re-checked —
// the caller guarantees their internal consistency. The incremental
// assignment path seeds clean conflict clusters from the previous
// generation's coloring and lets this single traversal implementation color
// the rest, so the bit-identical-coloring contract between the from-scratch
// and incremental paths cannot drift.
func (g *Graph) TwoColorWithoutEdgesFrom(skip []bool, colors []int8) ([]int8, bool) {
	g.build()
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if colors[s] >= 0 {
			continue
		}
		colors[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range g.adj[u] {
				if a.Edge < len(skip) && skip[a.Edge] {
					continue
				}
				if a.To == u { // self-loop: never 2-colorable
					return colors, false
				}
				if colors[a.To] < 0 {
					colors[a.To] = 1 - colors[u]
					queue = append(queue, a.To)
				} else if colors[a.To] == colors[u] {
					return colors, false
				}
			}
		}
	}
	return colors, true
}

// TotalWeight sums the weights of the given edge indices.
func (g *Graph) TotalWeight(edgeIdx []int) int64 {
	var s int64
	for _, i := range edgeIdx {
		s += g.edges[i].Weight
	}
	return s
}

// SortedEdgeIndicesByWeightDesc returns edge indices ordered by decreasing
// weight (ties by index for determinism).
func (g *Graph) SortedEdgeIndicesByWeightDesc() []int {
	idx := make([]int, len(g.edges))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := g.edges[idx[a]], g.edges[idx[b]]
		if ea.Weight != eb.Weight {
			return ea.Weight > eb.Weight
		}
		return idx[a] < idx[b]
	})
	return idx
}
