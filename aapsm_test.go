package aapsm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPublicQuickstartFlow(t *testing.T) {
	rules := Default90nmRules()
	l := NewLayout("demo")
	l.Add(R(0, 0, 100, 1000))
	l.Add(R(350, 0, 450, 1000))
	ok, err := Assignable(l, rules)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("dense pair must conflict")
	}
	res, err := Detect(l, rules, DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignable() || len(res.Conflicts()) == 0 {
		t.Fatal("expected conflicts")
	}
	a, err := AssignPhases(res)
	if err != nil {
		t.Fatal(err)
	}
	if v := VerifyAssignment(a, res); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	cor, err := Correct(l, rules, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(cor.Plan.Unfixable) != 0 {
		t.Fatalf("unfixable: %v", cor.Plan.Unfixable)
	}
	ok, err = Assignable(cor.Layout, rules)
	if err != nil || !ok {
		t.Fatalf("corrected layout assignable=%v err=%v", ok, err)
	}
	if vs := CheckDRC(cor.Layout, rules); len(vs) != 0 {
		t.Fatalf("DRC: %v", vs)
	}
	if cor.Stats.AreaIncrease <= 0 {
		t.Error("area must grow")
	}
}

func TestDetectOptionsVariantsAgree(t *testing.T) {
	rules := Default90nmRules()
	l := GenerateBenchmark("v", DefaultBenchmarkParams(3, 2, 90))
	var weights []int64
	for _, opt := range []DetectOptions{
		{Method: GeneralizedGadgets},
		{Method: OptimizedGadgets},
		{Method: LawlerReduction},
	} {
		res, err := Detect(l, rules, opt)
		if err != nil {
			t.Fatal(err)
		}
		var w int64
		for _, c := range res.Conflicts() {
			w += res.Graph.Drawing.G.Edge(c.Edge).Weight
		}
		weights = append(weights, w)
	}
	if weights[0] != weights[1] || weights[0] != weights[2] {
		t.Fatalf("weights differ across reductions: %v", weights)
	}
}

func TestImprovedRecheckNeverWorse(t *testing.T) {
	rules := Default90nmRules()
	for seed := int64(0); seed < 6; seed++ {
		l := GenerateBenchmark("r", DefaultBenchmarkParams(seed, 2, 80))
		base, err := Detect(l, rules, DetectOptions{})
		if err != nil {
			t.Fatal(err)
		}
		imp, err := Detect(l, rules, DetectOptions{ImprovedRecheck: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(imp.Conflicts()) > len(base.Conflicts()) {
			t.Fatalf("seed %d: improved recheck selected more conflicts (%d > %d)",
				seed, len(imp.Conflicts()), len(base.Conflicts()))
		}
	}
}

func TestGreedyBaselineNeverBetterOnWeight(t *testing.T) {
	rules := Default90nmRules()
	for seed := int64(0); seed < 5; seed++ {
		l := GenerateBenchmark("g", DefaultBenchmarkParams(seed+50, 2, 70))
		opt, err := Detect(l, rules, DetectOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gb, err := DetectGreedy(l, rules, PCG)
		if err != nil {
			t.Fatal(err)
		}
		w := func(r *Result) int64 {
			var s int64
			for _, c := range r.Conflicts() {
				s += r.Graph.Drawing.G.Edge(c.Edge).Weight
			}
			return s
		}
		// On crossing-free graphs the flow is weight-optimal, so greedy can
		// never beat it; with crossings the flow's optimality is only
		// approximate, but greedy beating it by weight would flag a bug in
		// the T-join pipeline (greedy has no crossing handicap).
		if opt.Detection.Stats.CrossingPairs == 0 && w(gb) < w(opt) {
			t.Fatalf("seed %d: greedy weight %d beat optimal %d", seed, w(gb), w(opt))
		}
	}
}

func TestFigureFixturesPublic(t *testing.T) {
	rules := Default90nmRules()
	if ok, _ := Assignable(Figure1Layout(), rules); ok {
		t.Error("figure 1 assignable")
	}
	if ok, _ := Assignable(Figure5Layout(), rules); ok {
		t.Error("figure 5 assignable")
	}
	res, err := Detect(Figure5Layout(), rules, DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cor, err := Correct(Figure5Layout(), rules, res)
	if err != nil {
		t.Fatal(err)
	}
	if cor.Plan.MaxPerLine() < 2 {
		t.Error("figure 5 needs shared cut lines")
	}
}

func TestGDSPublicRoundTrip(t *testing.T) {
	l := GenerateBenchmark("rt", DefaultBenchmarkParams(9, 2, 40))
	var buf bytes.Buffer
	if err := WriteGDS(&buf, l); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGDS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Features) != len(l.Features) {
		t.Fatal("gds round trip feature count")
	}
	var tb bytes.Buffer
	if err := WriteLayoutText(&tb, l); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadLayoutText(&tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(back2.Features) != len(l.Features) {
		t.Fatal("text round trip feature count")
	}
}

// TestCorrectionIdempotent re-detects after correction: a second pass must
// find nothing new to fix.
func TestCorrectionIdempotent(t *testing.T) {
	rules := Default90nmRules()
	l := GenerateBenchmark("idem", DefaultBenchmarkParams(13, 3, 100))
	res, err := Detect(l, rules, DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cor, err := Correct(l, rules, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(cor.Plan.Unfixable) != 0 {
		t.Skipf("layout has %d unfixable conflicts", len(cor.Plan.Unfixable))
	}
	res2, err := Detect(cor.Layout, rules, DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Conflicts()) != 0 {
		t.Fatalf("second pass found %d conflicts", len(res2.Conflicts()))
	}
	cor2, err := Correct(cor.Layout, rules, res2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cor2.Plan.Cuts) != 0 || cor2.Layout.Area() != cor.Layout.Area() {
		t.Error("second correction must be a no-op")
	}
}

// TestCorrectionMonotonicProperty: correction never shrinks any pairwise
// feature separation.
func TestCorrectionMonotonicProperty(t *testing.T) {
	rules := Default90nmRules()
	rng := rand.New(rand.NewSource(31))
	f := func() bool {
		l := GenerateBenchmark("mono", DefaultBenchmarkParams(rng.Int63n(1000), 1, 60))
		res, err := Detect(l, rules, DetectOptions{})
		if err != nil {
			return false
		}
		cor, err := Correct(l, rules, res)
		if err != nil {
			return false
		}
		for i := 0; i < len(l.Features); i++ {
			a0, a1 := l.Features[i].Rect, cor.Layout.Features[i].Rect
			if a1.Width() < a0.Width() || a1.Height() < a0.Height() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
