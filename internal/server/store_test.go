package server

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	aapsm "repro"
)

// fakeClock is a manually-advanced clock for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 7, 26, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testHash(i int) string {
	return fmt.Sprintf("%016x%048d", i, 0)
}

func mkSession() (*aapsm.Session, error) {
	l := aapsm.NewLayout("t")
	l.Add(aapsm.R(0, 0, 100, 1000))
	return aapsm.NewEngine().NewSession(l), nil
}

// mustSession is mkSession without the error, for adopt call sites.
func mustSession() *aapsm.Session {
	s, _ := mkSession()
	return s
}

func TestStoreSingleFlight(t *testing.T) {
	st := newSessionStore(16, time.Hour, nil, nil)
	var built atomic.Int32
	var wg sync.WaitGroup
	ids := make([]string, 32)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ent, _, err := st.getOrCreate(context.Background(), testHash(1), func() (*aapsm.Session, error) {
				built.Add(1)
				time.Sleep(2 * time.Millisecond) // widen the race window
				return mkSession()
			})
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = ent.ID
		}(i)
	}
	wg.Wait()
	if n := built.Load(); n != 1 {
		t.Errorf("construction ran %d times, want 1", n)
	}
	for _, id := range ids {
		if id != ids[0] {
			t.Fatalf("callers got different sessions: %q vs %q", id, ids[0])
		}
	}
}

func TestStoreSingleFlightErrorNotCached(t *testing.T) {
	st := newSessionStore(16, time.Hour, nil, nil)
	boom := errors.New("boom")
	if _, _, err := st.getOrCreate(context.Background(), testHash(1), func() (*aapsm.Session, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, _, err := st.getOrCreate(context.Background(), testHash(1), mkSession); err != nil {
		t.Fatalf("create after failed create: %v", err)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	evicted := map[evictReason]int{}
	st := newSessionStore(3, time.Hour, nil, func(_ *sessionEntry, r evictReason) { evicted[r]++ })
	var ids []string
	for i := 0; i < 5; i++ {
		ent, _, err := st.getOrCreate(context.Background(), testHash(i), mkSession)
		if err != nil {
			t.Fatal(err)
		}
		st.release(ent)
		ids = append(ids, ent.ID)
	}
	if st.len() != 3 {
		t.Fatalf("len = %d, want capacity 3", st.len())
	}
	if evicted[evictLRU] != 2 {
		t.Fatalf("lru evictions = %d, want 2", evicted[evictLRU])
	}
	// The two oldest are gone, the three newest live.
	for i, id := range ids {
		e, ok := st.get(id)
		if ok {
			st.release(e)
		}
		if want := i >= 2; ok != want {
			t.Errorf("session %d live = %v, want %v", i, ok, want)
		}
	}
	// Touching the LRU tail protects it from the next eviction.
	if e, ok := st.get(ids[2]); ok {
		st.release(e)
	}
	if e, _, err := st.getOrCreate(context.Background(), testHash(5), mkSession); err != nil {
		t.Fatal(err)
	} else {
		st.release(e)
	}
	if _, ok := st.get(ids[2]); !ok {
		t.Error("recently-touched session evicted before older one")
	}
	if _, ok := st.get(ids[3]); ok {
		t.Error("least-recently-used session survived eviction")
	}
}

func TestStoreTTL(t *testing.T) {
	clock := newFakeClock()
	evicted := map[evictReason]int{}
	st := newSessionStore(16, 10*time.Minute, clock.Now, func(_ *sessionEntry, r evictReason) { evicted[r]++ })
	ent, _, err := st.getOrCreate(context.Background(), testHash(1), mkSession)
	if err != nil {
		t.Fatal(err)
	}
	st.release(ent)
	clock.Advance(9 * time.Minute)
	if e, ok := st.get(ent.ID); !ok {
		t.Fatal("session expired before its TTL")
	} else {
		st.release(e)
	}
	// The access refreshed the deadline.
	clock.Advance(9 * time.Minute)
	if e, ok := st.get(ent.ID); !ok {
		t.Fatal("access did not refresh the TTL")
	} else {
		st.release(e)
	}
	clock.Advance(11 * time.Minute)
	if _, ok := st.get(ent.ID); ok {
		t.Fatal("session alive past its TTL")
	}
	if evicted[evictTTL] != 1 {
		t.Fatalf("ttl evictions = %d, want 1", evicted[evictTTL])
	}
	// An expired pristine session must not satisfy create-by-hash.
	ent2, reused, err := st.getOrCreate(context.Background(), testHash(1), mkSession)
	if err != nil {
		t.Fatal(err)
	}
	if reused || ent2.ID == ent.ID {
		t.Fatal("expired session reattached on create")
	}
	// sweep removes expired entries without an access.
	clock.Advance(11 * time.Minute)
	st.sweep()
	if st.len() != 0 {
		t.Fatalf("len = %d after sweep, want 0", st.len())
	}
}

func TestStoreEditedSessionNotReused(t *testing.T) {
	st := newSessionStore(16, time.Hour, nil, nil)
	ent, _, err := st.getOrCreate(context.Background(), testHash(1), mkSession)
	if err != nil {
		t.Fatal(err)
	}
	if e2, reused, _ := st.getOrCreate(context.Background(), testHash(1), mkSession); !reused || e2.ID != ent.ID {
		t.Fatal("pristine session must be reattached by hash")
	}
	st.markEdited(ent)
	e3, reused, err := st.getOrCreate(context.Background(), testHash(1), mkSession)
	if err != nil {
		t.Fatal(err)
	}
	if reused || e3.ID == ent.ID {
		t.Fatal("edited session must not satisfy create-by-hash")
	}
	// The edited session stays addressable by ID.
	if _, ok := st.get(ent.ID); !ok {
		t.Fatal("edited session lost")
	}
}

func TestStoreDelete(t *testing.T) {
	st := newSessionStore(16, time.Hour, nil, nil)
	ent, _, err := st.getOrCreate(context.Background(), testHash(1), mkSession)
	if err != nil {
		t.Fatal(err)
	}
	if !st.delete(ent.ID) {
		t.Fatal("delete of live session reported false")
	}
	if st.delete(ent.ID) {
		t.Fatal("double delete reported true")
	}
	if _, ok := st.get(ent.ID); ok {
		t.Fatal("session alive after delete")
	}
}

// TestStoreDeferredEvictionWhileHeld: evicting an entry a request still holds
// removes it from the indexes immediately but defers the eviction callback to
// the last release, so snapshot-on-evict can never race the in-flight work.
func TestStoreDeferredEvictionWhileHeld(t *testing.T) {
	var fired []string
	st := newSessionStore(1, time.Hour, nil, func(e *sessionEntry, r evictReason) {
		fired = append(fired, e.ID+":"+string(r))
	})
	a, _, err := st.getOrCreate(context.Background(), testHash(1), mkSession)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 1: creating b evicts a while this "request" still holds it.
	b, _, err := st.getOrCreate(context.Background(), testHash(2), mkSession)
	if err != nil {
		t.Fatal(err)
	}
	st.release(b)
	if _, ok := st.get(a.ID); ok {
		t.Fatal("evicted entry still resolvable by ID")
	}
	if len(fired) != 0 {
		t.Fatalf("eviction callback fired while the entry was held: %v", fired)
	}
	// The held entry stays fully usable; marking it edited must stick so the
	// deferred snapshot is not stored as pristine.
	st.markEdited(a)
	if !st.isEdited(a) {
		t.Fatal("markEdited on an evicted-but-held entry did not stick")
	}
	st.release(a)
	if want := []string{a.ID + ":lru"}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	// Idempotent: explicit delete of the already-gone entry must not re-fire.
	st.delete(a.ID)
	if len(fired) != 1 {
		t.Fatalf("callback fired twice: %v", fired)
	}
}

// TestStoreAdopt: adoption revives a session under its original ID, advances
// the ID sequence past it, and respects the edited flag for create-by-hash.
func TestStoreAdopt(t *testing.T) {
	st := newSessionStore(16, time.Hour, nil, nil)
	hash := testHash(1)
	id := hash[:12] + "-41"
	ent, adopted := st.adopt(id, hash, false, mustSession())
	if !adopted || ent.ID != id {
		t.Fatalf("adopt = %v, %v", ent.ID, adopted)
	}
	// Adopting the same ID again reattaches instead of replacing.
	ent2, adopted := st.adopt(id, hash, false, mustSession())
	if adopted || ent2 != ent {
		t.Fatal("second adopt of a live ID must reattach")
	}
	st.release(ent2)
	// A pristine adoptee satisfies create-by-hash.
	e3, reused, err := st.getOrCreate(context.Background(), hash, mkSession)
	if err != nil || !reused || e3 != ent {
		t.Fatalf("create-by-hash after adopt: reused=%v err=%v", reused, err)
	}
	st.release(e3)
	// New IDs continue past the adopted sequence number.
	e4, _, err := st.getOrCreate(context.Background(), testHash(2), mkSession)
	if err != nil {
		t.Fatal(err)
	}
	if want := testHash(2)[:12] + "-42"; e4.ID != want {
		t.Fatalf("post-adopt ID = %q, want %q", e4.ID, want)
	}
	st.release(e4)
	st.release(ent)

	// An edited adoptee stays out of the hash index.
	edited, _ := st.adopt(testHash(3)[:12]+"-50", testHash(3), true, mustSession())
	e5, reused, err := st.getOrCreate(context.Background(), testHash(3), mkSession)
	if err != nil {
		t.Fatal(err)
	}
	if reused || e5 == edited {
		t.Fatal("edited adoptee satisfied create-by-hash")
	}
	st.release(e5)
	st.release(edited)
}
