package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("timed out waiting for " + msg)
}

// fastRetries are retry backoff bounds short enough for tests to watch a
// full fail-retry-recover cycle.
func fastRetries(cfg Config) Config {
	cfg.SnapshotRetryMin = 5 * time.Millisecond
	cfg.SnapshotRetryMax = 20 * time.Millisecond
	return cfg
}

// TestEvictionWriteFailurePinsSession: a session whose eviction-time
// snapshot write fails must stay in memory (pinned, over capacity) and keep
// serving, the store must report degraded on /readyz while /healthz stays
// green, and a later successful write must unpin it.
func TestEvictionWriteFailurePinsSession(t *testing.T) {
	fs := persist.NewFaultStore(persist.NewMemStore(), persist.FaultConfig{})
	srv, tc := newTestServer(t, Config{
		Engine:             persistEngine(),
		StoreCapacity:      1,
		Snapshots:          fs,
		FlushInterval:      -1,
		SnapshotRetryQueue: -1, // no background recovery: observe the degraded state deterministically
	})

	var a createResponse
	if err := json.Unmarshal(tc.must("POST", "/v1/sessions", layoutText(t, loadLayout(60)), 200), &a); err != nil {
		t.Fatal(err)
	}
	// Capacity 1: the next create evicts a, whose snapshot write is forced
	// to fail.
	fs.FailNextPuts(1, nil)
	tc.must("POST", "/v1/sessions", layoutText(t, loadLayout(61)), 200)

	if n := srv.store.pinnedCount(); n != 1 {
		t.Fatalf("pinned sessions = %d, want 1", n)
	}
	if n := srv.Sessions(); n != 2 {
		t.Fatalf("live sessions = %d, want 2 (pinned entry runs over capacity)", n)
	}
	// The pinned session still serves.
	tc.must("GET", "/v1/sessions/"+a.ID, nil, 200)

	// Liveness green, readiness degraded.
	tc.must("GET", "/healthz", nil, 200)
	var ready readyResponse
	if err := json.Unmarshal(tc.must("GET", "/readyz", nil, 503), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "degraded" || ready.Pinned != 1 || !strings.Contains(ready.StoreError, "injected") {
		t.Fatalf("readyz = %+v", ready)
	}
	metrics := string(tc.must("GET", "/metrics", nil, 200))
	for _, want := range []string{
		"aapsmd_snapshot_write_errors_total 1",
		"aapsmd_sessions_pinned 1",
		"aapsmd_ready 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// An explicit flush succeeds (the forced-failure window is spent),
	// unpins the session, and restores readiness.
	tc.must("POST", "/v1/sessions/"+a.ID+"/flush", nil, 200)
	if n := srv.store.pinnedCount(); n != 0 {
		t.Fatalf("pinned sessions after recovery = %d, want 0", n)
	}
	tc.must("GET", "/readyz", nil, 200)
}

// TestEvictionWriteFailureRetriesAsync: with the retry queue enabled, a
// failed eviction write recovers on its own — capped-backoff retries run
// until the store accepts the snapshot, then the pin lifts.
func TestEvictionWriteFailureRetriesAsync(t *testing.T) {
	inner := persist.NewMemStore()
	fs := persist.NewFaultStore(inner, persist.FaultConfig{})
	srv, tc := newTestServer(t, fastRetries(Config{
		Engine:        persistEngine(),
		StoreCapacity: 1,
		Snapshots:     fs,
		FlushInterval: -1,
	}))

	var a createResponse
	if err := json.Unmarshal(tc.must("POST", "/v1/sessions", layoutText(t, loadLayout(62)), 200), &a); err != nil {
		t.Fatal(err)
	}
	// Eviction write fails, plus the first two retries.
	fs.FailNextPuts(3, nil)
	tc.must("POST", "/v1/sessions", layoutText(t, loadLayout(63)), 200)

	waitFor(t, 5*time.Second, func() bool {
		return srv.store.pinnedCount() == 0 && srv.pendingRetries() == 0
	}, "async retry to land the snapshot and unpin")
	if n := srv.metrics.snapshotRetries.Load(); n < 1 {
		t.Fatalf("snapshot retries = %d, want >= 1", n)
	}
	refs, err := inner.List()
	if err != nil || len(refs) == 0 {
		t.Fatalf("no snapshot reached the store after retries: %v, %v", refs, err)
	}
	found := false
	for _, r := range refs {
		found = found || r.ID == a.ID
	}
	if !found {
		t.Fatalf("snapshot of evicted session %s missing from %v", a.ID, refs)
	}
	if !srv.Ready() {
		t.Fatal("server not ready after the store recovered")
	}
}

// TestFlushAllSchedulesRetries: FlushAll against a failing store queues
// every failed session for retry, and the queue drains once the store
// recovers.
func TestFlushAllSchedulesRetries(t *testing.T) {
	inner := persist.NewMemStore()
	fs := persist.NewFaultStore(inner, persist.FaultConfig{})
	srv, tc := newTestServer(t, fastRetries(Config{
		Engine:        persistEngine(),
		Snapshots:     fs,
		FlushInterval: -1,
	}))
	const n = 3
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		var c createResponse
		if err := json.Unmarshal(tc.must("POST", "/v1/sessions", layoutText(t, loadLayout(64+i)), 200), &c); err != nil {
			t.Fatal(err)
		}
		ids[i] = c.ID
	}
	fs.FailNextPuts(n, nil) // the whole sweep fails once
	srv.FlushAll()
	if got := srv.metrics.snapshotWriteErrors.Load(); got != n {
		t.Fatalf("snapshot write errors after failed sweep = %d, want %d", got, n)
	}
	if srv.pendingRetries() == 0 {
		t.Fatal("no retries queued after a failed flush sweep")
	}
	waitFor(t, 5*time.Second, func() bool {
		refs, err := inner.List()
		return err == nil && len(refs) == n && srv.pendingRetries() == 0
	}, "flush retries to persist every session")
}

// TestFlushEndpointReportsWriteFailure: the flush endpoint must surface a
// failed snapshot write as a typed 500 with the store's error detail, and
// queue a retry.
func TestFlushEndpointReportsWriteFailure(t *testing.T) {
	inner := persist.NewMemStore()
	fs := persist.NewFaultStore(inner, persist.FaultConfig{})
	srv, tc := newTestServer(t, fastRetries(Config{
		Engine:        persistEngine(),
		Snapshots:     fs,
		FlushInterval: -1,
	}))
	var c createResponse
	if err := json.Unmarshal(tc.must("POST", "/v1/sessions", layoutText(t, loadLayout(67)), 200), &c); err != nil {
		t.Fatal(err)
	}
	fs.FailNextPuts(1, nil)
	var eb errorBody
	if err := json.Unmarshal(tc.must("POST", "/v1/sessions/"+c.ID+"/flush", nil, 500), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != "snapshot_failed" || !strings.Contains(eb.Error.Message, "injected") {
		t.Fatalf("flush failure error = %+v", eb.Error)
	}
	// The queued retry lands the checkpoint without further client action.
	waitFor(t, 5*time.Second, func() bool {
		refs, err := inner.List()
		return err == nil && len(refs) == 1 && srv.pendingRetries() == 0
	}, "flush retry to land")
	tc.must("POST", "/v1/sessions/"+c.ID+"/flush", nil, 200)
}

// TestGlobalAdmissionControl: past MaxInflight, requests shed with a typed
// 429 + Retry-After; probes stay exempt; a freed slot admits again; a
// request that had to queue reports its wait.
func TestGlobalAdmissionControl(t *testing.T) {
	srv, tc := newTestServer(t, Config{
		Engine:      persistEngine(),
		MaxInflight: 1,
		QueueWait:   -1, // shed immediately: no timing in the saturation assertions
	})
	body := layoutText(t, loadLayout(70))

	// Saturate the single slot from outside a request.
	srv.sem <- struct{}{}
	tc.must("GET", "/healthz", nil, 200) // probes exempt
	tc.must("GET", "/readyz", nil, 200)
	resp, err := http.Get(tc.base + "/v1/sessions/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request = %d, want 429", resp.StatusCode)
	}
	// With no observed queue waits yet the advice floors at 1 second.
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want the 1s floor", resp.Header.Get("Retry-After"))
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != "overloaded" {
		t.Fatalf("shed error = %+v", eb.Error)
	}
	if srv.metrics.shedGlobal.Load() != 1 {
		t.Fatalf("shed counter = %d, want 1", srv.metrics.shedGlobal.Load())
	}
	// Retry-After tracks observed saturation: after clients have been seen
	// queueing ~4.2s, shed responses must advise a matching backoff (rounded
	// up), not a hardcoded constant.
	srv.metrics.noteQueueWait(4200 * time.Millisecond)
	srv.metrics.noteQueueWait(4200 * time.Millisecond)
	srv.metrics.noteQueueWait(4200 * time.Millisecond)
	resp2, err := http.Get(tc.base + "/v1/sessions/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second saturated request = %d, want 429", resp2.StatusCode)
	}
	if ra := resp2.Header.Get("Retry-After"); ra == "1" || ra == "" {
		t.Fatalf("Retry-After = %q after 4.2s observed queue waits, want it derived from the waits", ra)
	}
	<-srv.sem
	tc.must("POST", "/v1/sessions", body, 200)
	metrics := string(tc.must("GET", "/metrics", nil, 200))
	if !strings.Contains(metrics, `aapsmd_requests_shed_total{scope="global"} 2`) {
		t.Error("metrics missing the global shed count")
	}
}

// TestClientGoneWhileQueued: a request whose client disconnects while
// queueing for an admission slot is answered without Retry-After and counted
// under scope="client_gone" — NOT scope="global" — so disconnect waves do
// not inflate the overload signal.
func TestClientGoneWhileQueued(t *testing.T) {
	srv := New(Config{
		Engine:      persistEngine(),
		MaxInflight: 1,
		QueueWait:   5 * time.Second,
	})
	t.Cleanup(srv.Close)
	srv.sem <- struct{}{} // saturate: the request must take the queue path
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone when the queue wait starts
	req := httptest.NewRequest("GET", "/v1/sessions/nope", nil).WithContext(ctx)
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("cancelled queued request = %d, want 429", rr.Code)
	}
	if ra := rr.Header().Get("Retry-After"); ra != "" {
		t.Fatalf("Retry-After = %q for a gone client, want no header (nobody is listening)", ra)
	}
	var eb errorBody
	if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != "client_gone" {
		t.Fatalf("cancelled shed error = %+v, want code client_gone", eb.Error)
	}
	if n := srv.metrics.shedGlobal.Load(); n != 0 {
		t.Fatalf("global shed counter = %d after a client-gone shed, want 0", n)
	}
	if n := srv.metrics.shedClientGone.Load(); n != 1 {
		t.Fatalf("client_gone shed counter = %d, want 1", n)
	}
	<-srv.sem
	rr2 := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr2, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rr2.Body.String(), `aapsmd_requests_shed_total{scope="client_gone"} 1`) {
		t.Error("metrics missing the client_gone shed count")
	}
}

// TestAdmissionQueueWait: a saturated server admits a queued request once a
// slot frees within QueueWait, reporting the wait in a header and the
// queue-wait summary.
func TestAdmissionQueueWait(t *testing.T) {
	srv, tc := newTestServer(t, Config{
		Engine:      persistEngine(),
		MaxInflight: 1,
		QueueWait:   2 * time.Second,
	})
	srv.sem <- struct{}{}
	go func() {
		time.Sleep(30 * time.Millisecond)
		<-srv.sem
	}()
	resp, err := http.Get(tc.base + "/v1/sessions/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("queued request = %d, want 404 after admission", resp.StatusCode)
	}
	if resp.Header.Get("X-Aapsmd-Queue-Wait") == "" {
		t.Fatal("admitted-after-wait response missing X-Aapsmd-Queue-Wait")
	}
	if srv.metrics.queueWaitCount.Load() != 1 {
		t.Fatalf("queue wait count = %d, want 1", srv.metrics.queueWaitCount.Load())
	}
}

// TestPerSessionAdmissionControl: one session at its concurrent-request cap
// sheds with 429 session_busy while other sessions keep serving.
func TestPerSessionAdmissionControl(t *testing.T) {
	srv, tc := newTestServer(t, Config{
		Engine:             persistEngine(),
		MaxSessionInflight: 1,
		QueueWait:          -1, // shed immediately: no timing in the saturation assertions
	})
	var a, b createResponse
	if err := json.Unmarshal(tc.must("POST", "/v1/sessions", layoutText(t, loadLayout(71)), 200), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(tc.must("POST", "/v1/sessions", layoutText(t, loadLayout(72)), 200), &b); err != nil {
		t.Fatal(err)
	}
	// Occupy a's one slot the way an in-flight handler would.
	ent, ok := srv.store.get(a.ID)
	if !ok {
		t.Fatal("session a not live")
	}
	ent.slots <- struct{}{}
	var eb errorBody
	if err := json.Unmarshal(tc.must("GET", "/v1/sessions/"+a.ID, nil, 429), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != "session_busy" {
		t.Fatalf("busy error = %+v", eb.Error)
	}
	tc.must("GET", "/v1/sessions/"+b.ID, nil, 200) // other sessions unaffected
	<-ent.slots
	srv.store.release(ent)
	tc.must("GET", "/v1/sessions/"+a.ID, nil, 200)
	if srv.metrics.shedSession.Load() != 1 {
		t.Fatalf("session shed counter = %d, want 1", srv.metrics.shedSession.Load())
	}
}

// TestSessionAdmissionQueueWait: a session at its concurrent-request cap no
// longer sheds immediately — the request queues with the same bounded wait
// as the global semaphore and is admitted once the slot frees.
func TestSessionAdmissionQueueWait(t *testing.T) {
	srv, tc := newTestServer(t, Config{
		Engine:             persistEngine(),
		MaxSessionInflight: 1,
		QueueWait:          2 * time.Second,
	})
	var a createResponse
	if err := json.Unmarshal(tc.must("POST", "/v1/sessions", layoutText(t, loadLayout(75)), 200), &a); err != nil {
		t.Fatal(err)
	}
	ent, ok := srv.store.get(a.ID)
	if !ok {
		t.Fatal("session a not live")
	}
	defer srv.store.release(ent)
	ent.slots <- struct{}{}
	go func() {
		time.Sleep(30 * time.Millisecond)
		<-ent.slots
	}()
	resp, err := http.Get(tc.base + "/v1/sessions/" + a.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("queued session request = %d, want 200 after the slot frees", resp.StatusCode)
	}
	if resp.Header.Get("X-Aapsmd-Queue-Wait") == "" {
		t.Fatal("session request admitted after queueing is missing X-Aapsmd-Queue-Wait")
	}
	if srv.metrics.shedSession.Load() != 0 {
		t.Fatalf("session shed counter = %d, want 0 (request queued, not shed)", srv.metrics.shedSession.Load())
	}
}

// TestHandlerPanicRecovery: a panicking handler answers a typed 500 and
// bumps the panic counter instead of killing the process.
func TestHandlerPanicRecovery(t *testing.T) {
	srv := New(Config{Engine: persistEngine()})
	t.Cleanup(srv.Close)
	h := srv.route("boom", false, func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest("GET", "/boom", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rr.Code)
	}
	var eb errorBody
	if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != "panic" || !strings.Contains(eb.Error.Message, "kaboom") {
		t.Fatalf("panic error = %+v", eb.Error)
	}
	if srv.metrics.panicsHandler.Load() != 1 {
		t.Fatalf("handler panic counter = %d, want 1", srv.metrics.panicsHandler.Load())
	}
}

// TestShardPanicQuarantinesSession: an injected shard-solver panic answers a
// typed 500 for that session only — the daemon, its probes, and every other
// session keep working, and the poisoned session repeats the same 500
// without re-running the solver.
func TestShardPanicQuarantinesSession(t *testing.T) {
	hook := func() { panic("injected shard panic") }
	core.FaultHook.Store(&hook)
	t.Cleanup(func() { core.FaultHook.Store(nil) })

	srv, tc := newTestServer(t, Config{Engine: persistEngine()})
	var a createResponse
	if err := json.Unmarshal(tc.must("POST", "/v1/sessions", layoutText(t, loadLayout(73)), 200), &a); err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if err := json.Unmarshal(tc.must("GET", "/v1/sessions/"+a.ID+"/detect", nil, 500), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != "panic" || eb.Error.Stage != "detect" {
		t.Fatalf("shard panic error = %+v", eb.Error)
	}
	// Quarantined, not crashed: probes green, the session answers the same
	// memoized 500, and a fresh session (fault cleared) works.
	tc.must("GET", "/healthz", nil, 200)
	tc.must("GET", "/v1/sessions/"+a.ID+"/detect", nil, 500)
	core.FaultHook.Store(nil)
	var b createResponse
	if err := json.Unmarshal(tc.must("POST", "/v1/sessions", layoutText(t, loadLayout(74)), 200), &b); err != nil {
		t.Fatal(err)
	}
	tc.must("GET", "/v1/sessions/"+b.ID+"/detect", nil, 200)
	if n := srv.metrics.panicsShard.Load(); n != 2 {
		t.Fatalf("shard panic counter = %d, want 2 (one per quarantined response)", n)
	}
	metrics := string(tc.must("GET", "/metrics", nil, 200))
	if !strings.Contains(metrics, `aapsmd_panics_total{scope="shard"} 2`) {
		t.Error("metrics missing the shard panic count")
	}
}

// TestReadyzDraining: /readyz flips with BeginDrain like /healthz does.
func TestReadyzDraining(t *testing.T) {
	srv, tc := newTestServer(t, Config{Engine: persistEngine()})
	tc.must("GET", "/readyz", nil, 200)
	srv.BeginDrain()
	var ready readyResponse
	if err := json.Unmarshal(tc.must("GET", "/readyz", nil, 503), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "draining" {
		t.Fatalf("readyz while draining = %+v", ready)
	}
}
