package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// MetricsNameAnalyzer checks the hand-rolled Prometheus text registry in
// internal/server. The exposition format is emitted through string literals
// ("# HELP ...", "# TYPE ...", "name{label=...} %d"), so the analyzer reads
// every string literal in the package as candidate exposition lines and
// enforces:
//
//   - metric names are snake_case and aapsmd_-prefixed;
//   - each metric has exactly one # TYPE declaration (registered once);
//   - names ending in _total are declared as counters, and counters end in
//     _total;
//   - every emitted sample line refers to a declared metric (summaries may
//     emit their _sum/_count series);
//   - a # HELP line has a matching # TYPE line.
var MetricsNameAnalyzer = &Analyzer{
	Name: "metricsname",
	Doc:  "validate Prometheus metric naming, typing, and single registration in internal/server",
	Run:  runMetricsName,
}

var (
	metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	promKinds    = map[string]bool{"counter": true, "gauge": true, "summary": true, "histogram": true, "untyped": true}
)

const metricPrefix = "aapsmd_"

type metricDecl struct {
	kind string
	pos  token.Pos
}

func runMetricsName(pass *Pass) {
	if !strings.HasSuffix(pass.PkgPath, "internal/server") {
		return
	}
	type lineAt struct {
		text string
		pos  token.Pos
	}
	var lines []lineAt
	for _, file := range pass.Files {
		if pass.testFiles[file] {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			for _, ln := range strings.Split(s, "\n") {
				ln = strings.TrimSpace(ln)
				if ln == "" {
					continue
				}
				if strings.HasPrefix(ln, "# ") || strings.HasPrefix(ln, metricPrefix) {
					lines = append(lines, lineAt{ln, lit.Pos()})
				}
			}
			return true
		})
	}

	decls := map[string]metricDecl{}
	helps := map[string]token.Pos{}
	// First pass: TYPE declarations.
	for _, ln := range lines {
		rest, ok := strings.CutPrefix(ln.text, "# TYPE ")
		if !ok {
			continue
		}
		f := strings.Fields(rest)
		if len(f) != 2 {
			pass.Reportf(ln.pos, "malformed TYPE line %q: want \"# TYPE <name> <kind>\"", ln.text)
			continue
		}
		name, kind := f[0], f[1]
		checkMetricName(pass, ln.pos, name)
		if !promKinds[kind] {
			pass.Reportf(ln.pos, "metric %s declared with unknown kind %q", name, kind)
		}
		if _, dup := decls[name]; dup {
			pass.Reportf(ln.pos, "metric %s registered twice: second # TYPE declaration", name)
			continue
		}
		decls[name] = metricDecl{kind: kind, pos: ln.pos}
		if strings.HasSuffix(name, "_total") && kind != "counter" {
			pass.Reportf(ln.pos, "metric %s ends in _total but is declared a %s: _total is reserved for counters", name, kind)
		}
		if kind == "counter" && !strings.HasSuffix(name, "_total") {
			pass.Reportf(ln.pos, "counter %s does not end in _total: counters use the _total suffix", name)
		}
	}
	// Second pass: HELP lines and sample lines.
	sampled := map[string]bool{}
	for _, ln := range lines {
		if rest, ok := strings.CutPrefix(ln.text, "# HELP "); ok {
			f := strings.Fields(rest)
			if len(f) == 0 {
				continue
			}
			helps[f[0]] = ln.pos
			if _, ok := decls[f[0]]; !ok {
				pass.Reportf(ln.pos, "metric %s has a # HELP line but no # TYPE declaration", f[0])
			}
			continue
		}
		if strings.HasPrefix(ln.text, "# ") {
			continue
		}
		name := sampleName(ln.text)
		if name == "" {
			continue
		}
		sampled[name] = true
		if _, ok := decls[name]; ok {
			continue
		}
		// Summary series: name_sum / name_count belong to a summary or
		// histogram declaration of the base name.
		if base, ok := summaryBase(name); ok {
			if d, declared := decls[base]; declared && (d.kind == "summary" || d.kind == "histogram") {
				continue
			}
		}
		pass.Reportf(ln.pos, "sample emitted for undeclared metric %s: add a # TYPE declaration", name)
	}
	// Declared but never emitted — a dead registration.
	var names []string
	for name := range decls {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if sampled[name] {
			continue
		}
		if sampled[name+"_sum"] || sampled[name+"_count"] {
			continue
		}
		pass.Reportf(decls[name].pos, "metric %s is declared but no sample line emits it", name)
	}
}

func checkMetricName(pass *Pass, pos token.Pos, name string) {
	if !strings.HasPrefix(name, metricPrefix) {
		pass.Reportf(pos, "metric %s lacks the %s prefix", name, metricPrefix)
		return
	}
	if !metricNameRE.MatchString(name) {
		pass.Reportf(pos, "metric %s is not snake_case ([a-z0-9_], leading letter)", name)
	}
}

// sampleName extracts the metric name from a sample line: everything before
// the first '{', space, or tab.
func sampleName(line string) string {
	end := len(line)
	for i, r := range line {
		if r == '{' || r == ' ' || r == '\t' {
			end = i
			break
		}
	}
	name := line[:end]
	if !strings.HasPrefix(name, metricPrefix) {
		return ""
	}
	return name
}

func summaryBase(name string) (string, bool) {
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			return base, true
		}
	}
	return "", false
}
