package geom

import (
	"math/rand"
	"testing"
)

// collectPairs snapshots ForEachPair output for comparison.
func collectPairs(g *Grid) [][2]int32 {
	var out [][2]int32
	g.ForEachPair(func(i, j int32) { out = append(out, [2]int32{i, j}) })
	return out
}

func pairsEqual(a, b [][2]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGridRemove: removing an entry with the rect it was inserted with must
// leave the grid equivalent to one that never saw the entry, across
// interleaved query/mutate rounds (the incremental maintenance path).
func TestGridRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type item struct {
		id int32
		r  Rect
	}
	live := map[int32]item{}
	g := NewGrid(100)
	next := int32(0)
	for round := 0; round < 50; round++ {
		// Mutate: a few inserts and removes.
		for k := 0; k < 3; k++ {
			x := rng.Int63n(2000) - 1000
			y := rng.Int63n(2000) - 1000
			it := item{next, R(x, y, x+rng.Int63n(300)+1, y+rng.Int63n(300)+1)}
			next++
			live[it.id] = it
			g.Insert(it.id, it.r)
		}
		if len(live) > 4 && rng.Intn(2) == 0 {
			for id, it := range live {
				g.Remove(id, it.r)
				delete(live, id)
				break
			}
		}
		// Reference grid built from scratch over the live set.
		ref := NewGrid(100)
		for _, it := range live {
			ref.Insert(it.id, it.r)
		}
		if g.Len() != ref.Len() {
			t.Fatalf("round %d: %d entries, want %d", round, g.Len(), ref.Len())
		}
		if !pairsEqual(collectPairs(g), collectPairs(ref)) {
			t.Fatalf("round %d: pair enumeration diverged from rebuild", round)
		}
		// Query equivalence on a random window.
		q := R(rng.Int63n(2000)-1000, rng.Int63n(2000)-1000, rng.Int63n(2000), rng.Int63n(2000))
		got := map[int32]bool{}
		g.Query(q, nil, func(id int32) { got[id] = true })
		want := map[int32]bool{}
		ref.Query(q, nil, func(id int32) { want[id] = true })
		if len(got) != len(want) {
			t.Fatalf("round %d: query returned %d ids, want %d", round, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("round %d: query missing id %d", round, id)
			}
		}
	}
}

// TestGridRemoveUnmatched: removing a pair that was never inserted must not
// disturb other entries, including later removes of real entries.
func TestGridRemoveUnmatched(t *testing.T) {
	g := NewGrid(50)
	g.Insert(1, R(0, 0, 10, 10))
	g.Insert(2, R(5, 5, 20, 20))
	g.Remove(3, R(0, 0, 10, 10))           // never inserted
	g.Remove(1, R(1000, 1000, 1010, 1010)) // wrong rect: no matching cells
	if g.Len() != 2 {
		t.Fatalf("unmatched removes changed the grid: %d entries", g.Len())
	}
	g.Remove(1, R(0, 0, 10, 10))
	found := false
	g.Query(R(0, 0, 30, 30), nil, func(id int32) {
		if id == 1 {
			t.Error("id 1 still present after remove")
		}
		if id == 2 {
			found = true
		}
	})
	if !found {
		t.Error("id 2 lost by sibling remove")
	}
}

// TestGridDuplicateEntries: duplicate inserts of the same (id, rect) require
// matching removes one by one.
func TestGridDuplicateEntries(t *testing.T) {
	g := NewGrid(50)
	r := R(0, 0, 10, 10)
	g.Insert(7, r)
	g.Insert(7, r)
	g.Remove(7, r)
	seen := false
	g.Query(r, nil, func(id int32) { seen = seen || id == 7 })
	if !seen {
		t.Fatal("second insert vanished after one remove")
	}
	g.Remove(7, r)
	seen = false
	g.Query(r, nil, func(id int32) { seen = seen || id == 7 })
	if seen {
		t.Fatal("id 7 present after matched removes")
	}
}

// TestGridBoundedPendingLog: a long-lived grid mutated in Insert/Remove
// cycles with no interleaved queries (an idle session's edit stream) must
// keep its pending logs bounded — compaction folds them into the base
// instead of letting cancelled pairs accumulate forever.
func TestGridBoundedPendingLog(t *testing.T) {
	g := NewGrid(100)
	const live = 500
	for i := 0; i < live; i++ {
		g.Insert(int32(i), R(int64(i)*40, 0, int64(i)*40+30, 30))
	}
	// Cell registrations, not ids: rects straddling a cell border occupy two
	// cells.
	baseline := g.Len()
	// 10k edit cycles: move one feature back and forth (Remove + Insert),
	// never querying.
	for c := 0; c < 10000; c++ {
		id := int32(c % live)
		r0 := R(int64(id)*40, 0, int64(id)*40+30, 30)
		r1 := r0.Translate(Pt(5, 5))
		g.Remove(id, r0)
		g.Insert(id, r1)
		g.Remove(id, r1)
		g.Insert(id, r0)
		if pending := len(g.adds) + len(g.dels); pending > 4*compactMinPending {
			t.Fatalf("cycle %d: pending log grew to %d entries (base %d)", c, pending, len(g.base))
		}
	}
	// The live set is unchanged, so after folding the base must hold exactly
	// the original registrations.
	if got := g.Len(); got != baseline {
		t.Fatalf("Len = %d after balanced edit cycles, want %d", got, baseline)
	}
	for i := 0; i < live; i++ {
		found := false
		g.Query(R(int64(i)*40, 0, int64(i)*40+30, 30), nil, func(id int32) { found = found || id == int32(i) })
		if !found {
			t.Fatalf("id %d lost", i)
		}
	}
}

// TestGridCompactionPreservesSemantics: interleaving enough mutations to
// cross the compaction threshold must not change Remove's cancel-one-Insert
// semantics.
func TestGridCompactionPreservesSemantics(t *testing.T) {
	g := NewGrid(50)
	r := R(0, 0, 10, 10)
	g.Insert(1, r)
	g.Insert(1, r) // duplicate registration
	g.Remove(1, r) // cancels one of the two
	// Push far past the threshold so at least one compaction runs with the
	// duplicate/cancel state pending.
	for i := 0; i < 3*compactMinPending; i++ {
		id := int32(100 + i%64)
		rr := R(int64(i%64)*20, 100, int64(i%64)*20+10, 110)
		g.Insert(id, rr)
		g.Remove(id, rr)
	}
	seen := false
	g.Query(r, nil, func(id int32) { seen = seen || id == 1 })
	if !seen {
		t.Fatal("surviving duplicate registration lost across compaction")
	}
	g.Remove(1, r)
	seen = false
	g.Query(r, nil, func(id int32) { seen = seen || id == 1 })
	if seen {
		t.Fatal("id 1 present after matched removes")
	}
	if g.Len() != 0 {
		t.Fatalf("Len = %d, want 0", g.Len())
	}
}
