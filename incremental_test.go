package aapsm

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"maps"
	"math/rand"
	"reflect"
	"slices"
	"testing"
)

// The differential harness: the incremental pipeline must be bit-identical
// to the from-scratch pipeline after every step of a seeded random edit
// script — not just detection (same crossing removals, bipartization set,
// T-join weight and final conflicts) but every downstream stage: phase
// assignment, constraint verification, correction plan and corrected layout,
// mask view, and DRC. Scripts mix adds (including exact-duplicate
// rectangles, which force the node-position collision nudging paths), moves
// (including no-op moves and resizes), deletes, and batched edits.

// assertSameDetection compares an incremental result against the oracle.
func assertSameDetection(t *testing.T, step string, got, want *Result) {
	t.Helper()
	gd, wd := got.Detection, want.Detection
	if !slices.Equal(gd.CrossingsRemoved, wd.CrossingsRemoved) {
		t.Fatalf("%s: CrossingsRemoved diverged:\n inc %v\n ref %v", step, gd.CrossingsRemoved, wd.CrossingsRemoved)
	}
	if !slices.Equal(gd.BipartizationEdges, wd.BipartizationEdges) {
		t.Fatalf("%s: BipartizationEdges diverged:\n inc %v\n ref %v", step, gd.BipartizationEdges, wd.BipartizationEdges)
	}
	gw := got.Graph.Drawing.G.TotalWeight(gd.BipartizationEdges)
	ww := want.Graph.Drawing.G.TotalWeight(wd.BipartizationEdges)
	if gw != ww {
		t.Fatalf("%s: T-join weight %d != %d", step, gw, ww)
	}
	if len(gd.FinalConflicts) != len(wd.FinalConflicts) {
		t.Fatalf("%s: %d conflicts, want %d", step, len(gd.FinalConflicts), len(wd.FinalConflicts))
	}
	for i := range gd.FinalConflicts {
		g, w := gd.FinalConflicts[i], wd.FinalConflicts[i]
		if g.Edge != w.Edge || g.Meta != w.Meta || g.Deficit != w.Deficit {
			t.Fatalf("%s: conflict %d diverged: %+v != %+v", step, i, g, w)
		}
	}
	if got.Assignable() != want.Assignable() {
		t.Fatalf("%s: assignable %v != %v", step, got.Assignable(), want.Assignable())
	}
	if gd.Stats.CrossingPairs != wd.Stats.CrossingPairs {
		t.Fatalf("%s: crossing pairs %d != %d", step, gd.Stats.CrossingPairs, wd.Stats.CrossingPairs)
	}
	if gd.Stats.Shards != wd.Stats.Shards {
		t.Fatalf("%s: shards %d != %d", step, gd.Stats.Shards, wd.Stats.Shards)
	}
	ga, gerr := AssignPhases(got)
	wa, werr := AssignPhases(want)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: assignment errors diverged: %v vs %v", step, gerr, werr)
	}
	if gerr == nil && !slices.Equal(ga.Phases, wa.Phases) {
		t.Fatalf("%s: phase assignments diverged", step)
	}
}

// layoutText serializes a layout for byte-exact comparison.
func layoutText(t *testing.T, l *Layout) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteLayoutText(&buf, l); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// assertSamePipeline drives every downstream stage — assignment (with
// verification), correction, mask, DRC — on the incremental session and on a
// fresh from-scratch oracle session of the same layout, and requires
// bit-identical results (or the same error class) from each.
func assertSamePipeline(t *testing.T, step string, ctx context.Context, s *Session, oracleEng *Engine) {
	t.Helper()
	os := oracleEng.NewSession(s.Layout().Clone())

	ga, gerr := s.Assignment(ctx)
	wa, werr := os.Assignment(ctx)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: Assignment errors diverged: %v vs %v", step, gerr, werr)
	}
	if gerr == nil {
		if !slices.Equal(ga.Phases, wa.Phases) {
			t.Fatalf("%s: session phase assignments diverged", step)
		}
		if !maps.Equal(ga.Waived, wa.Waived) || !maps.Equal(ga.WaivedFeatures, wa.WaivedFeatures) {
			t.Fatalf("%s: waived sets diverged", step)
		}
	}

	gc, gerr := s.Correction(ctx)
	wc, werr := os.Correction(ctx)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: Correction errors diverged: %v vs %v", step, gerr, werr)
	}
	if gerr == nil {
		if !reflect.DeepEqual(gc.Plan.Cuts, wc.Plan.Cuts) {
			t.Fatalf("%s: correction cuts diverged:\n inc %+v\n ref %+v", step, gc.Plan.Cuts, wc.Plan.Cuts)
		}
		if !slices.Equal(gc.Plan.Unfixable, wc.Plan.Unfixable) {
			t.Fatalf("%s: unfixable sets diverged: %v vs %v", step, gc.Plan.Unfixable, wc.Plan.Unfixable)
		}
		if gc.Plan.GridLines != wc.Plan.GridLines ||
			gc.Plan.AddedWidth != wc.Plan.AddedWidth || gc.Plan.AddedHeight != wc.Plan.AddedHeight {
			t.Fatalf("%s: plan summary diverged: %+v vs %+v", step, gc.Plan, wc.Plan)
		}
		if gc.Stats != wc.Stats {
			t.Fatalf("%s: correction stats diverged: %+v vs %+v", step, gc.Stats, wc.Stats)
		}
		if layoutText(t, gc.Layout) != layoutText(t, wc.Layout) {
			t.Fatalf("%s: corrected layouts diverged", step)
		}
	}

	gm, gerr := s.Mask(ctx)
	wm, werr := os.Mask(ctx)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: Mask errors diverged: %v vs %v", step, gerr, werr)
	}
	if gerr != nil {
		// The first reported problem depends on map order, so compare only
		// the error class.
		if errors.Is(gerr, ErrMaskInconsistent) != errors.Is(werr, ErrMaskInconsistent) {
			t.Fatalf("%s: mask error classes diverged: %v vs %v", step, gerr, werr)
		}
	} else if layoutText(t, gm) != layoutText(t, wm) {
		t.Fatalf("%s: mask views diverged", step)
	}

	if gv, wv := s.DRC(), os.DRC(); !slices.Equal(gv, wv) {
		t.Fatalf("%s: DRC diverged:\n inc %v\n ref %v", step, gv, wv)
	}
}

// applyRandomEdit performs one random mutation (or a small batch) on s.
func applyRandomEdit(t *testing.T, rng *rand.Rand, s *Session) {
	t.Helper()
	l := s.Layout()
	n := len(l.Features)
	bb := l.BBox()
	if bb.Empty() {
		bb = R(0, 0, 4000, 4000)
	}
	randRect := func() Rect {
		// Width mix: mostly critical (< 150), some non-critical.
		w := []int64{80, 100, 120, 140, 200, 400}[rng.Intn(6)]
		h := 300 + rng.Int63n(1200)
		if rng.Intn(4) == 0 {
			w, h = h, w
		}
		x := bb.X0 + rng.Int63n(bb.Width()+2001) - 1000
		y := bb.Y0 + rng.Int63n(bb.Height()+2001) - 1000
		return R(x, y, x+w, y+h)
	}
	op := rng.Intn(12)
	switch {
	case op < 3 || n == 0: // add
		r := randRect()
		if n > 0 && rng.Intn(4) == 0 {
			// Exact duplicate of an existing feature: coincident shifter
			// centers exercise the position-collision nudging.
			r = l.Features[rng.Intn(n)].Rect
		}
		if _, err := s.AddFeature(r); err != nil {
			t.Fatalf("add: %v", err)
		}
	case op < 8: // move
		i := rng.Intn(n)
		r := l.Features[i].Rect
		switch rng.Intn(5) {
		case 0: // no-op move
		case 1: // resize (may flip criticality or orientation)
			r = R(r.X0, r.Y0, r.X0+80+rng.Int63n(400), r.Y0+200+rng.Int63n(1400))
		default:
			r = r.Translate(Point{X: rng.Int63n(901) - 450, Y: rng.Int63n(901) - 450})
		}
		if err := s.MoveFeature(i, r); err != nil {
			t.Fatalf("move: %v", err)
		}
	case op < 10: // delete
		if err := s.DeleteFeature(rng.Intn(n)); err != nil {
			t.Fatalf("delete: %v", err)
		}
	default: // batched edit
		err := s.Edit(func(ed *LayoutEditor) {
			k := 2 + rng.Intn(2)
			for j := 0; j < k; j++ {
				cur := ed.NumFeatures()
				switch {
				case cur == 0 || rng.Intn(3) == 0:
					ed.Add(randRect())
				case rng.Intn(2) == 0:
					i := rng.Intn(cur)
					ed.Move(i, ed.Feature(i).Rect.Translate(Point{X: rng.Int63n(601) - 300, Y: rng.Int63n(601) - 300}))
				default:
					ed.Delete(rng.Intn(cur))
				}
			}
		})
		if err != nil {
			t.Fatalf("batch edit: %v", err)
		}
	}
}

// runEditScript drives one seeded script and checks the differential
// property after every step.
func runEditScript(t *testing.T, seed int64, workers int) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	rows := 1 + rng.Intn(2)
	gates := 10 + rng.Intn(25)
	p := DefaultBenchmarkParams(seed, rows, gates)
	l := GenerateBenchmark(fmt.Sprintf("script%d", seed), p)

	// Vary the engine configuration across scripts: every fourth script uses
	// the FG baseline (bent drawings), every third the parity recheck. The
	// oracle always shares the configuration.
	opts := []EngineOption{WithParallelism(workers)}
	if seed%4 == 0 {
		opts = append(opts, WithGraph(FG))
	}
	if seed%3 == 0 {
		opts = append(opts, WithImprovedRecheck(true))
	}
	eng := NewEngine(opts...)
	oracle := NewEngine(opts...)
	s := eng.NewSession(l)
	switch rng.Intn(3) {
	case 0:
		// Detect before the first edit without arming: the first post-edit
		// Detect must fall back to a full incremental run.
		if _, err := s.Detect(ctx); err != nil {
			t.Fatal(err)
		}
	case 1:
		// Pre-armed session: the initial detection populates the cluster
		// cache, so even the first edit re-detects incrementally.
		if err := s.EnableEdits(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Detect(ctx); err != nil {
			t.Fatal(err)
		}
	}
	steps := 4 + rng.Intn(6)
	for step := 0; step < steps; step++ {
		applyRandomEdit(t, rng, s)
		got, err := s.Detect(ctx)
		if err != nil {
			t.Fatalf("seed %d step %d: incremental detect: %v", seed, step, err)
		}
		want, err := oracle.Detect(ctx, s.Layout().Clone())
		if err != nil {
			t.Fatalf("seed %d step %d: oracle detect: %v", seed, step, err)
		}
		label := fmt.Sprintf("seed %d step %d", seed, step)
		assertSameDetection(t, label, got, want)
		assertSamePipeline(t, label, ctx, s, oracle)
	}
	if fb := s.Stats().Incremental.FallbackDirty; fb != 0 {
		t.Errorf("seed %d: %d clusters hit the conservative fallback (reuse invariant broke)", seed, fb)
	}
}

// TestIncrementalDifferential runs 200+ seeded edit scripts (70 seeds ×
// workers 1/2/4) asserting incremental == from-scratch exactly at EVERY
// pipeline stage — detect, assign (+verification), correct, mask, DRC —
// after every script step. Run under -race in CI.
func TestIncrementalDifferential(t *testing.T) {
	seeds := 70
	if testing.Short() {
		seeds = 24
	}
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			for seed := 0; seed < seeds; seed++ {
				runEditScript(t, int64(1000*workers+seed), workers)
			}
		})
	}
}

// TestIncrementalReusesShards: a single-feature move on a multi-cluster
// design must reuse almost every cached cluster result.
func TestIncrementalReusesShards(t *testing.T) {
	ctx := context.Background()
	l := GenerateBenchmark("reuse", DefaultBenchmarkParams(7, 3, 80))
	s := NewEngine().NewSession(l)

	// Arm the incremental engine, then establish the baseline detection.
	if err := s.EnableEdits(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Detect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	shards := res.Detection.Stats.Shards
	if shards < 10 {
		t.Fatalf("expected many conflict clusters, got %d", shards)
	}

	mid := len(s.Layout().Features) / 2
	r := s.Layout().Features[mid].Rect
	if err := s.MoveFeature(mid, r.Translate(Point{X: 15})); err != nil {
		t.Fatal(err)
	}
	res2, err := s.Detect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	reused := res2.Detection.Stats.ReusedShards
	if reused < shards/2 {
		t.Fatalf("single move reused only %d of %d clusters", reused, res2.Detection.Stats.Shards)
	}
	st := s.Stats()
	if st.Incremental.FallbackDirty != 0 {
		t.Fatalf("fallback invariants fired: %+v", st.Incremental)
	}
	if st.DetectRuns != 2 {
		t.Fatalf("DetectRuns = %d, want 2", st.DetectRuns)
	}
}

// TestEditInvalidatesStages: edits must drop every memoized stage — including
// memoized errors, so a conflicted layout can be repaired on the same
// session.
func TestEditInvalidatesStages(t *testing.T) {
	ctx := context.Background()
	s := NewEngine().NewSession(Figure1Layout())

	if err := s.RequireAssignable(ctx); !errors.Is(err, ErrNotAssignable) {
		t.Fatalf("figure 1 should not be assignable, got %v", err)
	}
	// Repair: push the middle wire far away, breaking the odd cycle.
	if err := s.MoveFeature(1, R(350, 5000, 450, 6000)); err != nil {
		t.Fatal(err)
	}
	if err := s.RequireAssignable(ctx); err != nil {
		t.Fatalf("after repair: %v", err)
	}
	if _, err := s.Mask(ctx); err != nil {
		t.Fatalf("mask after repair: %v", err)
	}
	if runs := s.Stats().DetectRuns; runs != 2 {
		t.Fatalf("DetectRuns = %d, want 2 (one per edit generation)", runs)
	}

	// The caller's layout must be untouched: the session edits a copy.
	orig := Figure1Layout()
	s2 := NewEngine().NewSession(orig)
	if _, err := s2.AddFeature(R(10000, 0, 10100, 1000)); err != nil {
		t.Fatal(err)
	}
	if len(orig.Features) != 3 {
		t.Fatalf("caller layout mutated: %d features", len(orig.Features))
	}
	if len(s2.Layout().Features) != 4 {
		t.Fatalf("session layout missing the added feature")
	}
}

// TestEditPanicInvalidates: a panicking Edit callback must still invalidate
// the memoized stages for the operations it already applied — a recovered
// caller must never see a pre-edit detection for the mutated layout.
func TestEditPanicInvalidates(t *testing.T) {
	ctx := context.Background()
	s := NewEngine().NewSession(Figure5Layout())
	res1, err := s.Detect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected the callback panic to propagate")
			}
		}()
		_ = s.Edit(func(ed *LayoutEditor) {
			ed.Add(R(0, 50000, 100, 51000))
			panic("boom")
		})
	}()
	if len(s.Layout().Features) != 11 {
		t.Fatalf("applied op lost: %d features", len(s.Layout().Features))
	}
	res2, err := s.Detect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res2 == res1 {
		t.Fatal("stale pre-edit detection served after a panicking Edit")
	}
	if got, want := res2.Detection.Stats.GraphNodes, res1.Detection.Stats.GraphNodes+2; got != want {
		t.Fatalf("post-panic detection has %d nodes, want %d (two shifters of the added wire)", got, want)
	}
}

// TestEditErrors: out-of-range indices surface as *FlowError at StageEdit,
// and a failing batch stops at the first bad operation.
func TestEditErrors(t *testing.T) {
	s := NewEngine().NewSession(Figure5Layout())
	err := s.MoveFeature(99, R(0, 0, 10, 10))
	var fe *FlowError
	if !errors.As(err, &fe) || fe.Stage != StageEdit {
		t.Fatalf("MoveFeature(99): err = %v, want *FlowError at StageEdit", err)
	}
	if err := s.DeleteFeature(-1); !errors.As(err, &fe) || fe.Stage != StageEdit {
		t.Fatalf("DeleteFeature(-1): err = %v, want *FlowError at StageEdit", err)
	}
	before := len(s.Layout().Features)
	err = s.Edit(func(ed *LayoutEditor) {
		ed.Add(R(0, 20000, 100, 21000)) // applies
		ed.Delete(1000)                 // fails
		ed.Add(R(0, 30000, 100, 31000)) // skipped
		if ed.Err() == nil {
			t.Error("editor error not recorded")
		}
	})
	if !errors.As(err, &fe) || fe.Stage != StageEdit {
		t.Fatalf("batch: err = %v, want *FlowError at StageEdit", err)
	}
	if got := len(s.Layout().Features); got != before+1 {
		t.Fatalf("batch applied %d features, want %d (ops before the failure stay)", got-before, 1)
	}
}
