package tjoin

import (
	"context"
	"sort"

	"repro/internal/graph"
)

// Method selects a T-join algorithm for Solve.
type Method int

const (
	// MethodGeneralizedGadget uses the paper's generalized gadgets
	// (unbounded complete groups) — the default.
	MethodGeneralizedGadget Method = iota
	// MethodOptimizedGadget uses the TCAD'99 optimized gadgets (groups of
	// at most 3) — the runtime baseline of Table 1.
	MethodOptimizedGadget
	// MethodLawler uses the shortest-path metric-closure reduction.
	MethodLawler
)

// Options configures Solve.
type Options struct {
	Method Method
	// GroupCap overrides the gadget group size when positive (ablation
	// studies); ignored for MethodLawler.
	GroupCap int
}

func (o Options) groupCap() int {
	if o.GroupCap > 0 {
		return o.GroupCap
	}
	switch o.Method {
	case MethodOptimizedGadget:
		return 3
	default:
		return Unbounded
	}
}

// Solve computes a minimum-weight T-join of g, decomposing the problem per
// connected component so that the matching instances stay small (conflict
// graphs of real layouts consist of many local components). Gadget
// statistics are accumulated across components.
func Solve(g *graph.Graph, T []int, opt Options) (Result, error) {
	//aapsmvet:allow ctxflow compatibility wrapper for non-cancellable callers; SolveContext is the ctx-aware entry point
	return SolveContext(context.Background(), g, T, opt)
}

// SolveContext is Solve with cooperative cancellation: it polls ctx between
// components and threads it into the matching solver's primal-dual rounds,
// returning ctx.Err() promptly once the context is done.
func SolveContext(ctx context.Context, g *graph.Graph, T []int, opt Options) (Result, error) {
	comp, nc := g.Components()
	tByComp := make([][]int, nc)
	for _, t := range T {
		c := comp[t]
		tByComp[c] = append(tByComp[c], t)
	}
	parts, localOf := g.InducedComponents(comp, nc)
	var total Result
	for c := 0; c < nc; c++ {
		if len(tByComp[c]) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		sub, edgeOf := parts[c].G, parts[c].EdgeOf
		subT := make([]int, len(tByComp[c]))
		for i, t := range tByComp[c] {
			subT[i] = localOf[t]
		}
		sort.Ints(subT)
		var (
			r   Result
			err error
		)
		if opt.Method == MethodLawler {
			r, err = solveLawler(ctx, sub, subT)
		} else {
			r, err = solveGadget(ctx, sub, subT, opt.groupCap())
		}
		if err != nil {
			return Result{}, err
		}
		for _, ei := range r.Edges {
			total.Edges = append(total.Edges, edgeOf[ei])
		}
		total.Weight += r.Weight
		total.GadgetNodes += r.GadgetNodes
		total.GadgetEdges += r.GadgetEdges
	}
	sort.Ints(total.Edges)
	return total, nil
}
