package core

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Phase is a shifter phase in degrees: 0 or 180.
type Phase int8

const (
	// Phase0 is the unshifted aperture.
	Phase0 Phase = 0
	// Phase180 is the π-shifted aperture.
	Phase180 Phase = 1
)

func (p Phase) String() string {
	if p == Phase180 {
		return "180"
	}
	return "0"
}

// Assignment maps every shifter to a phase.
type Assignment struct {
	Phases []Phase // indexed by shifter
	// Waived marks overlap indices whose Condition-2 constraint was
	// cancelled by a detected conflict (they must be fixed by layout
	// modification or mask splitting before manufacture).
	Waived map[int]bool
	// WaivedFeatures marks features whose Condition-1 constraint was
	// cancelled (FeatureEdge conflicts).
	WaivedFeatures map[int]bool
}

// errNotBipartite is the shared inconsistency error of AssignPhases and the
// incremental assignment path, so both report identically.
var errNotBipartite = fmt.Errorf("core: conflict set does not make the graph bipartite")

// AssignPhases two-colors the conflict graph after removing the detected
// conflicts and extracts shifter phases. It fails if the detection result is
// inconsistent (remaining graph not bipartite).
func AssignPhases(det *Detection) (*Assignment, error) {
	colors, ok := det.Graph.Drawing.G.VerifyBipartition(det.ConflictEdgeSet())
	if !ok {
		return nil, errNotBipartite
	}
	return assignmentFromColors(det, colors), nil
}

// assignmentFromColors materializes an Assignment from a node 2-coloring of
// the conflict-free graph. Shared by the from-scratch and incremental paths.
func assignmentFromColors(det *Detection, colors []int8) *Assignment {
	cg := det.Graph
	a := &Assignment{
		Phases:         make([]Phase, len(cg.Set.Shifters)),
		Waived:         make(map[int]bool),
		WaivedFeatures: make(map[int]bool),
	}
	for si, node := range cg.ShifterNode {
		if colors[node] == 1 {
			a.Phases[si] = Phase180
		}
	}
	for _, c := range det.FinalConflicts {
		switch c.Meta.Kind {
		case OverlapEdge:
			a.Waived[c.Meta.Overlap] = true
		case FeatureEdge:
			a.WaivedFeatures[c.Meta.Feature] = true
		}
	}
	return a
}

// Violation describes a broken phase-assignment condition.
type Violation struct {
	// Condition is 1 (feature flanks share a phase) or 2 (overlapping
	// shifters differ).
	Condition int
	S1, S2    int
	Where     geom.Point
}

func (v Violation) String() string {
	return fmt.Sprintf("condition %d violated by shifters %d,%d near %v", v.Condition, v.S1, v.S2, v.Where)
}

// Verify checks an assignment against the layout's constraints, skipping
// waived ones. A fully empty result on an un-waived assignment certifies the
// layout phase-assignable (the constructive direction of Theorem 1).
func (a *Assignment) Verify(cg *ConflictGraph) []Violation {
	return a.VerifySubset(cg, nil, nil)
}

// VerifySubset is Verify restricted to the features and overlaps the filters
// admit (nil filters admit everything). The incremental pipeline verifies
// only the conflict clusters the last edit touched: clean clusters keep their
// phases, so a constraint there that held at the previous generation still
// holds and re-checking it would be redundant work.
func (a *Assignment) VerifySubset(cg *ConflictGraph, checkFeature, checkOverlap func(int) bool) []Violation {
	var out []Violation
	// PairOf is a map: iterate its keys in sorted order so the violation list
	// comes back in ascending feature order, not randomized map order.
	feats := make([]int, 0, len(cg.Set.PairOf))
	for fi := range cg.Set.PairOf {
		feats = append(feats, fi)
	}
	sort.Ints(feats)
	for _, fi := range feats {
		pair := cg.Set.PairOf[fi]
		if checkFeature != nil && !checkFeature(fi) {
			continue
		}
		if a.WaivedFeatures[fi] {
			continue
		}
		if a.Phases[pair[0]] == a.Phases[pair[1]] {
			out = append(out, Violation{
				Condition: 1, S1: pair[0], S2: pair[1],
				Where: cg.Set.Shifters[pair[0]].Center(),
			})
		}
	}
	for oi, ov := range cg.Set.Overlaps {
		if checkOverlap != nil && !checkOverlap(oi) {
			continue
		}
		if a.Waived[oi] {
			continue
		}
		if a.Phases[ov.A] != a.Phases[ov.B] {
			out = append(out, Violation{
				Condition: 2, S1: ov.A, S2: ov.B,
				Where: cg.Set.Shifters[ov.A].Center(),
			})
		}
	}
	return out
}
