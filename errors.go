package aapsm

import (
	"errors"
	"fmt"
)

// Sentinel errors of the Engine/Session API. All stage errors are wrapped in
// a *FlowError, so callers can match both the cause and the stage:
//
//	if errors.Is(err, aapsm.ErrUnfixable) { ... }
//	var fe *aapsm.FlowError
//	if errors.As(err, &fe) { log.Printf("stage %s failed on %s", fe.Stage, fe.Layout) }
var (
	// ErrNotAssignable reports that a layout admits no valid phase
	// assignment (its phase conflict graph is not bipartite, Theorem 1).
	ErrNotAssignable = errors.New("layout is not phase-assignable")
	// ErrUnfixable reports that correction left conflicts that end-to-end
	// spacing cannot fix (candidates for widening or mask splitting).
	ErrUnfixable = errors.New("conflicts not fixable by end-to-end spacing")
	// ErrMaskInconsistent reports that the mask view failed phase-consistency
	// validation.
	ErrMaskInconsistent = errors.New("mask view is phase-inconsistent")
)

// FlowStage identifies one step of the AAPSM pipeline.
type FlowStage int8

const (
	// StageDetect covers shifter synthesis, conflict-graph construction and
	// the detection flow (planarize, T-join bipartization, recheck).
	StageDetect FlowStage = iota
	// StageAssign covers phase extraction and verification.
	StageAssign
	// StageCorrect covers end-to-end-space planning and application.
	StageCorrect
	// StageMask covers mask-view validation and construction.
	StageMask
	// StageRender covers SVG rendering.
	StageRender
	// StageEdit covers layout mutations on an incremental session
	// (AddFeature, MoveFeature, DeleteFeature, Edit).
	StageEdit
	// StagePersist covers session snapshot and restore.
	StagePersist
	// StageConfig covers engine and profile configuration (rules-profile
	// resolution, engine option validation).
	StageConfig
)

func (s FlowStage) String() string {
	switch s {
	case StageDetect:
		return "detect"
	case StageAssign:
		return "assign"
	case StageCorrect:
		return "correct"
	case StageMask:
		return "mask"
	case StageRender:
		return "render"
	case StageEdit:
		return "edit"
	case StagePersist:
		return "persist"
	case StageConfig:
		return "config"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// FlowError tags a pipeline failure with the stage it happened in and the
// layout it happened on. It unwraps to the underlying cause, so
// errors.Is(err, context.Canceled), errors.Is(err, ErrUnfixable) etc. work
// through it.
type FlowError struct {
	Stage  FlowStage
	Layout string // name of the layout the session was working on
	Err    error
}

func (e *FlowError) Error() string {
	if e.Layout == "" {
		return fmt.Sprintf("aapsm: %s: %v", e.Stage, e.Err)
	}
	return fmt.Sprintf("aapsm: %s: layout %q: %v", e.Stage, e.Layout, e.Err)
}

func (e *FlowError) Unwrap() error { return e.Err }

// flowErr wraps err for stage s unless it is already stage-tagged (nested
// stages pass their own *FlowError through unchanged).
func flowErr(s FlowStage, layout string, err error) error {
	var fe *FlowError
	if errors.As(err, &fe) {
		return err
	}
	return &FlowError{Stage: s, Layout: layout, Err: err}
}
