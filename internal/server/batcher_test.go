package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	aapsm "repro"
	"repro/internal/bench"
)

// contendedLayout generates a layout with enough features for one writer per
// feature under heavy client counts.
func contendedLayout(i, minFeatures int) *aapsm.Layout {
	p := bench.DefaultParams(int64(3000+i), 2, 14)
	p.DenseClusterEvery = 3
	p.DenseClusterSize = 3
	l := bench.Generate(fmt.Sprintf("cont-%03d", i), p)
	if len(l.Features) < minFeatures {
		panic(fmt.Sprintf("contendedLayout(%d): %d features < %d", i, len(l.Features), minFeatures))
	}
	return l
}

// normalizeDetect strips the one legitimately nondeterministic field
// (total_ns wall clock) from a served detect body so runs are comparable.
func normalizeDetect(t *testing.T, raw []byte) []byte {
	t.Helper()
	var r detectResponse
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatalf("detect unmarshal: %v: %s", err, raw)
	}
	r.Stats.TotalNS = 0
	return encodeJSON(t, r)
}

// moveOp builds a single-op edit body moving feature idx to r.
func moveBody(t *testing.T, i int, r aapsm.Rect) []byte {
	t.Helper()
	return encodeJSON(t, editsRequest{Ops: []editOp{
		{Op: "move", Index: idx(i), Rect: []int64{r.X0, r.Y0, r.X1, r.Y1}},
	}})
}

// TestCoalescedEditsDifferential is the coalescer acceptance test: N
// concurrent single-op edits against one session — collected into merged
// batches by a generous BatchWait — must leave the session in a state where
// EVERY served stage is bit-identical to replaying the same edits one at a
// time, in committed (seq, pos) order, on a coalescing-disabled server.
// Run under -race this also exercises the batcher's publication discipline.
func TestCoalescedEditsDifferential(t *testing.T) {
	const clients = 16
	l := contendedLayout(1, clients)
	eng := aapsm.NewEngine(aapsm.WithParallelism(2))

	_, batched := newTestServer(t, Config{
		Engine:        eng,
		DetectWorkers: 1,
		BatchMax:      clients,
		BatchWait:     400 * time.Millisecond,
	})
	var created createResponse
	if err := json.Unmarshal(batched.must("POST", "/v1/sessions", layoutText(t, l), 200), &created); err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		client int
		resp   editsResponse
	}
	results := make([]outcome, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := l.Features[c].Rect.Translate(aapsm.Point{X: 10})
			raw := batched.must("POST", "/v1/sessions/"+created.ID+"/edits", moveBody(t, c, r), 200)
			var er editsResponse
			if err := json.Unmarshal(raw, &er); err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			results[c] = outcome{client: c, resp: er}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	maxSize := 0
	seen := map[string]bool{}
	for _, o := range results {
		if o.resp.Applied != 1 {
			t.Fatalf("client %d applied = %d, want 1", o.client, o.resp.Applied)
		}
		if o.resp.Batch == nil {
			t.Fatalf("client %d response has no batch receipt", o.client)
		}
		if o.resp.Batch.Size > maxSize {
			maxSize = o.resp.Batch.Size
		}
		k := fmt.Sprintf("%d/%d", o.resp.Batch.Seq, o.resp.Batch.Pos)
		if seen[k] {
			t.Fatalf("duplicate batch slot %s", k)
		}
		seen[k] = true
	}
	if maxSize < 2 {
		t.Fatalf("no coalescing happened: max batch size %d (want >= 2)", maxSize)
	}

	// Replay the committed order on a server with coalescing disabled.
	_, oracle := newTestServer(t, Config{
		Engine:        eng,
		DetectWorkers: 1,
		BatchMax:      -1,
		BatchWait:     -1,
	})
	var ocreated createResponse
	if err := json.Unmarshal(oracle.must("POST", "/v1/sessions", layoutText(t, l), 200), &ocreated); err != nil {
		t.Fatal(err)
	}
	sort.Slice(results, func(i, j int) bool {
		a, b := results[i].resp.Batch, results[j].resp.Batch
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Pos < b.Pos
	})
	var lastSeq editsResponse
	for _, o := range results {
		r := l.Features[o.client].Rect.Translate(aapsm.Point{X: 10})
		raw := oracle.must("POST", "/v1/sessions/"+ocreated.ID+"/edits", moveBody(t, o.client, r), 200)
		if err := json.Unmarshal(raw, &lastSeq); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := results[len(results)-1].resp.Features, lastSeq.Features; got != want {
		t.Fatalf("final feature count: coalesced %d, sequential %d", got, want)
	}

	// Every stage must serve bit-identical bytes from both sessions.
	for _, stage := range []string{"detect", "assign", "correct", "drc", "mask", "layout", "svg"} {
		gotCode, got := batched.do("GET", "/v1/sessions/"+created.ID+"/"+stage, nil)
		wantCode, want := oracle.do("GET", "/v1/sessions/"+ocreated.ID+"/"+stage, nil)
		if gotCode != wantCode {
			t.Errorf("%s: coalesced %d, sequential %d", stage, gotCode, wantCode)
			continue
		}
		if stage == "detect" && gotCode == 200 {
			got, want = normalizeDetect(t, got), normalizeDetect(t, want)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s diverged after coalesced edits:\n got %s\nwant %s", stage, got, want)
		}
	}

	// Reuse stats stay sane: the incremental engine never fell back to a
	// dirty full recompute while serving the merged batches.
	var info infoResponse
	if err := json.Unmarshal(batched.must("GET", "/v1/sessions/"+created.ID, nil, 200), &info); err != nil {
		t.Fatal(err)
	}
	if info.Incremental.FallbackDirty != 0 {
		t.Fatalf("coalesced session hit dirty fallbacks: %+v", info.Incremental)
	}
}

// TestBatchedEditErrorAttribution: a request with an out-of-range op inside a
// merged batch answers 422 alone; every other request in the batch lands —
// and the shared ?detect=1 pipeline still runs for the survivors.
func TestBatchedEditErrorAttribution(t *testing.T) {
	l := contendedLayout(2, 8)
	srv, tc := newTestServer(t, Config{
		Engine:        aapsm.NewEngine(aapsm.WithParallelism(2)),
		DetectWorkers: 1,
		BatchMax:      8,
		BatchWait:     400 * time.Millisecond,
	})
	var created createResponse
	if err := json.Unmarshal(tc.must("POST", "/v1/sessions", layoutText(t, l), 200), &created); err != nil {
		t.Fatal(err)
	}
	nf := len(l.Features)

	type result struct {
		code int
		body []byte
	}
	bodies := [][]byte{
		moveBody(t, 0, l.Features[0].Rect.Translate(aapsm.Point{X: 10})),
		moveBody(t, nf+100, aapsm.R(0, 0, 10, 10)), // out of range: this one must fail alone
		moveBody(t, 1, l.Features[1].Rect.Translate(aapsm.Point{X: -10})),
	}
	results := make([]result, len(bodies))
	var wg sync.WaitGroup
	for i, b := range bodies {
		wg.Add(1)
		go func(i int, b []byte) {
			defer wg.Done()
			code, data := tc.do("POST", "/v1/sessions/"+created.ID+"/edits?detect=1", b)
			results[i] = result{code, data}
		}(i, b)
	}
	wg.Wait()

	if results[0].code != 200 || results[2].code != 200 {
		t.Fatalf("good items = %d, %d, want 200, 200: %s / %s",
			results[0].code, results[2].code, results[0].body, results[2].body)
	}
	if results[1].code != 422 {
		t.Fatalf("bad item = %d, want 422: %s", results[1].code, results[1].body)
	}
	var eb errorBody
	if err := json.Unmarshal(results[1].body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != "bad_index" || !strings.Contains(eb.Error.Message, "out of range") {
		t.Fatalf("bad item error = %+v", eb.Error)
	}
	for _, i := range []int{0, 2} {
		var er editsResponse
		if err := json.Unmarshal(results[i].body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Applied != 1 {
			t.Fatalf("good item %d applied = %d, want 1", i, er.Applied)
		}
		if er.Detect == nil && er.DetectError == "" {
			t.Fatalf("good item %d missing the shared ?detect=1 result", i)
		}
	}
	// Both good moves landed: the session diverged from the upload by exactly
	// two surviving ops, nothing from the rejected request.
	var info infoResponse
	if err := json.Unmarshal(tc.must("GET", "/v1/sessions/"+created.ID, nil, 200), &info); err != nil {
		t.Fatal(err)
	}
	if info.Features != nf {
		t.Fatalf("feature count = %d, want %d (moves only)", info.Features, nf)
	}
	if srv.metrics.edits.Load() != 2 {
		t.Fatalf("applied-edit counter = %d, want 2", srv.metrics.edits.Load())
	}
}

// TestReadSingleFlight: identical read-stage requests at one session
// generation run the pipeline (and response encoding) once; followers share
// the leader's bytes and are counted as coalesced reads.
func TestReadSingleFlight(t *testing.T) {
	const readers = 8
	srv, tc := newTestServer(t, Config{
		Engine:        aapsm.NewEngine(aapsm.WithParallelism(2)),
		DetectWorkers: 1,
	})
	var created createResponse
	if err := json.Unmarshal(tc.must("POST", "/v1/sessions", layoutText(t, loadLayout(81)), 200), &created); err != nil {
		t.Fatal(err)
	}
	bodies := make([][]byte, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i] = tc.must("GET", "/v1/sessions/"+created.ID+"/detect", nil, 200)
		}(i)
	}
	wg.Wait()
	for i := 1; i < readers; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("reader %d got different bytes than reader 0", i)
		}
	}
	if n := srv.metrics.detects.Load(); n != 1 {
		t.Fatalf("detect pipeline ran %d times for %d identical reads, want 1", n, readers)
	}
	if n := srv.metrics.readsCoalesced.Load(); n != readers-1 {
		t.Fatalf("coalesced reads = %d, want %d", n, readers-1)
	}
	// A different variant (query string) of the same stage is NOT the same
	// read: it computes its own response.
	asText := tc.must("GET", "/v1/sessions/"+created.ID+"/layout", nil, 200)
	asGDS := tc.must("GET", "/v1/sessions/"+created.ID+"/layout?format=gds", nil, 200)
	if bytes.Equal(asText, asGDS) {
		t.Fatal("distinct variants served identical bytes — variant missing from the single-flight key")
	}
}

// sseMsg is one parsed Server-Sent Event.
type sseMsg struct {
	event string
	id    string
	data  string
}

// readSSE parses the next event off the stream, skipping heartbeat comments.
func readSSE(t *testing.T, br *bufio.Reader) sseMsg {
	t.Helper()
	var m sseMsg
	var data []string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v (got so far: %+v)", err, m)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "" && (m.event != "" || len(data) > 0):
			m.data = strings.Join(data, "\n")
			return m
		case line == "" || strings.HasPrefix(line, ":"):
			// blank keep-alive or comment — skip
		case strings.HasPrefix(line, "event: "):
			m.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			m.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			data = append(data, strings.TrimPrefix(line, "data: "))
		default:
			t.Fatalf("unparseable SSE line %q", line)
		}
	}
}

// TestStreamDifferential replays an edit script over one streaming
// connection: after every committed batch the stream must push a detect
// result bit-identical (modulo wall clock) to an in-process oracle session
// applying the same script.
func TestStreamDifferential(t *testing.T) {
	l := contendedLayout(3, 8)
	eng := aapsm.NewEngine(aapsm.WithParallelism(2))
	srv, tc := newTestServer(t, Config{
		Engine:        eng,
		DetectWorkers: 1,
		BatchWait:     -1,
	})
	oracle := eng.NewSessionWithParallelism(l.Clone(), 1)
	if err := oracle.EnableEdits(); err != nil {
		t.Fatal(err)
	}
	var created createResponse
	if err := json.Unmarshal(tc.must("POST", "/v1/sessions", layoutText(t, l), 200), &created); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest("GET", tc.base+"/v1/sessions/"+created.ID+"/stream?stages=detect", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tc.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stream = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	checkDetect := func(m sseMsg, wantGen string) {
		t.Helper()
		if m.event != "detect" || m.id != wantGen {
			t.Fatalf("event = %s id=%s, want detect id=%s", m.event, m.id, wantGen)
		}
		res, err := oracle.Detect(t.Context())
		if err != nil {
			t.Fatal(err)
		}
		want := buildDetectResponse(created.ID, oracle, res)
		var got detectResponse
		if err := json.Unmarshal([]byte(m.data), &got); err != nil {
			t.Fatalf("stream detect payload: %v: %s", err, m.data)
		}
		got.Stats.TotalNS, want.Stats.TotalNS = 0, 0
		gb, wb := encodeJSON(t, got), encodeJSON(t, want)
		if !bytes.Equal(gb, wb) {
			t.Fatalf("stream detect diverged from oracle:\n got %s\nwant %s", gb, wb)
		}
	}

	hello := readSSE(t, br)
	if hello.event != "hello" {
		t.Fatalf("first event = %+v, want hello", hello)
	}
	var h streamHello
	if err := json.Unmarshal([]byte(hello.data), &h); err != nil {
		t.Fatal(err)
	}
	if h.ID != created.ID || len(h.Stages) != 1 || h.Stages[0] != "detect" {
		t.Fatalf("hello = %+v", h)
	}
	gen0 := h.Gen
	if hello.id != fmt.Sprint(gen0) {
		t.Fatalf("hello id = %s, payload gen %d", hello.id, gen0)
	}
	checkDetect(readSSE(t, br), fmt.Sprint(gen0))

	// The differential script: three sequential edit batches, each answered
	// by an edit event plus a fresh detect at the new generation.
	for step := 1; step <= 3; step++ {
		i := step * 2
		r := l.Features[i].Rect.Translate(aapsm.Point{X: int64(10 * step)})
		tc.must("POST", "/v1/sessions/"+created.ID+"/edits", moveBody(t, i, r), 200)
		if err := oracle.Edit(func(ed *aapsm.LayoutEditor) { ed.Move(i, r) }); err != nil {
			t.Fatal(err)
		}
		wantGen := fmt.Sprint(gen0 + int64(step))
		ev := readSSE(t, br)
		if ev.event != "edit" || ev.id != wantGen {
			t.Fatalf("step %d: event = %+v, want edit id=%s", step, ev, wantGen)
		}
		var ee streamEdit
		if err := json.Unmarshal([]byte(ev.data), &ee); err != nil {
			t.Fatal(err)
		}
		if ee.Features != oracle.NumFeatures() {
			t.Fatalf("step %d: stream features = %d, oracle %d", step, ee.Features, oracle.NumFeatures())
		}
		checkDetect(readSSE(t, br), wantGen)
	}
	if n := srv.metrics.streamsTotal.Load(); n != 1 {
		t.Fatalf("streams total = %d, want 1", n)
	}
	if srv.metrics.streamEvents.Load() == 0 {
		t.Fatal("stream event counter never moved")
	}
}

// TestStreamLimit: past MaxStreams, new streams shed with 429 stream_limit.
func TestStreamLimit(t *testing.T) {
	srv, tc := newTestServer(t, Config{
		Engine:     aapsm.NewEngine(),
		MaxStreams: 1,
	})
	var created createResponse
	if err := json.Unmarshal(tc.must("POST", "/v1/sessions", layoutText(t, loadLayout(82)), 200), &created); err != nil {
		t.Fatal(err)
	}
	srv.streamSem <- struct{}{} // occupy the single slot
	var eb errorBody
	if err := json.Unmarshal(tc.must("GET", "/v1/sessions/"+created.ID+"/stream", nil, 429), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != "stream_limit" {
		t.Fatalf("stream shed error = %+v", eb.Error)
	}
	if srv.metrics.streamsRejected.Load() != 1 {
		t.Fatalf("streams rejected = %d, want 1", srv.metrics.streamsRejected.Load())
	}
}

// BenchmarkServedEditsContended measures the coalescer's served-edit
// throughput under contention (16 writers × 4 edits with ?detect=1 on one
// session) against the one-request-one-pipeline baseline on the same grid
// — the same measurement benchtab records as served_edits_per_sec.
func BenchmarkServedEditsContended(b *testing.B) {
	l := contendedLayout(4, 16)
	eng := aapsm.NewEngine(aapsm.WithParallelism(2))
	for i := 0; i < b.N; i++ {
		res, err := MeasureContendedEdits(l, eng, 16, 4, 32, 2*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ServedPerSec, "edits/sec")
		b.ReportMetric(res.CoalesceRatio, "items/batch")
	}
}
