package geom

import (
	"math/rand"
	"testing"
)

// collectPairs snapshots ForEachPair output for comparison.
func collectPairs(g *Grid) [][2]int32 {
	var out [][2]int32
	g.ForEachPair(func(i, j int32) { out = append(out, [2]int32{i, j}) })
	return out
}

func pairsEqual(a, b [][2]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGridRemove: removing an entry with the rect it was inserted with must
// leave the grid equivalent to one that never saw the entry, across
// interleaved query/mutate rounds (the incremental maintenance path).
func TestGridRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type item struct {
		id int32
		r  Rect
	}
	live := map[int32]item{}
	g := NewGrid(100)
	next := int32(0)
	for round := 0; round < 50; round++ {
		// Mutate: a few inserts and removes.
		for k := 0; k < 3; k++ {
			x := rng.Int63n(2000) - 1000
			y := rng.Int63n(2000) - 1000
			it := item{next, R(x, y, x+rng.Int63n(300)+1, y+rng.Int63n(300)+1)}
			next++
			live[it.id] = it
			g.Insert(it.id, it.r)
		}
		if len(live) > 4 && rng.Intn(2) == 0 {
			for id, it := range live {
				g.Remove(id, it.r)
				delete(live, id)
				break
			}
		}
		// Reference grid built from scratch over the live set.
		ref := NewGrid(100)
		for _, it := range live {
			ref.Insert(it.id, it.r)
		}
		if g.Len() != ref.Len() {
			t.Fatalf("round %d: %d entries, want %d", round, g.Len(), ref.Len())
		}
		if !pairsEqual(collectPairs(g), collectPairs(ref)) {
			t.Fatalf("round %d: pair enumeration diverged from rebuild", round)
		}
		// Query equivalence on a random window.
		q := R(rng.Int63n(2000)-1000, rng.Int63n(2000)-1000, rng.Int63n(2000), rng.Int63n(2000))
		got := map[int32]bool{}
		g.Query(q, nil, func(id int32) { got[id] = true })
		want := map[int32]bool{}
		ref.Query(q, nil, func(id int32) { want[id] = true })
		if len(got) != len(want) {
			t.Fatalf("round %d: query returned %d ids, want %d", round, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("round %d: query missing id %d", round, id)
			}
		}
	}
}

// TestGridRemoveUnmatched: removing a pair that was never inserted must not
// disturb other entries, including later removes of real entries.
func TestGridRemoveUnmatched(t *testing.T) {
	g := NewGrid(50)
	g.Insert(1, R(0, 0, 10, 10))
	g.Insert(2, R(5, 5, 20, 20))
	g.Remove(3, R(0, 0, 10, 10))           // never inserted
	g.Remove(1, R(1000, 1000, 1010, 1010)) // wrong rect: no matching cells
	if g.Len() != 2 {
		t.Fatalf("unmatched removes changed the grid: %d entries", g.Len())
	}
	g.Remove(1, R(0, 0, 10, 10))
	found := false
	g.Query(R(0, 0, 30, 30), nil, func(id int32) {
		if id == 1 {
			t.Error("id 1 still present after remove")
		}
		if id == 2 {
			found = true
		}
	})
	if !found {
		t.Error("id 2 lost by sibling remove")
	}
}

// TestGridDuplicateEntries: duplicate inserts of the same (id, rect) require
// matching removes one by one.
func TestGridDuplicateEntries(t *testing.T) {
	g := NewGrid(50)
	r := R(0, 0, 10, 10)
	g.Insert(7, r)
	g.Insert(7, r)
	g.Remove(7, r)
	seen := false
	g.Query(r, nil, func(id int32) { seen = seen || id == 7 })
	if !seen {
		t.Fatal("second insert vanished after one remove")
	}
	g.Remove(7, r)
	seen = false
	g.Query(r, nil, func(id int32) { seen = seen || id == 7 })
	if seen {
		t.Fatal("id 7 present after matched removes")
	}
}
