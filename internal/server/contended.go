package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	aapsm "repro"
)

// ContendedResult is the outcome of one contended-session measurement: many
// concurrent clients POSTing edits (each with ?detect=1) against a single
// session, served through the edit coalescer.
type ContendedResult struct {
	// Served is the number of edit requests answered 200.
	Served int
	// Batches is how many merged batches the coalescer ran for them.
	Batches int64
	// CoalesceRatio is served requests per pipeline run (Served/Batches);
	// 1.0 means no coalescing happened.
	CoalesceRatio float64
	// ServedPerSec is the served-edit throughput over the contention window.
	ServedPerSec float64
	// ElapsedNS is the wall-clock of the contention window.
	ElapsedNS int64
}

// MeasureContendedEdits drives the HTTP handler directly (no sockets) with
// `clients` concurrent writers, each applying `editsPerClient` sequential
// single-feature moves with ?detect=1 to one shared session, and reports the
// served throughput and coalesce ratio. batchMax/batchWait configure the
// coalescer; batchMax < 0 disables coalescing (one re-pipeline per request),
// which is the baseline the benchmark and benchtab compare against. Every
// client moves its own feature, so the merged batches are conflict-free and
// the responses stay deterministic.
func MeasureContendedEdits(l *aapsm.Layout, eng *aapsm.Engine, clients, editsPerClient, batchMax int, batchWait time.Duration) (ContendedResult, error) {
	var out ContendedResult
	if clients < 1 || editsPerClient < 1 {
		return out, fmt.Errorf("clients %d / editsPerClient %d must be >= 1", clients, editsPerClient)
	}
	if len(l.Features) < clients {
		return out, fmt.Errorf("layout has %d features, need >= %d (one per client)", len(l.Features), clients)
	}
	srv := New(Config{
		Engine:        eng,
		DetectWorkers: 1,
		FlushInterval: -1,
		MaxInflight:   -1,
		// Per-session admission must exceed the client count or the
		// admission layer itself becomes the bottleneck being measured.
		MaxSessionInflight: -1,
		BatchMax:           batchMax,
		BatchWait:          batchWait,
	})
	defer srv.Close()
	h := srv.Handler()

	do := func(method, path string, body []byte) (int, []byte, error) {
		req, err := http.NewRequest(method, path, bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		w := newCaptureWriter()
		h.ServeHTTP(w, req)
		return w.code, w.buf.Bytes(), nil
	}

	var layout bytes.Buffer
	if err := aapsm.WriteLayoutText(&layout, l); err != nil {
		return out, err
	}
	code, body, err := do("POST", "/v1/sessions", layout.Bytes())
	if err != nil {
		return out, err
	}
	if code != http.StatusOK {
		return out, fmt.Errorf("create session: %d: %s", code, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		return out, err
	}
	// Warm the incremental caches so the measurement compares steady-state
	// re-pipelines, not the one-time full build.
	if code, body, err = do("GET", "/v1/sessions/"+created.ID+"/detect", nil); err != nil {
		return out, err
	} else if code != http.StatusOK {
		return out, fmt.Errorf("warmup detect: %d: %s", code, body)
	}

	type opBody struct {
		Ops []editOp `json:"ops"`
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		fail error
	)
	batchesBefore := srv.metrics.editBatches.Load()
	itemsBefore := srv.metrics.editBatchItems.Load()
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			feat := l.Features[c].Rect
			for k := 0; k < editsPerClient; k++ {
				delta := int64(10)
				if k%2 == 1 {
					delta = -10
				}
				r := feat.Translate(aapsm.Point{X: delta})
				feat = r
				i := c
				req, err := json.Marshal(opBody{Ops: []editOp{{
					Op:    "move",
					Rect:  []int64{r.X0, r.Y0, r.X1, r.Y1},
					Index: &i,
				}}})
				if err == nil {
					var code int
					var body []byte
					code, body, err = do("POST", "/v1/sessions/"+created.ID+"/edits?detect=1", req)
					if err == nil && code != http.StatusOK {
						err = fmt.Errorf("client %d edit %d: %d: %s", c, k, code, body)
					}
				}
				if err != nil {
					mu.Lock()
					if fail == nil {
						fail = err
					}
					mu.Unlock()
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if fail != nil {
		return out, fail
	}
	out.Served = clients * editsPerClient
	out.Batches = srv.metrics.editBatches.Load() - batchesBefore
	if out.Batches > 0 {
		out.CoalesceRatio = float64(srv.metrics.editBatchItems.Load()-itemsBefore) / float64(out.Batches)
	}
	out.ElapsedNS = elapsed.Nanoseconds()
	out.ServedPerSec = float64(out.Served) / elapsed.Seconds()
	return out, nil
}
