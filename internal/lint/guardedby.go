package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GuardedByAnalyzer enforces documented lock discipline: a struct field whose
// comment says "guarded by <mu>" may only be read or written while <mu> is
// held.
//
// Holding is tracked per function with a small flow-sensitive walk:
// <mu>.Lock() / <mu>.RLock() acquire, <mu>.Unlock() / <mu>.RUnlock() release,
// a deferred unlock keeps the lock held to the end of the function, and a
// branch that unlocks and returns does not poison the fall-through path.
// Mutexes are matched by their final path component (s.mu, st.mu and e.mu
// all satisfy "guarded by mu") — the check is intra-procedural and
// path-insensitive by design.
//
// Two conventions declare that a function runs with the lock already held:
// a name ending in "Locked", or an explicit //aapsmvet:holds <mu> directive
// in its doc comment. Function literals inherit the lock state of the point
// where they are written, except goroutine bodies (go func(){...}), which
// start with nothing held.
var GuardedByAnalyzer = &Analyzer{
	Name: "guardedby",
	Doc:  "check that fields annotated 'guarded by <mu>' are only accessed with <mu> held",
	Run:  runGuardedBy,
}

const guardedByMarker = "guarded by "

func runGuardedBy(pass *Pass) {
	fields := collectGuardedFields(pass)
	if len(fields) == 0 {
		return
	}
	c := &gbChecker{pass: pass, fields: fields}
	for _, file := range pass.Files {
		if pass.testFiles[file] {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			st := newLockState()
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				st.heldAll = true
			}
			if mu := holdsDirective(fn); mu != "" {
				st.held[mu]++
			}
			c.walkStmts(fn.Body.List, st)
		}
	}
}

// collectGuardedFields maps each annotated struct field object to the name
// of its guarding mutex (final path component of the annotation).
func collectGuardedFields(pass *Pass) map[types.Object]string {
	fields := map[types.Object]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			structType, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range structType.Fields.List {
				mu := guardedByAnnotation(f.Doc, f.Comment)
				if mu == "" {
					continue
				}
				for _, name := range f.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						fields[obj] = mu
					}
				}
			}
			return true
		})
	}
	return fields
}

// guardedByAnnotation extracts the mutex name from a "guarded by <mu>"
// marker in a field's doc or line comment, reduced to its final path
// component ("st.mu" -> "mu").
func guardedByAnnotation(groups ...*ast.CommentGroup) string {
	for _, g := range groups {
		if g == nil {
			continue
		}
		text := g.Text()
		i := strings.Index(strings.ToLower(text), guardedByMarker)
		if i < 0 {
			continue
		}
		rest := text[i+len(guardedByMarker):]
		f := strings.FieldsFunc(rest, func(r rune) bool {
			return !(r == '.' || r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9')
		})
		if len(f) == 0 {
			continue
		}
		name := f[0]
		if j := strings.LastIndex(name, "."); j >= 0 {
			name = name[j+1:]
		}
		return name
	}
	return ""
}

// lockState is the abstract lock-hold state at one program point.
type lockState struct {
	held    map[string]int
	heldAll bool // function declared as running with locks held
	// terminated marks state after a return/branch/panic; such states do not
	// contribute to branch merges.
	terminated bool
}

func newLockState() *lockState {
	return &lockState{held: map[string]int{}}
}

func (s *lockState) clone() *lockState {
	c := &lockState{held: make(map[string]int, len(s.held)), heldAll: s.heldAll}
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

func (s *lockState) holds(mu string) bool {
	return s.heldAll || s.held[mu] > 0
}

// merge folds another fall-through state into s (per-mutex minimum: only
// locks held on every path survive).
func (s *lockState) merge(o *lockState) {
	if o.terminated {
		return
	}
	if s.terminated {
		s.held, s.heldAll, s.terminated = o.held, o.heldAll, false
		return
	}
	for k, v := range s.held {
		if ov := o.held[k]; ov < v {
			s.held[k] = ov
		}
	}
	for k := range o.held {
		if _, ok := s.held[k]; !ok {
			s.held[k] = 0
		}
	}
	s.heldAll = s.heldAll && o.heldAll
}

type gbChecker struct {
	pass   *Pass
	fields map[types.Object]string
}

// lockCall classifies a call as a mutex acquire/release: it returns the
// mutex's final path component and +1 (Lock/RLock) or -1 (Unlock/RUnlock).
func (c *gbChecker) lockCall(call *ast.CallExpr) (mu string, delta int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		delta = 1
	case "Unlock", "RUnlock":
		delta = -1
	default:
		return "", 0
	}
	tv, ok := c.pass.Info.Types[sel.X]
	if !ok || !isMutexType(tv.Type) {
		return "", 0
	}
	path := exprString(sel.X)
	if path == "" {
		return "", 0
	}
	if i := strings.LastIndex(path, "."); i >= 0 {
		path = path[i+1:]
	}
	return path, delta
}

func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkExpr reports unguarded accesses to annotated fields anywhere in e,
// walking function literals with the current state (goroutine literals are
// handled by walkStmts before it gets here).
func (c *gbChecker) checkExpr(e ast.Expr, st *lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			c.walkStmts(v.Body.List, st.clone())
			return false
		case *ast.SelectorExpr:
			selinfo := c.pass.Info.Selections[v]
			if selinfo != nil && selinfo.Kind() == types.FieldVal {
				if mu, ok := c.fields[selinfo.Obj()]; ok && !st.holds(mu) {
					c.pass.Reportf(v.Sel.Pos(), "access to field %s (guarded by %s) without holding %s",
						selinfo.Obj().Name(), mu, mu)
				}
			}
		}
		return true
	})
}

// applyExprEffects scans e for mutex acquire/release calls and applies them
// to st, after checking field accesses in the same expression.
func (c *gbChecker) applyExprEffects(e ast.Expr, st *lockState) {
	if e == nil {
		return
	}
	c.checkExpr(e, st)
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if mu, delta := c.lockCall(call); delta != 0 {
				st.held[mu] += delta
				if st.held[mu] < 0 {
					st.held[mu] = 0
				}
			}
		}
		return true
	})
}

// walkStmts interprets a statement list, mutating st to the fall-through
// state.
func (c *gbChecker) walkStmts(stmts []ast.Stmt, st *lockState) {
	for _, s := range stmts {
		if st.terminated {
			// Unreachable tail (e.g. code after return); keep checking with a
			// fresh pessimistic state.
			st.terminated = false
		}
		c.walkStmt(s, st)
	}
}

func (c *gbChecker) walkStmt(s ast.Stmt, st *lockState) {
	switch v := s.(type) {
	case *ast.ExprStmt:
		c.applyExprEffects(v.X, st)
		if call, ok := v.X.(*ast.CallExpr); ok && isPanicCall(call) {
			st.terminated = true
		}
	case *ast.AssignStmt:
		for _, e := range v.Rhs {
			c.applyExprEffects(e, st)
		}
		for _, e := range v.Lhs {
			c.applyExprEffects(e, st)
		}
	case *ast.DeclStmt:
		gd, ok := v.Decl.(*ast.GenDecl)
		if ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.applyExprEffects(e, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.applyExprEffects(v.X, st)
	case *ast.SendStmt:
		c.applyExprEffects(v.Chan, st)
		c.applyExprEffects(v.Value, st)
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			c.applyExprEffects(e, st)
		}
		st.terminated = true
	case *ast.BranchStmt:
		st.terminated = true
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held for the rest of the function:
		// no release effect. A deferred closure runs at return time with, in
		// the common defer-cleanup pattern, the current locks still relevant;
		// check it against the current state.
		for _, arg := range v.Call.Args {
			c.applyExprEffects(arg, st)
		}
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			c.walkStmts(lit.Body.List, st.clone())
		}
	case *ast.GoStmt:
		// A goroutine body runs later, holding nothing.
		for _, arg := range v.Call.Args {
			c.applyExprEffects(arg, st)
		}
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			c.walkStmts(lit.Body.List, newLockState())
		} else {
			c.checkExpr(v.Call.Fun, st)
		}
	case *ast.BlockStmt:
		c.walkStmts(v.List, st)
	case *ast.LabeledStmt:
		c.walkStmt(v.Stmt, st)
	case *ast.IfStmt:
		if v.Init != nil {
			c.walkStmt(v.Init, st)
		}
		c.applyExprEffects(v.Cond, st)
		thenSt := st.clone()
		c.walkStmts(v.Body.List, thenSt)
		elseSt := st.clone()
		if v.Else != nil {
			c.walkStmt(v.Else, elseSt)
		}
		thenSt.merge(elseSt)
		*st = *thenSt
	case *ast.ForStmt:
		if v.Init != nil {
			c.walkStmt(v.Init, st)
		}
		c.applyExprEffects(v.Cond, st)
		body := st.clone()
		if v.Post != nil {
			defer c.walkStmt(v.Post, body)
		}
		c.walkStmts(v.Body.List, body)
		// Loop bodies are assumed lock-balanced; fall-through keeps the
		// entry state.
	case *ast.RangeStmt:
		c.applyExprEffects(v.X, st)
		body := st.clone()
		c.walkStmts(v.Body.List, body)
	case *ast.SwitchStmt:
		if v.Init != nil {
			c.walkStmt(v.Init, st)
		}
		c.applyExprEffects(v.Tag, st)
		c.walkCases(v.Body.List, st, hasDefaultClause(v.Body.List))
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			c.walkStmt(v.Init, st)
		}
		c.walkStmt(v.Assign, st)
		c.walkCases(v.Body.List, st, hasDefaultClause(v.Body.List))
	case *ast.SelectStmt:
		c.walkCases(v.Body.List, st, true)
	}
}

// walkCases interprets switch/select clause bodies, merging the fall-through
// states. Without a default clause the zero-case path keeps the entry state.
func (c *gbChecker) walkCases(clauses []ast.Stmt, st *lockState, exhaustive bool) {
	var merged *lockState
	if !exhaustive {
		merged = st.clone()
	}
	for _, cl := range clauses {
		body := st.clone()
		switch v := cl.(type) {
		case *ast.CaseClause:
			for _, e := range v.List {
				c.applyExprEffects(e, body)
			}
			c.walkStmts(v.Body, body)
		case *ast.CommClause:
			if v.Comm != nil {
				c.walkStmt(v.Comm, body)
			}
			c.walkStmts(v.Body, body)
		}
		if merged == nil {
			merged = body
		} else {
			merged.merge(body)
		}
	}
	if merged != nil {
		*st = *merged
	}
}

func hasDefaultClause(clauses []ast.Stmt) bool {
	for _, cl := range clauses {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
