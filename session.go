package aapsm

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/correct"
	"repro/internal/drc"
	"repro/internal/mask"
	"repro/internal/tshape"
)

// countingFilter wraps a dirty filter so the session can report how many
// constraint checks the incremental scope skipped versus ran.
func countingFilter(f func(int) bool, reused, solved *int) func(int) bool {
	return func(i int) bool {
		if f(i) {
			*solved++
			return true
		}
		*reused++
		return false
	}
}

// scopedCheck runs a per-feature/per-overlap constraint check on an
// incremental session: restricted to the dirty conflict clusters when the
// caller's last clean result is exactly one generation old (then clean
// clusters cannot have regressed), in full otherwise. A clean outcome
// advances *cleanGen; reuse counters are folded into the engine stats via
// note. Shared by assignment verification and mask validation so their
// gating logic cannot drift apart.
func scopedCheck[T any](s *Session, cleanGen *int,
	full func() []T,
	subset func(featDirty, ovDirty func(int) bool) []T,
	note func(reused, solved int) IncrementalStats) []T {
	var out []T
	if fDirty, oDirty, ok := s.inc.DirtyScope(*cleanGen); ok {
		reused, solved := 0, 0
		out = subset(countingFilter(fDirty, &reused, &solved), countingFilter(oDirty, &reused, &solved))
		s.inc.AddReuse(note(reused, solved))
	} else {
		out = full()
	}
	if len(out) == 0 {
		*cleanGen = s.inc.Gen()
	}
	return out
}

// Session drives the paper's pipeline on one layout. Each stage — Detect,
// Assignment, Correction, Mask, DRC — is computed at most once and memoized;
// later stages transparently reuse earlier results, so
//
//	s := eng.NewSession(l)
//	a, _ := s.Assignment(ctx)   // runs detection once
//	c, _ := s.Correction(ctx)   // reuses the detection
//	m, _ := s.Mask(ctx)         // reuses detection and assignment
//
// builds the conflict graph exactly once. A Session is safe for concurrent
// use: stage computation is serialized internally and concurrent callers of
// a computed stage share the memoized value. Stage methods honor ctx
// cancellation down to the matching solver's inner loop; a cancelled attempt
// is NOT memoized, so the stage can be retried with a live context.
//
// A Session also supports in-place layout edits: AddFeature, MoveFeature,
// DeleteFeature, and the batched Edit. The first edit switches the session
// onto a private copy of the layout (the caller's layout is never mutated)
// backed by an incremental detection engine: every edit invalidates the
// memoized stages, and the next Detect re-solves only the conflict clusters
// whose geometric neighborhood the edits touched, reusing cached per-cluster
// results for the rest. Results are bit-identical to a from-scratch
// detection of the edited layout. Edits also clear memoized stage errors, so
// a layout that was ErrNotAssignable can be fixed and re-checked on the same
// session.
//
// The input layout must not be mutated by the caller while the session is in
// use.
type Session struct {
	engine *Engine
	layout *Layout
	// detectWorkers, when positive, overrides the engine's worker bound for
	// this session's detection (DetectBatch divides its budget this way).
	detectWorkers int

	mu sync.Mutex
	// detectRuns and edits count work done, for Stats. Both guarded by mu.
	detectRuns int // guarded by mu
	edits      int // guarded by mu
	// gen counts invalidation epochs: it advances once per mutation batch
	// (Edit) or standalone mutation, so two reads of equal generation are
	// guaranteed to observe the same layout state. Servers use it to key
	// response caches and to tag streamed stage results. Guarded by mu
	// (read via Generation).
	gen int64
	// inc is the incremental edit-and-re-detect engine, armed by the first
	// mutation; once set, s.layout aliases inc.Layout() and detection routes
	// through it. Every downstream stage then reuses along the same conflict
	// clusters: assignment re-colors, verification re-checks, correction
	// re-derives intervals and mask validation re-validates only for dirty
	// clusters; DRC re-probes only edited neighborhoods. Guarded by mu.
	inc *core.Incremental
	// verifyCleanGen / maskCleanGen record the last detection generation at
	// which assignment verification / mask validation completed with zero
	// problems — the precondition for checking only dirty clusters at the
	// next generation. -1 until first established. Both guarded by mu.
	verifyCleanGen int // guarded by mu
	maskCleanGen   int // guarded by mu
	// ivCache holds correction intervals per overlap-pair uid; entries stay
	// valid exactly as long as their uid (both features untouched), and the
	// map is rebuilt from hits on every correction so dead uids age out.
	// Guarded by mu.
	ivCache map[int32]correct.Intervals

	// The memoized stage outcomes. All guarded by mu.
	detect     stage[*Result]        // guarded by mu
	assignment stage[*Assignment]    // guarded by mu
	correction stage[*Correction]    // guarded by mu
	maskView   stage[*Layout]        // guarded by mu
	drcResult  stage[[]DRCViolation] // guarded by mu
	junctions  stage[[]Junction]     // guarded by mu
}

// stage memoizes one pipeline step: its value, or its first non-context
// error.
type stage[T any] struct {
	done bool
	val  T
	err  error
}

// memoLocked returns the cached stage value or computes it with f. The
// session mutex must be held. Context errors are returned but not cached.
func memoLocked[T any](s *Session, st *stage[T], ctx context.Context, fs FlowStage, f func(context.Context) (T, error)) (T, error) {
	if st.done {
		return st.val, st.err
	}
	var zero T
	if err := s.engine.err; err != nil {
		return zero, flowErr(fs, s.layout.Name, err)
	}
	if err := ctx.Err(); err != nil {
		return zero, flowErr(fs, s.layout.Name, err)
	}
	v, err := f(ctx)
	if err != nil {
		err = flowErr(fs, s.layout.Name, err)
		if isContextErr(err) {
			return zero, err // retryable: do not poison the session
		}
		st.done, st.err = true, err
		return zero, err
	}
	st.done, st.val = true, v
	return v, nil
}

// Engine returns the engine this session was created by.
func (s *Session) Engine() *Engine { return s.engine }

// SnapshotLayout returns an independent deep copy of the session's current
// layout, taken atomically with respect to concurrent edits. Unlike Layout,
// the returned value is owned by the caller: it stays valid (and frozen)
// while other goroutines keep editing the session, so it is safe to
// serialize, diff, or hand to another Engine. Long-running services use this
// as the export hook for sessions that never leave the store.
func (s *Session) SnapshotLayout() *Layout {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.layout.Clone()
}

// Layout returns the session's current layout: the input layout until the
// first edit, the session's private edited copy afterwards. Callers must
// treat it as read-only; mutate through the edit methods.
func (s *Session) Layout() *Layout {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.layout
}

// NumFeatures returns the current feature count, read under the session
// lock — safe against concurrent edits, unlike len(Layout().Features).
func (s *Session) NumFeatures() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.layout.Features)
}

// LayoutName returns the layout's name, read under the session lock. Edits
// never change the name, so metadata readers can use this instead of
// cloning the whole layout with SnapshotLayout.
func (s *Session) LayoutName() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.layout.Name
}

// SessionStats reports how much pipeline work a session has actually done.
type SessionStats struct {
	// DetectRuns counts how many times the detection flow executed.
	// Memoization keeps this at most 1 per edit generation: stages share one
	// detection until the next mutation invalidates it.
	DetectRuns int
	// Edits counts accepted layout mutations.
	Edits int
	// Incremental reports the incremental engine's cumulative work profile
	// (shards reused vs re-solved); zero until the session's first edit.
	Incremental IncrementalStats
}

// Generation returns the session's invalidation epoch: it advances once per
// mutation batch (or standalone mutation), never otherwise. Two stage reads
// taken at the same generation reflect the same layout state, which is what
// lets callers coalesce identical read requests or tag streamed results.
func (s *Session) Generation() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Stats returns the session's work counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SessionStats{DetectRuns: s.detectRuns, Edits: s.edits}
	if s.inc != nil {
		st.Incremental = s.inc.Stats()
	}
	return st
}

// ensureEditableLocked arms the incremental engine on the first mutation,
// switching the session onto its own copy of the layout.
func (s *Session) ensureEditableLocked() error {
	if s.inc != nil {
		return nil
	}
	inc, err := core.NewIncremental(s.layout, s.engine.rules, s.engine.opts.Graph, s.engine.opts.coreOptions())
	if err != nil {
		return err
	}
	s.inc = inc
	s.layout = inc.Layout()
	return nil
}

// invalidateLocked drops every memoized stage value and error after a
// mutation. Detection state inside the incremental engine survives — that is
// what makes the next Detect cheap.
func (s *Session) invalidateLocked() {
	s.gen++
	s.detect = stage[*Result]{}
	s.assignment = stage[*Assignment]{}
	s.correction = stage[*Correction]{}
	s.maskView = stage[*Layout]{}
	s.drcResult = stage[[]DRCViolation]{}
	s.junctions = stage[[]Junction]{}
}

// EnableEdits arms the incremental edit engine without mutating the layout.
// Call it before the first Detect of a session that will be edited: that
// detection then populates the per-cluster cache, so the first real edit
// re-detects incrementally instead of from scratch. Without it the engine is
// armed by the first mutation, and a detection memoized before that point
// cannot seed the cache (its per-cluster results were already discarded), so
// the first post-edit Detect runs full. Idempotent; safe at any time.
func (s *Session) EnableEdits() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inc != nil {
		return nil
	}
	if err := s.ensureEditableLocked(); err != nil {
		return flowErr(StageEdit, s.layout.Name, err)
	}
	// A detection memoized before arming did not populate the incremental
	// cache; drop it so the next Detect does.
	s.invalidateLocked()
	return nil
}

// AddFeature appends a feature rectangle on layer 0 and returns its index.
func (s *Session) AddFeature(r Rect) (int, error) {
	return s.AddFeatureOnLayer(r, 0)
}

// AddFeatureOnLayer appends a feature on an explicit layer and returns its
// index.
func (s *Session) AddFeatureOnLayer(r Rect, layer int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureEditableLocked(); err != nil {
		return 0, flowErr(StageEdit, s.layout.Name, err)
	}
	i := s.inc.AddFeature(r, layer)
	s.edits++
	s.invalidateLocked()
	return i, nil
}

// MoveFeature moves (or resizes) feature i to rectangle r.
func (s *Session) MoveFeature(i int, r Rect) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureEditableLocked(); err != nil {
		return flowErr(StageEdit, s.layout.Name, err)
	}
	if err := s.inc.MoveFeature(i, r); err != nil {
		return flowErr(StageEdit, s.layout.Name, err)
	}
	s.edits++
	s.invalidateLocked()
	return nil
}

// DeleteFeature removes feature i; features after it shift down one index,
// as with a slice deletion.
func (s *Session) DeleteFeature(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureEditableLocked(); err != nil {
		return flowErr(StageEdit, s.layout.Name, err)
	}
	if err := s.inc.DeleteFeature(i); err != nil {
		return flowErr(StageEdit, s.layout.Name, err)
	}
	s.edits++
	s.invalidateLocked()
	return nil
}

// LayoutEditor applies a batch of mutations inside Session.Edit. Operations
// apply immediately in call order; after the first failing operation (an
// out-of-range index) the remaining calls are no-ops and Edit returns the
// error. The editor must not escape the Edit callback, and the callback must
// not call other methods of the same Session (the session lock is held).
type LayoutEditor struct {
	s   *Session
	err error
}

// Add appends a feature rectangle on layer 0 and returns its index.
func (ed *LayoutEditor) Add(r Rect) int { return ed.AddOnLayer(r, 0) }

// AddOnLayer appends a feature on an explicit layer and returns its index.
//
//aapsmvet:holds mu Edit holds the session lock for the whole batch
func (ed *LayoutEditor) AddOnLayer(r Rect, layer int) int {
	if ed.err != nil {
		return -1
	}
	i := ed.s.inc.AddFeature(r, layer)
	ed.s.edits++
	return i
}

// Move moves (or resizes) feature i to rectangle r.
//
//aapsmvet:holds mu Edit holds the session lock for the whole batch
func (ed *LayoutEditor) Move(i int, r Rect) {
	if ed.err != nil {
		return
	}
	if err := ed.s.inc.MoveFeature(i, r); err != nil {
		ed.err = err
		return
	}
	ed.s.edits++
}

// Delete removes feature i (later features shift down one index).
//
//aapsmvet:holds mu Edit holds the session lock for the whole batch
func (ed *LayoutEditor) Delete(i int) {
	if ed.err != nil {
		return
	}
	if err := ed.s.inc.DeleteFeature(i); err != nil {
		ed.err = err
		return
	}
	ed.s.edits++
}

// Err returns the first operation error, if any.
func (ed *LayoutEditor) Err() error { return ed.err }

// NumFeatures returns the current feature count, reflecting the operations
// applied so far in this batch.
func (ed *LayoutEditor) NumFeatures() int { return len(ed.s.layout.Features) }

// Feature returns feature i of the current (mid-batch) layout.
func (ed *LayoutEditor) Feature(i int) Feature { return ed.s.layout.Features[i] }

// Edit applies a batch of mutations atomically with respect to other session
// callers: fn runs under the session lock and the memoized stages are
// invalidated once, after the whole batch. The next Detect then re-solves
// only the conflict clusters the batch touched. Edit returns the first
// operation error (a *FlowError at StageEdit); operations before the failure
// remain applied.
func (s *Session) Edit(fn func(*LayoutEditor)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureEditableLocked(); err != nil {
		return flowErr(StageEdit, s.layout.Name, err)
	}
	// Invalidate via defer: ops apply as fn runs, so even a panicking
	// callback must not leave memoized pre-edit stages behind.
	defer s.invalidateLocked()
	ed := &LayoutEditor{s: s}
	fn(ed)
	if ed.err != nil {
		return flowErr(StageEdit, s.layout.Name, ed.err)
	}
	return nil
}

// Detect synthesizes shifters, builds the conflict graph and runs the full
// detection flow of the paper's §3. The result is memoized; concurrent and
// repeated calls share one computation.
func (s *Session) Detect(ctx context.Context) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.detectLocked(ctx)
}

func (s *Session) detectLocked(ctx context.Context) (*Result, error) {
	return memoLocked(s, &s.detect, ctx, StageDetect, func(ctx context.Context) (*Result, error) {
		s.detectRuns++
		workers := s.engine.workers
		if s.detectWorkers > 0 {
			workers = s.detectWorkers
		}
		if s.inc != nil {
			// Edited session: incremental re-detect, reusing every cluster
			// result the edits did not touch.
			s.inc.SetWorkers(workers)
			det, err := s.inc.Detect(ctx)
			if err != nil {
				return nil, err
			}
			return &Result{Graph: det.Graph, Detection: det}, nil
		}
		cg, err := core.BuildGraph(s.layout, s.engine.rules, s.engine.opts.Graph)
		if err != nil {
			return nil, err
		}
		copts := s.engine.opts.coreOptions()
		copts.Workers = workers
		det, err := core.DetectContext(ctx, cg, copts)
		if err != nil {
			return nil, err
		}
		return &Result{Graph: cg, Detection: det}, nil
	})
}

// RequireAssignable runs detection (or reuses it) and returns a typed
// ErrNotAssignable *FlowError when the layout needs repairs, nil when it is
// phase-assignable as drawn.
func (s *Session) RequireAssignable(ctx context.Context) error {
	res, err := s.Detect(ctx)
	if err != nil {
		return err
	}
	if !res.Assignable() {
		return flowErr(StageDetect, s.layout.Name,
			fmt.Errorf("%w: %d conflicts detected", ErrNotAssignable, len(res.Conflicts())))
	}
	return nil
}

// Assignment extracts 0°/180° shifter phases from the (memoized) detection
// result, waiving detected conflicts pending correction, and verifies the
// assignment against all non-waived constraints.
func (s *Session) Assignment(ctx context.Context) (*Assignment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.assignmentLocked(ctx)
}

func (s *Session) assignmentLocked(ctx context.Context) (*Assignment, error) {
	return memoLocked(s, &s.assignment, ctx, StageAssign, func(ctx context.Context) (*Assignment, error) {
		res, err := s.detectLocked(ctx)
		if err != nil {
			return nil, err
		}
		var a *Assignment
		if s.inc != nil {
			// Incremental session: clean clusters keep their cached
			// two-coloring; only dirty clusters are re-colored.
			a, err = s.inc.AssignPhases()
		} else {
			a, err = core.AssignPhases(res.Detection)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNotAssignable, err)
		}
		if v := s.verifyAssignmentLocked(res, a); len(v) != 0 {
			return nil, fmt.Errorf("assignment verification failed: %v", v[0])
		}
		return a, nil
	})
}

// verifyAssignmentLocked checks the assignment against the layout's
// constraints. On an incremental session whose previous generation verified
// clean, only the constraints inside dirty conflict clusters are re-checked:
// clean clusters kept their phases bit-for-bit, so their constraints cannot
// have regressed.
func (s *Session) verifyAssignmentLocked(res *Result, a *Assignment) []Violation {
	if s.inc == nil {
		return a.Verify(res.Graph)
	}
	return scopedCheck(s, &s.verifyCleanGen,
		func() []Violation { return a.Verify(res.Graph) },
		func(fDirty, oDirty func(int) bool) []Violation {
			return a.VerifySubset(res.Graph, fDirty, oDirty)
		},
		func(reused, solved int) IncrementalStats {
			return IncrementalStats{VerifyChecksReused: reused, VerifyChecksSolved: solved}
		})
}

// Correction plans and applies end-to-end spaces fixing every correctable
// conflict found by the (memoized) detection. The session's input layout is
// not modified; the corrected copy is in Correction.Layout. Conflicts that
// spacing cannot fix are listed in Correction.Plan.Unfixable — use
// CorrectedLayout to turn that into a typed error.
func (s *Session) Correction(ctx context.Context) (*Correction, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.correctionLocked(ctx)
}

func (s *Session) correctionLocked(ctx context.Context) (*Correction, error) {
	return memoLocked(s, &s.correction, ctx, StageCorrect, func(ctx context.Context) (*Correction, error) {
		res, err := s.detectLocked(ctx)
		if err != nil {
			return nil, err
		}
		if s.inc != nil {
			return s.buildCorrectionIncremental(res)
		}
		return buildCorrection(s.layout, s.engine.rules, res)
	})
}

// buildCorrectionIncremental is buildCorrection for an incremental session:
// per-conflict correction intervals are cached under the conflict's stable
// overlap-pair uid (valid exactly while both features are untouched), and cut
// legality is answered from the span indexes the engine maintains across
// edits instead of a fresh per-plan feature scan. The resulting plan is
// bit-identical to the from-scratch one — both paths share every decision
// procedure in correct.BuildPlanIntervals.
func (s *Session) buildCorrectionIncremental(res *Result) (*Correction, error) {
	conflicts := res.Detection.FinalConflicts
	ivsets := make([]correct.Intervals, len(conflicts))
	newCache := make(map[int32]correct.Intervals, len(conflicts))
	reused, solved := 0, 0
	for i, c := range conflicts {
		if c.Meta.Kind == core.OverlapEdge {
			if uid, ok := s.inc.OverlapUID(c.Meta.Overlap); ok {
				if iv, hit := s.ivCache[uid]; hit {
					ivsets[i] = iv
					newCache[uid] = iv
					reused++
					continue
				}
				iv := correct.IntervalsFor(s.layout, s.engine.rules, res.Graph.Set, c)
				ivsets[i] = iv
				newCache[uid] = iv
				solved++
				continue
			}
		}
		ivsets[i] = correct.IntervalsFor(s.layout, s.engine.rules, res.Graph.Set, c)
		solved++
	}
	s.ivCache = newCache
	s.inc.AddReuse(IncrementalStats{CorrIntervalsReused: reused, CorrIntervalsSolved: solved})
	plan, err := correct.BuildPlanIntervals(conflicts, ivsets, func(dir correct.Direction, pos int64) bool {
		return s.inc.CutValid(dir == correct.VerticalCut, pos)
	})
	if err != nil {
		return nil, err
	}
	mod := correct.Apply(s.layout, plan)
	return &Correction{Plan: plan, Layout: mod, Stats: correct.Summarize(s.layout, plan, mod)}, nil
}

// CorrectedLayout returns the fully corrected, phase-assignable layout. It
// fails with a *FlowError wrapping ErrUnfixable when some conflicts cannot
// be fixed by end-to-end spacing alone (route those to widening or mask
// splitting via PlanWidening).
func (s *Session) CorrectedLayout(ctx context.Context) (*Layout, error) {
	cor, err := s.Correction(ctx)
	if err != nil {
		return nil, err
	}
	if n := len(cor.Plan.Unfixable); n != 0 {
		return nil, flowErr(StageCorrect, s.layout.Name,
			fmt.Errorf("%w: %d conflicts remain", ErrUnfixable, n))
	}
	return cor.Layout, nil
}

// Mask validates and builds the multi-layer manufacturing view (chrome +
// 0°/180° aperture layers) from the memoized detection and assignment; the
// result is suitable for WriteGDS. Validation problems surface as a
// *FlowError wrapping ErrMaskInconsistent.
func (s *Session) Mask(ctx context.Context) (*Layout, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return memoLocked(s, &s.maskView, ctx, StageMask, func(ctx context.Context) (*Layout, error) {
		res, err := s.detectLocked(ctx)
		if err != nil {
			return nil, err
		}
		a, err := s.assignmentLocked(ctx)
		if err != nil {
			return nil, err
		}
		if p := s.validateMaskLocked(res, a); len(p) != 0 {
			return nil, fmt.Errorf("%w: %s", ErrMaskInconsistent, p[0])
		}
		return mask.Build(s.layout, res.Graph.Set, a.Phases, s.engine.rules.Tone)
	})
}

// validateMaskLocked checks the mask view's phase consistency. On an
// incremental session whose previous generation validated clean, only the
// features and overlaps in dirty conflict clusters are re-checked — phases
// and waivers in clean clusters are unchanged, so a clean verdict there
// still stands.
func (s *Session) validateMaskLocked(res *Result, a *Assignment) []string {
	if s.inc == nil {
		return mask.Validate(s.layout, res.Graph.Set, a.Phases, a.Waived, s.engine.rules)
	}
	return scopedCheck(s, &s.maskCleanGen,
		func() []string {
			return mask.Validate(s.layout, res.Graph.Set, a.Phases, a.Waived, s.engine.rules)
		},
		func(fDirty, oDirty func(int) bool) []string {
			return mask.ValidateSubset(s.layout, res.Graph.Set, a.Phases, a.Waived, s.engine.rules, fDirty, oDirty)
		},
		func(reused, solved int) IncrementalStats {
			return IncrementalStats{MaskChecksReused: reused, MaskChecksSolved: solved}
		})
}

// DRC runs the design-rule checks on the session's current layout
// (memoized). On an incremental session the violating spacing pairs are
// cached across edits and only edited neighborhoods are re-probed; the
// result is bit-identical to a from-scratch drc.Check.
func (s *Session) DRC() []DRCViolation {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.drcResult.done {
		if s.inc != nil {
			s.drcResult.val = s.inc.DRC()
		} else {
			s.drcResult.val = drc.Check(s.layout, s.engine.rules)
		}
		s.drcResult.done = true
	}
	return s.drcResult.val
}

// Junctions locates all touching-feature junctions in the layout (memoized).
func (s *Session) Junctions() []Junction {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.junctions.done {
		s.junctions.val = tshape.Find(s.layout)
		s.junctions.done = true
	}
	return s.junctions.val
}

// RenderSVG draws the layout with the session's detection and assignment
// overlays (computing them if needed, reusing them otherwise). If the
// correction stage has already run, its cut lines are drawn too. The output
// itself is not memoized: every call writes a fresh document to w.
func (s *Session) RenderSVG(ctx context.Context, w io.Writer) error {
	// Compute (or fetch) the overlays and snapshot the layout under the
	// session lock, but write outside it: stage results are immutable once
	// memoized, and a slow w must not block other goroutines' stage calls.
	// The layout itself is NOT immutable — an edited session mutates it in
	// place — so rendering must work from a copy taken under the lock, or a
	// concurrent edit would race with the feature scan.
	s.mu.Lock()
	res, err := s.detectLocked(ctx)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	a, err := s.assignmentLocked(ctx)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	opt := RenderOptions{Result: res, Assignment: a}
	if s.correction.done && s.correction.err == nil {
		opt.Plan = s.correction.val.Plan
	}
	lay := s.layout.Clone()
	s.mu.Unlock()
	if err := RenderSVG(w, lay, opt); err != nil {
		return flowErr(StageRender, lay.Name, err)
	}
	return nil
}

// buildCorrection is the shared correction step used by Session.Correction
// and the deprecated top-level Correct.
func buildCorrection(l *Layout, rules Rules, r *Result) (*Correction, error) {
	plan, err := correct.BuildPlan(l, rules, r.Graph.Set, r.Detection.FinalConflicts)
	if err != nil {
		return nil, err
	}
	mod := correct.Apply(l, plan)
	return &Correction{Plan: plan, Layout: mod, Stats: correct.Summarize(l, plan, mod)}, nil
}
