package lint

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// goldenCases maps each testdata/src package to the synthetic import path it
// is loaded under. The paths place each package in the scope its analyzer
// targets: pipeline packages for determinism/ctxflow, the module root for
// the flowerror API-boundary rules, internal/server for metricsname.
var goldenCases = []struct {
	dir  string
	path string
}{
	{"determ", "repro/internal/graph"},
	{"guard", "repro/internal/guard"},
	{"ctx", "repro/internal/core"},
	{"flowapi", "repro"},
	{"metrics", "repro/internal/server"},
}

// TestGolden runs the full suite over each golden package and matches the
// diagnostics against `// want` annotations, analysistest-style: every
// diagnostic must be expected by a regexp on its line, and every expectation
// must be met. Each golden package carries at least one positive and one
// negative case for its analyzer.
func TestGolden(t *testing.T) {
	loader := NewLoader()
	for _, c := range goldenCases {
		t.Run(c.dir, func(t *testing.T) {
			pkg, err := loader.Load(filepath.Join("testdata", "src", c.dir), c.path)
			if err != nil {
				t.Fatal(err)
			}
			checkWants(t, pkg, RunAll(pkg))
		})
	}
}

type wantKey struct {
	file string
	line int
}

// wantPatternRE extracts the quoted or backquoted regexps of a want comment.
var wantPatternRE = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

// parseWants collects `// want "re" ...` annotations per (file, line).
func parseWants(t *testing.T, pkg *Package) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				raw := wantPatternRE.FindAllString(rest, -1)
				if len(raw) == 0 {
					t.Fatalf("%s:%d: want comment without a quoted pattern", pos.Filename, pos.Line)
				}
				k := wantKey{pos.Filename, pos.Line}
				for _, q := range raw {
					re, err := regexp.Compile(q[1 : len(q)-1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	return wants
}

// checkWants matches diagnostics against want annotations one-to-one.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := parseWants(t, pkg)
	matched := map[wantKey][]bool{}
	for _, d := range diags {
		k := wantKey{d.Pos.Filename, d.Pos.Line}
		found := false
		for i, re := range wants[k] {
			if matched[k] == nil {
				matched[k] = make([]bool, len(wants[k]))
			}
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if matched[k] == nil || !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// TestSuppression checks the allow-directive machinery end to end: a
// reasoned allow silences its finding, a reasonless allow is itself a
// diagnostic, and an allow naming an unknown analyzer is a diagnostic.
func TestSuppression(t *testing.T) {
	pkg, err := NewLoader().Load(filepath.Join("testdata", "src", "suppress"), "repro/internal/graph")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAll(pkg)
	var missingReason, unknown int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "missing a reason"):
			missingReason++
		case strings.Contains(d.Message, `unknown analyzer "nosuchanalyzer"`):
			unknown++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if missingReason != 1 {
		t.Errorf("got %d missing-reason diagnostics, want 1", missingReason)
	}
	if unknown != 1 {
		t.Errorf("got %d unknown-analyzer diagnostics, want 1", unknown)
	}
}

// TestSuppressionRequiresDirective is the inverse of the suppress golden: the
// same code without its allow directive must produce the determinism finding.
// Together with TestRepoLintClean this pins the acceptance property that
// deleting an allow comment (or a guarding sort) turns the build red.
func TestSuppressionRequiresDirective(t *testing.T) {
	pkg, err := NewLoader().Load(filepath.Join("testdata", "src", "determ"), "repro/internal/graph")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range RunAnalyzer(DeterminismAnalyzer, pkg) {
		if strings.Contains(d.Message, "append to out inside range over map") {
			found = true
		}
	}
	if !found {
		t.Fatal("determinism analyzer no longer flags un-suppressed, unsorted map-range appends")
	}
}

// TestRepoLintClean runs every analyzer over every package of the module and
// requires zero findings: the repo must stay lint-clean, with every accepted
// exception carried by a reasoned allow directive. This is the `go test`
// half of the aapsmvet CI gate.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo typecheck is slow; run without -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := RepoPackages(root)
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader()
	for _, p := range pkgs {
		pkg, err := loader.Load(p[0], p[1])
		if err != nil {
			t.Fatalf("load %s: %v", p[1], err)
		}
		for _, d := range RunAll(pkg) {
			t.Errorf("%s", d)
		}
	}
}

// TestDirectiveParsing pins the directive grammar the suite documents.
func TestDirectiveParsing(t *testing.T) {
	pkg, err := NewLoader().Load(filepath.Join("testdata", "src", "suppress"), "repro/internal/graph")
	if err != nil {
		t.Fatal(err)
	}
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	if len(dirs) != 3 {
		t.Fatalf("parsed %d directives, want 3", len(dirs))
	}
	byAnalyzer := map[string]directive{}
	for _, d := range dirs {
		if d.kind != "allow" {
			t.Errorf("directive kind = %q, want allow", d.kind)
		}
		byAnalyzer[d.analyzer] = d
	}
	if d := byAnalyzer["nosuchanalyzer"]; d.reason == "" {
		t.Error("unknown-analyzer directive lost its reason")
	}
	var fns []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				fns = append(fns, fn)
			}
		}
	}
	if len(fns) == 0 {
		t.Fatal("no functions parsed from suppress golden")
	}
}
