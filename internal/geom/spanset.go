package geom

import (
	"slices"
	"sort"
)

// SpanSet is a multiset of 1-D spans supporting stabbing queries of the form
// "does any span (lo, hi] contain pos" under incremental insert and remove.
// Like Grid, it keeps sorted base arrays plus pending mutation logs folded in
// on the first query after a change, so a long-lived set mutated by an edit
// stream pays one O(n) merge per query generation instead of a full re-sort,
// and a one-shot build-then-query caller pays a single sort.
//
// The layout-correction step uses one SpanSet per cut direction to decide
// whether an end-to-end cut position would stretch a feature's width: the
// from-scratch planner builds the sets once per plan, while the incremental
// engine keeps them alive across session edits.
//
// The zero SpanSet is empty and ready to use.
type SpanSet struct {
	starts sortedLog // span low ends
	ends   sortedLog // span high ends
}

// Insert adds the span [lo, hi].
func (s *SpanSet) Insert(lo, hi int64) {
	s.starts.insert(lo)
	s.ends.insert(hi)
}

// Remove cancels one previous Insert(lo, hi). Removing a span that was never
// inserted leaves the set in an unspecified (but safe) state; callers are
// expected to pair removes with inserts exactly.
func (s *SpanSet) Remove(lo, hi int64) {
	s.starts.remove(lo)
	s.ends.remove(hi)
}

// Stab reports whether any span (lo, hi] contains pos, i.e. lo < pos <= hi.
func (s *SpanSet) Stab(pos int64) bool {
	// Spans with lo < pos, minus those already closed (hi < pos), are exactly
	// the spans whose half-open interval (lo, hi] contains pos.
	return s.starts.countLess(pos) > s.ends.countLess(pos)
}

// Len returns the number of spans in the set.
func (s *SpanSet) Len() int { return s.starts.len() }

// sortedLog is a multiset of int64 values: a sorted base plus pending
// insert/remove logs merged in lazily (the Grid pattern in one dimension).
type sortedLog struct {
	base []int64 // sorted
	adds []int64 // pending inserts, unsorted
	dels []int64 // pending removes, unsorted
}

func (c *sortedLog) insert(v int64) {
	c.adds = append(c.adds, v)
	c.maybeCompact()
}

func (c *sortedLog) remove(v int64) {
	c.dels = append(c.dels, v)
	c.maybeCompact()
}

// spanCompactMinPending is the pending-log size below which mutations never
// trigger a compaction, so one-shot build-then-query callers still pay a
// single sort at the first query.
const spanCompactMinPending = 1 << 9

// maybeCompact folds the pending logs into the base once they grow past a
// threshold — the Grid.maybeCompact guard in one dimension. Without it a
// long-lived set mutated by an edit stream that never queries (an aapsmd
// session that edits and detects but never corrects) would accumulate an
// unbounded log, since only queries call build.
func (c *sortedLog) maybeCompact() {
	pending := len(c.adds) + len(c.dels)
	if pending >= spanCompactMinPending && pending >= len(c.base)/4 {
		c.build()
	}
}

func (c *sortedLog) len() int {
	c.build()
	return len(c.base)
}

// countLess returns the number of values strictly below v.
func (c *sortedLog) countLess(v int64) int {
	c.build()
	return sort.Search(len(c.base), func(i int) bool { return c.base[i] >= v })
}

// build folds the pending logs into the sorted base; each pending remove
// cancels one equal live value.
func (c *sortedLog) build() {
	if len(c.adds) == 0 && len(c.dels) == 0 {
		return
	}
	slices.Sort(c.adds)
	if len(c.dels) == 0 && len(c.base) == 0 {
		c.base, c.adds = c.adds, nil
		return
	}
	slices.Sort(c.dels)
	merged := make([]int64, 0, len(c.base)+len(c.adds))
	bi, ai, di := 0, 0, 0
	for bi < len(c.base) || ai < len(c.adds) {
		var v int64
		if bi < len(c.base) && (ai >= len(c.adds) || c.base[bi] <= c.adds[ai]) {
			v = c.base[bi]
			bi++
		} else {
			v = c.adds[ai]
			ai++
		}
		for di < len(c.dels) && c.dels[di] < v {
			di++
		}
		if di < len(c.dels) && c.dels[di] == v {
			di++
			continue
		}
		merged = append(merged, v)
	}
	c.base, c.adds, c.dels = merged, nil, nil
}
