package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/core"
	"repro/internal/correct"
	"repro/internal/layout"
	"repro/internal/tjoin"
)

// Snapshot wire format (all integers little-endian, fixed width):
//
//	magic   [8]byte  "AAPSMSNP"
//	version uint16   (currently 2)
//	payload          sections in SessionState field order
//	crc32   uint32   IEEE checksum of everything before it
//
// Slices are a uint32 count followed by the elements; the decoder bounds
// every count by the bytes actually remaining before allocating, so a
// truncated or hostile length field fails cleanly instead of ballooning
// memory. Decode never panics on malformed input (FuzzSnapshotDecode).

var snapMagic = [8]byte{'A', 'A', 'P', 'S', 'M', 'S', 'N', 'P'}

// Version is the current snapshot format version. Bump on any wire change;
// decoders reject other versions with ErrVersion.
//
// Version 2 added the rules tone, the engine's profile name, feature polygon
// groups, the layout hierarchy sidecar, and the hierarchy-reuse counters in
// both stats blocks.
const Version uint16 = 2

var (
	// ErrCorrupt marks a snapshot that failed structural or checksum
	// validation.
	ErrCorrupt = errors.New("persist: corrupt snapshot")
	// ErrVersion marks a snapshot written by an incompatible format version.
	ErrVersion = errors.New("persist: unsupported snapshot version")
)

// Encode serializes a session state. Encoding is deterministic: the same
// state always yields the same bytes (map-derived slices are sorted by the
// exporters).
func Encode(st *SessionState) []byte {
	var w writer
	w.buf = append(w.buf, snapMagic[:]...)
	w.u16(Version)

	r := st.Rules
	for _, v := range [8]int64{r.CriticalWidth, r.ShifterWidth, r.ShifterGap,
		r.MinShifterSpacing, r.MinFeatureWidth, r.MinFeatureSpacing, r.FeatureConflictWeight,
		int64(r.Tone)} {
		w.i64(v)
	}
	w.u8(uint8(st.Kind))
	w.u8(uint8(st.Opt.TJoin.Method))
	w.i64(int64(st.Opt.TJoin.GroupCap))
	w.u8(uint8(st.Opt.Recheck))
	w.str(st.Profile)

	w.i64(int64(st.DetectRuns))
	w.i64(int64(st.Edits))
	w.i64(int64(st.VerifyCleanGen))
	w.i64(int64(st.MaskCleanGen))
	w.u8(st.Memo)

	w.u32(uint32(len(st.IvKeys)))
	for i, k := range st.IvKeys {
		w.i32(k)
		w.intervals(st.IvVals[i])
	}

	if st.Inc == nil {
		w.u8(0)
	} else {
		w.u8(1)
		w.incState(st.Inc)
	}

	sum := crc32.ChecksumIEEE(w.buf)
	w.u32(sum)
	return w.buf
}

// Validate cheaply checks a snapshot's envelope — length, magic, trailing
// checksum, version — without decoding the payload. It reports ErrCorrupt
// for truncated or bit-flipped data (what a crash mid-write or disk rot
// leaves behind) and ErrVersion for an intact snapshot from another format
// version. The DiskStore startup sweep uses it to tell crash debris (safe to
// delete) from snapshots another build could still read (kept).
func Validate(data []byte) error {
	if len(data) < len(snapMagic)+2+4 {
		return fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrCorrupt, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	var magic [8]byte
	copy(magic[:], body)
	if magic != snapMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(body[len(snapMagic):]); v != Version {
		return fmt.Errorf("%w: %d (this build reads %d)", ErrVersion, v, Version)
	}
	return nil
}

// Decode parses a snapshot, verifying magic, version and checksum. Errors
// wrap ErrVersion for a version mismatch and ErrCorrupt for everything else.
func Decode(data []byte) (*SessionState, error) {
	if len(data) < len(snapMagic)+2+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrCorrupt, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	rd := &reader{buf: body}
	var magic [8]byte
	copy(magic[:], rd.bytes(8))
	if magic != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := rd.u16(); v != Version {
		return nil, fmt.Errorf("%w: %d (this build reads %d)", ErrVersion, v, Version)
	}

	st := &SessionState{}
	st.Rules = layout.Rules{
		CriticalWidth:         rd.i64(),
		ShifterWidth:          rd.i64(),
		ShifterGap:            rd.i64(),
		MinShifterSpacing:     rd.i64(),
		MinFeatureWidth:       rd.i64(),
		MinFeatureSpacing:     rd.i64(),
		FeatureConflictWeight: rd.i64(),
		Tone:                  layout.Tone(rd.i64()),
	}
	st.Kind = core.GraphKind(rd.u8())
	st.Opt.TJoin.Method = tjoin.Method(rd.u8())
	st.Opt.TJoin.GroupCap = int(rd.i64())
	st.Opt.Recheck = core.RecheckMode(rd.u8())
	st.Profile = rd.str()

	st.DetectRuns = int(rd.i64())
	st.Edits = int(rd.i64())
	st.VerifyCleanGen = int(rd.i64())
	st.MaskCleanGen = int(rd.i64())
	st.Memo = rd.u8()

	nIv := rd.sliceLen(4 + 2*(3*8+1))
	st.IvKeys = sliceCap[int32](nIv)
	st.IvVals = sliceCap[correct.Intervals](nIv)
	for i := 0; i < nIv; i++ {
		st.IvKeys = append(st.IvKeys, rd.i32())
		st.IvVals = append(st.IvVals, rd.intervals())
	}

	if rd.u8() != 0 {
		st.Inc = rd.incState()
	}
	if rd.err != nil {
		return nil, rd.err
	}
	if rd.pos != len(rd.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rd.buf)-rd.pos)
	}
	return st, nil
}

// ---- writer ----

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) i32(v int32)  { w.u32(uint32(v)) }
func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) i32s(xs []int32) {
	w.u32(uint32(len(xs)))
	for _, x := range xs {
		w.i32(x)
	}
}

func (w *writer) intervals(iv correct.Intervals) {
	for _, ax := range [2]correct.AxisCut{iv.V, iv.H} {
		w.i64(ax.Lo)
		w.i64(ax.Hi)
		w.i64(ax.Need)
		w.bool(ax.OK)
	}
}

func (w *writer) incState(inc *core.IncrementalState) {
	w.str(inc.LayoutName)
	w.u32(uint32(len(inc.Features)))
	for _, f := range inc.Features {
		w.i64(f.Rect.X0)
		w.i64(f.Rect.Y0)
		w.i64(f.Rect.X1)
		w.i64(f.Rect.Y1)
		w.i64(int64(f.Layer))
		w.i64(int64(f.Group))
	}
	w.u32(uint32(len(inc.HierCells)))
	for _, c := range inc.HierCells {
		w.str(c)
	}
	w.i32s(inc.HierPlacementCell)
	w.i32s(inc.HierFeatureInstance)
	w.i32s(inc.FeatUID)
	w.i32(inc.NextUID)
	w.i32(inc.NextOvUID)
	w.u32(uint32(len(inc.Pairs)))
	for _, p := range inc.Pairs {
		w.i32(p.UIDA)
		w.i32(p.UIDB)
		w.u8(p.SideA)
		w.u8(p.SideB)
		w.i64(p.Deficit)
		w.i32(p.UID)
	}
	w.i32s(inc.DirtyUIDs)
	w.i32s(inc.DeletedUIDs)
	w.i64(int64(inc.Gen))

	w.bool(inc.HasPrev)
	if inc.HasPrev {
		w.u32(uint32(len(inc.CrossPairs)))
		for _, p := range inc.CrossPairs {
			w.i32(p[0])
			w.i32(p[1])
		}
		w.i32(int32(inc.NShards))
		w.u32(uint32(len(inc.Shards)))
		for _, sh := range inc.Shards {
			if sh == nil {
				w.u8(0)
				continue
			}
			w.u8(1)
			w.i32s(sh.Removed)
			w.i32s(sh.Bipart)
			w.i32s(sh.Final)
			for _, v := range [5]int{sh.DualNodes, sh.DualEdges, sh.OddFaces, sh.GadgetNodes, sh.GadgetEdges} {
				w.i64(int64(v))
			}
		}
		w.u32(uint32(len(inc.DirtyCluster)))
		for _, d := range inc.DirtyCluster {
			w.bool(d)
		}
		w.bool(inc.HasNewToOld)
		w.i32s(inc.NewToOldNode)
		w.detStats(inc.DetStats)
	}

	w.i64(int64(inc.AssignGen))
	w.u32(uint32(len(inc.PrevColors)))
	for _, c := range inc.PrevColors {
		w.u8(uint8(c))
	}
	w.bool(inc.DRCReady)
	w.u32(uint32(len(inc.DRCPairs)))
	for _, p := range inc.DRCPairs {
		w.u64(p)
	}
	w.i32s(inc.DRCDirtyUIDs)
	w.i32s(inc.DRCDelUIDs)
	w.incStats(inc.Stats)
}

func (w *writer) detStats(s core.Stats) {
	for _, v := range [14]int{s.GraphNodes, s.GraphEdges, s.CrossingPairs,
		s.DualNodes, s.DualEdges, s.OddFaces, s.GadgetNodes, s.GadgetEdges,
		s.Shards, s.ReusedShards, s.LargestShardEdges,
		s.HierReusedShards, s.HierSolvedShards, s.HierFallbackShards} {
		w.i64(int64(v))
	}
	for _, d := range [6]time.Duration{s.CrossTime, s.PlanarTime, s.EmbedTime,
		s.MatchTime, s.RecheckTime, s.TotalTime} {
		w.i64(int64(d))
	}
}

func (w *writer) incStats(s core.IncStats) {
	for _, v := range [19]int{s.Edits, s.Detects, s.FullDetects,
		s.ShardsReused, s.ShardsSolved, s.FallbackDirty,
		s.HierClustersReused, s.HierClustersSolved, s.HierFallbackClusters,
		s.AssignClustersReused, s.AssignClustersSolved,
		s.VerifyChecksReused, s.VerifyChecksSolved,
		s.CorrIntervalsReused, s.CorrIntervalsSolved,
		s.MaskChecksReused, s.MaskChecksSolved,
		s.DRCPairsReused, s.DRCPairsSolved} {
		w.i64(int64(v))
	}
}

// ---- reader ----

// reader consumes the payload with sticky-error semantics: after the first
// structural problem every accessor returns zero values, so decode paths
// need no per-read error plumbing and malformed input cannot panic.
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.fail("truncated at offset %d (want %d more bytes)", r.pos, n)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i64() int64 { return int64(r.u64()) }
func (r *reader) i32() int32 { return int32(r.u32()) }

func (r *reader) bool() bool { return r.u8() != 0 }

// sliceCap pre-sizes a decode target, keeping zero-length slices nil so a
// round trip through the codec is DeepEqual-exact, not just semantically
// equal.
func sliceCap[T any](n int) []T {
	if n == 0 {
		return nil
	}
	return make([]T, 0, n)
}

// sliceLen reads a count and bounds it by the bytes remaining given a
// minimum element size, so hostile counts cannot drive huge allocations.
func (r *reader) sliceLen(minElem int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*minElem > len(r.buf)-r.pos {
		r.fail("slice of %d elements exceeds %d remaining bytes", n, len(r.buf)-r.pos)
		return 0
	}
	return n
}

func (r *reader) str() string {
	n := r.sliceLen(1)
	return string(r.bytes(n))
}

func (r *reader) i32s() []int32 {
	n := r.sliceLen(4)
	out := sliceCap[int32](n)
	for i := 0; i < n; i++ {
		out = append(out, r.i32())
	}
	return out
}

func (r *reader) intervals() correct.Intervals {
	var iv correct.Intervals
	for _, ax := range [2]*correct.AxisCut{&iv.V, &iv.H} {
		ax.Lo = r.i64()
		ax.Hi = r.i64()
		ax.Need = r.i64()
		ax.OK = r.bool()
	}
	return iv
}

func (r *reader) incState() *core.IncrementalState {
	inc := &core.IncrementalState{}
	inc.LayoutName = r.str()
	nf := r.sliceLen(6 * 8)
	inc.Features = sliceCap[layout.Feature](nf)
	for i := 0; i < nf; i++ {
		var f layout.Feature
		f.Rect.X0 = r.i64()
		f.Rect.Y0 = r.i64()
		f.Rect.X1 = r.i64()
		f.Rect.Y1 = r.i64()
		f.Layer = int(r.i64())
		f.Group = int(r.i64())
		inc.Features = append(inc.Features, f)
	}
	nhc := r.sliceLen(4)
	inc.HierCells = sliceCap[string](nhc)
	for i := 0; i < nhc; i++ {
		inc.HierCells = append(inc.HierCells, r.str())
	}
	inc.HierPlacementCell = r.i32s()
	inc.HierFeatureInstance = r.i32s()
	inc.FeatUID = r.i32s()
	inc.NextUID = r.i32()
	inc.NextOvUID = r.i32()
	np := r.sliceLen(4 + 4 + 1 + 1 + 8 + 4)
	inc.Pairs = sliceCap[core.PairRecState](np)
	for i := 0; i < np; i++ {
		var p core.PairRecState
		p.UIDA = r.i32()
		p.UIDB = r.i32()
		p.SideA = r.u8()
		p.SideB = r.u8()
		p.Deficit = r.i64()
		p.UID = r.i32()
		inc.Pairs = append(inc.Pairs, p)
	}
	inc.DirtyUIDs = r.i32s()
	inc.DeletedUIDs = r.i32s()
	inc.Gen = int(r.i64())

	inc.HasPrev = r.bool()
	if inc.HasPrev {
		nc := r.sliceLen(8)
		inc.CrossPairs = sliceCap[[2]int32](nc)
		for i := 0; i < nc; i++ {
			inc.CrossPairs = append(inc.CrossPairs, [2]int32{r.i32(), r.i32()})
		}
		inc.NShards = int(r.i32())
		ns := r.sliceLen(1)
		inc.Shards = sliceCap[*core.ShardState](ns)
		for i := 0; i < ns; i++ {
			if !r.bool() {
				inc.Shards = append(inc.Shards, nil)
				continue
			}
			sh := &core.ShardState{}
			sh.Removed = r.i32s()
			sh.Bipart = r.i32s()
			sh.Final = r.i32s()
			sh.DualNodes = int(r.i64())
			sh.DualEdges = int(r.i64())
			sh.OddFaces = int(r.i64())
			sh.GadgetNodes = int(r.i64())
			sh.GadgetEdges = int(r.i64())
			inc.Shards = append(inc.Shards, sh)
		}
		nd := r.sliceLen(1)
		inc.DirtyCluster = sliceCap[bool](nd)
		for i := 0; i < nd; i++ {
			inc.DirtyCluster = append(inc.DirtyCluster, r.bool())
		}
		inc.HasNewToOld = r.bool()
		inc.NewToOldNode = r.i32s()
		inc.DetStats = r.detStats()
	}

	inc.AssignGen = int(r.i64())
	npc := r.sliceLen(1)
	inc.PrevColors = sliceCap[int8](npc)
	for i := 0; i < npc; i++ {
		inc.PrevColors = append(inc.PrevColors, int8(r.u8()))
	}
	inc.DRCReady = r.bool()
	ndp := r.sliceLen(8)
	inc.DRCPairs = sliceCap[uint64](ndp)
	for i := 0; i < ndp; i++ {
		inc.DRCPairs = append(inc.DRCPairs, r.u64())
	}
	inc.DRCDirtyUIDs = r.i32s()
	inc.DRCDelUIDs = r.i32s()
	inc.Stats = r.incStats()
	return inc
}

func (r *reader) detStats() core.Stats {
	var s core.Stats
	for _, p := range [14]*int{&s.GraphNodes, &s.GraphEdges, &s.CrossingPairs,
		&s.DualNodes, &s.DualEdges, &s.OddFaces, &s.GadgetNodes, &s.GadgetEdges,
		&s.Shards, &s.ReusedShards, &s.LargestShardEdges,
		&s.HierReusedShards, &s.HierSolvedShards, &s.HierFallbackShards} {
		*p = int(r.i64())
	}
	for _, p := range [6]*time.Duration{&s.CrossTime, &s.PlanarTime, &s.EmbedTime,
		&s.MatchTime, &s.RecheckTime, &s.TotalTime} {
		*p = time.Duration(r.i64())
	}
	return s
}

func (r *reader) incStats() core.IncStats {
	var s core.IncStats
	for _, p := range [19]*int{&s.Edits, &s.Detects, &s.FullDetects,
		&s.ShardsReused, &s.ShardsSolved, &s.FallbackDirty,
		&s.HierClustersReused, &s.HierClustersSolved, &s.HierFallbackClusters,
		&s.AssignClustersReused, &s.AssignClustersSolved,
		&s.VerifyChecksReused, &s.VerifyChecksSolved,
		&s.CorrIntervalsReused, &s.CorrIntervalsSolved,
		&s.MaskChecksReused, &s.MaskChecksSolved,
		&s.DRCPairsReused, &s.DRCPairsSolved} {
		*p = int(r.i64())
	}
	return s
}
