// Package geom provides exact integer rectilinear geometry primitives used
// throughout the AAPSM flow: points, axis-aligned rectangles, line segments,
// interval algebra and orientation predicates.
//
// All coordinates are int64 nanometers. Every predicate is exact: orientation
// tests are evaluated with int64 cross products, which cannot overflow for
// coordinates below 2^31 in magnitude (a 2-meter die side), far beyond any
// realistic layout extent.
package geom

import "fmt"

// Point is a location in the layout plane, in nanometers.
type Point struct {
	X, Y int64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int64) Point { return Point{x, y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Cross returns the z component of the cross product p × q.
func (p Point) Cross(q Point) int64 { return p.X*q.Y - p.Y*q.X }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) int64 { return p.X*q.X + p.Y*q.Y }

// Less orders points lexicographically by (X, Y).
func (p Point) Less(q Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Orientation classifies the turn a→b→c.
// It returns +1 for a counter-clockwise turn, -1 for clockwise, 0 for
// collinear points.
func Orientation(a, b, c Point) int {
	v := b.Sub(a).Cross(c.Sub(a))
	switch {
	case v > 0:
		return +1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Rect is an axis-aligned rectangle with inclusive-exclusive style extents:
// it spans [X0,X1) × [Y0,Y1) conceptually, but all geometric tests in this
// package treat it as the closed region [X0,X1] × [Y0,Y1] because layout
// design rules are expressed on closed shapes. Invariant: X0 <= X1, Y0 <= Y1.
type Rect struct {
	X0, Y0, X1, Y1 int64
}

// R builds a rectangle from two corner coordinates in any order.
func R(x0, y0, x1, y1 int64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// Width returns the horizontal extent.
func (r Rect) Width() int64 { return r.X1 - r.X0 }

// Height returns the vertical extent.
func (r Rect) Height() int64 { return r.Y1 - r.Y0 }

// MinDim returns the smaller of width and height — the "drawn width" used to
// classify critical features.
func (r Rect) MinDim() int64 {
	w, h := r.Width(), r.Height()
	if w < h {
		return w
	}
	return h
}

// MaxDim returns the larger of width and height.
func (r Rect) MaxDim() int64 {
	w, h := r.Width(), r.Height()
	if w > h {
		return w
	}
	return h
}

// Area returns the rectangle area in nm².
func (r Rect) Area() int64 { return r.Width() * r.Height() }

// Empty reports whether the rectangle has zero area.
func (r Rect) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// Center returns the center point, rounded toward negative infinity.
// Center rounds halves toward negative infinity (arithmetic shift), not
// toward zero: floor((v+2t)>>1) == (v>>1)+t, so centers translate with the
// rectangle even across the origin. The hierarchy fast path's cluster
// signatures rely on this covariance.
func (r Rect) Center() Point { return Point{(r.X0 + r.X1) >> 1, (r.Y0 + r.Y1) >> 1} }

// Contains reports whether p lies in the closed rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// Translate returns r shifted by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.X0 + d.X, r.Y0 + d.Y, r.X1 + d.X, r.Y1 + d.Y}
}

// Intersects reports whether the closed rectangles share at least a point.
func (r Rect) Intersects(s Rect) bool {
	return r.X0 <= s.X1 && s.X0 <= r.X1 && r.Y0 <= s.Y1 && s.Y0 <= r.Y1
}

// Overlaps reports whether the open interiors intersect (positive-area
// overlap).
func (r Rect) Overlaps(s Rect) bool {
	return r.X0 < s.X1 && s.X0 < r.X1 && r.Y0 < s.Y1 && s.Y0 < r.Y1
}

// Intersect returns the common region of two rectangles. The result is
// normalized to an empty rectangle at the origin when they do not overlap.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		X0: max64(r.X0, s.X0), Y0: max64(r.Y0, s.Y0),
		X1: min64(r.X1, s.X1), Y1: min64(r.Y1, s.Y1),
	}
	if out.X0 > out.X1 || out.Y0 > out.Y1 {
		return Rect{}
	}
	return out
}

// Union returns the bounding box of both rectangles. Empty rectangles are
// ignored so a zero Rect is a valid accumulator identity.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() && r == (Rect{}) {
		return s
	}
	if s.Empty() && s == (Rect{}) {
		return r
	}
	return Rect{
		X0: min64(r.X0, s.X0), Y0: min64(r.Y0, s.Y0),
		X1: max64(r.X1, s.X1), Y1: max64(r.Y1, s.Y1),
	}
}

// Expand grows the rectangle by d on every side (shrinks for negative d;
// callers must keep the result non-degenerate).
func (r Rect) Expand(d int64) Rect {
	return Rect{r.X0 - d, r.Y0 - d, r.X1 + d, r.Y1 + d}
}

// XInterval returns the projection of r on the x axis.
func (r Rect) XInterval() Interval { return Interval{r.X0, r.X1} }

// YInterval returns the projection of r on the y axis.
func (r Rect) YInterval() Interval { return Interval{r.Y0, r.Y1} }

// GapX returns the horizontal free space between r and s (0 when their x
// projections touch or overlap).
func GapX(r, s Rect) int64 {
	switch {
	case r.X1 <= s.X0:
		return s.X0 - r.X1
	case s.X1 <= r.X0:
		return r.X0 - s.X1
	default:
		return 0
	}
}

// GapY returns the vertical free space between r and s.
func GapY(r, s Rect) int64 {
	switch {
	case r.Y1 <= s.Y0:
		return s.Y0 - r.Y1
	case s.Y1 <= r.Y0:
		return r.Y0 - s.Y1
	default:
		return 0
	}
}

// Separation returns the rectilinear clearance between two rectangles: the
// largest of the axis gaps. It is 0 when the closed rectangles touch or
// overlap in both axes. This is the quantity design-rule spacing constraints
// are written against for axis-aligned shapes.
func Separation(r, s Rect) int64 {
	gx, gy := GapX(r, s), GapY(r, s)
	if gx > gy {
		return gx
	}
	return gy
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %d,%d]", r.X0, r.Y0, r.X1, r.Y1)
}

// Interval is a closed 1-D range [Lo, Hi].
type Interval struct {
	Lo, Hi int64
}

// Valid reports Lo <= Hi.
func (iv Interval) Valid() bool { return iv.Lo <= iv.Hi }

// Len returns Hi-Lo.
func (iv Interval) Len() int64 { return iv.Hi - iv.Lo }

// Contains reports whether v lies inside the closed interval.
func (iv Interval) Contains(v int64) bool { return v >= iv.Lo && v <= iv.Hi }

// ContainsOpen reports whether v lies strictly inside the interval.
func (iv Interval) ContainsOpen(v int64) bool { return v > iv.Lo && v < iv.Hi }

// Intersects reports whether the closed intervals share a point.
func (iv Interval) Intersects(jv Interval) bool { return iv.Lo <= jv.Hi && jv.Lo <= iv.Hi }

// Intersect returns the common sub-interval; invalid when disjoint.
func (iv Interval) Intersect(jv Interval) Interval {
	return Interval{max64(iv.Lo, jv.Lo), min64(iv.Hi, jv.Hi)}
}

// Segment is a straight line segment between two points. Degenerate
// (zero-length) segments are permitted and intersect only shapes containing
// their single point.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{a, b} }

// Bounds returns the bounding rectangle of the segment.
func (s Segment) Bounds() Rect { return R(s.A.X, s.A.Y, s.B.X, s.B.Y) }

// Midpoint returns the segment midpoint (floor division).
// Midpoint floors like Rect.Center, keeping midpoints translation-covariant
// for negative coordinates.
func (s Segment) Midpoint() Point { return Point{(s.A.X + s.B.X) >> 1, (s.A.Y + s.B.Y) >> 1} }

// onSegment reports whether collinear point p lies on segment s.
func onSegment(s Segment, p Point) bool {
	return min64(s.A.X, s.B.X) <= p.X && p.X <= max64(s.A.X, s.B.X) &&
		min64(s.A.Y, s.B.Y) <= p.Y && p.Y <= max64(s.A.Y, s.B.Y)
}

// SegmentsIntersect reports whether two closed segments share at least one
// point. It is exact for int64 coordinates.
func SegmentsIntersect(s, t Segment) bool {
	d1 := Orientation(t.A, t.B, s.A)
	d2 := Orientation(t.A, t.B, s.B)
	d3 := Orientation(s.A, s.B, t.A)
	d4 := Orientation(s.A, s.B, t.B)
	if d1 != d2 && d3 != d4 && d1 != 0 && d2 != 0 && d3 != 0 && d4 != 0 {
		return true
	}
	// Mixed and collinear cases.
	if d1 == 0 && onSegment(t, s.A) {
		return true
	}
	if d2 == 0 && onSegment(t, s.B) {
		return true
	}
	if d3 == 0 && onSegment(s, t.A) {
		return true
	}
	if d4 == 0 && onSegment(s, t.B) {
		return true
	}
	// Proper crossing with no endpoint on the other segment.
	return d1 != d2 && d3 != d4
}

// SegmentsCross reports whether two segments conflict for planar-drawing
// purposes: they share a point that is not a shared endpoint. Two edges of a
// drawing that merely meet at a common node do not cross; any other contact
// (proper crossing, T-touch, or collinear overlap) does.
func SegmentsCross(s, t Segment) bool {
	if !SegmentsIntersect(s, t) {
		return false
	}
	shared := func(p Point) bool { return p == t.A || p == t.B }
	if shared(s.A) || shared(s.B) {
		// They share an endpoint; they still cross when the contact is not
		// limited to that endpoint (e.g. collinear overlap, or the other
		// endpoint touching the segment interior).
		d1 := Orientation(t.A, t.B, s.A)
		d2 := Orientation(t.A, t.B, s.B)
		d3 := Orientation(s.A, s.B, t.A)
		d4 := Orientation(s.A, s.B, t.B)
		if d1 == 0 && d2 == 0 && d3 == 0 && d4 == 0 {
			// Collinear with a shared endpoint: cross only when the overlap
			// extends beyond the single shared point.
			return collinearOverlapBeyondPoint(s, t)
		}
		// Non-collinear with a shared endpoint: the shared endpoint is the
		// unique intersection unless another endpoint lies on the other
		// segment's interior.
		if d1 == 0 && onSegment(t, s.A) && s.A != t.A && s.A != t.B {
			return true
		}
		if d2 == 0 && onSegment(t, s.B) && s.B != t.A && s.B != t.B {
			return true
		}
		if d3 == 0 && onSegment(s, t.A) && t.A != s.A && t.A != s.B {
			return true
		}
		if d4 == 0 && onSegment(s, t.B) && t.B != s.A && t.B != s.B {
			return true
		}
		return false
	}
	return true
}

// PointOnSegment reports whether p lies on the closed segment s.
func PointOnSegment(p Point, s Segment) bool {
	return Orientation(s.A, s.B, p) == 0 && onSegment(s, p)
}

// CollinearOverlap reports whether two segments are collinear and share a
// sub-segment of positive length.
func CollinearOverlap(s, t Segment) bool {
	if Orientation(s.A, s.B, t.A) != 0 || Orientation(s.A, s.B, t.B) != 0 {
		return false
	}
	if s.A == s.B { // degenerate s cannot contribute positive length
		return false
	}
	if !SegmentsIntersect(s, t) {
		return false
	}
	return collinearOverlapBeyondPoint(s, t)
}

// collinearOverlapBeyondPoint reports whether two collinear segments sharing
// an endpoint overlap in more than that endpoint.
func collinearOverlapBeyondPoint(s, t Segment) bool {
	// Project on the dominant axis.
	var sLo, sHi, tLo, tHi int64
	if abs64(s.B.X-s.A.X)+abs64(t.B.X-t.A.X) >= abs64(s.B.Y-s.A.Y)+abs64(t.B.Y-t.A.Y) {
		sLo, sHi = min64(s.A.X, s.B.X), max64(s.A.X, s.B.X)
		tLo, tHi = min64(t.A.X, t.B.X), max64(t.A.X, t.B.X)
	} else {
		sLo, sHi = min64(s.A.Y, s.B.Y), max64(s.A.Y, s.B.Y)
		tLo, tHi = min64(t.A.Y, t.B.Y), max64(t.A.Y, t.B.Y)
	}
	lo, hi := max64(sLo, tLo), min64(sHi, tHi)
	return lo < hi
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

// Abs returns |a| for int64.
func Abs(a int64) int64 { return abs64(a) }

// Min returns the smaller of a and b.
func Min(a, b int64) int64 { return min64(a, b) }

// Max returns the larger of a and b.
func Max(a, b int64) int64 { return max64(a, b) }
