// Package server implements aapsmd, the long-running AAPSM layout service:
// an HTTP/JSON facade over the Engine/Session pipeline with a bounded
// LRU+TTL session store, single-flight creation coalescing, per-request
// timeouts, typed error responses, health and Prometheus-style metrics
// endpoints, and graceful drain.
//
// Every pipeline stage of the paper's flow is separately addressable:
//
//	POST   /v1/sessions                  create a session (layout text or GDS body)
//	GET    /v1/sessions/{id}             session info and work counters
//	DELETE /v1/sessions/{id}             drop the session
//	POST   /v1/sessions/{id}/edits       batched add/move/del edits (incremental re-detect)
//	GET    /v1/sessions/{id}/detect      conflict detection
//	GET    /v1/sessions/{id}/assign      phase assignment
//	GET    /v1/sessions/{id}/correct     end-to-end-space correction
//	GET    /v1/sessions/{id}/drc         design-rule check
//	GET    /v1/sessions/{id}/mask        mask view (text or GDS)
//	GET    /v1/sessions/{id}/layout      current layout export (text or GDS)
//	GET    /v1/sessions/{id}/svg         SVG render with overlays
//	GET    /healthz                      liveness (503 while draining)
//	GET    /metrics                      Prometheus text metrics
package server

import (
	"context"
	"net/http"
	"strconv"
	"time"

	aapsm "repro"
)

// Config parameterizes a Server. The zero value of every field selects a
// production-safe default.
type Config struct {
	// Engine is the shared pipeline engine; nil builds one with default
	// rules.
	Engine *aapsm.Engine
	// StoreCapacity bounds the number of live sessions (LRU eviction past
	// it). Default 1024.
	StoreCapacity int
	// SessionTTL is the idle lifetime of a stored session; every access
	// refreshes it. 0 means the default 30m; negative disables expiry.
	SessionTTL time.Duration
	// RequestTimeout bounds each request's pipeline work via context
	// cancellation. 0 means the default 60s; negative disables the limit.
	RequestTimeout time.Duration
	// DetectWorkers bounds one session's shard fan-out (see
	// Engine.NewSessionWithParallelism). Default 1: request-level
	// concurrency is the parallelism axis of a multi-tenant server.
	DetectWorkers int
	// MaxBodyBytes caps uploaded layout bodies. Default 32 MiB.
	MaxBodyBytes int64
	// Incremental arms every new session for incremental edit-and-re-detect
	// (Session.EnableEdits) so the first detection seeds the per-cluster
	// cache. Default on; set Off to true to disable.
	IncrementalOff bool
	// now overrides the clock in tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Engine == nil {
		c.Engine = aapsm.NewEngine()
	}
	if c.StoreCapacity == 0 {
		c.StoreCapacity = 1024
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 30 * time.Minute
	}
	if c.SessionTTL < 0 {
		c.SessionTTL = 0 // store interprets 0 as "no expiry"
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.RequestTimeout < 0 {
		c.RequestTimeout = 0
	}
	if c.DetectWorkers <= 0 {
		c.DetectWorkers = 1
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Server is the aapsmd request handler plus its session store and metrics.
// Create with New, mount Handler on an http.Server, and call BeginDrain
// before http.Server.Shutdown, then Close once drained.
type Server struct {
	cfg     Config
	store   *sessionStore
	metrics *metrics
	mux     *http.ServeMux
	stop    chan struct{}
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: newMetrics(cfg.now()),
		mux:     http.NewServeMux(),
		stop:    make(chan struct{}),
	}
	s.store = newSessionStore(cfg.StoreCapacity, cfg.SessionTTL, cfg.now, s.metrics.evicted)
	s.routes()
	go s.sweepLoop()
	return s
}

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain flips the server into draining mode: /healthz starts answering
// 503 so load balancers stop routing new work, while in-flight and
// still-arriving requests keep being served until the caller's
// http.Server.Shutdown completes the connection drain.
func (s *Server) BeginDrain() { s.metrics.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.metrics.draining.Load() }

// Close releases the background sweeper. The server must not be used after
// Close.
func (s *Server) Close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
}

// Sessions returns the live session count.
func (s *Server) Sessions() int { return s.store.len() }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	s.mux.HandleFunc("POST /v1/sessions", s.route("create", s.handleCreate))
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.route("info", s.session(s.handleInfo)))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.route("delete", s.handleDelete))
	s.mux.HandleFunc("POST /v1/sessions/{id}/edits", s.route("edits", s.session(s.handleEdits)))
	s.mux.HandleFunc("GET /v1/sessions/{id}/detect", s.route("detect", s.session(s.handleDetect)))
	s.mux.HandleFunc("GET /v1/sessions/{id}/assign", s.route("assign", s.session(s.handleAssign)))
	s.mux.HandleFunc("GET /v1/sessions/{id}/correct", s.route("correct", s.session(s.handleCorrect)))
	s.mux.HandleFunc("GET /v1/sessions/{id}/drc", s.route("drc", s.session(s.handleDRC)))
	s.mux.HandleFunc("GET /v1/sessions/{id}/mask", s.route("mask", s.session(s.handleMask)))
	s.mux.HandleFunc("GET /v1/sessions/{id}/layout", s.route("layout", s.session(s.handleLayout)))
	s.mux.HandleFunc("GET /v1/sessions/{id}/svg", s.route("svg", s.session(s.handleSVG)))
}

// route wraps a handler with the cross-cutting serving concerns: in-flight
// accounting, the per-request pipeline timeout, and request metrics keyed by
// a stable route name (not the raw path, which would explode label
// cardinality).
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.metrics.observe(name, sw.code, time.Since(start))
	}
}

// session resolves the {id} path component to a stored session before
// invoking the handler, and folds the request's incremental work profile
// delta into the per-stage reuse metrics afterwards. (Concurrent requests to
// the same session can observe overlapping deltas — the counters are
// operational telemetry, not an exact ledger.)
func (s *Server) session(h func(http.ResponseWriter, *http.Request, *sessionEntry)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		ent, ok := s.store.get(id)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown_session", "", "",
				"no live session "+strconv.Quote(id)+" (expired, evicted, or never created)")
			return
		}
		before := ent.Sess.Stats().Incremental
		h(w, r, ent)
		s.metrics.observeReuse(before, ent.Sess.Stats().Incremental)
	}
}

// statusWriter records the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// sweepLoop expires idle sessions in the background.
func (s *Server) sweepLoop() {
	if s.cfg.SessionTTL <= 0 {
		return
	}
	period := s.cfg.SessionTTL / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.store.sweep()
		case <-s.stop:
			return
		}
	}
}
