package gds

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/geom"
)

// rect is a 4-point boundary polygon for test cells.
func rect(layer int, x0, y0, x1, y1 int64) Poly {
	return Poly{Layer: layer, Pts: []geom.Point{
		{X: x0, Y: y0}, {X: x1, Y: y0}, {X: x1, Y: y1}, {X: x0, Y: y1},
	}}
}

// roundTrip serializes and re-parses a library, failing the test on any
// error. It exercises the writer/reader pair on every hierarchy test.
func roundTrip(t *testing.T, lib *Library) *Library {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteLibrary(&buf, lib); err != nil {
		t.Fatalf("WriteLibrary: %v", err)
	}
	got, err := ReadLibrary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadLibrary: %v", err)
	}
	return got
}

func TestSRefFlattenWithSidecar(t *testing.T) {
	lib := &Library{Name: "L", Cells: []*Cell{
		{Name: "TOP", Refs: []Ref{
			{Cell: "A", Origin: geom.Pt(0, 0)},
			{Cell: "A", Origin: geom.Pt(5000, 0)},
		}},
		{Name: "A", Polys: []Poly{rect(0, 0, 0, 100, 600)}},
	}}
	l, err := roundTrip(t, lib).Flatten(ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Features) != 2 {
		t.Fatalf("got %d features, want 2", len(l.Features))
	}
	if got, want := l.Features[1].Rect, geom.R(5000, 0, 5100, 600); got != want {
		t.Fatalf("translated placement: got %+v want %+v", got, want)
	}
	h := l.Hier
	if h == nil {
		t.Fatal("no hierarchy sidecar on a stream with placements")
	}
	if err := h.Validate(len(l.Features)); err != nil {
		t.Fatal(err)
	}
	if len(h.PlacementCell) != 2 {
		t.Fatalf("got %d placements, want 2", len(h.PlacementCell))
	}
	if h.Cells[h.PlacementCell[0]] != "A" || h.PlacementCell[0] != h.PlacementCell[1] {
		t.Fatalf("placements should both resolve to cell A: %v / %v", h.Cells, h.PlacementCell)
	}
	if h.FeatureInstance[0] == h.FeatureInstance[1] {
		t.Fatal("features of distinct placements share an instance tag")
	}
}

func TestFlattenOptionDiscardsSidecar(t *testing.T) {
	lib := &Library{Cells: []*Cell{
		{Name: "TOP", Refs: []Ref{{Cell: "A"}}},
		{Name: "A", Polys: []Poly{rect(0, 0, 0, 100, 600)}},
	}}
	withHier, err := lib.Flatten(ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := lib.Flatten(ReadOptions{Flatten: true})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Hier != nil {
		t.Fatal("Flatten: true still attached a sidecar")
	}
	if len(flat.Features) != len(withHier.Features) {
		t.Fatalf("feature counts diverge: %d vs %d", len(flat.Features), len(withHier.Features))
	}
	for i := range flat.Features {
		if flat.Features[i] != withHier.Features[i] {
			t.Fatalf("feature %d diverges: %+v vs %+v", i, flat.Features[i], withHier.Features[i])
		}
	}
}

func TestPlacementTransforms(t *testing.T) {
	// Asymmetric unit rect so every transform is distinguishable.
	base := rect(0, 10, 20, 110, 620)
	cases := []struct {
		name string
		ref  Ref
		want geom.Rect
	}{
		{"translate", Ref{Cell: "A", Origin: geom.Pt(1000, 2000)}, geom.R(1010, 2020, 1110, 2620)},
		{"rot90", Ref{Cell: "A", Rot: 90}, geom.R(-620, 10, -20, 110)},
		{"rot180", Ref{Cell: "A", Rot: 180}, geom.R(-110, -620, -10, -20)},
		{"rot270", Ref{Cell: "A", Rot: 270}, geom.R(20, -110, 620, -10)},
		{"reflect", Ref{Cell: "A", Reflect: true}, geom.R(10, -620, 110, -20)},
		{"mag3", Ref{Cell: "A", Mag: 3}, geom.R(30, 60, 330, 1860)},
		{"reflect-rot90", Ref{Cell: "A", Rot: 90, Reflect: true}, geom.R(20, 10, 620, 110)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lib := &Library{Cells: []*Cell{
				{Name: "TOP", Refs: []Ref{tc.ref}},
				{Name: "A", Polys: []Poly{base}},
			}}
			l, err := roundTrip(t, lib).Flatten(ReadOptions{TopCell: "TOP"})
			if err != nil {
				t.Fatal(err)
			}
			if len(l.Features) != 1 {
				t.Fatalf("got %d features, want 1", len(l.Features))
			}
			if l.Features[0].Rect != tc.want {
				t.Fatalf("got %+v want %+v", l.Features[0].Rect, tc.want)
			}
		})
	}
}

func TestARefLattice(t *testing.T) {
	lib := &Library{Cells: []*Cell{
		{Name: "TOP", Refs: []Ref{{
			Cell: "A", Origin: geom.Pt(100, 200),
			Cols: 3, Rows: 2,
			ColStep: geom.Pt(1000, 0), RowStep: geom.Pt(0, 2000),
		}}},
		{Name: "A", Polys: []Poly{rect(0, 0, 0, 100, 600)}},
	}}
	l, err := roundTrip(t, lib).Flatten(ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Features) != 6 {
		t.Fatalf("got %d features, want 6", len(l.Features))
	}
	if got := len(l.Hier.PlacementCell); got != 6 {
		t.Fatalf("got %d placements, want 6 (each AREF site is one instance)", got)
	}
	// Row-major expansion: last feature sits at column 2, row 1.
	want := geom.R(100+2*1000, 200+1*2000, 200+2*1000, 800+1*2000)
	if l.Features[5].Rect != want {
		t.Fatalf("last lattice site: got %+v want %+v", l.Features[5].Rect, want)
	}
}

func TestNestedReferencesInheritInstance(t *testing.T) {
	// TOP places MID twice; MID places A. Features expanded under one
	// top-level placement share its instance tag.
	lib := &Library{Cells: []*Cell{
		{Name: "TOP", Refs: []Ref{
			{Cell: "MID"}, {Cell: "MID", Origin: geom.Pt(10000, 0)},
		}},
		{Name: "MID", Polys: []Poly{rect(0, 0, 0, 100, 600)}, Refs: []Ref{{Cell: "A", Origin: geom.Pt(500, 0)}}},
		{Name: "A", Polys: []Poly{rect(0, 0, 0, 100, 600)}},
	}}
	l, err := lib.Flatten(ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Features) != 4 {
		t.Fatalf("got %d features, want 4", len(l.Features))
	}
	fi := l.Hier.FeatureInstance
	if fi[0] != fi[1] || fi[2] != fi[3] || fi[0] == fi[2] {
		t.Fatalf("instance tags %v: want first pair together, second pair together, pairs distinct", fi)
	}
}

func TestFlattenTypedErrors(t *testing.T) {
	leaf := &Cell{Name: "A", Polys: []Poly{rect(0, 0, 0, 100, 600)}}
	cases := []struct {
		name string
		lib  *Library
		opt  ReadOptions
		want error
	}{
		{"empty", &Library{}, ReadOptions{}, ErrEmptyLibrary},
		{"unknown top", &Library{Cells: []*Cell{leaf}}, ReadOptions{TopCell: "NOPE"}, ErrUnknownTopCell},
		{"unknown ref", &Library{Cells: []*Cell{
			{Name: "TOP", Refs: []Ref{{Cell: "GHOST"}}},
		}}, ReadOptions{}, ErrUnknownCell},
		{"self cycle", &Library{Cells: []*Cell{
			{Name: "TOP", Refs: []Ref{{Cell: "TOP"}}},
		}}, ReadOptions{TopCell: "TOP"}, ErrReferenceCycle},
		{"mutual cycle", &Library{Cells: []*Cell{
			{Name: "X", Refs: []Ref{{Cell: "Y"}}},
			{Name: "Y", Refs: []Ref{{Cell: "X"}}},
		}}, ReadOptions{}, ErrReferenceCycle},
		{"depth", &Library{Cells: []*Cell{
			{Name: "TOP", Refs: []Ref{{Cell: "D1"}}},
			{Name: "D1", Refs: []Ref{{Cell: "D2"}}},
			{Name: "D2", Refs: []Ref{{Cell: "D3"}}},
			{Name: "D3", Polys: []Poly{rect(0, 0, 0, 100, 600)}},
		}}, ReadOptions{MaxDepth: 2}, ErrMaxDepth},
		{"too large", &Library{Cells: []*Cell{
			{Name: "TOP", Refs: []Ref{{Cell: "A", Cols: 4, Rows: 4, ColStep: geom.Pt(1000, 0), RowStep: geom.Pt(0, 1000)}}},
			leaf,
		}}, ReadOptions{MaxFlattenedFeatures: 3}, ErrTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.lib.Flatten(tc.opt)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestNonRectilinearAngleRejected(t *testing.T) {
	// The writer emits whatever Rot it is given; a 45° placement must be
	// rejected by the reader as outside the rectilinear subgroup.
	lib := &Library{Cells: []*Cell{
		{Name: "TOP", Refs: []Ref{{Cell: "A", Rot: 45}}},
		{Name: "A", Polys: []Poly{rect(0, 0, 0, 100, 600)}},
	}}
	var buf bytes.Buffer
	if err := WriteLibrary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLibrary(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrUnsupportedTransform) {
		t.Fatalf("got %v, want ErrUnsupportedTransform", err)
	}
}

func TestDuplicateStructureRejected(t *testing.T) {
	lib := &Library{Cells: []*Cell{
		{Name: "A", Polys: []Poly{rect(0, 0, 0, 100, 600)}},
		{Name: "A", Polys: []Poly{rect(0, 0, 0, 100, 600)}},
	}}
	var buf bytes.Buffer
	if err := WriteLibrary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLibrary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("duplicate structure name accepted")
	}
}

func TestWriterDeterministic(t *testing.T) {
	lib := &Library{Name: "L", Cells: []*Cell{
		{Name: "TOP", Refs: []Ref{
			{Cell: "A", Rot: 90, Reflect: true, Mag: 2},
			{Cell: "A", Cols: 2, Rows: 2, ColStep: geom.Pt(3000, 0), RowStep: geom.Pt(0, 3000)},
		}},
		{Name: "A", Polys: []Poly{rect(0, 0, 0, 100, 600), rect(3, 200, 0, 300, 600)}},
	}}
	var w1, w2 bytes.Buffer
	if err := WriteLibrary(&w1, lib); err != nil {
		t.Fatal(err)
	}
	if err := WriteLibrary(&w2, roundTrip(t, lib)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("write/read/write is not byte-stable")
	}
}

// FuzzFlatten feeds arbitrary streams through the library reader and the
// hierarchy expander. The contract: no panic; any successfully flattened
// layout carries a sidecar consistent with its features (or none at all),
// and expansion respects tight depth/size limits.
func FuzzFlatten(f *testing.F) {
	seeds := []*Library{
		{Cells: []*Cell{
			{Name: "TOP", Refs: []Ref{{Cell: "A", Origin: geom.Pt(5000, 0)}}},
			{Name: "A", Polys: []Poly{rect(0, 0, 0, 100, 600)}},
		}},
		{Cells: []*Cell{
			{Name: "TOP", Refs: []Ref{{Cell: "A", Cols: 2, Rows: 3, ColStep: geom.Pt(2000, 0), RowStep: geom.Pt(0, 2000), Rot: 180, Reflect: true}}},
			{Name: "A", Polys: []Poly{rect(0, 0, 0, 100, 600)}},
		}},
		{Cells: []*Cell{ // reference cycle
			{Name: "X", Refs: []Ref{{Cell: "Y"}}},
			{Name: "Y", Refs: []Ref{{Cell: "X"}}},
		}},
		{Cells: []*Cell{ // cross-shaped polygon
			{Name: "P", Polys: []Poly{{Layer: 0, Pts: []geom.Point{
				{X: -50, Y: -500}, {X: 50, Y: -500}, {X: 50, Y: -50}, {X: 500, Y: -50},
				{X: 500, Y: 50}, {X: 50, Y: 50}, {X: 50, Y: 500}, {X: -50, Y: 500},
				{X: -50, Y: 50}, {X: -500, Y: 50}, {X: -500, Y: -50}, {X: -50, Y: -50},
			}}}},
		}},
	}
	for _, lib := range seeds {
		var buf bytes.Buffer
		if err := WriteLibrary(&buf, lib); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		lib, err := ReadLibrary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Tight limits keep pathological inputs (huge AREF grids, deep
		// chains) cheap while still exercising the limit paths.
		l, err := lib.Flatten(ReadOptions{MaxDepth: 8, MaxFlattenedFeatures: 1 << 12})
		if err != nil {
			return
		}
		if l.Hier != nil {
			if err := l.Hier.Validate(len(l.Features)); err != nil {
				t.Fatalf("invalid sidecar from flatten: %v", err)
			}
		}
		if len(l.Features) > 1<<12 {
			t.Fatalf("flatten exceeded its feature limit: %d", len(l.Features))
		}
		// The structure view itself must round-trip deterministically.
		var w1 bytes.Buffer
		if err := WriteLibrary(&w1, lib); err != nil {
			if errContainsTooLong(err) {
				return
			}
			t.Fatalf("write of parsed library failed: %v", err)
		}
		lib2, err := ReadLibrary(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written library failed: %v", err)
		}
		var w2 bytes.Buffer
		if err := WriteLibrary(&w2, lib2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatal("library writer is not idempotent")
		}
	})
}

// errContainsTooLong reports the writer's record-size failure, the only
// legitimate write error for a parsed library (pathologically long names).
func errContainsTooLong(err error) bool {
	return err != nil && bytes.Contains([]byte(fmt.Sprint(err)), []byte("record too long"))
}
