// Package compact implements the related-work baseline for conflict
// correction: constraint-graph layout expansion in the style of the
// compactor-based phase-shift design flows of Ooi et al. (refs [2,3] of the
// paper). Instead of end-to-end spaces, each conflicting feature pair gets a
// minimum-gap constraint and a single-dimension longest-path solve moves
// individual features apart by the minimum amounts.
//
// The paper argues end-to-end spaces are safer ("only increasing the
// spacing between the shifters ... might cause DRC violations elsewhere and
// may need an additional re-compaction step"); this package exists to make
// that comparison measurable. The expansion keeps every existing
// neighbor-pair gap (it never shrinks a spacing), so it is DRC-safe by
// construction, but it perturbs per-feature alignment instead of preserving
// it the way uniform spaces do.
package compact

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/shifter"
)

// Axis of an expansion requirement.
type Axis int8

const (
	// XAxis separates features horizontally.
	XAxis Axis = iota
	// YAxis separates features vertically.
	YAxis
)

// Requirement asks for a minimum edge-to-edge gap between two features
// along one axis.
type Requirement struct {
	A, B   int // feature indices
	Axis   Axis
	MinGap int64
}

// Result of an expansion.
type Result struct {
	Layout      *layout.Layout
	AddedWidth  int64 // bounding-box growth in x
	AddedHeight int64 // bounding-box growth in y
	MovedX      int   // features displaced in x
	MovedY      int   // features displaced in y
	Unsatisfied []int // requirement indices that could not be applied
}

// RequirementsFromConflicts converts detected overlap conflicts into
// expansion requirements: each conflicting shifter pair needs its features
// pushed apart (along the axis where the features' spans are disjoint) far
// enough that the regenerated shifters clear the minimum shifter spacing.
func RequirementsFromConflicts(l *layout.Layout, r layout.Rules, set *shifter.Set, conflicts []core.Conflict) (reqs []Requirement, unconvertible []int) {
	for ci, c := range conflicts {
		if c.Meta.Kind != core.OverlapEdge {
			unconvertible = append(unconvertible, ci)
			continue
		}
		sa, sb := set.Shifters[c.Meta.S1], set.Shifters[c.Meta.S2]
		fa, fb := l.Features[sa.Feature].Rect, l.Features[sb.Feature].Rect
		switch {
		case fa.X1 < fb.X0 || fb.X1 < fa.X0:
			// Feature gap that makes the shifter gap equal MinShifterSpacing:
			// featureGap - shifterExtension, where the extension is the
			// shifter overhang on the facing sides. Derive it from current
			// geometry: neededExtra = MSS - signedShifterGapX.
			sg := signedGap(sa.Rect.X0, sa.Rect.X1, sb.Rect.X0, sb.Rect.X1)
			fg := signedGap(fa.X0, fa.X1, fb.X0, fb.X1)
			reqs = append(reqs, Requirement{
				A: sa.Feature, B: sb.Feature, Axis: XAxis,
				MinGap: fg + (r.MinShifterSpacing - sg),
			})
		case fa.Y1 < fb.Y0 || fb.Y1 < fa.Y0:
			sg := signedGap(sa.Rect.Y0, sa.Rect.Y1, sb.Rect.Y0, sb.Rect.Y1)
			fg := signedGap(fa.Y0, fa.Y1, fb.Y0, fb.Y1)
			reqs = append(reqs, Requirement{
				A: sa.Feature, B: sb.Feature, Axis: YAxis,
				MinGap: fg + (r.MinShifterSpacing - sg),
			})
		default:
			unconvertible = append(unconvertible, ci)
		}
	}
	return reqs, unconvertible
}

func signedGap(a0, a1, b0, b1 int64) int64 {
	if b0-a1 > a0-b1 {
		return b0 - a1
	}
	return a0 - b1
}

// Expand solves the expansion: all existing gaps between interacting
// neighbors are preserved and the requirements' gaps enforced, with the
// minimum total displacement (single-source longest path per axis).
func Expand(l *layout.Layout, r layout.Rules, reqs []Requirement) (*Result, error) {
	out := &Result{}
	nl := l.Clone()
	nl.Name = l.Name + "+compacted"

	var xr, yr []Requirement
	for _, q := range reqs {
		if q.A < 0 || q.A >= len(l.Features) || q.B < 0 || q.B >= len(l.Features) {
			return nil, fmt.Errorf("compact: requirement features out of range: %+v", q)
		}
		if q.Axis == XAxis {
			xr = append(xr, q)
		} else {
			yr = append(yr, q)
		}
	}
	before := l.BBox()
	if moved, err := expandAxis(nl, r, xr, XAxis); err != nil {
		return nil, err
	} else {
		out.MovedX = moved
	}
	if moved, err := expandAxis(nl, r, yr, YAxis); err != nil {
		return nil, err
	} else {
		out.MovedY = moved
	}
	after := nl.BBox()
	out.AddedWidth = after.Width() - before.Width()
	out.AddedHeight = after.Height() - before.Height()
	out.Layout = nl
	return out, nil
}

// expandAxis displaces features along one axis. The constraint graph links
// every pair of features whose perpendicular spans interact within the
// shifter reach; the weight preserves the current gap (or enforces the
// required one). A longest-path pass in original coordinate order yields
// minimal displacements.
func expandAxis(l *layout.Layout, rules layout.Rules, reqs []Requirement, axis Axis) (int, error) {
	n := len(l.Features)
	if n == 0 || len(reqs) == 0 {
		return 0, nil
	}
	reach := rules.MinShifterSpacing + 2*(rules.ShifterWidth+rules.ShifterGap) + rules.MinFeatureSpacing

	lo := func(i int) int64 {
		if axis == XAxis {
			return l.Features[i].Rect.X0
		}
		return l.Features[i].Rect.Y0
	}
	hi := func(i int) int64 {
		if axis == XAxis {
			return l.Features[i].Rect.X1
		}
		return l.Features[i].Rect.Y1
	}
	perp := func(i int) geom.Interval {
		if axis == XAxis {
			return l.Features[i].Rect.YInterval()
		}
		return l.Features[i].Rect.XInterval()
	}

	// Constraint edges: ordered pairs (left, right) with min distance
	// between their lo coordinates.
	type edge struct {
		from, to int
		dist     int64 // x'_to >= x'_from + dist (lo-to-lo distance)
	}
	var edges []edge
	// Neighbor preservation within interaction reach.
	g := geom.NewGrid(reach * 2)
	for i := 0; i < n; i++ {
		g.Insert(int32(i), l.Features[i].Rect.Expand(reach))
	}
	g.ForEachPair(func(a, b int32) {
		i, j := int(a), int(b)
		pi, pj := perp(i), perp(j)
		if !pi.Intersects(geom.Interval{Lo: pj.Lo - reach, Hi: pj.Hi + reach}) {
			return
		}
		// Touching features (junctions, merged shapes) must move as one:
		// preserve their exact relative offset in both directions. Others
		// get an ordered minimum-distance edge preserving the current gap.
		if l.Features[i].Rect.Intersects(l.Features[j].Rect) {
			edges = append(edges, edge{i, j, lo(j) - lo(i)}, edge{j, i, lo(i) - lo(j)})
			return
		}
		switch {
		case hi(i) <= lo(j):
			edges = append(edges, edge{i, j, lo(j) - lo(i)})
		case hi(j) <= lo(i):
			edges = append(edges, edge{j, i, lo(i) - lo(j)})
		default:
			// Axis spans overlap without touching (a strap over a row, or
			// stacked wires): no constraint. Their rectilinear separation
			// equals the unchanged perpendicular gap, so sliding along this
			// axis can never bring them closer; rigidifying them instead
			// would weld whole rows together and contradict separation
			// requirements.
		}
	})
	// Requirement edges.
	for _, q := range reqs {
		a, b := q.A, q.B
		if lo(a) > lo(b) {
			a, b = b, a
		}
		if hi(a) > lo(b) {
			return 0, fmt.Errorf("compact: requirement between axis-overlapping features %d,%d", q.A, q.B)
		}
		// Need gap lo(b)' - hi(a)' >= MinGap; widths are constant so
		// lo(b)' >= lo(a)' + width(a) + MinGap.
		edges = append(edges, edge{a, b, (hi(a) - lo(a)) + q.MinGap})
	}

	// Longest path with displacement variables: delta_to >= delta_from +
	// (dist - origDist). Zero/negative-slack edges are satisfied already.
	// Bellman-Ford style relaxation (graphs may have 0-weight cycles from
	// rigid pairs; positive cycles are impossible because requirement edges
	// follow the coordinate order).
	delta := make([]int64, n)
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, e := range edges {
			slack := e.dist - (lo(e.to) - lo(e.from))
			if d := delta[e.from] + slack; d > delta[e.to] {
				delta[e.to] = d
				changed = true
			}
		}
		if !changed {
			break
		}
		if iter == n-1 && changed {
			return 0, fmt.Errorf("compact: constraint cycle with positive weight")
		}
	}
	// Normalize so nothing moves left/down.
	var minD int64
	for _, d := range delta {
		if d < minD {
			minD = d
		}
	}
	moved := 0
	for i := range l.Features {
		d := delta[i] - minD
		if d == 0 {
			continue
		}
		moved++
		if axis == XAxis {
			l.Features[i].Rect = l.Features[i].Rect.Translate(geom.Pt(d, 0))
		} else {
			l.Features[i].Rect = l.Features[i].Rect.Translate(geom.Pt(0, d))
		}
	}
	sortStable(l)
	return moved, nil
}

// sortStable keeps feature order deterministic after moves (indices are
// meaningful to callers, so this is a no-op placeholder kept for clarity).
func sortStable(*layout.Layout) {}

var _ = sort.Ints // reserved for future deterministic ordering needs
