package server

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	aapsm "repro"
)

// sessionEntry is one stored session plus its bookkeeping. The session
// itself is concurrency-safe; the entry's mutable fields (expiry, LRU
// position, edited flag) are guarded by the store mutex.
type sessionEntry struct {
	ID   string
	Hash string // content hash of the layout the session was created from
	Sess *aapsm.Session

	Created time.Time
	expires time.Time
	edited  bool // once true, the entry no longer satisfies create-by-hash
	elem    *list.Element
}

// evictReason labels why a session left the store (metrics).
type evictReason string

const (
	evictLRU      evictReason = "lru"
	evictTTL      evictReason = "ttl"
	evictExplicit evictReason = "delete"
)

// sessionStore is a bounded LRU+TTL map of live sessions.
//
// Sessions are keyed two ways: by session ID (every lookup), and by layout
// content hash (creation). Creating a session whose layout hashes to a
// pristine — never edited — stored session reattaches to it instead of
// rebuilding, and concurrent creations of the same hash are single-flighted
// so the layout is parsed and the session built exactly once. An edited
// session stays addressable by ID but is removed from the hash index: its
// contents have diverged from the uploaded bytes, so a fresh upload of the
// original layout gets a fresh session.
//
// Every access refreshes both the TTL and the LRU position. Capacity
// overflow evicts the least recently used entry; expiry is enforced lazily
// on access and eagerly by sweep (driven by the server's ticker).
type sessionStore struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration
	now      func() time.Time
	byID     map[string]*sessionEntry
	byHash   map[string]*sessionEntry // pristine sessions only
	lru      *list.List               // front = most recently used; values are *sessionEntry
	seq      int64
	creating map[string]*createCall
	onEvict  func(evictReason)
}

// createCall is one in-flight session construction other creators of the
// same hash wait on.
type createCall struct {
	done chan struct{}
	ent  *sessionEntry
	err  error
}

func newSessionStore(capacity int, ttl time.Duration, now func() time.Time, onEvict func(evictReason)) *sessionStore {
	if capacity < 1 {
		capacity = 1
	}
	if now == nil {
		now = time.Now
	}
	if onEvict == nil {
		onEvict = func(evictReason) {}
	}
	return &sessionStore{
		capacity: capacity,
		ttl:      ttl,
		now:      now,
		byID:     make(map[string]*sessionEntry),
		byHash:   make(map[string]*sessionEntry),
		lru:      list.New(),
		creating: make(map[string]*createCall),
		onEvict:  onEvict,
	}
}

// getOrCreate returns the pristine session stored for hash, or builds one
// with mk and stores it. Concurrent calls for the same hash coalesce: one
// caller runs mk, the rest wait and share the result (or the error, which is
// not cached — a later create retries). A waiting follower honors ctx and
// gives up without a session when its request deadline passes; the leader's
// construction itself runs to completion (its result is useful to every
// later creator). reused reports whether an existing session was returned.
func (st *sessionStore) getOrCreate(ctx context.Context, hash string, mk func() (*aapsm.Session, error)) (ent *sessionEntry, reused bool, err error) {
	var call *createCall
	for call == nil {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		st.mu.Lock()
		if e, ok := st.byHash[hash]; ok && !st.expired(e) {
			st.touchLocked(e)
			st.mu.Unlock()
			return e, true, nil
		}
		if inflight, ok := st.creating[hash]; ok {
			st.mu.Unlock()
			select {
			case <-inflight.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if inflight.err == nil {
				return inflight.ent, true, nil
			}
			continue // the leader failed; retry as a new leader
		}
		call = &createCall{done: make(chan struct{})}
		st.creating[hash] = call
		st.mu.Unlock()
	}
	sess, err := mk()
	st.mu.Lock()
	delete(st.creating, hash)
	if err != nil {
		call.err = err
		st.mu.Unlock()
		close(call.done)
		return nil, false, err
	}
	st.seq++
	ent = &sessionEntry{
		ID:      fmt.Sprintf("%s-%d", hash[:12], st.seq),
		Hash:    hash,
		Sess:    sess,
		Created: st.now(),
	}
	st.byID[ent.ID] = ent
	st.byHash[hash] = ent
	ent.elem = st.lru.PushFront(ent)
	ent.expires = st.now().Add(st.ttl)
	st.evictOverflowLocked()
	call.ent = ent
	st.mu.Unlock()
	close(call.done)
	return ent, false, nil
}

// get returns the live entry for id, refreshing its TTL and LRU position.
func (st *sessionStore) get(id string) (*sessionEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.byID[id]
	if !ok {
		return nil, false
	}
	if st.expired(e) {
		st.removeLocked(e, evictTTL)
		return nil, false
	}
	st.touchLocked(e)
	return e, true
}

// markEdited drops the entry from the hash index: its layout has diverged
// from the content it was created from.
func (st *sessionStore) markEdited(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, ok := st.byID[id]; ok && !e.edited {
		e.edited = true
		if st.byHash[e.Hash] == e {
			delete(st.byHash, e.Hash)
		}
	}
}

// delete removes the entry explicitly; it reports whether the id was live.
func (st *sessionStore) delete(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.byID[id]
	if !ok || st.expired(e) {
		if ok {
			st.removeLocked(e, evictTTL)
		}
		return false
	}
	st.removeLocked(e, evictExplicit)
	return true
}

// sweep removes every expired entry; the server calls it periodically so
// idle sessions release memory without waiting for an access.
func (st *sessionStore) sweep() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for el := st.lru.Back(); el != nil; {
		prev := el.Prev()
		if e := el.Value.(*sessionEntry); st.expired(e) {
			st.removeLocked(e, evictTTL)
		}
		el = prev
	}
}

// len returns the live session count (expired entries not yet swept count
// until observed).
func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.byID)
}

// expires returns the entry's current deadline (for session info responses).
func (st *sessionStore) expires(e *sessionEntry) time.Time {
	st.mu.Lock()
	defer st.mu.Unlock()
	return e.expires
}

func (st *sessionStore) expired(e *sessionEntry) bool {
	return st.ttl > 0 && st.now().After(e.expires)
}

func (st *sessionStore) touchLocked(e *sessionEntry) {
	e.expires = st.now().Add(st.ttl)
	st.lru.MoveToFront(e.elem)
}

func (st *sessionStore) evictOverflowLocked() {
	for len(st.byID) > st.capacity {
		back := st.lru.Back()
		if back == nil {
			return
		}
		st.removeLocked(back.Value.(*sessionEntry), evictLRU)
	}
}

func (st *sessionStore) removeLocked(e *sessionEntry, why evictReason) {
	delete(st.byID, e.ID)
	if st.byHash[e.Hash] == e {
		delete(st.byHash, e.Hash)
	}
	st.lru.Remove(e.elem)
	st.onEvict(why)
}
