// Package graph is a golden stand-in for a solver package: it is loaded
// under the import path "repro/internal/graph" so the determinism analyzer's
// pipeline-package scoping applies.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Keys collects map keys without ordering them: order-dependent.
func Keys(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want `append to out inside range over map without a later sort`
	}
	return out
}

// SortedKeys collects then sorts: the collect-then-sort idiom is allowed.
func SortedKeys(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Scatter writes keyed by the iteration variable: order-independent.
func Scatter(m map[int]int, dst []int) {
	for k, v := range m {
		dst[k] = v
	}
}

// Gather writes through a cursor that does not derive from the iteration
// variables: the write order follows map order.
func Gather(m map[int]int, dst []int) {
	i := 0
	for _, v := range m {
		dst[i] = v // want `slice write at an index independent of the map iteration variables`
		i++
	}
}

// Emit prints in map order.
func Emit(m map[int]bool) {
	for k := range m {
		fmt.Println(k) // want `fmt.Println inside range over map`
	}
}

// Send sends in map order.
func Send(m map[int]bool, ch chan int) {
	for k := range m {
		ch <- k // want `channel send inside range over map`
	}
}

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in solver package`
}

// Jitter consumes the global rand source.
func Jitter() int {
	return rand.Intn(8) // want `math/rand global source`
}

// Seeded constructs an explicit source: allowed.
func Seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(8)
}
