package correct

import (
	"sort"

	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/setcover"
	"repro/internal/shifter"
)

// Widening implements the correction option the paper leaves as future work
// (§5: "incorporate feature widening as an option for correcting AAPSM
// conflicts"): widening a critical feature to the critical-width threshold
// removes its need for shifters, dissolving every constraint its shifters
// participate in. It is the fallback for conflicts that end-to-end spaces
// cannot fix (overlapping feature spans, junction-adjacent features).

// WidenPlan selects features to widen.
type WidenPlan struct {
	// Features to widen, with their new rectangles.
	Widened map[int]geom.Rect
	// Resolved lists the input conflict indices dissolved by the widening.
	Resolved []int
	// Remaining conflicts that still need mask splitting (widening was
	// geometrically impossible without DRC damage).
	Remaining []int
	// AreaAdded is the total feature area increase in nm².
	AreaAdded int64
}

// PlanWidening chooses a minimum-added-area set of features whose widening
// dissolves the given conflicts (typically a correction plan's Unfixable
// list). Candidate widenings that would collide with neighbors under the
// DRC spacing rule are discarded.
func PlanWidening(l *layout.Layout, r layout.Rules, set *shifter.Set, conflicts []core.Conflict, target []int) (*WidenPlan, error) {
	p := &WidenPlan{Widened: make(map[int]geom.Rect)}
	if len(target) == 0 {
		return p, nil
	}

	// Candidate features: those involved in the target conflicts and
	// widenable without breaking spacing.
	candFeatures := map[int]geom.Rect{}
	featConflicts := map[int][]int{} // feature -> positions in target
	for ti, ci := range target {
		c := conflicts[ci]
		var feats []int
		switch c.Meta.Kind {
		case core.FeatureEdge:
			feats = []int{c.Meta.Feature}
		case core.OverlapEdge:
			feats = []int{
				set.Shifters[c.Meta.S1].Feature,
				set.Shifters[c.Meta.S2].Feature,
			}
		}
		for _, f := range feats {
			if _, seen := candFeatures[f]; !seen {
				if wr, ok := widenedRect(l, r, f); ok {
					candFeatures[f] = wr
				} else {
					candFeatures[f] = geom.Rect{} // marked unusable
				}
			}
			if !candFeatures[f].Empty() {
				featConflicts[f] = append(featConflicts[f], ti)
			}
		}
	}

	// Weighted set cover: sets = widenable features, weight = added area.
	var feats []int
	for f, wr := range candFeatures {
		if !wr.Empty() {
			feats = append(feats, f)
		}
	}
	sort.Ints(feats)
	sets := make([]setcover.Set, len(feats))
	for i, f := range feats {
		added := candFeatures[f].Area() - l.Features[f].Rect.Area()
		sets[i] = setcover.Set{Weight: added, Members: featConflicts[f]}
	}
	res := setcover.Solve(len(target), sets)
	covered := map[int]bool{}
	for _, si := range res.Chosen {
		f := feats[si]
		p.Widened[f] = candFeatures[f]
		p.AreaAdded += sets[si].Weight
		for _, m := range sets[si].Members {
			covered[m] = true
		}
	}
	for ti, ci := range target {
		if covered[ti] {
			p.Resolved = append(p.Resolved, ci)
		} else {
			p.Remaining = append(p.Remaining, ci)
		}
	}
	return p, nil
}

// widenedRect computes the symmetric widening of feature f to the critical
// width threshold and reports whether it stays DRC-legal against the rest
// of the layout (spacing to every other feature and no new overlaps).
func widenedRect(l *layout.Layout, r layout.Rules, f int) (geom.Rect, bool) {
	rect := l.Features[f].Rect
	need := r.CriticalWidth - rect.MinDim()
	if need <= 0 {
		return rect, false // already non-critical: widening cannot help
	}
	lo := need / 2
	hi := need - lo
	var wr geom.Rect
	if l.Features[f].Orient() == layout.Vertical {
		wr = geom.Rect{X0: rect.X0 - lo, Y0: rect.Y0, X1: rect.X1 + hi, Y1: rect.Y1}
	} else {
		wr = geom.Rect{X0: rect.X0, Y0: rect.Y0 - lo, X1: rect.X1, Y1: rect.Y1 + hi}
	}
	for i, g := range l.Features {
		if i == f {
			continue
		}
		sep := geom.Separation(wr, g.Rect)
		origSep := geom.Separation(rect, g.Rect)
		if origSep == 0 {
			// Already touching (junction): widening must not swallow the
			// neighbor's interior more than before.
			if wr.Overlaps(g.Rect) && !rect.Overlaps(g.Rect) {
				return geom.Rect{}, false
			}
			continue
		}
		if sep < r.MinFeatureSpacing {
			return geom.Rect{}, false
		}
	}
	return wr, true
}

// ApplyWidening returns a copy of l with the plan's features widened.
func ApplyWidening(l *layout.Layout, p *WidenPlan) *layout.Layout {
	out := layout.New(l.Name + "+widened")
	for i, f := range l.Features {
		if wr, ok := p.Widened[i]; ok {
			out.AddOnLayer(wr, f.Layer)
			continue
		}
		out.AddOnLayer(f.Rect, f.Layer)
	}
	return out
}

// drcCleanAfterWidening is a debug helper used by tests.
func drcCleanAfterWidening(l *layout.Layout, r layout.Rules, p *WidenPlan) bool {
	return drc.Clean(ApplyWidening(l, p), r)
}
