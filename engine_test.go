package aapsm

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSessionMemoization: detect → assign → correct → mask on one session
// must build the conflict graph and run detection exactly once.
func TestSessionMemoization(t *testing.T) {
	ctx := context.Background()
	s := NewEngine().NewSession(Figure1Layout())

	res1, err := s.Detect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Assignment(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Correction(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mask(ctx); err != nil {
		t.Fatal(err)
	}
	var svg bytes.Buffer
	if err := s.RenderSVG(ctx, &svg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") {
		t.Error("RenderSVG produced no SVG document")
	}
	res2, err := s.Detect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res2 {
		t.Error("repeated Detect must return the memoized *Result")
	}
	if runs := s.Stats().DetectRuns; runs != 1 {
		t.Fatalf("conflict graph built %d times across detect+assign+correct+mask+svg, want 1", runs)
	}
}

// TestSessionConcurrentStages: many goroutines hitting all stages of one
// session must share a single detection (run with -race).
func TestSessionConcurrentStages(t *testing.T) {
	ctx := context.Background()
	s := NewEngine().NewSession(GenerateBenchmark("conc", DefaultBenchmarkParams(5, 2, 60)))

	var wg sync.WaitGroup
	results := make([]*Result, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Detect(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
			if _, err := s.Assignment(ctx); err != nil {
				t.Error(err)
			}
			if _, err := s.Correction(ctx); err != nil {
				t.Error(err)
			}
			s.DRC()
			s.Junctions()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent Detect callers must share one memoized *Result")
		}
	}
	if runs := s.Stats().DetectRuns; runs != 1 {
		t.Fatalf("detection ran %d times under concurrency, want 1", runs)
	}
}

// TestDetectBatchMatchesSequential: a batch over 8 layouts on 4 workers must
// produce exactly the conflicts sequential detection finds (run with -race).
func TestDetectBatchMatchesSequential(t *testing.T) {
	ctx := context.Background()
	eng := NewEngine(WithParallelism(4))

	layouts := make([]*Layout, 8)
	for i := range layouts {
		layouts[i] = GenerateBenchmark("b", DefaultBenchmarkParams(int64(100+i), 2, 50+5*i))
	}
	batch, err := eng.DetectBatch(ctx, layouts)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(layouts) {
		t.Fatalf("batch returned %d results for %d layouts", len(batch), len(layouts))
	}
	for i, l := range layouts {
		seq, err := eng.Detect(ctx, l)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] == nil {
			t.Fatalf("layout %d: missing batch result", i)
		}
		if got, want := len(batch[i].Conflicts()), len(seq.Conflicts()); got != want {
			t.Errorf("layout %d: batch found %d conflicts, sequential %d", i, got, want)
		}
		for j, c := range batch[i].Conflicts() {
			if c.Edge != seq.Conflicts()[j].Edge {
				t.Errorf("layout %d conflict %d: edge %d != %d", i, j, c.Edge, seq.Conflicts()[j].Edge)
			}
		}
	}
}

// TestSessionContextCancellation: a cancelled context must surface
// context.Canceled through the typed *FlowError, and the failed attempt must
// not be memoized.
func TestSessionContextCancellation(t *testing.T) {
	s := NewEngine().NewSession(Figure5Layout())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	_, err := s.Detect(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Detect with cancelled ctx: err = %v, want context.Canceled", err)
	}
	var fe *FlowError
	if !errors.As(err, &fe) || fe.Stage != StageDetect {
		t.Fatalf("err = %#v, want *FlowError at StageDetect", err)
	}
	if _, err := s.Correction(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Correction with cancelled ctx: err = %v, want context.Canceled", err)
	}

	// The cancelled attempt must not poison the session.
	if _, err := s.Detect(context.Background()); err != nil {
		t.Fatalf("Detect after cancellation: %v", err)
	}
	if runs := s.Stats().DetectRuns; runs != 1 {
		t.Fatalf("detection ran %d times, want 1 (cancelled attempts aborted before work)", runs)
	}
}

// TestDetectCancellationMidFlight: a deadline well below the detection
// runtime must abort the flow promptly from inside the hot loops.
func TestDetectCancellationMidFlight(t *testing.T) {
	l := GenerateBenchmark("mid", DefaultBenchmarkParams(21, 4, 200))
	eng := NewEngine()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err := eng.Detect(ctx, l)
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("detection finished inside 1ms; nothing to cancel")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestDetectBatchCancelled: batch work after a cancelled context must stop.
func TestDetectBatchCancelled(t *testing.T) {
	eng := NewEngine(WithParallelism(4))
	layouts := make([]*Layout, 8)
	for i := range layouts {
		layouts[i] = GenerateBenchmark("bc", DefaultBenchmarkParams(int64(i), 2, 60))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.DetectBatch(ctx, layouts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestTypedErrors: ErrNotAssignable and ErrUnfixable must be matchable with
// errors.Is through the stage-tagged *FlowError.
func TestTypedErrors(t *testing.T) {
	ctx := context.Background()

	err := NewEngine().NewSession(Figure1Layout()).RequireAssignable(ctx)
	if !errors.Is(err, ErrNotAssignable) {
		t.Fatalf("RequireAssignable on figure 1: err = %v, want ErrNotAssignable", err)
	}
	var fe *FlowError
	if !errors.As(err, &fe) || fe.Stage != StageDetect || fe.Layout != "figure1" {
		t.Fatalf("FlowError = %+v, want detect stage on figure1", fe)
	}

	// tJunctionLayout (extensions_test.go) has conflicts spacing cannot fix.
	s := NewEngine().NewSession(tJunctionLayout())
	_, err = s.CorrectedLayout(ctx)
	if !errors.Is(err, ErrUnfixable) {
		t.Fatalf("CorrectedLayout on T junction: err = %v, want ErrUnfixable", err)
	}
	if !errors.As(err, &fe) || fe.Stage != StageCorrect {
		t.Fatalf("err = %v, want *FlowError at StageCorrect", err)
	}

	// A clean pair corrects fully: CorrectedLayout succeeds.
	clean := NewLayout("clean")
	clean.Add(R(0, 0, 100, 1000))
	clean.Add(R(350, 0, 450, 1000))
	fixed, err := NewEngine().NewSession(clean).CorrectedLayout(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := Assignable(fixed, Default90nmRules()); err != nil || !ok {
		t.Fatalf("corrected layout assignable=%v err=%v", ok, err)
	}
}

// TestEngineOptionAccessors: the engine exposes its configuration and the
// legacy wrappers agree with an equivalently configured engine.
func TestEngineOptionAccessors(t *testing.T) {
	eng := NewEngine(
		WithGraph(FG),
		WithTJoinMethod(LawlerReduction),
		WithImprovedRecheck(true),
		WithParallelism(3),
	)
	opt := eng.DetectOptions()
	if opt.Graph != FG || opt.Method != LawlerReduction || !opt.ImprovedRecheck {
		t.Fatalf("DetectOptions = %+v", opt)
	}
	if eng.Parallelism() != 3 {
		t.Fatalf("Parallelism = %d", eng.Parallelism())
	}

	l := GenerateBenchmark("wrap", DefaultBenchmarkParams(3, 2, 60))
	legacy, err := Detect(l, Default90nmRules(), DetectOptions{ImprovedRecheck: true})
	if err != nil {
		t.Fatal(err)
	}
	viaEngine, err := NewEngine(WithImprovedRecheck(true)).Detect(context.Background(), l)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy.Conflicts()) != len(viaEngine.Conflicts()) {
		t.Fatalf("legacy wrapper found %d conflicts, engine %d",
			len(legacy.Conflicts()), len(viaEngine.Conflicts()))
	}
}

// TestParallelismEquivalence: the engine's worker bound also drives the
// per-cluster detection pool; any setting must produce identical results.
func TestParallelismEquivalence(t *testing.T) {
	ctx := context.Background()
	l := GenerateBenchmark("par", DefaultBenchmarkParams(97, 3, 60))
	ref, err := NewEngine(WithParallelism(1)).Detect(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 8} {
		res, err := NewEngine(WithParallelism(n)).Detect(ctx, l)
		if err != nil {
			t.Fatalf("parallelism %d: %v", n, err)
		}
		if len(res.Conflicts()) != len(ref.Conflicts()) {
			t.Fatalf("parallelism %d: %d conflicts, want %d",
				n, len(res.Conflicts()), len(ref.Conflicts()))
		}
		for i, c := range res.Conflicts() {
			if c.Edge != ref.Conflicts()[i].Edge {
				t.Fatalf("parallelism %d: conflict %d edge %d != %d",
					n, i, c.Edge, ref.Conflicts()[i].Edge)
			}
		}
		if res.Detection.Stats.Shards != ref.Detection.Stats.Shards {
			t.Fatalf("parallelism %d: shard count differs", n)
		}
	}
	if ref.Detection.Stats.Shards < 2 {
		t.Fatalf("expected multiple conflict clusters, got %d", ref.Detection.Stats.Shards)
	}
}

// TestRenderConcurrentWithEdits: RenderSVG must not scan the live layout
// while another goroutine mutates it — the session snapshots under its lock.
// Run with -race.
func TestRenderConcurrentWithEdits(t *testing.T) {
	l := NewLayout("render-race")
	for i := int64(0); i < 8; i++ {
		l.Add(R(i*560, 0, i*560+100, 1000))
	}
	s := NewEngine().NewSession(l)
	if err := s.EnableEdits(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.MoveFeature(0, R(i%40, 0, i%40+100, 1000)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := s.RenderSVG(ctx, &buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "<svg") {
			t.Fatal("render produced no svg")
		}
	}
	close(stop)
	wg.Wait()
	// NumFeatures reads under the lock too (the serving layer's counter).
	if n := s.NumFeatures(); n != 8 {
		t.Fatalf("NumFeatures = %d, want 8", n)
	}
}
