package graph

import "sort"

// ParityUF is a union–find augmented with edge parity, used by the greedy
// bipartization baseline: nodes in one set carry a relative color (0/1)
// toward their root; uniting two nodes with a "must differ" relation either
// merges consistently or detects an odd cycle.
type ParityUF struct {
	parent []int
	rank   []int
	parity []int8 // parity[x]: color of x relative to parent[x]
}

// NewParityUF creates a parity union–find over n elements.
func NewParityUF(n int) *ParityUF {
	uf := &ParityUF{
		parent: make([]int, n),
		rank:   make([]int, n),
		parity: make([]int8, n),
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns (root, parity of x relative to root) with path compression.
func (uf *ParityUF) Find(x int) (int, int8) {
	if uf.parent[x] == x {
		return x, 0
	}
	root, p := uf.Find(uf.parent[x])
	uf.parent[x] = root
	uf.parity[x] ^= p
	return root, uf.parity[x]
}

// UnionDiffer merges the sets of u and v under the constraint
// color(u) != color(v). It reports false — without modifying the structure's
// consistency — when the constraint contradicts the existing relations,
// i.e. adding edge (u,v) would create an odd cycle.
func (uf *ParityUF) UnionDiffer(u, v int) bool {
	ru, pu := uf.Find(u)
	rv, pv := uf.Find(v)
	if ru == rv {
		return pu != pv // consistent only when they already differ
	}
	// Attach smaller rank under larger; parity chosen so that
	// color(u) ^ color(v) == 1 holds.
	if uf.rank[ru] < uf.rank[rv] {
		ru, rv = rv, ru
		pu, pv = pv, pu
	}
	uf.parent[rv] = ru
	uf.parity[rv] = pu ^ pv ^ 1
	if uf.rank[ru] == uf.rank[rv] {
		uf.rank[ru]++
	}
	return true
}

// SameSet reports whether u and v are already related, and if so whether
// their colors are constrained equal.
func (uf *ParityUF) SameSet(u, v int) (same bool, equalColor bool) {
	ru, pu := uf.Find(u)
	rv, pv := uf.Find(v)
	if ru != rv {
		return false, false
	}
	return true, pu == pv
}

// GreedyBipartization runs the paper's Table 1 "GB" baseline: edges are
// considered in order of decreasing weight and kept whenever they do not
// close an odd cycle; the rejected edges are the selected AAPSM conflicts.
// Returned indices are ascending.
func GreedyBipartization(g *Graph) (conflicts []int) {
	uf := NewParityUF(g.N())
	for _, i := range g.SortedEdgeIndicesByWeightDesc() {
		e := g.Edge(i)
		if e.U == e.V || !uf.UnionDiffer(e.U, e.V) {
			conflicts = append(conflicts, i)
		}
	}
	sortInts(conflicts)
	return conflicts
}

// GreedyTreeBipartization is the literal reading of the paper's GB
// description: build a maximum-weight spanning forest greedily and report
// every non-tree edge as a conflict. It is strictly weaker than
// GreedyBipartization (it also deletes even-cycle chords) and is kept as an
// ablation baseline.
func GreedyTreeBipartization(g *Graph) (conflicts []int) {
	uf := NewParityUF(g.N()) // parity unused; acts as plain union-find
	for _, i := range g.SortedEdgeIndicesByWeightDesc() {
		e := g.Edge(i)
		ru, _ := uf.Find(e.U)
		rv, _ := uf.Find(e.V)
		if ru == rv {
			conflicts = append(conflicts, i)
			continue
		}
		uf.UnionDiffer(e.U, e.V)
	}
	sortInts(conflicts)
	return conflicts
}

func sortInts(a []int) { sort.Ints(a) }
