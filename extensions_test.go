package aapsm

import (
	"bytes"
	"strings"
	"testing"
)

// tJunctionLayout: a T junction whose shifter conflicts cannot be fixed by
// spacing, plus a plain dense pair that can.
func tJunctionLayout() *Layout {
	l := NewLayout("ext")
	l.Add(R(0, 0, 100, 2000))      // 0: vertical wire
	l.Add(R(100, 950, 1100, 1050)) // 1: horizontal wire, T against 0
	l.Add(R(4000, 0, 4100, 1000))  // 2: plain pair a
	l.Add(R(4350, 0, 4450, 1000))  // 3: plain pair b
	return l
}

func TestJunctionAnalysisPublic(t *testing.T) {
	l := tJunctionLayout()
	js := FindJunctions(l)
	if len(js) != 1 || js[0].Kind != JunctionTee {
		t.Fatalf("junctions = %v", js)
	}
	res, err := Detect(l, Default90nmRules(), DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plain, junctioned := SplitConflictsByJunction(res, js)
	if len(junctioned) == 0 {
		t.Fatal("expected junction-adjacent conflicts")
	}
	if len(plain) == 0 {
		t.Fatal("expected plain conflicts from the dense pair")
	}
	if len(plain)+len(junctioned) != len(res.Conflicts()) {
		t.Error("partition must cover all conflicts")
	}
}

func TestWideningPublicFlow(t *testing.T) {
	rules := Default90nmRules()
	l := tJunctionLayout()
	res, err := Detect(l, rules, DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cor, err := Correct(l, rules, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(cor.Plan.Unfixable) == 0 {
		t.Fatal("T junction conflicts should be unfixable by spacing")
	}
	wp, err := PlanWidening(l, rules, res, cor.Plan.Unfixable)
	if err != nil {
		t.Fatal(err)
	}
	if len(wp.Widened) == 0 {
		t.Fatalf("widening should engage: %+v", wp)
	}
	// Combined repair: spaces on the spacing-correctable conflicts, then
	// widening on the rest, must yield a fully assignable layout.
	stage1 := cor.Layout
	// Re-plan the widening against the spaced layout (feature indices are
	// preserved by Apply).
	res1, err := Detect(stage1, rules, DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cor1, err := Correct(stage1, rules, res1)
	if err != nil {
		t.Fatal(err)
	}
	wp1, err := PlanWidening(stage1, rules, res1, cor1.Plan.Unfixable)
	if err != nil {
		t.Fatal(err)
	}
	stage2 := ApplyWidening(stage1, wp1)
	if len(wp1.Remaining) == 0 {
		ok, err := Assignable(stage2, rules)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("spaced + widened layout must be phase-assignable")
		}
	}
	if vs := CheckDRC(stage2, rules); len(vs) != 0 {
		t.Fatalf("widening broke DRC: %v", vs)
	}
}

func TestMaskPublicFlow(t *testing.T) {
	rules := Default90nmRules()
	l := Figure1Layout()
	res, err := Detect(l, rules, DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := AssignPhases(res)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildMask(l, res, a)
	if err != nil {
		t.Fatal(err)
	}
	layers := map[int]int{}
	for _, f := range m.Features {
		layers[f.Layer]++
	}
	if layers[MaskLayerChrome] != len(l.Features) {
		t.Errorf("chrome count = %d", layers[MaskLayerChrome])
	}
	if layers[MaskLayerShifter0] == 0 || layers[MaskLayerShifter180] == 0 {
		t.Error("both aperture layers must be present")
	}
	if problems := ValidateMask(l, rules, res, a); len(problems) != 0 {
		t.Fatalf("mask validation: %v", problems)
	}
	var buf bytes.Buffer
	if err := WriteGDS(&buf, m); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty GDS")
	}
}

func TestRenderSVGPublic(t *testing.T) {
	rules := Default90nmRules()
	l := Figure5Layout()
	res, err := Detect(l, rules, DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := AssignPhases(res)
	if err != nil {
		t.Fatal(err)
	}
	cor, err := Correct(l, rules, res)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = RenderSVG(&buf, l, RenderOptions{Result: res, Assignment: a, Plan: cor.Plan})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<rect", "<line", "<circle"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in SVG", want)
		}
	}
}

func TestCorrectRestrictedPublic(t *testing.T) {
	rules := Default90nmRules()
	l := NewLayout("cr")
	l.Add(R(0, 0, 100, 1000))
	l.Add(R(350, 0, 450, 1000))
	res, err := Detect(l, rules, DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cor, err := CorrectRestricted(l, rules, res, CutRegions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cor.Plan.Cuts) == 0 {
		t.Fatal("unrestricted regions should cut")
	}
	ok, err := Assignable(cor.Layout, rules)
	if err != nil || !ok {
		t.Fatalf("assignable=%v err=%v", ok, err)
	}
}
