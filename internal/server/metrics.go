package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	aapsm "repro"
)

// metrics is a minimal Prometheus-text-format registry: a fixed set of
// counters and gauges the handlers bump with atomics, plus one labelled
// request counter under a mutex. No external client library — the text
// exposition format is stable and trivial to emit.
type metrics struct {
	start time.Time

	sessionsCreated atomic.Int64
	sessionsReused  atomic.Int64 // create requests coalesced onto a stored session
	sessionsEvicted struct{ lru, ttl, del atomic.Int64 }
	detects         atomic.Int64
	edits           atomic.Int64
	inflight        atomic.Int64
	draining        atomic.Bool

	// Persistence counters: snapshot writes (evict/flush/endpoint),
	// successful restores, and snapshots found unusable (corrupt,
	// version-skewed, or engine-configuration-mismatched). Restore latency
	// is a sum/count pair, nanoseconds summed atomically.
	snapshotWrites   atomic.Int64
	snapshotRestores atomic.Int64
	snapshotCorrupt  atomic.Int64
	restoreNanos     atomic.Int64

	// Robustness counters: failed snapshot writes, async retry attempts,
	// blob-write retry attempts, requests shed by admission control (global
	// and per-session), recovered panics (handler scope = HTTP handler
	// panics caught by the middleware; shard scope = requests answered with
	// a shard-panic quarantine error), and queue-wait accounting for
	// admitted requests that had to wait for a slot.
	snapshotWriteErrors atomic.Int64
	snapshotRetries     atomic.Int64
	blobRetries         atomic.Int64
	shedGlobal          atomic.Int64
	shedSession         atomic.Int64
	shedClientGone      atomic.Int64
	panicsHandler       atomic.Int64
	panicsShard         atomic.Int64
	queueWaitNanos      atomic.Int64
	queueWaitCount      atomic.Int64
	// recentWaitNanos is an EWMA of observed admission queue waits (admitted
	// waits and timed-out full-budget waits alike); shed responses derive
	// their Retry-After from it so clients back off proportionally to actual
	// saturation.
	recentWaitNanos atomic.Int64

	// Edit-coalescing telemetry: batches committed, items that rode in them,
	// items that actually shared a batch with another request, per-item
	// queue time and per-batch solve time (summary pairs), plus read-stage
	// requests served from the per-generation single-flight.
	editBatches     atomic.Int64
	editBatchItems  atomic.Int64
	editsCoalesced  atomic.Int64
	batchQueueNanos atomic.Int64
	batchQueueCount atomic.Int64
	batchSolveNanos atomic.Int64
	readsCoalesced  atomic.Int64

	// Streaming telemetry.
	streamsActive   atomic.Int64
	streamsTotal    atomic.Int64
	streamsRejected atomic.Int64
	streamEvents    atomic.Int64

	// Incremental-pipeline reuse counters, accumulated per stage from the
	// work deltas of each served request: "reused" is work taken from a
	// session's cluster caches, "solved" is work actually performed. The
	// units differ per stage (detect: shards; assign: clusters; verify/mask:
	// constraint checks; correct: conflict intervals; drc: spacing pairs) —
	// the ratio within one stage is the interesting signal.
	reuse [stageCount]struct{ reused, solved atomic.Int64 }

	// Hierarchy fast-path counters, accumulated from the same per-request
	// IncStats deltas: clusters that received a spliced result from an
	// identical sibling placement, distinct representative clusters solved
	// for them, and instance-touching clusters that fell back to flat
	// solving because they crossed an instance boundary.
	hierReused   atomic.Int64
	hierSolved   atomic.Int64
	hierFallback atomic.Int64

	mu       sync.Mutex
	requests map[requestKey]int64
	seconds  map[string]*latency
}

// Reuse-counter stages, in the order the metrics are emitted.
const (
	stageDetect = iota
	stageAssign
	stageVerify
	stageCorrect
	stageMask
	stageDRC
	stageCount
)

var stageNames = [stageCount]string{"detect", "assign", "verify", "correct", "mask", "drc"}

// observeReuse folds one request's incremental work profile delta into the
// per-stage reuse counters.
func (m *metrics) observeReuse(before, after aapsm.IncrementalStats) {
	add := func(stage int, reused, solved int) {
		if reused > 0 {
			m.reuse[stage].reused.Add(int64(reused))
		}
		if solved > 0 {
			m.reuse[stage].solved.Add(int64(solved))
		}
	}
	add(stageDetect, after.ShardsReused-before.ShardsReused, after.ShardsSolved-before.ShardsSolved)
	add(stageAssign, after.AssignClustersReused-before.AssignClustersReused, after.AssignClustersSolved-before.AssignClustersSolved)
	add(stageVerify, after.VerifyChecksReused-before.VerifyChecksReused, after.VerifyChecksSolved-before.VerifyChecksSolved)
	add(stageCorrect, after.CorrIntervalsReused-before.CorrIntervalsReused, after.CorrIntervalsSolved-before.CorrIntervalsSolved)
	add(stageMask, after.MaskChecksReused-before.MaskChecksReused, after.MaskChecksSolved-before.MaskChecksSolved)
	add(stageDRC, after.DRCPairsReused-before.DRCPairsReused, after.DRCPairsSolved-before.DRCPairsSolved)
	if d := after.HierClustersReused - before.HierClustersReused; d > 0 {
		m.hierReused.Add(int64(d))
	}
	if d := after.HierClustersSolved - before.HierClustersSolved; d > 0 {
		m.hierSolved.Add(int64(d))
	}
	if d := after.HierFallbackClusters - before.HierFallbackClusters; d > 0 {
		m.hierFallback.Add(int64(d))
	}
}

type requestKey struct {
	route string
	code  int
}

type latency struct {
	count int64
	sum   float64
}

func newMetrics(now time.Time) *metrics {
	return &metrics{
		start:    now,
		requests: make(map[requestKey]int64),
		seconds:  make(map[string]*latency),
	}
}

// observe records one finished request.
func (m *metrics) observe(route string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[requestKey{route, code}]++
	l := m.seconds[route]
	if l == nil {
		l = &latency{}
		m.seconds[route] = l
	}
	l.count++
	l.sum += d.Seconds()
}

// observeRestore records one successful snapshot restore's latency.
func (m *metrics) observeRestore(d time.Duration) {
	m.restoreNanos.Add(d.Nanoseconds())
}

// observeQueueWait records time an admitted request spent waiting for an
// admission slot (global or per-session).
func (m *metrics) observeQueueWait(d time.Duration) {
	m.queueWaitNanos.Add(d.Nanoseconds())
	m.queueWaitCount.Add(1)
	m.noteQueueWait(d)
}

// noteQueueWait folds one observed wait into the Retry-After EWMA without
// counting it as an admitted wait (shed paths use it directly).
func (m *metrics) noteQueueWait(d time.Duration) {
	n := d.Nanoseconds()
	for {
		old := m.recentWaitNanos.Load()
		// EWMA with alpha 1/4: responsive to a saturation ramp, stable
		// against one outlier.
		next := old + (n-old)/4
		if old == 0 {
			next = n
		}
		if m.recentWaitNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfterSecs derives the Retry-After header for shed responses from the
// recent queue-wait EWMA: rounded up to whole seconds, at least 1, capped at
// 30 so one pathological wait cannot park clients for minutes.
func (m *metrics) retryAfterSecs() int {
	const capSecs = 30
	nanos := m.recentWaitNanos.Load()
	secs := int((nanos + int64(time.Second) - 1) / int64(time.Second))
	if secs < 1 {
		return 1
	}
	if secs > capSecs {
		return capSecs
	}
	return secs
}

// observeBatch records one committed edit batch.
func (m *metrics) observeBatch(size int, solve time.Duration) {
	m.editBatches.Add(1)
	m.editBatchItems.Add(int64(size))
	if size > 1 {
		m.editsCoalesced.Add(int64(size))
	}
	m.batchSolveNanos.Add(solve.Nanoseconds())
}

// observeBatchQueue records one item's wait between arrival and its batch
// being collected.
func (m *metrics) observeBatchQueue(d time.Duration) {
	m.batchQueueNanos.Add(d.Nanoseconds())
	m.batchQueueCount.Add(1)
}

func (m *metrics) evicted(why evictReason) {
	switch why {
	case evictLRU:
		m.sessionsEvicted.lru.Add(1)
	case evictTTL:
		m.sessionsEvicted.ttl.Add(1)
	default:
		m.sessionsEvicted.del.Add(1)
	}
}

// write emits the registry in Prometheus text exposition format.
func (m *metrics) write(w io.Writer, sessionsLive, sessionsPinned, retriesPending int, ready bool, now time.Time) {
	fmt.Fprintf(w, "# HELP aapsmd_up Whether the daemon is serving (0 while draining).\n# TYPE aapsmd_up gauge\n")
	up := 1
	if m.draining.Load() {
		up = 0
	}
	fmt.Fprintf(w, "aapsmd_up %d\n", up)
	fmt.Fprintf(w, "# HELP aapsmd_uptime_seconds Time since the server started.\n# TYPE aapsmd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "aapsmd_uptime_seconds %.3f\n", now.Sub(m.start).Seconds())
	fmt.Fprintf(w, "# HELP aapsmd_sessions_live Sessions currently held in the store.\n# TYPE aapsmd_sessions_live gauge\n")
	fmt.Fprintf(w, "aapsmd_sessions_live %d\n", sessionsLive)
	fmt.Fprintf(w, "# HELP aapsmd_sessions_created_total Sessions built from uploaded layouts.\n# TYPE aapsmd_sessions_created_total counter\n")
	fmt.Fprintf(w, "aapsmd_sessions_created_total %d\n", m.sessionsCreated.Load())
	fmt.Fprintf(w, "# HELP aapsmd_sessions_reused_total Create requests coalesced onto a stored session by layout hash.\n# TYPE aapsmd_sessions_reused_total counter\n")
	fmt.Fprintf(w, "aapsmd_sessions_reused_total %d\n", m.sessionsReused.Load())
	fmt.Fprintf(w, "# HELP aapsmd_sessions_evicted_total Sessions removed from the store.\n# TYPE aapsmd_sessions_evicted_total counter\n")
	fmt.Fprintf(w, "aapsmd_sessions_evicted_total{reason=\"lru\"} %d\n", m.sessionsEvicted.lru.Load())
	fmt.Fprintf(w, "aapsmd_sessions_evicted_total{reason=\"ttl\"} %d\n", m.sessionsEvicted.ttl.Load())
	fmt.Fprintf(w, "aapsmd_sessions_evicted_total{reason=\"delete\"} %d\n", m.sessionsEvicted.del.Load())
	fmt.Fprintf(w, "# HELP aapsmd_detects_total Detect stage requests served.\n# TYPE aapsmd_detects_total counter\n")
	fmt.Fprintf(w, "aapsmd_detects_total %d\n", m.detects.Load())
	fmt.Fprintf(w, "# HELP aapsmd_edits_total Edit operations applied to sessions.\n# TYPE aapsmd_edits_total counter\n")
	fmt.Fprintf(w, "aapsmd_edits_total %d\n", m.edits.Load())
	fmt.Fprintf(w, "# HELP aapsmd_inflight_requests Requests currently being served.\n# TYPE aapsmd_inflight_requests gauge\n")
	fmt.Fprintf(w, "aapsmd_inflight_requests %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# HELP aapsmd_snapshot_write_total Session snapshots written to the persistence store.\n# TYPE aapsmd_snapshot_write_total counter\n")
	fmt.Fprintf(w, "aapsmd_snapshot_write_total %d\n", m.snapshotWrites.Load())
	fmt.Fprintf(w, "# HELP aapsmd_snapshot_restore_total Sessions rehydrated from snapshots.\n# TYPE aapsmd_snapshot_restore_total counter\n")
	fmt.Fprintf(w, "aapsmd_snapshot_restore_total %d\n", m.snapshotRestores.Load())
	fmt.Fprintf(w, "# HELP aapsmd_snapshot_corrupt_total Snapshots rejected as corrupt, version-skewed, or configuration-mismatched.\n# TYPE aapsmd_snapshot_corrupt_total counter\n")
	fmt.Fprintf(w, "aapsmd_snapshot_corrupt_total %d\n", m.snapshotCorrupt.Load())
	fmt.Fprintf(w, "# HELP aapsmd_snapshot_restore_seconds Snapshot restore latency.\n# TYPE aapsmd_snapshot_restore_seconds summary\n")
	fmt.Fprintf(w, "aapsmd_snapshot_restore_seconds_sum %.6f\n", float64(m.restoreNanos.Load())/1e9)
	fmt.Fprintf(w, "aapsmd_snapshot_restore_seconds_count %d\n", m.snapshotRestores.Load())
	fmt.Fprintf(w, "# HELP aapsmd_ready Whether the readiness probe would pass (serving and persistence healthy).\n# TYPE aapsmd_ready gauge\n")
	rdy := 0
	if ready {
		rdy = 1
	}
	fmt.Fprintf(w, "aapsmd_ready %d\n", rdy)
	fmt.Fprintf(w, "# HELP aapsmd_sessions_pinned Sessions pinned in memory because their snapshot could not be persisted.\n# TYPE aapsmd_sessions_pinned gauge\n")
	fmt.Fprintf(w, "aapsmd_sessions_pinned %d\n", sessionsPinned)
	fmt.Fprintf(w, "# HELP aapsmd_snapshot_retries_pending Snapshot writes queued for asynchronous retry.\n# TYPE aapsmd_snapshot_retries_pending gauge\n")
	fmt.Fprintf(w, "aapsmd_snapshot_retries_pending %d\n", retriesPending)
	fmt.Fprintf(w, "# HELP aapsmd_snapshot_write_errors_total Snapshot writes that failed against the persistence store.\n# TYPE aapsmd_snapshot_write_errors_total counter\n")
	fmt.Fprintf(w, "aapsmd_snapshot_write_errors_total %d\n", m.snapshotWriteErrors.Load())
	fmt.Fprintf(w, "# HELP aapsmd_snapshot_write_retries_total Asynchronous snapshot write retry attempts.\n# TYPE aapsmd_snapshot_write_retries_total counter\n")
	fmt.Fprintf(w, "aapsmd_snapshot_write_retries_total %d\n", m.snapshotRetries.Load())
	fmt.Fprintf(w, "# HELP aapsmd_blob_write_retries_total Blob write retry attempts during session creation.\n# TYPE aapsmd_blob_write_retries_total counter\n")
	fmt.Fprintf(w, "aapsmd_blob_write_retries_total %d\n", m.blobRetries.Load())
	fmt.Fprintf(w, "# HELP aapsmd_requests_shed_total Requests rejected by admission control with 429 (client_gone = the client disconnected while queued; not an overload signal).\n# TYPE aapsmd_requests_shed_total counter\n")
	fmt.Fprintf(w, "aapsmd_requests_shed_total{scope=\"global\"} %d\n", m.shedGlobal.Load())
	fmt.Fprintf(w, "aapsmd_requests_shed_total{scope=\"session\"} %d\n", m.shedSession.Load())
	fmt.Fprintf(w, "aapsmd_requests_shed_total{scope=\"client_gone\"} %d\n", m.shedClientGone.Load())
	fmt.Fprintf(w, "# HELP aapsmd_retry_after_seconds Retry-After currently advertised on shed responses (EWMA of observed queue waits, rounded up, capped).\n# TYPE aapsmd_retry_after_seconds gauge\n")
	fmt.Fprintf(w, "aapsmd_retry_after_seconds %d\n", m.retryAfterSecs())
	fmt.Fprintf(w, "# HELP aapsmd_edit_batches_total Merged edit batches committed by the per-session coalescer.\n# TYPE aapsmd_edit_batches_total counter\n")
	fmt.Fprintf(w, "aapsmd_edit_batches_total %d\n", m.editBatches.Load())
	fmt.Fprintf(w, "# HELP aapsmd_edit_batch_items_total Edit requests that rode in merged batches.\n# TYPE aapsmd_edit_batch_items_total counter\n")
	fmt.Fprintf(w, "aapsmd_edit_batch_items_total %d\n", m.editBatchItems.Load())
	fmt.Fprintf(w, "# HELP aapsmd_edits_coalesced_total Edit requests that shared their batch (and its single re-pipeline) with at least one other request.\n# TYPE aapsmd_edits_coalesced_total counter\n")
	fmt.Fprintf(w, "aapsmd_edits_coalesced_total %d\n", m.editsCoalesced.Load())
	fmt.Fprintf(w, "# HELP aapsmd_edit_batch_queue_seconds Per-item wait between arrival and batch collection (includes the coalescing linger).\n# TYPE aapsmd_edit_batch_queue_seconds summary\n")
	fmt.Fprintf(w, "aapsmd_edit_batch_queue_seconds_sum %.6f\n", float64(m.batchQueueNanos.Load())/1e9)
	fmt.Fprintf(w, "aapsmd_edit_batch_queue_seconds_count %d\n", m.batchQueueCount.Load())
	fmt.Fprintf(w, "# HELP aapsmd_edit_batch_solve_seconds Merged batch apply + shared re-pipeline time, per batch.\n# TYPE aapsmd_edit_batch_solve_seconds summary\n")
	fmt.Fprintf(w, "aapsmd_edit_batch_solve_seconds_sum %.6f\n", float64(m.batchSolveNanos.Load())/1e9)
	fmt.Fprintf(w, "aapsmd_edit_batch_solve_seconds_count %d\n", m.editBatches.Load())
	fmt.Fprintf(w, "# HELP aapsmd_reads_coalesced_total Read-stage requests served by an identical in-flight or cached computation at the same session generation.\n# TYPE aapsmd_reads_coalesced_total counter\n")
	fmt.Fprintf(w, "aapsmd_reads_coalesced_total %d\n", m.readsCoalesced.Load())
	fmt.Fprintf(w, "# HELP aapsmd_streams_active Streaming connections currently open.\n# TYPE aapsmd_streams_active gauge\n")
	fmt.Fprintf(w, "aapsmd_streams_active %d\n", m.streamsActive.Load())
	fmt.Fprintf(w, "# HELP aapsmd_streams_total Streaming connections accepted.\n# TYPE aapsmd_streams_total counter\n")
	fmt.Fprintf(w, "aapsmd_streams_total %d\n", m.streamsTotal.Load())
	fmt.Fprintf(w, "# HELP aapsmd_streams_rejected_total Streaming connections shed at the MaxStreams bound.\n# TYPE aapsmd_streams_rejected_total counter\n")
	fmt.Fprintf(w, "aapsmd_streams_rejected_total %d\n", m.streamsRejected.Load())
	fmt.Fprintf(w, "# HELP aapsmd_stream_events_total Events pushed over streaming connections.\n# TYPE aapsmd_stream_events_total counter\n")
	fmt.Fprintf(w, "aapsmd_stream_events_total %d\n", m.streamEvents.Load())
	fmt.Fprintf(w, "# HELP aapsmd_panics_total Panics recovered without killing the daemon.\n# TYPE aapsmd_panics_total counter\n")
	fmt.Fprintf(w, "aapsmd_panics_total{scope=\"handler\"} %d\n", m.panicsHandler.Load())
	fmt.Fprintf(w, "aapsmd_panics_total{scope=\"shard\"} %d\n", m.panicsShard.Load())
	fmt.Fprintf(w, "# HELP aapsmd_queue_wait_seconds Time admitted requests spent queued for an admission slot.\n# TYPE aapsmd_queue_wait_seconds summary\n")
	fmt.Fprintf(w, "aapsmd_queue_wait_seconds_sum %.6f\n", float64(m.queueWaitNanos.Load())/1e9)
	fmt.Fprintf(w, "aapsmd_queue_wait_seconds_count %d\n", m.queueWaitCount.Load())
	fmt.Fprintf(w, "# HELP aapsmd_incremental_reused_total Pipeline work units served from session cluster caches, by stage.\n# TYPE aapsmd_incremental_reused_total counter\n")
	for i, name := range stageNames {
		fmt.Fprintf(w, "aapsmd_incremental_reused_total{stage=%q} %d\n", name, m.reuse[i].reused.Load())
	}
	fmt.Fprintf(w, "# HELP aapsmd_incremental_solved_total Pipeline work units actually computed, by stage.\n# TYPE aapsmd_incremental_solved_total counter\n")
	for i, name := range stageNames {
		fmt.Fprintf(w, "aapsmd_incremental_solved_total{stage=%q} %d\n", name, m.reuse[i].solved.Load())
	}
	fmt.Fprintf(w, "# HELP aapsmd_hier_clusters_reused_total Conflict clusters whose detection result was spliced from an identical sibling placement by the instance-aware fast path.\n# TYPE aapsmd_hier_clusters_reused_total counter\n")
	fmt.Fprintf(w, "aapsmd_hier_clusters_reused_total %d\n", m.hierReused.Load())
	fmt.Fprintf(w, "# HELP aapsmd_hier_clusters_solved_total Distinct representative clusters solved for instance-pure cluster groups.\n# TYPE aapsmd_hier_clusters_solved_total counter\n")
	fmt.Fprintf(w, "aapsmd_hier_clusters_solved_total %d\n", m.hierSolved.Load())
	fmt.Fprintf(w, "# HELP aapsmd_hier_clusters_fallback_total Instance-touching clusters solved flat because they cross instance boundaries.\n# TYPE aapsmd_hier_clusters_fallback_total counter\n")
	fmt.Fprintf(w, "aapsmd_hier_clusters_fallback_total %d\n", m.hierFallback.Load())

	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	fmt.Fprintf(w, "# HELP aapsmd_requests_total Finished HTTP requests.\n# TYPE aapsmd_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(w, "aapsmd_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, m.requests[k])
	}
	routes := make([]string, 0, len(m.seconds))
	for r := range m.seconds {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	fmt.Fprintf(w, "# HELP aapsmd_request_seconds Request latency.\n# TYPE aapsmd_request_seconds summary\n")
	for _, r := range routes {
		l := m.seconds[r]
		fmt.Fprintf(w, "aapsmd_request_seconds_sum{route=%q} %.6f\n", r, l.sum)
		fmt.Fprintf(w, "aapsmd_request_seconds_count{route=%q} %d\n", r, l.count)
	}
}
