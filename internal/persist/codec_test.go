package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/correct"
	"repro/internal/geom"
	"repro/internal/layout"
)

// sampleState builds a representative SessionState exercising every encoded
// field, including optional sections.
func sampleState(withPrev bool) *SessionState {
	st := &SessionState{
		Rules: layout.Rules{
			CriticalWidth: 150, ShifterWidth: 90, ShifterGap: 120,
			MinShifterSpacing: 200, MinFeatureWidth: 80, MinFeatureSpacing: 280,
			FeatureConflictWeight: 1 << 20,
		},
		Kind:           core.PCG,
		DetectRuns:     7,
		Edits:          3,
		VerifyCleanGen: 2,
		MaskCleanGen:   -1,
		Memo:           MemoDetect | MemoAssign | MemoDRC,
		IvKeys:         []int32{1, 5, 9},
		IvVals: []correct.Intervals{
			{V: correct.AxisCut{Lo: -3, Hi: 88, Need: 12, OK: true}},
			{H: correct.AxisCut{Lo: 4, Hi: 5, Need: 0, OK: true}, V: correct.AxisCut{OK: false}},
			{},
		},
		Inc: &core.IncrementalState{
			LayoutName: "snap-π", // non-ASCII name round-trips
			Features: []layout.Feature{
				{Rect: geom.Rect{X0: 0, Y0: 0, X1: 100, Y1: 400}, Layer: 0},
				{Rect: geom.Rect{X0: 600, Y0: -20, X1: 700, Y1: 380}, Layer: 2},
			},
			FeatUID:   []int32{0, 1},
			NextUID:   2,
			NextOvUID: 1,
			Pairs:     []core.PairRecState{{UIDA: 0, UIDB: 1, SideA: 1, SideB: 0, Deficit: 40, UID: 0}},
			Gen:       4,
			AssignGen: 4,

			PrevColors: []int8{0, 1, -1, 0},
			DRCReady:   true,
			DRCPairs:   []uint64{1<<32 | 3, 2<<32 | 7},
			Stats:      core.IncStats{Edits: 3, Detects: 4, ShardsReused: 9},
		},
	}
	if withPrev {
		st.Inc.HasPrev = true
		st.Inc.CrossPairs = [][2]int32{{0, 2}, {1, 3}}
		st.Inc.NShards = 2
		st.Inc.Shards = []*core.ShardState{
			nil,
			{Removed: []int32{0}, Bipart: []int32{1, 2}, Final: []int32{2},
				DualNodes: 5, DualEdges: 9, OddFaces: 2, GadgetNodes: 4, GadgetEdges: 7},
		}
		st.Inc.DirtyCluster = []bool{true, false}
		st.Inc.HasNewToOld = true
		st.Inc.NewToOldNode = []int32{0, 1, -1, 2}
		st.Inc.DetStats = core.Stats{GraphNodes: 4, GraphEdges: 3, Shards: 2, TotalTime: 12345}
	}
	return st
}

func TestCodecRoundTrip(t *testing.T) {
	for _, withPrev := range []bool{false, true} {
		st := sampleState(withPrev)
		data := Encode(st)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("withPrev=%v: decode: %v", withPrev, err)
		}
		if !reflect.DeepEqual(st, got) {
			t.Fatalf("withPrev=%v: round trip diverged:\n in  %+v\n out %+v", withPrev, st, got)
		}
		if !bytes.Equal(data, Encode(got)) {
			t.Fatalf("withPrev=%v: re-encode is not byte-identical", withPrev)
		}
	}
}

func TestCodecNilInc(t *testing.T) {
	st := &SessionState{Rules: layout.Default90nm(), VerifyCleanGen: -1, MaskCleanGen: -1}
	got, err := Decode(Encode(st))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("round trip diverged: %+v vs %+v", st, got)
	}
}

// reseal recomputes the trailing checksum after tampering with the payload,
// so decode failures exercise the structural validation, not just the CRC.
func reseal(data []byte) []byte {
	binary.LittleEndian.PutUint32(data[len(data)-4:],
		crc32.ChecksumIEEE(data[:len(data)-4]))
	return data
}

func TestCodecRejectsCorruption(t *testing.T) {
	data := Encode(sampleState(true))

	for cut := 0; cut < len(data); cut += 7 {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	for i := 0; i < len(data); i += 11 {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x20
		if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("bit flip at %d: got %v", i, err)
		}
	}

	// Version skew with a valid checksum must be ErrVersion, so callers can
	// distinguish "snapshot from a newer build" from damage.
	skew := append([]byte(nil), data...)
	binary.LittleEndian.PutUint16(skew[len(snapMagic):], Version+1)
	if _, err := Decode(reseal(skew)); !errors.Is(err, ErrVersion) {
		t.Fatalf("version skew: got %v, want ErrVersion", err)
	}

	// Trailing garbage with a resealed checksum is still corrupt.
	long := append(append([]byte(nil), data...), 0, 0, 0, 0)
	copy(long[len(long)-4:], long[len(data)-4:len(data)])
	if _, err := Decode(reseal(long)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: got %v, want ErrCorrupt", err)
	}
}

func FuzzSnapshotDecode(f *testing.F) {
	f.Add(Encode(sampleState(false)))
	f.Add(Encode(sampleState(true)))
	f.Add(append([]byte(nil), snapMagic[:]...))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode byte-identically: with the
		// checksum covering the payload this pins the codec to a canonical
		// form.
		if !bytes.Equal(Encode(st), data) {
			t.Fatalf("decoded snapshot re-encodes differently")
		}
	})
}
