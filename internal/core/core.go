// Package core implements the paper's primary contribution: AAPSM phase
// conflict detection on bright-field layouts.
//
// It builds the phase conflict graph (PCG, §3.1.1) — or the feature-graph
// baseline (FG) — from a layout's synthesized shifters, runs the detection
// flow (planarize → optimal bipartization via dual T-join → recheck removed
// crossings), and produces the minimal set of AAPSM conflicts that, once
// corrected, makes the layout phase-assignable. It also provides the greedy
// baseline (Table 1 column GB) and phase assignment with full verification
// of Conditions 1 and 2.
package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/planar"
	"repro/internal/shifter"
)

// GraphKind selects the layout-graph representation.
type GraphKind int8

const (
	// PCG is the paper's phase conflict graph: overlap nodes on the
	// center-line between shifters, straight drawing.
	PCG GraphKind = iota
	// FG is the feature-graph baseline: overlap ("conflict") nodes at the
	// geometric center of the overlap region and feature edges routed
	// through a feature-center bend — the detour drawing that planarizes
	// worse (paper §3.1.1, Figure 2).
	FG
)

func (k GraphKind) String() string {
	if k == FG {
		return "FG"
	}
	return "PCG"
}

// EdgeKind classifies conflict-graph edges.
type EdgeKind int8

const (
	// FeatureEdge joins the two flanks of one critical feature
	// (Condition 1: opposite phases).
	FeatureEdge EdgeKind = iota
	// OverlapEdge is one of the two edges of an overlap-node path
	// (Condition 2: same phase for the pair; deleting either edge cancels
	// the constraint).
	OverlapEdge
)

// EdgeMeta describes what a conflict-graph edge stands for in the layout.
type EdgeMeta struct {
	Kind EdgeKind
	// S1, S2 are the shifters the constraint relates (for an OverlapEdge,
	// the full pair of the overlap even though the edge touches only one of
	// them plus the overlap node).
	S1, S2 int
	// Feature is the critical feature index (FeatureEdge only, else -1).
	Feature int
	// Overlap is the index into Set.Overlaps (OverlapEdge only, else -1).
	Overlap int
}

// ConflictGraph is a drawn layout graph whose bipartiteness is equivalent to
// phase-assignability (Theorem 1).
type ConflictGraph struct {
	Kind    GraphKind
	Drawing *planar.Drawing
	Set     *shifter.Set
	Rules   layout.Rules
	// Meta is indexed like Drawing.G.Edges().
	Meta []EdgeMeta
	// ShifterNode maps shifter index -> graph node.
	ShifterNode []int
	// AuxNodes counts overlap/conflict nodes (nodes beyond the shifters).
	AuxNodes int
	// BendNodes counts drawing-only bend points (FG feature detours).
	BendNodes int
	// Hier is the source layout's hierarchy sidecar (nil for flat layouts).
	// It never changes detection results — it only marks which clusters are
	// candidates for the instance-aware solve-once fast path.
	Hier *layout.Hierarchy
}

// Nodes returns the graph node count (drawing bends excluded).
func (cg *ConflictGraph) Nodes() int { return cg.Drawing.G.N() }

// Edges returns the graph edge count.
func (cg *ConflictGraph) Edges() int { return cg.Drawing.G.M() }

// BuildGraph constructs the selected representation from a layout. The
// shifter set is synthesized internally.
func BuildGraph(l *layout.Layout, r layout.Rules, kind GraphKind) (*ConflictGraph, error) {
	set, err := shifter.Generate(l, r)
	if err != nil {
		return nil, err
	}
	return BuildGraphFromSet(l, r, set, kind)
}

// BuildGraphFromSet constructs the graph from an existing shifter set.
func BuildGraphFromSet(l *layout.Layout, r layout.Rules, set *shifter.Set, kind GraphKind) (*ConflictGraph, error) {
	g := graph.New(0)
	cg := &ConflictGraph{Kind: kind, Set: set, Rules: r, Hier: l.Hier}
	reg := newPosRegistry()
	pos := make([]geom.Point, 0, len(set.Shifters)*2)

	cg.ShifterNode = make([]int, len(set.Shifters))
	for i, sh := range set.Shifters {
		n := g.AddNode()
		p := reg.claim(sh.Center())
		pos = append(pos, p)
		cg.ShifterNode[i] = n
	}

	// Condition-2 constraints: overlap node + two edges per overlapping
	// pair.
	for oi, ov := range set.Overlaps {
		var q geom.Point
		if kind == PCG {
			// Paper §3.1.1: "place it at the center of the line connecting"
			// the two edge shifter nodes — collinear, crossing-minimal.
			q = geom.Seg(pos[cg.ShifterNode[ov.A]], pos[cg.ShifterNode[ov.B]]).Midpoint()
		} else {
			// FG detour: geometric center of the overlap region.
			q = overlapRegionCenter(set.Shifters[ov.A].Rect, set.Shifters[ov.B].Rect, r)
		}
		n := g.AddNode()
		pos = append(pos, reg.claim(q))
		cg.AuxNodes++
		w := ov.Deficit
		g.AddEdge(cg.ShifterNode[ov.A], n, w)
		cg.Meta = append(cg.Meta, EdgeMeta{Kind: OverlapEdge, S1: ov.A, S2: ov.B, Overlap: oi, Feature: -1})
		g.AddEdge(n, cg.ShifterNode[ov.B], w)
		cg.Meta = append(cg.Meta, EdgeMeta{Kind: OverlapEdge, S1: ov.A, S2: ov.B, Overlap: oi, Feature: -1})
	}

	d := planar.NewDrawing(g, pos)

	// Condition-1 constraints: one edge per critical feature between its
	// flanks; FG routes it through the feature center.
	for fi := 0; fi < len(l.Features); fi++ {
		pair, ok := set.PairOf[fi]
		if !ok {
			continue
		}
		e := g.AddEdge(cg.ShifterNode[pair[0]], cg.ShifterNode[pair[1]], r.FeatureConflictWeight)
		cg.Meta = append(cg.Meta, EdgeMeta{Kind: FeatureEdge, S1: pair[0], S2: pair[1], Feature: fi, Overlap: -1})
		if kind == FG {
			d.SetBends(e, l.Features[fi].Rect.Center())
			cg.BendNodes++
		}
	}
	if len(cg.Meta) != g.M() {
		return nil, fmt.Errorf("core: meta/edge count mismatch %d != %d", len(cg.Meta), g.M())
	}
	cg.Drawing = d
	return cg, nil
}

// overlapRegionCenter returns the geometric center of the interaction region
// of two shifters: the intersection of both rectangles expanded by half the
// minimum shifter spacing (non-empty whenever the pair overlaps by
// Condition 2).
func overlapRegionCenter(a, b geom.Rect, r layout.Rules) geom.Point {
	h := r.MinShifterSpacing/2 + 1
	reg := a.Expand(h).Intersect(b.Expand(h))
	if reg.Empty() {
		// Defensive: fall back to the midpoint of centers.
		return geom.Seg(a.Center(), b.Center()).Midpoint()
	}
	return reg.Center()
}

// posRegistry hands out distinct node positions: a drawing with coincident
// nodes has degenerate geometry, so claimed duplicates are nudged by 1 nm
// steps in a small spiral until free.
type posRegistry struct {
	used map[geom.Point]bool
}

func newPosRegistry() *posRegistry {
	return &posRegistry{used: make(map[geom.Point]bool)}
}

var nudges = []geom.Point{
	{X: 1, Y: 0}, {X: 0, Y: 1}, {X: -1, Y: 0}, {X: 0, Y: -1},
	{X: 1, Y: 1}, {X: -1, Y: 1}, {X: 1, Y: -1}, {X: -1, Y: -1},
}

func (pr *posRegistry) claim(p geom.Point) geom.Point {
	if !pr.used[p] {
		pr.used[p] = true
		return p
	}
	for radius := int64(1); ; radius++ {
		for _, d := range nudges {
			q := geom.Pt(p.X+d.X*radius, p.Y+d.Y*radius)
			if !pr.used[q] {
				pr.used[q] = true
				return q
			}
		}
	}
}

// IsPhaseAssignable implements Theorem 1 directly: the layout admits a valid
// phase assignment iff its phase conflict graph is bipartite.
func IsPhaseAssignable(l *layout.Layout, r layout.Rules) (bool, error) {
	cg, err := BuildGraph(l, r, PCG)
	if err != nil {
		return false, err
	}
	return cg.Drawing.G.IsBipartite(), nil
}
