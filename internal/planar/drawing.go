// Package planar implements the geometric planarization step of the AAPSM
// flow (paper flow step 1b) and the embedded-planar machinery needed by the
// optimal bipartization step (flow step 2): exact crossing detection between
// drawn edges, greedy minimum-weight crossing removal, rotation-system face
// tracing, and geometric-dual construction with the odd-face terminal set T.
//
// A Drawing is a graph whose nodes carry plane positions and whose edges are
// drawn as polylines (straight by default). The phase conflict graph draws
// every edge straight; the feature-graph baseline routes some edges through
// detour bend points, which is exactly why it planarizes worse (paper §3.1.1).
package planar

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
)

// Drawing couples a graph with a straight-line/polyline plane drawing.
type Drawing struct {
	G   *graph.Graph
	Pos []geom.Point // node positions, indexed by node id
	// Bends holds optional intermediate points per edge (same index space as
	// G.Edges()); nil entries mean the edge is drawn straight.
	Bends map[int][]geom.Point
}

// NewDrawing builds a Drawing over g with the given node positions.
func NewDrawing(g *graph.Graph, pos []geom.Point) *Drawing {
	if len(pos) != g.N() {
		panic(fmt.Sprintf("planar: %d positions for %d nodes", len(pos), g.N()))
	}
	return &Drawing{G: g, Pos: pos}
}

// SetBends routes edge e through the given intermediate points.
func (d *Drawing) SetBends(e int, pts ...geom.Point) {
	if d.Bends == nil {
		d.Bends = make(map[int][]geom.Point)
	}
	d.Bends[e] = pts
}

// Polyline returns the full point sequence of edge e, endpoints included.
func (d *Drawing) Polyline(e int) []geom.Point {
	ed := d.G.Edge(e)
	pts := make([]geom.Point, 0, 2+len(d.Bends[e]))
	pts = append(pts, d.Pos[ed.U])
	pts = append(pts, d.Bends[e]...)
	pts = append(pts, d.Pos[ed.V])
	return pts
}

// Segments returns the drawn segments of edge e.
func (d *Drawing) Segments(e int) []geom.Segment {
	pts := d.Polyline(e)
	segs := make([]geom.Segment, len(pts)-1)
	for i := range segs {
		segs[i] = geom.Seg(pts[i], pts[i+1])
	}
	return segs
}

// EdgesCross reports whether drawn edges e1 and e2 conflict: they touch at
// any point other than the position of a graph node they share. Collinear
// overlaps always conflict.
func (d *Drawing) EdgesCross(e1, e2 int) bool {
	return d.segmentsConflict(e1, e2, d.Segments(e1), d.Segments(e2))
}

func (d *Drawing) segmentsConflict(e1, e2 int, segs1, segs2 []geom.Segment) bool {
	a, b := d.G.Edge(e1), d.G.Edge(e2)
	var sharedPos []geom.Point
	for _, u := range []int{a.U, a.V} {
		if u == b.U || u == b.V {
			sharedPos = append(sharedPos, d.Pos[u])
		}
	}
	for _, s := range segs1 {
		for _, t := range segs2 {
			if !geom.SegmentsIntersect(s, t) {
				continue
			}
			if geom.CollinearOverlap(s, t) {
				return true
			}
			// Single intersection point: allowed only when it is a shared
			// graph node's position (then that position lies on both
			// segments and is the unique contact).
			allowed := false
			for _, q := range sharedPos {
				if geom.PointOnSegment(q, s) && geom.PointOnSegment(q, t) {
					allowed = true
					break
				}
			}
			if !allowed {
				return true
			}
		}
	}
	return false
}

// EdgeBounds returns the bounding rectangle of the drawn polyline of edge e
// without materializing the segment list.
func (d *Drawing) EdgeBounds(e int) geom.Rect {
	ed := d.G.Edge(e)
	u, v := d.Pos[ed.U], d.Pos[ed.V]
	bb := geom.R(u.X, u.Y, v.X, v.Y)
	for _, p := range d.Bends[e] {
		bb = bb.Union(geom.R(p.X, p.Y, p.X, p.Y))
	}
	return bb
}

// CrossingsAmong is Crossings restricted to the given edge subset: it
// returns, sorted ascending, every conflicting unordered pair drawn from
// edges whose members include at least one marked edge (marked is indexed by
// global edge id). Edges outside the subset are never tested, so callers
// that know the geometric neighborhood of a change — the incremental
// detection engine passes the edges whose bounds intersect the dirty region
// — pay only for that neighborhood instead of a full sweep. The exact
// conflict predicate is the one Crossings uses.
func (d *Drawing) CrossingsAmong(edges []int, marked []bool) [][2]int {
	if len(edges) == 0 {
		return nil
	}
	segs := make(map[int][]geom.Segment, len(edges))
	var sum int64
	var nseg int
	for _, e := range edges {
		ss := d.Segments(e)
		segs[e] = ss
		for _, s := range ss {
			b := s.Bounds()
			sum += b.Width() + b.Height()
			nseg++
		}
	}
	cell := sum/int64(2*nseg) + 1
	if cell < 16 {
		cell = 16
	}
	g := geom.NewGrid(cell)
	local := make([]int, len(edges)) // grid id -> global edge
	for i, e := range edges {
		bb := geom.Rect{}
		for _, s := range segs[e] {
			bb = bb.Union(s.Bounds())
		}
		g.Insert(int32(i), bb)
		local[i] = e
	}
	var out [][2]int
	g.ForEachPair(func(i, j int32) {
		e1, e2 := local[i], local[j]
		if !marked[e1] && !marked[e2] {
			return
		}
		if e1 > e2 {
			e1, e2 = e2, e1
		}
		if d.segmentsConflict(e1, e2, segs[e1], segs[e2]) {
			out = append(out, [2]int{e1, e2})
		}
	})
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// Crossings returns all unordered pairs of edges that conflict in the
// drawing, using a uniform grid over segment bounding boxes to prune
// candidates.
func (d *Drawing) Crossings() [][2]int {
	m := d.G.M()
	if m == 0 {
		return nil
	}
	// Precompute segment lists once; candidate pruning via a uniform grid
	// with cells near the average edge bbox extent.
	segs := make([][]geom.Segment, m)
	var sum int64
	for e := 0; e < m; e++ {
		segs[e] = d.Segments(e)
		for _, s := range segs[e] {
			b := s.Bounds()
			sum += b.Width() + b.Height()
		}
	}
	cell := sum/int64(2*m) + 1
	if cell < 16 {
		cell = 16
	}
	g := geom.NewGrid(cell)
	for e := 0; e < m; e++ {
		bb := geom.Rect{}
		for _, s := range segs[e] {
			bb = bb.Union(s.Bounds())
		}
		g.Insert(int32(e), bb)
	}
	var out [][2]int
	g.ForEachPair(func(i, j int32) {
		if d.segmentsConflict(int(i), int(j), segs[i], segs[j]) {
			out = append(out, [2]int{int(i), int(j)})
		}
	})
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// Planarize greedily removes crossing edges until the drawing is
// crossing-free, returning the removed edge indices in removal order. At
// each step the crossing edge with minimum weight is removed (ties: more
// remaining crossings first, then lower index), per the paper's "greedily
// removing minimum weight edges that cross other edges".
func (d *Drawing) Planarize() []int {
	return d.PlanarizeGiven(d.Crossings())
}

// PlanarizeGiven is Planarize on a precomputed crossing-pair list (as
// returned by Crossings), letting callers that already paid for the
// geometric sweep — or that partition one global sweep across subdrawings —
// skip recomputing it. The greedy selection is purely combinatorial, so the
// result only depends on pairs and the edge weights.
func (d *Drawing) PlanarizeGiven(pairs [][2]int) []int {
	if len(pairs) == 0 {
		return nil
	}
	// partners[e] = set of edges e currently crosses.
	partners := make(map[int]map[int]bool)
	add := func(a, b int) {
		if partners[a] == nil {
			partners[a] = make(map[int]bool)
		}
		partners[a][b] = true
	}
	for _, p := range pairs {
		add(p[0], p[1])
		add(p[1], p[0])
	}
	var removed []int
	for {
		best := -1
		for e, ps := range partners {
			if len(ps) == 0 {
				continue
			}
			if best == -1 {
				best = e
				continue
			}
			we, wb := d.G.Edge(e).Weight, d.G.Edge(best).Weight
			switch {
			case we < wb:
				best = e
			case we == wb && len(ps) > len(partners[best]):
				best = e
			case we == wb && len(ps) == len(partners[best]) && e < best:
				best = e
			}
		}
		if best == -1 {
			break
		}
		removed = append(removed, best)
		for p := range partners[best] {
			delete(partners[p], best)
		}
		delete(partners, best)
	}
	return removed
}

// WithoutEdges returns a new Drawing with the given edges removed, plus the
// mapping from new edge index to old edge index.
func (d *Drawing) WithoutEdges(removed map[int]bool) (*Drawing, []int) {
	sub, oldIdx := d.G.SubgraphWithoutEdges(removed)
	return d.withSubgraph(sub, oldIdx)
}

// WithoutEdgeSet is WithoutEdges with the removed set as a boolean slice
// indexed by edge.
func (d *Drawing) WithoutEdgeSet(skip []bool) (*Drawing, []int) {
	sub, oldIdx := d.G.SubgraphWithoutEdgeSet(skip)
	return d.withSubgraph(sub, oldIdx)
}

func (d *Drawing) withSubgraph(sub *graph.Graph, oldIdx []int) (*Drawing, []int) {
	nd := NewDrawing(sub, d.Pos)
	for newI, oldI := range oldIdx {
		if pts := d.Bends[oldI]; len(pts) > 0 {
			nd.SetBends(newI, pts...)
		}
	}
	return nd, oldIdx
}

// InducedDrawing is one part of a drawing partition: a standalone Drawing
// over the part's nodes plus the node/edge index maps back into the parent.
type InducedDrawing struct {
	D *Drawing
	// Nodes maps new node index -> old node index (ascending).
	Nodes []int
	// EdgeOf maps new edge index -> old edge index (ascending).
	EdgeOf []int
}

// InducedComponents partitions the drawing by node labels (every edge must
// stay within one part; see graph.InducedComponents) and returns one
// standalone drawing per part with positions and bend polylines carried
// over. Node and edge order is preserved inside each part.
func (d *Drawing) InducedComponents(labels []int, count int) []InducedDrawing {
	return d.InducedComponentsSubset(labels, count, nil)
}

// InducedComponentsSubset is InducedComponents restricted to the parts
// marked in keep: the node and edge index maps are filled for every part,
// but the standalone drawing D is materialized only for kept parts (all of
// them when keep is nil). This is the drawing-level counterpart of
// graph.InducedComponentsSubset, used to re-induce only dirty clusters.
func (d *Drawing) InducedComponentsSubset(labels []int, count int, keep []bool) []InducedDrawing {
	parts, _ := d.G.InducedComponentsSubset(labels, count, keep)
	out := make([]InducedDrawing, count)
	for c, p := range parts {
		out[c] = InducedDrawing{Nodes: p.Nodes, EdgeOf: p.EdgeOf}
		if p.G == nil {
			continue
		}
		pos := make([]geom.Point, p.G.N())
		for newV, oldV := range p.Nodes {
			pos[newV] = d.Pos[oldV]
		}
		nd := NewDrawing(p.G, pos)
		for newE, oldE := range p.EdgeOf {
			if pts := d.Bends[oldE]; len(pts) > 0 {
				nd.SetBends(newE, pts...)
			}
		}
		out[c].D = nd
	}
	return out
}
