package aapsm

import (
	"errors"
	"fmt"

	"repro/internal/layout"
)

// ErrUnknownProfile reports a profile name not present in the registry.
// Errors carrying it are errors.Is-matchable and name the offending profile.
var ErrUnknownProfile = errors.New("unknown rules profile")

// Profile is a named, immutable rules preset. The registry gives CLIs,
// services and snapshots a stable vocabulary for process setups, so a
// session restored on another host re-runs under the exact rules it was
// created with.
type Profile struct {
	// Name is the registry key (stable across releases; recorded in
	// snapshots and reported by services).
	Name string
	// Description is a one-line human summary.
	Description string
	// Rules are the process parameters the profile stands for.
	Rules Rules
}

// The built-in registry. Order is the presentation order of Profiles().
var builtinProfiles = []Profile{
	{
		Name:        "bright-90nm",
		Description: "bright-field 90 nm-node rules (the paper's setup)",
		Rules:       layout.Default90nm(),
	},
	{
		Name:        "dark-90nm",
		Description: "dark-field 90 nm-node variant: apertures etched in chrome, shifters separated by a chrome gap",
		Rules:       layout.Dark90nm(),
	},
}

// Profiles returns the registered profiles in presentation order. The slice
// is a copy; callers may reorder it freely.
func Profiles() []Profile {
	return append([]Profile(nil), builtinProfiles...)
}

// ProfileByName resolves a registry name. Unknown names return a
// StageConfig *FlowError matching ErrUnknownProfile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range builtinProfiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, flowErr(StageConfig, "", fmt.Errorf("%w %q", ErrUnknownProfile, name))
}

// WithProfile configures the engine from a registered profile: the rules are
// taken from the registry and the engine remembers the profile name (see
// Engine.Profile). An unknown name does not panic — the engine is created
// with a sticky error that every stage of every session reports, so services
// resolving user-supplied names can construct first and check Engine.Err.
//
// WithProfile and WithRules both set the rules; the last option wins, and
// WithRules resets the profile name to "" (custom rules).
func WithProfile(name string) EngineOption {
	return func(e *Engine) {
		p, err := ProfileByName(name)
		if err != nil {
			e.err = err
			return
		}
		e.rules = p.Rules
		e.profile = p.Name
	}
}

// Dark90nmRules returns the dark-field 90 nm-node rules variant
// (profile "dark-90nm").
func Dark90nmRules() Rules { return layout.Dark90nm() }
