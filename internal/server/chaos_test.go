package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	aapsm "repro"
	"repro/internal/persist"
)

// retryClient is a well-behaved chaos-test client: it treats 429 (shed) and
// 504 (timeout) as the only acceptable transient failures and retries them,
// so any other unexpected status is a test failure.
type retryClient struct {
	*testClient
}

func (rc retryClient) must(method, path string, body []byte, wantCode int) []byte {
	rc.t.Helper()
	for i := 0; i < 200; i++ {
		code, data := rc.do(method, path, body)
		if code == 429 || code == 504 {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if code != wantCode {
			rc.t.Fatalf("%s %s = %d, want %d: %s", method, path, code, wantCode, data)
		}
		return data
	}
	rc.t.Fatalf("%s %s: still shedding after 200 retries", method, path)
	return nil
}

// chaosMove is moveOp for arbitrary generated layouts: small seeds can
// produce fewer features than the edit-script length, so the index wraps
// (re-moving a feature to the same absolute rect is valid and
// deterministic).
func chaosMove(l *aapsm.Layout, k int) editsRequest {
	return moveOp(l, k%len(l.Features))
}

// chaosDetectBytes is detectBytes with the session ID neutralized too:
// chaos flows compare sessions across servers whose creation orders (and so
// ID sequence counters) legitimately differ.
func chaosDetectBytes(t *testing.T, tc mustClient, id string) []byte {
	t.Helper()
	var dr detectResponse
	if err := json.Unmarshal(tc.must("GET", "/v1/sessions/"+id+"/detect", nil, 200), &dr); err != nil {
		t.Fatal(err)
	}
	dr.ID, dr.Stats.TotalNS = "", 0
	return encodeJSON(t, dr)
}

// TestChaosLoadOracle is the fault-injection acceptance test: >= 100
// concurrent sessions served while the snapshot store randomly rejects
// writes, then a full flush (which must self-heal through the retry queue),
// more edits that are deliberately never persisted, and a kill. The
// restarted daemon must rehydrate every session exactly as flushed — clients
// lose at most the unflushed tail, replay it, and every response must then
// be byte-identical to an uninterrupted oracle server.
func TestChaosLoadOracle(t *testing.T) {
	const (
		sessions  = 100
		writeFail = 0.15
	)
	dir := filepath.Join(t.TempDir(), "snaps")
	openFaulty := func() (*persist.FaultStore, persist.Store) {
		inner, err := persist.NewDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		return persist.NewFaultStore(inner, persist.FaultConfig{Seed: 7, WriteFail: writeFail}), inner
	}

	_, oc0 := newTestServer(t, Config{Engine: persistEngine(), StoreCapacity: 2 * sessions})
	oc := retryClient{oc0}

	fsA, innerA := openFaulty()
	srvA := New(Config{
		Engine:           persistEngine(),
		StoreCapacity:    2 * sessions,
		Snapshots:        fsA,
		FlushInterval:    -1,
		MaxInflight:      64,
		QueueWait:        2 * time.Second,
		SnapshotRetryMin: 5 * time.Millisecond,
		SnapshotRetryMax: 20 * time.Millisecond,
	})
	tsA0 := newTestClientServer(t, srvA)
	tsA := retryClient{&tsA0.testClient}

	// Phase A: concurrent create + edit + detect load on both servers, every
	// detect compared byte-for-byte. The store is already lossy here; none of
	// these requests may surface that to clients.
	ids := make([]string, sessions)  // chaos-server session IDs
	oids := make([]string, sessions) // oracle-server session IDs (orderings differ)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l := loadLayout(200 + i)
			body := layoutText(t, l)
			var real, want createResponse
			if err := json.Unmarshal(tsA.must("POST", "/v1/sessions", body, 200), &real); err != nil {
				t.Error(err)
				return
			}
			if err := json.Unmarshal(oc.must("POST", "/v1/sessions", body, 200), &want); err != nil {
				t.Error(err)
				return
			}
			ids[i], oids[i] = real.ID, want.ID
			for k := 0; k < 2; k++ {
				ops := encodeJSON(t, chaosMove(l, k))
				tsA.must("POST", "/v1/sessions/"+real.ID+"/edits", ops, 200)
				oc.must("POST", "/v1/sessions/"+want.ID+"/edits", ops, 200)
			}
			if got, want := chaosDetectBytes(t, tsA, real.ID), chaosDetectBytes(t, oc, want.ID); !bytes.Equal(got, want) {
				t.Errorf("flow %d detect diverged under write faults:\n got %s\nwant %s", i, got, want)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Checkpoint: the sweep hits the lossy store, fails for ~writeFail of the
	// sessions, and the retry queue must land every one of them anyway.
	srvA.FlushAll()
	waitFor(t, 15*time.Second, func() bool {
		refs, err := innerA.List()
		return err == nil && len(refs) == sessions && srvA.pendingRetries() == 0
	}, "flush retries to persist all sessions through the lossy store")
	if srvA.metrics.snapshotWriteErrors.Load() == 0 || srvA.metrics.snapshotRetries.Load() == 0 {
		t.Fatalf("fault injection observed no failures (errors=%d retries=%d) — chaos config inert",
			srvA.metrics.snapshotWriteErrors.Load(), srvA.metrics.snapshotRetries.Load())
	}
	metrics := string(tsA.must("GET", "/metrics", nil, 200))
	for _, want := range []string{
		"aapsmd_snapshot_write_errors_total",
		"aapsmd_snapshot_write_retries_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Phase B: one more edit per session on both servers, never flushed —
	// this is the "at most one flush interval" of work a crash may lose.
	for i, id := range ids {
		l := loadLayout(200 + i)
		ops := encodeJSON(t, chaosMove(l, 2))
		tsA.must("POST", "/v1/sessions/"+id+"/edits", ops, 200)
		oc.must("POST", "/v1/sessions/"+oids[i]+"/edits", ops, 200)
	}

	// Kill: no drain, no flush — in-memory state (the phase-B edits) is gone.
	srvA.Close()
	tsA0.shutdown()

	// Restart over the same directory, store still lossy. Every session must
	// rehydrate at its flushed state; clients replay the lost tail and end up
	// byte-identical to the never-interrupted oracle.
	fsB, _ := openFaulty()
	srvB, tb0 := newTestServer(t, Config{
		Engine:           persistEngine(),
		StoreCapacity:    2 * sessions,
		Snapshots:        fsB,
		FlushInterval:    -1,
		SnapshotRetryMin: 5 * time.Millisecond,
		SnapshotRetryMax: 20 * time.Millisecond,
	})
	tb := retryClient{tb0}
	for i, id := range ids {
		l := loadLayout(200 + i)
		var info infoResponse
		if err := json.Unmarshal(tb.must("GET", "/v1/sessions/"+id, nil, 200), &info); err != nil {
			t.Fatal(err)
		}
		if info.Edits != 2 {
			t.Fatalf("flow %d rehydrated with %d edits, want the 2 flushed ones", i, info.Edits)
		}
		tb.must("POST", "/v1/sessions/"+id+"/edits", encodeJSON(t, chaosMove(l, 2)), 200)
		if got, want := chaosDetectBytes(t, tb, id), chaosDetectBytes(t, oc, oids[i]); !bytes.Equal(got, want) {
			t.Fatalf("flow %d diverged from oracle after crash-restart-replay:\n got %s\nwant %s", i, got, want)
		}
	}
	if n := srvB.metrics.snapshotRestores.Load(); n != sessions {
		t.Errorf("snapshot restores after restart = %d, want %d", n, sessions)
	}
}

// TestChaosKillDuringSnapshotWrite: a snapshot write torn mid-flight (the
// process dying with a half-written file on a non-atomic filesystem) must be
// reported to the flushing client, swept at restart, and leave the client a
// clean 404-then-recreate path — while an untouched session on the same
// store rehydrates normally.
func TestChaosKillDuringSnapshotWrite(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	openStore := func() (*persist.FaultStore, persist.Store) {
		inner, err := persist.NewDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		return persist.NewFaultStore(inner, persist.FaultConfig{}), inner
	}

	_, oc := newTestServer(t, Config{Engine: persistEngine()})
	lVictim, lSafe := loadLayout(90), loadLayout(91)

	fs, _ := openStore()
	srvA := New(Config{
		Engine:             persistEngine(),
		Snapshots:          fs,
		FlushInterval:      -1,
		SnapshotRetryQueue: -1, // nothing may quietly repair the torn write before the kill
	})
	tsA := newTestClientServer(t, srvA)
	var victim, safe, ovictim, osafe createResponse
	for _, c := range []struct {
		body         []byte
		into, oracle *createResponse
	}{
		{layoutText(t, lVictim), &victim, &ovictim},
		{layoutText(t, lSafe), &safe, &osafe},
	} {
		if err := json.Unmarshal(tsA.must("POST", "/v1/sessions", c.body, 200), c.into); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(oc.must("POST", "/v1/sessions", c.body, 200), c.oracle); err != nil {
			t.Fatal(err)
		}
	}
	tsA.must("POST", "/v1/sessions/"+victim.ID+"/edits", encodeJSON(t, chaosMove(lVictim, 0)), 200)
	oc.must("POST", "/v1/sessions/"+ovictim.ID+"/edits", encodeJSON(t, chaosMove(lVictim, 0)), 200)
	tsA.must("POST", "/v1/sessions/"+safe.ID+"/edits", encodeJSON(t, chaosMove(lSafe, 0)), 200)
	oc.must("POST", "/v1/sessions/"+osafe.ID+"/edits", encodeJSON(t, chaosMove(lSafe, 0)), 200)

	// The safe session checkpoints cleanly; the victim's flush is torn
	// mid-write and the client is told so.
	tsA.must("POST", "/v1/sessions/"+safe.ID+"/flush", nil, 200)
	fs.TearNextPuts(1)
	var eb errorBody
	if err := json.Unmarshal(tsA.must("POST", "/v1/sessions/"+victim.ID+"/flush", nil, 500), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != "snapshot_failed" {
		t.Fatalf("torn flush error = %+v", eb.Error)
	}
	srvA.Close()
	tsA.shutdown()

	// Restart: the startup sweep removes the torn snapshot, so the victim is
	// simply gone (never served corrupt) while the safe session rehydrates.
	fs2, _ := openStore()
	srvB, tb := newTestServer(t, Config{Engine: persistEngine(), Snapshots: fs2, FlushInterval: -1})
	var info infoResponse
	if err := json.Unmarshal(tb.must("GET", "/v1/sessions/"+safe.ID, nil, 200), &info); err != nil {
		t.Fatal(err)
	}
	if info.Edits != 1 {
		t.Fatalf("safe session rehydrated with %d edits, want 1", info.Edits)
	}
	tb.must("GET", "/v1/sessions/"+victim.ID, nil, 404)

	// The client recovers by recreating (under a fresh ID — the old one is
	// gone for good) and replaying its script, which reconverges with the
	// oracle.
	var again createResponse
	if err := json.Unmarshal(tb.must("POST", "/v1/sessions", layoutText(t, lVictim), 200), &again); err != nil {
		t.Fatal(err)
	}
	if again.Reused {
		t.Fatalf("recreate after torn-write loss reported reused: %+v", again)
	}
	tb.must("POST", "/v1/sessions/"+again.ID+"/edits", encodeJSON(t, chaosMove(lVictim, 0)), 200)
	for _, pair := range [][2]string{{again.ID, ovictim.ID}, {safe.ID, osafe.ID}} {
		if got, want := chaosDetectBytes(t, tb, pair[0]), chaosDetectBytes(t, oc, pair[1]); !bytes.Equal(got, want) {
			t.Fatalf("session %s diverged after torn-write recovery:\n got %s\nwant %s", pair[0], got, want)
		}
	}
	if n := srvB.metrics.snapshotRestores.Load(); n != 1 {
		t.Errorf("snapshot restores = %d, want 1 (the safe session)", n)
	}
	if n := srvB.metrics.snapshotCorrupt.Load(); n != 0 {
		t.Errorf("corrupt snapshots served to the restarted daemon = %d, want 0 (sweep should have removed them)", n)
	}
}

// TestBlobWriteRetries: blob archival retries transient store failures with
// backoff instead of failing the upload.
func TestBlobWriteRetries(t *testing.T) {
	fbs := persist.NewFaultBlobStore(persist.NewMemBlobStore(), persist.FaultConfig{})
	srv := New(Config{
		Engine:           persistEngine(),
		Blobs:            fbs,
		SnapshotRetryMin: time.Millisecond,
		SnapshotRetryMax: 2 * time.Millisecond,
	})
	t.Cleanup(srv.Close)
	payload := []byte("raw gds payload")
	fbs.FailNextPuts(2, nil)
	h, err := srv.putBlobRetry(payload)
	if err != nil {
		t.Fatalf("putBlobRetry with 2 transient failures: %v", err)
	}
	if want := persist.BlobHash(payload); h != want {
		t.Fatalf("blob hash = %s, want %s", h, want)
	}
	if n := srv.metrics.blobRetries.Load(); n != 2 {
		t.Fatalf("blob retries = %d, want 2", n)
	}
	// A store that stays down exhausts the attempts and reports the error.
	fbs.FailNextPuts(100, fmt.Errorf("still down"))
	if _, err := srv.putBlobRetry(payload); err == nil {
		t.Fatal("putBlobRetry succeeded against a dead store")
	}
}
