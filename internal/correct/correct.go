// Package correct implements the paper's layout modification scheme
// (§3.2): AAPSM conflicts selected by the detection step are corrected by
// inserting end-to-end horizontal and/or vertical spaces across the whole
// layout. Cut lines and widths are chosen by a weighted set cover over the
// conflicts' correction intervals; applying the cuts stretches only feature
// lengths, never widths, so the modification cannot introduce DRC errors.
package correct

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/setcover"
	"repro/internal/shifter"
)

// Direction of an end-to-end space.
type Direction int8

const (
	// VerticalCut is a vertical line at X=Pos: everything with x >= Pos
	// shifts right by Width (adds horizontal space).
	VerticalCut Direction = iota
	// HorizontalCut is a horizontal line at Y=Pos: everything with y >= Pos
	// shifts up by Width.
	HorizontalCut
)

func (d Direction) String() string {
	if d == HorizontalCut {
		return "horizontal"
	}
	return "vertical"
}

// Cut is one chosen end-to-end space.
type Cut struct {
	Dir      Direction
	Pos      int64
	Width    int64
	Corrects []int // indices into the plan's Conflicts
}

// Plan is a complete layout modification: the cuts to insert and the
// conflicts they resolve.
type Plan struct {
	Conflicts []core.Conflict
	Cuts      []Cut
	// Unfixable conflicts cannot be corrected by spacing in either axis
	// (feature-edge conflicts and T-shape-like overlaps); the paper routes
	// these to mask splitting.
	Unfixable []int
	// AddedWidth/AddedHeight are the summed cut widths per axis.
	AddedWidth  int64
	AddedHeight int64
	// GridLines is the number of candidate lines considered (Table 2's
	// "Grid" column reports the chosen count; see Stats).
	GridLines int
}

// MaxPerLine returns the largest number of conflicts corrected by a single
// cut (Table 2's "Max" column).
func (p *Plan) MaxPerLine() int {
	best := 0
	for _, c := range p.Cuts {
		if len(c.Corrects) > best {
			best = len(c.Corrects)
		}
	}
	return best
}

// interval is a candidate correction range for one conflict along one axis.
type interval struct {
	conflict int
	dir      Direction
	lo, hi   int64 // valid cut positions (inclusive)
	need     int64 // required inserted width
}

// AxisCut is one axis' candidate cut range for a conflict: positions in
// [Lo, Hi] with inserted width Need. OK is false when no cut on this axis can
// separate the pair.
type AxisCut struct {
	Lo, Hi int64
	Need   int64
	OK     bool
}

// Intervals groups a conflict's candidate cut ranges on both axes. The value
// depends only on the two conflicting features' rectangles and the rules, so
// the incremental pipeline caches it under the conflict's stable overlap-pair
// identity across edits.
type Intervals struct {
	V, H AxisCut
}

// IntervalsFor computes the candidate cut ranges of one conflict. A
// feature-edge conflict (not correctable by spacing) yields the zero value.
func IntervalsFor(l *layout.Layout, r layout.Rules, set *shifter.Set, c core.Conflict) Intervals {
	var out Intervals
	if c.Meta.Kind != core.OverlapEdge {
		return out
	}
	sa := set.Shifters[c.Meta.S1]
	sb := set.Shifters[c.Meta.S2]
	fa := l.Features[sa.Feature].Rect
	fb := l.Features[sb.Feature].Rect
	// A cut separates the conflicting shifters by moving one of their
	// *features* (shifters are regenerated from features after modification).
	// The cut must pass strictly between the two features' spans; the width
	// must close the signed shifter gap — overlapping shifter projections
	// need more than the nominal deficit.
	if iv, need, ok := cutInterval(fa.X0, fa.X1, fb.X0, fb.X1,
		sa.Rect.X0, sa.Rect.X1, sb.Rect.X0, sb.Rect.X1, r.MinShifterSpacing); ok {
		out.V = AxisCut{Lo: iv.Lo, Hi: iv.Hi, Need: need, OK: true}
	}
	if iv, need, ok := cutInterval(fa.Y0, fa.Y1, fb.Y0, fb.Y1,
		sa.Rect.Y0, sa.Rect.Y1, sb.Rect.Y0, sb.Rect.Y1, r.MinShifterSpacing); ok {
		out.H = AxisCut{Lo: iv.Lo, Hi: iv.Hi, Need: need, OK: true}
	}
	return out
}

// CutChecker reports whether an end-to-end cut at pos is legal: it must only
// stretch feature lengths, never widths.
type CutChecker func(dir Direction, pos int64) bool

// NewCutChecker builds a CutChecker over the layout's current features using
// per-direction span indexes: a vertical cut is invalid when it stabs the
// x-span of any vertical feature, and symmetrically. O(log n) per query after
// one O(n log n) build; the incremental engine maintains the same two span
// sets persistently across edits instead of rebuilding them here.
func NewCutChecker(l *layout.Layout) CutChecker {
	var v, h geom.SpanSet
	for _, f := range l.Features {
		if f.Orient() == layout.Vertical {
			v.Insert(f.Rect.X0, f.Rect.X1)
		} else {
			h.Insert(f.Rect.Y0, f.Rect.Y1)
		}
	}
	return func(dir Direction, pos int64) bool {
		if dir == VerticalCut {
			return !v.Stab(pos)
		}
		return !h.Stab(pos)
	}
}

// BuildPlan chooses cuts correcting the given conflicts on layout l.
// Conflicts must come from a detection on the same layout and rules.
func BuildPlan(l *layout.Layout, r layout.Rules, set *shifter.Set, conflicts []core.Conflict) (*Plan, error) {
	ivsets := make([]Intervals, len(conflicts))
	for ci, c := range conflicts {
		ivsets[ci] = IntervalsFor(l, r, set, c)
	}
	return BuildPlanIntervals(conflicts, ivsets, NewCutChecker(l))
}

// BuildPlanIntervals is BuildPlan on precomputed per-conflict intervals and
// an externally supplied cut-position checker. The incremental pipeline calls
// it with cached intervals and the persistent span indexes of its edit
// session; results are identical to BuildPlan on the same layout because both
// paths share every decision procedure.
func BuildPlanIntervals(conflicts []core.Conflict, ivsets []Intervals, valid CutChecker) (*Plan, error) {
	p := &Plan{Conflicts: conflicts}
	var ivs []interval
	for ci, c := range conflicts {
		if c.Meta.Kind != core.OverlapEdge {
			p.Unfixable = append(p.Unfixable, ci)
			continue
		}
		got := 0
		if ax := ivsets[ci].V; ax.OK {
			ivs = append(ivs, interval{ci, VerticalCut, ax.Lo, ax.Hi, ax.Need})
			got++
		}
		if ax := ivsets[ci].H; ax.OK {
			ivs = append(ivs, interval{ci, HorizontalCut, ax.Lo, ax.Hi, ax.Need})
			got++
		}
		if got == 0 {
			p.Unfixable = append(p.Unfixable, ci)
		}
	}
	if len(ivs) == 0 {
		return p, nil
	}

	// Candidate grid lines: interval endpoints (paper step 3), filtered so
	// a cut never stretches a feature's width — a vertical line must not
	// pass through the x-span of any vertical feature, and symmetrically.
	type lineKey struct {
		dir Direction
		pos int64
	}
	cands := map[lineKey]bool{}
	for _, iv := range ivs {
		for _, pos := range []int64{iv.lo, iv.hi} {
			if valid(iv.dir, pos) {
				cands[lineKey{iv.dir, pos}] = true
			}
		}
	}
	lines := make([]lineKey, 0, len(cands))
	for k := range cands {
		lines = append(lines, k)
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].dir != lines[j].dir {
			return lines[i].dir < lines[j].dir
		}
		return lines[i].pos < lines[j].pos
	})
	p.GridLines = len(lines)

	// Weighted set cover: each line covers the conflicts whose interval
	// contains it; its weight is the largest width those conflicts need.
	sets := make([]setcover.Set, len(lines))
	covers := make([][]int, len(lines))
	for li, lk := range lines {
		var members []int
		var w int64
		for _, iv := range ivs {
			if iv.dir == lk.dir && iv.lo <= lk.pos && lk.pos <= iv.hi {
				members = append(members, iv.conflict)
				if iv.need > w {
					w = iv.need
				}
			}
		}
		sets[li] = setcover.Set{Weight: w, Members: members}
		covers[li] = members
	}
	res := setcover.Solve(len(conflicts), sets)
	// Elements uncovered by any line but having intervals: should not
	// happen (their own endpoints are candidates unless filtered invalid);
	// report them unfixable.
	coveredByLine := map[int]bool{}
	for _, li := range res.Chosen {
		for _, m := range covers[li] {
			coveredByLine[m] = true
		}
	}
	hasInterval := map[int]bool{}
	for _, iv := range ivs {
		hasInterval[iv.conflict] = true
	}
	for ci := range conflicts {
		if hasInterval[ci] && !coveredByLine[ci] {
			p.Unfixable = append(p.Unfixable, ci)
		}
	}
	sort.Ints(p.Unfixable)

	for _, li := range res.Chosen {
		lk := lines[li]
		cut := Cut{Dir: lk.dir, Pos: lk.pos, Width: sets[li].Weight, Corrects: covers[li]}
		p.Cuts = append(p.Cuts, cut)
		if lk.dir == VerticalCut {
			p.AddedWidth += cut.Width
		} else {
			p.AddedHeight += cut.Width
		}
	}
	sort.Slice(p.Cuts, func(i, j int) bool {
		if p.Cuts[i].Dir != p.Cuts[j].Dir {
			return p.Cuts[i].Dir < p.Cuts[j].Dir
		}
		return p.Cuts[i].Pos < p.Cuts[j].Pos
	})
	return p, nil
}

// cutInterval computes the valid cut positions along one axis for a
// conflict between shifters (spans [sa0,sa1], [sb0,sb1]) of features (spans
// [fa0,fa1], [fb0,fb1]). The cut must fall strictly after the left feature
// and at or before the right feature: positions in (leftF.hi, rightF.lo].
// need is the inserted width that brings the trailing shifter's edge to the
// minimum spacing from the leading one (the signed gap may be negative when
// shifter projections overlap). ok is false when the features' spans overlap
// or abut — then no space can pass between them on this axis.
func cutInterval(fa0, fa1, fb0, fb1, sa0, sa1, sb0, sb1, minSpacing int64) (geom.Interval, int64, bool) {
	clamp := func(w int64) int64 {
		if w < 1 {
			return 1 // defensive: a real conflict always needs positive width
		}
		return w
	}
	switch {
	case fa1 < fb0: // feature A left/below, B moves
		return geom.Interval{Lo: fa1 + 1, Hi: fb0}, clamp(minSpacing - (sb0 - sa1)), true
	case fb1 < fa0: // feature B left/below, A moves
		return geom.Interval{Lo: fb1 + 1, Hi: fa0}, clamp(minSpacing - (sa0 - sb1)), true
	default:
		return geom.Interval{}, 0, false
	}
}

// Apply executes the plan on a copy of the layout: coordinates at or beyond
// a cut shift by its width; features spanning a cut stretch in length. The
// original layout is untouched.
func Apply(l *layout.Layout, p *Plan) *layout.Layout {
	var vcuts, hcuts []Cut
	for _, c := range p.Cuts {
		if c.Dir == VerticalCut {
			vcuts = append(vcuts, c)
		} else {
			hcuts = append(hcuts, c)
		}
	}
	mapCoord := func(cuts []Cut, c int64) int64 {
		var off int64
		for _, cut := range cuts {
			if cut.Pos <= c {
				off += cut.Width
			}
		}
		return c + off
	}
	out := layout.New(l.Name + "+spaces")
	for _, f := range l.Features {
		nr := geom.Rect{
			X0: mapCoord(vcuts, f.Rect.X0),
			Y0: mapCoord(hcuts, f.Rect.Y0),
			X1: mapCoord(vcuts, f.Rect.X1),
			Y1: mapCoord(hcuts, f.Rect.Y1),
		}
		out.AddOnLayer(nr, f.Layer)
	}
	return out
}

// Stats summarizes a correction for Table 2.
type Stats struct {
	Design       string
	AreaBefore   int64
	AreaAfter    int64
	Conflicts    int
	Cuts         int
	MaxPerLine   int
	Unfixable    int
	AreaIncrease float64 // percent
}

// Summarize computes the Table 2 row for a plan applied to l.
func Summarize(l *layout.Layout, p *Plan, modified *layout.Layout) Stats {
	st := Stats{
		Design:     l.Name,
		AreaBefore: l.Area(),
		AreaAfter:  modified.Area(),
		Conflicts:  len(p.Conflicts),
		Cuts:       len(p.Cuts),
		MaxPerLine: p.MaxPerLine(),
		Unfixable:  len(p.Unfixable),
	}
	if st.AreaBefore > 0 {
		st.AreaIncrease = 100 * float64(st.AreaAfter-st.AreaBefore) / float64(st.AreaBefore)
	}
	return st
}

// String renders the stats like a Table 2 row.
func (s Stats) String() string {
	return fmt.Sprintf("%-14s area=%dµm² conflicts=%d cuts=%d max=%d unfixable=%d area+%.2f%%",
		s.Design, s.AreaBefore/1e6, s.Conflicts, s.Cuts, s.MaxPerLine, s.Unfixable, s.AreaIncrease)
}
