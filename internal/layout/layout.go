// Package layout models the polysilicon-layer layouts the AAPSM flow
// operates on: axis-aligned rectangular features plus the process rules
// (critical width threshold, shifter dimensions and spacing, DRC minima)
// that drive shifter synthesis and conflict detection.
//
// Coordinates are int64 nanometers throughout.
package layout

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/geom"
)

// Feature is a drawn rectangle on the critical (poly) layer.
type Feature struct {
	Rect  geom.Rect
	Layer int // GDSII layer number; 0 is the default poly layer
	// Group links sub-rectangles decomposed from one rectilinear polygon:
	// 0 marks a standalone rectangle, any other value is shared by every
	// sub-rectangle of the same source polygon, so edits and DRC reports can
	// be attributed back to the drawn shape.
	Group int
}

// Orientation of a feature, derived from its aspect ratio.
type Orientation int

const (
	// Horizontal features run left-right (width >= height): shifters go
	// above and below.
	Horizontal Orientation = iota
	// Vertical features run bottom-top (height > width): shifters go left
	// and right.
	Vertical
)

// Orient classifies a feature: ties count as Horizontal.
func (f Feature) Orient() Orientation {
	if f.Rect.Height() > f.Rect.Width() {
		return Vertical
	}
	return Horizontal
}

// Layout is a named collection of features.
type Layout struct {
	Name     string
	Features []Feature
	// Hier, when non-nil, records the cell hierarchy this flat layout was
	// expanded from. It never changes detection results — it only enables the
	// instance-aware fast path to reuse per-cluster work across repeated
	// placements. The plain-text interchange format does not carry it.
	Hier *Hierarchy
}

// Hierarchy is the sidecar record of the cell structure a flattened layout
// came from: which cells exist, which cell each placement instantiates, and
// which placement each flattened feature belongs to.
type Hierarchy struct {
	// Cells are the library cell names, indexed by PlacementCell values.
	Cells []string
	// PlacementCell[p] is the cell index instantiated by placement p.
	PlacementCell []int32
	// FeatureInstance parallels Layout.Features: the placement index each
	// feature was expanded from, or -1 for features drawn at top level (or
	// features edited after flattening, whose provenance is lost).
	FeatureInstance []int32
}

// Clone returns a deep copy.
func (h *Hierarchy) Clone() *Hierarchy {
	if h == nil {
		return nil
	}
	return &Hierarchy{
		Cells:           append([]string(nil), h.Cells...),
		PlacementCell:   append([]int32(nil), h.PlacementCell...),
		FeatureInstance: append([]int32(nil), h.FeatureInstance...),
	}
}

// Validate checks internal consistency against a feature count.
func (h *Hierarchy) Validate(nFeatures int) error {
	if h == nil {
		return nil
	}
	if len(h.FeatureInstance) != nFeatures {
		return fmt.Errorf("layout: hierarchy covers %d features, layout has %d", len(h.FeatureInstance), nFeatures)
	}
	for p, c := range h.PlacementCell {
		if c < 0 || int(c) >= len(h.Cells) {
			return fmt.Errorf("layout: placement %d references cell %d of %d", p, c, len(h.Cells))
		}
	}
	for fi, p := range h.FeatureInstance {
		if p < -1 || int(p) >= len(h.PlacementCell) {
			return fmt.Errorf("layout: feature %d references placement %d of %d", fi, p, len(h.PlacementCell))
		}
	}
	return nil
}

// New creates an empty layout.
func New(name string) *Layout { return &Layout{Name: name} }

// Add appends a feature rectangle on layer 0 and returns its index.
func (l *Layout) Add(r geom.Rect) int {
	l.Features = append(l.Features, Feature{Rect: r})
	return len(l.Features) - 1
}

// AddOnLayer appends a feature on an explicit layer.
func (l *Layout) AddOnLayer(r geom.Rect, layer int) int {
	l.Features = append(l.Features, Feature{Rect: r, Layer: layer})
	return len(l.Features) - 1
}

// BBox returns the bounding box of all features (zero Rect when empty).
func (l *Layout) BBox() geom.Rect {
	var bb geom.Rect
	for _, f := range l.Features {
		bb = bb.Union(f.Rect)
	}
	return bb
}

// Area returns the bounding-box area in nm² — the quantity Table 2's
// "% area increase" is measured against.
func (l *Layout) Area() int64 { return l.BBox().Area() }

// Clone returns a deep copy.
func (l *Layout) Clone() *Layout {
	out := &Layout{
		Name:     l.Name,
		Features: append([]Feature(nil), l.Features...),
		Hier:     l.Hier.Clone(),
	}
	return out
}

// Tone selects the AAPSM process polarity a rule set targets.
type Tone int64

const (
	// BrightField is the paper's process: features are drawn chrome on a
	// clear field, flanked by phase apertures. The zero value, so legacy
	// rule structs keep their meaning.
	BrightField Tone = iota
	// DarkField inverts the polarity: features are clear openings in a
	// chrome field. Apertures must keep a positive chrome gap to the
	// openings they flank (ShifterGap > 0), and the mask view emits the
	// features on the opening layer instead of the chrome layer.
	DarkField
)

// String implements fmt.Stringer.
func (t Tone) String() string {
	switch t {
	case BrightField:
		return "bright"
	case DarkField:
		return "dark"
	default:
		return fmt.Sprintf("tone(%d)", int64(t))
	}
}

// Rules holds the process parameters of the flow. All lengths in nm.
type Rules struct {
	// CriticalWidth: features whose drawn width (smaller rectangle
	// dimension) is strictly below this threshold are critical and must be
	// phase-shifted.
	CriticalWidth int64
	// ShifterWidth is the width of each flanking phase shifter.
	ShifterWidth int64
	// ShifterGap is the clearance between a critical feature's edge and its
	// shifter (0: shifters abut the feature).
	ShifterGap int64
	// MinShifterSpacing: shifters closer than this must carry the same
	// phase (the paper's "overlapping shifters", Condition 2).
	MinShifterSpacing int64
	// MinFeatureWidth and MinFeatureSpacing are the DRC minima used to
	// validate layouts before and after modification.
	MinFeatureWidth   int64
	MinFeatureSpacing int64
	// FeatureConflictWeight is the bipartization cost of deleting a
	// Condition-1 edge (giving up phase shifting of a feature, which the
	// flow must avoid); it dominates any spacing cost.
	FeatureConflictWeight int64
	// Tone selects bright-field (zero value) or dark-field polarity.
	Tone Tone
}

// Default90nm returns representative 90 nm-node rules (the paper's
// experiments are "90 nm designs with typical values of threshold width,
// shifter dimensions and shifter spacing").
func Default90nm() Rules {
	return Rules{
		CriticalWidth:         150,
		ShifterWidth:          200,
		ShifterGap:            0,
		MinShifterSpacing:     300,
		MinFeatureWidth:       100,
		MinFeatureSpacing:     140,
		FeatureConflictWeight: 1 << 20,
	}
}

// Dark90nm returns the dark-field counterpart of Default90nm: clear
// openings in a chrome field. The aperture geometry differs where the
// inverted polarity demands it — apertures are wider to compensate for the
// chrome rim, and a positive gap keeps chrome between aperture and opening.
func Dark90nm() Rules {
	return Rules{
		CriticalWidth:         150,
		ShifterWidth:          220,
		ShifterGap:            20,
		MinShifterSpacing:     300,
		MinFeatureWidth:       100,
		MinFeatureSpacing:     140,
		FeatureConflictWeight: 1 << 20,
		Tone:                  DarkField,
	}
}

// Validate sanity-checks the rule values.
func (r Rules) Validate() error {
	if r.CriticalWidth <= 0 || r.ShifterWidth <= 0 || r.MinShifterSpacing <= 0 {
		return fmt.Errorf("layout: non-positive rule values: %+v", r)
	}
	if r.ShifterGap < 0 {
		return fmt.Errorf("layout: negative shifter gap")
	}
	if r.Tone != BrightField && r.Tone != DarkField {
		return fmt.Errorf("layout: unknown tone %d", r.Tone)
	}
	if r.Tone == DarkField && r.ShifterGap <= 0 {
		return fmt.Errorf("layout: dark-field rules need ShifterGap > 0 (chrome between aperture and opening)")
	}
	if r.MinFeatureWidth <= 0 || r.MinFeatureSpacing <= 0 {
		return fmt.Errorf("layout: non-positive DRC minima")
	}
	if r.FeatureConflictWeight <= r.MinShifterSpacing {
		return fmt.Errorf("layout: FeatureConflictWeight must dominate spacing costs")
	}
	return nil
}

// IsCritical reports whether a feature must be phase-shifted under r.
func (r Rules) IsCritical(f Feature) bool {
	return f.Rect.MinDim() < r.CriticalWidth && !f.Rect.Empty()
}

// CriticalIndices returns the indices of critical features.
func (l *Layout) CriticalIndices(r Rules) []int {
	var out []int
	for i, f := range l.Features {
		if r.IsCritical(f) {
			out = append(out, i)
		}
	}
	return out
}

// WriteText serializes the layout to the plain-text interchange format:
// one header line "layout <name>", then one "rect x0 y0 x1 y1 [layer [group]]"
// line per feature. The polygon group field is emitted only when non-zero,
// so rectangle-only layouts keep their historic byte format. Hierarchy is
// never serialized — the text format is flat by design.
func (l *Layout) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "layout %s\n", sanitizeName(l.Name)); err != nil {
		return err
	}
	for _, f := range l.Features {
		var err error
		if f.Group != 0 {
			_, err = fmt.Fprintf(bw, "rect %d %d %d %d %d %d\n",
				f.Rect.X0, f.Rect.Y0, f.Rect.X1, f.Rect.Y1, f.Layer, f.Group)
		} else {
			_, err = fmt.Fprintf(bw, "rect %d %d %d %d %d\n",
				f.Rect.X0, f.Rect.Y0, f.Rect.X1, f.Rect.Y1, f.Layer)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the plain-text format written by WriteText.
func ReadText(r io.Reader) (*Layout, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var l *Layout
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "layout":
			if l != nil {
				return nil, fmt.Errorf("layout: line %d: duplicate header", line)
			}
			name := ""
			if len(fields) > 1 {
				name = fields[1]
			}
			l = New(name)
		case "rect":
			if l == nil {
				return nil, fmt.Errorf("layout: line %d: rect before header", line)
			}
			if len(fields) < 5 || len(fields) > 7 {
				return nil, fmt.Errorf("layout: line %d: want 4 to 6 rect args", line)
			}
			var v [6]int64
			for i := 1; i < len(fields); i++ {
				if _, err := fmt.Sscanf(fields[i], "%d", &v[i-1]); err != nil {
					return nil, fmt.Errorf("layout: line %d: %w", line, err)
				}
			}
			l.Features = append(l.Features, Feature{
				Rect:  geom.R(v[0], v[1], v[2], v[3]),
				Layer: int(v[4]),
				Group: int(v[5]),
			})
		default:
			return nil, fmt.Errorf("layout: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if l == nil {
		return nil, fmt.Errorf("layout: empty input")
	}
	return l, nil
}

func sanitizeName(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.ReplaceAll(s, " ", "_")
}
