package tshape

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/shifter"
)

func TestClassifyKinds(t *testing.T) {
	tests := []struct {
		name string
		a, b geom.Rect
		want Kind
	}{
		{"corner", geom.R(0, 0, 10, 10), geom.R(10, 10, 20, 20), Corner},
		{"ell", geom.R(0, 0, 10, 10), geom.R(10, 0, 20, 10), Ell},
		{"tee vertical stem", geom.R(0, 10, 30, 20), geom.R(10, 0, 20, 10), Tee},
		{"tee horizontal stem", geom.R(10, 0, 20, 30), geom.R(20, 10, 40, 20), Tee},
		{"overlap", geom.R(0, 0, 10, 10), geom.R(5, 5, 15, 15), Overlap},
		{"partial edge both inside", geom.R(0, 0, 10, 10), geom.R(10, 2, 20, 8), Tee},
	}
	for _, tc := range tests {
		got := classify(0, 1, tc.a, tc.b)
		if got.Kind != tc.want {
			t.Errorf("%s: kind = %v, want %v", tc.name, got.Kind, tc.want)
		}
	}
}

func TestFindJunctions(t *testing.T) {
	l := layout.New("j")
	l.Add(geom.R(0, 0, 100, 1000))     // 0: vertical
	l.Add(geom.R(100, 450, 600, 550))  // 1: horizontal, T against 0's right side
	l.Add(geom.R(600, 450, 700, 1000)) // 2: vertical, L bend with 1's right end
	l.Add(geom.R(2000, 0, 2100, 1000)) // 3: isolated
	js := Find(l)
	if len(js) != 2 {
		t.Fatalf("junctions = %v", js)
	}
	if js[0].A != 0 || js[0].B != 1 || js[0].Kind != Tee {
		t.Errorf("first junction = %v", js[0])
	}
	if js[1].A != 1 || js[1].B != 2 || js[1].Kind != Ell {
		t.Errorf("second junction = %v", js[1])
	}
	jf := JunctionFeatures(js)
	if len(jf) != 3 || jf[3] {
		t.Errorf("junction features = %v", jf)
	}
}

func TestFindEmptyAndSingle(t *testing.T) {
	if js := Find(layout.New("e")); js != nil {
		t.Error("empty layout junctions")
	}
	l := layout.New("s")
	l.Add(geom.R(0, 0, 10, 10))
	if js := Find(l); js != nil {
		t.Error("single feature junctions")
	}
}

func TestSplitConflicts(t *testing.T) {
	// Features: 0 and 1 form a T; 2 and 3 are a plain dense pair.
	l := layout.New("split")
	l.Add(geom.R(0, 0, 100, 1000))
	l.Add(geom.R(100, 450, 500, 550))
	l.Add(geom.R(3000, 0, 3100, 1000))
	l.Add(geom.R(3350, 0, 3450, 1000))
	r := layout.Default90nm()
	set, err := shifter.Generate(l, r)
	if err != nil {
		t.Fatal(err)
	}
	js := Find(l)
	if len(js) != 1 {
		t.Fatalf("junctions = %v", js)
	}
	// Fake conflicts: one between shifters of features 2/3, one touching
	// feature 0.
	var c23, c0 core.Conflict
	found23, found0 := false, false
	for si, sh := range set.Shifters {
		for sj := si + 1; sj < len(set.Shifters); sj++ {
			fa, fb := sh.Feature, set.Shifters[sj].Feature
			if fa == 2 && fb == 3 && !found23 {
				c23 = core.Conflict{Meta: core.EdgeMeta{Kind: core.OverlapEdge, S1: si, S2: sj}}
				found23 = true
			}
			if fa == 0 && fb == 1 && !found0 {
				c0 = core.Conflict{Meta: core.EdgeMeta{Kind: core.OverlapEdge, S1: si, S2: sj}}
				found0 = true
			}
		}
	}
	if !found23 || !found0 {
		t.Fatal("could not build synthetic conflicts")
	}
	plain, junctioned := SplitConflicts([]core.Conflict{c23, c0}, set, js)
	if len(plain) != 1 || plain[0] != 0 {
		t.Errorf("plain = %v", plain)
	}
	if len(junctioned) != 1 || junctioned[0] != 1 {
		t.Errorf("junctioned = %v", junctioned)
	}
}
