package correct

import (
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/setcover"
	"repro/internal/shifter"
)

// Standard-cell aware correction (paper §5 future work: "extensions of the
// layout modification scheme to handle standard-cell blocks, that can
// restrict the insertion of cuts to certain regions and exploit the
// white-space inherent in the layout"): BuildPlanRestricted behaves like
// BuildPlan but only admits cut lines inside caller-approved windows —
// typically routing channels between cell rows or placement white space.

// CutRegions lists the coordinate windows where end-to-end spaces may be
// inserted. Nil slices mean "anywhere" for that direction.
type CutRegions struct {
	// VerticalX: allowed x windows for vertical cuts.
	VerticalX []geom.Interval
	// HorizontalY: allowed y windows for horizontal cuts.
	HorizontalY []geom.Interval
}

func (cr CutRegions) allows(dir Direction, pos int64) bool {
	var windows []geom.Interval
	if dir == VerticalCut {
		windows = cr.VerticalX
	} else {
		windows = cr.HorizontalY
	}
	if windows == nil {
		return true
	}
	for _, w := range windows {
		if w.Contains(pos) {
			return true
		}
	}
	return false
}

// clip restricts an interval to the allowed windows, returning the clipped
// candidate positions (window ∩ interval endpoints).
func (cr CutRegions) clip(dir Direction, iv geom.Interval) []int64 {
	var windows []geom.Interval
	if dir == VerticalCut {
		windows = cr.VerticalX
	} else {
		windows = cr.HorizontalY
	}
	if windows == nil {
		return []int64{iv.Lo, iv.Hi}
	}
	var out []int64
	for _, w := range windows {
		c := w.Intersect(iv)
		if c.Valid() {
			out = append(out, c.Lo, c.Hi)
		}
	}
	return out
}

// BuildPlanRestricted is BuildPlan with cut positions limited to the given
// regions. Conflicts whose whole correction interval falls outside every
// window become Unfixable (to be handled by widening or mask splitting).
func BuildPlanRestricted(l *layout.Layout, r layout.Rules, set *shifter.Set, conflicts []core.Conflict, regions CutRegions) (*Plan, error) {
	// Reuse BuildPlan's machinery by pre-filtering through a candidate
	// override: the simplest correct implementation re-runs the interval
	// computation with region-clipped candidates.
	p := &Plan{Conflicts: conflicts}
	var ivs []interval
	for ci, c := range conflicts {
		if c.Meta.Kind != core.OverlapEdge {
			p.Unfixable = append(p.Unfixable, ci)
			continue
		}
		sa := set.Shifters[c.Meta.S1]
		sb := set.Shifters[c.Meta.S2]
		fa := l.Features[sa.Feature].Rect
		fb := l.Features[sb.Feature].Rect
		got := 0
		if iv, need, ok := cutInterval(fa.X0, fa.X1, fb.X0, fb.X1,
			sa.Rect.X0, sa.Rect.X1, sb.Rect.X0, sb.Rect.X1, r.MinShifterSpacing); ok {
			if cand := regions.clip(VerticalCut, iv); len(cand) > 0 {
				ivs = append(ivs, interval{ci, VerticalCut, iv.Lo, iv.Hi, need})
				got++
			}
		}
		if iv, need, ok := cutInterval(fa.Y0, fa.Y1, fb.Y0, fb.Y1,
			sa.Rect.Y0, sa.Rect.Y1, sb.Rect.Y0, sb.Rect.Y1, r.MinShifterSpacing); ok {
			if cand := regions.clip(HorizontalCut, iv); len(cand) > 0 {
				ivs = append(ivs, interval{ci, HorizontalCut, iv.Lo, iv.Hi, need})
				got++
			}
		}
		if got == 0 {
			p.Unfixable = append(p.Unfixable, ci)
		}
	}
	finishPlan(l, p, ivs, regions)
	return p, nil
}

// finishPlan runs the shared grid-line extraction, set cover and cut
// selection, admitting only region-approved positions.
func finishPlan(l *layout.Layout, p *Plan, ivs []interval, regions CutRegions) {
	if len(ivs) == 0 {
		return
	}
	type lineKey struct {
		dir Direction
		pos int64
	}
	valid := NewCutChecker(l)
	cands := map[lineKey]bool{}
	for _, iv := range ivs {
		for _, pos := range regions.clip(iv.dir, geom.Interval{Lo: iv.lo, Hi: iv.hi}) {
			if valid(iv.dir, pos) && regions.allows(iv.dir, pos) {
				cands[lineKey{iv.dir, pos}] = true
			}
		}
	}
	lines := make([]lineKey, 0, len(cands))
	for k := range cands {
		lines = append(lines, k)
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].dir != lines[j].dir {
			return lines[i].dir < lines[j].dir
		}
		return lines[i].pos < lines[j].pos
	})
	p.GridLines = len(lines)

	sets := make([]setcover.Set, len(lines))
	for li, lk := range lines {
		for _, iv := range ivs {
			if iv.dir == lk.dir && iv.lo <= lk.pos && lk.pos <= iv.hi {
				sets[li].Members = append(sets[li].Members, iv.conflict)
				if iv.need > sets[li].Weight {
					sets[li].Weight = iv.need
				}
			}
		}
	}
	res := setcover.Solve(len(p.Conflicts), sets)
	covered := map[int]bool{}
	for _, li := range res.Chosen {
		for _, m := range sets[li].Members {
			covered[m] = true
		}
	}
	hasInterval := map[int]bool{}
	for _, iv := range ivs {
		hasInterval[iv.conflict] = true
	}
	for ci := range p.Conflicts {
		if hasInterval[ci] && !covered[ci] {
			p.Unfixable = append(p.Unfixable, ci)
		}
	}
	sort.Ints(p.Unfixable)
	for _, li := range res.Chosen {
		lk := lines[li]
		cut := Cut{Dir: lk.dir, Pos: lk.pos, Width: sets[li].Weight, Corrects: sets[li].Members}
		p.Cuts = append(p.Cuts, cut)
		if lk.dir == VerticalCut {
			p.AddedWidth += cut.Width
		} else {
			p.AddedHeight += cut.Width
		}
	}
	sort.Slice(p.Cuts, func(i, j int) bool {
		if p.Cuts[i].Dir != p.Cuts[j].Dir {
			return p.Cuts[i].Dir < p.Cuts[j].Dir
		}
		return p.Cuts[i].Pos < p.Cuts[j].Pos
	})
}
