package core

import (
	"encoding/binary"

	"repro/internal/geom"
	"repro/internal/planar"
)

// The instance-aware fast path: layouts flattened from a cell hierarchy
// carry a layout.Hierarchy sidecar tagging each feature with the top-level
// placement it was expanded from. Repeated placements of the same cell
// produce conflict clusters that are exact translations of each other, so
// the expensive planarize → bipartize → recheck pipeline needs to run only
// once per distinct cluster shape and the result can be spliced in for
// every other placement through each cluster's own edge index map.
//
// Correctness is unconditional and does not rest on the instance tags:
// two clusters share a solve only when their canonical signatures — the
// full drawing structure translated to the origin, edge weights, bend
// points and crossing-pair lists — are byte-identical, which makes their
// detectShard inputs identical and the solver deterministic on them. The
// tags only gate which clusters are *candidates* (clusters confined to one
// placement), so stale tags after edits can cost reuse but never
// correctness, and rotated or reflected placements simply hash differently
// and solve flat.

// hierPlan is the reuse plan for one detection run.
type hierPlan struct {
	// rep[c] >= 0 names the cluster whose solved result cluster c shares;
	// -1 means cluster c solves (or merges) on its own.
	rep []int32
	// reused counts clusters receiving a shared result, solved counts the
	// distinct representatives solved for instance-pure clusters, and
	// fallback counts clusters that cross instance boundaries and therefore
	// solve flat.
	reused, solved, fallback int
}

// hierDedupPlan groups the instance-pure shard jobs by canonical signature.
// labels is the node→cluster map; jobs must be fully populated (a full
// detect: every non-empty cluster has a job). Returns nil when the graph
// carries no hierarchy or nothing is eligible.
func hierDedupPlan(cg *ConflictGraph, labels []int, nShards int, jobs []shardJob) *hierPlan {
	h := cg.Hier
	if h == nil || nShards == 0 {
		return nil
	}
	// Fold each feature's placement tag into its cluster: -2 = no features
	// seen yet, -1 = mixed instances or top-level geometry, >= 0 = every
	// feature so far belongs to that one placement. The fold is commutative,
	// so iterating the PairOf map in arbitrary order is deterministic.
	inst := make([]int32, nShards)
	for c := range inst {
		inst[c] = -2
	}
	for fi, pair := range cg.Set.PairOf {
		c := labels[cg.ShifterNode[pair[0]]]
		tag := int32(-1)
		if fi < len(h.FeatureInstance) {
			tag = h.FeatureInstance[fi]
		}
		switch {
		case inst[c] == -2:
			inst[c] = tag //aapsmvet:allow determinism commutative fold: first-write then equality check reaches the same fixpoint in any iteration order
		case inst[c] != tag:
			inst[c] = -1 //aapsmvet:allow determinism commutative fold: any disagreeing tag pins the cluster to -1 regardless of order
		}
	}
	plan := &hierPlan{rep: make([]int32, nShards)}
	for c := range plan.rep {
		plan.rep[c] = -1
	}
	repBySig := make(map[string]int32)
	any := false
	for c := 0; c < nShards; c++ {
		if jobs[c].d == nil || jobs[c].d.G.M() == 0 {
			continue
		}
		if inst[c] < 0 {
			if inst[c] == -1 && clusterTouchesInstance(cg, labels, c, h.FeatureInstance) {
				plan.fallback++
			}
			continue
		}
		sig := clusterSignature(jobs[c].d, jobs[c].pairs)
		if r, ok := repBySig[sig]; ok {
			plan.rep[c] = r
			plan.reused++
		} else {
			repBySig[sig] = int32(c)
			plan.solved++
		}
		any = true
	}
	if !any {
		return nil
	}
	return plan
}

// clusterTouchesInstance reports whether any feature of cluster c carries a
// placement tag >= 0 — distinguishing a genuine instance-boundary fallback
// from a cluster made purely of top-level geometry.
func clusterTouchesInstance(cg *ConflictGraph, labels []int, c int, featInst []int32) bool {
	for fi, pair := range cg.Set.PairOf {
		if labels[cg.ShifterNode[pair[0]]] != c {
			continue
		}
		if fi < len(featInst) && featInst[fi] >= 0 {
			return true
		}
	}
	return false
}

// blankDuplicates clears the jobs of clusters that will reuse a
// representative's result, so runShards skips them.
func (p *hierPlan) blankDuplicates(jobs []shardJob) {
	for c, r := range p.rep {
		if r >= 0 {
			jobs[c] = shardJob{}
		}
	}
}

// spliceResults copies each representative's solved result onto its
// duplicates and marks the duplicates stale in fresh (so merge-time
// duration accounting counts the solve once).
func (p *hierPlan) spliceResults(results []*shardResult, fresh []bool) {
	for c, r := range p.rep {
		if r >= 0 {
			results[c] = results[r]
			if fresh != nil {
				fresh[c] = false
			}
		}
	}
}

// clusterSignature canonicalizes one cluster's detection input into a byte
// string: node positions and bend points translated to the cluster's
// minimum corner, edge endpoints and weights in edge order, and the
// crossing-pair list. Two clusters with equal signatures present identical
// inputs to detectShard.
func clusterSignature(d *planar.Drawing, pairs [][2]int) string {
	g := d.G
	n, m := g.N(), g.M()
	minX, minY := int64(1<<62), int64(1<<62)
	note := func(p geom.Point) {
		if p.X < minX {
			minX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
	}
	for _, p := range d.Pos[:n] {
		note(p)
	}
	for e := 0; e < m; e++ {
		for _, p := range d.Bends[e] {
			note(p)
		}
	}
	buf := make([]byte, 0, 16*(n+m)+8*len(pairs))
	buf = binary.AppendVarint(buf, int64(n))
	buf = binary.AppendVarint(buf, int64(m))
	for _, p := range d.Pos[:n] {
		buf = binary.AppendVarint(buf, p.X-minX)
		buf = binary.AppendVarint(buf, p.Y-minY)
	}
	for e := 0; e < m; e++ {
		ed := g.Edge(e)
		buf = binary.AppendVarint(buf, int64(ed.U))
		buf = binary.AppendVarint(buf, int64(ed.V))
		buf = binary.AppendVarint(buf, ed.Weight)
		bends := d.Bends[e]
		buf = binary.AppendVarint(buf, int64(len(bends)))
		for _, p := range bends {
			buf = binary.AppendVarint(buf, p.X-minX)
			buf = binary.AppendVarint(buf, p.Y-minY)
		}
	}
	buf = binary.AppendVarint(buf, int64(len(pairs)))
	for _, pr := range pairs {
		buf = binary.AppendVarint(buf, int64(pr[0]))
		buf = binary.AppendVarint(buf, int64(pr[1]))
	}
	return string(buf)
}
