package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/planar"
	"repro/internal/tjoin"
)

// Conflict is one detected AAPSM conflict: a constraint edge whose removal
// was selected, resolved back to the pair of shifters that must be pulled
// apart (OverlapEdge) or the feature whose phase shifting must be abandoned
// (FeatureEdge — only chosen when a layout is unfixable by spacing alone).
type Conflict struct {
	Edge    int // edge index in the conflict graph
	Meta    EdgeMeta
	Deficit int64 // extra spacing needed to legalize the pair (OverlapEdge)
}

// Detection is the output of the full flow on one graph representation.
type Detection struct {
	Graph *ConflictGraph
	// CrossingsRemoved (the paper's potential set P): edges deleted so that
	// the drawing becomes an embedded planar graph (flow step 1b).
	CrossingsRemoved []int
	// BipartizationEdges: the minimal deletion set found by the optimal
	// bipartization of the planarized graph (flow step 2). Its size is
	// Table 1's "NP" count when run on the PCG.
	BipartizationEdges []int
	// FinalConflicts: bipartization edges plus those members of P that
	// still violate the two-coloring (flow step 3). Its size is Table 1's
	// PCG/FG count.
	FinalConflicts []Conflict
	// Stats for the benchmark tables.
	Stats Stats
}

// Stats collects the size and runtime figures reported in Table 1.
type Stats struct {
	GraphNodes    int
	GraphEdges    int
	CrossingPairs int
	DualNodes     int
	DualEdges     int
	OddFaces      int
	GadgetNodes   int
	GadgetEdges   int
	MatchTime     time.Duration
	TotalTime     time.Duration
}

// RecheckMode selects how flow step 3 decides which planarization-removed
// edges are real conflicts.
type RecheckMode int8

const (
	// RecheckColoring is the paper's method: two-color the bipartized
	// planar graph once, then flag every removed edge whose endpoints got
	// the same color. Simple but pessimistic — the fixed coloring cannot be
	// adjusted per edge.
	RecheckColoring RecheckMode = iota
	// RecheckParity is this implementation's improvement: seed a parity
	// union-find with the kept edges and re-admit removed edges from
	// heaviest to lightest, flagging only those that genuinely close an odd
	// cycle. Never worse than RecheckColoring (ablation bench
	// BenchmarkRecheckModes).
	RecheckParity
)

// Options configures the detection flow.
type Options struct {
	// Method/GroupCap select the T-join reduction (see tjoin.Options).
	TJoin tjoin.Options
	// Recheck selects the flow step 3 strategy.
	Recheck RecheckMode
}

// Detect runs the complete flow of §3 on a prebuilt conflict graph:
//
//  1. planarize the drawing, collecting removed crossing edges P;
//  2. optimally bipartize the embedded planar remainder via the dual
//     T-join, solved by gadget reduction to minimum-weight perfect matching;
//  3. re-check P against a two-coloring and add violators to the final
//     conflict set.
func Detect(cg *ConflictGraph, opt Options) (*Detection, error) {
	return DetectContext(context.Background(), cg, opt)
}

// DetectContext is Detect with cooperative cancellation: ctx is polled
// between the flow steps and threaded into the T-join matching solver's hot
// loop, so a cancelled detection returns ctx.Err() promptly instead of
// finishing a potentially large matching instance.
func DetectContext(ctx context.Context, cg *ConflictGraph, opt Options) (*Detection, error) {
	start := time.Now()
	det := &Detection{Graph: cg}
	det.Stats.GraphNodes = cg.Nodes()
	det.Stats.GraphEdges = cg.Edges()

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Step 1b: planar embedding by greedy crossing removal.
	crossPairs := cg.Drawing.Crossings()
	det.Stats.CrossingPairs = len(crossPairs)
	removed := cg.Drawing.Planarize()
	det.CrossingsRemoved = append([]int(nil), removed...)
	removedSet := make(map[int]bool, len(removed))
	for _, e := range removed {
		removedSet[e] = true
	}
	planarDrawing, oldIdx := cg.Drawing.WithoutEdges(removedSet)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Step 2: optimal bipartization of the embedded planar graph = minimum
	// T-join on its geometric dual with T = odd faces.
	em, err := planar.BuildEmbedding(planarDrawing)
	if err != nil {
		return nil, fmt.Errorf("core: embedding after planarization: %w", err)
	}
	dual, primalOf, T := em.Dual()
	det.Stats.DualNodes = dual.N()
	det.Stats.DualEdges = dual.M()
	det.Stats.OddFaces = len(T)

	mStart := time.Now()
	join, err := tjoin.SolveContext(ctx, dual, T, opt.TJoin)
	if err != nil {
		return nil, fmt.Errorf("core: dual T-join: %w", err)
	}
	det.Stats.MatchTime = time.Since(mStart)
	det.Stats.GadgetNodes = join.GadgetNodes
	det.Stats.GadgetEdges = join.GadgetEdges

	bipartSet := make(map[int]bool, len(join.Edges))
	for _, de := range join.Edges {
		orig := oldIdx[primalOf[de]]
		det.BipartizationEdges = append(det.BipartizationEdges, orig)
		bipartSet[orig] = true
	}
	sort.Ints(det.BipartizationEdges)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Step 3: the edges removed for planarity (P) may themselves close odd
	// cycles against the bipartized remainder.
	g := cg.Drawing.G
	finalSet := make(map[int]bool, len(bipartSet))
	for e := range bipartSet {
		finalSet[e] = true
	}
	switch opt.Recheck {
	case RecheckParity:
		// Improvement over the paper: re-admit P members from heaviest to
		// lightest into a parity union-find seeded with the kept edges;
		// only edges that genuinely close an odd cycle become conflicts.
		uf := graph.NewParityUF(g.N())
		for ei, e := range g.Edges() {
			if removedSet[ei] || bipartSet[ei] {
				continue
			}
			if e.U == e.V || !uf.UnionDiffer(e.U, e.V) {
				return nil, fmt.Errorf("core: bipartization left an odd cycle at edge %d", ei)
			}
		}
		orderedP := append([]int(nil), removed...)
		sort.Slice(orderedP, func(a, b int) bool {
			wa, wb := g.Edge(orderedP[a]).Weight, g.Edge(orderedP[b]).Weight
			if wa != wb {
				return wa > wb
			}
			return orderedP[a] < orderedP[b]
		})
		for _, ei := range orderedP {
			e := g.Edge(ei)
			if e.U == e.V || !uf.UnionDiffer(e.U, e.V) {
				finalSet[ei] = true
			}
		}
	default: // RecheckColoring — the paper's flow step 3
		drop := make(map[int]bool, len(removedSet)+len(bipartSet))
		for e := range removedSet {
			drop[e] = true
		}
		for e := range bipartSet {
			drop[e] = true
		}
		colors, ok := g.VerifyBipartition(drop)
		if !ok {
			return nil, fmt.Errorf("core: bipartization left an odd cycle")
		}
		for _, ei := range removed {
			e := g.Edge(ei)
			if e.U == e.V || colors[e.U] == colors[e.V] {
				finalSet[ei] = true
			}
		}
	}

	finals := make([]int, 0, len(finalSet))
	for e := range finalSet {
		finals = append(finals, e)
	}
	sort.Ints(finals)
	for _, ei := range finals {
		det.FinalConflicts = append(det.FinalConflicts, conflictFor(cg, ei))
	}
	det.Stats.TotalTime = time.Since(start)

	// Self-check: removing the final conflicts must leave a bipartite graph.
	if _, ok := g.VerifyBipartition(finalSet); !ok {
		return nil, fmt.Errorf("core: final conflict set does not bipartize the graph")
	}
	return det, nil
}

func conflictFor(cg *ConflictGraph, edge int) Conflict {
	m := cg.Meta[edge]
	c := Conflict{Edge: edge, Meta: m}
	if m.Kind == OverlapEdge {
		c.Deficit = cg.Set.Overlaps[m.Overlap].Deficit
	}
	return c
}

// ConflictEdgeSet returns the final conflict edges as a set, for graph
// operations.
func (d *Detection) ConflictEdgeSet() map[int]bool {
	s := make(map[int]bool, len(d.FinalConflicts))
	for _, c := range d.FinalConflicts {
		s[c.Edge] = true
	}
	return s
}

// GreedyDetect runs the Table 1 "GB" baseline on the same graph: greedy
// bipartization by descending edge weight with a parity union-find.
func GreedyDetect(cg *ConflictGraph) *Detection {
	det := &Detection{Graph: cg}
	det.Stats.GraphNodes = cg.Nodes()
	det.Stats.GraphEdges = cg.Edges()
	start := time.Now()
	for _, ei := range graph.GreedyBipartization(cg.Drawing.G) {
		det.FinalConflicts = append(det.FinalConflicts, conflictFor(cg, ei))
	}
	det.Stats.TotalTime = time.Since(start)
	return det
}
