// Fullflow: generate a synthetic standard-cell design, detect its AAPSM
// conflicts, correct them with end-to-end spaces, and verify the result —
// the complete §3 flow of the paper, ending in a Table-2 style report.
package main

import (
	"fmt"
	"log"

	aapsm "repro"
)

func main() {
	rules := aapsm.Default90nmRules()

	l := aapsm.GenerateBenchmark("demo", aapsm.DefaultBenchmarkParams(2025, 6, 150))
	fmt.Printf("generated %q: %d polygons, %.1f µm² bounding box\n",
		l.Name, len(l.Features), float64(l.Area())/1e6)
	if v := aapsm.CheckDRC(l, rules); len(v) != 0 {
		log.Fatalf("generator produced DRC violations: %v", v[0])
	}

	// Step 1-3: detection on the phase conflict graph.
	res, err := aapsm.Detect(l, rules, aapsm.DetectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	s := res.Detection.Stats
	fmt.Printf("detection: %d conflicts (bipartization %d, crossings re-added %d) in %v\n",
		len(res.Conflicts()), len(res.Detection.BipartizationEdges),
		len(res.Conflicts())-len(res.Detection.BipartizationEdges), s.TotalTime)

	// Step 4: layout modification.
	cor, err := aapsm.Correct(l, rules, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correction: %d end-to-end spaces (max %d conflicts on one line), +%d nm width, +%d nm height\n",
		len(cor.Plan.Cuts), cor.Plan.MaxPerLine(), cor.Plan.AddedWidth, cor.Plan.AddedHeight)
	fmt.Printf("table-2 row: %v\n", cor.Stats)

	// Verification: the modified layout is DRC clean and phase-assignable.
	if v := aapsm.CheckDRC(cor.Layout, rules); len(v) != 0 {
		log.Fatalf("correction introduced DRC violations: %v", v[0])
	}
	ok, err := aapsm.Assignable(cor.Layout, rules)
	if err != nil {
		log.Fatal(err)
	}
	if !ok && len(cor.Plan.Unfixable) == 0 {
		log.Fatal("corrected layout still conflicts")
	}
	fmt.Printf("verified: modified layout DRC-clean and phase-assignable (unfixable by spacing: %d)\n",
		len(cor.Plan.Unfixable))

	// Extract and verify the final phases on the corrected layout.
	res2, err := aapsm.Detect(cor.Layout, rules, aapsm.DetectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	a, err := aapsm.AssignPhases(res2)
	if err != nil {
		log.Fatal(err)
	}
	if v := aapsm.VerifyAssignment(a, res2); len(v) != 0 {
		log.Fatalf("final assignment fails: %v", v)
	}
	n180 := 0
	for _, p := range a.Phases {
		if p != 0 {
			n180++
		}
	}
	fmt.Printf("final phases: %d shifters (%d at 180°), all conditions verified\n",
		len(a.Phases), n180)
}
