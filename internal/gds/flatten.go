package gds

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/geom"
	"repro/internal/layout"
)

// Typed flattening errors, matchable with errors.Is.
var (
	// ErrUnknownTopCell is returned when ReadOptions.TopCell names no cell.
	ErrUnknownTopCell = errors.New("gds: unknown top cell")
	// ErrUnknownCell is returned when a reference targets a cell the
	// library does not define.
	ErrUnknownCell = errors.New("gds: reference to unknown cell")
	// ErrReferenceCycle is returned when the cell reference graph is not a
	// DAG.
	ErrReferenceCycle = errors.New("gds: cell reference cycle")
	// ErrMaxDepth is returned when the hierarchy nests deeper than
	// ReadOptions.MaxDepth.
	ErrMaxDepth = errors.New("gds: hierarchy exceeds depth limit")
	// ErrTooLarge is returned when flattening would exceed
	// ReadOptions.MaxFlattenedFeatures.
	ErrTooLarge = errors.New("gds: flattened layout exceeds feature limit")
	// ErrEmptyLibrary is returned for a library with no cells.
	ErrEmptyLibrary = errors.New("gds: empty library")
)

// Default limits applied when the corresponding ReadOptions field is zero.
const (
	DefaultMaxDepth             = 64
	DefaultMaxFlattenedFeatures = 1 << 22
)

// ReadOptions configures hierarchy expansion.
type ReadOptions struct {
	// TopCell names the cell to flatten. Empty selects every root cell —
	// cells referenced by no other cell — in library order, preserving the
	// historic behavior of merging all structures of a reference-free
	// stream.
	TopCell string
	// Flatten discards instance provenance: the result carries no
	// layout.Hierarchy sidecar, exactly as if the layout had been drawn
	// flat. When false (the default) the sidecar is attached whenever the
	// stream contains placements, enabling the instance-aware detection
	// fast path.
	Flatten bool
	// MaxDepth bounds reference nesting (0: DefaultMaxDepth).
	MaxDepth int
	// MaxFlattenedFeatures bounds the expanded feature count, including
	// polygon decomposition sub-rectangles (0: DefaultMaxFlattenedFeatures).
	MaxFlattenedFeatures int
}

// ReadWith parses a GDSII stream and flattens it under opt.
func ReadWith(r io.Reader, opt ReadOptions) (*layout.Layout, error) {
	lib, err := ReadLibrary(r)
	if err != nil {
		return nil, err
	}
	return lib.Flatten(opt)
}

// cumulative magnification bound: transformed coordinates must stay far
// from int64 overflow even after translation.
const flattenMagLimit = 1 << 20

// xform is a rectilinear affine map p ↦ M·(m·p) + t with M an orthogonal
// signed-permutation matrix {a,b;c,d}.
type xform struct {
	a, b, c, d int64
	m          int64
	tx, ty     int64
}

func identityXform() xform { return xform{a: 1, d: 1, m: 1} }

func (x xform) apply(p geom.Point) geom.Point {
	px, py := p.X*x.m, p.Y*x.m
	return geom.Pt(x.a*px+x.b*py+x.tx, x.c*px+x.d*py+x.ty)
}

// compose returns x∘y: the transform applying y first, then x.
func (x xform) compose(y xform) xform {
	return xform{
		a: x.a*y.a + x.b*y.c, b: x.a*y.b + x.b*y.d,
		c: x.c*y.a + x.d*y.c, d: x.c*y.b + x.d*y.d,
		m:  x.m * y.m,
		tx: x.m*(x.a*y.tx+x.b*y.ty) + x.tx,
		ty: x.m*(x.c*y.tx+x.d*y.ty) + x.ty,
	}
}

// refXform builds the placement transform of rf at origin (reflect about X,
// then rotate, then magnify and translate).
func refXform(rf Ref, origin geom.Point) xform {
	var a, b, c, d int64
	switch rf.Rot {
	case 90:
		a, b, c, d = 0, -1, 1, 0
	case 180:
		a, b, c, d = -1, 0, 0, -1
	case 270:
		a, b, c, d = 0, 1, -1, 0
	default:
		a, b, c, d = 1, 0, 0, 1
	}
	if rf.Reflect { // M·diag(1,-1): negate the second column
		b, d = -b, -d
	}
	m := rf.Mag
	if m == 0 {
		m = 1
	}
	return xform{a: a, b: b, c: c, d: d, m: m, tx: origin.X, ty: origin.Y}
}

// flattener carries the expansion state over the recursive walk.
type flattener struct {
	lib      *Library
	maxDepth int
	maxFeat  int

	l         *layout.Layout
	nextGroup int

	placeCell []int32 // cell index per top-level placement
	featInst  []int32 // placement index per emitted feature
	onPath    []bool  // cells on the current DFS path (cycle check)
}

// Flatten expands the library into the flat layout model. Cells referenced
// from a root are placed; every top-level placement (each AREF element
// counts individually) becomes one instance in the attached
// layout.Hierarchy, and nested placements inherit the top-level instance
// they were expanded under. See ReadOptions for limits and sidecar control.
func (lib *Library) Flatten(opt ReadOptions) (*layout.Layout, error) {
	if len(lib.Cells) == 0 {
		return nil, ErrEmptyLibrary
	}
	var roots []int
	if opt.TopCell != "" {
		ci := lib.CellIndex(opt.TopCell)
		if ci < 0 {
			return nil, fmt.Errorf("%w: %q", ErrUnknownTopCell, opt.TopCell)
		}
		roots = []int{ci}
	} else {
		referenced := make(map[string]bool)
		for _, c := range lib.Cells {
			for _, rf := range c.Refs {
				referenced[rf.Cell] = true
			}
		}
		for ci, c := range lib.Cells {
			if !referenced[c.Name] {
				roots = append(roots, ci)
			}
		}
		if len(roots) == 0 {
			return nil, fmt.Errorf("%w: every cell is referenced", ErrReferenceCycle)
		}
	}
	st := &flattener{
		lib:      lib,
		maxDepth: opt.MaxDepth,
		maxFeat:  opt.MaxFlattenedFeatures,
		onPath:   make([]bool, len(lib.Cells)),
	}
	if st.maxDepth == 0 {
		st.maxDepth = DefaultMaxDepth
	}
	if st.maxFeat == 0 {
		st.maxFeat = DefaultMaxFlattenedFeatures
	}
	name := lib.Name
	if name == "" {
		name = lib.Cells[roots[0]].Name
	}
	st.l = layout.New(name)
	for _, root := range roots {
		if err := st.cell(root, identityXform(), 0, -1, true); err != nil {
			return nil, err
		}
	}
	if len(st.placeCell) > 0 && !opt.Flatten {
		cells := make([]string, len(lib.Cells))
		for i, c := range lib.Cells {
			cells[i] = c.Name
		}
		st.l.Hier = &layout.Hierarchy{
			Cells:           cells,
			PlacementCell:   st.placeCell,
			FeatureInstance: st.featInst,
		}
	}
	return st.l, nil
}

// cell expands one placement of cell ci under transform xf. inst is the
// top-level placement every emitted feature is tagged with (-1 inside a
// root cell); top marks root-cell scope, where each reference opens a new
// placement.
func (st *flattener) cell(ci int, xf xform, depth int, inst int32, top bool) error {
	if depth > st.maxDepth {
		return fmt.Errorf("%w (%d)", ErrMaxDepth, st.maxDepth)
	}
	if st.onPath[ci] {
		return fmt.Errorf("%w through %q", ErrReferenceCycle, st.lib.Cells[ci].Name)
	}
	st.onPath[ci] = true
	defer func() { st.onPath[ci] = false }()
	c := st.lib.Cells[ci]
	for _, p := range c.Polys {
		if err := st.poly(c.Name, p, xf, inst); err != nil {
			return err
		}
	}
	for _, rf := range c.Refs {
		ti := st.lib.CellIndex(rf.Cell)
		if ti < 0 {
			return fmt.Errorf("%w: %q from %q", ErrUnknownCell, rf.Cell, c.Name)
		}
		cols, rows := rf.Cols, rf.Rows
		if !rf.isArray() {
			cols, rows = 1, 1
		}
		for j := 0; j < rows; j++ {
			for i := 0; i < cols; i++ {
				origin := geom.Pt(
					rf.Origin.X+int64(i)*rf.ColStep.X+int64(j)*rf.RowStep.X,
					rf.Origin.Y+int64(i)*rf.ColStep.Y+int64(j)*rf.RowStep.Y,
				)
				child := xf.compose(refXform(rf, origin))
				if child.m > flattenMagLimit {
					return fmt.Errorf("%w: cumulative magnification %d", ErrUnsupportedTransform, child.m)
				}
				childInst := inst
				if top {
					childInst = int32(len(st.placeCell))
					st.placeCell = append(st.placeCell, int32(ti))
				}
				if err := st.cell(ti, child, depth+1, childInst, false); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// poly transforms one boundary polygon and decomposes it into feature
// rectangles. Polygons that decompose into a single rectangle stay group 0
// (a plain rectangle); multi-rectangle decompositions share a fresh group
// id so downstream attribution can address the drawn polygon.
func (st *flattener) poly(cellName string, p Poly, xf xform, inst int32) error {
	pts := make([]geom.Point, len(p.Pts))
	for i, pt := range p.Pts {
		pts[i] = xf.apply(pt)
	}
	rects, err := geom.DecomposeRectilinear(pts)
	if err != nil {
		return fmt.Errorf("%w: cell %q: %v", ErrNotRectangle, cellName, err)
	}
	group := 0
	if len(rects) > 1 {
		st.nextGroup++
		group = st.nextGroup
	}
	for _, r := range rects {
		if len(st.l.Features) >= st.maxFeat {
			return fmt.Errorf("%w (%d)", ErrTooLarge, st.maxFeat)
		}
		st.l.Features = append(st.l.Features, layout.Feature{Rect: r, Layer: p.Layer, Group: group})
		st.featInst = append(st.featInst, inst)
	}
	return nil
}
