// Package tshape analyzes feature junctions. The paper's flow explicitly
// excludes AAPSM conflicts caused by T-shapes ("these can be corrected by
// feature widening or mask splitting [8]; we are exploring extensions to
// our method to handle them as well", §4); this package implements the
// detection side of that extension: it finds junctions between touching
// features and classifies which detected conflicts involve junction
// features, so the correction stage can route them to widening or mask
// splitting instead of spacing.
package tshape

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/shifter"
)

// Kind classifies how two features touch.
type Kind int8

const (
	// Corner: the features share exactly one point.
	Corner Kind = iota
	// Ell: the shared edge ends at a corner of both features (an L bend).
	Ell
	// Tee: one feature's end abuts the other's side interior (a T join).
	Tee
	// Overlap: the features' interiors intersect.
	Overlap
)

func (k Kind) String() string {
	switch k {
	case Corner:
		return "corner"
	case Ell:
		return "L"
	case Tee:
		return "T"
	default:
		return "overlap"
	}
}

// Junction is a contact between two features.
type Junction struct {
	A, B  int // feature indices, A < B
	Kind  Kind
	Where geom.Rect // the shared region (degenerate for touches)
}

func (j Junction) String() string {
	return fmt.Sprintf("%s-junction features %d/%d at %v", j.Kind, j.A, j.B, j.Where)
}

// Find returns all junctions between features of l, ordered by (A, B).
func Find(l *layout.Layout) []Junction {
	n := len(l.Features)
	if n < 2 {
		return nil
	}
	// Grid prune on touching bounding boxes.
	cell := int64(1024)
	g := geom.NewGrid(cell)
	for i, f := range l.Features {
		g.Insert(int32(i), f.Rect)
	}
	var out []Junction
	g.ForEachPair(func(i, j int32) {
		a, b := l.Features[i].Rect, l.Features[j].Rect
		if !a.Intersects(b) {
			return
		}
		out = append(out, classify(int(i), int(j), a, b))
	})
	sort.Slice(out, func(x, y int) bool {
		if out[x].A != out[y].A {
			return out[x].A < out[y].A
		}
		return out[x].B < out[y].B
	})
	return out
}

func classify(i, j int, a, b geom.Rect) Junction {
	shared := a.Intersect(b)
	jn := Junction{A: i, B: j, Where: shared}
	switch {
	case shared.Width() > 0 && shared.Height() > 0:
		jn.Kind = Overlap
	case shared.Width() == 0 && shared.Height() == 0:
		jn.Kind = Corner
	default:
		// A degenerate shared segment. Tee when the segment lies strictly
		// in the interior of one rectangle's side (an end abutting a side
		// middle); Ell when it terminates at side endpoints of both (a
		// corner bend). Strict interiority cannot hold for both at once.
		if shared.Width() > 0 { // horizontal contact segment
			insideA := shared.X0 > a.X0 && shared.X1 < a.X1
			insideB := shared.X0 > b.X0 && shared.X1 < b.X1
			if insideA || insideB {
				jn.Kind = Tee
			} else {
				jn.Kind = Ell
			}
		} else { // vertical contact segment
			insideA := shared.Y0 > a.Y0 && shared.Y1 < a.Y1
			insideB := shared.Y0 > b.Y0 && shared.Y1 < b.Y1
			if insideA || insideB {
				jn.Kind = Tee
			} else {
				jn.Kind = Ell
			}
		}
	}
	return jn
}

// JunctionFeatures returns the set of feature indices participating in any
// junction.
func JunctionFeatures(junctions []Junction) map[int]bool {
	out := make(map[int]bool, 2*len(junctions))
	for _, j := range junctions {
		out[j.A] = true
		out[j.B] = true
	}
	return out
}

// SplitConflicts partitions detected conflicts into those whose shifters
// belong to junction features (the paper's T-shape class, to be handled by
// widening or mask splitting) and plain spacing conflicts.
func SplitConflicts(conflicts []core.Conflict, set *shifter.Set, junctions []Junction) (plain, junctioned []int) {
	jf := JunctionFeatures(junctions)
	for ci, c := range conflicts {
		fa := set.Shifters[c.Meta.S1].Feature
		fb := set.Shifters[c.Meta.S2].Feature
		if jf[fa] || jf[fb] {
			junctioned = append(junctioned, ci)
		} else {
			plain = append(plain, ci)
		}
	}
	return plain, junctioned
}
