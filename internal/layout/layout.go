// Package layout models the polysilicon-layer layouts the AAPSM flow
// operates on: axis-aligned rectangular features plus the process rules
// (critical width threshold, shifter dimensions and spacing, DRC minima)
// that drive shifter synthesis and conflict detection.
//
// Coordinates are int64 nanometers throughout.
package layout

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/geom"
)

// Feature is a drawn rectangle on the critical (poly) layer.
type Feature struct {
	Rect  geom.Rect
	Layer int // GDSII layer number; 0 is the default poly layer
}

// Orientation of a feature, derived from its aspect ratio.
type Orientation int

const (
	// Horizontal features run left-right (width >= height): shifters go
	// above and below.
	Horizontal Orientation = iota
	// Vertical features run bottom-top (height > width): shifters go left
	// and right.
	Vertical
)

// Orient classifies a feature: ties count as Horizontal.
func (f Feature) Orient() Orientation {
	if f.Rect.Height() > f.Rect.Width() {
		return Vertical
	}
	return Horizontal
}

// Layout is a named collection of features.
type Layout struct {
	Name     string
	Features []Feature
}

// New creates an empty layout.
func New(name string) *Layout { return &Layout{Name: name} }

// Add appends a feature rectangle on layer 0 and returns its index.
func (l *Layout) Add(r geom.Rect) int {
	l.Features = append(l.Features, Feature{Rect: r})
	return len(l.Features) - 1
}

// AddOnLayer appends a feature on an explicit layer.
func (l *Layout) AddOnLayer(r geom.Rect, layer int) int {
	l.Features = append(l.Features, Feature{Rect: r, Layer: layer})
	return len(l.Features) - 1
}

// BBox returns the bounding box of all features (zero Rect when empty).
func (l *Layout) BBox() geom.Rect {
	var bb geom.Rect
	for _, f := range l.Features {
		bb = bb.Union(f.Rect)
	}
	return bb
}

// Area returns the bounding-box area in nm² — the quantity Table 2's
// "% area increase" is measured against.
func (l *Layout) Area() int64 { return l.BBox().Area() }

// Clone returns a deep copy.
func (l *Layout) Clone() *Layout {
	out := &Layout{Name: l.Name, Features: append([]Feature(nil), l.Features...)}
	return out
}

// Rules holds the process parameters of the flow. All lengths in nm.
type Rules struct {
	// CriticalWidth: features whose drawn width (smaller rectangle
	// dimension) is strictly below this threshold are critical and must be
	// phase-shifted.
	CriticalWidth int64
	// ShifterWidth is the width of each flanking phase shifter.
	ShifterWidth int64
	// ShifterGap is the clearance between a critical feature's edge and its
	// shifter (0: shifters abut the feature).
	ShifterGap int64
	// MinShifterSpacing: shifters closer than this must carry the same
	// phase (the paper's "overlapping shifters", Condition 2).
	MinShifterSpacing int64
	// MinFeatureWidth and MinFeatureSpacing are the DRC minima used to
	// validate layouts before and after modification.
	MinFeatureWidth   int64
	MinFeatureSpacing int64
	// FeatureConflictWeight is the bipartization cost of deleting a
	// Condition-1 edge (giving up phase shifting of a feature, which the
	// flow must avoid); it dominates any spacing cost.
	FeatureConflictWeight int64
}

// Default90nm returns representative 90 nm-node rules (the paper's
// experiments are "90 nm designs with typical values of threshold width,
// shifter dimensions and shifter spacing").
func Default90nm() Rules {
	return Rules{
		CriticalWidth:         150,
		ShifterWidth:          200,
		ShifterGap:            0,
		MinShifterSpacing:     300,
		MinFeatureWidth:       100,
		MinFeatureSpacing:     140,
		FeatureConflictWeight: 1 << 20,
	}
}

// Validate sanity-checks the rule values.
func (r Rules) Validate() error {
	if r.CriticalWidth <= 0 || r.ShifterWidth <= 0 || r.MinShifterSpacing <= 0 {
		return fmt.Errorf("layout: non-positive rule values: %+v", r)
	}
	if r.ShifterGap < 0 {
		return fmt.Errorf("layout: negative shifter gap")
	}
	if r.MinFeatureWidth <= 0 || r.MinFeatureSpacing <= 0 {
		return fmt.Errorf("layout: non-positive DRC minima")
	}
	if r.FeatureConflictWeight <= r.MinShifterSpacing {
		return fmt.Errorf("layout: FeatureConflictWeight must dominate spacing costs")
	}
	return nil
}

// IsCritical reports whether a feature must be phase-shifted under r.
func (r Rules) IsCritical(f Feature) bool {
	return f.Rect.MinDim() < r.CriticalWidth && !f.Rect.Empty()
}

// CriticalIndices returns the indices of critical features.
func (l *Layout) CriticalIndices(r Rules) []int {
	var out []int
	for i, f := range l.Features {
		if r.IsCritical(f) {
			out = append(out, i)
		}
	}
	return out
}

// WriteText serializes the layout to the plain-text interchange format:
// one header line "layout <name>", then one "rect x0 y0 x1 y1 [layer]" line
// per feature.
func (l *Layout) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "layout %s\n", sanitizeName(l.Name)); err != nil {
		return err
	}
	for _, f := range l.Features {
		if _, err := fmt.Fprintf(bw, "rect %d %d %d %d %d\n",
			f.Rect.X0, f.Rect.Y0, f.Rect.X1, f.Rect.Y1, f.Layer); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the plain-text format written by WriteText.
func ReadText(r io.Reader) (*Layout, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var l *Layout
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "layout":
			if l != nil {
				return nil, fmt.Errorf("layout: line %d: duplicate header", line)
			}
			name := ""
			if len(fields) > 1 {
				name = fields[1]
			}
			l = New(name)
		case "rect":
			if l == nil {
				return nil, fmt.Errorf("layout: line %d: rect before header", line)
			}
			if len(fields) != 5 && len(fields) != 6 {
				return nil, fmt.Errorf("layout: line %d: want 4 or 5 rect args", line)
			}
			var v [5]int64
			for i := 1; i < len(fields); i++ {
				if _, err := fmt.Sscanf(fields[i], "%d", &v[i-1]); err != nil {
					return nil, fmt.Errorf("layout: line %d: %w", line, err)
				}
			}
			l.AddOnLayer(geom.R(v[0], v[1], v[2], v[3]), int(v[4]))
		default:
			return nil, fmt.Errorf("layout: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if l == nil {
		return nil, fmt.Errorf("layout: empty input")
	}
	return l, nil
}

func sanitizeName(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.ReplaceAll(s, " ", "_")
}
