package lint

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer enforces the bit-identical-results contract of the
// solver/pipeline packages: results must not depend on Go's randomized map
// iteration order, the wall clock, or the global math/rand source.
//
// Inside the pipeline packages it flags:
//
//   - a `range` over a map whose body appends to a slice, unless that slice
//     is sorted later in the same function (the collect-then-sort idiom);
//   - a `range` over a map whose body writes a slice element at an index
//     that does not derive from the iteration variables (an order-dependent
//     accumulator; keyed scatters like skip[k] = true are order-independent
//     and allowed);
//   - a `range` over a map whose body emits output (fmt printing, io writes,
//     channel sends) — emission order would be randomized;
//   - calls to time.Now, and calls to math/rand's global-source functions
//     (rand.Intn, rand.Shuffle, ...). Constructing explicit seeded sources
//     (rand.New, rand.NewSource) and *rand.Rand method calls are allowed.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "flag map-iteration-order, wall-clock, and global-rand dependence in solver packages",
	Run:  runDeterminism,
}

// randConstructors are math/rand functions that build explicit sources
// rather than consuming the global one.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(pass *Pass) {
	if !isPipelinePkg(pass.PkgPath) {
		return
	}
	for _, file := range pass.Files {
		if pass.testFiles[file] {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDeterminismFunc(pass, fn)
		}
	}
}

func checkDeterminismFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if name, ok := selectorCall(pass.Info, v, "time"); ok && name == "Now" {
				pass.Reportf(v.Pos(), "time.Now in solver package %s: results must not depend on the wall clock", pass.Pkg.Name())
			}
			if name, ok := selectorCall(pass.Info, v, "math/rand"); ok && !randConstructors[name] {
				pass.Reportf(v.Pos(), "math/rand global source (rand.%s) in solver package %s: pass a seeded *rand.Rand instead", name, pass.Pkg.Name())
			}
			if name, ok := selectorCall(pass.Info, v, "math/rand/v2"); ok && !randConstructors[name] {
				pass.Reportf(v.Pos(), "math/rand/v2 global source (rand.%s) in solver package %s: pass a seeded *rand.Rand instead", name, pass.Pkg.Name())
			}
		case *ast.RangeStmt:
			if isMapRange(pass.Info, v) {
				checkMapRangeBody(pass, fn, v)
			}
		}
		return true
	})
}

func isMapRange(info *types.Info, r *ast.RangeStmt) bool {
	tv, ok := info.Types[r.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// rangeVarObjs returns the types.Objects of the range statement's iteration
// variables (key and value), for := and = forms alike.
func rangeVarObjs(info *types.Info, r *ast.RangeStmt) map[types.Object]bool {
	objs := map[types.Object]bool{}
	for _, e := range []ast.Expr{r.Key, r.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := info.Defs[id]; obj != nil {
			objs[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			objs[obj] = true
		}
	}
	return objs
}

// checkMapRangeBody inspects one map-range body for order-dependent sinks.
func checkMapRangeBody(pass *Pass, fn *ast.FuncDecl, r *ast.RangeStmt) {
	iterVars := rangeVarObjs(pass.Info, r)
	ast.Inspect(r.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.Info, call) || i >= len(v.Lhs) {
					continue
				}
				target := rootIdent(v.Lhs[i])
				if target == nil {
					pass.Reportf(v.Pos(), "append inside range over map: element order depends on map iteration order")
					continue
				}
				if !sortedAfter(pass, fn, r, target) {
					pass.Reportf(v.Pos(), "append to %s inside range over map without a later sort of %s: element order depends on map iteration order", target.Name, target.Name)
				}
			}
			// Indexed slice writes whose index does not derive from the
			// iteration variables accumulate in iteration order.
			for _, lhs := range v.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				tv, ok := pass.Info.Types[ix.X]
				if !ok {
					continue
				}
				if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
					continue
				}
				if !usesAnyObj(pass.Info, ix.Index, iterVars) {
					pass.Reportf(lhs.Pos(), "slice write at an index independent of the map iteration variables: write order depends on map iteration order")
				}
			}
		case *ast.SendStmt:
			pass.Reportf(v.Pos(), "channel send inside range over map: send order depends on map iteration order")
		case *ast.CallExpr:
			if name, ok := selectorCall(pass.Info, v, "fmt"); ok {
				switch name {
				case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
					pass.Reportf(v.Pos(), "fmt.%s inside range over map: output order depends on map iteration order", name)
				}
			}
		case *ast.FuncLit:
			return false // separate execution context; checked where it runs
		}
		return true
	})
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// usesAnyObj reports whether expr references any of the given objects.
func usesAnyObj(info *types.Info, expr ast.Expr, objs map[types.Object]bool) bool {
	if len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// sortFuncs maps package path -> function names that establish a
// deterministic order over their (first) slice argument.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Ints": true, "Strings": true, "Float64s": true,
	},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedAfter reports whether, somewhere in fn after the map-range loop, the
// slice rooted at target is passed to a sorting function. The collected
// slice may also be sorted inside the loop body after the append (rare but
// legal), so "after" means any position at or beyond the append's loop.
func sortedAfter(pass *Pass, fn *ast.FuncDecl, r *ast.RangeStmt, target *ast.Ident) bool {
	targetObj := pass.Info.Uses[target]
	if targetObj == nil {
		targetObj = pass.Info.Defs[target]
	}
	if targetObj == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < r.Pos() || sorted {
			return !sorted
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		p := pkgOf(pass.Info, id)
		if p == nil {
			return true
		}
		names, ok := sortFuncs[p.Path()]
		if !ok || !names[sel.Sel.Name] || len(call.Args) == 0 {
			return true
		}
		argRoot := rootIdent(call.Args[0])
		if argRoot != nil && pass.Info.Uses[argRoot] == targetObj {
			sorted = true
		}
		return !sorted
	})
	return sorted
}
