package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrientation(t *testing.T) {
	tests := []struct {
		a, b, c Point
		want    int
	}{
		{Pt(0, 0), Pt(1, 0), Pt(1, 1), +1},
		{Pt(0, 0), Pt(1, 0), Pt(1, -1), -1},
		{Pt(0, 0), Pt(1, 1), Pt(2, 2), 0},
		{Pt(0, 0), Pt(0, 0), Pt(5, 7), 0},
		{Pt(-3, -3), Pt(0, 0), Pt(3, 2), -1},
	}
	for _, tc := range tests {
		if got := Orientation(tc.a, tc.b, tc.c); got != tc.want {
			t.Errorf("Orientation(%v,%v,%v) = %d, want %d", tc.a, tc.b, tc.c, got, tc.want)
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := R(10, 20, 2, 4) // corners in arbitrary order
	if r != (Rect{2, 4, 10, 20}) {
		t.Fatalf("R did not normalize: %v", r)
	}
	if r.Width() != 8 || r.Height() != 16 {
		t.Errorf("width/height = %d/%d, want 8/16", r.Width(), r.Height())
	}
	if r.MinDim() != 8 || r.MaxDim() != 16 {
		t.Errorf("minDim/maxDim = %d/%d", r.MinDim(), r.MaxDim())
	}
	if r.Area() != 128 {
		t.Errorf("area = %d, want 128", r.Area())
	}
	if got := r.Center(); got != Pt(6, 12) {
		t.Errorf("center = %v, want (6,12)", got)
	}
	if !r.Contains(Pt(2, 4)) || !r.Contains(Pt(10, 20)) || r.Contains(Pt(11, 4)) {
		t.Error("Contains misbehaves on boundary")
	}
	if got := r.Translate(Pt(-2, 1)); got != (Rect{0, 5, 8, 21}) {
		t.Errorf("translate = %v", got)
	}
}

func TestRectIntersection(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	c := R(20, 20, 30, 30)
	if !a.Intersects(b) || !a.Overlaps(b) {
		t.Error("a and b should overlap")
	}
	if a.Intersects(c) {
		t.Error("a and c should be disjoint")
	}
	if got := a.Intersect(b); got != (Rect{5, 5, 10, 10}) {
		t.Errorf("intersect = %v", got)
	}
	if got := a.Intersect(c); !got.Empty() {
		t.Errorf("disjoint intersect should be empty, got %v", got)
	}
	// Touching rectangles intersect (closed) but do not overlap (open).
	d := R(10, 0, 20, 10)
	if !a.Intersects(d) {
		t.Error("touching rects should intersect")
	}
	if a.Overlaps(d) {
		t.Error("touching rects should not overlap")
	}
	if got := a.Union(c); got != (Rect{0, 0, 30, 30}) {
		t.Errorf("union = %v", got)
	}
	if got := (Rect{}).Union(c); got != c {
		t.Errorf("union with zero identity = %v", got)
	}
}

func TestGapsAndSeparation(t *testing.T) {
	a := R(0, 0, 10, 10)
	tests := []struct {
		b      Rect
		gx, gy int64
		sep    int64
	}{
		{R(20, 0, 30, 10), 10, 0, 10},
		{R(0, 15, 10, 25), 0, 5, 5},
		{R(13, 14, 20, 20), 3, 4, 4},
		{R(5, 5, 8, 8), 0, 0, 0},
		{R(10, 10, 20, 20), 0, 0, 0}, // corner touch
		{R(-7, -9, -2, -3), 2, 3, 3},
	}
	for _, tc := range tests {
		if got := GapX(a, tc.b); got != tc.gx {
			t.Errorf("GapX(a,%v) = %d, want %d", tc.b, got, tc.gx)
		}
		if got := GapY(a, tc.b); got != tc.gy {
			t.Errorf("GapY(a,%v) = %d, want %d", tc.b, got, tc.gy)
		}
		if got := Separation(a, tc.b); got != tc.sep {
			t.Errorf("Separation(a,%v) = %d, want %d", tc.b, got, tc.sep)
		}
		// Symmetry.
		if Separation(a, tc.b) != Separation(tc.b, a) {
			t.Errorf("Separation not symmetric for %v", tc.b)
		}
	}
}

func TestIntervals(t *testing.T) {
	iv := Interval{3, 9}
	if !iv.Valid() || iv.Len() != 6 {
		t.Fatal("interval basics")
	}
	if !iv.Contains(3) || !iv.Contains(9) || iv.Contains(10) {
		t.Error("Contains closed semantics")
	}
	if iv.ContainsOpen(3) || !iv.ContainsOpen(4) {
		t.Error("ContainsOpen semantics")
	}
	if !iv.Intersects(Interval{9, 12}) || iv.Intersects(Interval{10, 12}) {
		t.Error("interval intersection")
	}
	if got := iv.Intersect(Interval{5, 20}); got != (Interval{5, 9}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := iv.Intersect(Interval{20, 30}); got.Valid() {
		t.Errorf("disjoint Intersect should be invalid, got %v", got)
	}
}

func TestSegmentsIntersect(t *testing.T) {
	tests := []struct {
		s, t Segment
		want bool
	}{
		// Proper X crossing.
		{Seg(Pt(0, 0), Pt(10, 10)), Seg(Pt(0, 10), Pt(10, 0)), true},
		// Disjoint parallel.
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(0, 5), Pt(10, 5)), false},
		// Shared endpoint.
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(10, 0), Pt(20, 5)), true},
		// T-touch.
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, -5), Pt(5, 0)), true},
		// Collinear overlapping.
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, 0), Pt(15, 0)), true},
		// Collinear disjoint.
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(5, 0), Pt(15, 0)), false},
		// Degenerate point on segment.
		{Seg(Pt(5, 0), Pt(5, 0)), Seg(Pt(0, 0), Pt(10, 0)), true},
		// Degenerate point off segment.
		{Seg(Pt(5, 1), Pt(5, 1)), Seg(Pt(0, 0), Pt(10, 0)), false},
		// Near miss.
		{Seg(Pt(0, 0), Pt(10, 10)), Seg(Pt(11, 10), Pt(20, 0)), false},
	}
	for i, tc := range tests {
		if got := SegmentsIntersect(tc.s, tc.t); got != tc.want {
			t.Errorf("case %d: SegmentsIntersect = %v, want %v", i, got, tc.want)
		}
		if got := SegmentsIntersect(tc.t, tc.s); got != tc.want {
			t.Errorf("case %d: not symmetric", i)
		}
	}
}

func TestSegmentsCross(t *testing.T) {
	tests := []struct {
		name string
		s, t Segment
		want bool
	}{
		{"proper crossing", Seg(Pt(0, 0), Pt(10, 10)), Seg(Pt(0, 10), Pt(10, 0)), true},
		{"shared endpoint only", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(10, 0), Pt(20, 5)), false},
		{"shared endpoint collinear overlap", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(10, 0), Pt(5, 0)), true},
		{"shared endpoint collinear disjoint", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(10, 0), Pt(20, 0)), false},
		{"T-touch interior", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, -5), Pt(5, 0)), true},
		{"endpoint into interior with shared other end", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(0, 0), Pt(5, 0)), true},
		{"disjoint", Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(5, 5), Pt(6, 5)), false},
		{"collinear overlap no shared endpoint", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(3, 0), Pt(7, 0)), true},
	}
	for _, tc := range tests {
		if got := SegmentsCross(tc.s, tc.t); got != tc.want {
			t.Errorf("%s: SegmentsCross = %v, want %v", tc.name, got, tc.want)
		}
		if got := SegmentsCross(tc.t, tc.s); got != tc.want {
			t.Errorf("%s: not symmetric", tc.name)
		}
	}
}

// segmentsIntersectBrute is an independent slow oracle using rational
// parameterization over a fine sample plus exact endpoint handling. Instead
// of floating point we check via the standard bounding-box + orientation
// identity written differently.
func segmentsIntersectOracle(s, t Segment) bool {
	// Sample-free exact oracle: the segments intersect iff they straddle
	// each other or an endpoint lies on the other segment. This restates the
	// textbook condition independently of the implementation's short-circuit
	// order.
	straddle := func(p, q Segment) bool {
		o1 := Orientation(p.A, p.B, q.A)
		o2 := Orientation(p.A, p.B, q.B)
		return (o1 > 0 && o2 < 0) || (o1 < 0 && o2 > 0)
	}
	if straddle(s, t) && straddle(t, s) {
		return true
	}
	for _, p := range []Point{t.A, t.B} {
		if Orientation(s.A, s.B, p) == 0 && onSegment(s, p) {
			return true
		}
	}
	for _, p := range []Point{s.A, s.B} {
		if Orientation(t.A, t.B, p) == 0 && onSegment(t, p) {
			return true
		}
	}
	return false
}

func TestSegmentsIntersectQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		p := func() Point { return Pt(int64(rng.Intn(21)-10), int64(rng.Intn(21)-10)) }
		s, u := Seg(p(), p()), Seg(p(), p())
		return SegmentsIntersect(s, u) == segmentsIntersectOracle(s, u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestGridPairsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rects := make([]Rect, 120)
	for i := range rects {
		x, y := int64(rng.Intn(2000)-1000), int64(rng.Intn(2000)-1000)
		rects[i] = R(x, y, x+int64(rng.Intn(300)+1), y+int64(rng.Intn(300)+1))
	}
	g := NewGrid(128)
	for i, r := range rects {
		g.Insert(int32(i), r)
	}
	got := map[[2]int32]bool{}
	g.ForEachPair(func(i, j int32) {
		if rects[i].Intersects(rects[j]) {
			got[[2]int32{i, j}] = true
		}
	})
	want := map[[2]int32]bool{}
	for i := range rects {
		for j := i + 1; j < len(rects); j++ {
			if rects[i].Intersects(rects[j]) {
				want[[2]int32{int32(i), int32(j)}] = true
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("grid found %d intersecting pairs, brute force %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing pair %v", k)
		}
	}
}

func TestGridQueryFindsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rects := make([]Rect, 200)
	g := NewGrid(100)
	for i := range rects {
		x, y := int64(rng.Intn(5000)), int64(rng.Intn(5000))
		rects[i] = R(x, y, x+int64(rng.Intn(200)+1), y+int64(rng.Intn(200)+1))
		g.Insert(int32(i), rects[i])
	}
	seen := make([]bool, len(rects))
	for trial := 0; trial < 50; trial++ {
		x, y := int64(rng.Intn(5000)), int64(rng.Intn(5000))
		q := R(x, y, x+400, y+400)
		found := map[int32]int{}
		g.Query(q, seen, func(id int32) { found[id]++ })
		for id, n := range found {
			if n != 1 {
				t.Fatalf("id %d reported %d times", id, n)
			}
		}
		for i, r := range rects {
			if r.Intersects(q) && found[int32(i)] == 0 {
				t.Fatalf("query %v missed rect %d %v", q, i, r)
			}
		}
	}
}

func TestFloorDiv(t *testing.T) {
	tests := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {-4, 2, -2}, {0, 5, 0}, {-1, 5, -1},
	}
	for _, tc := range tests {
		if got := floorDiv(tc.a, tc.b); got != tc.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMinMaxAbs(t *testing.T) {
	if Min(3, -2) != -2 || Max(3, -2) != 3 || Abs(-9) != 9 || Abs(4) != 4 {
		t.Error("Min/Max/Abs helpers")
	}
}
