// Command aapsm runs the bright-field AAPSM flow on a layout file:
// conflict detection, phase assignment, DRC, and layout correction.
//
// Usage:
//
//	aapsm -cmd detect    -in design.txt [-graph pcg|fg] [-method gen|opt|lawler]
//	aapsm -cmd correct   -in design.txt [-out fixed.txt]
//	aapsm -cmd assign    -in design.txt
//	aapsm -cmd drc       -in design.txt
//	aapsm -cmd mask      -in design.txt -out design_mask.gds
//	aapsm -cmd svg       -in design.txt -out design.svg
//	aapsm -cmd junctions -in design.txt
//	aapsm -cmd edit      -in design.txt -script edits.txt [-out final.txt]
//	aapsm -cmd snapshot  -in design.txt -snapshot sess.snap
//	aapsm -cmd restore   -snapshot sess.snap [further subcommands...]
//
// -cmd also accepts a comma-separated list (e.g. -cmd detect,assign,correct);
// all subcommands of one invocation share a single pipeline session, so
// detection runs exactly once no matter how many stages are requested.
// Interrupting the process (SIGINT/SIGTERM) cancels the pipeline promptly.
//
// snapshot serializes the session — layout, memoized stage results, and the
// incremental engine's caches — to -snapshot (typically after other
// subcommands warmed it, e.g. -cmd edit,snapshot). restore replaces the
// session with one rebuilt from such a file; the subcommands after it in the
// same -cmd list operate on the restored session, and -in may be omitted when
// restore comes first. A snapshot only restores under the engine
// configuration (-graph / -method / -improved-recheck) it was taken with.
//
// The edit subcommand replays an edit script against the session and
// re-detects incrementally after each `detect` line and once at the end,
// reporting how many conflict clusters were reused from cache. Script lines
// (`#` comments and blank lines are skipped):
//
//	add x0 y0 x1 y1 [layer]   append a feature rectangle
//	move INDEX x0 y0 x1 y1    move/resize feature INDEX
//	del INDEX                 delete feature INDEX
//	detect                    re-detect now and print a summary
//
// Layout files are the plain-text interchange format unless the name ends
// in .gds.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	aapsm "repro"
)

func main() {
	var (
		cmd     = flag.String("cmd", "detect", "comma-separated subcommands: detect | correct | assign | drc | mask | svg | junctions | edit | snapshot | restore")
		in      = flag.String("in", "", "input layout (.txt or .gds); optional when -cmd starts with restore")
		out     = flag.String("out", "", "output file for correct / mask / svg / edit (default: none)")
		snap    = flag.String("snapshot", "", "session snapshot file for the snapshot / restore subcommands")
		graph   = flag.String("graph", "pcg", "graph representation: pcg | fg")
		method  = flag.String("method", "gen", "T-join reduction: gen | opt | lawler")
		imp     = flag.Bool("improved-recheck", false, "use parity-based crossing recheck")
		rules   = flag.String("rules", "bright-90nm", "rules profile (see -list-rules)")
		list    = flag.Bool("list-rules", false, "list registered rules profiles and exit")
		script  = flag.String("script", "", "edit script for the edit subcommand")
		verbose = flag.Bool("v", false, "verbose conflict listing")
	)
	flag.Parse()
	if *list {
		for _, p := range aapsm.Profiles() {
			fmt.Printf("%-14s %s\n", p.Name, p.Description)
		}
		return
	}
	cmds := strings.Split(*cmd, ",")
	// restore rebuilds the layout from the snapshot, so -in is only
	// mandatory when something runs before the restore.
	var l *aapsm.Layout
	if *in == "" {
		if strings.TrimSpace(cmds[0]) != "restore" {
			fatalf("missing -in; see -help (only a leading restore subcommand may omit it)")
		}
	} else {
		var err error
		l, err = readLayout(*in)
		check(err)
	}

	if _, err := aapsm.ProfileByName(*rules); err != nil {
		fatalf("%v (see -list-rules)", err)
	}
	opts := []aapsm.EngineOption{
		aapsm.WithProfile(*rules),
		aapsm.WithImprovedRecheck(*imp),
	}
	switch *graph {
	case "pcg":
		opts = append(opts, aapsm.WithGraph(aapsm.PCG))
	case "fg":
		opts = append(opts, aapsm.WithGraph(aapsm.FG))
	default:
		fatalf("unknown -graph %q", *graph)
	}
	switch *method {
	case "gen":
		opts = append(opts, aapsm.WithTJoinMethod(aapsm.GeneralizedGadgets))
	case "opt":
		opts = append(opts, aapsm.WithTJoinMethod(aapsm.OptimizedGadgets))
	case "lawler":
		opts = append(opts, aapsm.WithTJoinMethod(aapsm.LawlerReduction))
	default:
		fatalf("unknown -method %q", *method)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// All subcommands share the single -out flag; combining two writers in
	// one invocation would silently overwrite the earlier output.
	if *out != "" {
		writers := 0
		for _, c := range cmds {
			switch strings.TrimSpace(c) {
			case "correct", "mask", "svg", "edit":
				writers++
			}
		}
		if writers > 1 {
			fatalf("-out is shared by all subcommands; run correct/mask/svg/edit in separate invocations")
		}
	}

	// One engine and one session per invocation: every requested subcommand
	// reuses the same memoized detection. restore swaps the session, so the
	// loop threads it through.
	eng := aapsm.NewEngine(opts...)
	var s *aapsm.Session
	if l != nil {
		s = eng.NewSession(l)
	}
	for _, c := range cmds {
		s = run(ctx, eng, s, strings.TrimSpace(c), *out, *script, *snap, *verbose)
	}
}

func run(ctx context.Context, eng *aapsm.Engine, s *aapsm.Session, cmd, out, script, snap string, verbose bool) *aapsm.Session {
	switch cmd {
	case "snapshot":
		if snap == "" {
			fatalf("snapshot needs -snapshot")
		}
		data, err := s.Snapshot()
		check(err)
		check(os.WriteFile(snap, data, 0o644))
		fmt.Printf("wrote session snapshot %s (%d bytes)\n", snap, len(data))
		return s

	case "restore":
		if snap == "" {
			fatalf("restore needs -snapshot")
		}
		data, err := os.ReadFile(snap)
		check(err)
		rs, err := eng.RestoreSession(ctx, data)
		check(err)
		st := rs.Stats()
		fmt.Printf("restored %s: %d features, %d detects, %d edits\n",
			rs.Layout().Name, len(rs.Layout().Features), st.DetectRuns, st.Edits)
		return rs
	}

	if s == nil {
		fatalf("subcommand %q needs a session; pass -in or lead with restore", cmd)
	}
	l := s.Layout()
	switch cmd {
	case "drc":
		vs := s.DRC()
		fmt.Printf("%s: %d features, %d DRC violations\n", l.Name, len(l.Features), len(vs))
		for _, v := range vs {
			fmt.Println("  ", v)
		}
		if len(vs) > 0 {
			os.Exit(1)
		}

	case "detect":
		res, err := s.Detect(ctx)
		check(err)
		st := res.Detection.Stats
		fmt.Printf("%s: %d features, graph %d nodes / %d edges (%s)\n",
			l.Name, len(l.Features), st.GraphNodes, st.GraphEdges, res.Graph.Kind)
		fmt.Printf("  crossings removed: %d (of %d crossing pairs)\n",
			len(res.Detection.CrossingsRemoved), st.CrossingPairs)
		fmt.Printf("  dual: %d faces / %d edges, %d odd faces; gadget %d nodes\n",
			st.DualNodes, st.DualEdges, st.OddFaces, st.GadgetNodes)
		fmt.Printf("  conflicts: %d (bipartization %d) in %v (matching %v)\n",
			len(res.Conflicts()), len(res.Detection.BipartizationEdges), st.TotalTime, st.MatchTime)
		if res.Assignable() {
			fmt.Println("  layout is phase-assignable")
		}
		if verbose {
			for _, c := range res.Conflicts() {
				fmt.Printf("    conflict: shifters %d,%d deficit %d\n", c.Meta.S1, c.Meta.S2, c.Deficit)
			}
		}

	case "assign":
		res, err := s.Detect(ctx)
		check(err)
		a, err := s.Assignment(ctx)
		check(err)
		fmt.Printf("%s: %d shifters assigned (%d conflicts waived)\n",
			l.Name, len(a.Phases), len(a.Waived))
		if verbose {
			for i, ph := range a.Phases {
				sh := res.Graph.Set.Shifters[i]
				fmt.Printf("  shifter %d (feature %d): phase %s at %v\n", i, sh.Feature, ph, sh.Rect)
			}
		}

	case "correct":
		cor, err := s.Correction(ctx)
		check(err)
		fmt.Println(cor.Stats)
		post, err := eng.Detect(ctx, cor.Layout)
		check(err)
		if !post.Assignable() && len(cor.Plan.Unfixable) == 0 {
			fatalf("internal error: corrected layout still conflicts")
		}
		if dv := eng.NewSession(cor.Layout).DRC(); len(dv) != 0 {
			fatalf("internal error: correction introduced DRC violations: %v", dv[0])
		}
		if out != "" {
			check(writeLayout(out, cor.Layout))
			fmt.Printf("wrote %s\n", out)
		}

	case "mask":
		if out == "" {
			fatalf("mask needs -out")
		}
		m, err := s.Mask(ctx)
		check(err)
		res, err := s.Detect(ctx)
		check(err)
		check(writeLayout(out, m))
		fmt.Printf("wrote mask view %s (%d shapes; %d conflicts waived pending correction)\n",
			out, len(m.Features), len(res.Conflicts()))

	case "svg":
		if out == "" {
			fatalf("svg needs -out")
		}
		f, err := os.Create(out)
		check(err)
		err = s.RenderSVG(ctx, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		check(err)
		fmt.Printf("wrote %s\n", out)

	case "junctions":
		js := s.Junctions()
		fmt.Printf("%s: %d junctions\n", l.Name, len(js))
		counts := map[string]int{}
		for _, j := range js {
			counts[j.Kind.String()]++
			if verbose {
				fmt.Println("  ", j)
			}
		}
		for k, n := range counts {
			fmt.Printf("  %s: %d\n", k, n)
		}
		res, err := s.Detect(ctx)
		check(err)
		plain, junctioned := aapsm.SplitConflictsByJunction(res, js)
		fmt.Printf("  conflicts: %d plain (spacing-correctable class), %d junction-adjacent (widening/mask-split class)\n",
			len(plain), len(junctioned))

	case "edit":
		if script == "" {
			fatalf("edit needs -script")
		}
		// Arm the incremental engine before the first detect so even a
		// script that detects before its first mutation builds the
		// per-cluster cache and later re-detects reuse it.
		check(s.EnableEdits())
		check(replayEdits(ctx, s, script, verbose))
		res, err := s.Detect(ctx)
		check(err)
		st := s.Stats()
		fmt.Printf("%s: %d features after %d edits, %d conflicts\n",
			l.Name, len(s.Layout().Features), st.Edits, len(res.Conflicts()))
		fmt.Printf("  incremental: %d detects (%d full), clusters reused %d / solved %d\n",
			st.Incremental.Detects, st.Incremental.FullDetects,
			st.Incremental.ShardsReused, st.Incremental.ShardsSolved)
		if out != "" {
			check(writeLayout(out, s.Layout()))
			fmt.Printf("wrote %s\n", out)
		}

	default:
		fatalf("unknown -cmd %q", cmd)
	}
	return s
}

// replayEdits applies an edit script to the session (see the package comment
// for the line format), re-detecting at each `detect` line.
func replayEdits(ctx context.Context, s *aapsm.Session, path string, verbose bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		bad := func(err error) error {
			return fmt.Errorf("edit script line %d (%q): %w", line, text, err)
		}
		nums := func(from, n int) ([]int64, error) {
			if len(fields) < from+n {
				return nil, fmt.Errorf("want %d numeric args", n)
			}
			out := make([]int64, n)
			for i := 0; i < n; i++ {
				v, err := strconv.ParseInt(fields[from+i], 10, 64)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			return out, nil
		}
		switch fields[0] {
		case "add":
			v, err := nums(1, 4)
			if err != nil {
				return bad(err)
			}
			layer := 0
			if len(fields) > 5 {
				layer, err = strconv.Atoi(fields[5])
				if err != nil {
					return bad(err)
				}
			}
			i, err := s.AddFeatureOnLayer(aapsm.R(v[0], v[1], v[2], v[3]), layer)
			if err != nil {
				return bad(err)
			}
			if verbose {
				fmt.Printf("  add -> feature %d\n", i)
			}
		case "move":
			v, err := nums(1, 5)
			if err != nil {
				return bad(err)
			}
			if err := s.MoveFeature(int(v[0]), aapsm.R(v[1], v[2], v[3], v[4])); err != nil {
				return bad(err)
			}
		case "del":
			v, err := nums(1, 1)
			if err != nil {
				return bad(err)
			}
			if err := s.DeleteFeature(int(v[0])); err != nil {
				return bad(err)
			}
		case "detect":
			t0 := time.Now()
			res, err := s.Detect(ctx)
			if err != nil {
				return bad(err)
			}
			fmt.Printf("  detect: %d conflicts in %v (%d of %d clusters reused)\n",
				len(res.Conflicts()), time.Since(t0).Round(time.Microsecond),
				res.Detection.Stats.ReusedShards, res.Detection.Stats.Shards)
		default:
			return bad(fmt.Errorf("unknown edit op %q", fields[0]))
		}
	}
	return sc.Err()
}

func readLayout(path string) (*aapsm.Layout, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gds") {
		return aapsm.ReadGDS(f)
	}
	return aapsm.ReadLayoutText(f)
}

func writeLayout(path string, l *aapsm.Layout) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// A failed Close can lose buffered data (e.g. on a full disk); surface it
	// instead of silently truncating the output.
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if strings.HasSuffix(path, ".gds") {
		return aapsm.WriteGDS(f, l)
	}
	return l.WriteText(f)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "aapsm: "+format+"\n", args...)
	os.Exit(2)
}
