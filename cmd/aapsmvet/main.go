// Command aapsmvet runs the repo's static-analysis suite (internal/lint)
// over a set of packages, in the spirit of a go/analysis multichecker:
//
//	go run ./cmd/aapsmvet ./...
//	go run ./cmd/aapsmvet ./internal/core ./internal/server
//	go run ./cmd/aapsmvet -list
//
// It prints one finding per line (file:line:col: analyzer: message) and
// exits 1 when any finding survives suppression. A finding is suppressed by
// an allow directive with a non-empty reason on the same or preceding line:
//
//	//aapsmvet:allow <analyzer> <reason>
//
// The suite is stdlib-only (no golang.org/x/tools dependency): packages are
// loaded and type-checked with go/parser + go/types and the source importer,
// so the binary needs nothing but the Go toolchain and the source tree. The
// same checks run in `go test ./internal/lint` (TestRepoLintClean), which is
// the CI gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: aapsmvet [-list] [-only a,b] [packages]\n\npackages are ./...-style patterns or directories; default ./...\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := lint.All()
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range lint.All() {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "aapsmvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	pkgs, err := resolvePatterns(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "aapsmvet: %v\n", err)
		os.Exit(2)
	}

	loader := lint.NewLoader()
	findings := 0
	for _, p := range pkgs {
		pkg, err := loader.Load(p[0], p[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "aapsmvet: %v\n", err)
			os.Exit(2)
		}
		var diags []lint.Diagnostic
		if *only == "" {
			diags = lint.RunAll(pkg)
		} else {
			for _, a := range selected {
				diags = append(diags, lint.RunAnalyzer(a, pkg)...)
			}
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "aapsmvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// resolvePatterns turns command-line package arguments into (dir, import
// path) pairs. Supported forms: no args or "./..." (whole module from the
// current directory's module root), and explicit directory paths.
func resolvePatterns(args []string) ([][2]string, error) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		return nil, err
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var out [][2]string
	seen := map[string]bool{}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			pkgs, err := lint.RepoPackages(root)
			if err != nil {
				return nil, err
			}
			for _, p := range pkgs {
				if !seen[p[1]] {
					seen[p[1]] = true
					out = append(out, p)
				}
			}
		case strings.HasSuffix(arg, "/..."):
			base := strings.TrimSuffix(arg, "/...")
			pkgs, err := lint.RepoPackages(root)
			if err != nil {
				return nil, err
			}
			sub, err := dirToImportPath(root, base)
			if err != nil {
				return nil, err
			}
			for _, p := range pkgs {
				if p[1] == sub || strings.HasPrefix(p[1], sub+"/") {
					if !seen[p[1]] {
						seen[p[1]] = true
						out = append(out, p)
					}
				}
			}
		default:
			ip, err := dirToImportPath(root, arg)
			if err != nil {
				return nil, err
			}
			if !seen[ip] {
				seen[ip] = true
				dir := arg
				if st, err := os.Stat(dir); err != nil || !st.IsDir() {
					return nil, fmt.Errorf("not a package directory: %s", arg)
				}
				out = append(out, [2]string{dir, ip})
			}
		}
	}
	return out, nil
}

// dirToImportPath maps a directory argument to its import path within the
// module rooted at root.
func dirToImportPath(root, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	modPath, err := lint.ModulePath(root)
	if err != nil {
		return "", err
	}
	if abs == root {
		return modPath, nil
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, root)
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}
