package correct

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/shifter"
)

// overlappedPairLayout builds a T-junction: a horizontal wire abutting a
// vertical wire's side. Their spans overlap in both axes (they touch), so
// no end-to-end space can pass between the features and spacing correction
// is impossible — the paper's T-shape class, forcing the widening path.
func overlappedPairLayout() *layout.Layout {
	l := layout.New("wident")
	l.Add(geom.R(0, 0, 100, 2000))      // vertical wire
	l.Add(geom.R(100, 950, 1100, 1050)) // horizontal wire, T against its side
	return l
}

func TestWideningResolvesSpacingUnfixable(t *testing.T) {
	r := layout.Default90nm()
	l := overlappedPairLayout()
	cg, err := core.BuildGraph(l, r, core.PCG)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.Detect(cg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(det.FinalConflicts) == 0 {
		t.Skip("fixture produced no conflicts; geometry drifted")
	}
	plan, err := BuildPlan(l, r, cg.Set, det.FinalConflicts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Unfixable) == 0 {
		t.Fatalf("fixture should be unfixable by spacing: %+v", plan)
	}
	wp, err := PlanWidening(l, r, cg.Set, det.FinalConflicts, plan.Unfixable)
	if err != nil {
		t.Fatal(err)
	}
	if len(wp.Widened) == 0 || len(wp.Resolved) == 0 {
		t.Fatalf("widening plan empty: %+v", wp)
	}
	if wp.AreaAdded <= 0 {
		t.Error("widening must add area")
	}
	mod := ApplyWidening(l, wp)
	if !drcCleanAfterWidening(l, r, wp) {
		t.Fatal("widening broke DRC")
	}
	// Widened features are no longer critical.
	for f := range wp.Widened {
		if r.IsCritical(mod.Features[f]) {
			t.Errorf("feature %d still critical after widening", f)
		}
	}
	// Re-detection: the dissolved conflicts must be gone.
	ok, err := core.IsPhaseAssignable(mod, r)
	if err != nil {
		t.Fatal(err)
	}
	if !ok && len(wp.Remaining) == 0 {
		t.Error("widened layout should be phase-assignable")
	}
}

func TestPlanWideningEmptyTarget(t *testing.T) {
	r := layout.Default90nm()
	l := overlappedPairLayout()
	set, err := shifter.Generate(l, r)
	if err != nil {
		t.Fatal(err)
	}
	wp, err := PlanWidening(l, r, set, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(wp.Widened) != 0 || wp.AreaAdded != 0 {
		t.Errorf("empty target plan: %+v", wp)
	}
}

func TestWidenedRectGeometry(t *testing.T) {
	r := layout.Default90nm() // critical width 150
	l := layout.New("wr")
	l.Add(geom.R(0, 0, 100, 1000)) // vertical, width 100 -> widen by 50
	wr, ok := widenedRect(l, r, 0)
	if !ok {
		t.Fatal("isolated wire must be widenable")
	}
	if wr.Width() != r.CriticalWidth {
		t.Errorf("widened width = %d", wr.Width())
	}
	if wr.Height() != 1000 {
		t.Error("length must not change")
	}
	// A non-critical feature cannot be "widened" usefully.
	l2 := layout.New("nc")
	l2.Add(geom.R(0, 0, 400, 1000))
	if _, ok := widenedRect(l2, r, 0); ok {
		t.Error("non-critical feature must not be widenable")
	}
	// Widening into a close neighbor is rejected.
	l3 := layout.New("tight")
	l3.Add(geom.R(0, 0, 100, 1000))
	l3.Add(geom.R(250, 0, 650, 1000)) // spacing 150; widening by 25 -> 125 < 140
	if _, ok := widenedRect(l3, r, 0); ok {
		t.Error("widening must respect neighbor spacing")
	}
	// Horizontal feature widens vertically.
	l4 := layout.New("h")
	l4.Add(geom.R(0, 0, 1000, 100))
	wr4, ok := widenedRect(l4, r, 0)
	if !ok || wr4.Height() != r.CriticalWidth || wr4.Width() != 1000 {
		t.Errorf("horizontal widening = %v ok=%v", wr4, ok)
	}
}
