// Command aapsm runs the bright-field AAPSM flow on a layout file:
// conflict detection, phase assignment, DRC, and layout correction.
//
// Usage:
//
//	aapsm -cmd detect    -in design.txt [-graph pcg|fg] [-method gen|opt|lawler]
//	aapsm -cmd correct   -in design.txt [-out fixed.txt]
//	aapsm -cmd assign    -in design.txt
//	aapsm -cmd drc       -in design.txt
//	aapsm -cmd mask      -in design.txt -out design_mask.gds
//	aapsm -cmd svg       -in design.txt -out design.svg
//	aapsm -cmd junctions -in design.txt
//
// Layout files are the plain-text interchange format unless the name ends
// in .gds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	aapsm "repro"
)

func main() {
	var (
		cmd     = flag.String("cmd", "detect", "detect | correct | assign | drc")
		in      = flag.String("in", "", "input layout (.txt or .gds)")
		out     = flag.String("out", "", "output layout for -cmd correct (default: stdout, text)")
		graph   = flag.String("graph", "pcg", "graph representation: pcg | fg")
		method  = flag.String("method", "gen", "T-join reduction: gen | opt | lawler")
		imp     = flag.Bool("improved-recheck", false, "use parity-based crossing recheck")
		verbose = flag.Bool("v", false, "verbose conflict listing")
	)
	flag.Parse()
	if *in == "" {
		fatalf("missing -in; see -help")
	}
	l, err := readLayout(*in)
	check(err)
	rules := aapsm.Default90nmRules()

	opt := aapsm.DetectOptions{ImprovedRecheck: *imp}
	switch *graph {
	case "pcg":
		opt.Graph = aapsm.PCG
	case "fg":
		opt.Graph = aapsm.FG
	default:
		fatalf("unknown -graph %q", *graph)
	}
	switch *method {
	case "gen":
		opt.Method = aapsm.GeneralizedGadgets
	case "opt":
		opt.Method = aapsm.OptimizedGadgets
	case "lawler":
		opt.Method = aapsm.LawlerReduction
	default:
		fatalf("unknown -method %q", *method)
	}

	switch *cmd {
	case "drc":
		vs := aapsm.CheckDRC(l, rules)
		fmt.Printf("%s: %d features, %d DRC violations\n", l.Name, len(l.Features), len(vs))
		for _, v := range vs {
			fmt.Println("  ", v)
		}
		if len(vs) > 0 {
			os.Exit(1)
		}

	case "detect":
		res, err := aapsm.Detect(l, rules, opt)
		check(err)
		s := res.Detection.Stats
		fmt.Printf("%s: %d features, graph %d nodes / %d edges (%s)\n",
			l.Name, len(l.Features), s.GraphNodes, s.GraphEdges, *graph)
		fmt.Printf("  crossings removed: %d (of %d crossing pairs)\n",
			len(res.Detection.CrossingsRemoved), s.CrossingPairs)
		fmt.Printf("  dual: %d faces / %d edges, %d odd faces; gadget %d nodes\n",
			s.DualNodes, s.DualEdges, s.OddFaces, s.GadgetNodes)
		fmt.Printf("  conflicts: %d (bipartization %d) in %v (matching %v)\n",
			len(res.Conflicts()), len(res.Detection.BipartizationEdges), s.TotalTime, s.MatchTime)
		if res.Assignable() {
			fmt.Println("  layout is phase-assignable")
		}
		if *verbose {
			for _, c := range res.Conflicts() {
				fmt.Printf("    conflict: shifters %d,%d deficit %d\n", c.Meta.S1, c.Meta.S2, c.Deficit)
			}
		}

	case "assign":
		res, err := aapsm.Detect(l, rules, opt)
		check(err)
		a, err := aapsm.AssignPhases(res)
		check(err)
		if v := aapsm.VerifyAssignment(a, res); len(v) != 0 {
			fatalf("assignment verification failed: %v", v)
		}
		fmt.Printf("%s: %d shifters assigned (%d conflicts waived)\n",
			l.Name, len(a.Phases), len(a.Waived))
		if *verbose {
			for i, ph := range a.Phases {
				sh := res.Graph.Set.Shifters[i]
				fmt.Printf("  shifter %d (feature %d): phase %s at %v\n", i, sh.Feature, ph, sh.Rect)
			}
		}

	case "correct":
		res, err := aapsm.Detect(l, rules, opt)
		check(err)
		cor, err := aapsm.Correct(l, rules, res)
		check(err)
		fmt.Println(cor.Stats)
		ok, err := aapsm.Assignable(cor.Layout, rules)
		check(err)
		if !ok && len(cor.Plan.Unfixable) == 0 {
			fatalf("internal error: corrected layout still conflicts")
		}
		if dv := aapsm.CheckDRC(cor.Layout, rules); len(dv) != 0 {
			fatalf("internal error: correction introduced DRC violations: %v", dv[0])
		}
		if *out != "" {
			check(writeLayout(*out, cor.Layout))
			fmt.Printf("wrote %s\n", *out)
		}

	case "mask":
		if *out == "" {
			fatalf("mask needs -out")
		}
		res, err := aapsm.Detect(l, rules, opt)
		check(err)
		a, err := aapsm.AssignPhases(res)
		check(err)
		if p := aapsm.ValidateMask(l, rules, res, a); len(p) != 0 {
			fatalf("mask inconsistent: %v", p[0])
		}
		m, err := aapsm.BuildMask(l, res, a)
		check(err)
		check(writeLayout(*out, m))
		fmt.Printf("wrote mask view %s (%d shapes; %d conflicts waived pending correction)\n",
			*out, len(m.Features), len(res.Conflicts()))

	case "svg":
		if *out == "" {
			fatalf("svg needs -out")
		}
		res, err := aapsm.Detect(l, rules, opt)
		check(err)
		a, err := aapsm.AssignPhases(res)
		check(err)
		f, err := os.Create(*out)
		check(err)
		defer f.Close()
		check(aapsm.RenderSVG(f, l, aapsm.RenderOptions{Result: res, Assignment: a}))
		fmt.Printf("wrote %s\n", *out)

	case "junctions":
		js := aapsm.FindJunctions(l)
		fmt.Printf("%s: %d junctions\n", l.Name, len(js))
		counts := map[string]int{}
		for _, j := range js {
			counts[j.Kind.String()]++
			if *verbose {
				fmt.Println("  ", j)
			}
		}
		for k, n := range counts {
			fmt.Printf("  %s: %d\n", k, n)
		}
		res, err := aapsm.Detect(l, rules, opt)
		check(err)
		plain, junctioned := aapsm.SplitConflictsByJunction(res, js)
		fmt.Printf("  conflicts: %d plain (spacing-correctable class), %d junction-adjacent (widening/mask-split class)\n",
			len(plain), len(junctioned))

	default:
		fatalf("unknown -cmd %q", *cmd)
	}
}

func readLayout(path string) (*aapsm.Layout, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gds") {
		return aapsm.ReadGDS(f)
	}
	return aapsm.ReadLayoutText(f)
}

func writeLayout(path string, l *aapsm.Layout) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gds") {
		return aapsm.WriteGDS(f, l)
	}
	return l.WriteText(f)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "aapsm: "+format+"\n", args...)
	os.Exit(2)
}
