// Fullflow: generate a synthetic standard-cell design, detect its AAPSM
// conflicts, correct them with end-to-end spaces, and verify the result —
// the complete §3 flow of the paper, ending in a Table-2 style report.
//
// One session carries the whole flow: detection runs once and correction
// reuses it; a second session verifies the corrected layout.
package main

import (
	"context"
	"fmt"
	"log"

	aapsm "repro"
)

func main() {
	ctx := context.Background()
	eng := aapsm.NewEngine()

	l := aapsm.GenerateBenchmark("demo", aapsm.DefaultBenchmarkParams(2025, 6, 150))
	fmt.Printf("generated %q: %d polygons, %.1f µm² bounding box\n",
		l.Name, len(l.Features), float64(l.Area())/1e6)

	s := eng.NewSession(l)
	if v := s.DRC(); len(v) != 0 {
		log.Fatalf("generator produced DRC violations: %v", v[0])
	}

	// Step 1-3: detection on the phase conflict graph.
	res, err := s.Detect(ctx)
	if err != nil {
		log.Fatal(err)
	}
	st := res.Detection.Stats
	fmt.Printf("detection: %d conflicts (bipartization %d, crossings re-added %d) in %v\n",
		len(res.Conflicts()), len(res.Detection.BipartizationEdges),
		len(res.Conflicts())-len(res.Detection.BipartizationEdges), st.TotalTime)

	// Step 4: layout modification (reuses the session's detection).
	cor, err := s.Correction(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correction: %d end-to-end spaces (max %d conflicts on one line), +%d nm width, +%d nm height\n",
		len(cor.Plan.Cuts), cor.Plan.MaxPerLine(), cor.Plan.AddedWidth, cor.Plan.AddedHeight)
	fmt.Printf("table-2 row: %v\n", cor.Stats)
	fmt.Printf("session ran detection %d time(s) for DRC+detect+correct\n", s.Stats().DetectRuns)

	// Verification: the modified layout is DRC clean and phase-assignable.
	post := eng.NewSession(cor.Layout)
	if v := post.DRC(); len(v) != 0 {
		log.Fatalf("correction introduced DRC violations: %v", v[0])
	}
	postRes, err := post.Detect(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if !postRes.Assignable() && len(cor.Plan.Unfixable) == 0 {
		log.Fatal("corrected layout still conflicts")
	}
	fmt.Printf("verified: modified layout DRC-clean and phase-assignable (unfixable by spacing: %d)\n",
		len(cor.Plan.Unfixable))

	// Extract and verify the final phases on the corrected layout; the
	// assignment stage reuses the verification session's detection.
	a, err := post.Assignment(ctx)
	if err != nil {
		log.Fatal(err)
	}
	n180 := 0
	for _, p := range a.Phases {
		if p != 0 {
			n180++
		}
	}
	fmt.Printf("final phases: %d shifters (%d at 180°), all conditions verified\n",
		len(a.Phases), n180)
}
