// Command layoutgen emits synthetic benchmark layouts: either a member of
// the d1..d8 reproduction suite or a custom-sized standard-cell layout.
//
// Usage:
//
//	layoutgen -design d3 -out d3.txt
//	layoutgen -rows 10 -gates 200 -seed 7 -out custom.gds
//	layoutgen -fixture figure1 -out fig1.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	aapsm "repro"
)

func main() {
	var (
		design  = flag.String("design", "", "suite design name (d1..d8)")
		fixture = flag.String("fixture", "", "figure fixture: figure1 | figure2 | figure5")
		rows    = flag.Int("rows", 4, "rows (custom layout)")
		gates   = flag.Int("gates", 100, "gates per row (custom layout)")
		seed    = flag.Int64("seed", 1, "generator seed (custom layout)")
		out     = flag.String("out", "", "output path (.txt or .gds); stdout when empty")
	)
	flag.Parse()

	var l *aapsm.Layout
	switch {
	case *fixture != "":
		switch *fixture {
		case "figure1":
			l = aapsm.Figure1Layout()
		case "figure2":
			l = aapsm.Figure2Layout()
		case "figure5":
			l = aapsm.Figure5Layout()
		default:
			fatalf("unknown fixture %q", *fixture)
		}
	case *design != "":
		for _, d := range aapsm.BenchmarkSuite() {
			if d.Name == *design {
				l = aapsm.GenerateBenchmark(d.Name, d.Params)
				break
			}
		}
		if l == nil {
			fatalf("unknown design %q (want d1..d8)", *design)
		}
	default:
		l = aapsm.GenerateBenchmark(fmt.Sprintf("custom-%dx%d", *rows, *gates),
			aapsm.DefaultBenchmarkParams(*seed, *rows, *gates))
	}

	fmt.Fprintf(os.Stderr, "generated %s: %d features\n", l.Name, len(l.Features))
	if *out == "" {
		if err := aapsm.WriteLayoutText(os.Stdout, l); err != nil {
			fatalf("%v", err)
		}
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if strings.HasSuffix(*out, ".gds") {
		err = aapsm.WriteGDS(f, l)
	} else {
		err = aapsm.WriteLayoutText(f, l)
	}
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "layoutgen: "+format+"\n", args...)
	os.Exit(2)
}
