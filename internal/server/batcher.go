package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	aapsm "repro"
)

// This file implements the per-session request coalescing layer:
//
//   - editBatcher collects concurrent POST /edits requests into one size- and
//     maxWait-bounded Session.Edit batch, runs a single incremental
//     re-pipeline for the whole batch, and fans the results back out over
//     per-waiter channels. Errors are attributed per item: a bad op 422s only
//     its own waiter (its ops are simulated against the running feature count
//     before anything applies, preserving the all-or-nothing contract within
//     each submitted request), while every other item in the batch lands.
//   - a per-stage read single-flight keyed on the session generation, so
//     identical detect/assign/correct/drc/mask/layout/svg requests arriving
//     at the same edit epoch compute and encode the response exactly once.
//   - the edit-notification broadcast streaming connections wait on.

// editItem is one enqueued edit request: its parsed ops going in, and the
// per-item slice of the batch outcome coming back. Result fields are written
// only by the batch runner before done is closed, and read only by the
// waiting handler after it — no lock needed.
type editItem struct {
	ops    []editOp
	detect bool // run (and attach) the post-batch detection
	enq    time.Time
	done   chan struct{}

	// Outcome: rangeErr answers 422 bad_index, flowErr goes through the
	// typed flow-error mapping, otherwise the item succeeded.
	rangeErr error
	flowErr  error

	applied  int
	added    []int
	features int
	gen      int64
	inc      aapsm.IncrementalStats
	batch    batchInfo
	detResp  *detectResponse
	detErr   string
}

// batchInfo is the per-item coalescing receipt attached to edit responses.
type batchInfo struct {
	// Seq numbers the merged batches of one session; Pos/Size place this
	// item inside its batch. Replaying items sorted by (seq, pos) reproduces
	// the exact committed order.
	Seq  int64 `json:"seq"`
	Pos  int   `json:"pos"`
	Size int   `json:"size"`
	// QueueNS is how long the item waited between arrival and its batch
	// being collected (includes the coalescing linger); SolveNS is the
	// merged batch's apply + re-pipeline time, shared by every item in it.
	QueueNS int64 `json:"queue_ns"`
	SolveNS int64 `json:"solve_ns"`
}

// editBatcher is the per-session coalescing state. One batch runner exists
// while the queue is non-empty; it is started by the first enqueue and exits
// when the queue drains.
type editBatcher struct {
	mu sync.Mutex
	// queue, running and seq are the batch state: all guarded by mu.
	queue   []*editItem // guarded by mu
	running bool        // guarded by mu
	seq     int64       // guarded by mu
	// kick wakes a lingering runner when a new item arrives (buffered so
	// enqueues never block).
	kick chan struct{}

	// notify is closed and replaced after every committed batch; streaming
	// connections fetch it, re-read the generation, and wait. Guarded by mu.
	notify chan struct{}

	// Read single-flight: identical read-stage requests at one session
	// generation share a single computation + encoding. Only the newest
	// generation is cached; readGen tracks it. Both guarded by mu.
	readGen   int64                 // guarded by mu
	readCalls map[readKey]*readCall // guarded by mu
}

func newEditBatcher() *editBatcher {
	return &editBatcher{
		kick:      make(chan struct{}, 1),
		notify:    make(chan struct{}),
		readCalls: make(map[readKey]*readCall),
	}
}

// editNotify returns the channel the next committed batch will close.
// Readers must fetch the channel BEFORE reading the generation they are
// comparing against, or a batch landing in between is missed.
func (b *editBatcher) editNotify() <-chan struct{} {
	b.mu.Lock()
	ch := b.notify
	b.mu.Unlock()
	return ch
}

// broadcast wakes every stream waiting for the next batch.
func (b *editBatcher) broadcast() {
	b.mu.Lock()
	close(b.notify)
	b.notify = make(chan struct{})
	b.mu.Unlock()
}

// enqueueEdit hands one edit request to the session's batcher, starting the
// batch runner if none is active. The runner holds its own store reference so
// it stays valid even if every waiter gives up and releases the entry.
func (s *Server) enqueueEdit(ent *sessionEntry, it *editItem) {
	b := ent.batch
	b.mu.Lock()
	b.queue = append(b.queue, it)
	wasRunning := b.running
	b.running = true
	b.mu.Unlock()
	select {
	case b.kick <- struct{}{}:
	default:
	}
	if !wasRunning {
		s.store.hold(ent)
		go s.runEditBatches(ent)
	}
}

// runEditBatches is the per-session batch runner: collect a size/maxWait
// bounded batch, process it, repeat until the queue drains.
func (s *Server) runEditBatches(ent *sessionEntry) {
	defer s.store.release(ent)
	b := ent.batch
	for {
		b.mu.Lock()
		if len(b.queue) == 0 {
			b.running = false
			b.mu.Unlock()
			return
		}
		first := b.queue[0].enq
		b.mu.Unlock()
		if wait := s.cfg.BatchWait; wait > 0 {
			s.lingerForBatch(b, first.Add(wait))
		}
		b.mu.Lock()
		n := len(b.queue)
		if max := s.cfg.BatchMax; max > 0 && n > max {
			n = max
		}
		b.seq++
		seq := b.seq
		items := make([]*editItem, n)
		copy(items, b.queue)
		b.queue = append(b.queue[:0:0], b.queue[n:]...)
		b.mu.Unlock()
		s.processBatch(ent, seq, items)
		b.broadcast()
	}
}

// lingerForBatch waits until the queue reaches BatchMax or the deadline
// passes, so near-simultaneous edits coalesce instead of racing the runner.
func (s *Server) lingerForBatch(b *editBatcher, deadline time.Time) {
	for {
		b.mu.Lock()
		full := s.cfg.BatchMax > 0 && len(b.queue) >= s.cfg.BatchMax
		b.mu.Unlock()
		if full {
			return
		}
		d := time.Until(deadline)
		if d <= 0 {
			return
		}
		t := time.NewTimer(d)
		select {
		case <-b.kick:
			t.Stop()
		case <-t.C:
		}
	}
}

// processBatch applies one merged batch under a single Session.Edit, runs the
// shared incremental re-pipeline, fills every item's outcome, and releases
// the waiters. A panic anywhere inside fails the batch's unanswered items
// instead of killing the runner goroutine.
func (s *Server) processBatch(ent *sessionEntry, seq int64, items []*editItem) {
	collected := time.Now()
	released := false
	release := func() {
		if released {
			return
		}
		released = true
		for _, it := range items {
			close(it.done)
		}
	}
	defer func() {
		if v := recover(); v != nil {
			s.metrics.panicsHandler.Add(1)
			if !released {
				for _, it := range items {
					if it.rangeErr == nil && it.flowErr == nil {
						it.flowErr = fmt.Errorf("edit batch panic: %v", v)
					}
				}
				release()
			}
		}
	}()

	// The layout is about to diverge from the content it was created from;
	// concurrent same-hash creates must stop coalescing onto it now.
	s.store.markEdited(ent)

	solveStart := time.Now()
	totalApplied := 0
	err := ent.Sess.Edit(func(ed *aapsm.LayoutEditor) {
		count := ed.NumFeatures()
		for i, it := range items {
			// Simulate this item's ops against the running feature count
			// before applying any of them: range errors are the only way an
			// op can fail, so the item stays all-or-nothing and a bad item
			// 422s alone while the rest of the batch lands.
			c := count
			for k, op := range it.ops {
				switch op.Op {
				case "add":
					c++
				case "move":
					if *op.Index < 0 || *op.Index >= c {
						it.rangeErr = fmt.Errorf("op %d: move index %d out of range [0,%d)", k, *op.Index, c)
					}
				case "del":
					if *op.Index < 0 || *op.Index >= c {
						it.rangeErr = fmt.Errorf("op %d: delete index %d out of range [0,%d)", k, *op.Index, c)
					} else {
						c--
					}
				}
				if it.rangeErr != nil {
					break
				}
			}
			if it.rangeErr != nil {
				continue
			}
			count = c
			for _, op := range it.ops {
				switch op.Op {
				case "add":
					it.added = append(it.added, ed.AddOnLayer(aapsm.R(op.Rect[0], op.Rect[1], op.Rect[2], op.Rect[3]), op.Layer))
				case "move":
					ed.Move(*op.Index, aapsm.R(op.Rect[0], op.Rect[1], op.Rect[2], op.Rect[3]))
				case "del":
					ed.Delete(*op.Index)
					// Keep every reported add index valid after the merged
					// batch: a delete below an added feature shifts it down,
					// deleting the added feature itself voids it — across
					// items, since all items commit together.
					for _, prev := range items[:i+1] {
						for j, a := range prev.added {
							switch {
							case a == *op.Index:
								prev.added[j] = -1
							case a > *op.Index:
								prev.added[j] = a - 1
							}
						}
					}
				}
				if ed.Err() != nil {
					return
				}
				it.applied++
			}
			totalApplied += it.applied
		}
	})
	s.metrics.edits.Add(int64(totalApplied))
	if err != nil {
		// Pre-validation makes in-flight op failures unreachable, but if one
		// slips through (or Edit itself refuses), attribute it to every item
		// that did not fully land; completed items keep their success.
		for _, it := range items {
			if it.rangeErr == nil && it.applied < len(it.ops) {
				it.flowErr = err
			}
		}
	}

	// One shared incremental re-pipeline for the whole batch, when any
	// surviving item asked for it. The memoized result is what subsequent
	// read-stage requests at this generation will reuse.
	var detResp *detectResponse
	detErr := ""
	wantDetect := false
	for _, it := range items {
		if it.detect && it.rangeErr == nil && it.flowErr == nil {
			wantDetect = true
		}
	}
	if wantDetect {
		//aapsmvet:allow ctxflow a batch serves many coalesced requests, so it runs detached from any one request context, bounded by RequestTimeout below
		ctx := context.Background()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		res, derr := ent.Sess.Detect(ctx)
		if derr != nil {
			detErr = derr.Error()
		} else {
			s.metrics.detects.Add(1)
			v := buildDetectResponse(ent.ID, ent.Sess, res)
			detResp = &v
		}
	}

	solve := time.Since(solveStart)
	st := ent.Sess.Stats()
	features := ent.Sess.NumFeatures()
	gen := ent.Sess.Generation()
	s.metrics.observeBatch(len(items), solve)
	for pos, it := range items {
		it.features = features
		it.gen = gen
		it.inc = st.Incremental
		it.batch = batchInfo{
			Seq:     seq,
			Pos:     pos,
			Size:    len(items),
			QueueNS: collected.Sub(it.enq).Nanoseconds(),
			SolveNS: solve.Nanoseconds(),
		}
		if it.detect && it.rangeErr == nil && it.flowErr == nil {
			it.detResp = detResp
			it.detErr = detErr
		}
		s.metrics.observeBatchQueue(collected.Sub(it.enq))
	}
	release()
}

// ---- read-stage single-flight ----

// readKey identifies one cacheable read: the stage, its request variant (the
// raw query string — format, include_layout, …), and the session generation
// the response was computed at.
type readKey struct {
	stage   string
	variant string
	gen     int64
}

// readCall is one in-flight (or completed) read computation other identical
// requests wait on and replay.
type readCall struct {
	done  chan struct{}
	code  int
	ctype string
	body  []byte
}

// coalesced wraps a read-stage handler in the per-stage single-flight:
// identical requests at the same session generation run the handler (and its
// JSON/SVG encoding) once and share the bytes. Extends the create
// single-flight philosophy to every read stage.
func (s *Server) coalesced(stage string, h func(http.ResponseWriter, *http.Request, *sessionEntry)) func(http.ResponseWriter, *http.Request, *sessionEntry) {
	return func(w http.ResponseWriter, r *http.Request, ent *sessionEntry) {
		code, ctype, body, ok := s.readCoalesced(r, ent, stage, r.URL.RawQuery, h)
		if !ok {
			writeError(w, http.StatusServiceUnavailable, "cancelled", "", "",
				"request cancelled while waiting on an identical in-flight read")
			return
		}
		if ctype != "" {
			w.Header().Set("Content-Type", ctype)
		}
		w.WriteHeader(code)
		w.Write(body)
	}
}

// readCoalesced is the single-flight core shared by the HTTP wrappers and the
// streaming endpoint. ok=false means the caller's context expired while an
// identical leader was computing.
func (s *Server) readCoalesced(r *http.Request, ent *sessionEntry, stage, variant string,
	h func(http.ResponseWriter, *http.Request, *sessionEntry)) (code int, ctype string, body []byte, ok bool) {
	b := ent.batch
	gen := ent.Sess.Generation()
	key := readKey{stage: stage, variant: variant, gen: gen}
	b.mu.Lock()
	if gen > b.readGen {
		// A new edit generation obsoletes every cached read; only the
		// current generation is worth keeping (bounded: stages × variants).
		b.readGen = gen
		b.readCalls = make(map[readKey]*readCall)
	} else if gen < b.readGen {
		// A reader that raced an edit: compute directly, don't cache under a
		// generation that is already stale.
		b.mu.Unlock()
		rec := newCaptureWriter()
		h(rec, r, ent)
		return rec.code, rec.h.Get("Content-Type"), rec.buf.Bytes(), true
	}
	if call, inflight := b.readCalls[key]; inflight {
		b.mu.Unlock()
		s.metrics.readsCoalesced.Add(1)
		select {
		case <-call.done:
			return call.code, call.ctype, call.body, true
		case <-r.Context().Done():
			return 0, "", nil, false
		}
	}
	call := &readCall{done: make(chan struct{})}
	b.readCalls[key] = call
	b.mu.Unlock()

	rec := newCaptureWriter()
	h(rec, r, ent)
	call.code, call.ctype, call.body = rec.code, rec.h.Get("Content-Type"), rec.buf.Bytes()
	close(call.done)
	if call.code != http.StatusOK {
		// Errors are memoized inside the session where applicable, so
		// recomputing is cheap; keep the byte cache success-only so a
		// transient (timeout/cancel) answer is never replayed.
		b.mu.Lock()
		if b.readCalls[key] == call {
			delete(b.readCalls, key)
		}
		b.mu.Unlock()
	}
	return call.code, call.ctype, call.body, true
}

// captureWriter buffers a handler's response so the single-flight can store
// and replay it.
type captureWriter struct {
	h    http.Header
	code int
	buf  bytes.Buffer
}

func newCaptureWriter() *captureWriter {
	return &captureWriter{h: make(http.Header), code: http.StatusOK}
}

func (c *captureWriter) Header() http.Header { return c.h }

func (c *captureWriter) WriteHeader(code int) { c.code = code }

func (c *captureWriter) Write(b []byte) (int, error) { return c.buf.Write(b) }
