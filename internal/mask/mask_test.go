package mask

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gds"
	"repro/internal/layout"
)

func buildAssigned(t *testing.T, l *layout.Layout) (*core.ConflictGraph, *core.Assignment) {
	t.Helper()
	r := layout.Default90nm()
	cg, err := core.BuildGraph(l, r, core.PCG)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.Detect(cg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.AssignPhases(det)
	if err != nil {
		t.Fatal(err)
	}
	return cg, a
}

func TestBuildMaskView(t *testing.T) {
	l := bench.Figure1Layout()
	cg, a := buildAssigned(t, l)
	m, err := Build(l, cg.Set, a.Phases, layout.BrightField)
	if err != nil {
		t.Fatal(err)
	}
	st := Count(m)
	if st.Chrome != len(l.Features) {
		t.Errorf("chrome = %d", st.Chrome)
	}
	if st.Phase0+st.Phase180 != len(cg.Set.Shifters) {
		t.Errorf("apertures = %d+%d, want %d", st.Phase0, st.Phase180, len(cg.Set.Shifters))
	}
	if st.Phase0 == 0 || st.Phase180 == 0 {
		t.Error("both phases must be populated")
	}
	// GDS round trip of the mask view.
	var buf bytes.Buffer
	if err := gds.Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := gds.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if Count(back) != st {
		t.Error("mask view altered by GDS round trip")
	}
}

func TestBuildPhaseCountMismatch(t *testing.T) {
	l := bench.Figure1Layout()
	cg, a := buildAssigned(t, l)
	if _, err := Build(l, cg.Set, a.Phases[:1], layout.BrightField); err == nil {
		t.Fatal("short phase slice must be rejected")
	}
	_ = cg
}

func TestValidateMask(t *testing.T) {
	l := bench.Figure1Layout()
	cg, a := buildAssigned(t, l)
	waived := map[int]bool{}
	for oi := range a.Waived {
		waived[oi] = true
	}
	if problems := Validate(l, cg.Set, a.Phases, waived, layout.Default90nm()); len(problems) != 0 {
		t.Fatalf("valid assignment flagged: %v", problems)
	}
	// Corrupt one phase: must be caught.
	bad := append([]core.Phase(nil), a.Phases...)
	bad[0] = 1 - bad[0]
	if problems := Validate(l, cg.Set, bad, waived, layout.Default90nm()); len(problems) == 0 {
		t.Fatal("corrupted phases not detected")
	}
}
