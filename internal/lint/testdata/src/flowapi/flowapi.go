// Package aapsm is a golden stand-in for the repo root package: it is loaded
// under the import path "repro" so the flowerror analyzer's API-boundary
// rules apply. It re-declares the minimal FlowError surface locally.
package aapsm

import (
	"errors"
	"fmt"
)

// ErrBroken is a sentinel error.
var ErrBroken = errors.New("broken")

// FlowStage mirrors the real root package's stage enum.
type FlowStage int8

// Stage constants.
const (
	StageDetect FlowStage = iota
	StageAssign
)

// FlowError mirrors the real root package's stage-tagged error.
type FlowError struct {
	Stage  FlowStage
	Layout string
	Err    error
}

func (e *FlowError) Error() string { return e.Err.Error() }

// Unwrap exposes the cause.
func (e *FlowError) Unwrap() error { return e.Err }

func flowErr(s FlowStage, layout string, err error) error {
	return &FlowError{Stage: s, Layout: layout, Err: err}
}

// Exported returns a bare error across the API boundary.
func Exported() error {
	return fmt.Errorf("bad thing") // want `exported Exported returns a bare fmt.Errorf error`
}

// ExportedNew returns a bare errors.New error.
func ExportedNew() error {
	return errors.New("bad") // want `exported ExportedNew returns a bare errors.New error`
}

// Wrapped tags the stage: the correct shape.
func Wrapped() error {
	return flowErr(StageDetect, "l", ErrBroken)
}

// unexported functions may build errors freely; wrapping happens at the
// boundary.
func unexported() error { return errors.New("fine internally") }

// IsBroken matches the sentinel correctly.
func IsBroken(err error) bool { return errors.Is(err, ErrBroken) }

// Identity compares a sentinel by identity.
func Identity(err error) bool {
	return err == ErrBroken // want `comparison with sentinel ErrBroken using ==`
}

// Lossy formats an error with %v.
func Lossy(err error) error {
	return flowErr(StageAssign, "", fmt.Errorf("ctx: %v", err)) // want `fmt.Errorf formats an error without %w`
}

// NumericStage passes a literal stage.
func NumericStage(err error) error {
	return flowErr(1, "", err) // want `flowErr called with a numeric stage`
}

func lit(err error) error {
	return &FlowError{Stage: 0, Err: err} // want `FlowError literal with a numeric Stage`
}
