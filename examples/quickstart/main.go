// Quickstart: the paper's Figure 1 situation — three critical wires whose
// shifters form an odd cycle of phase dependencies, making the layout
// non-phase-assignable; detection pinpoints the minimal conflicts and phase
// assignment succeeds once they are waived.
//
// The Engine/Session API drives the whole flow: the session runs detection
// once and the assignment stage reuses it.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	aapsm "repro"
)

func main() {
	ctx := context.Background()
	eng := aapsm.NewEngine() // Default90nmRules, PCG, generalized gadgets

	// Three parallel 100 nm poly wires at a 350 nm pitch: the left shifter
	// of each inner wire merges with BOTH shifters of its neighbor —
	// Condition 1 (opposite flank phases) and Condition 2 (merged shifters
	// share a phase) cannot hold simultaneously.
	l := aapsm.Figure1Layout()
	s := eng.NewSession(l)

	err := s.RequireAssignable(ctx)
	fmt.Printf("layout %q: %d features, phase-assignable: %v\n",
		l.Name, len(l.Features), err == nil)
	if err != nil && !errors.Is(err, aapsm.ErrNotAssignable) {
		log.Fatal(err)
	}

	res, err := s.Detect(ctx) // memoized: RequireAssignable already ran it
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conflict graph: %d nodes, %d edges\n",
		res.Detection.Stats.GraphNodes, res.Detection.Stats.GraphEdges)
	fmt.Printf("detected %d AAPSM conflicts:\n", len(res.Conflicts()))
	for _, c := range res.Conflicts() {
		s1 := res.Graph.Set.Shifters[c.Meta.S1]
		s2 := res.Graph.Set.Shifters[c.Meta.S2]
		fmt.Printf("  shifters of features %d and %d need %d nm more space (at %v / %v)\n",
			s1.Feature, s2.Feature, c.Deficit, s1.Rect, s2.Rect)
	}

	a, err := s.Assignment(ctx) // reuses the detection, verifies internally
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase assignment (conflicts waived for correction):")
	for i, ph := range a.Phases {
		sh := res.Graph.Set.Shifters[i]
		fmt.Printf("  feature %d %s flank: %3s°\n", sh.Feature, side(sh), ph)
	}
	fmt.Printf("session ran detection %d time(s)\n", s.Stats().DetectRuns)
}

func side(s aapsm.Shifter) string {
	if s.Side == 0 {
		return "left/lower"
	}
	return "right/upper"
}
