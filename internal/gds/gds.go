// Package gds reads and writes the subset of the GDSII stream format the
// AAPSM tools need: multi-structure libraries whose cells hold rectilinear
// BOUNDARY elements and SREF/AREF placements restricted to the rectilinear
// transform subgroup (90° rotation multiples, X reflection, integral
// magnification). Database units are 1 nm (unit record: 0.001 user units,
// 1e-9 meters), matching the layout model's integer nanometer coordinates.
//
// ReadLibrary parses the structure view; Library.Flatten (or the ReadWith
// convenience wrapper) expands a cell DAG — with cycle, depth and size
// validation — into the flat layout model, optionally keeping a
// layout.Hierarchy sidecar that tags each feature with the top-level
// placement it came from.
//
// The record framing, data types and the excess-64 floating point encoding
// follow the Calma GDSII Stream Format Manual, release 6.0.
package gds

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/layout"
)

// Record types used by this subset.
const (
	recHEADER   = 0x00
	recBGNLIB   = 0x01
	recLIBNAME  = 0x02
	recUNITS    = 0x03
	recENDLIB   = 0x04
	recBGNSTR   = 0x05
	recSTRNAME  = 0x06
	recENDSTR   = 0x07
	recBOUNDARY = 0x08
	recSREF     = 0x0A
	recAREF     = 0x0B
	recLAYER    = 0x0D
	recDATATYPE = 0x0E
	recXY       = 0x10
	recENDEL    = 0x11
	recSNAME    = 0x12
	recCOLROW   = 0x13
	recSTRANS   = 0x1A
	recMAG      = 0x1B
	recANGLE    = 0x1C
)

// Data type codes.
const (
	dtNone   = 0x00
	dtBits   = 0x01
	dtInt16  = 0x02
	dtInt32  = 0x03
	dtReal8  = 0x05
	dtString = 0x06
)

// ErrNotRectangle is returned when a BOUNDARY is not a closed axis-aligned
// rectangle (the only polygon class the AAPSM layout model supports).
var ErrNotRectangle = errors.New("gds: boundary is not an axis-aligned rectangle")

// Write serializes the layout as a GDSII stream.
func Write(w io.Writer, l *layout.Layout) error {
	bw := bufio.NewWriter(w)
	name := l.Name
	if name == "" {
		name = "TOP"
	}
	emit := func(rt, dt byte, payload []byte) error {
		length := 4 + len(payload)
		if length > 0xFFFF {
			return fmt.Errorf("gds: record too long (%d)", length)
		}
		hdr := []byte{byte(length >> 8), byte(length), rt, dt}
		if _, err := bw.Write(hdr); err != nil {
			return err
		}
		_, err := bw.Write(payload)
		return err
	}
	i16 := func(vals ...int16) []byte {
		out := make([]byte, 2*len(vals))
		for i, v := range vals {
			binary.BigEndian.PutUint16(out[2*i:], uint16(v))
		}
		return out
	}
	i32 := func(vals ...int32) []byte {
		out := make([]byte, 4*len(vals))
		for i, v := range vals {
			binary.BigEndian.PutUint32(out[4*i:], uint32(v))
		}
		return out
	}
	str := func(s string) []byte {
		b := []byte(s)
		if len(b)%2 == 1 {
			b = append(b, 0) // records are word-aligned
		}
		return b
	}
	// Fixed timestamp (modification/access): deterministic output.
	ts := i16(2005, 3, 7, 0, 0, 0, 2005, 3, 7, 0, 0, 0)

	if err := emit(recHEADER, dtInt16, i16(600)); err != nil {
		return err
	}
	if err := emit(recBGNLIB, dtInt16, ts); err != nil {
		return err
	}
	if err := emit(recLIBNAME, dtString, str(name)); err != nil {
		return err
	}
	units := append(encodeReal8(1e-3), encodeReal8(1e-9)...)
	if err := emit(recUNITS, dtReal8, units); err != nil {
		return err
	}
	if err := emit(recBGNSTR, dtInt16, ts); err != nil {
		return err
	}
	if err := emit(recSTRNAME, dtString, str(name)); err != nil {
		return err
	}
	for i, f := range l.Features {
		r := f.Rect
		// Every coordinate must be checked against both bounds: an
		// unnormalized rectangle (X0 > X1 or Y0 > Y1) can place X0 above
		// MaxInt32 or X1 below MinInt32, which a min-side-only check lets
		// silently wrap in the int32() conversions below.
		if !inInt32Range(r.X0) || !inInt32Range(r.X1) || !inInt32Range(r.Y0) || !inInt32Range(r.Y1) {
			return fmt.Errorf("gds: feature %d exceeds int32 coordinate range", i)
		}
		if err := emit(recBOUNDARY, dtNone, nil); err != nil {
			return err
		}
		if err := emit(recLAYER, dtInt16, i16(int16(f.Layer))); err != nil {
			return err
		}
		if err := emit(recDATATYPE, dtInt16, i16(0)); err != nil {
			return err
		}
		xy := i32(
			int32(r.X0), int32(r.Y0),
			int32(r.X1), int32(r.Y0),
			int32(r.X1), int32(r.Y1),
			int32(r.X0), int32(r.Y1),
			int32(r.X0), int32(r.Y0),
		)
		if err := emit(recXY, dtInt32, xy); err != nil {
			return err
		}
		if err := emit(recENDEL, dtNone, nil); err != nil {
			return err
		}
	}
	if err := emit(recENDSTR, dtNone, nil); err != nil {
		return err
	}
	if err := emit(recENDLIB, dtNone, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// Read parses a GDSII stream with default options: every root cell is
// flattened, and a hierarchy sidecar is attached when the stream contains
// placements. See ReadWith for control over top cell, depth and size limits.
func Read(r io.Reader) (*layout.Layout, error) {
	return ReadWith(r, ReadOptions{})
}

// encodeReal8 converts a float64 to the GDSII excess-64 base-16 real.
// Values outside the representable range saturate: magnitudes at or above
// 16^63 (including infinities) encode as the largest representable real of
// the same sign, magnitudes below the smallest normalized real (16^-65,
// which covers every float64 denormal) and NaN flush to zero. Negative zero
// encodes as plain zero — GDSII zero is all-bytes-zero with no sign.
func encodeReal8(v float64) []byte {
	out := make([]byte, 8)
	if v == 0 || math.IsNaN(v) {
		return out
	}
	neg := v < 0
	if neg {
		v = -v
	}
	exp := 0
	for v >= 1 && exp <= 64 {
		v /= 16
		exp++
	}
	for v < 1.0/16 && exp >= -65 {
		v *= 16
		exp--
	}
	mant := uint64(v * (1 << 56))
	if mant == 1<<56 { // rounding overflow
		mant >>= 4
		exp++
	}
	if exp > 63 { // overflow: saturate to the largest representable real
		exp, mant = 63, 1<<56-1
	}
	if exp < -64 || mant == 0 { // underflow: flush to zero
		return out
	}
	b0 := byte(exp + 64)
	if neg {
		b0 |= 0x80
	}
	out[0] = b0
	for i := 6; i >= 0; i-- {
		out[1+i] = byte(mant)
		mant >>= 8
	}
	return out
}

// inInt32Range reports whether v survives an int32() conversion unchanged.
func inInt32Range(v int64) bool {
	return v >= math.MinInt32 && v <= math.MaxInt32
}

// decodeReal8 converts a GDSII excess-64 real to float64.
func decodeReal8(b []byte) float64 {
	if len(b) != 8 {
		return math.NaN()
	}
	neg := b[0]&0x80 != 0
	exp := int(b[0]&0x7F) - 64
	var mant uint64
	for i := 1; i < 8; i++ {
		mant = mant<<8 | uint64(b[i])
	}
	if mant == 0 {
		return 0
	}
	v := float64(mant) / float64(uint64(1)<<56) * math.Pow(16, float64(exp))
	if neg {
		v = -v
	}
	return v
}

func trimPad(b []byte) []byte {
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return b
}
