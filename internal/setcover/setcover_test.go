package setcover

import (
	"math/rand"
	"testing"
)

func TestGreedySimple(t *testing.T) {
	sets := []Set{
		{Weight: 10, Members: []int{0, 1, 2}},
		{Weight: 3, Members: []int{0}},
		{Weight: 3, Members: []int{1}},
		{Weight: 3, Members: []int{2}},
	}
	r := Greedy(3, sets)
	if len(r.Uncovered) != 0 {
		t.Fatalf("uncovered = %v", r.Uncovered)
	}
	if r.Weight != 9 {
		// Greedy ratio: set 0 ratio 10/3 vs singles 3/1: singles win.
		t.Errorf("greedy weight = %d, want 9", r.Weight)
	}
}

func TestExactBeatsGreedyTrap(t *testing.T) {
	// Classic greedy trap: one big cheap-enough set vs overlapping pieces.
	sets := []Set{
		{Weight: 9, Members: []int{0, 1, 2, 3}},
		{Weight: 4, Members: []int{0, 1}},
		{Weight: 4, Members: []int{2, 3}},
		{Weight: 1, Members: []int{0, 2}},
	}
	// Greedy picks set 3 (ratio 0.5), then needs 1 and 2 (total 9);
	// exact picks set 1+2 (8) or set 0 (9) → 8.
	g := Greedy(4, sets)
	e := Exact(4, sets)
	if e.Weight > g.Weight {
		t.Fatalf("exact %d worse than greedy %d", e.Weight, g.Weight)
	}
	if e.Weight != 8 {
		t.Errorf("exact weight = %d, want 8", e.Weight)
	}
}

func TestUncoveredElements(t *testing.T) {
	sets := []Set{{Weight: 1, Members: []int{0}}}
	for _, r := range []Result{Greedy(3, sets), Exact(3, sets), Solve(3, sets)} {
		if len(r.Uncovered) != 2 || r.Uncovered[0] != 1 || r.Uncovered[1] != 2 {
			t.Errorf("uncovered = %v", r.Uncovered)
		}
		if len(r.Chosen) != 1 || r.Weight != 1 {
			t.Errorf("cover = %+v", r)
		}
	}
}

func TestEmptyInstance(t *testing.T) {
	r := Solve(0, nil)
	if len(r.Chosen) != 0 || len(r.Uncovered) != 0 || r.Weight != 0 {
		t.Errorf("empty instance: %+v", r)
	}
}

func coverWeightBrute(n int, sets []Set) int64 {
	var coverable uint64
	masks := make([]uint64, len(sets))
	for i, s := range sets {
		for _, m := range s.Members {
			masks[i] |= 1 << uint(m)
		}
		coverable |= masks[i]
	}
	best := int64(1) << 60
	for pick := 0; pick < 1<<len(sets); pick++ {
		var got uint64
		var w int64
		for i := range sets {
			if pick&(1<<i) != 0 {
				got |= masks[i]
				w += sets[i].Weight
			}
		}
		if got == coverable && w < best {
			best = w
		}
	}
	return best
}

func TestExactOptimalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(10) + 1
		ns := rng.Intn(10) + 1
		sets := make([]Set, ns)
		for i := range sets {
			sets[i].Weight = int64(rng.Intn(20) + 1)
			for m := 0; m < n; m++ {
				if rng.Intn(3) == 0 {
					sets[i].Members = append(sets[i].Members, m)
				}
			}
		}
		want := coverWeightBrute(n, sets)
		got := Exact(n, sets)
		if got.Weight != want {
			t.Fatalf("trial %d: exact %d, brute %d (%+v)", trial, got.Weight, want, sets)
		}
		// Verify chosen really covers everything coverable.
		cov := map[int]bool{}
		for _, si := range got.Chosen {
			for _, m := range sets[si].Members {
				cov[m] = true
			}
		}
		unc := map[int]bool{}
		for _, u := range got.Uncovered {
			unc[u] = true
		}
		for m := 0; m < n; m++ {
			if !cov[m] && !unc[m] {
				t.Fatalf("trial %d: element %d neither covered nor uncovered", trial, m)
			}
		}
		// Greedy must be feasible too and never better than exact.
		gr := Greedy(n, sets)
		if gr.Weight < got.Weight {
			t.Fatalf("trial %d: greedy %d beat exact %d", trial, gr.Weight, got.Weight)
		}
	}
}

func TestSolveSwitchesToGreedy(t *testing.T) {
	// Above the exact threshold the solver must still return a feasible
	// cover quickly.
	n := 100
	sets := make([]Set, 50)
	for i := range sets {
		sets[i] = Set{Weight: int64(i%7 + 1), Members: []int{2 * i % n, (2*i + 1) % n, (3 * i) % n}}
	}
	r := Solve(n, sets)
	cov := map[int]bool{}
	for _, si := range r.Chosen {
		for _, m := range sets[si].Members {
			cov[m] = true
		}
	}
	for m := 0; m < n; m++ {
		isUnc := false
		for _, u := range r.Uncovered {
			if u == m {
				isUnc = true
			}
		}
		if !cov[m] && !isUnc {
			t.Fatalf("element %d missing", m)
		}
	}
}
