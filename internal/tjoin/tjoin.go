// Package tjoin solves the minimum-weight T-join problem, the dual
// formulation of planar-graph bipartization used by the AAPSM conflict
// detection flow (paper §3.1.2).
//
// Given an undirected weighted graph G and an even terminal set T, a T-join
// is an edge set A such that a node has odd degree in A exactly when it
// belongs to T. Three solvers are provided:
//
//   - SolveGadget: the paper's reduction to minimum-weight perfect matching
//     via node gadgets. The group-size cap selects the gadget family: cap 3
//     reproduces the "optimized gadgets" of Berman et al. (TCAD'99); an
//     unbounded cap is this paper's "generalized gadget", which materializes
//     fewer nodes and is measurably faster (the Table 1 runtime columns).
//   - SolveLawler: the classical reduction via shortest-path metric closure
//     over T — the correctness reference.
//   - SolveExhaustive: brute force over edge subsets for tiny graphs (tests).
//
// All solvers require non-negative weights and return the selected edge
// indices of G.
package tjoin

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/matching"
)

// ErrNoTJoin is returned when no T-join exists (some component contains an
// odd number of terminals).
var ErrNoTJoin = errors.New("tjoin: no T-join exists (odd terminal count in a component)")

// Unbounded selects the generalized gadget with a single complete group per
// node (no divide nodes).
const Unbounded = 1 << 30

// Result is a solved T-join.
type Result struct {
	Edges  []int // indices into g.Edges(), ascending
	Weight int64
	// Gadget statistics (SolveGadget only): size of the matching instance.
	GadgetNodes int
	GadgetEdges int
}

// validate checks weights and terminal parity per component.
func validate(g *graph.Graph, T []int) error {
	for _, e := range g.Edges() {
		if e.Weight < 0 {
			return fmt.Errorf("tjoin: negative weight %d", e.Weight)
		}
	}
	inT := make([]bool, g.N())
	for _, t := range T {
		if t < 0 || t >= g.N() {
			return fmt.Errorf("tjoin: terminal %d out of range", t)
		}
		if inT[t] {
			return fmt.Errorf("tjoin: duplicate terminal %d", t)
		}
		inT[t] = true
	}
	comp, nc := g.Components()
	cnt := make([]int, nc)
	for _, t := range T {
		cnt[comp[t]]++
	}
	for _, c := range cnt {
		if c%2 != 0 {
			return ErrNoTJoin
		}
	}
	return nil
}

// CheckJoin verifies that edges form a T-join of g; it is exported for use
// by tests and the detection flow's self-checks.
func CheckJoin(g *graph.Graph, T []int, edges []int) error {
	deg := make([]int, g.N())
	seen := make(map[int]bool, len(edges))
	for _, ei := range edges {
		if ei < 0 || ei >= g.M() {
			return fmt.Errorf("tjoin: edge index %d out of range", ei)
		}
		if seen[ei] {
			return fmt.Errorf("tjoin: duplicate edge %d", ei)
		}
		seen[ei] = true
		e := g.Edge(ei)
		deg[e.U]++
		deg[e.V]++
	}
	inT := make([]bool, g.N())
	for _, t := range T {
		inT[t] = true
	}
	for v := 0; v < g.N(); v++ {
		if (deg[v]%2 == 1) != inT[v] {
			return fmt.Errorf("tjoin: node %d has join degree %d but inT=%v", v, deg[v], inT[v])
		}
	}
	return nil
}

// SolveGadget reduces the T-join problem to minimum-weight perfect matching
// using the gadget family selected by groupCap (>=1): each graph node
// becomes ports (one per incident non-loop edge, plus one parity node when
// needed) arranged into complete groups of at most groupCap nodes, chained
// by divide-node pairs. Matching a port-pair edge puts the corresponding
// graph edge into the join.
func SolveGadget(g *graph.Graph, T []int, groupCap int) (Result, error) {
	return solveGadget(context.Background(), g, T, groupCap)
}

func solveGadget(ctx context.Context, g *graph.Graph, T []int, groupCap int) (Result, error) {
	if groupCap < 1 {
		return Result{}, fmt.Errorf("tjoin: groupCap %d < 1", groupCap)
	}
	if err := validate(g, T); err != nil {
		return Result{}, err
	}
	if len(T) == 0 {
		return Result{}, nil // empty join is optimal: weights are non-negative
	}
	inT := make([]bool, g.N())
	for _, t := range T {
		inT[t] = true
	}

	nodes := 0
	newNode := func() int { nodes++; return nodes - 1 }
	var medges []matching.WeightedEdge
	addM := func(u, v int, w int64) {
		medges = append(medges, matching.WeightedEdge{U: u, V: v, Weight: w})
	}

	// Port creation: portPair[k] = (portU, portV, graph edge index).
	type portPair struct{ pu, pv, edge int }
	var pairs []portPair
	portsAt := make([][]int, g.N())
	for ei, e := range g.Edges() {
		if e.U == e.V {
			continue // self-loops never help a T-join
		}
		pu, pv := newNode(), newNode()
		pairs = append(pairs, portPair{pu, pv, ei})
		addM(pu, pv, e.Weight)
		portsAt[e.U] = append(portsAt[e.U], pu)
		portsAt[e.V] = append(portsAt[e.V], pv)
	}

	// Node gadgets.
	for v := 0; v < g.N(); v++ {
		members := portsAt[v]
		p := 0
		if inT[v] {
			p = 1
		}
		if (len(members)+p)%2 == 1 {
			members = append(members, newNode()) // parity node
		}
		if len(members) == 0 {
			continue
		}
		// Chunk into complete groups of at most groupCap.
		var groups [][]int
		for i := 0; i < len(members); i += groupCap {
			j := i + groupCap
			if j > len(members) {
				j = len(members)
			}
			groups = append(groups, members[i:j])
		}
		for _, grp := range groups {
			for i := 0; i < len(grp); i++ {
				for j := i + 1; j < len(grp); j++ {
					addM(grp[i], grp[j], 0)
				}
			}
		}
		// Divide pairs chain consecutive groups; consecutive pairs are
		// linked so a carry can pass through an exhausted group.
		prevB := -1
		for i := 0; i+1 < len(groups); i++ {
			a, b := newNode(), newNode()
			addM(a, b, 0)
			for _, x := range groups[i] {
				addM(a, x, 0)
			}
			for _, x := range groups[i+1] {
				addM(b, x, 0)
			}
			if prevB >= 0 {
				addM(prevB, a, 0)
			}
			prevB = b
		}
	}

	res := Result{GadgetNodes: nodes, GadgetEdges: len(medges)}
	if nodes == 0 {
		return res, nil
	}
	mate, _, err := matching.MinWeightPerfectMatchingCtx(ctx, nodes, medges)
	if err != nil {
		if errors.Is(err, matching.ErrNoPerfectMatching) {
			return Result{}, ErrNoTJoin
		}
		return Result{}, err
	}
	for _, pp := range pairs {
		if mate[pp.pu] == pp.pv {
			res.Edges = append(res.Edges, pp.edge)
			res.Weight += g.Edge(pp.edge).Weight
		}
	}
	sort.Ints(res.Edges)
	return res, nil
}

// SolveLawler solves the T-join via shortest paths: build the metric closure
// over T, find its minimum-weight perfect matching, and take the symmetric
// difference of the matched shortest paths.
func SolveLawler(g *graph.Graph, T []int) (Result, error) {
	return solveLawler(context.Background(), g, T)
}

func solveLawler(ctx context.Context, g *graph.Graph, T []int) (Result, error) {
	if err := validate(g, T); err != nil {
		return Result{}, err
	}
	if len(T) == 0 {
		return Result{}, nil
	}
	// Shortest paths from every terminal.
	dist := make([][]int64, len(T))
	via := make([][]int, len(T)) // predecessor edge index per node
	for i, t := range T {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		dist[i], via[i] = dijkstra(g, t)
	}
	var medges []matching.WeightedEdge
	for i := 0; i < len(T); i++ {
		for j := i + 1; j < len(T); j++ {
			d := dist[i][T[j]]
			if d < 0 {
				continue // unreachable
			}
			medges = append(medges, matching.WeightedEdge{U: i, V: j, Weight: d})
		}
	}
	mate, _, err := matching.MinWeightPerfectMatchingCtx(ctx, len(T), medges)
	if err != nil {
		if errors.Is(err, matching.ErrNoPerfectMatching) {
			return Result{}, ErrNoTJoin
		}
		return Result{}, err
	}
	// XOR the matched paths.
	inJoin := make(map[int]bool)
	for i, t := range T {
		j := mate[i]
		if j < i {
			continue
		}
		// Walk back from T[j] to t using i's predecessor edges.
		u := T[j]
		for u != t {
			ei := via[i][u]
			inJoin[ei] = !inJoin[ei]
			e := g.Edge(ei)
			if e.U == u {
				u = e.V
			} else {
				u = e.U
			}
		}
	}
	var res Result
	for ei, in := range inJoin {
		if in {
			res.Edges = append(res.Edges, ei)
			res.Weight += g.Edge(ei).Weight
		}
	}
	sort.Ints(res.Edges)
	return res, nil
}

// SolveExhaustive enumerates all edge subsets; only usable for tiny graphs
// (m <= ~20). Exported for cross-validation in tests.
func SolveExhaustive(g *graph.Graph, T []int) (Result, error) {
	if g.M() > 22 {
		return Result{}, fmt.Errorf("tjoin: %d edges too many for exhaustive solve", g.M())
	}
	if err := validate(g, T); err != nil {
		return Result{}, err
	}
	inT := make([]bool, g.N())
	for _, t := range T {
		inT[t] = true
	}
	const inf = int64(1) << 62
	best := inf
	var bestSet []int
	deg := make([]int, g.N())
	for mask := 0; mask < 1<<g.M(); mask++ {
		for i := range deg {
			deg[i] = 0
		}
		var w int64
		for ei := 0; ei < g.M(); ei++ {
			if mask&(1<<ei) != 0 {
				e := g.Edge(ei)
				deg[e.U]++
				deg[e.V]++
				w += e.Weight
			}
		}
		if w >= best {
			continue
		}
		ok := true
		for v := 0; v < g.N(); v++ {
			if (deg[v]%2 == 1) != inT[v] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		best = w
		bestSet = bestSet[:0]
		for ei := 0; ei < g.M(); ei++ {
			if mask&(1<<ei) != 0 {
				bestSet = append(bestSet, ei)
			}
		}
	}
	if best == inf {
		return Result{}, ErrNoTJoin
	}
	return Result{Edges: bestSet, Weight: best}, nil
}

// dijkstra returns (dist, predecessor edge) from src; dist -1 when
// unreachable.
func dijkstra(g *graph.Graph, src int) ([]int64, []int) {
	dist := make([]int64, g.N())
	via := make([]int, g.N())
	done := make([]bool, g.N())
	for i := range dist {
		dist[i] = -1
		via[i] = -1
	}
	pq := &heapQ{}
	dist[src] = 0
	heap.Push(pq, heapItem{0, src})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, a := range g.Adj(it.node) {
			w := g.Edge(a.Edge).Weight
			nd := it.dist + w
			if dist[a.To] < 0 || nd < dist[a.To] {
				dist[a.To] = nd
				via[a.To] = a.Edge
				heap.Push(pq, heapItem{nd, a.To})
			}
		}
	}
	return dist, via
}

type heapItem struct {
	dist int64
	node int
}

type heapQ []heapItem

func (h heapQ) Len() int            { return len(h) }
func (h heapQ) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h heapQ) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *heapQ) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *heapQ) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
