// Command aapsm runs the bright-field AAPSM flow on a layout file:
// conflict detection, phase assignment, DRC, and layout correction.
//
// Usage:
//
//	aapsm -cmd detect    -in design.txt [-graph pcg|fg] [-method gen|opt|lawler]
//	aapsm -cmd correct   -in design.txt [-out fixed.txt]
//	aapsm -cmd assign    -in design.txt
//	aapsm -cmd drc       -in design.txt
//	aapsm -cmd mask      -in design.txt -out design_mask.gds
//	aapsm -cmd svg       -in design.txt -out design.svg
//	aapsm -cmd junctions -in design.txt
//
// -cmd also accepts a comma-separated list (e.g. -cmd detect,assign,correct);
// all subcommands of one invocation share a single pipeline session, so
// detection runs exactly once no matter how many stages are requested.
// Interrupting the process (SIGINT/SIGTERM) cancels the pipeline promptly.
//
// Layout files are the plain-text interchange format unless the name ends
// in .gds.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	aapsm "repro"
)

func main() {
	var (
		cmd     = flag.String("cmd", "detect", "comma-separated subcommands: detect | correct | assign | drc | mask | svg | junctions")
		in      = flag.String("in", "", "input layout (.txt or .gds)")
		out     = flag.String("out", "", "output file for correct / mask / svg (correct default: none)")
		graph   = flag.String("graph", "pcg", "graph representation: pcg | fg")
		method  = flag.String("method", "gen", "T-join reduction: gen | opt | lawler")
		imp     = flag.Bool("improved-recheck", false, "use parity-based crossing recheck")
		verbose = flag.Bool("v", false, "verbose conflict listing")
	)
	flag.Parse()
	if *in == "" {
		fatalf("missing -in; see -help")
	}
	l, err := readLayout(*in)
	check(err)

	opts := []aapsm.EngineOption{
		aapsm.WithRules(aapsm.Default90nmRules()),
		aapsm.WithImprovedRecheck(*imp),
	}
	switch *graph {
	case "pcg":
		opts = append(opts, aapsm.WithGraph(aapsm.PCG))
	case "fg":
		opts = append(opts, aapsm.WithGraph(aapsm.FG))
	default:
		fatalf("unknown -graph %q", *graph)
	}
	switch *method {
	case "gen":
		opts = append(opts, aapsm.WithTJoinMethod(aapsm.GeneralizedGadgets))
	case "opt":
		opts = append(opts, aapsm.WithTJoinMethod(aapsm.OptimizedGadgets))
	case "lawler":
		opts = append(opts, aapsm.WithTJoinMethod(aapsm.LawlerReduction))
	default:
		fatalf("unknown -method %q", *method)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cmds := strings.Split(*cmd, ",")
	// All subcommands share the single -out flag; combining two writers in
	// one invocation would silently overwrite the earlier output.
	if *out != "" {
		writers := 0
		for _, c := range cmds {
			switch strings.TrimSpace(c) {
			case "correct", "mask", "svg":
				writers++
			}
		}
		if writers > 1 {
			fatalf("-out is shared by all subcommands; run correct/mask/svg in separate invocations")
		}
	}

	// One engine and one session per invocation: every requested subcommand
	// reuses the same memoized detection.
	eng := aapsm.NewEngine(opts...)
	s := eng.NewSession(l)
	for _, c := range cmds {
		run(ctx, eng, s, strings.TrimSpace(c), *out, *verbose)
	}
}

func run(ctx context.Context, eng *aapsm.Engine, s *aapsm.Session, cmd, out string, verbose bool) {
	l := s.Layout()
	switch cmd {
	case "drc":
		vs := s.DRC()
		fmt.Printf("%s: %d features, %d DRC violations\n", l.Name, len(l.Features), len(vs))
		for _, v := range vs {
			fmt.Println("  ", v)
		}
		if len(vs) > 0 {
			os.Exit(1)
		}

	case "detect":
		res, err := s.Detect(ctx)
		check(err)
		st := res.Detection.Stats
		fmt.Printf("%s: %d features, graph %d nodes / %d edges (%s)\n",
			l.Name, len(l.Features), st.GraphNodes, st.GraphEdges, res.Graph.Kind)
		fmt.Printf("  crossings removed: %d (of %d crossing pairs)\n",
			len(res.Detection.CrossingsRemoved), st.CrossingPairs)
		fmt.Printf("  dual: %d faces / %d edges, %d odd faces; gadget %d nodes\n",
			st.DualNodes, st.DualEdges, st.OddFaces, st.GadgetNodes)
		fmt.Printf("  conflicts: %d (bipartization %d) in %v (matching %v)\n",
			len(res.Conflicts()), len(res.Detection.BipartizationEdges), st.TotalTime, st.MatchTime)
		if res.Assignable() {
			fmt.Println("  layout is phase-assignable")
		}
		if verbose {
			for _, c := range res.Conflicts() {
				fmt.Printf("    conflict: shifters %d,%d deficit %d\n", c.Meta.S1, c.Meta.S2, c.Deficit)
			}
		}

	case "assign":
		res, err := s.Detect(ctx)
		check(err)
		a, err := s.Assignment(ctx)
		check(err)
		fmt.Printf("%s: %d shifters assigned (%d conflicts waived)\n",
			l.Name, len(a.Phases), len(a.Waived))
		if verbose {
			for i, ph := range a.Phases {
				sh := res.Graph.Set.Shifters[i]
				fmt.Printf("  shifter %d (feature %d): phase %s at %v\n", i, sh.Feature, ph, sh.Rect)
			}
		}

	case "correct":
		cor, err := s.Correction(ctx)
		check(err)
		fmt.Println(cor.Stats)
		post, err := eng.Detect(ctx, cor.Layout)
		check(err)
		if !post.Assignable() && len(cor.Plan.Unfixable) == 0 {
			fatalf("internal error: corrected layout still conflicts")
		}
		if dv := eng.NewSession(cor.Layout).DRC(); len(dv) != 0 {
			fatalf("internal error: correction introduced DRC violations: %v", dv[0])
		}
		if out != "" {
			check(writeLayout(out, cor.Layout))
			fmt.Printf("wrote %s\n", out)
		}

	case "mask":
		if out == "" {
			fatalf("mask needs -out")
		}
		m, err := s.Mask(ctx)
		check(err)
		res, err := s.Detect(ctx)
		check(err)
		check(writeLayout(out, m))
		fmt.Printf("wrote mask view %s (%d shapes; %d conflicts waived pending correction)\n",
			out, len(m.Features), len(res.Conflicts()))

	case "svg":
		if out == "" {
			fatalf("svg needs -out")
		}
		f, err := os.Create(out)
		check(err)
		err = s.RenderSVG(ctx, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		check(err)
		fmt.Printf("wrote %s\n", out)

	case "junctions":
		js := s.Junctions()
		fmt.Printf("%s: %d junctions\n", l.Name, len(js))
		counts := map[string]int{}
		for _, j := range js {
			counts[j.Kind.String()]++
			if verbose {
				fmt.Println("  ", j)
			}
		}
		for k, n := range counts {
			fmt.Printf("  %s: %d\n", k, n)
		}
		res, err := s.Detect(ctx)
		check(err)
		plain, junctioned := aapsm.SplitConflictsByJunction(res, js)
		fmt.Printf("  conflicts: %d plain (spacing-correctable class), %d junction-adjacent (widening/mask-split class)\n",
			len(plain), len(junctioned))

	default:
		fatalf("unknown -cmd %q", cmd)
	}
}

func readLayout(path string) (*aapsm.Layout, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gds") {
		return aapsm.ReadGDS(f)
	}
	return aapsm.ReadLayoutText(f)
}

func writeLayout(path string, l *aapsm.Layout) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// A failed Close can lose buffered data (e.g. on a full disk); surface it
	// instead of silently truncating the output.
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if strings.HasSuffix(path, ".gds") {
		return aapsm.WriteGDS(f, l)
	}
	return l.WriteText(f)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "aapsm: "+format+"\n", args...)
	os.Exit(2)
}
