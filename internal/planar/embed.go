package planar

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
)

// ErrNotPlanarDrawing is returned by BuildEmbedding when the drawing still
// contains crossings.
var ErrNotPlanarDrawing = errors.New("planar: drawing has crossings; Planarize first")

// Embedding is the combinatorial embedding induced by a crossing-free
// drawing: faces traced from the geometric rotation system, with face
// lengths counted in logical edges (polyline bends are transparent).
type Embedding struct {
	d *Drawing

	// Subdivided structure: vertex ids 0..nV-1; the first d.G.N() are the
	// original nodes, the rest are bend vertices.
	nV  int
	pos []geom.Point
	// Half-edges come in twin pairs 2k (tail→head) and 2k+1 (head→tail) of
	// segment k; each segment belongs to a logical edge.
	segEdge []int // segment -> logical edge index
	segA    []int // segment -> tail vertex
	segB    []int // segment -> head vertex

	FaceOf   []int // half-edge -> face id
	FaceLen  []int // face -> length in logical edges
	NumFaces int
}

// BuildEmbedding traces the faces of a crossing-free drawing. It fails when
// the drawing still has crossing edges (which would make faces meaningless).
func BuildEmbedding(d *Drawing) (*Embedding, error) {
	if pairs := d.Crossings(); len(pairs) > 0 {
		return nil, fmt.Errorf("%w (%d crossing pairs, first %v)", ErrNotPlanarDrawing, len(pairs), pairs[0])
	}
	return BuildEmbeddingUnchecked(d)
}

// BuildEmbeddingUnchecked is BuildEmbedding without the defensive geometric
// crossing re-scan. It is for callers that just planarized the drawing and
// still hold the proof (the detection flow pays the full sweep exactly once
// this way); tracing a drawing that does contain crossings yields a
// meaningless face structure.
func BuildEmbeddingUnchecked(d *Drawing) (*Embedding, error) {
	em := &Embedding{d: d}
	em.nV = d.G.N()
	// Pre-size: one segment per polyline leg, one extra vertex per bend.
	nSeg := d.G.M()
	for _, pts := range d.Bends {
		nSeg += len(pts)
	}
	em.pos = make([]geom.Point, em.nV, em.nV+nSeg-d.G.M())
	copy(em.pos, d.Pos)
	em.segEdge = make([]int, 0, nSeg)
	em.segA = make([]int, 0, nSeg)
	em.segB = make([]int, 0, nSeg)

	// Subdivide polylines: one vertex per bend, one segment per polyline leg.
	for e := 0; e < d.G.M(); e++ {
		pts := d.Polyline(e)
		prev := d.G.Edge(e).U
		for i := 1; i < len(pts); i++ {
			var head int
			if i == len(pts)-1 {
				head = d.G.Edge(e).V
			} else {
				head = em.nV
				em.nV++
				em.pos = append(em.pos, pts[i])
			}
			em.segEdge = append(em.segEdge, e)
			em.segA = append(em.segA, prev)
			em.segB = append(em.segB, head)
			prev = head
		}
	}

	// Rotation system: half-edges grouped by tail vertex, sorted by exact
	// angle around the vertex.
	nH := 2 * len(em.segEdge)
	outDeg := make([]int, em.nV)
	for s := range em.segEdge {
		outDeg[em.segA[s]]++
		outDeg[em.segB[s]]++
	}
	outBack := make([]int, 0, nH)
	out := make([][]int, em.nV) // per-vertex outgoing half-edges
	for v := range out {
		off := len(outBack)
		outBack = outBack[:off+outDeg[v]]
		out[v] = outBack[off : off : off+outDeg[v]]
	}
	for s := range em.segEdge {
		out[em.segA[s]] = append(out[em.segA[s]], 2*s)
		out[em.segB[s]] = append(out[em.segB[s]], 2*s+1)
	}
	dir := func(h int) geom.Point {
		s := h / 2
		if h%2 == 0 {
			return em.pos[em.segB[s]].Sub(em.pos[em.segA[s]])
		}
		return em.pos[em.segA[s]].Sub(em.pos[em.segB[s]])
	}
	for v := range out {
		hs := out[v]
		sort.Slice(hs, func(i, j int) bool {
			return angleLess(dir(hs[i]), dir(hs[j]), hs[i], hs[j])
		})
	}
	// rotPrev[h]: the half-edge preceding h in CCW order around its tail.
	rotPrev := make([]int, nH)
	for _, hs := range out {
		for i, h := range hs {
			rotPrev[h] = hs[(i-1+len(hs))%len(hs)]
		}
	}
	twin := func(h int) int { return h ^ 1 }

	// Face tracing: next-on-face(h) = CCW-predecessor of twin(h) at head(h).
	em.FaceOf = make([]int, nH)
	for i := range em.FaceOf {
		em.FaceOf[i] = -1
	}
	for h0 := 0; h0 < nH; h0++ {
		if em.FaceOf[h0] >= 0 {
			continue
		}
		f := em.NumFaces
		em.NumFaces++
		length := 0
		h := h0
		for {
			em.FaceOf[h] = f
			// Count one logical edge per traversal: a polyline's legs are
			// walked consecutively (bend vertices have degree 2), so count
			// only legs whose head is an original vertex.
			if em.head(h) < d.G.N() {
				length++
			}
			h = rotPrev[twin(h)]
			if h == h0 {
				break
			}
		}
		em.FaceLen = append(em.FaceLen, length)
	}
	return em, nil
}

func (em *Embedding) head(h int) int {
	s := h / 2
	if h%2 == 0 {
		return em.segB[s]
	}
	return em.segA[s]
}

// FirstHalfEdges returns, for logical edge e, the twin pair of half-edges of
// its first segment (the two sides of the edge).
func (em *Embedding) FirstHalfEdges(e int) (int, int) {
	for s, le := range em.segEdge {
		if le == e {
			return 2 * s, 2*s + 1
		}
	}
	panic(fmt.Sprintf("planar: edge %d has no segments", e))
}

// OddFaces returns the ids of faces whose logical length is odd.
func (em *Embedding) OddFaces() []int {
	var t []int
	for f, l := range em.FaceLen {
		if l%2 == 1 {
			t = append(t, f)
		}
	}
	return t
}

// Dual builds the geometric dual: one node per face, one edge per logical
// primal edge (weight copied), returning the dual graph, the mapping
// dualEdge -> primal edge index, and the terminal set T of odd faces.
// Bridges become self-loops in the dual and are kept (T-join solvers skip
// them; they can never repair face parity).
func (em *Embedding) Dual() (dg *graph.Graph, primalOf []int, T []int) {
	dg = graph.New(em.NumFaces)
	// One dual edge per logical edge: use its first segment's twin pair.
	firstSeg := make([]int, em.d.G.M())
	for i := range firstSeg {
		firstSeg[i] = -1
	}
	for s, e := range em.segEdge {
		if firstSeg[e] == -1 {
			firstSeg[e] = s
		}
	}
	for e := 0; e < em.d.G.M(); e++ {
		s := firstSeg[e]
		if s == -1 {
			continue // defensive: edge without geometry
		}
		f1, f2 := em.FaceOf[2*s], em.FaceOf[2*s+1]
		dg.AddEdge(f1, f2, em.d.G.Edge(e).Weight)
		primalOf = append(primalOf, e)
	}
	return dg, primalOf, em.OddFaces()
}

// angleLess orders direction vectors counter-clockwise starting from the
// positive x axis, exactly (no floating point). Ties (identical directions,
// possible only for degenerate drawings) break on half-edge id for
// determinism.
func angleLess(a, b geom.Point, ha, hb int) bool {
	la, lb := lowerHalf(a), lowerHalf(b)
	if la != lb {
		return !la // upper half (including +x axis) first
	}
	cr := a.Cross(b)
	if cr != 0 {
		return cr > 0
	}
	return ha < hb
}

// lowerHalf reports whether the vector points into the lower half-plane or
// along the negative x axis.
func lowerHalf(v geom.Point) bool {
	return v.Y < 0 || (v.Y == 0 && v.X < 0)
}
