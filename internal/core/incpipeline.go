package core

import (
	"fmt"
	"sort"

	"repro/internal/drc"
)

// This file extends the incremental edit-and-re-detect engine through the
// rest of the paper's pipeline. Detection already reuses per-cluster shard
// results; the downstream stages reuse along the same cluster structure:
//
//   - AssignPhases copies the previous generation's two-coloring for every
//     clean cluster (coloring decomposes exactly over conflict clusters,
//     because clusters are unions of connected components) and re-colors
//     only dirty clusters with the same BFS the from-scratch path uses.
//   - DirtyScope exposes per-feature / per-overlap dirty filters, so the
//     Session layer re-verifies assignment constraints and re-validates mask
//     consistency only inside touched clusters.
//   - CutValid answers correction cut-legality queries from span indexes
//     maintained across edits instead of a per-query feature scan, and
//     OverlapUID gives corrections a stable cache key per conflict.
//   - DRC keeps the set of violating feature pairs keyed by stable uids and
//     re-probes only the geometric neighborhood of edited features.
//
// Every path is bit-identical to its from-scratch counterpart; the
// differential harness (TestIncrementalDifferential) enforces this per stage
// after every step of its edit scripts.

// Gen returns the detection generation: 0 before the first Detect, then
// incremented by every successful Detect that followed pending edits. Stage
// caches outside core (mask validation, constraint verification) key their
// "last known clean" state to a generation and pass it to DirtyScope.
func (inc *Incremental) Gen() int { return inc.gen }

// AssignPhases returns the phase assignment of the last Detect's result,
// bit-identical to core.AssignPhases on the same Detection. Clean clusters
// take their node colors from the previous generation's coloring through the
// survivor node map; only dirty clusters are re-colored.
func (inc *Incremental) AssignPhases() (*Assignment, error) {
	snap := inc.prev
	if snap == nil {
		return nil, fmt.Errorf("core: incremental AssignPhases before Detect")
	}
	det := snap.det
	g := det.Graph.Drawing.G
	n := g.N()
	colors := make([]int8, n)
	for i := range colors {
		colors[i] = -1
	}

	// Seed clean clusters from the cached coloring of the previous
	// generation. Sound because a clean cluster's subgraph, node order, edge
	// order and final-conflict subset are all preserved by the transition, so
	// the from-scratch BFS would reproduce exactly the mapped colors.
	if inc.assignGen == snap.gen-1 && snap.newToOldNode != nil {
		for v := 0; v < n; v++ {
			if snap.dirtyCluster[snap.nodeCluster[v]] {
				continue
			}
			if ov := snap.newToOldNode[v]; ov >= 0 && ov < len(inc.prevColors) {
				colors[v] = inc.prevColors[ov]
			}
		}
	}
	seeded := make([]bool, snap.nShards)
	unseeded := make([]bool, snap.nShards)
	for v := 0; v < n; v++ {
		if colors[v] >= 0 {
			seeded[snap.nodeCluster[v]] = true
		} else {
			unseeded[snap.nodeCluster[v]] = true
		}
	}

	// Color the remaining nodes with the same traversal the from-scratch
	// path uses (TwoColorWithoutEdges is this call on an all-uncolored
	// seed), skipping the final conflict edges. BFS never crosses cluster
	// boundaries, so seeded clusters stay untouched.
	skip := make([]bool, g.M())
	for _, c := range det.FinalConflicts {
		skip[c.Edge] = true
	}
	if _, ok := g.TwoColorWithoutEdgesFrom(skip, colors); !ok {
		return nil, errNotBipartite
	}
	for c := 0; c < snap.nShards; c++ {
		switch {
		case unseeded[c]:
			inc.stats.AssignClustersSolved++
		case seeded[c]:
			inc.stats.AssignClustersReused++
		}
	}
	inc.prevColors = colors
	inc.assignGen = snap.gen
	return assignmentFromColors(det, colors), nil
}

// DirtyScope returns filters marking the features and overlaps whose
// conflict cluster was re-solved by the transition into the current
// generation. It reports ok only when that transition kept survivor maps AND
// the caller's cached state is exactly one generation old (sinceGen ==
// Gen()-1) — otherwise the dirty information does not cover the full gap and
// the caller must redo its work in full.
func (inc *Incremental) DirtyScope(sinceGen int) (featDirty, ovDirty func(int) bool, ok bool) {
	snap := inc.prev
	if snap == nil || snap.newToOldNode == nil || sinceGen != snap.gen-1 {
		return nil, nil, false
	}
	featDirty = func(fi int) bool {
		if fi < 0 || fi >= len(snap.featCluster) {
			return true
		}
		c := snap.featCluster[fi]
		return c < 0 || snap.dirtyCluster[c]
	}
	ovDirty = func(oi int) bool {
		if oi < 0 || oi >= len(snap.ovCluster) {
			return true
		}
		return snap.dirtyCluster[snap.ovCluster[oi]]
	}
	return featDirty, ovDirty, true
}

// OverlapUID returns the stable identity of overlap index oi in the current
// detection. The identity names the two flanking (feature uid, side) pairs;
// it survives edits elsewhere in the layout and dies as soon as either
// feature is touched, which makes it a sound cache key for any value derived
// only from the two features' geometry (correction intervals).
func (inc *Incremental) OverlapUID(oi int) (int32, bool) {
	if inc.prev == nil || oi < 0 || oi >= len(inc.prev.ovUID) {
		return 0, false
	}
	return inc.prev.ovUID[oi], true
}

// CutValid reports whether an end-to-end cut at pos only stretches feature
// lengths, answered from the span indexes maintained across edits. Matches
// correct.NewCutChecker on the engine's current layout exactly.
func (inc *Incremental) CutValid(vertical bool, pos int64) bool {
	if vertical {
		return !inc.cutV.Stab(pos)
	}
	return !inc.cutH.Stab(pos)
}

// AddReuse accumulates downstream-stage reuse counters measured by the
// Session layer (verification, correction intervals, mask checks) into the
// engine's cumulative stats. Only the counter fields of delta are used.
func (inc *Incremental) AddReuse(delta IncStats) {
	inc.stats.VerifyChecksReused += delta.VerifyChecksReused
	inc.stats.VerifyChecksSolved += delta.VerifyChecksSolved
	inc.stats.CorrIntervalsReused += delta.CorrIntervalsReused
	inc.stats.CorrIntervalsSolved += delta.CorrIntervalsSolved
	inc.stats.MaskChecksReused += delta.MaskChecksReused
	inc.stats.MaskChecksSolved += delta.MaskChecksSolved
}

// packUIDPair normalizes a feature-uid pair into one map key.
func packUIDPair(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// DRC runs the design-rule checks on the engine's current layout,
// bit-identical to drc.Check. Width checks are a plain scan (O(1) per
// feature); the spacing pairs — the expensive geometric part — are kept as a
// violating-pair set keyed by stable feature uids: a re-check drops pairs
// touching edited or deleted features, probes only the edited features'
// geometric neighborhoods, and carries every other cached pair over.
func (inc *Incremental) DRC() []drc.Violation {
	r := inc.rules
	var out []drc.Violation
	for i, f := range inc.lay.Features {
		if v, bad := drc.WidthViolation(i, f, r); bad {
			out = append(out, v)
		}
	}

	if !inc.drcReady {
		// First run (or recovery): seed the pair set from the same full
		// enumeration drc.Check performs.
		inc.drcPairs = make(map[uint64]bool)
		checked := drc.ForEachSpacingViolation(inc.lay, r, func(i, j int32, _ drc.Violation) {
			inc.drcPairs[packUIDPair(inc.featUID[i], inc.featUID[j])] = true
		})
		inc.stats.DRCPairsSolved += checked
	} else if len(inc.drcDirty) > 0 || len(inc.drcDel) > 0 {
		touched := func(uid int32) bool { return inc.drcDirty[uid] || inc.drcDel[uid] }
		for key := range inc.drcPairs {
			if touched(int32(key>>32)) || touched(int32(uint32(key))) {
				delete(inc.drcPairs, key)
			}
		}
		inc.stats.DRCPairsReused += len(inc.drcPairs)
		// Probe each edited feature's neighborhood; (dirty, dirty) pairs are
		// deduplicated by handling them from the lower current index.
		dirtyIdx := make([]int, 0, len(inc.drcDirty))
		for uid := range inc.drcDirty {
			if fi := inc.featOf[uid]; fi >= 0 {
				dirtyIdx = append(dirtyIdx, int(fi))
			}
		}
		sort.Ints(dirtyIdx)
		checked := 0
		for _, fi := range dirtyIdx {
			f := inc.lay.Features[fi]
			fUID := inc.featUID[fi]
			inc.grid.Query(f.Rect.Expand(r.MinFeatureSpacing+1), nil, func(gUID int32) {
				gi := inc.featOf[gUID]
				if gi < 0 || int(gi) == fi {
					return
				}
				if inc.drcDirty[gUID] && int(gi) < fi {
					return // handled from the other side
				}
				checked++
				if _, bad := drc.SpacingViolation(fi, int(gi), f.Rect, inc.lay.Features[gi].Rect, r); bad {
					inc.drcPairs[packUIDPair(fUID, gUID)] = true
				}
			})
		}
		inc.stats.DRCPairsSolved += checked
	} else {
		inc.stats.DRCPairsReused += len(inc.drcPairs)
	}

	// Emit the spacing violations in drc.Check's canonical ascending (A, B)
	// order, re-deriving each record from current indices and rectangles.
	type idxPair struct{ a, b int }
	pairs := make([]idxPair, 0, len(inc.drcPairs))
	for key := range inc.drcPairs {
		a := int(inc.featOf[int32(key>>32)])
		b := int(inc.featOf[int32(uint32(key))])
		if a > b {
			a, b = b, a
		}
		pairs = append(pairs, idxPair{a, b})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	for _, p := range pairs {
		v, bad := drc.SpacingViolation(p.a, p.b, inc.lay.Features[p.a].Rect, inc.lay.Features[p.b].Rect, r)
		if !bad {
			// A cached pair no longer violates: a reuse invariant broke.
			// Recover with a full check rather than serve a wrong result.
			inc.stats.FallbackDirty++
			inc.drcReady = false
			inc.drcDirty = make(map[int32]bool)
			inc.drcDel = make(map[int32]bool)
			return inc.DRC()
		}
		out = append(out, v)
	}
	inc.drcReady = true
	inc.drcDirty = make(map[int32]bool)
	inc.drcDel = make(map[int32]bool)
	return out
}
