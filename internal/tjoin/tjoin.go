// Package tjoin solves the minimum-weight T-join problem, the dual
// formulation of planar-graph bipartization used by the AAPSM conflict
// detection flow (paper §3.1.2).
//
// Given an undirected weighted graph G and an even terminal set T, a T-join
// is an edge set A such that a node has odd degree in A exactly when it
// belongs to T. Three solvers are provided:
//
//   - SolveGadget: the paper's reduction to minimum-weight perfect matching
//     via node gadgets. The group-size cap selects the gadget family: cap 3
//     reproduces the "optimized gadgets" of Berman et al. (TCAD'99); an
//     unbounded cap is this paper's "generalized gadget", which materializes
//     fewer nodes and is measurably faster (the Table 1 runtime columns).
//   - SolveLawler: the classical reduction via shortest-path metric closure
//     over T — the correctness reference.
//   - SolveExhaustive: brute force over edge subsets for tiny graphs (tests).
//
// All solvers require non-negative weights and return the selected edge
// indices of G.
package tjoin

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/matching"
)

// ErrNoTJoin is returned when no T-join exists (some component contains an
// odd number of terminals).
var ErrNoTJoin = errors.New("tjoin: no T-join exists (odd terminal count in a component)")

// Unbounded selects the generalized gadget with a single complete group per
// node (no divide nodes).
const Unbounded = 1 << 30

// Result is a solved T-join.
type Result struct {
	Edges  []int // indices into g.Edges(), ascending
	Weight int64
	// Gadget statistics (SolveGadget only): size of the matching instance.
	GadgetNodes int
	GadgetEdges int
}

// validate checks weights and terminal parity per component.
func validate(g *graph.Graph, T []int) error {
	for _, e := range g.Edges() {
		if e.Weight < 0 {
			return fmt.Errorf("tjoin: negative weight %d", e.Weight)
		}
	}
	inT := make([]bool, g.N())
	for _, t := range T {
		if t < 0 || t >= g.N() {
			return fmt.Errorf("tjoin: terminal %d out of range", t)
		}
		if inT[t] {
			return fmt.Errorf("tjoin: duplicate terminal %d", t)
		}
		inT[t] = true
	}
	comp, nc := g.Components()
	cnt := make([]int, nc)
	for _, t := range T {
		cnt[comp[t]]++
	}
	for _, c := range cnt {
		if c%2 != 0 {
			return ErrNoTJoin
		}
	}
	return nil
}

// CheckJoin verifies that edges form a T-join of g; it is exported for use
// by tests and the detection flow's self-checks.
func CheckJoin(g *graph.Graph, T []int, edges []int) error {
	deg := make([]int, g.N())
	seen := make(map[int]bool, len(edges))
	for _, ei := range edges {
		if ei < 0 || ei >= g.M() {
			return fmt.Errorf("tjoin: edge index %d out of range", ei)
		}
		if seen[ei] {
			return fmt.Errorf("tjoin: duplicate edge %d", ei)
		}
		seen[ei] = true
		e := g.Edge(ei)
		deg[e.U]++
		deg[e.V]++
	}
	inT := make([]bool, g.N())
	for _, t := range T {
		inT[t] = true
	}
	for v := 0; v < g.N(); v++ {
		if (deg[v]%2 == 1) != inT[v] {
			return fmt.Errorf("tjoin: node %d has join degree %d but inT=%v", v, deg[v], inT[v])
		}
	}
	return nil
}

// SolveGadget reduces the T-join problem to minimum-weight perfect matching
// using the gadget family selected by groupCap (>=1): each graph node
// becomes ports (one per incident non-loop edge, plus one parity node when
// needed) arranged into complete groups of at most groupCap nodes, chained
// by divide-node pairs. Matching a port-pair edge puts the corresponding
// graph edge into the join.
func SolveGadget(g *graph.Graph, T []int, groupCap int) (Result, error) {
	//aapsmvet:allow ctxflow compatibility wrapper for non-cancellable callers; the ctx-aware path is solveGadget via SolveContext
	return solveGadget(context.Background(), g, T, groupCap)
}

func solveGadget(ctx context.Context, g *graph.Graph, T []int, groupCap int) (Result, error) {
	if groupCap < 1 {
		return Result{}, fmt.Errorf("tjoin: groupCap %d < 1", groupCap)
	}
	if err := validate(g, T); err != nil {
		return Result{}, err
	}
	if len(T) == 0 {
		return Result{}, nil // empty join is optimal: weights are non-negative
	}
	inT := make([]bool, g.N())
	for _, t := range T {
		inT[t] = true
	}

	// Pre-size the matching instance: count non-loop incidences per node so
	// the port lists and the edge slice are allocated once instead of grown
	// through repeated appends (the gadget construction used to dominate the
	// allocation profile of small per-component solves).
	m2 := 0
	deg := make([]int, g.N())
	for _, e := range g.Edges() {
		if e.U == e.V {
			continue
		}
		m2++
		deg[e.U]++
		deg[e.V]++
	}
	cap0 := groupCap
	estEdges := m2
	for v := 0; v < g.N(); v++ {
		k := deg[v] + 1 // +1 for a potential parity node
		if k <= cap0 {
			estEdges += k * (k - 1) / 2
		} else {
			ng := (k + cap0 - 1) / cap0
			estEdges += ng*cap0*(cap0-1)/2 + (ng-1)*(2*cap0+2)
		}
	}

	nodes := 0
	newNode := func() int { nodes++; return nodes - 1 }
	medges := make([]matching.WeightedEdge, 0, estEdges)
	addM := func(u, v int, w int64) {
		medges = append(medges, matching.WeightedEdge{U: u, V: v, Weight: w})
	}

	// Port creation: portPair[k] = (portU, portV, graph edge index).
	type portPair struct{ pu, pv, edge int }
	pairs := make([]portPair, 0, m2)
	portBacking := make([]int, 0, 2*m2+g.N())
	portsAt := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		off := len(portBacking)
		portBacking = portBacking[:off+deg[v]+1]
		portsAt[v] = portBacking[off : off : off+deg[v]+1]
	}
	for ei, e := range g.Edges() {
		if e.U == e.V {
			continue // self-loops never help a T-join
		}
		pu, pv := newNode(), newNode()
		pairs = append(pairs, portPair{pu, pv, ei})
		addM(pu, pv, e.Weight)
		portsAt[e.U] = append(portsAt[e.U], pu)
		portsAt[e.V] = append(portsAt[e.V], pv)
	}

	// Node gadgets.
	for v := 0; v < g.N(); v++ {
		members := portsAt[v]
		p := 0
		if inT[v] {
			p = 1
		}
		if (len(members)+p)%2 == 1 {
			members = append(members, newNode()) // parity node
		}
		if len(members) == 0 {
			continue
		}
		// Chunk into complete groups of at most groupCap.
		var groups [][]int
		for i := 0; i < len(members); i += groupCap {
			j := i + groupCap
			if j > len(members) {
				j = len(members)
			}
			groups = append(groups, members[i:j])
		}
		for _, grp := range groups {
			for i := 0; i < len(grp); i++ {
				for j := i + 1; j < len(grp); j++ {
					addM(grp[i], grp[j], 0)
				}
			}
		}
		// Divide pairs chain consecutive groups; consecutive pairs are
		// linked so a carry can pass through an exhausted group.
		prevB := -1
		for i := 0; i+1 < len(groups); i++ {
			a, b := newNode(), newNode()
			addM(a, b, 0)
			for _, x := range groups[i] {
				addM(a, x, 0)
			}
			for _, x := range groups[i+1] {
				addM(b, x, 0)
			}
			if prevB >= 0 {
				addM(prevB, a, 0)
			}
			prevB = b
		}
	}

	res := Result{GadgetNodes: nodes, GadgetEdges: len(medges)}
	if nodes == 0 {
		return res, nil
	}
	mate, _, err := matching.MinWeightPerfectMatchingCtx(ctx, nodes, medges)
	if err != nil {
		if errors.Is(err, matching.ErrNoPerfectMatching) {
			return Result{}, ErrNoTJoin
		}
		return Result{}, err
	}
	for _, pp := range pairs {
		if mate[pp.pu] == pp.pv {
			res.Edges = append(res.Edges, pp.edge)
			res.Weight += g.Edge(pp.edge).Weight
		}
	}
	sort.Ints(res.Edges)
	return res, nil
}

// SolveLawler solves the T-join via shortest paths: build the metric closure
// over T, find its minimum-weight perfect matching, and take the symmetric
// difference of the matched shortest paths.
func SolveLawler(g *graph.Graph, T []int) (Result, error) {
	//aapsmvet:allow ctxflow compatibility wrapper for non-cancellable callers; the ctx-aware path is solveLawler via SolveContext
	return solveLawler(context.Background(), g, T)
}

func solveLawler(ctx context.Context, g *graph.Graph, T []int) (Result, error) {
	if err := validate(g, T); err != nil {
		return Result{}, err
	}
	if len(T) == 0 {
		return Result{}, nil
	}

	nT := len(T)
	s := newLawlerScratch(g, T)
	// Phase 1: terminal-to-terminal distances. Only the |T|² closure is
	// retained — predecessor arrays are re-derived per matched pair in
	// phase 3, so memory stays O(|T|² + N) instead of O(|T|·N).
	pairD := make([]int64, nT*nT)
	for i, t := range T {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		s.run(t, -1)
		for j, u := range T {
			if s.done[u] == s.epoch {
				pairD[i*nT+j] = s.dist[u]
			} else {
				pairD[i*nT+j] = -1 // unreachable
			}
		}
	}

	// Phase 2: sparsify the complete closure before matching. Every pair
	// weight is non-negative, so a pair used by some minimum-weight perfect
	// matching weighs at most any upper bound U on the optimum; pairs
	// heavier than the nearest-neighbor greedy matching's total can be
	// dropped outright. The greedy matching's own pairs each weigh at most
	// U, so the pruned closure always retains a perfect matching. On
	// clustered instances (the dual graphs of real layouts) this removes
	// the long cross-cluster tail of the |T|² closure.
	const unmatched = -1
	gmate := make([]int, nT)
	for i := range gmate {
		gmate[i] = unmatched
	}
	var upper int64
	for i := 0; i < nT; i++ {
		if gmate[i] != unmatched {
			continue
		}
		best := -1
		for j := i + 1; j < nT; j++ {
			if gmate[j] != unmatched {
				continue
			}
			if d := pairD[i*nT+j]; d >= 0 && (best < 0 || d < pairD[i*nT+best]) {
				best = j
			}
		}
		if best >= 0 { // unreachable leftovers surface as ErrNoTJoin below
			gmate[i], gmate[best] = best, i
			upper += pairD[i*nT+best]
		}
	}
	cnt := 0
	for i := 0; i < nT; i++ {
		for j := i + 1; j < nT; j++ {
			if d := pairD[i*nT+j]; d >= 0 && d <= upper {
				cnt++
			}
		}
	}
	medges := make([]matching.WeightedEdge, 0, cnt)
	for i := 0; i < nT; i++ {
		for j := i + 1; j < nT; j++ {
			if d := pairD[i*nT+j]; d >= 0 && d <= upper {
				medges = append(medges, matching.WeightedEdge{U: i, V: j, Weight: d})
			}
		}
	}
	mate, _, err := matching.MinWeightPerfectMatchingCtx(ctx, nT, medges)
	if err != nil {
		if errors.Is(err, matching.ErrNoPerfectMatching) {
			return Result{}, ErrNoTJoin
		}
		return Result{}, err
	}

	// Phase 3: XOR the matched shortest paths, re-tracing each pair with a
	// targeted run that stops as soon as the partner terminal settles.
	inJoin := make(map[int]bool)
	for i, t := range T {
		j := mate[i]
		if j < i {
			continue
		}
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		s.run(t, T[j])
		u := T[j]
		for u != t {
			ei := int(s.via[u])
			inJoin[ei] = !inJoin[ei]
			e := g.Edge(ei)
			if e.U == u {
				u = e.V
			} else {
				u = e.U
			}
		}
	}
	var res Result
	for ei, in := range inJoin {
		if in {
			res.Edges = append(res.Edges, ei)
			res.Weight += g.Edge(ei).Weight
		}
	}
	sort.Ints(res.Edges)
	return res, nil
}

// SolveExhaustive enumerates all edge subsets; only usable for tiny graphs
// (m <= ~20). Exported for cross-validation in tests.
func SolveExhaustive(g *graph.Graph, T []int) (Result, error) {
	//aapsmvet:allow ctxflow test-only cross-validation wrapper; SolveExhaustiveContext is the ctx-aware entry point
	return SolveExhaustiveContext(context.Background(), g, T)
}

// SolveExhaustiveContext is SolveExhaustive with cooperative cancellation,
// following the same Ctx-variant pattern as the other solvers: even a
// 22-edge instance spins through 2^22 subset masks, so the mask loop polls
// ctx periodically and returns ctx.Err() promptly once it is done.
func SolveExhaustiveContext(ctx context.Context, g *graph.Graph, T []int) (Result, error) {
	if g.M() > 22 {
		return Result{}, fmt.Errorf("tjoin: %d edges too many for exhaustive solve", g.M())
	}
	if err := validate(g, T); err != nil {
		return Result{}, err
	}
	inT := make([]bool, g.N())
	for _, t := range T {
		inT[t] = true
	}
	const inf = int64(1) << 62
	best := inf
	var bestSet []int
	deg := make([]int, g.N())
	for mask := 0; mask < 1<<g.M(); mask++ {
		if mask&0x1fff == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		for i := range deg {
			deg[i] = 0
		}
		var w int64
		for ei := 0; ei < g.M(); ei++ {
			if mask&(1<<ei) != 0 {
				e := g.Edge(ei)
				deg[e.U]++
				deg[e.V]++
				w += e.Weight
			}
		}
		if w >= best {
			continue
		}
		ok := true
		for v := 0; v < g.N(); v++ {
			if (deg[v]%2 == 1) != inT[v] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		best = w
		bestSet = bestSet[:0]
		for ei := 0; ei < g.M(); ei++ {
			if mask&(1<<ei) != 0 {
				bestSet = append(bestSet, ei)
			}
		}
	}
	if best == inf {
		return Result{}, ErrNoTJoin
	}
	return Result{Edges: bestSet, Weight: best}, nil
}

// lawlerScratch bundles the buffers shared by every Dijkstra run of one
// solveLawler call. Epoch stamping replaces the O(N) per-run clears, and the
// typed binary heap keeps (dist, node) in parallel slices, so the ~1.5·|T|
// runs of a solve neither re-allocate nor box each heap item through
// container/heap's interface{} API.
type lawlerScratch struct {
	g      *graph.Graph
	isTerm []bool
	nTerm  int
	epoch  int64
	stamp  []int64 // epoch when dist/via were last written
	done   []int64 // epoch when the node was settled
	dist   []int64
	via    []int32 // predecessor edge index into g.Edges(); -1 at the source
	heapD  []int64
	heapN  []int32
}

func newLawlerScratch(g *graph.Graph, T []int) *lawlerScratch {
	n := g.N()
	s := &lawlerScratch{
		g:      g,
		isTerm: make([]bool, n),
		nTerm:  len(T),
		stamp:  make([]int64, n),
		done:   make([]int64, n),
		dist:   make([]int64, n),
		via:    make([]int32, n),
		heapD:  make([]int64, 0, n),
		heapN:  make([]int32, 0, n),
	}
	for _, t := range T {
		s.isTerm[t] = true
	}
	return s
}

func (s *lawlerScratch) push(d int64, n int32) {
	s.heapD = append(s.heapD, d)
	s.heapN = append(s.heapN, n)
	i := len(s.heapD) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s.heapD[p] <= s.heapD[i] {
			break
		}
		s.heapD[p], s.heapD[i] = s.heapD[i], s.heapD[p]
		s.heapN[p], s.heapN[i] = s.heapN[i], s.heapN[p]
		i = p
	}
}

func (s *lawlerScratch) pop() int32 {
	n := s.heapN[0]
	last := len(s.heapD) - 1
	s.heapD[0], s.heapN[0] = s.heapD[last], s.heapN[last]
	s.heapD, s.heapN = s.heapD[:last], s.heapN[:last]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < last && s.heapD[l] < s.heapD[m] {
			m = l
		}
		if r < last && s.heapD[r] < s.heapD[m] {
			m = r
		}
		if m == i {
			return n
		}
		s.heapD[i], s.heapD[m] = s.heapD[m], s.heapD[i]
		s.heapN[i], s.heapN[m] = s.heapN[m], s.heapN[i]
		i = m
	}
}

// run grows shortest paths from src and terminates early: once every
// terminal is settled — or, when stop >= 0, as soon as stop itself settles —
// the remaining frontier can no longer change any settled node, and a
// settled node's predecessor chain passes through settled nodes only, so the
// distances and via edges consumed by solveLawler are final. Unreached
// terminals keep a stale stamp (treated as unreachable).
func (s *lawlerScratch) run(src, stop int) {
	s.epoch++
	ep := s.epoch
	s.heapD, s.heapN = s.heapD[:0], s.heapN[:0]
	s.stamp[src] = ep
	s.dist[src] = 0
	s.via[src] = -1
	s.push(0, int32(src))
	settled := 0
	for len(s.heapD) > 0 {
		u := int(s.pop())
		if s.done[u] == ep {
			continue
		}
		s.done[u] = ep
		if s.isTerm[u] {
			settled++
			if u == stop || (stop < 0 && settled == s.nTerm) {
				return
			}
		}
		du := s.dist[u]
		for _, a := range s.g.Adj(u) {
			nd := du + s.g.Edge(a.Edge).Weight
			x := a.To
			if s.stamp[x] != ep || nd < s.dist[x] {
				s.stamp[x] = ep
				s.dist[x] = nd
				s.via[x] = int32(a.Edge)
				s.push(nd, int32(x))
			}
		}
	}
}
