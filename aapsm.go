// Package aapsm detects and corrects phase conflicts in bright-field
// Alternating-Aperture Phase Shift Mask (AAPSM) layouts.
//
// It reproduces C. Chiang, A. B. Kahng, X. Xu and A. Zelikovsky,
// "Bright-Field AAPSM Conflict Detection and Correction", DATE 2005:
//
//   - a phase conflict graph whose bipartiteness is equivalent to the
//     layout being phase-assignable (Theorem 1);
//   - minimal conflict detection by planarizing the graph's geometric
//     drawing and optimally bipartizing the planar remainder through the
//     dual T-join problem, reduced to minimum-weight perfect matching with
//     generalized gadgets;
//   - layout correction by inserting end-to-end spaces chosen through a
//     weighted set cover over the detected conflicts.
//
// Quick start — configure an Engine once, then drive per-layout Sessions;
// each pipeline stage is computed exactly once per session and later stages
// reuse earlier results:
//
//	eng := aapsm.NewEngine()            // Default90nmRules, PCG, generalized gadgets
//	l := aapsm.NewLayout("demo")
//	l.Add(aapsm.R(0, 0, 100, 1000))     // a critical poly wire
//	l.Add(aapsm.R(350, 0, 450, 1000))   // too close: phase conflict
//
//	s := eng.NewSession(l)
//	res, err := s.Detect(ctx)           // conflict graph + detection flow
//	...
//	cor, err := s.Correction(ctx)       // reuses the detection
//	fixed := cor.Layout                 // phase-assignable, DRC-clean
//
// Engines and Sessions are safe for concurrent use; Engine.DetectBatch runs
// many layouts on a bounded worker pool. All stage methods honor context
// cancellation and return typed, errors.Is/As-friendly errors (*FlowError,
// ErrNotAssignable, ErrUnfixable, ErrMaskInconsistent).
//
// Sessions are editable: AddFeature / MoveFeature / DeleteFeature (or a
// batched Edit) mutate a session-private copy of the layout and invalidate
// the memoized stages. Re-running Detect after an edit is incremental — only
// the conflict clusters whose geometric neighborhood changed are re-solved,
// with results bit-identical to a from-scratch detection — so small edits on
// large layouts re-check an order of magnitude faster than a full Detect.
//
// The package-level one-shot functions (Detect, Correct, AssignPhases, …)
// predate the Engine/Session API and remain as thin wrappers.
package aapsm

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/correct"
	"repro/internal/drc"
	"repro/internal/gds"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/shifter"
	"repro/internal/tjoin"
)

// Re-exported core types. Aliases keep the internal packages' documentation
// and methods while giving users public names.
type (
	// Layout is a set of rectangular polysilicon features.
	Layout = layout.Layout
	// Feature is one drawn rectangle.
	Feature = layout.Feature
	// Rules are the process parameters (critical width, shifter geometry,
	// DRC minima).
	Rules = layout.Rules
	// Rect is an axis-aligned rectangle in integer nanometers.
	Rect = geom.Rect
	// Point is a plane location in integer nanometers.
	Point = geom.Point
	// Shifter is a synthesized phase-shift aperture.
	Shifter = shifter.Shifter
	// Conflict is one detected AAPSM conflict.
	Conflict = core.Conflict
	// Detection is the detailed result of the detection flow.
	Detection = core.Detection
	// ConflictGraph is the drawn layout graph (PCG or FG).
	ConflictGraph = core.ConflictGraph
	// Assignment maps shifters to phases.
	Assignment = core.Assignment
	// Violation is a broken phase-assignment condition.
	Violation = core.Violation
	// Plan is a chosen set of end-to-end spaces.
	Plan = correct.Plan
	// Cut is one end-to-end space.
	Cut = correct.Cut
	// DRCViolation is a design-rule error.
	DRCViolation = drc.Violation
	// GraphKind selects the graph representation (PCG or FG).
	GraphKind = core.GraphKind
	// IncrementalStats is the work profile of an edited session's
	// incremental detection engine (see SessionStats.Incremental).
	IncrementalStats = core.IncStats
	// Tone selects the mask polarity of a rules set (bright or dark field).
	Tone = layout.Tone
	// Hierarchy is the instance-provenance sidecar a hierarchical GDS read
	// attaches to the flattened layout (Layout.Hier).
	Hierarchy = layout.Hierarchy
	// GDSReadOptions configures ReadGDSWith (top-cell selection, flatten
	// semantics, depth and size limits).
	GDSReadOptions = gds.ReadOptions
)

// Mask polarities.
const (
	// BrightField is the paper's setup: chrome features on a clear mask.
	BrightField = layout.BrightField
	// DarkField is the inverted-tone variant: clear apertures in chrome.
	DarkField = layout.DarkField
)

// Graph representations.
const (
	// PCG is the paper's phase conflict graph (recommended).
	PCG = core.PCG
	// FG is the feature-graph baseline it improves upon.
	FG = core.FG
)

// NewLayout creates an empty layout.
func NewLayout(name string) *Layout { return layout.New(name) }

// R builds a rectangle from two corners in any order.
func R(x0, y0, x1, y1 int64) Rect { return geom.R(x0, y0, x1, y1) }

// Default90nmRules returns representative 90 nm-node process rules.
func Default90nmRules() Rules { return layout.Default90nm() }

// TJoinMethod selects the reduction used by the optimal bipartization step.
type TJoinMethod int

const (
	// GeneralizedGadgets is the paper's reduction (default, fastest).
	GeneralizedGadgets TJoinMethod = iota
	// OptimizedGadgets is the TCAD'99 baseline reduction.
	OptimizedGadgets
	// LawlerReduction solves the T-join via shortest-path metric closure.
	LawlerReduction
)

// DetectOptions configures Detect.
type DetectOptions struct {
	// Graph selects PCG (default) or the FG baseline.
	Graph GraphKind
	// Method selects the T-join reduction.
	Method TJoinMethod
	// ImprovedRecheck enables the parity-based re-admission of
	// planarization-removed edges (never selects more conflicts than the
	// paper's coloring recheck).
	ImprovedRecheck bool
}

func (o DetectOptions) coreOptions() core.Options {
	var c core.Options
	switch o.Method {
	case OptimizedGadgets:
		c.TJoin.Method = tjoin.MethodOptimizedGadget
	case LawlerReduction:
		c.TJoin.Method = tjoin.MethodLawler
	}
	if o.ImprovedRecheck {
		c.Recheck = core.RecheckParity
	}
	return c
}

// Result bundles the detection output with the graph it ran on.
type Result struct {
	Graph     *ConflictGraph
	Detection *Detection
}

// Conflicts returns the final selected AAPSM conflicts.
func (r *Result) Conflicts() []Conflict { return r.Detection.FinalConflicts }

// Assignable reports whether the layout needed no repairs.
func (r *Result) Assignable() bool { return len(r.Detection.FinalConflicts) == 0 }

// engineFor builds a throwaway Engine matching the legacy one-shot options.
func engineFor(rules Rules, opt DetectOptions) *Engine {
	return NewEngine(
		WithRules(rules),
		WithGraph(opt.Graph),
		WithTJoinMethod(opt.Method),
		WithImprovedRecheck(opt.ImprovedRecheck),
	)
}

// Detect synthesizes shifters for l, builds the conflict graph, and runs
// the full detection flow of the paper's §3.
//
// Deprecated: use NewEngine(...).NewSession(l).Detect(ctx), which memoizes
// the result for later stages and honors cancellation.
func Detect(l *Layout, rules Rules, opt DetectOptions) (*Result, error) {
	//aapsmvet:allow ctxflow deprecated one-shot wrapper has no ctx parameter; callers migrate to Session.Detect(ctx)
	return engineFor(rules, opt).Detect(context.Background(), l)
}

// DetectGreedy runs the greedy-bipartization baseline (Table 1 column GB).
func DetectGreedy(l *Layout, rules Rules, kind GraphKind) (*Result, error) {
	cg, err := core.BuildGraph(l, rules, kind)
	if err != nil {
		return nil, err
	}
	return &Result{Graph: cg, Detection: core.GreedyDetect(cg)}, nil
}

// Assignable implements Theorem 1: the layout admits a valid phase
// assignment iff its phase conflict graph is bipartite.
func Assignable(l *Layout, rules Rules) (bool, error) {
	return core.IsPhaseAssignable(l, rules)
}

// AssignPhases extracts 0°/180° shifter phases after detection; conflicts
// are waived pending correction.
//
// Deprecated: use Session.Assignment, which reuses the session's detection
// and verifies the assignment.
func AssignPhases(r *Result) (*Assignment, error) {
	return core.AssignPhases(r.Detection)
}

// VerifyAssignment checks an assignment against all (non-waived)
// constraints.
func VerifyAssignment(a *Assignment, r *Result) []Violation {
	return a.Verify(r.Graph)
}

// Correction is the output of Correct.
type Correction struct {
	Plan   *Plan
	Layout *Layout // the modified, phase-assignable layout
	Stats  correct.Stats
}

// Correct plans and applies end-to-end spaces fixing every correctable
// conflict in r (paper §3.2). The input layout is not modified.
//
// Deprecated: use Session.Correction (or Session.CorrectedLayout for a typed
// ErrUnfixable), which reuses the session's detection.
func Correct(l *Layout, rules Rules, r *Result) (*Correction, error) {
	return buildCorrection(l, rules, r)
}

// CheckDRC runs the design-rule checks.
//
// Deprecated: use Session.DRC, which memoizes the result per layout.
func CheckDRC(l *Layout, rules Rules) []DRCViolation { return drc.Check(l, rules) }

// ReadLayoutText parses the plain-text layout interchange format.
func ReadLayoutText(r io.Reader) (*Layout, error) { return layout.ReadText(r) }

// WriteLayoutText serializes a layout to the plain-text format.
func WriteLayoutText(w io.Writer, l *Layout) error { return l.WriteText(w) }

// ReadGDS parses a GDSII stream (1 nm units): flat or hierarchical
// libraries, rectangular or rectilinear-polygon boundaries. Hierarchies are
// flattened with default limits and keep their instance-provenance sidecar
// (Layout.Hier); use ReadGDSWith to pick a top cell or adjust limits.
func ReadGDS(r io.Reader) (*Layout, error) { return gds.Read(r) }

// ReadGDSWith parses a GDSII stream under explicit reader options.
func ReadGDSWith(r io.Reader, opt GDSReadOptions) (*Layout, error) { return gds.ReadWith(r, opt) }

// WriteGDS serializes a layout as a GDSII stream.
func WriteGDS(w io.Writer, l *Layout) error { return gds.Write(w, l) }
