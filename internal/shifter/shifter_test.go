package shifter

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
)

func rules() layout.Rules { return layout.Default90nm() }

func TestFlanksVertical(t *testing.T) {
	l := layout.New("v")
	l.Add(geom.R(0, 0, 100, 1000)) // vertical critical wire
	s, err := Generate(l, rules())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Shifters) != 2 {
		t.Fatalf("shifters = %d", len(s.Shifters))
	}
	lo, hi := s.Shifters[0], s.Shifters[1]
	if lo.Side != LowSide || hi.Side != HighSide {
		t.Error("side labels")
	}
	if lo.Rect != geom.R(-200, 0, 0, 1000) {
		t.Errorf("left shifter = %v", lo.Rect)
	}
	if hi.Rect != geom.R(100, 0, 300, 1000) {
		t.Errorf("right shifter = %v", hi.Rect)
	}
	if len(s.Overlaps) != 0 {
		t.Errorf("overlaps = %v", s.Overlaps)
	}
	if p, ok := s.PairOf[0]; !ok || p != [2]int{0, 1} {
		t.Errorf("PairOf = %v", s.PairOf)
	}
}

func TestFlanksHorizontal(t *testing.T) {
	l := layout.New("h")
	l.Add(geom.R(0, 0, 1000, 100))
	r := rules()
	r.ShifterGap = 20
	s, err := Generate(l, r)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := s.Shifters[0], s.Shifters[1]
	if lo.Rect != geom.R(0, -220, 1000, -20) {
		t.Errorf("below shifter = %v", lo.Rect)
	}
	if hi.Rect != geom.R(0, 120, 1000, 320) {
		t.Errorf("above shifter = %v", hi.Rect)
	}
}

func TestNonCriticalSkipped(t *testing.T) {
	l := layout.New("wide")
	l.Add(geom.R(0, 0, 400, 1000)) // 400nm wide: not critical
	l.Add(geom.R(600, 0, 700, 1000))
	s, err := Generate(l, rules())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Shifters) != 2 {
		t.Fatalf("only the narrow wire gets shifters, got %d", len(s.Shifters))
	}
	if s.Shifters[0].Feature != 1 {
		t.Error("wrong feature index")
	}
	if _, ok := s.PairOf[0]; ok {
		t.Error("non-critical feature must not appear in PairOf")
	}
}

func TestOverlapDetection(t *testing.T) {
	// Two wires at pitch 500: exactly one overlapping pair (facing
	// shifters, separation 0 → deficit = full spacing).
	l := layout.New("pair")
	l.Add(geom.R(0, 0, 100, 1000))
	l.Add(geom.R(500, 0, 600, 1000))
	s, err := Generate(l, rules())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Overlaps) != 1 {
		t.Fatalf("overlaps = %+v", s.Overlaps)
	}
	ov := s.Overlaps[0]
	if ov.A != 1 || ov.B != 2 {
		t.Errorf("pair = (%d,%d), want (1,2)", ov.A, ov.B)
	}
	if ov.Deficit != 300 {
		t.Errorf("deficit = %d, want full 300 (shifters touch)", ov.Deficit)
	}
}

func TestOverlapDeficitPartial(t *testing.T) {
	// Gap between facing shifters = 100 → deficit 200.
	l := layout.New("partial")
	l.Add(geom.R(0, 0, 100, 1000))
	l.Add(geom.R(600, 0, 700, 1000))
	s, _ := Generate(l, rules())
	if len(s.Overlaps) != 1 || s.Overlaps[0].Deficit != 200 {
		t.Fatalf("overlaps = %+v", s.Overlaps)
	}
}

func TestSameFeaturePairExcluded(t *testing.T) {
	// A very narrow feature: its two flanks are 40nm apart — but they are
	// the same feature's pair and must not be an overlap.
	l := layout.New("narrow")
	l.Add(geom.R(0, 0, 40, 1000))
	s, _ := Generate(l, rules())
	if len(s.Overlaps) != 0 {
		t.Fatalf("same-feature flanks must not overlap: %+v", s.Overlaps)
	}
}

func TestDiagonalSeparationUsesMaxGap(t *testing.T) {
	// Shifters diagonal to each other: rectilinear separation is the larger
	// axis gap; here gapX=600 keeps them legal even though gapY is small.
	l := layout.New("diag")
	l.Add(geom.R(0, 0, 100, 1000))
	l.Add(geom.R(900, 1100, 1000, 2100))
	s, _ := Generate(l, rules())
	if len(s.Overlaps) != 0 {
		t.Fatalf("diagonal wires should be clear: %+v", s.Overlaps)
	}
}

func TestCrossOrientationOverlap(t *testing.T) {
	// A vertical and a horizontal wire near each other: the vertical's
	// right shifter and the horizontal's bottom shifter interact.
	l := layout.New("cross")
	l.Add(geom.R(0, 0, 100, 1000))     // vertical
	l.Add(geom.R(350, 400, 1350, 500)) // horizontal, to the right
	s, _ := Generate(l, rules())
	if len(s.Overlaps) == 0 {
		t.Fatal("expected cross-orientation overlaps")
	}
	for _, ov := range s.Overlaps {
		a, b := s.Shifters[ov.A], s.Shifters[ov.B]
		if got := rules().MinShifterSpacing - geom.Separation(a.Rect, b.Rect); got != ov.Deficit {
			t.Errorf("deficit mismatch: %d vs %d", got, ov.Deficit)
		}
	}
}

func TestOverlapsDeterministic(t *testing.T) {
	l := layout.New("det")
	for i := int64(0); i < 8; i++ {
		l.Add(geom.R(i*350, 0, i*350+100, 1000))
	}
	a, _ := Generate(l, rules())
	b, _ := Generate(l, rules())
	if len(a.Overlaps) != len(b.Overlaps) {
		t.Fatal("nondeterministic overlap count")
	}
	for i := range a.Overlaps {
		if a.Overlaps[i] != b.Overlaps[i] {
			t.Fatalf("nondeterministic order at %d", i)
		}
	}
}

func TestBadRulesRejected(t *testing.T) {
	l := layout.New("bad")
	l.Add(geom.R(0, 0, 100, 1000))
	r := rules()
	r.MinShifterSpacing = 0
	if _, err := Generate(l, r); err == nil {
		t.Fatal("invalid rules must be rejected")
	}
}
