package aapsm

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/gds"
	"repro/internal/geom"
)

// Fuzz targets for the two layout parsers. The contract under fuzzing is:
//
//  1. no input may panic the parser (the fuzz engine enforces this);
//  2. any successfully parsed layout must survive a write/re-read round
//     trip with identical features, and the writer must be idempotent
//     (write(read(write(l))) produces the same bytes).
//
// The checked-in seed corpus under testdata/fuzz covers the valid formats,
// truncations and malformed records; `go test -fuzz` explores from there.

func textSeedLayouts() []*Layout {
	quick := NewLayout("quick")
	quick.Add(R(0, 0, 100, 1000))
	quick.AddOnLayer(R(350, 0, 450, 1000), 3)
	quick.Add(R(-50, -70, -20, 400)) // negative coords
	quick.Add(R(10, 10, 10, 60))     // degenerate width
	return []*Layout{quick, Figure1Layout(), Figure5Layout()}
}

func FuzzReadLayoutText(f *testing.F) {
	for _, l := range textSeedLayouts() {
		var buf bytes.Buffer
		if err := WriteLayoutText(&buf, l); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("layout\nrect 0 0 1 1 0\n"))
	f.Add([]byte("# comment\nlayout x y z\nrect 1 2 3 4\nrect 4 3 2 1 7\n"))
	f.Add([]byte("rect 0 0 1 1\n"))           // rect before header
	f.Add([]byte("layout a\nlayout b\n"))     // duplicate header
	f.Add([]byte("layout a\nrect 1 2 3\n"))   // short rect
	f.Add([]byte("layout a\nbogus 1\n"))      // unknown directive
	f.Add([]byte("layout a\nrect 1e3 0 1 1")) // non-integer coordinate

	f.Fuzz(func(t *testing.T, data []byte) {
		l1, err := ReadLayoutText(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs only need to not panic
		}
		var w1 bytes.Buffer
		if err := WriteLayoutText(&w1, l1); err != nil {
			t.Fatalf("write of parsed layout failed: %v", err)
		}
		l2, err := ReadLayoutText(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written layout failed: %v\n%s", err, w1.Bytes())
		}
		if len(l1.Features) != len(l2.Features) {
			t.Fatalf("round trip changed feature count %d -> %d", len(l1.Features), len(l2.Features))
		}
		for i := range l1.Features {
			if l1.Features[i] != l2.Features[i] {
				t.Fatalf("feature %d changed in round trip: %+v -> %+v", i, l1.Features[i], l2.Features[i])
			}
		}
		var w2 bytes.Buffer
		if err := WriteLayoutText(&w2, l2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("writer is not idempotent:\n%q\nvs\n%q", w1.Bytes(), w2.Bytes())
		}
	})
}

// FuzzEditPipeline is the differential fuzzer of the incremental pipeline:
// the input bytes decode into a short edit script applied to a session, and
// after every mutation the session's full pipeline — detect, assignment,
// correction, mask, DRC — must be bit-identical to a from-scratch oracle
// session of the same layout. It complements TestIncrementalDifferential
// (seeded scripts) with coverage-guided edit sequences.
func FuzzEditPipeline(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4})                                // one add
	f.Add([]byte{1, 2, 100, 100, 0, 1, 2, 100, 100, 0})         // jittered moves
	f.Add([]byte{2, 0, 0, 0, 0, 0, 9, 50, 50, 9})               // delete then add
	f.Add([]byte{1, 0, 0, 0, 0, 2, 9, 0, 0, 0, 0, 3, 7, 7, 30}) // mixed batch

	f.Fuzz(func(t *testing.T, data []byte) {
		const opBytes = 5
		if len(data) > 8*opBytes {
			data = data[:8*opBytes] // bound the work per exec
		}
		ctx := context.Background()
		eng := NewEngine(WithParallelism(1))
		oracle := NewEngine(WithParallelism(1))
		s := eng.NewSession(Figure5Layout())
		if err := s.EnableEdits(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Detect(ctx); err != nil {
			t.Fatal(err)
		}
		for step := 0; step+opBytes <= len(data); step += opBytes {
			op, idx := data[step], int(data[step+1])
			x := int64(int8(data[step+2])) * 40
			y := int64(int8(data[step+3])) * 40
			size := 60 + int64(data[step+4])*10
			n := s.NumFeatures()
			var err error
			switch {
			case op%3 == 0 || n == 0:
				_, err = s.AddFeature(R(x, y, x+100, y+size))
			case op%3 == 1:
				i := idx % n
				r := s.Layout().Features[i].Rect
				err = s.MoveFeature(i, r.Translate(Point{X: x, Y: y}))
			default:
				err = s.DeleteFeature(idx % n)
			}
			if err != nil {
				t.Fatalf("edit op %d: %v", step/opBytes, err)
			}
			if _, err := s.Detect(ctx); err != nil {
				t.Fatalf("detect after op %d: %v", step/opBytes, err)
			}
			assertSamePipeline(t, "fuzz step", ctx, s, oracle)
		}
		if fb := s.Stats().Incremental.FallbackDirty; fb != 0 {
			t.Fatalf("%d reuse-invariant fallbacks", fb)
		}
	})
}

func FuzzReadGDS(f *testing.F) {
	for _, l := range textSeedLayouts() {
		var buf bytes.Buffer
		if err := WriteGDS(&buf, l); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Truncations and header corruptions of a valid stream.
	var ref bytes.Buffer
	if err := WriteGDS(&ref, Figure1Layout()); err != nil {
		f.Fatal(err)
	}
	for _, cut := range []int{1, 4, 17, ref.Len() / 2, ref.Len() - 3} {
		if cut < ref.Len() {
			f.Add(ref.Bytes()[:cut])
		}
	}
	corrupt := append([]byte(nil), ref.Bytes()...)
	corrupt[2] = 0x42 // unknown record type up front
	f.Add(corrupt)
	f.Add([]byte{0, 4, 0x04, 0}) // lone ENDLIB (missing HEADER)
	// Hierarchical seeds: SREF/AREF placements, a rectilinear polygon, and
	// a reference cycle (the reader must reject it, not loop).
	cross := gds.Poly{Layer: 0, Pts: []geom.Point{
		{X: 400, Y: 0}, {X: 600, Y: 0}, {X: 600, Y: 400}, {X: 1000, Y: 400},
		{X: 1000, Y: 600}, {X: 600, Y: 600}, {X: 600, Y: 1000}, {X: 400, Y: 1000},
		{X: 400, Y: 600}, {X: 0, Y: 600}, {X: 0, Y: 400}, {X: 400, Y: 400},
	}}
	leaf := &gds.Cell{Name: "LEAF", Polys: []gds.Poly{
		{Layer: 0, Pts: []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 100, Y: 1000}, {X: 0, Y: 1000}}},
		cross,
	}}
	for _, lib := range []*gds.Library{
		{Name: "HIER", Cells: []*gds.Cell{
			{Name: "TOP", Refs: []gds.Ref{
				{Cell: "LEAF"},
				{Cell: "LEAF", Origin: geom.Point{X: 5000}, Rot: 90, Reflect: true},
				{Cell: "LEAF", Origin: geom.Point{Y: 5000}, Cols: 3, Rows: 2,
					ColStep: geom.Point{X: 4000}, RowStep: geom.Point{Y: 4000}},
			}},
			leaf,
		}},
		{Name: "CYCLE", Cells: []*gds.Cell{
			{Name: "A", Refs: []gds.Ref{{Cell: "B"}}},
			{Name: "B", Refs: []gds.Ref{{Cell: "A"}}},
		}},
	} {
		var buf bytes.Buffer
		if err := gds.WriteLibrary(&buf, lib); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		l1, err := ReadGDS(bytes.NewReader(data))
		if err != nil {
			return
		}
		var w1 bytes.Buffer
		if err := WriteGDS(&w1, l1); err != nil {
			// The only legitimate failure is a pathologically long library
			// name blowing the 64 KB record limit.
			if strings.Contains(err.Error(), "record too long") {
				return
			}
			t.Fatalf("write of parsed layout failed: %v", err)
		}
		l2, err := ReadGDS(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written stream failed: %v", err)
		}
		if len(l1.Features) != len(l2.Features) {
			t.Fatalf("round trip changed feature count %d -> %d", len(l1.Features), len(l2.Features))
		}
		for i := range l1.Features {
			// Group is polygon-decomposition provenance, not geometry: the
			// flat writer emits one BOUNDARY per rect, so a multi-rect
			// polygon's group id does not survive a flat round trip.
			a, b := l1.Features[i], l2.Features[i]
			a.Group, b.Group = 0, 0
			if a != b {
				t.Fatalf("feature %d changed in round trip: %+v -> %+v", i, l1.Features[i], l2.Features[i])
			}
		}
		var w2 bytes.Buffer
		if err := WriteGDS(&w2, l2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatal("GDS writer is not idempotent")
		}
	})
}
