package aapsm

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenCompare checks got against testdata/golden/<name>, rewriting the
// file when -update is set.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestGolden -update .`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s diverged from golden (%d vs %d bytes); run `go test -run TestGolden -update .` and review the diff",
			name, len(got), len(want))
	}
}

// goldenSessions builds the figure sessions exactly as examples/figures does:
// figure 1 with detection overlays, figure 2 under both graph
// representations, figure 5 with its correction cut lines.
func goldenSessions(t *testing.T, ctx context.Context) map[string]*Session {
	t.Helper()
	fig2 := Figure2Layout()
	s5 := NewEngine().NewSession(Figure5Layout())
	if _, err := s5.Correction(ctx); err != nil {
		t.Fatal(err)
	}
	return map[string]*Session{
		"figure1":      NewEngine().NewSession(Figure1Layout()),
		"figure2_pcg":  NewEngine(WithGraph(PCG)).NewSession(fig2),
		"figure2_fg":   NewEngine(WithGraph(FG)).NewSession(fig2),
		"figure5":      s5,
		"figure5_dark": NewEngine(WithProfile("dark-90nm")).NewSession(Figure5Layout()),
	}
}

// TestGoldenSVG pins the SVG renderer's output on the paper's figure
// layouts. Regenerate with -update after intentional renderer changes.
func TestGoldenSVG(t *testing.T) {
	ctx := context.Background()
	for name, s := range goldenSessions(t, ctx) {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := s.RenderSVG(ctx, &buf); err != nil {
				t.Fatal(err)
			}
			goldenCompare(t, name+".svg", buf.Bytes())
		})
	}
}

// TestGoldenMask pins the manufacturing mask view (chrome + 0°/180°
// aperture layers) of the figure layouts, serialized in the text
// interchange format.
func TestGoldenMask(t *testing.T) {
	ctx := context.Background()
	for name, s := range goldenSessions(t, ctx) {
		t.Run(name, func(t *testing.T) {
			m, err := s.Mask(ctx)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := WriteLayoutText(&buf, m); err != nil {
				t.Fatal(err)
			}
			goldenCompare(t, name+"_mask.txt", buf.Bytes())
		})
	}
}
