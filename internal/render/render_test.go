package render

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/correct"
	"repro/internal/layout"
)

// parseSVG checks the output is well-formed XML and counts element names.
func parseSVG(t *testing.T, data []byte) map[string]int {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(data))
	counts := map[string]int{}
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("svg not well-formed: %v", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			counts[se.Name.Local]++
		}
	}
	return counts
}

func TestSVGPlainLayout(t *testing.T) {
	l := bench.Figure1Layout()
	var buf bytes.Buffer
	if err := SVG(&buf, l, Options{}); err != nil {
		t.Fatal(err)
	}
	counts := parseSVG(t, buf.Bytes())
	if counts["svg"] != 1 {
		t.Fatal("missing svg root")
	}
	// 3 features + 1 background.
	if counts["rect"] != len(l.Features)+1 {
		t.Errorf("rects = %d, want %d", counts["rect"], len(l.Features)+1)
	}
}

func TestSVGFullOverlay(t *testing.T) {
	r := layout.Default90nm()
	l := bench.Figure5Layout()
	cg, err := core.BuildGraph(l, r, core.PCG)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.Detect(cg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.AssignPhases(det)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := correct.BuildPlan(l, r, cg.Set, det.FinalConflicts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = SVG(&buf, l, Options{
		Set: cg.Set, Phases: a.Phases, Graph: cg,
		Conflicts: det.FinalConflicts, Plan: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := parseSVG(t, buf.Bytes())
	wantRects := 1 + len(l.Features) + len(cg.Set.Shifters)
	if counts["rect"] != wantRects {
		t.Errorf("rects = %d, want %d", counts["rect"], wantRects)
	}
	if counts["circle"] != cg.Nodes() {
		t.Errorf("graph nodes drawn = %d, want %d", counts["circle"], cg.Nodes())
	}
	if counts["line"] == 0 {
		t.Error("no edges or cuts drawn")
	}
	out := buf.String()
	if !strings.Contains(out, "red") {
		t.Error("conflicts should be highlighted")
	}
	if !strings.Contains(out, "#ffd9b3") || !strings.Contains(out, "#cfe8ff") {
		t.Error("both phases should appear")
	}
	if !strings.Contains(out, "stroke-dasharray=\"6,3\"") {
		t.Error("cut lines should be drawn")
	}
}

func TestSVGScaleOption(t *testing.T) {
	l := bench.Figure1Layout()
	var a, b bytes.Buffer
	if err := SVG(&a, l, Options{Scale: 10}); err != nil {
		t.Fatal(err)
	}
	if err := SVG(&b, l, Options{Scale: 20}); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || b.Len() == 0 || a.String() == b.String() {
		t.Error("scale must affect output")
	}
}
