package geom

import (
	"slices"
	"sort"
)

// Grid is a uniform spatial hash over int64 space used to prune candidate
// pairs for rectangle-proximity and segment-crossing queries. Items are
// referenced by dense integer ids supplied by the caller.
//
// Inserts append to a flat (cell, id) log; the first query sorts the log
// once and then works on contiguous per-cell runs. This build-then-sweep
// shape matches every caller (insert everything, enumerate pairs) and
// avoids the per-insert map assignment and per-cell slice growth a bucket
// map pays. Inserting after a query re-sorts lazily on the next query.
//
// The zero Grid is not usable; construct with NewGrid. Cell size should be
// on the order of the query distance (rect proximity) or the median segment
// length (crossing detection); a poor choice affects only performance, never
// correctness.
type Grid struct {
	cell    int64
	entries []gridEntry
	sorted  bool
}

type gridEntry struct {
	key uint64 // packed (cx, cy)
	id  int32
}

func packCell(cx, cy int32) uint64 {
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

// NewGrid creates a grid with the given cell edge length in nm.
// cell must be positive.
func NewGrid(cell int64) *Grid {
	if cell <= 0 {
		panic("geom: grid cell size must be positive")
	}
	return &Grid{cell: cell}
}

func (g *Grid) cellRange(r Rect) (cx0, cy0, cx1, cy1 int32) {
	return int32(floorDiv(r.X0, g.cell)), int32(floorDiv(r.Y0, g.cell)),
		int32(floorDiv(r.X1, g.cell)), int32(floorDiv(r.Y1, g.cell))
}

// Insert registers id with bounding box r in every cell it overlaps.
func (g *Grid) Insert(id int32, r Rect) {
	cx0, cy0, cx1, cy1 := g.cellRange(r)
	for cx := cx0; cx <= cx1; cx++ {
		for cy := cy0; cy <= cy1; cy++ {
			g.entries = append(g.entries, gridEntry{packCell(cx, cy), id})
		}
	}
	g.sorted = false
}

// build sorts the entry log by cell so each cell's ids form one contiguous
// run (ties by id for determinism).
func (g *Grid) build() {
	if g.sorted {
		return
	}
	slices.SortFunc(g.entries, func(a, b gridEntry) int {
		if a.key != b.key {
			if a.key < b.key {
				return -1
			}
			return 1
		}
		return int(a.id) - int(b.id)
	})
	g.sorted = true
}

// cellRun returns the [lo, hi) entry range of the cell, via binary search.
func (g *Grid) cellRun(key uint64) (int, int) {
	lo := sort.Search(len(g.entries), func(i int) bool { return g.entries[i].key >= key })
	hi := lo
	for hi < len(g.entries) && g.entries[hi].key == key {
		hi++
	}
	return lo, hi
}

// Query calls fn once per distinct id whose inserted bounds overlap a cell
// touched by r. The same id is never reported twice per call; candidates are
// a superset of true hits and must be filtered by the caller. seen is scratch
// storage reused across calls when non-nil: it must have capacity for all
// ids and be all-false on entry (Query resets it before returning).
func (g *Grid) Query(r Rect, seen []bool, fn func(id int32)) {
	g.build()
	cx0, cy0, cx1, cy1 := g.cellRange(r)
	var touched []int32
	for cx := cx0; cx <= cx1; cx++ {
		for cy := cy0; cy <= cy1; cy++ {
			lo, hi := g.cellRun(packCell(cx, cy))
			for _, e := range g.entries[lo:hi] {
				if seen != nil {
					if seen[e.id] {
						continue
					}
					seen[e.id] = true
					touched = append(touched, e.id)
				}
				fn(e.id)
			}
		}
	}
	for _, id := range touched {
		seen[id] = false
	}
}

// ForEachPair calls fn for every unordered candidate pair (i < j) that share
// at least one grid cell. Pairs are deduplicated (collected, sorted and
// uniqued, so memory is proportional to the candidate count).
func (g *Grid) ForEachPair(fn func(i, j int32)) {
	g.build()
	nPairs := 0
	for lo := 0; lo < len(g.entries); {
		hi := lo + 1
		for hi < len(g.entries) && g.entries[hi].key == g.entries[lo].key {
			hi++
		}
		n := hi - lo
		nPairs += n * (n - 1) / 2
		lo = hi
	}
	pairs := make([]uint64, 0, nPairs)
	for lo := 0; lo < len(g.entries); {
		hi := lo + 1
		key := g.entries[lo].key
		for hi < len(g.entries) && g.entries[hi].key == key {
			hi++
		}
		run := g.entries[lo:hi]
		for a := 0; a < len(run); a++ {
			for b := a + 1; b < len(run); b++ {
				i, j := run[a].id, run[b].id
				if i == j {
					continue
				}
				if i > j {
					i, j = j, i
				}
				pairs = append(pairs, uint64(i)<<32|uint64(uint32(j)))
			}
		}
		lo = hi
	}
	slices.Sort(pairs)
	var prev uint64
	for k, p := range pairs {
		if k > 0 && p == prev {
			continue
		}
		prev = p
		fn(int32(p>>32), int32(uint32(p)))
	}
}

// floorDiv divides rounding toward negative infinity, so the grid is
// well-defined for negative coordinates.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}
