package persist

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ErrInjected is the base of every fault a FaultStore or FaultBlobStore
// injects, so tests and operators can tell injected failures from real ones:
// errors.Is(err, ErrInjected). Specific fault classes wrap their realistic
// cause too (errors.Is(err, syscall.ENOSPC) holds for injected disk-full).
var ErrInjected = errors.New("persist: injected fault")

// FaultConfig programs the fault schedule of a FaultStore/FaultBlobStore.
// Each operation rolls one value from a seeded deterministic stream, so a
// given seed always yields the same fault decision sequence (per wrapper,
// in operation order). The zero value injects nothing.
type FaultConfig struct {
	// Seed seeds the decision stream. Two wrappers built with the same seed
	// and config make identical decisions for identical operation sequences.
	Seed int64

	// WriteFail is the probability a Put/PutBlob fails outright (generic
	// I/O error) without touching the underlying store.
	WriteFail float64
	// WriteENOSPC is the probability a Put/PutBlob fails with ENOSPC
	// (errors.Is(err, syscall.ENOSPC)), simulating a full disk.
	WriteENOSPC float64
	// WriteTorn is the probability a Put persists only a truncated prefix of
	// the data to the underlying store and then fails — simulating a crash
	// mid-write on a filesystem without atomic rename. The torn bytes are
	// really stored, so readers exercise their checksum/validation paths.
	WriteTorn float64
	// ReadFail is the probability a Get/GetBlob fails outright.
	ReadFail float64
	// ReadCorrupt is the probability a Get/GetBlob returns data with one
	// byte flipped (bit rot; codec checksums must catch it).
	ReadCorrupt float64
	// Latency is fixed extra latency injected into every store operation.
	Latency time.Duration
}

func (c FaultConfig) check() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"write-fail", c.WriteFail}, {"enospc", c.WriteENOSPC}, {"torn", c.WriteTorn},
		{"read-fail", c.ReadFail}, {"read-corrupt", c.ReadCorrupt},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("persist: fault probability %s=%v outside [0,1]", p.name, p.v)
		}
	}
	if s := c.WriteFail + c.WriteENOSPC + c.WriteTorn; s > 1 {
		return fmt.Errorf("persist: write fault probabilities sum to %v > 1", s)
	}
	if s := c.ReadFail + c.ReadCorrupt; s > 1 {
		return fmt.Errorf("persist: read fault probabilities sum to %v > 1", s)
	}
	if c.Latency < 0 {
		return errors.New("persist: negative fault latency")
	}
	return nil
}

// ParseFaultConfig parses the comma-separated key=value syntax of the
// aapsmd -chaos flag, e.g.
//
//	seed=42,write-fail=0.1,enospc=0.02,torn=0.02,read-fail=0,read-corrupt=0.05,latency=2ms
//
// Keys this package does not own (e.g. panic=0.01, wired to the solver fault
// hook by the daemon) are returned in extra for the caller to interpret;
// only malformed values and out-of-range probabilities are errors here.
func ParseFaultConfig(spec string) (cfg FaultConfig, extra map[string]string, err error) {
	extra = make(map[string]string)
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, nil, fmt.Errorf("persist: fault spec %q: want key=value", kv)
		}
		var perr error
		switch k {
		case "seed":
			cfg.Seed, perr = strconv.ParseInt(v, 10, 64)
		case "write-fail":
			cfg.WriteFail, perr = strconv.ParseFloat(v, 64)
		case "enospc":
			cfg.WriteENOSPC, perr = strconv.ParseFloat(v, 64)
		case "torn":
			cfg.WriteTorn, perr = strconv.ParseFloat(v, 64)
		case "read-fail":
			cfg.ReadFail, perr = strconv.ParseFloat(v, 64)
		case "read-corrupt":
			cfg.ReadCorrupt, perr = strconv.ParseFloat(v, 64)
		case "latency":
			cfg.Latency, perr = time.ParseDuration(v)
		default:
			extra[k] = v
		}
		if perr != nil {
			return cfg, nil, fmt.Errorf("persist: fault spec %s=%q: %w", k, v, perr)
		}
	}
	if err := cfg.check(); err != nil {
		return cfg, nil, err
	}
	return cfg, extra, nil
}

// FaultStats counts what a fault wrapper has done so far.
type FaultStats struct {
	Puts, Gets                            int64
	WriteFails, ENOSPCs, TornWrites       int64
	ReadFails, ReadCorrupts, ForcedFaults int64
}

// fault decision classes.
const (
	faultNone = iota
	faultWriteFail
	faultENOSPC
	faultTorn
	faultReadFail
	faultReadCorrupt
)

// faultCore is the shared decision engine of FaultStore and FaultBlobStore:
// a seeded rng consumed one roll per operation under a mutex, plus an
// explicit override queue for scripted tests (fail/tear the next N writes).
type faultCore struct {
	mu        sync.Mutex
	cfg       FaultConfig
	rng       *rand.Rand
	forceN    int
	forceErr  error
	forceTorn int
	stats     FaultStats
}

func newFaultCore(cfg FaultConfig) *faultCore {
	return &faultCore{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// decideWrite consumes one decision for a write op. frac parameterizes the
// torn-write cut point in (0,1).
func (f *faultCore) decideWrite() (kind int, frac float64, forced error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Puts++
	if f.forceTorn > 0 {
		f.forceTorn--
		f.stats.ForcedFaults++
		f.stats.TornWrites++
		return faultTorn, f.rng.Float64(), nil
	}
	if f.forceN > 0 {
		f.forceN--
		f.stats.ForcedFaults++
		f.stats.WriteFails++
		return faultWriteFail, 0, f.forceErr
	}
	r := f.rng.Float64()
	switch {
	case r < f.cfg.WriteTorn:
		f.stats.TornWrites++
		return faultTorn, f.rng.Float64(), nil
	case r < f.cfg.WriteTorn+f.cfg.WriteENOSPC:
		f.stats.ENOSPCs++
		return faultENOSPC, 0, nil
	case r < f.cfg.WriteTorn+f.cfg.WriteENOSPC+f.cfg.WriteFail:
		f.stats.WriteFails++
		return faultWriteFail, 0, nil
	}
	return faultNone, 0, nil
}

// decideRead consumes one decision for a read op. frac parameterizes the
// corrupted byte position in [0,1).
func (f *faultCore) decideRead() (kind int, frac float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Gets++
	r := f.rng.Float64()
	switch {
	case r < f.cfg.ReadFail:
		f.stats.ReadFails++
		return faultReadFail, 0
	case r < f.cfg.ReadFail+f.cfg.ReadCorrupt:
		f.stats.ReadCorrupts++
		return faultReadCorrupt, f.rng.Float64()
	}
	return faultNone, 0
}

func (f *faultCore) sleep() {
	if d := f.latency(); d > 0 {
		time.Sleep(d)
	}
}

func (f *faultCore) latency() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cfg.Latency
}

func (f *faultCore) failNext(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.forceN, f.forceErr = n, err
}

func (f *faultCore) tearNext(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.forceTorn = n
}

func (f *faultCore) setConfig(cfg FaultConfig) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg = cfg
}

func (f *faultCore) snapshot() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// corrupt returns a copy of data with one byte flipped at a position chosen
// by frac. Empty data is returned unchanged.
func corrupt(data []byte, frac float64) []byte {
	if len(data) == 0 {
		return data
	}
	out := append([]byte(nil), data...)
	i := int(frac * float64(len(out)))
	if i >= len(out) {
		i = len(out) - 1
	}
	out[i] ^= 0xff
	return out
}

// tearAt returns the torn-write prefix length for data under frac: at least
// 1 byte and strictly less than the full length (when possible), so the torn
// artifact is a genuinely truncated record.
func tearAt(n int, frac float64) int {
	if n <= 1 {
		return n
	}
	cut := 1 + int(frac*float64(n-1))
	if cut >= n {
		cut = n - 1
	}
	return cut
}

// FaultStore wraps a Store with seeded, deterministic fault injection: write
// failures, ENOSPC, torn partial writes, read failures, read corruption, and
// latency, on the schedule programmed by its FaultConfig. It is the test and
// -chaos harness for every persistence failure path.
type FaultStore struct {
	inner Store
	core  *faultCore
}

// NewFaultStore wraps inner with the fault schedule cfg. cfg is validated
// with a panic on programmer error (tests construct these literally).
func NewFaultStore(inner Store, cfg FaultConfig) *FaultStore {
	if err := cfg.check(); err != nil {
		panic(err)
	}
	return &FaultStore{inner: inner, core: newFaultCore(cfg)}
}

// FailNextPuts scripts the next n Put calls to fail with err (a generic
// injected error when err is nil), ahead of any probabilistic schedule.
func (f *FaultStore) FailNextPuts(n int, err error) { f.core.failNext(n, err) }

// TearNextPuts scripts the next n Put calls to persist a truncated prefix
// and then fail — the deterministic kill-during-write primitive.
func (f *FaultStore) TearNextPuts(n int) { f.core.tearNext(n) }

// SetConfig replaces the probabilistic schedule (e.g. to clear faults for a
// recovery phase).
func (f *FaultStore) SetConfig(cfg FaultConfig) {
	if err := cfg.check(); err != nil {
		panic(err)
	}
	f.core.setConfig(cfg)
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultStore) Stats() FaultStats { return f.core.snapshot() }

func (f *FaultStore) Put(ref Ref, data []byte) error {
	f.core.sleep()
	kind, frac, forced := f.core.decideWrite()
	switch kind {
	case faultWriteFail:
		if forced != nil {
			return fmt.Errorf("%w: %w", ErrInjected, forced)
		}
		return fmt.Errorf("%w: write of %s failed", ErrInjected, ref.ID)
	case faultENOSPC:
		return fmt.Errorf("%w: write of %s: %w", ErrInjected, ref.ID, syscall.ENOSPC)
	case faultTorn:
		cut := tearAt(len(data), frac)
		f.inner.Put(ref, data[:cut]) // the torn artifact really lands
		return fmt.Errorf("%w: torn write of %s (%d of %d bytes persisted)", ErrInjected, ref.ID, cut, len(data))
	}
	return f.inner.Put(ref, data)
}

func (f *FaultStore) Get(ref Ref) ([]byte, error) {
	f.core.sleep()
	data, err := f.inner.Get(ref)
	if err != nil {
		return nil, err
	}
	switch kind, frac := f.core.decideRead(); kind {
	case faultReadFail:
		return nil, fmt.Errorf("%w: read of %s failed", ErrInjected, ref.ID)
	case faultReadCorrupt:
		return corrupt(data, frac), nil
	}
	return data, nil
}

func (f *FaultStore) List() ([]Ref, error) {
	f.core.sleep()
	return f.inner.List()
}

func (f *FaultStore) Delete(ref Ref) error {
	f.core.sleep()
	return f.inner.Delete(ref)
}

func (f *FaultStore) Close() error { return f.inner.Close() }

// FaultBlobStore wraps a BlobStore with the same fault model as FaultStore.
// A torn blob write stores the truncated prefix under its own content hash
// (crash debris that never matches the intended address) and fails.
type FaultBlobStore struct {
	inner BlobStore
	core  *faultCore
}

// NewFaultBlobStore wraps inner with the fault schedule cfg.
func NewFaultBlobStore(inner BlobStore, cfg FaultConfig) *FaultBlobStore {
	if err := cfg.check(); err != nil {
		panic(err)
	}
	return &FaultBlobStore{inner: inner, core: newFaultCore(cfg)}
}

// FailNextPuts scripts the next n PutBlob calls to fail with err.
func (f *FaultBlobStore) FailNextPuts(n int, err error) { f.core.failNext(n, err) }

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultBlobStore) Stats() FaultStats { return f.core.snapshot() }

func (f *FaultBlobStore) PutBlob(data []byte) (string, error) {
	f.core.sleep()
	kind, frac, forced := f.core.decideWrite()
	switch kind {
	case faultWriteFail:
		if forced != nil {
			return "", fmt.Errorf("%w: %w", ErrInjected, forced)
		}
		return "", fmt.Errorf("%w: blob write failed", ErrInjected)
	case faultENOSPC:
		return "", fmt.Errorf("%w: blob write: %w", ErrInjected, syscall.ENOSPC)
	case faultTorn:
		cut := tearAt(len(data), frac)
		f.inner.PutBlob(data[:cut])
		return "", fmt.Errorf("%w: torn blob write (%d of %d bytes persisted)", ErrInjected, cut, len(data))
	}
	return f.inner.PutBlob(data)
}

func (f *FaultBlobStore) GetBlob(hash string) ([]byte, error) {
	f.core.sleep()
	data, err := f.inner.GetBlob(hash)
	if err != nil {
		return nil, err
	}
	switch kind, frac := f.core.decideRead(); kind {
	case faultReadFail:
		return nil, fmt.Errorf("%w: blob read of %s failed", ErrInjected, hash)
	case faultReadCorrupt:
		return corrupt(data, frac), nil
	}
	return data, nil
}

func (f *FaultBlobStore) Close() error { return f.inner.Close() }
