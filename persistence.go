package aapsm

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/correct"
	"repro/internal/persist"
)

// ErrSnapshotMismatch reports a snapshot taken under a different engine
// configuration (rules, graph kind or detection options) than the engine
// asked to restore it. The incremental caches embed configuration-dependent
// decisions, so restoring across configurations would silently change
// results; re-create the session from the layout instead.
var ErrSnapshotMismatch = errors.New("aapsm: snapshot was taken under a different engine configuration")

// Snapshot serializes the session — layout, incremental detection caches,
// stage memo map and work counters — into the versioned persist format.
// The snapshot restores bit-identically via Engine.RestoreSession on an
// engine with the same configuration.
//
// A session with uncommitted edits (mutated since its last Detect) is still
// snapshottable, but the parts of the incremental cache that describe
// pre-edit geometry cannot survive serialization; the restored session then
// runs its next detection from scratch. Snapshot after Detect to keep the
// caches warm.
func (s *Session) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.engine.err; err != nil {
		return nil, flowErr(StagePersist, s.layout.Name, err)
	}
	inc := s.inc
	if inc == nil {
		// Session never armed for edits: build a throwaway incremental
		// engine just to export the layout in snapshot form. NewIncremental
		// copies the layout, so the session is not mutated.
		var err error
		inc, err = core.NewIncremental(s.layout, s.engine.rules, s.engine.opts.Graph, s.engine.opts.coreOptions())
		if err != nil {
			return nil, flowErr(StagePersist, s.layout.Name, fmt.Errorf("snapshot: %w", err))
		}
	}
	st := &persist.SessionState{
		Rules:          s.engine.rules,
		Kind:           s.engine.opts.Graph,
		Opt:            s.engine.opts.coreOptions(),
		Profile:        s.engine.profile,
		DetectRuns:     s.detectRuns,
		Edits:          s.edits,
		VerifyCleanGen: s.verifyCleanGen,
		MaskCleanGen:   s.maskCleanGen,
		Inc:            inc.ExportState(),
	}
	st.Opt.Workers = 0 // parallelism never affects results
	if s.detect.done {
		st.Memo |= persist.MemoDetect
	}
	if s.assignment.done {
		st.Memo |= persist.MemoAssign
	}
	if s.correction.done {
		st.Memo |= persist.MemoCorrect
	}
	if s.maskView.done {
		st.Memo |= persist.MemoMask
	}
	if s.drcResult.done {
		st.Memo |= persist.MemoDRC
	}
	if s.junctions.done {
		st.Memo |= persist.MemoJunctions
	}
	if len(s.ivCache) > 0 {
		st.IvKeys = make([]int32, 0, len(s.ivCache))
		for k := range s.ivCache {
			st.IvKeys = append(st.IvKeys, k)
		}
		sort.Slice(st.IvKeys, func(i, j int) bool { return st.IvKeys[i] < st.IvKeys[j] })
		st.IvVals = make([]correct.Intervals, len(st.IvKeys))
		for i, k := range st.IvKeys {
			st.IvVals[i] = s.ivCache[k]
		}
	}
	return persist.Encode(st), nil
}

// RestoreSession rebuilds a session from a Snapshot. The engine must have
// the same configuration the snapshot was taken under (ErrSnapshotMismatch
// otherwise). The restored session serves every pipeline stage bit-identical
// to the one that was snapshotted, including memoized stage errors, and its
// incremental caches are as warm as they were at snapshot time.
//
// ctx bounds the stage re-runs that rebuild memoized results; a cancelled
// restore returns the context error and no session.
func (e *Engine) RestoreSession(ctx context.Context, data []byte) (*Session, error) {
	return e.RestoreSessionWithParallelism(ctx, data, 0)
}

// RestoreSessionWithParallelism is RestoreSession with the per-session
// detection worker bound of NewSessionWithParallelism (n <= 0 keeps the
// engine default).
func (e *Engine) RestoreSessionWithParallelism(ctx context.Context, data []byte, n int) (*Session, error) {
	if e.err != nil {
		return nil, flowErr(StagePersist, "", e.err)
	}
	st, err := persist.Decode(data)
	if err != nil {
		return nil, flowErr(StagePersist, "", err)
	}
	if st.Inc == nil {
		return nil, flowErr(StagePersist, "", fmt.Errorf("%w: snapshot carries no engine state", persist.ErrCorrupt))
	}
	if len(st.IvKeys) != len(st.IvVals) {
		return nil, flowErr(StagePersist, "", fmt.Errorf("%w: interval cache keys/values mismatch", persist.ErrCorrupt))
	}
	opt := e.opts.coreOptions()
	opt.Workers = 0
	if st.Rules != e.rules || st.Kind != e.opts.Graph || st.Opt != opt || st.Profile != e.profile {
		return nil, flowErr(StagePersist, "", fmt.Errorf("%w (snapshot: rules=%+v kind=%d opt=%+v profile=%q; engine: rules=%+v kind=%d opt=%+v profile=%q)",
			ErrSnapshotMismatch, st.Rules, st.Kind, st.Opt, st.Profile, e.rules, e.opts.Graph, opt, e.profile))
	}
	inc, err := core.RestoreIncremental(st.Inc, e.rules, e.opts.Graph, e.opts.coreOptions())
	if err != nil {
		return nil, err
	}
	s := &Session{
		engine:         e,
		layout:         inc.Layout(),
		inc:            inc,
		verifyCleanGen: st.VerifyCleanGen,
		maskCleanGen:   st.MaskCleanGen,
		ivCache:        ivCacheFrom(st),
	}
	if n > 0 {
		s.detectWorkers = n
	}
	// Rebuild the memoized stage outcomes by re-running exactly the stages
	// that were memoized, in pipeline order. Each re-run is deterministic
	// given the restored incremental state — detection returns the cached
	// generation, assignment re-colors to the same phases, correction hits
	// the interval cache, verification and mask validation take the same
	// clean-generation branch — so values AND memoized errors come back
	// bit-identical. Only context errors abort the restore.
	if err := s.rerunMemo(ctx, st.Memo); err != nil {
		return nil, err
	}
	// The re-runs bumped work counters and reuse stats that the original
	// session had already accounted for; reset them to the snapshot values.
	s.mu.Lock()
	s.detectRuns = st.DetectRuns
	s.edits = st.Edits
	s.verifyCleanGen = st.VerifyCleanGen
	s.maskCleanGen = st.MaskCleanGen
	s.ivCache = ivCacheFrom(st)
	inc.RestoreStats(st.Inc.Stats)
	s.mu.Unlock()
	return s, nil
}

// SnapshotProfile reports the rules-profile name a snapshot was taken under
// ("" for custom rules), without restoring it. Services holding per-profile
// engines use it to route a rehydration to the right engine before paying
// for the restore.
func SnapshotProfile(data []byte) (string, error) {
	st, err := persist.Decode(data)
	if err != nil {
		return "", flowErr(StagePersist, "", err)
	}
	return st.Profile, nil
}

func ivCacheFrom(st *persist.SessionState) map[int32]correct.Intervals {
	if len(st.IvKeys) == 0 {
		return nil
	}
	m := make(map[int32]correct.Intervals, len(st.IvKeys))
	for i, k := range st.IvKeys {
		m[k] = st.IvVals[i]
	}
	return m
}

// rerunMemo replays the memoized pipeline stages recorded in memo. Pipeline
// errors are expected (they re-memoize the error the original session held);
// context errors abort.
func (s *Session) rerunMemo(ctx context.Context, memo uint8) error {
	steps := []struct {
		bit uint8
		run func() error
	}{
		{persist.MemoDetect, func() error { _, err := s.Detect(ctx); return err }},
		{persist.MemoAssign, func() error { _, err := s.Assignment(ctx); return err }},
		{persist.MemoCorrect, func() error { _, err := s.Correction(ctx); return err }},
		{persist.MemoMask, func() error { _, err := s.Mask(ctx); return err }},
		{persist.MemoDRC, func() error { s.DRC(); return nil }},
		{persist.MemoJunctions, func() error { s.Junctions(); return nil }},
	}
	for _, step := range steps {
		if memo&step.bit == 0 {
			continue
		}
		if err := step.run(); err != nil && isContextErr(err) {
			return err
		}
	}
	return nil
}
