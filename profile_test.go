package aapsm

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestProfileRegistry(t *testing.T) {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
		if p.Description == "" {
			t.Errorf("profile %q has no description", p.Name)
		}
		got, err := ProfileByName(p.Name)
		if err != nil {
			t.Fatalf("ProfileByName(%q): %v", p.Name, err)
		}
		if got.Rules != p.Rules {
			t.Errorf("ProfileByName(%q) returned different rules", p.Name)
		}
	}
	want := []string{"bright-90nm", "dark-90nm"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("registry is %v, want %v", names, want)
	}
	if ProfileByNameMustRules(t, "bright-90nm").Tone != BrightField {
		t.Error("bright-90nm is not bright-field")
	}
	if ProfileByNameMustRules(t, "dark-90nm").Tone != DarkField {
		t.Error("dark-90nm is not dark-field")
	}
	if Dark90nmRules() != ProfileByNameMustRules(t, "dark-90nm") {
		t.Error("Dark90nmRules diverges from the dark-90nm profile")
	}
	// Profiles() hands out a copy; mutating it must not corrupt the registry.
	ps[0].Name = "mutated"
	if _, err := ProfileByName("bright-90nm"); err != nil {
		t.Error("mutating the Profiles() copy changed the registry")
	}
}

func ProfileByNameMustRules(t *testing.T, name string) Rules {
	t.Helper()
	p, err := ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p.Rules
}

func TestProfileByNameUnknown(t *testing.T) {
	_, err := ProfileByName("tri-tone-65nm")
	if !errors.Is(err, ErrUnknownProfile) {
		t.Fatalf("got %v, want ErrUnknownProfile", err)
	}
	var fe *FlowError
	if !errors.As(err, &fe) || fe.Stage != StageConfig {
		t.Fatalf("want a StageConfig FlowError, got %v", err)
	}
	if !strings.Contains(err.Error(), "tri-tone-65nm") {
		t.Fatalf("error does not name the offending profile: %v", err)
	}
}

// TestWithProfileUnknownIsSticky pins the deferred-error contract: an engine
// built with an unknown profile is constructed (no panic), reports the error
// from Err(), and every stage of every session fails with it.
func TestWithProfileUnknownIsSticky(t *testing.T) {
	ctx := context.Background()
	eng := NewEngine(WithProfile("nope"))
	if err := eng.Err(); !errors.Is(err, ErrUnknownProfile) {
		t.Fatalf("Engine.Err: got %v, want ErrUnknownProfile", err)
	}
	s := eng.NewSession(Figure1Layout())
	if _, err := s.Detect(ctx); !errors.Is(err, ErrUnknownProfile) {
		t.Fatalf("Detect: got %v, want ErrUnknownProfile", err)
	}
	if _, err := s.Mask(ctx); !errors.Is(err, ErrUnknownProfile) {
		t.Fatalf("Mask: got %v, want ErrUnknownProfile", err)
	}
	if _, err := s.Snapshot(); !errors.Is(err, ErrUnknownProfile) {
		t.Fatalf("Snapshot: got %v, want ErrUnknownProfile", err)
	}
}

func TestWithRulesResetsProfile(t *testing.T) {
	eng := NewEngine(WithProfile("dark-90nm"))
	if eng.Profile() != "dark-90nm" {
		t.Fatalf("Profile() = %q", eng.Profile())
	}
	custom := Default90nmRules()
	custom.ShifterWidth++
	eng2 := NewEngine(WithProfile("dark-90nm"), WithRules(custom))
	if eng2.Profile() != "" {
		t.Fatalf("WithRules after WithProfile kept profile %q", eng2.Profile())
	}
}

// TestDarkFieldMaskTone pins the dark-field mask semantics: layer-0 features
// land on the opening layer (clear apertures in chrome) instead of the
// chrome layer. Figure 5 masks cleanly under both tones; Figure 1 does not
// under dark-field rules (the wider apertures force a waived feature
// conflict), which TestDarkFieldFigure1Inconsistent pins separately.
func TestDarkFieldMaskTone(t *testing.T) {
	ctx := context.Background()
	bright, err := NewEngine(WithProfile("bright-90nm")).NewSession(Figure5Layout()).Mask(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dark, err := NewEngine(WithProfile("dark-90nm")).NewSession(Figure5Layout()).Mask(ctx)
	if err != nil {
		t.Fatal(err)
	}
	count := func(l *Layout, layer int) int {
		n := 0
		for _, f := range l.Features {
			if f.Layer == layer {
				n++
			}
		}
		return n
	}
	if n := count(bright, MaskLayerOpening); n != 0 {
		t.Fatalf("bright-field mask has %d opening-layer features", n)
	}
	if n := count(dark, MaskLayerOpening); n == 0 {
		t.Fatal("dark-field mask has no opening-layer features")
	}
	if n := count(dark, MaskLayerChrome); n != 0 {
		t.Fatalf("dark-field mask still has %d chrome-layer features", n)
	}
}

// TestDarkFieldFigure1Inconsistent pins that the dark-field variant is a
// genuinely different scenario: the wider apertures (220 + 20 gap vs 200)
// put Figure 1's dense pairs in conflict beyond what shifter-edge cuts can
// repair, so detection waives a feature edge and the mask view correctly
// refuses to validate.
func TestDarkFieldFigure1Inconsistent(t *testing.T) {
	ctx := context.Background()
	s := NewEngine(WithProfile("dark-90nm")).NewSession(Figure1Layout())
	a, err := s.Assignment(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.WaivedFeatures) == 0 {
		t.Fatal("expected dark-field Figure 1 to waive a feature conflict")
	}
	if _, err := s.Mask(ctx); !errors.Is(err, ErrMaskInconsistent) {
		t.Fatalf("Mask: got %v, want ErrMaskInconsistent", err)
	}
}

// TestProfileSnapshotRoundTrip pins that the profile identity is part of the
// snapshot fingerprint: a dark-90nm session restores on a dark-90nm engine,
// is rejected by a bright-field engine, and SnapshotProfile peeks the name
// without a full restore.
func TestProfileSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	dark := NewEngine(WithProfile("dark-90nm"))
	s := dark.NewSession(Figure5Layout())
	if _, err := s.Detect(ctx); err != nil {
		t.Fatal(err)
	}
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	name, err := SnapshotProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	if name != "dark-90nm" {
		t.Fatalf("SnapshotProfile = %q, want dark-90nm", name)
	}
	r, err := dark.RestoreSession(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Engine().Profile() != "dark-90nm" {
		t.Fatalf("restored session engine profile %q", r.Engine().Profile())
	}
	if _, err := NewEngine(WithProfile("bright-90nm")).RestoreSession(ctx, data); err == nil {
		t.Fatal("bright-field engine accepted a dark-field snapshot")
	}
	// Same rules but no profile name is a different fingerprint too: the
	// snapshot pins the registry identity, not just the numbers.
	if _, err := NewEngine(WithRules(Dark90nmRules())).RestoreSession(ctx, data); err == nil {
		t.Fatal("profile-less engine accepted a profile-tagged snapshot")
	}
}
