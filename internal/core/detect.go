package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/planar"
	"repro/internal/tjoin"
)

// Conflict is one detected AAPSM conflict: a constraint edge whose removal
// was selected, resolved back to the pair of shifters that must be pulled
// apart (OverlapEdge) or the feature whose phase shifting must be abandoned
// (FeatureEdge — only chosen when a layout is unfixable by spacing alone).
type Conflict struct {
	Edge    int // edge index in the conflict graph
	Meta    EdgeMeta
	Deficit int64 // extra spacing needed to legalize the pair (OverlapEdge)
}

// Detection is the output of the full flow on one graph representation.
type Detection struct {
	Graph *ConflictGraph
	// CrossingsRemoved (the paper's potential set P): edges deleted so that
	// the drawing becomes an embedded planar graph (flow step 1b). Ordered
	// by conflict cluster, then by removal order within the cluster — a
	// deterministic order independent of the worker count.
	CrossingsRemoved []int
	// BipartizationEdges: the minimal deletion set found by the optimal
	// bipartization of the planarized graph (flow step 2), ascending. Its
	// size is Table 1's "NP" count when run on the PCG.
	BipartizationEdges []int
	// FinalConflicts: bipartization edges plus those members of P that
	// still violate the two-coloring (flow step 3), ascending by edge. Its
	// size is Table 1's PCG/FG count.
	FinalConflicts []Conflict
	// Stats for the benchmark tables.
	Stats Stats
}

// Stats collects the size and runtime figures reported in Table 1, plus the
// per-stage breakdown recorded by cmd/benchtab -json. Detection runs
// sharded by conflict cluster: the per-stage durations (PlanarTime,
// EmbedTime, MatchTime, RecheckTime) are summed across shards — CPU time,
// not wall clock, when Options.Workers > 1.
type Stats struct {
	GraphNodes    int
	GraphEdges    int
	CrossingPairs int
	DualNodes     int
	DualEdges     int
	OddFaces      int
	GadgetNodes   int
	GadgetEdges   int
	// Shards is the number of conflict clusters detected independently
	// (clusters with at least one edge).
	Shards int
	// ReusedShards counts clusters whose cached result was reused instead of
	// re-solved (always 0 for a from-scratch Detect; see Incremental).
	ReusedShards int
	// HierReusedShards / HierSolvedShards tally the instance-aware fast
	// path: instance-pure clusters whose result was spliced from an
	// identical representative vs. representatives actually solved.
	// HierFallbackShards counts clusters that cross instance boundaries and
	// therefore solve flat. All zero for layouts without hierarchy.
	HierReusedShards   int
	HierSolvedShards   int
	HierFallbackShards int
	// LargestShardEdges is the edge count of the largest cluster — the
	// wall-clock bound of the parallel flow.
	LargestShardEdges int
	CrossTime         time.Duration // global geometric crossing sweep
	PlanarTime        time.Duration // greedy crossing removal
	EmbedTime         time.Duration // face tracing + dual construction
	MatchTime         time.Duration // dual T-join via matching
	RecheckTime       time.Duration // flow step 3
	TotalTime         time.Duration
}

// RecheckMode selects how flow step 3 decides which planarization-removed
// edges are real conflicts.
type RecheckMode int8

const (
	// RecheckColoring is the paper's method: two-color the bipartized
	// planar graph once, then flag every removed edge whose endpoints got
	// the same color. Simple but pessimistic — the fixed coloring cannot be
	// adjusted per edge.
	RecheckColoring RecheckMode = iota
	// RecheckParity is this implementation's improvement: seed a parity
	// union-find with the kept edges and re-admit removed edges from
	// heaviest to lightest, flagging only those that genuinely close an odd
	// cycle. Never worse than RecheckColoring (ablation bench
	// BenchmarkRecheckModes).
	RecheckParity
)

// Options configures the detection flow.
type Options struct {
	// Method/GroupCap select the T-join reduction (see tjoin.Options).
	TJoin tjoin.Options
	// Recheck selects the flow step 3 strategy.
	Recheck RecheckMode
	// Workers bounds the worker pool that detects conflict clusters in
	// parallel (<= 1 means sequential). The result is bit-identical for
	// any worker count: shards are deterministic and merged in shard order.
	Workers int
}

// Detect runs the complete flow of §3 on a prebuilt conflict graph:
//
//  1. planarize the drawing, collecting removed crossing edges P;
//  2. optimally bipartize the embedded planar remainder via the dual
//     T-join, solved by gadget reduction to minimum-weight perfect matching;
//  3. re-check P against a two-coloring and add violators to the final
//     conflict set.
//
// The flow is sharded by conflict cluster — the connected components of the
// union of graph connectivity and the drawing's edge-crossing relation.
// Standard-cell layouts decompose into many small clusters; since both
// planarization and the matching solve are superlinear, k clusters of size
// n/k beat one monolithic solve of size n even sequentially, and clusters
// are independent so Options.Workers of them run concurrently.
func Detect(cg *ConflictGraph, opt Options) (*Detection, error) {
	//aapsmvet:allow ctxflow compatibility wrapper for non-cancellable callers; DetectContext is the ctx-aware entry point
	return DetectContext(context.Background(), cg, opt)
}

// DetectContext is Detect with cooperative cancellation: ctx is polled
// between flow steps and threaded into every shard's T-join matching hot
// loop, so a cancelled detection returns ctx.Err() promptly instead of
// finishing a potentially large matching instance.
func DetectContext(ctx context.Context, cg *ConflictGraph, opt Options) (*Detection, error) {
	start := time.Now() //aapsmvet:allow determinism stage-timing telemetry only; durations land in Stats, never in results
	det := &Detection{Graph: cg}
	det.Stats.GraphNodes = cg.Nodes()
	det.Stats.GraphEdges = cg.Edges()

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Step 1a: one global geometric sweep finds all crossing pairs; the
	// greedy removal itself happens per shard on this precomputed list.
	tCross := time.Now() //aapsmvet:allow determinism stage-timing telemetry only; durations land in Stats, never in results
	crossPairs := cg.Drawing.Crossings()
	det.Stats.CrossTime = time.Since(tCross)
	det.Stats.CrossingPairs = len(crossPairs)

	g := cg.Drawing.G
	labels, nShards := conflictClusters(g, crossPairs)
	shards := cg.Drawing.InducedComponents(labels, nShards)

	// Distribute the crossing pairs into shard-local edge index space. A
	// crossing pair is always intra-cluster: clusters are closed under the
	// crossing relation by construction.
	localEdge := make([]int32, g.M())
	for _, sh := range shards {
		for newE, oldE := range sh.EdgeOf {
			localEdge[oldE] = int32(newE)
		}
	}
	pairsByShard := make([][][2]int, nShards)
	for _, p := range crossPairs {
		c := labels[g.Edge(p[0]).U]
		pairsByShard[c] = append(pairsByShard[c], [2]int{int(localEdge[p[0]]), int(localEdge[p[1]])})
	}

	for _, sh := range shards {
		if m := sh.D.G.M(); m > 0 {
			det.Stats.Shards++
			if m > det.Stats.LargestShardEdges {
				det.Stats.LargestShardEdges = m
			}
		}
	}

	// Run the per-shard flow on a bounded worker pool. Shard results are
	// deterministic and merged in shard order, so any worker count produces
	// the same Detection.
	jobs := make([]shardJob, nShards)
	for i, sh := range shards {
		if sh.D.G.M() > 0 {
			jobs[i] = shardJob{d: sh.D, pairs: pairsByShard[i]}
		}
	}

	// Instance-aware fast path: solve each distinct instance-pure cluster
	// shape once and splice the result into every other placement.
	var fresh []bool
	plan := hierDedupPlan(cg, labels, nShards, jobs)
	if plan != nil {
		plan.blankDuplicates(jobs)
		fresh = make([]bool, nShards)
		for i := range fresh {
			fresh[i] = true
		}
	}
	results := make([]*shardResult, nShards)
	if err := runShards(ctx, jobs, results, opt.Workers, opt); err != nil {
		return nil, err
	}
	if plan != nil {
		plan.spliceResults(results, fresh)
		det.Stats.HierReusedShards = plan.reused
		det.Stats.HierSolvedShards = plan.solved
		det.Stats.HierFallbackShards = plan.fallback
	}

	// Merge shard results back through the edge index maps.
	edgeOf := make([][]int, nShards)
	for i := range shards {
		edgeOf[i] = shards[i].EdgeOf
	}
	if err := mergeShards(det, cg, edgeOf, results, fresh); err != nil {
		return nil, err
	}
	det.Stats.TotalTime = time.Since(start)
	return det, nil
}

// shardJob couples one cluster's standalone drawing with its crossing pairs
// in shard-local edge indices. A zero job (nil drawing) is skipped.
type shardJob struct {
	d     *planar.Drawing
	pairs [][2]int
}

// ErrPanic marks a panic recovered inside a shard solver. A poisoned cluster
// fails its own detection — and the session memoizes the failure, so the
// session is quarantined — instead of crashing the process. Identify the
// case with errors.Is(err, ErrPanic).
var ErrPanic = errors.New("panic in shard solver")

// PanicError carries the recovered value and stack of a shard-solver panic.
// It unwraps to ErrPanic.
type PanicError struct {
	Cluster int
	Value   any
	Stack   string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: cluster %d: panic: %v", e.Cluster, e.Value)
}

func (e *PanicError) Unwrap() error { return ErrPanic }

// FaultHook, when non-nil, runs at the start of every shard solve. It exists
// for fault injection — tests and the aapsmd -chaos mode install hooks that
// panic to simulate a poisoned cluster — and must be safe for concurrent
// use. Production leaves it nil (one atomic load per shard).
var FaultHook atomic.Pointer[func()]

// detectShardSafe runs one shard solve with panic isolation: a panic inside
// the solver (or the fault hook) is recovered into a *PanicError rather than
// tearing down the worker pool's process.
func detectShardSafe(ctx context.Context, cluster int, d *planar.Drawing, pairs [][2]int, opt Options) (res *shardResult, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Cluster: cluster, Value: v, Stack: string(debug.Stack())}
		}
	}()
	if f := FaultHook.Load(); f != nil {
		(*f)()
	}
	return detectShard(ctx, d, pairs, opt)
}

// shardErr tags a shard failure with its cluster index; a *PanicError
// already carries it.
func shardErr(cluster int, err error) error {
	var pe *PanicError
	if errors.As(err, &pe) {
		return err
	}
	return fmt.Errorf("core: cluster %d: %w", cluster, err)
}

// runShards solves the non-nil jobs on a bounded worker pool of at most
// workers goroutines, writing results[i] for job i. Results are
// deterministic per job, so any worker count produces the same outcome.
func runShards(ctx context.Context, jobs []shardJob, results []*shardResult, workers int, opt Options) error {
	n := 0
	for _, j := range jobs {
		if j.d != nil {
			n++
		}
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, j := range jobs {
			if j.d == nil {
				continue
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			r, err := detectShardSafe(ctx, i, j.d, j.pairs, opt)
			if err != nil {
				return shardErr(i, err)
			}
			results[i] = r
		}
		return nil
	}
	pctx, cancel := context.WithCancel(ctx)
	queue := make(chan int)
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				if err := pctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				r, err := detectShardSafe(pctx, i, jobs[i].d, jobs[i].pairs, opt)
				if err != nil {
					errs[i] = shardErr(i, err)
					cancel() // stop the remaining shards promptly
					continue
				}
				results[i] = r
			}
		}()
	}
	for i, j := range jobs {
		if j.d != nil {
			queue <- i
		}
	}
	close(queue)
	wg.Wait()
	cancel()
	// Prefer a causal (non-context) error over the context errors it
	// provoked in sibling shards; among the causal errors recorded, return
	// the lowest shard index. (Which shards get to record a causal error
	// before the cancellation lands is scheduling-dependent.)
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil || (isCtxErr(first) && !isCtxErr(err)) {
			first = err
		}
	}
	if first != nil {
		return first
	}
	return ctx.Err()
}

// mergeShards folds per-cluster results into det through the edge index
// maps, in cluster order: edgeOf[i] maps cluster i's local edge indices to
// global ones. Size counters are summed over every result; stage durations
// are summed only over clusters marked in fresh (nil means all), so a
// caller reusing cached results reports only the work this run performed.
// It finishes with the bipartiteness self-check on the merged conflict set.
func mergeShards(det *Detection, cg *ConflictGraph, edgeOf [][]int, results []*shardResult, fresh []bool) error {
	finalSet := make(map[int]bool)
	for i, r := range results {
		if r == nil {
			continue
		}
		eo := edgeOf[i]
		for _, le := range r.removed {
			det.CrossingsRemoved = append(det.CrossingsRemoved, eo[le])
		}
		for _, le := range r.bipart {
			det.BipartizationEdges = append(det.BipartizationEdges, eo[le])
		}
		for _, le := range r.final {
			finalSet[eo[le]] = true
		}
		det.Stats.DualNodes += r.dualNodes
		det.Stats.DualEdges += r.dualEdges
		det.Stats.OddFaces += r.oddFaces
		det.Stats.GadgetNodes += r.gadgetNodes
		det.Stats.GadgetEdges += r.gadgetEdges
		if fresh == nil || fresh[i] {
			det.Stats.PlanarTime += r.planarTime
			det.Stats.EmbedTime += r.embedTime
			det.Stats.MatchTime += r.matchTime
			det.Stats.RecheckTime += r.recheckTime
		}
	}
	sort.Ints(det.BipartizationEdges)

	finals := make([]int, 0, len(finalSet))
	for e := range finalSet {
		finals = append(finals, e)
	}
	sort.Ints(finals)
	for _, ei := range finals {
		det.FinalConflicts = append(det.FinalConflicts, conflictFor(cg, ei))
	}

	// Self-check: removing the final conflicts must leave a bipartite graph.
	if _, ok := cg.Drawing.G.VerifyBipartition(finalSet); !ok {
		return fmt.Errorf("core: final conflict set does not bipartize the graph")
	}
	return nil
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// conflictClusters partitions the graph's nodes into detection shards: the
// connected components of the union of graph adjacency and the drawing's
// crossing relation (two crossing edges are forced into one cluster). Every
// flow step — greedy crossing removal, dual T-join bipartization, and the
// step-3 recheck — only couples edges within one cluster, so clusters are
// detected independently and merged exactly.
//
// Isolated nodes (no incident edges) contribute nothing to detection, so
// they are all lumped into one trailing edge-less part instead of each
// materializing a shard drawing of their own; edge-bearing clusters keep
// their first-appearance node order.
func conflictClusters(g *graph.Graph, crossPairs [][2]int) ([]int, int) {
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, e := range g.Edges() {
		union(e.U, e.V)
	}
	for _, p := range crossPairs {
		union(g.Edge(p[0]).U, g.Edge(p[1]).U)
	}
	hasEdge := make([]bool, g.N())
	for _, e := range g.Edges() {
		hasEdge[find(e.U)] = true
	}
	labels := make([]int, g.N())
	labelOf := make([]int, g.N())
	for i := range labelOf {
		labelOf[i] = -1
	}
	count := 0
	isolated := false
	for v := 0; v < g.N(); v++ {
		r := find(v)
		if !hasEdge[r] {
			labels[v] = -1 // resolved to the shared trailing part below
			isolated = true
			continue
		}
		if labelOf[r] < 0 {
			labelOf[r] = count
			count++
		}
		labels[v] = labelOf[r]
	}
	if isolated {
		for v := range labels {
			if labels[v] < 0 {
				labels[v] = count
			}
		}
		count++
	}
	return labels, count
}

// shardResult is one cluster's detection outcome in shard-local edge
// indices.
type shardResult struct {
	removed []int // planarization-removed edges, removal order
	bipart  []int // optimal bipartization edges, ascending
	final   []int // final conflict edges (bipart + flagged removed), ascending

	dualNodes, dualEdges, oddFaces int
	gadgetNodes, gadgetEdges       int
	planarTime, embedTime          time.Duration
	matchTime, recheckTime         time.Duration
}

// lexScaleLimit bounds the weights for which the T-join input is rescaled to
// w*(m+1)+1. The rescaling makes the minimum-weight solution also minimal in
// edge count among minimum-weight solutions — pinning the conflict *count*
// to a unique value no matter how the solver breaks ties between equal
// weight optima. Rescaling is skipped (losing only that tie normalization,
// never correctness) when it could overflow downstream matching arithmetic.
const lexScaleLimit = int64(1) << 41

// detectShard runs flow steps 1b..3 on one conflict cluster.
func detectShard(ctx context.Context, d *planar.Drawing, pairs [][2]int, opt Options) (*shardResult, error) {
	r := &shardResult{}

	// Step 1b: greedy crossing removal on the precomputed pair list.
	t0 := time.Now() //aapsmvet:allow determinism stage-timing telemetry only; durations land in Stats, never in results
	r.removed = d.PlanarizeGiven(pairs)
	r.planarTime = time.Since(t0)
	m := d.G.M()
	removedSet := make([]bool, m)
	for _, e := range r.removed {
		removedSet[e] = true
	}
	planarDrawing, oldIdx := d.WithoutEdgeSet(removedSet)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Step 2: optimal bipartization of the embedded planar remainder =
	// minimum T-join on its geometric dual with T = odd faces. The drawing
	// was planarized two lines up, so the defensive crossing re-scan of
	// BuildEmbedding is skipped.
	t1 := time.Now() //aapsmvet:allow determinism stage-timing telemetry only; durations land in Stats, never in results
	em, err := planar.BuildEmbeddingUnchecked(planarDrawing)
	if err != nil {
		return nil, fmt.Errorf("embedding after planarization: %w", err)
	}
	dual, primalOf, T := em.Dual()
	r.embedTime = time.Since(t1)
	r.dualNodes = dual.N()
	r.dualEdges = dual.M()
	r.oddFaces = len(T)

	// Lexicographic (weight, count) rescaling; see lexScaleLimit.
	scaleK := int64(dual.M()) + 1
	scaled := true
	edges := dual.Edges()
	for _, e := range edges {
		if e.Weight > lexScaleLimit/scaleK {
			scaled = false
			break
		}
	}
	if scaled {
		for i := range edges {
			edges[i].Weight = edges[i].Weight*scaleK + 1
		}
	}

	t2 := time.Now() //aapsmvet:allow determinism stage-timing telemetry only; durations land in Stats, never in results
	join, err := tjoin.SolveContext(ctx, dual, T, opt.TJoin)
	if err != nil {
		return nil, fmt.Errorf("dual T-join: %w", err)
	}
	r.matchTime = time.Since(t2)
	r.gadgetNodes = join.GadgetNodes
	r.gadgetEdges = join.GadgetEdges

	bipartSet := make([]bool, m)
	for _, de := range join.Edges {
		orig := oldIdx[primalOf[de]]
		r.bipart = append(r.bipart, orig)
		bipartSet[orig] = true
	}
	sort.Ints(r.bipart)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Step 3: the edges removed for planarity (P) may themselves close odd
	// cycles against the bipartized remainder.
	t3 := time.Now() //aapsmvet:allow determinism stage-timing telemetry only; durations land in Stats, never in results
	r.final, err = recheck(d.G, r.removed, removedSet, bipartSet, opt.Recheck)
	if err != nil {
		return nil, err
	}
	r.recheckTime = time.Since(t3)
	return r, nil
}

// recheck implements flow step 3 on one cluster's graph: decide which
// planarization-removed edges are real conflicts on top of the
// bipartization set, returning the final conflict edges ascending.
// removedSet and bipartSet are indexed by edge.
func recheck(g *graph.Graph, removed []int, removedSet, bipartSet []bool, mode RecheckMode) ([]int, error) {
	flagged := make([]bool, g.M())
	switch mode {
	case RecheckParity:
		// Improvement over the paper: re-admit P members from heaviest to
		// lightest into a parity union-find seeded with the kept edges;
		// only edges that genuinely close an odd cycle become conflicts.
		uf := graph.NewParityUF(g.N())
		for ei, e := range g.Edges() {
			if removedSet[ei] || bipartSet[ei] {
				continue
			}
			if e.U == e.V || !uf.UnionDiffer(e.U, e.V) {
				return nil, fmt.Errorf("core: bipartization left an odd cycle at edge %d", ei)
			}
		}
		orderedP := append([]int(nil), removed...)
		sort.Slice(orderedP, func(a, b int) bool {
			wa, wb := g.Edge(orderedP[a]).Weight, g.Edge(orderedP[b]).Weight
			if wa != wb {
				return wa > wb
			}
			return orderedP[a] < orderedP[b]
		})
		for _, ei := range orderedP {
			e := g.Edge(ei)
			if e.U == e.V || !uf.UnionDiffer(e.U, e.V) {
				flagged[ei] = true
			}
		}
	default: // RecheckColoring — the paper's flow step 3
		drop := make([]bool, g.M())
		for ei := range drop {
			drop[ei] = removedSet[ei] || bipartSet[ei]
		}
		colors, ok := g.TwoColorWithoutEdges(drop)
		if !ok {
			return nil, fmt.Errorf("core: bipartization left an odd cycle")
		}
		for _, ei := range removed {
			e := g.Edge(ei)
			if e.U == e.V || colors[e.U] == colors[e.V] {
				flagged[ei] = true
			}
		}
	}
	final := make([]int, 0, len(removed))
	for ei := 0; ei < g.M(); ei++ {
		if bipartSet[ei] || flagged[ei] {
			final = append(final, ei)
		}
	}
	return final, nil
}

func conflictFor(cg *ConflictGraph, edge int) Conflict {
	m := cg.Meta[edge]
	c := Conflict{Edge: edge, Meta: m}
	if m.Kind == OverlapEdge {
		c.Deficit = cg.Set.Overlaps[m.Overlap].Deficit
	}
	return c
}

// ConflictEdgeSet returns the final conflict edges as a set, for graph
// operations.
func (d *Detection) ConflictEdgeSet() map[int]bool {
	s := make(map[int]bool, len(d.FinalConflicts))
	for _, c := range d.FinalConflicts {
		s[c.Edge] = true
	}
	return s
}

// GreedyDetect runs the Table 1 "GB" baseline on the same graph: greedy
// bipartization by descending edge weight with a parity union-find.
func GreedyDetect(cg *ConflictGraph) *Detection {
	det := &Detection{Graph: cg}
	det.Stats.GraphNodes = cg.Nodes()
	det.Stats.GraphEdges = cg.Edges()
	start := time.Now() //aapsmvet:allow determinism stage-timing telemetry only; durations land in Stats, never in results
	for _, ei := range graph.GreedyBipartization(cg.Drawing.G) {
		det.FinalConflicts = append(det.FinalConflicts, conflictFor(cg, ei))
	}
	det.Stats.TotalTime = time.Since(start)
	return det
}
