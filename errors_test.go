package aapsm

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestFlowStageString: every stage has a stable name; unknown values print
// diagnosably.
func TestFlowStageString(t *testing.T) {
	cases := []struct {
		stage FlowStage
		want  string
	}{
		{StageDetect, "detect"},
		{StageAssign, "assign"},
		{StageCorrect, "correct"},
		{StageMask, "mask"},
		{StageRender, "render"},
		{StageEdit, "edit"},
		{StagePersist, "persist"},
		{FlowStage(99), "stage(99)"},
	}
	for _, c := range cases {
		if got := c.stage.String(); got != c.want {
			t.Errorf("FlowStage(%d).String() = %q, want %q", c.stage, got, c.want)
		}
	}
}

// TestFlowErrorWrapping: FlowError formats with and without a layout name,
// unwraps to its cause, and flowErr never double-wraps a stage-tagged error.
func TestFlowErrorWrapping(t *testing.T) {
	cause := errors.New("boom")
	cases := []struct {
		name string
		err  *FlowError
		want string
	}{
		{"with layout", &FlowError{Stage: StageMask, Layout: "d1", Err: cause}, `aapsm: mask: layout "d1": boom`},
		{"without layout", &FlowError{Stage: StageEdit, Err: cause}, "aapsm: edit: boom"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.err.Error(); got != c.want {
				t.Errorf("Error() = %q, want %q", got, c.want)
			}
			if !errors.Is(c.err, cause) {
				t.Error("FlowError does not unwrap to its cause")
			}
		})
	}

	inner := &FlowError{Stage: StageAssign, Layout: "x", Err: cause}
	wrapped := fmt.Errorf("outer: %w", inner)
	var fe *FlowError
	// flowErr must pass an already-tagged error through unchanged, even
	// nested inside another wrapper.
	if got := flowErr(StageDetect, "y", wrapped); got != wrapped {
		t.Errorf("flowErr re-wrapped a stage-tagged error: %v", got)
	}
	if !errors.As(wrapped, &fe) || fe.Stage != StageAssign {
		t.Errorf("errors.As through wrapper = %+v", fe)
	}
}

// TestSentinelErrorsThroughStages: each sentinel must match with errors.Is
// through the stage-tagged FlowError produced by the real pipeline, and
// errors.As must recover the stage and layout.
func TestSentinelErrorsThroughStages(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name     string
		sentinel error
		stage    FlowStage
		layout   string
		err      func() error
	}{
		{
			name: "ErrNotAssignable at detect", sentinel: ErrNotAssignable,
			stage: StageDetect, layout: "figure1",
			err: func() error {
				return NewEngine().NewSession(Figure1Layout()).RequireAssignable(ctx)
			},
		},
		{
			name: "ErrUnfixable at correct", sentinel: ErrUnfixable,
			stage: StageCorrect, layout: "ext",
			err: func() error {
				_, err := NewEngine().NewSession(tJunctionLayout()).CorrectedLayout(ctx)
				return err
			},
		},
		{
			name: "edit index error at edit", sentinel: nil,
			stage: StageEdit, layout: "figure5",
			err: func() error {
				return NewEngine().NewSession(Figure5Layout()).MoveFeature(-7, R(0, 0, 1, 1))
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.err()
			if err == nil {
				t.Fatal("expected an error")
			}
			if c.sentinel != nil && !errors.Is(err, c.sentinel) {
				t.Fatalf("errors.Is(%v, sentinel) = false", err)
			}
			var fe *FlowError
			if !errors.As(err, &fe) {
				t.Fatalf("not a *FlowError: %v", err)
			}
			if fe.Stage != c.stage || fe.Layout != c.layout {
				t.Fatalf("FlowError stage/layout = %v/%q, want %v/%q", fe.Stage, fe.Layout, c.stage, c.layout)
			}
		})
	}
}

// TestContextErrorNotMemoized: context errors must not poison any stage —
// each stage retried with a live context succeeds after a cancelled attempt.
func TestContextErrorNotMemoized(t *testing.T) {
	s := NewEngine().NewSession(Figure5Layout())
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	ctx := context.Background()

	type attempt struct {
		name string
		call func(context.Context) error
	}
	attempts := []attempt{
		{"Detect", func(c context.Context) error { _, err := s.Detect(c); return err }},
		{"Assignment", func(c context.Context) error { _, err := s.Assignment(c); return err }},
		{"Correction", func(c context.Context) error { _, err := s.Correction(c); return err }},
		{"Mask", func(c context.Context) error { _, err := s.Mask(c); return err }},
	}
	for _, a := range attempts {
		t.Run(a.name, func(t *testing.T) {
			err := a.call(cancelled)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled %s: err = %v, want context.Canceled", a.name, err)
			}
			var fe *FlowError
			if !errors.As(err, &fe) {
				t.Fatalf("cancelled %s: not a *FlowError", a.name)
			}
			if err := a.call(ctx); err != nil {
				t.Fatalf("%s after cancelled attempt: %v (stage poisoned?)", a.name, err)
			}
		})
	}
	if runs := s.Stats().DetectRuns; runs != 1 {
		t.Fatalf("DetectRuns = %d, want 1", runs)
	}
}
