package aapsm

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// TestShardPanicQuarantine: a panic inside a shard solver must surface as a
// typed error (core.ErrPanic inside a *FlowError) instead of crashing the
// process, the session must memoize it — repeat calls answer the same error
// without re-running the poisoned cluster — and unrelated sessions must be
// unaffected.
func TestShardPanicQuarantine(t *testing.T) {
	ctx := context.Background()
	var fired atomic.Int64
	hook := func() {
		fired.Add(1)
		panic("injected shard panic")
	}
	core.FaultHook.Store(&hook)
	defer core.FaultHook.Store(nil)

	s := NewEngine().NewSession(Figure1Layout())
	_, err := s.Detect(ctx)
	if err == nil {
		t.Fatal("Detect succeeded with a panicking shard solver")
	}
	if !errors.Is(err, core.ErrPanic) {
		t.Fatalf("err = %v, want core.ErrPanic identity", err)
	}
	var pe *core.PanicError
	if !errors.As(err, &pe) || pe.Stack == "" {
		t.Fatalf("err = %#v, want *core.PanicError with a captured stack", err)
	}
	var fe *FlowError
	if !errors.As(err, &fe) || fe.Stage != StageDetect {
		t.Fatalf("err = %#v, want a *FlowError at StageDetect", err)
	}

	// Quarantine: the session memoizes the failure, so a second Detect
	// answers identically without re-entering the poisoned solver.
	before := fired.Load()
	_, err2 := s.Detect(ctx)
	if !errors.Is(err2, core.ErrPanic) {
		t.Fatalf("second Detect: %v", err2)
	}
	if fired.Load() != before {
		t.Fatal("second Detect re-ran the poisoned shard instead of answering the memoized error")
	}

	// Isolation: with the fault gone, a fresh session on the same engine
	// works — nothing engine- or process-wide was poisoned.
	core.FaultHook.Store(nil)
	if _, err := NewEngine().NewSession(Figure1Layout()).Detect(ctx); err != nil {
		t.Fatalf("fresh session after clearing the fault: %v", err)
	}
}

// TestShardPanicParallelWorkers: the same containment must hold on the
// parallel shard fan-out path, where the panic fires inside a worker
// goroutine (an unrecovered panic there would kill the whole process).
func TestShardPanicParallelWorkers(t *testing.T) {
	ctx := context.Background()
	hook := func() { panic("injected shard panic (parallel)") }
	core.FaultHook.Store(&hook)
	defer core.FaultHook.Store(nil)

	l := GenerateBenchmark("panic-par", DefaultBenchmarkParams(11, 2, 60))
	s := NewEngine(WithParallelism(4)).NewSessionWithParallelism(l, 4)
	_, err := s.Detect(ctx)
	if !errors.Is(err, core.ErrPanic) {
		t.Fatalf("parallel detect: err = %v, want core.ErrPanic", err)
	}
}
