package aapsm

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"maps"
	"reflect"
	"slices"
	"testing"

	"repro/internal/gds"
	"repro/internal/geom"
)

// crossPoly is a plus-shaped 12-vertex rectilinear polygon centered on
// (cx,cy) with critical-width arms, the conflict-rich polygonal primitive of
// the hierarchy tests.
func crossPoly(cx, cy int64) gds.Poly {
	const arm, reach = 100, 500
	return gds.Poly{Layer: 0, Pts: []geom.Point{
		{X: cx - arm/2, Y: cy - reach}, {X: cx + arm/2, Y: cy - reach},
		{X: cx + arm/2, Y: cy - arm/2}, {X: cx + reach, Y: cy - arm/2},
		{X: cx + reach, Y: cy + arm/2}, {X: cx + arm/2, Y: cy + arm/2},
		{X: cx + arm/2, Y: cy + reach}, {X: cx - arm/2, Y: cy + reach},
		{X: cx - arm/2, Y: cy + arm/2}, {X: cx - reach, Y: cy + arm/2},
		{X: cx - reach, Y: cy - arm/2}, {X: cx - arm/2, Y: cy - arm/2},
	}}
}

// hierTestLibrary builds a library whose CELL holds a 2x3 grid of crosses
// plus two plain gate rectangles, placed from TOP as a 2x2 AREF, one rotated
// SREF and one reflected SREF — six placements, three distinct transforms.
// Placement pitch keeps every placement outside shifter-interaction range of
// its neighbors, so all conflict clusters are instance-pure.
func hierTestLibrary() *gds.Library {
	cell := &gds.Cell{Name: "CELL"}
	for j := int64(0); j < 2; j++ {
		for i := int64(0); i < 3; i++ {
			cell.Polys = append(cell.Polys, crossPoly(i*1800, j*1800))
		}
	}
	cell.Polys = append(cell.Polys,
		gds.Poly{Layer: 0, Pts: []geom.Point{{X: -400, Y: 2400}, {X: -300, Y: 2400}, {X: -300, Y: 3400}, {X: -400, Y: 3400}}},
		gds.Poly{Layer: 0, Pts: []geom.Point{{X: -180, Y: 2400}, {X: -80, Y: 2400}, {X: -80, Y: 3400}, {X: -180, Y: 3400}}},
	)
	return &gds.Library{Name: "hiertest", Cells: []*gds.Cell{
		{Name: "TOP", Refs: []gds.Ref{
			{Cell: "CELL", Origin: geom.Pt(0, 0), Cols: 2, Rows: 2,
				ColStep: geom.Pt(6000, 0), RowStep: geom.Pt(0, 6000)},
			{Cell: "CELL", Origin: geom.Pt(16000, 0), Rot: 90},
			{Cell: "CELL", Origin: geom.Pt(16000, 16000), Reflect: true},
		}},
		cell,
	}}
}

// flattenPair expands a library twice: once with the instance-provenance
// sidecar (the hierarchy-aware path) and once fully flat (the oracle).
// Feature streams are required to be identical up front; everything
// downstream of them is what the differential compares.
func flattenPair(t *testing.T, lib *gds.Library) (hier, flat *Layout) {
	t.Helper()
	hier, err := lib.Flatten(gds.ReadOptions{TopCell: "TOP"})
	if err != nil {
		t.Fatal(err)
	}
	flat, err = lib.Flatten(gds.ReadOptions{TopCell: "TOP", Flatten: true})
	if err != nil {
		t.Fatal(err)
	}
	if hier.Hier == nil {
		t.Fatal("hierarchical flatten attached no sidecar")
	}
	if flat.Hier != nil {
		t.Fatal("flat flatten attached a sidecar")
	}
	if !slices.Equal(hier.Features, flat.Features) {
		t.Fatal("flatten modes produced different feature streams")
	}
	return hier, flat
}

// assertStagesIdentical drives both sessions through every pipeline stage and
// requires bit-identical results: conflicts, bipartization, assignment,
// correction, mask, DRC and the rendered SVG.
func assertStagesIdentical(t *testing.T, ctx context.Context, label string, s, o *Session) {
	t.Helper()
	gr, gerr := s.Detect(ctx)
	wr, werr := o.Detect(ctx)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: Detect errors diverged: %v vs %v", label, gerr, werr)
	}
	if gerr == nil {
		if !reflect.DeepEqual(gr.Detection.FinalConflicts, wr.Detection.FinalConflicts) {
			t.Fatalf("%s: conflicts diverged:\n hier %v\n flat %v", label, gr.Detection.FinalConflicts, wr.Detection.FinalConflicts)
		}
		if !reflect.DeepEqual(gr.Detection.BipartizationEdges, wr.Detection.BipartizationEdges) {
			t.Fatalf("%s: bipartization diverged:\n hier %v\n flat %v", label, gr.Detection.BipartizationEdges, wr.Detection.BipartizationEdges)
		}
	}

	ga, gerr := s.Assignment(ctx)
	wa, werr := o.Assignment(ctx)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: Assignment errors diverged: %v vs %v", label, gerr, werr)
	}
	if gerr == nil {
		if !slices.Equal(ga.Phases, wa.Phases) {
			t.Fatalf("%s: phases diverged", label)
		}
		if !maps.Equal(ga.Waived, wa.Waived) || !maps.Equal(ga.WaivedFeatures, wa.WaivedFeatures) {
			t.Fatalf("%s: waived sets diverged", label)
		}
	}

	gc, gerr := s.Correction(ctx)
	wc, werr := o.Correction(ctx)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: Correction errors diverged: %v vs %v", label, gerr, werr)
	}
	if gerr == nil {
		if !reflect.DeepEqual(gc.Plan.Cuts, wc.Plan.Cuts) || !slices.Equal(gc.Plan.Unfixable, wc.Plan.Unfixable) {
			t.Fatalf("%s: correction plans diverged", label)
		}
		if layoutText(t, gc.Layout) != layoutText(t, wc.Layout) {
			t.Fatalf("%s: corrected layouts diverged", label)
		}
	}

	gm, gerr := s.Mask(ctx)
	wm, werr := o.Mask(ctx)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: Mask errors diverged: %v vs %v", label, gerr, werr)
	}
	if gerr != nil {
		if errors.Is(gerr, ErrMaskInconsistent) != errors.Is(werr, ErrMaskInconsistent) {
			t.Fatalf("%s: mask error classes diverged: %v vs %v", label, gerr, werr)
		}
	} else if layoutText(t, gm) != layoutText(t, wm) {
		t.Fatalf("%s: mask views diverged", label)
	}

	if gv, wv := s.DRC(), o.DRC(); !slices.Equal(gv, wv) {
		t.Fatalf("%s: DRC diverged", label)
	}

	var gs, ws bytes.Buffer
	if err := s.RenderSVG(ctx, &gs); err != nil {
		t.Fatalf("%s: hier SVG: %v", label, err)
	}
	if err := o.RenderSVG(ctx, &ws); err != nil {
		t.Fatalf("%s: flat SVG: %v", label, err)
	}
	if !bytes.Equal(gs.Bytes(), ws.Bytes()) {
		t.Fatalf("%s: SVG renders diverged (%d vs %d bytes)", label, gs.Len(), ws.Len())
	}
}

// TestHierDifferential is the tentpole acceptance test: the instance-aware
// fast path must be bit-identical to flat solving at every pipeline stage,
// for both rules profiles and across worker counts, while actually reusing
// cluster results between placements.
func TestHierDifferential(t *testing.T) {
	ctx := context.Background()
	lib := hierTestLibrary()
	for _, profile := range []string{"bright-90nm", "dark-90nm"} {
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/w%d", profile, workers), func(t *testing.T) {
				hl, fl := flattenPair(t, lib)
				eng := NewEngine(WithProfile(profile), WithParallelism(workers))
				s, o := eng.NewSession(hl), eng.NewSession(fl)
				assertStagesIdentical(t, ctx, t.Name(), s, o)

				gr, err := s.Detect(ctx)
				if err != nil {
					t.Fatal(err)
				}
				st := gr.Detection.Stats
				if st.HierReusedShards == 0 || st.HierSolvedShards == 0 {
					t.Fatalf("fast path did not engage: %+v", st)
				}
				// The 2x2 AREF alone guarantees >1 identical placements.
				if st.HierReusedShards < st.HierSolvedShards {
					t.Fatalf("expected reuse to dominate on a repeated-cell layout: reused %d solved %d",
						st.HierReusedShards, st.HierSolvedShards)
				}
				wr, err := o.Detect(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if wst := wr.Detection.Stats; wst.HierReusedShards != 0 || wst.HierSolvedShards != 0 {
					t.Fatalf("flat oracle engaged the fast path: %+v", wst)
				}
			})
		}
	}
}

// TestHierFallbackDifferential places two cells inside shifter-interaction
// range, so their clusters merge across instance boundaries. Those clusters
// must fall back to flat solving — and the results must still be identical.
func TestHierFallbackDifferential(t *testing.T) {
	ctx := context.Background()
	cell := &gds.Cell{Name: "CELL", Polys: []gds.Poly{crossPoly(0, 0)}}
	lib := &gds.Library{Name: "fallback", Cells: []*gds.Cell{
		{Name: "TOP", Refs: []gds.Ref{
			{Cell: "CELL", Origin: geom.Pt(0, 0)},
			// 1150 nm apart: arm tips are 150 apart, well inside
			// shifter-interaction range, fusing the two placements' clusters.
			{Cell: "CELL", Origin: geom.Pt(1150, 0)},
			// A third placement far away stays pure and keeps the fast path
			// exercised in the same run.
			{Cell: "CELL", Origin: geom.Pt(20000, 0)},
			{Cell: "CELL", Origin: geom.Pt(20000, 20000)},
		}},
		cell,
	}}
	hl, fl := flattenPair(t, lib)
	eng := NewEngine(WithParallelism(2))
	s, o := eng.NewSession(hl), eng.NewSession(fl)
	assertStagesIdentical(t, ctx, "fallback", s, o)
	r, err := s.Detect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Detection.Stats
	if st.HierFallbackShards == 0 {
		t.Fatalf("expected instance-crossing clusters to fall back: %+v", st)
	}
	if st.HierReusedShards == 0 {
		t.Fatalf("expected the far placements to still reuse: %+v", st)
	}
}

// TestHierEditDifferential arms an edit session on a hierarchical layout and
// checks that after each mutation the incremental pipeline matches a
// from-scratch session on the same features with no hierarchy at all:
// editing must never let stale per-cell results leak into the result.
func TestHierEditDifferential(t *testing.T) {
	ctx := context.Background()
	hl, _ := flattenPair(t, hierTestLibrary())
	eng := NewEngine(WithParallelism(2))
	oracle := NewEngine(WithParallelism(2))
	s := eng.NewSession(hl)
	if err := s.EnableEdits(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Detect(ctx); err != nil {
		t.Fatal(err)
	}
	check := func(step string) {
		t.Helper()
		flat := s.Layout().Clone()
		flat.Hier = nil
		assertStagesIdentical(t, ctx, step, s, oracle.NewSession(flat))
	}
	check("pre-edit")

	// Move a placed feature (drops its provenance), add a fresh gate, delete
	// a feature of another placement.
	mid := len(s.Layout().Features) / 2
	if err := s.MoveFeature(mid, s.Layout().Features[mid].Rect.Translate(Point{X: 40})); err != nil {
		t.Fatal(err)
	}
	check("after move")
	if _, err := s.AddFeature(R(-3000, -3000, -2900, -2000)); err != nil {
		t.Fatal(err)
	}
	check("after add")
	if err := s.DeleteFeature(2); err != nil {
		t.Fatal(err)
	}
	check("after delete")

	if fb := s.Stats().Incremental.FallbackDirty; fb != 0 {
		t.Fatalf("%d reuse-invariant fallbacks", fb)
	}
}

// TestHierSnapshotRoundTrip pins that a hierarchical edit session survives
// snapshot/restore with its sidecar and keeps producing identical results.
func TestHierSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	hl, _ := flattenPair(t, hierTestLibrary())
	eng := NewEngine(WithParallelism(2))
	s := eng.NewSession(hl)
	if err := s.EnableEdits(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Detect(ctx); err != nil {
		t.Fatal(err)
	}
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.RestoreSession(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Layout()
	if got.Hier == nil {
		t.Fatal("restore dropped the hierarchy sidecar")
	}
	if !slices.Equal(got.Hier.Cells, hl.Hier.Cells) ||
		!slices.Equal(got.Hier.PlacementCell, hl.Hier.PlacementCell) ||
		!slices.Equal(got.Hier.FeatureInstance, hl.Hier.FeatureInstance) {
		t.Fatal("sidecar changed across snapshot/restore")
	}
	assertStagesIdentical(t, ctx, "restored", r, s)
}

// TestPolygonGroupStability pins the sub-rect→feature uid contract: the
// Group id linking one polygon's decomposed rectangles stays with each
// feature across session edits, so DRC attribution and later edits still
// address the original polygon after unrelated features move or vanish.
func TestPolygonGroupStability(t *testing.T) {
	lib := &gds.Library{Name: "POLY", Cells: []*gds.Cell{{
		Name: "TOP",
		Polys: []gds.Poly{
			crossPoly(1000, 1000),
			{Layer: 0, Pts: []geom.Point{{X: 4000, Y: 0}, {X: 4100, Y: 0}, {X: 4100, Y: 1000}, {X: 4000, Y: 1000}}},
			crossPoly(8000, 1000),
		},
	}}}
	l, err := lib.Flatten(gds.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	groupsOf := func(l *Layout) map[Rect]int {
		m := make(map[Rect]int, len(l.Features))
		for _, f := range l.Features {
			m[f.Rect] = f.Group
		}
		return m
	}
	before := groupsOf(l)
	groups := make(map[int]int)
	var loneRect Rect
	for _, f := range l.Features {
		groups[f.Group]++
		if f.Group == 0 {
			loneRect = f.Rect
		}
	}
	if len(groups) != 3 || groups[0] != 1 {
		t.Fatalf("expected 2 polygon groups + 1 plain rect, got %v", groups)
	}

	s := NewEngine().NewSession(l)
	if err := s.EnableEdits(); err != nil {
		t.Fatal(err)
	}
	// Delete the plain rect between the two polygons: indices shift, groups
	// must not.
	loneIdx := -1
	for i, f := range s.Layout().Features {
		if f.Rect == loneRect {
			loneIdx = i
		}
	}
	if err := s.DeleteFeature(loneIdx); err != nil {
		t.Fatal(err)
	}
	for _, f := range s.Layout().Features {
		if f.Group != before[f.Rect] {
			t.Fatalf("delete changed group of %v: %d -> %d", f.Rect, before[f.Rect], f.Group)
		}
	}
	// Move one sub-rect of the first polygon: it keeps its group id, every
	// other feature keeps its own.
	moved := s.Layout().Features[0]
	dst := moved.Rect.Translate(Point{X: 10, Y: 0})
	if err := s.MoveFeature(0, dst); err != nil {
		t.Fatal(err)
	}
	if got := s.Layout().Features[0].Group; got != moved.Group {
		t.Fatalf("move changed the moved feature's group: %d -> %d", moved.Group, got)
	}
	for _, f := range s.Layout().Features[1:] {
		if f.Group != before[f.Rect] {
			t.Fatalf("move changed group of %v: %d -> %d", f.Rect, before[f.Rect], f.Group)
		}
	}
}
