package tjoin

import (
	"container/heap"
	"testing"

	"repro/internal/graph"
)

// boxedDijkstra is the previous production implementation — container/heap
// over an interface{}-boxed item type, fresh O(N) buffers per run — kept
// verbatim as the baseline for the before/after allocation benchmarks of
// the typed index-heap rewrite (lawlerScratch).
func boxedDijkstra(g *graph.Graph, src int) ([]int64, []int) {
	dist := make([]int64, g.N())
	via := make([]int, g.N())
	done := make([]bool, g.N())
	for i := range dist {
		dist[i] = -1
		via[i] = -1
	}
	pq := &boxedHeap{}
	dist[src] = 0
	heap.Push(pq, boxedItem{0, src})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(boxedItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, a := range g.Adj(it.node) {
			w := g.Edge(a.Edge).Weight
			nd := it.dist + w
			if dist[a.To] < 0 || nd < dist[a.To] {
				dist[a.To] = nd
				via[a.To] = a.Edge
				heap.Push(pq, boxedItem{nd, a.To})
			}
		}
	}
	return dist, via
}

type boxedItem struct {
	dist int64
	node int
}

type boxedHeap []boxedItem

func (h boxedHeap) Len() int            { return len(h) }
func (h boxedHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h boxedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boxedHeap) Push(x interface{}) { *h = append(*h, x.(boxedItem)) }
func (h *boxedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// benchSPGraph builds a deterministic grid multigraph with varied weights
// and a spread-out terminal set — the shape of a dual graph's shortest-path
// workload.
func benchSPGraph(side int) (*graph.Graph, []int) {
	g := graph.New(side * side)
	at := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				g.AddEdge(at(r, c), at(r, c+1), int64(1+(r*7+c*13)%23))
			}
			if r+1 < side {
				g.AddEdge(at(r, c), at(r+1, c), int64(1+(r*11+c*5)%19))
			}
		}
	}
	var T []int
	for i := 0; i < side*side; i += side*side/16 + 1 {
		T = append(T, i)
	}
	if len(T)%2 == 1 {
		T = T[:len(T)-1]
	}
	return g, T
}

// BenchmarkDijkstraBoxed measures the old container/heap implementation:
// every push boxes a heapItem, every run allocates three fresh node-sized
// buffers.
func BenchmarkDijkstraBoxed(b *testing.B) {
	g, T := benchSPGraph(48)
	g.Adj(0) // prebuild adjacency
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		boxedDijkstra(g, T[i%len(T)])
	}
}

// BenchmarkDijkstraTyped measures the replacement: typed parallel-slice
// heap, epoch-stamped buffers reused across runs, early exit once every
// terminal settles.
func BenchmarkDijkstraTyped(b *testing.B) {
	g, T := benchSPGraph(48)
	g.Adj(0)
	s := newLawlerScratch(g, T)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.run(T[i%len(T)], -1)
	}
}

// BenchmarkSolveLawler covers the full solver on the grid workload,
// including the sparsified closure and pooled matching.
func BenchmarkSolveLawler(b *testing.B) {
	g, T := benchSPGraph(24)
	g.Adj(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveLawler(g, T); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveGadget covers the default gadget reduction with the
// pre-sized construction and pooled blossom state.
func BenchmarkSolveGadget(b *testing.B) {
	g, T := benchSPGraph(12)
	g.Adj(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveGadget(g, T, Unbounded); err != nil {
			b.Fatal(err)
		}
	}
}
