package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	aapsm "repro"
	"repro/internal/core"
)

// errorBody is the typed JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Stage   string `json:"stage,omitempty"`  // FlowError stage, when the pipeline failed
	Layout  string `json:"layout,omitempty"` // layout name the stage was working on
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, stage, layout, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{errorDetail{
		Status: status, Code: code, Stage: stage, Layout: layout, Message: msg,
	}})
}

// writeFlowError maps a pipeline error to a typed JSON response. Sentinel
// causes get stable machine-readable codes and a 409 (the layout is live but
// needs repair work); context errors map to timeout/cancellation statuses;
// any other *FlowError is a 422 (the pipeline rejected the data), and
// everything else is a 500.
func writeFlowError(w http.ResponseWriter, err error) {
	stage, layoutName := "", ""
	var fe *aapsm.FlowError
	isFlow := errors.As(err, &fe)
	if isFlow {
		stage, layoutName = fe.Stage.String(), fe.Layout
	}
	switch {
	case errors.Is(err, core.ErrPanic):
		// A shard solver panicked. The panic was contained to this session
		// (the daemon and every other session keep serving); the session
		// memoizes the error, so repeat requests answer the same 500 without
		// re-running the poisoned cluster.
		writeError(w, http.StatusInternalServerError, "panic", stage, layoutName, err.Error())
	case errors.Is(err, aapsm.ErrNotAssignable):
		writeError(w, http.StatusConflict, "not_assignable", stage, layoutName, err.Error())
	case errors.Is(err, aapsm.ErrUnfixable):
		writeError(w, http.StatusConflict, "unfixable", stage, layoutName, err.Error())
	case errors.Is(err, aapsm.ErrMaskInconsistent):
		writeError(w, http.StatusConflict, "mask_inconsistent", stage, layoutName, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "timeout", stage, layoutName, err.Error())
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "cancelled", stage, layoutName, err.Error())
	case isFlow:
		writeError(w, http.StatusUnprocessableEntity, "stage_failed", stage, layoutName, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "internal", stage, layoutName, err.Error())
	}
}

// flowError is the method form handlers use: it counts quarantined
// shard-panic responses before delegating to writeFlowError.
func (s *Server) flowError(w http.ResponseWriter, err error) {
	if errors.Is(err, core.ErrPanic) {
		s.metrics.panicsShard.Add(1)
	}
	writeFlowError(w, err)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// ---- session lifecycle ----

type createResponse struct {
	ID       string `json:"id"`
	Hash     string `json:"hash"`
	Name     string `json:"name"`
	Features int    `json:"features"`
	Reused   bool   `json:"reused"` // an existing pristine session (or snapshot) was reattached
	// Profile is the rules-profile registry name the session runs under
	// (omitted when the server's base engine uses custom rules).
	Profile string `json:"profile,omitempty"`
	// Blob is the content address of the archived raw upload body (GDS
	// uploads with a blob store configured).
	Blob string `json:"blob,omitempty"`
}

// handleCreate builds (or reattaches to) a session from an uploaded layout.
// The body is the plain-text interchange format by default, or a GDSII
// stream with ?format=gds; ?profile= selects a registered rules profile
// (default: the server engine's). Identical content under the same profile —
// text or GDS — canonicalizes to the same hash, so repeated uploads coalesce
// onto one session until it is edited; with persistence configured, a
// pristine snapshot of the same content rehydrates instead of re-detecting.
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	eng, err := s.engineFor(r.URL.Query().Get("profile"))
	if err != nil {
		msg := err.Error()
		if errors.Is(err, aapsm.ErrUnknownProfile) {
			names := make([]string, 0, 2)
			for _, p := range aapsm.Profiles() {
				names = append(names, p.Name)
			}
			msg = fmt.Sprintf("%v (registered: %s)", err, strings.Join(names, ", "))
		}
		writeError(w, http.StatusBadRequest, "unknown_profile", "", "", msg)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_layout", "", "", err.Error())
		return
	}
	var (
		l    *aapsm.Layout
		blob string
	)
	switch format := r.URL.Query().Get("format"); format {
	case "", "text":
		l, err = aapsm.ReadLayoutText(bytes.NewReader(raw))
	case "gds":
		l, err = aapsm.ReadGDS(bytes.NewReader(raw))
		// Archive the raw binary original: sessions persist derived state
		// only, so the blob store is what lets an operator re-create any
		// session from first principles.
		if err == nil && s.cfg.Blobs != nil {
			if h, berr := s.putBlobRetry(raw); berr == nil {
				blob = h
			}
		}
	default:
		writeError(w, http.StatusBadRequest, "bad_format", "", "", fmt.Sprintf("unknown format %q (want text or gds)", format))
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_layout", "", "", err.Error())
		return
	}
	hash, err := layoutHash(l, eng.Profile())
	if err != nil {
		s.flowError(w, err)
		return
	}
	// A pristine snapshot of identical content reattaches under its
	// original session ID, warm caches included. (rehydrate double-checks
	// the live store, so a currently-live session wins over its snapshot.)
	if ref, ok := s.pristineSnapshotFor(hash); ok {
		if ent, ok := s.rehydrate(r.Context(), ref.ID); ok {
			defer s.store.release(ent)
			s.metrics.sessionsReused.Add(1)
			writeJSON(w, createResponse{
				ID: ent.ID, Hash: ent.Hash,
				Name:     ent.Sess.LayoutName(),
				Features: ent.Sess.NumFeatures(),
				Reused:   true,
				Profile:  ent.Sess.Engine().Profile(),
				Blob:     blob,
			})
			return
		}
	}
	ent, reused, err := s.store.getOrCreate(r.Context(), hash, func() (*aapsm.Session, error) {
		sess := eng.NewSessionWithParallelism(l, s.cfg.DetectWorkers)
		if !s.cfg.IncrementalOff {
			// Arm incremental edits up front so this session's first
			// detection seeds the per-cluster cache and post-edit re-detects
			// stay cheap for its whole store lifetime.
			if err := sess.EnableEdits(); err != nil {
				return nil, err
			}
		}
		return sess, nil
	})
	if err != nil {
		s.flowError(w, err)
		return
	}
	defer s.store.release(ent)
	if reused {
		s.metrics.sessionsReused.Add(1)
	} else {
		s.metrics.sessionsCreated.Add(1)
	}
	writeJSON(w, createResponse{
		ID: ent.ID, Hash: ent.Hash,
		Name:     ent.Sess.LayoutName(),
		Features: ent.Sess.NumFeatures(),
		Reused:   reused,
		Profile:  ent.Sess.Engine().Profile(),
		Blob:     blob,
	})
}

// layoutHash canonicalizes a layout (name, feature order, coordinates,
// layers) through the text serialization, mixes in the rules profile the
// session will run under (identical content under different profiles must
// not coalesce), and hashes it.
func layoutHash(l *aapsm.Layout, profile string) (string, error) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "profile %s\n", profile)
	if err := aapsm.WriteLayoutText(&buf, l); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

type infoResponse struct {
	ID          string                 `json:"id"`
	Hash        string                 `json:"hash"`
	Name        string                 `json:"name"`
	Features    int                    `json:"features"`
	Profile     string                 `json:"profile,omitempty"`
	Edits       int                    `json:"edits"`
	DetectRuns  int                    `json:"detect_runs"`
	Incremental aapsm.IncrementalStats `json:"incremental"`
	CreatedAt   time.Time              `json:"created_at"`
	ExpiresAt   *time.Time             `json:"expires_at,omitempty"`
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request, ent *sessionEntry) {
	st := ent.Sess.Stats()
	resp := infoResponse{
		ID: ent.ID, Hash: ent.Hash,
		Name:     ent.Sess.LayoutName(),
		Features: ent.Sess.NumFeatures(),
		Profile:  ent.Sess.Engine().Profile(),
		Edits:    st.Edits, DetectRuns: st.DetectRuns, Incremental: st.Incremental,
		CreatedAt: ent.Created,
	}
	if s.cfg.SessionTTL > 0 {
		exp := s.store.expires(ent)
		resp.ExpiresAt = &exp
	}
	writeJSON(w, resp)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	live := s.store.delete(id) // eviction callback also deletes the snapshot
	if !live && s.cfg.Snapshots != nil {
		// Not live, but a dormant snapshot still answers by this ID; delete
		// must kill that too or the session would resurrect on next access.
		s.snapMu.Lock()
		_, hasSnap := s.snapByID[id]
		s.snapMu.Unlock()
		if hasSnap {
			s.snapshotDelete(id)
			live = true
		}
	}
	if !live {
		writeError(w, http.StatusNotFound, "unknown_session", "", "",
			"no live session "+fmt.Sprintf("%q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleFlush forces a snapshot write of the session (persistence must be
// configured). Clients checkpoint explicitly before risky operations; the
// kill-restart test uses it to bound what a SIGKILL may lose.
func (s *Server) handleFlush(w http.ResponseWriter, _ *http.Request, ent *sessionEntry) {
	if s.cfg.Snapshots == nil {
		writeError(w, http.StatusConflict, "no_snapshot_store", "", "",
			"server runs without a snapshot store (-store-dir)")
		return
	}
	if err := s.snapshotWrite(ent); err != nil {
		// The client's checkpoint did not land, and the error detail says
		// why; an asynchronous retry keeps trying in the background.
		s.scheduleRetry(ent.ID)
		writeError(w, http.StatusInternalServerError, "snapshot_failed", "", "",
			"snapshot write failed (async retry queued): "+err.Error())
		return
	}
	writeJSON(w, map[string]any{"flushed": true, "id": ent.ID})
}

// ---- edits ----

// editOp is one mutation in a batch. Op is "add", "move" or "del"; Rect is
// [x0, y0, x1, y1] in nm. Index is required for move/del (a pointer, so an
// omitted field is rejected instead of silently targeting feature 0).
type editOp struct {
	Op    string  `json:"op"`
	Rect  []int64 `json:"rect,omitempty"`
	Layer int     `json:"layer,omitempty"`
	Index *int    `json:"index,omitempty"`
}

type editsRequest struct {
	Ops []editOp `json:"ops"`
}

type editsResponse struct {
	Applied  int `json:"applied"`
	Features int `json:"features"`
	// Added holds, per "add" op in order, the feature's index after the
	// whole merged batch: later del ops — from this request or any request
	// coalesced into the same batch — shift indices down, and an added
	// feature deleted later in the batch reports -1.
	Added []int `json:"added,omitempty"`
	// Gen is the session generation the batch committed at; read-stage
	// responses and stream events computed at the same generation reflect
	// exactly this state.
	Gen int64 `json:"gen"`
	// Incremental is the session's cumulative per-stage reuse profile after
	// the batch: shard, coloring, verification, interval, mask-check and
	// DRC-pair counters showing how much of the pipeline each re-run of this
	// session has been reusing versus recomputing.
	Incremental aapsm.IncrementalStats `json:"incremental"`
	// Batch is this request's coalescing receipt: where it landed in its
	// merged batch and its queue/solve timing breakdown.
	Batch *batchInfo `json:"batch,omitempty"`
	// Detect, with ?detect=1, is the post-batch detection — computed once
	// per merged batch and shared by every item that asked. DetectError
	// carries the failure instead when that shared re-pipeline failed (the
	// edits themselves still applied).
	Detect      *detectResponse `json:"detect,omitempty"`
	DetectError string          `json:"detect_error,omitempty"`
}

// handleEdits validates a batch of layout mutations, hands it to the
// per-session coalescer, and waits for its slice of the merged batch result.
// Within one request the ops stay all-or-nothing: index ranges are simulated
// against the running feature count before anything applies, so a rejected
// request 422s alone while other requests coalesced into the same batch
// land. Memoized stages are invalidated once per merged batch; with
// ?detect=1 the batch runner re-detects once and every waiter shares the
// result.
func (s *Server) handleEdits(w http.ResponseWriter, r *http.Request, ent *sessionEntry) {
	var req editsRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "", "", "invalid edit batch: "+err.Error())
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "", "", "empty edit batch")
		return
	}
	// Validate shapes before enqueueing; range checks happen inside the
	// batch runner where the authoritative feature count lives.
	for _, op := range req.Ops {
		switch op.Op {
		case "add":
			if len(op.Rect) != 4 {
				writeError(w, http.StatusBadRequest, "bad_request", "", "",
					fmt.Sprintf("op %q needs rect [x0 y0 x1 y1], got %d values", op.Op, len(op.Rect)))
				return
			}
		case "move", "del":
			if op.Index == nil {
				writeError(w, http.StatusBadRequest, "bad_request", "", "", fmt.Sprintf("op %q needs an explicit index", op.Op))
				return
			}
			if op.Op == "move" && len(op.Rect) != 4 {
				writeError(w, http.StatusBadRequest, "bad_request", "", "",
					fmt.Sprintf("op %q needs rect [x0 y0 x1 y1], got %d values", op.Op, len(op.Rect)))
				return
			}
		default:
			writeError(w, http.StatusBadRequest, "bad_request", "", "", fmt.Sprintf("unknown op %q (want add, move or del)", op.Op))
			return
		}
	}
	it := &editItem{
		ops:    req.Ops,
		detect: r.URL.Query().Get("detect") == "1",
		enq:    time.Now(),
		done:   make(chan struct{}),
	}
	s.enqueueEdit(ent, it)
	select {
	case <-it.done:
	case <-r.Context().Done():
		// The ops cannot be retracted — they will still apply with their
		// batch — but nobody is listening for the answer.
		writeError(w, http.StatusServiceUnavailable, "cancelled", "edit", "",
			"request cancelled while queued for its edit batch (ops still apply)")
		return
	}
	if it.rangeErr != nil {
		writeError(w, http.StatusUnprocessableEntity, "bad_index", "edit", "", it.rangeErr.Error()+" (no ops of this request applied)")
		return
	}
	if it.flowErr != nil {
		s.flowError(w, it.flowErr)
		return
	}
	b := it.batch
	writeJSON(w, editsResponse{
		Applied:     it.applied,
		Features:    it.features,
		Added:       it.added,
		Gen:         it.gen,
		Incremental: it.inc,
		Batch:       &b,
		Detect:      it.detResp,
		DetectError: it.detErr,
	})
}

// ---- pipeline stages ----

// conflictJSON is one detected conflict in wire form.
type conflictJSON struct {
	Edge     int    `json:"edge"`
	Kind     string `json:"kind"` // "overlap" or "feature"
	Shifters [2]int `json:"shifters"`
	Feature  int    `json:"feature"` // critical feature index; -1 for overlap conflicts
	Deficit  int64  `json:"deficit"`
}

type detectStatsJSON struct {
	GraphNodes    int   `json:"graph_nodes"`
	GraphEdges    int   `json:"graph_edges"`
	CrossingPairs int   `json:"crossing_pairs"`
	Shards        int   `json:"shards"`
	ReusedShards  int   `json:"reused_shards"`
	TotalNS       int64 `json:"total_ns"`
}

type detectResponse struct {
	ID         string          `json:"id"`
	Graph      string          `json:"graph"`
	Features   int             `json:"features"`
	Assignable bool            `json:"assignable"`
	Conflicts  []conflictJSON  `json:"conflicts"`
	Stats      detectStatsJSON `json:"stats"`
}

// buildDetectResponse converts a session's detection result to the wire
// form. It is shared by the HTTP handler and by tests that compare the
// served bytes against an in-process oracle session.
func buildDetectResponse(id string, sess *aapsm.Session, res *aapsm.Result) detectResponse {
	conflicts := make([]conflictJSON, 0, len(res.Conflicts()))
	for _, c := range res.Conflicts() {
		cj := conflictJSON{
			Edge:     c.Edge,
			Shifters: [2]int{c.Meta.S1, c.Meta.S2},
			Feature:  -1,
			Deficit:  c.Deficit,
		}
		if c.Meta.Kind == core.FeatureEdge {
			cj.Kind = "feature"
			cj.Feature = c.Meta.Feature
		} else {
			cj.Kind = "overlap"
		}
		conflicts = append(conflicts, cj)
	}
	st := res.Detection.Stats
	return detectResponse{
		ID:         id,
		Graph:      res.Graph.Kind.String(),
		Features:   sess.NumFeatures(),
		Assignable: res.Assignable(),
		Conflicts:  conflicts,
		Stats: detectStatsJSON{
			GraphNodes:    st.GraphNodes,
			GraphEdges:    st.GraphEdges,
			CrossingPairs: st.CrossingPairs,
			Shards:        st.Shards,
			ReusedShards:  st.ReusedShards,
			TotalNS:       st.TotalTime.Nanoseconds(),
		},
	}
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request, ent *sessionEntry) {
	res, err := ent.Sess.Detect(r.Context())
	if err != nil {
		s.flowError(w, err)
		return
	}
	s.metrics.detects.Add(1)
	writeJSON(w, buildDetectResponse(ent.ID, ent.Sess, res))
}

type assignResponse struct {
	ID     string `json:"id"`
	Phases []int  `json:"phases"` // 0 or 180 per shifter
	Waived int    `json:"waived"`
}

func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request, ent *sessionEntry) {
	a, err := ent.Sess.Assignment(r.Context())
	if err != nil {
		s.flowError(w, err)
		return
	}
	phases := make([]int, len(a.Phases))
	for i, p := range a.Phases {
		if p == core.Phase180 {
			phases[i] = 180
		}
	}
	writeJSON(w, assignResponse{ID: ent.ID, Phases: phases, Waived: len(a.Waived)})
}

type correctResponse struct {
	ID           string  `json:"id"`
	Cuts         int     `json:"cuts"`
	Unfixable    int     `json:"unfixable"`
	AreaBefore   int64   `json:"area_before"`
	AreaAfter    int64   `json:"area_after"`
	AreaIncrease float64 `json:"area_increase_pct"`
	Layout       string  `json:"layout,omitempty"` // corrected layout text with ?include_layout=1
}

func (s *Server) handleCorrect(w http.ResponseWriter, r *http.Request, ent *sessionEntry) {
	cor, err := ent.Sess.Correction(r.Context())
	if err != nil {
		s.flowError(w, err)
		return
	}
	resp := correctResponse{
		ID:           ent.ID,
		Cuts:         len(cor.Plan.Cuts),
		Unfixable:    len(cor.Plan.Unfixable),
		AreaBefore:   cor.Stats.AreaBefore,
		AreaAfter:    cor.Stats.AreaAfter,
		AreaIncrease: cor.Stats.AreaIncrease,
	}
	if r.URL.Query().Get("include_layout") == "1" {
		var buf bytes.Buffer
		if err := aapsm.WriteLayoutText(&buf, cor.Layout); err != nil {
			s.flowError(w, err)
			return
		}
		resp.Layout = buf.String()
	}
	writeJSON(w, resp)
}

type drcResponse struct {
	ID         string   `json:"id"`
	Violations []string `json:"violations"`
}

func (s *Server) handleDRC(w http.ResponseWriter, _ *http.Request, ent *sessionEntry) {
	vs := ent.Sess.DRC()
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	writeJSON(w, drcResponse{ID: ent.ID, Violations: out})
}

func (s *Server) handleMask(w http.ResponseWriter, r *http.Request, ent *sessionEntry) {
	m, err := ent.Sess.Mask(r.Context())
	if err != nil {
		s.flowError(w, err)
		return
	}
	writeLayoutBody(w, r, m)
}

func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request, ent *sessionEntry) {
	writeLayoutBody(w, r, ent.Sess.SnapshotLayout())
}

// writeLayoutBody serializes a layout as the response body: text by default,
// GDSII with ?format=gds.
func writeLayoutBody(w http.ResponseWriter, r *http.Request, l *aapsm.Layout) {
	var buf bytes.Buffer
	switch format := r.URL.Query().Get("format"); format {
	case "", "text":
		if err := aapsm.WriteLayoutText(&buf, l); err != nil {
			writeFlowError(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	case "gds":
		if err := aapsm.WriteGDS(&buf, l); err != nil {
			writeFlowError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
	default:
		writeError(w, http.StatusBadRequest, "bad_format", "", "", fmt.Sprintf("unknown format %q (want text or gds)", format))
		return
	}
	w.Write(buf.Bytes())
}

func (s *Server) handleSVG(w http.ResponseWriter, r *http.Request, ent *sessionEntry) {
	// Render to a buffer first: RenderSVG streams, and a stage error after
	// the first write would corrupt an already-started 200 response.
	var buf bytes.Buffer
	if err := ent.Sess.RenderSVG(r.Context(), &buf); err != nil {
		s.flowError(w, err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	w.Write(buf.Bytes())
}

// ---- health and metrics ----

type healthResponse struct {
	Status      string `json:"status"` // "ok" or "draining"
	Sessions    int    `json:"sessions"`
	Parallelism int    `json:"parallelism"`
	UptimeS     int64  `json:"uptime_s"`
}

// handleHealthz reports liveness. While draining it answers 503 so load
// balancers pull the instance, which is what makes shutdown graceful: new
// traffic stops arriving while in-flight requests finish.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := healthResponse{
		Status:      "ok",
		Sessions:    s.store.len(),
		Parallelism: s.cfg.Engine.Parallelism(),
		UptimeS:     int64(s.cfg.now().Sub(s.metrics.start).Seconds()),
	}
	if s.Draining() {
		resp.Status = "draining"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

// readyResponse is the /readyz body. Status is "ok", "draining", or
// "degraded" (the persistence store is failing writes; sessions are pinned
// in memory and retried).
type readyResponse struct {
	Status         string `json:"status"`
	Sessions       int    `json:"sessions"`
	Pinned         int    `json:"pinned"`
	RetriesPending int    `json:"retries_pending"`
	StoreError     string `json:"store_error,omitempty"`
}

// handleReadyz reports readiness, distinct from /healthz liveness: a daemon
// whose snapshot store is failing writes is alive (keep it running — it
// holds unpersisted sessions pinned in memory) but not ready (stop routing
// new sessions to it until the store recovers).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	streak, lastErr := s.health.snapshot()
	resp := readyResponse{
		Status:         "ok",
		Sessions:       s.store.len(),
		Pinned:         s.store.pinnedCount(),
		RetriesPending: s.pendingRetries(),
	}
	switch {
	case s.Draining():
		resp.Status = "draining"
	case s.cfg.Snapshots != nil && streak > 0:
		resp.Status = "degraded"
		resp.StoreError = lastErr
	}
	if resp.Status != "ok" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var buf bytes.Buffer
	s.metrics.write(&buf, s.store.len(), s.store.pinnedCount(), s.pendingRetries(), s.Ready(), s.cfg.now())
	io.Copy(w, &buf)
}
