// Gdsround: exchange layouts with standard EDA tooling via the GDSII
// stream format — write a generated design to GDSII, read it back, and run
// conflict detection on the imported geometry. The original and the
// round-tripped layout are detected together through Engine.DetectBatch,
// which must find identical conflicts for both.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"

	aapsm "repro"
)

func main() {
	ctx := context.Background()
	eng := aapsm.NewEngine(aapsm.WithParallelism(2))
	l := aapsm.GenerateBenchmark("GDSDEMO", aapsm.DefaultBenchmarkParams(7, 3, 80))

	var stream bytes.Buffer
	if err := aapsm.WriteGDS(&stream, l); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %q as GDSII: %d features, %d bytes\n",
		l.Name, len(l.Features), stream.Len())

	// Persist a copy so external viewers can open it.
	path := "gdsdemo.gds"
	if err := os.WriteFile(path, stream.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved %s\n", path)

	back, err := aapsm.ReadGDS(bytes.NewReader(stream.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q with %d features\n", back.Name, len(back.Features))
	if len(back.Features) != len(l.Features) {
		log.Fatal("round trip lost features")
	}
	for i := range l.Features {
		if back.Features[i] != l.Features[i] {
			log.Fatalf("feature %d altered by round trip", i)
		}
	}
	fmt.Println("round trip: all features identical")

	// Detect both layouts in one batch on the engine's worker pool.
	results, err := eng.DetectBatch(ctx, []*aapsm.Layout{l, back})
	if err != nil {
		log.Fatal(err)
	}
	orig, imported := results[0], results[1]
	fmt.Printf("detection on imported layout: %d conflicts (graph %d/%d)\n",
		len(imported.Conflicts()), imported.Detection.Stats.GraphNodes,
		imported.Detection.Stats.GraphEdges)
	if len(orig.Conflicts()) != len(imported.Conflicts()) {
		log.Fatalf("round trip changed conflicts: %d vs %d",
			len(orig.Conflicts()), len(imported.Conflicts()))
	}
	fmt.Println("original and imported layouts detect identically")
}
