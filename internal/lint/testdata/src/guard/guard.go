// Package guard exercises the guardedby analyzer: a field annotated
// "guarded by mu" may only be touched with mu held.
package guard

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) bad() int {
	return c.n // want `access to field n \(guarded by mu\) without holding mu`
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) manual() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) after() {
	c.mu.Lock()
	c.mu.Unlock()
	c.n++ // want `access to field n \(guarded by mu\) without holding mu`
}

// bumpLocked runs with mu held (the *Locked name convention).
func (c *counter) bumpLocked() { c.n++ }

//aapsmvet:holds mu
func (c *counter) bumpHeld() { c.n++ }

func (c *counter) spawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `access to field n \(guarded by mu\) without holding mu`
	}()
}

// branchy unlocks on the early-return path; the fall-through still holds mu.
func (c *counter) branchy(x bool) {
	c.mu.Lock()
	if x {
		c.mu.Unlock()
		return
	}
	c.n++
	c.mu.Unlock()
}
