package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/planar"
	"repro/internal/tjoin"
)

// shardGrid is the seeded generator grid used by the sharding equivalence
// tests: small enough to run in CI, varied enough to cover many clusters,
// crossings, straps and dense groups.
func shardGrid() []bench.Design {
	return []bench.Design{
		{Name: "g1", Params: bench.DefaultParams(201, 2, 40)},
		{Name: "g2", Params: bench.DefaultParams(202, 3, 60)},
		{Name: "g3", Params: bench.DefaultParams(203, 4, 90)},
	}
}

func detectionsEqual(t *testing.T, tag string, a, b *Detection) {
	t.Helper()
	intsEq := func(what string, x, y []int) {
		t.Helper()
		if len(x) != len(y) {
			t.Fatalf("%s: %s length %d != %d", tag, what, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s: %s differ at %d: %d != %d", tag, what, i, x[i], y[i])
			}
		}
	}
	// CrossingsRemoved order is deterministic but shard-concatenated;
	// compare as sets.
	ar := append([]int(nil), a.CrossingsRemoved...)
	br := append([]int(nil), b.CrossingsRemoved...)
	sort.Ints(ar)
	sort.Ints(br)
	intsEq("CrossingsRemoved", ar, br)
	intsEq("BipartizationEdges", a.BipartizationEdges, b.BipartizationEdges)
	ac := make([]int, len(a.FinalConflicts))
	bc := make([]int, len(b.FinalConflicts))
	for i, c := range a.FinalConflicts {
		ac[i] = c.Edge
	}
	for i, c := range b.FinalConflicts {
		bc[i] = c.Edge
	}
	intsEq("FinalConflicts", ac, bc)
	as, bs := a.Stats, b.Stats
	if as.GraphNodes != bs.GraphNodes || as.GraphEdges != bs.GraphEdges ||
		as.CrossingPairs != bs.CrossingPairs || as.DualNodes != bs.DualNodes ||
		as.DualEdges != bs.DualEdges || as.OddFaces != bs.OddFaces ||
		as.GadgetNodes != bs.GadgetNodes || as.GadgetEdges != bs.GadgetEdges ||
		as.Shards != bs.Shards || as.LargestShardEdges != bs.LargestShardEdges {
		t.Fatalf("%s: stats differ:\n%+v\n%+v", tag, as, bs)
	}
}

// TestShardedDetectionWorkerEquivalence asserts the tentpole invariant: the
// sharded flow is bit-identical in conflict sets and stat counts for any
// worker count, across the generator grid, both graph kinds and both
// recheck modes.
func TestShardedDetectionWorkerEquivalence(t *testing.T) {
	workerCounts := []int{1, 2, 4, runtime.NumCPU()}
	for _, d := range shardGrid() {
		l := bench.Generate(d.Name, d.Params)
		for _, kind := range []GraphKind{PCG, FG} {
			for _, mode := range []RecheckMode{RecheckColoring, RecheckParity} {
				var ref *Detection
				for _, w := range workerCounts {
					cg, err := BuildGraph(l, rules(), kind)
					if err != nil {
						t.Fatal(err)
					}
					det, err := Detect(cg, Options{Recheck: mode, Workers: w})
					if err != nil {
						t.Fatalf("%s/%v workers=%d: %v", d.Name, kind, w, err)
					}
					if det.Stats.Shards < 2 {
						t.Fatalf("%s/%v: expected multiple conflict clusters, got %d",
							d.Name, kind, det.Stats.Shards)
					}
					if ref == nil {
						ref = det
						continue
					}
					detectionsEqual(t, d.Name+"/"+kind.String(), ref, det)
				}
			}
		}
	}
}

// unshardedReference reruns the flow the pre-sharding way — one global
// planarization, one embedding of the whole drawing (shared outer face), one
// dual T-join, one global recheck — as an independent oracle for the merge.
func unshardedReference(t *testing.T, cg *ConflictGraph, mode RecheckMode) (removed, bipart, final []int) {
	t.Helper()
	removed = cg.Drawing.Planarize()
	removedSet := make([]bool, cg.Drawing.G.M())
	for _, e := range removed {
		removedSet[e] = true
	}
	pd, oldIdx := cg.Drawing.WithoutEdgeSet(removedSet)
	em, err := planar.BuildEmbedding(pd)
	if err != nil {
		t.Fatal(err)
	}
	dual, primalOf, T := em.Dual()
	// Mirror the flow's lexicographic (weight, count) rescaling so count
	// comparisons are meaningful (see lexScaleLimit).
	scaleK := int64(dual.M()) + 1
	edges := dual.Edges()
	for i := range edges {
		edges[i].Weight = edges[i].Weight*scaleK + 1
	}
	join, err := tjoin.Solve(dual, T, tjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bipartSet := make([]bool, cg.Drawing.G.M())
	for _, de := range join.Edges {
		orig := oldIdx[primalOf[de]]
		bipart = append(bipart, orig)
		bipartSet[orig] = true
	}
	sort.Ints(bipart)
	final, err = recheck(cg.Drawing.G, removed, removedSet, bipartSet, mode)
	if err != nil {
		t.Fatal(err)
	}
	return removed, bipart, final
}

// TestShardedMatchesUnshardedReference cross-validates the sharded flow
// against the monolithic single-embedding flow: the removed crossing set
// must be identical, and the bipartization/final conflict sets must agree
// in count and total weight (the optima are tie-free in count thanks to the
// lexicographic rescaling; the chosen edge sets may legitimately differ
// between one global dual and per-cluster duals).
func TestShardedMatchesUnshardedReference(t *testing.T) {
	for _, d := range shardGrid() {
		l := bench.Generate(d.Name, d.Params)
		for _, mode := range []RecheckMode{RecheckColoring, RecheckParity} {
			cg, err := BuildGraph(l, rules(), PCG)
			if err != nil {
				t.Fatal(err)
			}
			det, err := Detect(cg, Options{Recheck: mode, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			cg2, err := BuildGraph(l, rules(), PCG)
			if err != nil {
				t.Fatal(err)
			}
			removed, bipart, final := unshardedReference(t, cg2, mode)

			g := cg.Drawing.G
			gotRemoved := append([]int(nil), det.CrossingsRemoved...)
			sort.Ints(gotRemoved)
			wantRemoved := append([]int(nil), removed...)
			sort.Ints(wantRemoved)
			if len(gotRemoved) != len(wantRemoved) {
				t.Fatalf("%s: removed %d != %d", d.Name, len(gotRemoved), len(wantRemoved))
			}
			for i := range gotRemoved {
				if gotRemoved[i] != wantRemoved[i] {
					t.Fatalf("%s: removed sets differ at %d", d.Name, i)
				}
			}
			if len(det.BipartizationEdges) != len(bipart) {
				t.Fatalf("%s: bipartization count %d != %d",
					d.Name, len(det.BipartizationEdges), len(bipart))
			}
			if wg, ww := g.TotalWeight(det.BipartizationEdges), g.TotalWeight(bipart); wg != ww {
				t.Fatalf("%s: bipartization weight %d != %d", d.Name, wg, ww)
			}
			if len(det.FinalConflicts) != len(final) {
				t.Fatalf("%s: conflict count %d != %d",
					d.Name, len(det.FinalConflicts), len(final))
			}
			var wGot, wWant int64
			for _, c := range det.FinalConflicts {
				wGot += g.Edge(c.Edge).Weight
			}
			for _, e := range final {
				wWant += cg2.Drawing.G.Edge(e).Weight
			}
			if wGot != wWant {
				t.Fatalf("%s: conflict weight %d != %d", d.Name, wGot, wWant)
			}
		}
	}
}

// TestDetectParallelRace exercises the per-cluster worker pool under the
// race detector: many goroutines running parallel detections that share
// nothing but the solver pools.
func TestDetectParallelRace(t *testing.T) {
	d := shardGrid()[1]
	l := bench.Generate(d.Name, d.Params)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cg, err := BuildGraph(l, rules(), PCG)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := DetectContext(context.Background(), cg, Options{Workers: runtime.NumCPU()}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestDetectCancelledContext verifies prompt cancellation through the
// sharded pool.
func TestDetectCancelledContext(t *testing.T) {
	d := shardGrid()[0]
	l := bench.Generate(d.Name, d.Params)
	cg, err := BuildGraph(l, rules(), PCG)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		if _, err := DetectContext(ctx, cg, Options{Workers: w}); err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
	}
}
