package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tjoin"
)

// wireLayout builds vertical wires of width 100 x height 1000 at the given
// x origins.
func wireLayout(name string, xs ...int64) *layout.Layout {
	l := layout.New(name)
	for _, x := range xs {
		l.Add(geom.R(x, 0, x+100, 1000))
	}
	return l
}

func rules() layout.Rules { return layout.Default90nm() }

func TestIsolatedWireAssignable(t *testing.T) {
	l := wireLayout("one", 0)
	ok, err := IsPhaseAssignable(l, rules())
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	cg, err := BuildGraph(l, rules(), PCG)
	if err != nil {
		t.Fatal(err)
	}
	if cg.Nodes() != 2 || cg.Edges() != 1 {
		t.Errorf("nodes=%d edges=%d, want 2/1", cg.Nodes(), cg.Edges())
	}
	if cg.Meta[0].Kind != FeatureEdge {
		t.Error("single edge should be the feature edge")
	}
}

func TestChainOfWiresAssignable(t *testing.T) {
	// Pitch 500: adjacent inner shifters merge, outer ones stay clear.
	l := wireLayout("chain", 0, 500, 1000, 1500)
	ok, err := IsPhaseAssignable(l, rules())
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	cg, _ := BuildGraph(l, rules(), PCG)
	det, err := Detect(cg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(det.FinalConflicts) != 0 {
		t.Fatalf("conflicts on assignable layout: %v", det.FinalConflicts)
	}
	a, err := AssignPhases(det)
	if err != nil {
		t.Fatal(err)
	}
	if v := a.Verify(cg); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	// Adjacent wires' facing shifters must carry equal phases, flanks of
	// one wire opposite phases.
	for f := 0; f < 4; f++ {
		p := cg.Set.PairOf[f]
		if a.Phases[p[0]] == a.Phases[p[1]] {
			t.Errorf("feature %d flanks share phase", f)
		}
	}
}

func TestDensePairConflict(t *testing.T) {
	// Pitch 350: left shifter of B merges with BOTH shifters of A → odd
	// cycle. Optimal repair weight is 300 (one deficit-300 edge, or two
	// deficit-150 edges).
	l := wireLayout("dense2", 0, 350)
	ok, err := IsPhaseAssignable(l, rules())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("dense pair should not be phase-assignable")
	}
	cg, _ := BuildGraph(l, rules(), PCG)
	det, err := Detect(cg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(det.FinalConflicts) == 0 {
		t.Fatal("expected conflicts")
	}
	var w int64
	for _, c := range det.FinalConflicts {
		w += cg.Drawing.G.Edge(c.Edge).Weight
		if c.Meta.Kind == FeatureEdge {
			t.Error("flow must not sacrifice feature edges here")
		}
	}
	if w != 300 {
		t.Errorf("conflict weight = %d, want 300", w)
	}
	// The crossing-free case is exactly optimal: compare with greedy which
	// must be no better.
	gb := GreedyDetect(cg)
	var wg int64
	for _, c := range gb.FinalConflicts {
		wg += cg.Drawing.G.Edge(c.Edge).Weight
	}
	if wg < w {
		t.Errorf("greedy %d beat optimal %d", wg, w)
	}
	// Phases must verify after waiving.
	a, err := AssignPhases(det)
	if err != nil {
		t.Fatal(err)
	}
	if v := a.Verify(cg); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestTripleWireFigure1(t *testing.T) {
	// The Figure-1 style non-assignable cluster.
	l := wireLayout("fig1", 0, 350, 700)
	ok, _ := IsPhaseAssignable(l, rules())
	if ok {
		t.Fatal("triple should conflict")
	}
	cg, _ := BuildGraph(l, rules(), PCG)
	det, err := Detect(cg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(det.FinalConflicts) == 0 {
		t.Fatal("expected conflicts")
	}
	a, err := AssignPhases(det)
	if err != nil {
		t.Fatal(err)
	}
	if v := a.Verify(cg); len(v) != 0 {
		t.Fatalf("violations after waiver: %v", v)
	}
}

func TestFGHasMoreNodesThanPCG(t *testing.T) {
	l := wireLayout("cmp", 0, 350, 700, 1200, 1700)
	pcg, err := BuildGraph(l, rules(), PCG)
	if err != nil {
		t.Fatal(err)
	}
	fg, err := BuildGraph(l, rules(), FG)
	if err != nil {
		t.Fatal(err)
	}
	if fg.BendNodes == 0 {
		t.Error("FG should route feature edges through bends")
	}
	if pcg.BendNodes != 0 {
		t.Error("PCG must be straight-line")
	}
	// Same constraint structure: identical graphs modulo drawing.
	if pcg.Edges() != fg.Edges() || pcg.Nodes() != fg.Nodes() {
		t.Errorf("constraint sizes differ: PCG %d/%d FG %d/%d",
			pcg.Nodes(), pcg.Edges(), fg.Nodes(), fg.Edges())
	}
	// Both must agree on assignability (Theorem 1 holds for both).
	if pcg.Drawing.G.IsBipartite() != fg.Drawing.G.IsBipartite() {
		t.Error("PCG and FG disagree on bipartiteness")
	}
}

func TestDetectMethodsAgreeOnWeight(t *testing.T) {
	l := wireLayout("methods", 0, 350, 700, 1050, 1500)
	for _, kind := range []GraphKind{PCG, FG} {
		cg1, _ := BuildGraph(l, rules(), kind)
		d1, err := Detect(cg1, Options{TJoin: tjoin.Options{Method: tjoin.MethodGeneralizedGadget}})
		if err != nil {
			t.Fatal(err)
		}
		cg2, _ := BuildGraph(l, rules(), kind)
		d2, err := Detect(cg2, Options{TJoin: tjoin.Options{Method: tjoin.MethodOptimizedGadget}})
		if err != nil {
			t.Fatal(err)
		}
		cg3, _ := BuildGraph(l, rules(), kind)
		d3, err := Detect(cg3, Options{TJoin: tjoin.Options{Method: tjoin.MethodLawler}})
		if err != nil {
			t.Fatal(err)
		}
		w := func(d *Detection, cg *ConflictGraph) int64 {
			var s int64
			for _, c := range d.FinalConflicts {
				s += cg.Drawing.G.Edge(c.Edge).Weight
			}
			return s
		}
		w1, w2, w3 := w(d1, cg1), w(d2, cg2), w(d3, cg3)
		if w1 != w2 || w1 != w3 {
			t.Fatalf("%v: weights %d %d %d", kind, w1, w2, w3)
		}
		// Generalized gadget must be no larger than optimized.
		if d1.Stats.GadgetNodes > d2.Stats.GadgetNodes {
			t.Errorf("generalized gadget larger than optimized: %d > %d",
				d1.Stats.GadgetNodes, d2.Stats.GadgetNodes)
		}
	}
}

// bruteAssignable enumerates all phase assignments directly on the layout
// constraints — the independent oracle for Theorem 1.
func bruteAssignable(cg *ConflictGraph) bool {
	n := len(cg.Set.Shifters)
	if n > 20 {
		panic("too many shifters for brute force")
	}
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, pair := range cg.Set.PairOf {
			if (mask>>pair[0])&1 == (mask>>pair[1])&1 {
				ok = false
				break
			}
		}
		if ok {
			for _, ov := range cg.Set.Overlaps {
				if (mask>>ov.A)&1 != (mask>>ov.B)&1 {
					ok = false
					break
				}
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestTheorem1Property(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		l := layout.New("rand")
		nw := rng.Intn(6) + 1
		for i := 0; i < nw; i++ {
			x := int64(rng.Intn(10)) * 175
			y := int64(rng.Intn(4)) * 400
			h := int64(rng.Intn(3)+1) * 400
			if rng.Intn(2) == 0 {
				l.Add(geom.R(x, y, x+100, y+h))
			} else {
				l.Add(geom.R(y, x, y+h, x+100))
			}
		}
		cg, err := BuildGraph(l, rules(), PCG)
		if err != nil {
			t.Fatal(err)
		}
		if len(cg.Set.Shifters) > 16 {
			continue
		}
		want := bruteAssignable(cg)
		got := cg.Drawing.G.IsBipartite()
		if got != want {
			t.Fatalf("trial %d: bipartite=%v assignable=%v", trial, got, want)
		}
		// The full flow must also produce a verified assignment.
		det, err := Detect(cg, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if want && len(det.FinalConflicts) != 0 {
			t.Fatalf("trial %d: spurious conflicts on assignable layout", trial)
		}
		a, err := AssignPhases(det)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if v := a.Verify(cg); len(v) != 0 {
			t.Fatalf("trial %d: violations %v", trial, v)
		}
	}
}

func TestDetectStatsPopulated(t *testing.T) {
	l := wireLayout("stats", 0, 350, 700)
	cg, _ := BuildGraph(l, rules(), PCG)
	det, err := Detect(cg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := det.Stats
	if s.GraphNodes == 0 || s.GraphEdges == 0 || s.DualNodes == 0 {
		t.Errorf("stats not populated: %+v", s)
	}
	if s.OddFaces%2 != 0 {
		t.Errorf("odd face count must be even, got %d", s.OddFaces)
	}
}

func TestOverlapRegionCenterFallsInsideGap(t *testing.T) {
	r := rules()
	a := geom.R(0, 0, 200, 1000)
	b := geom.R(400, 0, 600, 1000)
	q := overlapRegionCenter(a, b, r)
	if q.X < 200 || q.X > 400 {
		t.Errorf("region center %v should lie in the gap", q)
	}
}

func TestPosRegistryNudges(t *testing.T) {
	pr := newPosRegistry()
	p := geom.Pt(10, 10)
	p1 := pr.claim(p)
	p2 := pr.claim(p)
	p3 := pr.claim(p)
	if p1 != p {
		t.Error("first claim should be exact")
	}
	if p2 == p1 || p3 == p1 || p2 == p3 {
		t.Error("claims must be distinct")
	}
	if geom.Abs(p2.X-p.X)+geom.Abs(p2.Y-p.Y) > 2 {
		t.Error("nudge should be small")
	}
}
