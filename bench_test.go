// Package aapsm_test is the external benchmark harness; it lives outside
// package aapsm so it can drive internal/experiments, which itself builds on
// the public Engine/Session API (an in-package test would create an import
// cycle).
package aapsm_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section. Each benchmark regenerates the corresponding
// experiment's rows (printed once via b.Log on the first iteration) and
// times the dominant computation. cmd/benchtab prints the full tables,
// including the ~160K-polygon full-chip design d8, outside the testing
// harness.
//
//	Table 1  -> BenchmarkTable1Row_*, BenchmarkTable1Gadget*
//	Table 2  -> BenchmarkTable2Row_*
//	Figure 1 -> BenchmarkFig1OddCycleDetect
//	Figure 2 -> BenchmarkFig2GraphCompare
//	Fig 3/4  -> BenchmarkFig34GadgetSizes
//	Figure 5 -> BenchmarkFig5SharedSpace
//	§3.1.2   -> BenchmarkGadgetRuntimeSweep (the ~16% claim)
//	ablation -> BenchmarkRecheckModes, BenchmarkGreedyBaseline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	aapsm "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/planar"
	"repro/internal/tjoin"
	"repro/internal/tshape"
)

func benchRules() layout.Rules { return layout.Default90nm() }

func suiteLayout(b *testing.B, i int) *layout.Layout {
	b.Helper()
	d := bench.Suite()[i]
	return bench.Generate(d.Name, d.Params)
}

// --- Table 1: conflict detection quality and runtime ---

func benchmarkTable1Row(b *testing.B, design int) {
	d := bench.Suite()[design]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunTable1Row(d, benchRules())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log(experiments.Table1Header())
			b.Log(row.String())
			if !(row.NP <= row.PCG && row.PCG <= row.GB) {
				b.Fatalf("Table 1 ordering violated: NP=%d PCG=%d GB=%d", row.NP, row.PCG, row.GB)
			}
		}
	}
}

func BenchmarkTable1Row_d1(b *testing.B) { benchmarkTable1Row(b, 0) }
func BenchmarkTable1Row_d2(b *testing.B) { benchmarkTable1Row(b, 1) }

// BenchmarkTable1DetectPCG times just the proposed flow on a mid-size
// design (the headline detection runtime).
func BenchmarkTable1DetectPCG_d3(b *testing.B) {
	l := suiteLayout(b, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cg, err := core.BuildGraph(l, benchRules(), core.PCG)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Detect(cg, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1DetectFG is the feature-graph baseline on the same design.
func BenchmarkTable1DetectFG_d3(b *testing.B) {
	l := suiteLayout(b, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cg, err := core.BuildGraph(l, benchRules(), core.FG)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Detect(cg, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 1 runtime columns: optimized vs generalized gadget matching ---

func benchmarkGadget(b *testing.B, method tjoin.Method) {
	l := suiteLayout(b, 1)
	cg, err := core.BuildGraph(l, benchRules(), core.PCG)
	if err != nil {
		b.Fatal(err)
	}
	// Pre-planarize once; time only the dual T-join (the paper's matching
	// runtime columns).
	removed := cg.Drawing.Planarize()
	removedSet := make(map[int]bool, len(removed))
	for _, e := range removed {
		removedSet[e] = true
	}
	pd, _ := cg.Drawing.WithoutEdges(removedSet)
	em, err := planar.BuildEmbedding(pd)
	if err != nil {
		b.Fatal(err)
	}
	dual, _, T := em.Dual()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tjoin.Solve(dual, T, tjoin.Options{Method: method}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1GadgetOptimized_d2(b *testing.B) {
	benchmarkGadget(b, tjoin.MethodOptimizedGadget)
}

func BenchmarkTable1GadgetGeneralized_d2(b *testing.B) {
	benchmarkGadget(b, tjoin.MethodGeneralizedGadget)
}

// BenchmarkGadgetRuntimeSweep reports the generalized-vs-optimized matching
// gain across several designs (the §3.1.2 "16% improvement" claim).
func BenchmarkGadgetRuntimeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var gain float64
		n := 3
		for d := 0; d < n; d++ {
			row, err := experiments.RunTable1Row(bench.Suite()[d], benchRules())
			if err != nil {
				b.Fatal(err)
			}
			gain += row.Improvement()
		}
		if i == 0 {
			b.Logf("average generalized-gadget gain over d1..d%d: %.1f%% (paper ~16%%)", n, gain/float64(n))
		}
	}
}

// --- Table 2: layout modification ---

func benchmarkTable2Row(b *testing.B, design int) {
	d := bench.Suite()[design]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunTable2Row(d, benchRules())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log(experiments.Table2Header())
			b.Log(row.String())
			if !row.DRCClean || !row.Assignable {
				b.Fatalf("Table 2 postconditions violated: %+v", row)
			}
			if row.AreaIncrease < 0.1 || row.AreaIncrease > 15 {
				b.Fatalf("area increase %.2f%% outside the paper's plausible band", row.AreaIncrease)
			}
		}
	}
}

func BenchmarkTable2Row_d1(b *testing.B) { benchmarkTable2Row(b, 0) }
func BenchmarkTable2Row_d2(b *testing.B) { benchmarkTable2Row(b, 1) }

// --- Figure 1: odd-cycle detection on the motivating layout ---

func BenchmarkFig1OddCycleDetect(b *testing.B) {
	l := bench.Figure1Layout()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := core.IsPhaseAssignable(l, benchRules())
		if err != nil {
			b.Fatal(err)
		}
		if ok {
			b.Fatal("figure 1 must conflict")
		}
	}
}

// --- Figure 2: PCG vs FG statistics ---

func BenchmarkFig2GraphCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := experiments.RunFigure2(benchRules())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("PCG %d nodes/%d edges/%d crossings vs FG %d/%d/%d",
				st.PCGNodes, st.PCGEdges, st.PCGCrossings,
				st.FGNodes, st.FGEdges, st.FGCrossings)
			if st.FGNodes <= st.PCGNodes || st.FGCrossings < st.PCGCrossings {
				b.Fatal("figure 2 relation violated")
			}
		}
	}
}

// --- Figures 3/4: gadget construction sizes ---

func BenchmarkFig34GadgetSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, deg := range []int{3, 5, 8, 12, 20} {
			st, err := experiments.RunFigure34(deg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("degree %2d: generalized %d nodes, optimized %d nodes",
					st.Degree, st.GeneralizedNodes, st.OptimizedNodes)
				if deg > 3 && st.GeneralizedNodes >= st.OptimizedNodes {
					b.Fatal("generalized gadget must be smaller beyond degree 3")
				}
			}
		}
	}
}

// --- Figure 5: one space correcting multiple conflicts ---

func BenchmarkFig5SharedSpace(b *testing.B) {
	l := bench.Figure5Layout()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		row, err := experiments.Table2RowFor(l, benchRules())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("figure 5: %d conflicts corrected by %d line(s), max %d per line",
				row.Conflicts, row.GridLines, row.MaxPerLine)
			if row.MaxPerLine < 2 {
				b.Fatal("figure 5 requires shared cut lines")
			}
		}
	}
}

// --- Ablations ---

// BenchmarkRecheckModes contrasts the paper's coloring recheck with the
// parity-based improvement (DESIGN.md §3.6 ablation).
func BenchmarkRecheckModes(b *testing.B) {
	l := suiteLayout(b, 1)
	for _, mode := range []struct {
		name string
		m    core.RecheckMode
	}{{"coloring", core.RecheckColoring}, {"parity", core.RecheckParity}} {
		b.Run(mode.name, func(b *testing.B) {
			var conflicts int
			for i := 0; i < b.N; i++ {
				cg, err := core.BuildGraph(l, benchRules(), core.PCG)
				if err != nil {
					b.Fatal(err)
				}
				det, err := core.Detect(cg, core.Options{Recheck: mode.m})
				if err != nil {
					b.Fatal(err)
				}
				conflicts = len(det.FinalConflicts)
			}
			b.ReportMetric(float64(conflicts), "conflicts")
		})
	}
}

// BenchmarkGreedyBaseline times the GB column's algorithm alone.
func BenchmarkGreedyBaseline_d3(b *testing.B) {
	l := suiteLayout(b, 2)
	cg, err := core.BuildGraph(l, benchRules(), core.PCG)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conf := graph.GreedyBipartization(cg.Drawing.G)
		if len(conf) == 0 {
			b.Fatal("expected conflicts")
		}
	}
}

// --- component-sharded parallel detection ---

// BenchmarkDetectParallel times the sharded detection flow on the largest
// benchmark design the harness runs (d4) at several worker counts. The
// conflict graph is built once outside the timer; each iteration runs the
// full planarize → bipartize → recheck flow. Results are bit-identical
// across worker counts (asserted by the core equivalence tests).
func BenchmarkDetectParallel(b *testing.B) {
	l := suiteLayout(b, 3)
	cg, err := core.BuildGraph(l, benchRules(), core.PCG)
	if err != nil {
		b.Fatal(err)
	}
	cg.Drawing.G.Adj(0) // prebuild adjacency outside the timers
	counts := []int{1, 2, 4, runtime.NumCPU()}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var shards int
			for i := 0; i < b.N; i++ {
				det, err := core.Detect(cg, core.Options{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				shards = det.Stats.Shards
			}
			b.ReportMetric(float64(shards), "shards")
		})
	}
}

// --- incremental edit-and-re-detect ---

// BenchmarkEditRedetect contrasts a full from-scratch detection of d3 with
// the incremental re-detect after a single-feature move on an edit session.
// The incremental path re-solves only the conflict clusters in the moved
// feature's geometric neighborhood; the acceptance target is ≥ 5× (recorded
// in BENCH_detect.json by cmd/benchtab -json).
func BenchmarkEditRedetect(b *testing.B) {
	ctx := context.Background()
	d := bench.Suite()[2] // d3
	mk := func() *layout.Layout { return bench.Generate(d.Name, d.Params) }

	b.Run("full", func(b *testing.B) {
		l := mk()
		eng := aapsm.NewEngine(aapsm.WithParallelism(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Detect(ctx, l); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("incremental-move", func(b *testing.B) {
		eng := aapsm.NewEngine(aapsm.WithParallelism(1))
		s := eng.NewSession(mk())
		mid := len(s.Layout().Features) / 2
		// Arm the edit engine, then establish the cluster cache.
		if err := s.EnableEdits(); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Detect(ctx); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := s.Layout().Features[mid].Rect
			delta := int64(10)
			if i%2 == 1 {
				delta = -10
			}
			if err := s.MoveFeature(mid, r.Translate(aapsm.Point{X: delta})); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Detect(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := s.Stats().Incremental
		if st.FallbackDirty != 0 {
			b.Fatalf("reuse invariant fallbacks: %+v", st)
		}
		b.ReportMetric(float64(st.ShardsReused)/float64(st.Detects), "reused-shards/op")
	})
}

// runPipeline drives the full downstream flow on a session: detect, phase
// assignment, correction, mask view, DRC. Mask inconsistency (feature-edge
// conflicts) is tolerated — it is a legitimate pipeline outcome, and both the
// from-scratch and incremental paths hit it identically.
func runPipeline(ctx context.Context, b *testing.B, s *aapsm.Session) {
	b.Helper()
	if _, err := s.Detect(ctx); err != nil {
		b.Fatal(err)
	}
	if _, err := s.Assignment(ctx); err != nil {
		b.Fatal(err)
	}
	if _, err := s.Correction(ctx); err != nil {
		b.Fatal(err)
	}
	if _, err := s.Mask(ctx); err != nil && !errors.Is(err, aapsm.ErrMaskInconsistent) {
		b.Fatal(err)
	}
	_ = s.DRC()
}

// BenchmarkEditRepipeline contrasts the full from-scratch pipeline
// (detect + assign + correct + mask + DRC) on d3 with the incremental
// re-pipeline after a single-feature move on an edit session. Downstream
// stages reuse along the same conflict clusters as detection: clean clusters
// keep their coloring, correction intervals, mask checks and DRC pairs. The
// acceptance target is ≥ 3× (recorded per design in BENCH_detect.json
// schema v3 by cmd/benchtab -json).
func BenchmarkEditRepipeline(b *testing.B) {
	ctx := context.Background()
	d := bench.Suite()[2] // d3
	mk := func() *layout.Layout { return bench.Generate(d.Name, d.Params) }

	b.Run("full", func(b *testing.B) {
		l := mk()
		eng := aapsm.NewEngine(aapsm.WithParallelism(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runPipeline(ctx, b, eng.NewSession(l))
		}
	})

	b.Run("incremental-move", func(b *testing.B) {
		eng := aapsm.NewEngine(aapsm.WithParallelism(1))
		s := eng.NewSession(mk())
		mid := len(s.Layout().Features) / 2
		if err := s.EnableEdits(); err != nil {
			b.Fatal(err)
		}
		runPipeline(ctx, b, s)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := s.Layout().Features[mid].Rect
			delta := int64(10)
			if i%2 == 1 {
				delta = -10
			}
			if err := s.MoveFeature(mid, r.Translate(aapsm.Point{X: delta})); err != nil {
				b.Fatal(err)
			}
			runPipeline(ctx, b, s)
		}
		b.StopTimer()
		st := s.Stats().Incremental
		if st.FallbackDirty != 0 {
			b.Fatalf("reuse invariant fallbacks: %+v", st)
		}
		if st.Detects > 0 {
			b.ReportMetric(float64(st.ShardsReused)/float64(st.Detects), "reused-shards/op")
			b.ReportMetric(float64(st.DRCPairsReused)/float64(st.Detects), "reused-drc-pairs/op")
		}
	})
}

// --- robustness: a larger design end to end (the paper's full-chip claim
// is regenerated at true scale by `cmd/benchtab -table 1 -n 8`) ---

func BenchmarkFullFlow_d4(b *testing.B) {
	l := suiteLayout(b, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		row, err := experiments.Table2RowFor(l, benchRules())
		if err != nil {
			b.Fatal(err)
		}
		if !row.DRCClean {
			b.Fatal("postcondition")
		}
	}
}

// --- related-work baseline: compaction-style expansion (refs [2,3]) vs the
// paper's end-to-end spaces ---

func BenchmarkCorrectionVsCompaction_d1(b *testing.B) {
	d := bench.Suite()[0]
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.RunCorrectionComparison(d, benchRules())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%s: end-to-end +%.2f%% vs compaction +%.2f%% area (%d features moved)",
				cmp.Design, cmp.EndToEndAreaPct, cmp.CompactionAreaPct, cmp.CompactionMoved)
		}
	}
}

// --- ablation: gadget group-size cap sweep (between the paper's cap-3
// optimized gadgets and unbounded generalized gadgets) ---

func BenchmarkGadgetGroupCapSweep(b *testing.B) {
	l := suiteLayout(b, 1)
	cg, err := core.BuildGraph(l, benchRules(), core.PCG)
	if err != nil {
		b.Fatal(err)
	}
	removed := cg.Drawing.Planarize()
	removedSet := make(map[int]bool, len(removed))
	for _, e := range removed {
		removedSet[e] = true
	}
	pd, _ := cg.Drawing.WithoutEdges(removedSet)
	em, err := planar.BuildEmbedding(pd)
	if err != nil {
		b.Fatal(err)
	}
	dual, _, T := em.Dual()
	for _, cap := range []int{2, 3, 5, 9, tjoin.Unbounded} {
		name := "unbounded"
		if cap != tjoin.Unbounded {
			name = fmt.Sprintf("cap%d", cap)
		}
		b.Run(name, func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				r, err := tjoin.Solve(dual, T, tjoin.Options{GroupCap: cap})
				if err != nil {
					b.Fatal(err)
				}
				nodes = r.GadgetNodes
			}
			b.ReportMetric(float64(nodes), "gadget-nodes")
		})
	}
}

// --- extension benches: widening and junction analysis ---

func BenchmarkJunctionAnalysis_d2(b *testing.B) {
	l := suiteLayout(b, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tshape.Find(l)
	}
}
