package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	aapsm "repro"
	"repro/internal/persist"
)

// persistEngine builds the one engine configuration every server in these
// tests shares: snapshots only restore under the configuration they were
// taken with, so the restarted server must match the original.
func persistEngine() *aapsm.Engine {
	return aapsm.NewEngine(aapsm.WithParallelism(2))
}

// moveOp builds a deterministic single-op edit batch moving feature k of the
// original layout. Each step moves a distinct index, so the op stays valid
// and identical no matter which server it is posted to.
func moveOp(l *aapsm.Layout, k int) editsRequest {
	r := l.Features[k].Rect.Translate(aapsm.Point{X: int64(5 * (k + 1)), Y: 3})
	return editsRequest{Ops: []editOp{
		{Op: "move", Index: idx(k), Rect: []int64{r.X0, r.Y0, r.X1, r.Y1}},
	}}
}

// mustClient is the subset of testClient both flavors of test server client
// satisfy.
type mustClient interface {
	must(method, path string, body []byte, wantCode int) []byte
}

// detectBytes fetches a detect response with the one nondeterministic field
// (wall-clock total_ns) zeroed, re-encoded for byte comparison.
func detectBytes(t *testing.T, tc mustClient, id string) []byte {
	t.Helper()
	var dr detectResponse
	if err := json.Unmarshal(tc.must("GET", "/v1/sessions/"+id+"/detect", nil, 200), &dr); err != nil {
		t.Fatal(err)
	}
	dr.Stats.TotalNS = 0
	return encodeJSON(t, dr)
}

// TestKillRestartRehydration is the crash-restart acceptance test: a server
// with a disk snapshot store serves half an edit script, flushes, and is
// killed (no drain, in-memory state discarded). A fresh server over the same
// store directory finishes the script against the original session ID, and
// every stage response must be byte-identical to an uninterrupted oracle
// server driven through the identical request sequence.
func TestKillRestartRehydration(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	openStore := func() persist.Store {
		st, err := persist.NewDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	l := loadLayout(42)
	body := layoutText(t, l)
	const steps = 6
	half := steps / 2

	// Oracle: the same engine configuration, never interrupted.
	_, oc := newTestServer(t, Config{Engine: persistEngine()})
	var ocreated createResponse
	if err := json.Unmarshal(oc.must("POST", "/v1/sessions", body, 200), &ocreated); err != nil {
		t.Fatal(err)
	}

	// Interrupted server, first half of the script.
	srvA := New(Config{Engine: persistEngine(), Snapshots: openStore(), FlushInterval: -1})
	tsA := newTestClientServer(t, srvA)
	var acreated createResponse
	if err := json.Unmarshal(tsA.must("POST", "/v1/sessions", body, 200), &acreated); err != nil {
		t.Fatal(err)
	}
	if acreated.ID != ocreated.ID {
		t.Fatalf("servers assigned different IDs to one layout: %q vs %q", acreated.ID, ocreated.ID)
	}
	id := acreated.ID
	for k := 0; k < half; k++ {
		ops := encodeJSON(t, moveOp(l, k))
		tsA.must("POST", "/v1/sessions/"+id+"/edits", ops, 200)
		oc.must("POST", "/v1/sessions/"+id+"/edits", ops, 200)
		if got, want := detectBytes(t, tsA, id), detectBytes(t, oc, id); !bytes.Equal(got, want) {
			t.Fatalf("step %d detect diverged before the kill:\n got %s\nwant %s", k, got, want)
		}
	}
	// Persist, then die without a drain: everything after the flush endpoint
	// returns is on disk, everything in memory is discarded.
	tsA.must("POST", "/v1/sessions/"+id+"/flush", nil, 200)
	srvA.Close()
	tsA.shutdown()

	// Restarted server over the same store directory, second half.
	srvB, tb := newTestServer(t, Config{Engine: persistEngine(), Snapshots: openStore(), FlushInterval: -1})
	for k := half; k < steps; k++ {
		ops := encodeJSON(t, moveOp(l, k))
		tb.must("POST", "/v1/sessions/"+id+"/edits", ops, 200)
		oc.must("POST", "/v1/sessions/"+id+"/edits", ops, 200)
	}
	if got, want := detectBytes(t, tb, id), detectBytes(t, oc, id); !bytes.Equal(got, want) {
		t.Fatalf("post-restart detect diverged:\n got %s\nwant %s", got, want)
	}
	// Every other stage must match byte-for-byte: these responses carry no
	// timing, so the raw wire bytes compare directly.
	for _, ep := range []string{"/assign", "/correct?include_layout=1", "/drc", "/mask", "/layout", "/svg"} {
		got := tb.must("GET", "/v1/sessions/"+id+ep, nil, 200)
		want := oc.must("GET", "/v1/sessions/"+id+ep, nil, 200)
		if !bytes.Equal(got, want) {
			t.Errorf("%s diverged after restart (%d vs %d bytes)", ep, len(got), len(want))
		}
	}
	if n := srvB.metrics.snapshotRestores.Load(); n != 1 {
		t.Errorf("snapshot restores = %d, want 1", n)
	}
	metrics := string(tb.must("GET", "/metrics", nil, 200))
	for _, want := range []string{
		"aapsmd_snapshot_restore_total 1",
		"aapsmd_snapshot_restore_seconds_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSnapshotReattachByHash: a pristine snapshot satisfies create-by-hash
// across a restart — re-uploading the same layout reattaches to the restored
// session (same ID, reused, no second detection) instead of re-pipelining.
func TestSnapshotReattachByHash(t *testing.T) {
	store := persist.NewMemStore()
	srvA := New(Config{Engine: persistEngine(), Snapshots: store, FlushInterval: -1})
	tsA := newTestClientServer(t, srvA)
	body := layoutText(t, loadLayout(43))
	var created createResponse
	if err := json.Unmarshal(tsA.must("POST", "/v1/sessions", body, 200), &created); err != nil {
		t.Fatal(err)
	}
	tsA.must("GET", "/v1/sessions/"+created.ID+"/detect", nil, 200)
	srvA.BeginDrain()
	srvA.FlushAll()
	srvA.Close()
	tsA.shutdown()

	_, tb := newTestServer(t, Config{Engine: persistEngine(), Snapshots: store, FlushInterval: -1})
	var again createResponse
	if err := json.Unmarshal(tb.must("POST", "/v1/sessions", body, 200), &again); err != nil {
		t.Fatal(err)
	}
	if !again.Reused || again.ID != created.ID {
		t.Fatalf("create after restart = %+v, want reattach to %q", again, created.ID)
	}
	var info infoResponse
	if err := json.Unmarshal(tb.must("GET", "/v1/sessions/"+created.ID, nil, 200), &info); err != nil {
		t.Fatal(err)
	}
	if info.DetectRuns != 1 {
		t.Errorf("detect runs after restore = %d, want the original 1", info.DetectRuns)
	}
}

// TestEvictionSnapshotCapturesInFlightEdit is the deterministic eviction-race
// regression: a session evicted while a request holds it must not be
// snapshotted until that request finishes, so the eviction snapshot contains
// the in-flight edit and rehydration resumes from it.
func TestEvictionSnapshotCapturesInFlightEdit(t *testing.T) {
	srv, tc := newTestServer(t, Config{
		Engine:        persistEngine(),
		StoreCapacity: 1,
		Snapshots:     persist.NewMemStore(),
		FlushInterval: -1,
	})
	var a createResponse
	if err := json.Unmarshal(tc.must("POST", "/v1/sessions", layoutText(t, loadLayout(44)), 200), &a); err != nil {
		t.Fatal(err)
	}
	// Hold the entry exactly like the session middleware does for an
	// in-flight request.
	ent, ok := srv.store.get(a.ID)
	if !ok {
		t.Fatal("created session not live")
	}
	// Capacity 1: creating another session evicts the held one.
	tc.must("POST", "/v1/sessions", layoutText(t, loadLayout(45)), 200)
	if _, live := srv.store.get(a.ID); live {
		t.Fatal("session still live after capacity eviction")
	}
	if n := srv.metrics.snapshotWrites.Load(); n != 0 {
		t.Fatalf("snapshot written while a request still held the session (writes = %d)", n)
	}
	// The in-flight request's work lands after the eviction decision.
	srv.store.markEdited(ent)
	if err := ent.Sess.Edit(func(ed *aapsm.LayoutEditor) { ed.Delete(0) }); err != nil {
		t.Fatal(err)
	}
	srv.store.release(ent)
	if n := srv.metrics.snapshotWrites.Load(); n != 1 {
		t.Fatalf("snapshot writes after release = %d, want 1", n)
	}
	// Rehydration must serve the post-edit state.
	var info infoResponse
	if err := json.Unmarshal(tc.must("GET", "/v1/sessions/"+a.ID, nil, 200), &info); err != nil {
		t.Fatal(err)
	}
	if info.Features != a.Features-1 {
		t.Errorf("rehydrated features = %d, want %d (eviction snapshot missed the in-flight edit)",
			info.Features, a.Features-1)
	}
	if n := srv.metrics.snapshotRestores.Load(); n != 1 {
		t.Errorf("snapshot restores = %d, want 1", n)
	}
}

// TestEvictionRehydrationChurn hammers a tiny store with concurrent session
// flows while persistence is on, so eviction, deferred snapshot writes, and
// single-flighted rehydration race continuously under -race. Requests may
// observe a clean 404 (evicted before its first snapshot, or a snapshot not
// yet written by a deferred callback) but never an internal error.
func TestEvictionRehydrationChurn(t *testing.T) {
	const flows = 48
	srv, tc := newTestServer(t, Config{
		Engine:        persistEngine(),
		StoreCapacity: 3,
		Snapshots:     persist.NewMemStore(),
		FlushInterval: -1,
	})
	var wg sync.WaitGroup
	for i := 0; i < flows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l := loadLayout(100 + i)
			var created createResponse
			code, data := tc.do("POST", "/v1/sessions", layoutText(t, l))
			if code != 200 {
				t.Errorf("flow %d create = %d: %s", i, code, data)
				return
			}
			if err := json.Unmarshal(data, &created); err != nil {
				t.Error(err)
				return
			}
			base := "/v1/sessions/" + created.ID
			for step := 0; step < 3; step++ {
				ops := encodeJSON(t, moveOp(l, step))
				for _, req := range []struct {
					method, path string
					body         []byte
				}{
					{"POST", base + "/edits", ops},
					{"GET", base + "/detect", nil},
				} {
					code, data := tc.do(req.method, req.path, req.body)
					if code != 200 && code != 404 {
						t.Errorf("flow %d step %d %s = %d: %s", i, step, req.path, code, data)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if srv.metrics.snapshotWrites.Load() == 0 {
		t.Error("no snapshots written under eviction churn")
	}
	if srv.metrics.snapshotRestores.Load() == 0 {
		t.Error("no sessions rehydrated under eviction churn")
	}
	t.Logf("writes=%d restores=%d corrupt=%d evicted-lru=%d",
		srv.metrics.snapshotWrites.Load(), srv.metrics.snapshotRestores.Load(),
		srv.metrics.snapshotCorrupt.Load(), srv.metrics.sessionsEvicted.lru.Load())
}

// TestFlushEndpointWithoutStore: the flush route answers a typed 409 when no
// snapshot store is configured.
func TestFlushEndpointWithoutStore(t *testing.T) {
	_, tc := newTestServer(t, Config{Engine: persistEngine()})
	var created createResponse
	if err := json.Unmarshal(tc.must("POST", "/v1/sessions", layoutText(t, loadLayout(46)), 200), &created); err != nil {
		t.Fatal(err)
	}
	data := tc.must("POST", "/v1/sessions/"+created.ID+"/flush", nil, 409)
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != "no_snapshot_store" {
		t.Errorf("error = %+v", eb.Error)
	}
}

// TestDeleteRemovesDormantSnapshot: DELETE on a session that lives only as a
// snapshot removes the snapshot, and later requests see a clean 404.
func TestDeleteRemovesDormantSnapshot(t *testing.T) {
	store := persist.NewMemStore()
	srvA := New(Config{Engine: persistEngine(), Snapshots: store, FlushInterval: -1})
	tsA := newTestClientServer(t, srvA)
	var created createResponse
	if err := json.Unmarshal(tsA.must("POST", "/v1/sessions", layoutText(t, loadLayout(47)), 200), &created); err != nil {
		t.Fatal(err)
	}
	tsA.must("POST", "/v1/sessions/"+created.ID+"/flush", nil, 200)
	srvA.Close()
	tsA.shutdown()

	_, tb := newTestServer(t, Config{Engine: persistEngine(), Snapshots: store, FlushInterval: -1})
	// The session is dormant (snapshot only); delete must reach through to it.
	tb.must("DELETE", "/v1/sessions/"+created.ID, nil, 204)
	tb.must("GET", "/v1/sessions/"+created.ID, nil, 404)
	if refs, err := store.List(); err != nil || len(refs) != 0 {
		t.Errorf("store after dormant delete: %v, %v", refs, err)
	}
}

// TestCorruptSnapshotDegradesGracefully: a snapshot that no longer decodes is
// counted, forgotten, and the request answers 404 — it is never retried and
// never panics the server.
func TestCorruptSnapshotDegradesGracefully(t *testing.T) {
	store := persist.NewMemStore()
	srvA := New(Config{Engine: persistEngine(), Snapshots: store, FlushInterval: -1})
	tsA := newTestClientServer(t, srvA)
	var created createResponse
	if err := json.Unmarshal(tsA.must("POST", "/v1/sessions", layoutText(t, loadLayout(48)), 200), &created); err != nil {
		t.Fatal(err)
	}
	tsA.must("POST", "/v1/sessions/"+created.ID+"/flush", nil, 200)
	srvA.Close()
	tsA.shutdown()

	// Corrupt the stored bytes in place.
	refs, err := store.List()
	if err != nil || len(refs) != 1 {
		t.Fatalf("refs = %v, %v", refs, err)
	}
	data, err := store.Get(refs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := store.Put(refs[0], data); err != nil {
		t.Fatal(err)
	}

	srvB, tb := newTestServer(t, Config{Engine: persistEngine(), Snapshots: store, FlushInterval: -1})
	tb.must("GET", "/v1/sessions/"+created.ID, nil, 404)
	if n := srvB.metrics.snapshotCorrupt.Load(); n != 1 {
		t.Errorf("snapshot corrupt count = %d, want 1", n)
	}
	// The snapshot is forgotten: the retry 404s without touching the store.
	tb.must("GET", "/v1/sessions/"+created.ID, nil, 404)
	if n := srvB.metrics.snapshotCorrupt.Load(); n != 1 {
		t.Errorf("corrupt snapshot retried: count = %d, want 1", n)
	}
}

// newTestClientServer mounts an already-built Server on an httptest server
// the caller can shut down independently (to simulate a process kill).
func newTestClientServer(t *testing.T, srv *Server) *killableClient {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &killableClient{testClient: testClient{t: t, base: ts.URL, c: ts.Client()}, ts: ts}
}

type killableClient struct {
	testClient
	ts *httptest.Server
}

func (kc *killableClient) shutdown() { kc.ts.Close() }
