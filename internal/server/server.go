// Package server implements aapsmd, the long-running AAPSM layout service:
// an HTTP/JSON facade over the Engine/Session pipeline with a bounded
// LRU+TTL session store, single-flight creation coalescing, per-request
// timeouts, typed error responses, health and Prometheus-style metrics
// endpoints, graceful drain, and optional session persistence (snapshot
// store + blob backend) for crash-restart rehydration.
//
// Every pipeline stage of the paper's flow is separately addressable:
//
//	POST   /v1/sessions                  create a session (layout text or GDS body)
//	GET    /v1/sessions/{id}             session info and work counters
//	DELETE /v1/sessions/{id}             drop the session
//	POST   /v1/sessions/{id}/edits       batched add/move/del edits (incremental re-detect)
//	POST   /v1/sessions/{id}/flush       force a snapshot write (persistence configured)
//	GET    /v1/sessions/{id}/detect      conflict detection
//	GET    /v1/sessions/{id}/assign      phase assignment
//	GET    /v1/sessions/{id}/correct     end-to-end-space correction
//	GET    /v1/sessions/{id}/drc         design-rule check
//	GET    /v1/sessions/{id}/mask        mask view (text or GDS)
//	GET    /v1/sessions/{id}/layout      current layout export (text or GDS)
//	GET    /v1/sessions/{id}/svg         SVG render with overlays
//	GET    /v1/sessions/{id}/stream      SSE stream: per-stage results after every edit batch
//	GET    /healthz                      liveness (503 while draining)
//	GET    /readyz                       readiness (503 while draining or persistence-degraded)
//	GET    /metrics                      Prometheus text metrics
package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	aapsm "repro"
	"repro/internal/persist"
)

// Config parameterizes a Server. The zero value of every field selects a
// production-safe default.
type Config struct {
	// Engine is the shared pipeline engine; nil builds one with default
	// rules.
	Engine *aapsm.Engine
	// StoreCapacity bounds the number of live sessions (LRU eviction past
	// it). Default 1024.
	StoreCapacity int
	// SessionTTL is the idle lifetime of a stored session; every access
	// refreshes it. 0 means the default 30m; negative disables expiry.
	SessionTTL time.Duration
	// RequestTimeout bounds each request's pipeline work via context
	// cancellation. 0 means the default 60s; negative disables the limit.
	RequestTimeout time.Duration
	// DetectWorkers bounds one session's shard fan-out (see
	// Engine.NewSessionWithParallelism). Default 1: request-level
	// concurrency is the parallelism axis of a multi-tenant server.
	DetectWorkers int
	// MaxBodyBytes caps uploaded layout bodies. Default 32 MiB.
	MaxBodyBytes int64
	// Incremental arms every new session for incremental edit-and-re-detect
	// (Session.EnableEdits) so the first detection seeds the per-cluster
	// cache. Default on; set Off to true to disable.
	IncrementalOff bool

	// Snapshots, when set, persists sessions across process restarts:
	// sessions are snapshotted on LRU/TTL eviction, on the periodic flush,
	// and on demand (the flush endpoint / FlushAll at drain); a session that
	// is not live is rehydrated from its snapshot on the next request, and
	// creating a session whose content hash matches a pristine snapshot
	// reattaches instead of re-detecting. The engine configuration must
	// match the one the snapshots were taken under (mismatched snapshots
	// count as corrupt and are ignored).
	Snapshots persist.Store
	// Blobs, when set, archives raw GDS upload bodies content-addressed by
	// SHA-256 so the large binary originals survive independently of the
	// session index; create responses then carry the blob hash.
	Blobs persist.BlobStore
	// FlushInterval is the period of the background snapshot flush of live
	// sessions. 0 means the default 30s (when Snapshots is set); negative
	// disables periodic flushing (eviction and drain still snapshot).
	FlushInterval time.Duration

	// MaxInflight bounds concurrently admitted API requests (health, ready
	// and metrics probes are exempt). Requests past the bound queue for up
	// to QueueWait and are then shed with a typed 429. 0 means the default
	// 256; negative disables admission control.
	MaxInflight int
	// QueueWait is how long an arriving request may wait for an admission
	// slot before being shed. 0 means the default 1s; negative sheds
	// immediately when the server is saturated.
	QueueWait time.Duration
	// MaxSessionInflight bounds concurrent requests touching one session;
	// past it the request queues for up to QueueWait (same timer/cancel
	// logic as the global semaphore) and is then shed with 429
	// session_busy. 0 means the default 16; negative disables the
	// per-session bound.
	MaxSessionInflight int

	// BatchMax caps how many concurrent edit requests coalesce into one
	// merged Session.Edit batch (and one shared incremental re-pipeline).
	// 0 means the default 32; negative disables coalescing (every request
	// is its own batch).
	BatchMax int
	// BatchWait is how long the batch runner lingers after the first queued
	// edit to let near-simultaneous requests coalesce (the maxWait bound of
	// the batcher). 0 means the default 2ms; negative disables the linger —
	// batches then form only from requests arriving while a previous batch
	// is solving (group commit).
	BatchWait time.Duration

	// MaxStreams bounds concurrent streaming connections
	// (GET /v1/sessions/{id}/stream); past it streams are shed with 429
	// stream_limit. Streams are exempt from MaxInflight/MaxSessionInflight.
	// 0 means the default 256; negative disables the bound.
	MaxStreams int
	// StreamHeartbeat is the idle keep-alive period of streaming
	// connections (`: ping` comments). 0 means the default 15s.
	StreamHeartbeat time.Duration

	// SnapshotRetryMin and SnapshotRetryMax bound the capped exponential
	// backoff of asynchronous snapshot-write retries. Zero values mean the
	// defaults 100ms and 10s.
	SnapshotRetryMin time.Duration
	SnapshotRetryMax time.Duration
	// SnapshotRetryQueue bounds how many sessions may be queued for an
	// asynchronous snapshot retry at once (the periodic flush is the
	// backstop past the bound). 0 means the default 256; negative disables
	// the retry queue.
	SnapshotRetryQueue int

	// now overrides the clock in tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Engine == nil {
		c.Engine = aapsm.NewEngine()
	}
	if c.StoreCapacity == 0 {
		c.StoreCapacity = 1024
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 30 * time.Minute
	}
	if c.SessionTTL < 0 {
		c.SessionTTL = 0 // store interprets 0 as "no expiry"
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.RequestTimeout < 0 {
		c.RequestTimeout = 0
	}
	if c.DetectWorkers <= 0 {
		c.DetectWorkers = 1
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 30 * time.Second
	}
	if c.FlushInterval < 0 {
		c.FlushInterval = 0
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 256
	}
	if c.MaxInflight < 0 {
		c.MaxInflight = 0
	}
	if c.QueueWait == 0 {
		c.QueueWait = time.Second
	}
	if c.QueueWait < 0 {
		c.QueueWait = 0
	}
	if c.MaxSessionInflight == 0 {
		c.MaxSessionInflight = 16
	}
	if c.MaxSessionInflight < 0 {
		c.MaxSessionInflight = 0
	}
	if c.BatchMax == 0 {
		c.BatchMax = 32
	}
	if c.BatchMax < 0 {
		c.BatchMax = 1
	}
	if c.BatchWait == 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.BatchWait < 0 {
		c.BatchWait = 0
	}
	if c.MaxStreams == 0 {
		c.MaxStreams = 256
	}
	if c.MaxStreams < 0 {
		c.MaxStreams = 0
	}
	if c.StreamHeartbeat <= 0 {
		c.StreamHeartbeat = 15 * time.Second
	}
	if c.SnapshotRetryMin <= 0 {
		c.SnapshotRetryMin = 100 * time.Millisecond
	}
	if c.SnapshotRetryMax <= 0 {
		c.SnapshotRetryMax = 10 * time.Second
	}
	if c.SnapshotRetryMax < c.SnapshotRetryMin {
		c.SnapshotRetryMax = c.SnapshotRetryMin
	}
	if c.SnapshotRetryQueue == 0 {
		c.SnapshotRetryQueue = 256
	}
	if c.SnapshotRetryQueue < 0 {
		c.SnapshotRetryQueue = 0
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Server is the aapsmd request handler plus its session store and metrics.
// Create with New, mount Handler on an http.Server, and call BeginDrain
// before http.Server.Shutdown, then FlushAll and Close once drained.
type Server struct {
	cfg     Config
	store   *sessionStore
	metrics *metrics
	mux     *http.ServeMux
	stop    chan struct{}

	// Admission semaphore (nil when admission control is disabled), the
	// concurrent-stream bound, the bounded async snapshot-retry queue, and
	// the persistence health the readiness probe reports.
	sem       chan struct{}
	streamSem chan struct{}
	retry     snapRetry
	health    storeHealth

	// Snapshot index: which snapshot the store holds per session ID, and —
	// for pristine snapshots — per content hash, loaded from
	// cfg.Snapshots.List at startup and maintained on every write/delete.
	// rehydrating single-flights concurrent restores of one session ID.
	snapMu      sync.Mutex
	snapByID    map[string]persist.Ref
	snapByHash  map[string]persist.Ref
	rehydrating map[string]*rehydrateCall

	// Per-profile engine cache: sessions created with ?profile= run under an
	// engine configured from the named registry profile but sharing every
	// other knob of the base engine. Keyed by profile name.
	engMu   sync.Mutex
	engines map[string]*aapsm.Engine
}

// rehydrateCall is one in-flight snapshot restore other requests for the
// same session wait on.
type rehydrateCall struct{ done chan struct{} }

// New builds a Server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		metrics:     newMetrics(cfg.now()),
		mux:         http.NewServeMux(),
		stop:        make(chan struct{}),
		snapByID:    make(map[string]persist.Ref),
		snapByHash:  make(map[string]persist.Ref),
		rehydrating: make(map[string]*rehydrateCall),
		engines:     make(map[string]*aapsm.Engine),
	}
	s.retry.pending = make(map[string]int)
	if cfg.MaxInflight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInflight)
	}
	if cfg.MaxStreams > 0 {
		s.streamSem = make(chan struct{}, cfg.MaxStreams)
	}
	s.store = newSessionStore(cfg.StoreCapacity, cfg.SessionTTL, cfg.now, s.onEvict)
	s.store.slotCap = cfg.MaxSessionInflight
	if cfg.Snapshots != nil {
		if refs, err := cfg.Snapshots.List(); err == nil {
			for _, ref := range refs {
				s.snapByID[ref.ID] = ref
				if !ref.Edited {
					s.snapByHash[ref.Hash] = ref
				}
			}
		}
	}
	s.routes()
	go s.sweepLoop()
	if cfg.Snapshots != nil && cfg.FlushInterval > 0 {
		go s.flushLoop()
	}
	return s
}

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain flips the server into draining mode: /healthz starts answering
// 503 so load balancers stop routing new work, while in-flight and
// still-arriving requests keep being served until the caller's
// http.Server.Shutdown completes the connection drain.
func (s *Server) BeginDrain() { s.metrics.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.metrics.draining.Load() }

// Close releases the background sweeper and flusher. The server must not be
// used after Close.
func (s *Server) Close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
}

// Sessions returns the live session count.
func (s *Server) Sessions() int { return s.store.len() }

// FlushAll snapshots every live session to the snapshot store (no-op
// without one). aapsmd calls it after the connection drain so a graceful
// shutdown persists even sessions that were never evicted. A session whose
// write fails is queued for an asynchronous retry; the next periodic flush
// is the backstop when the queue is full.
func (s *Server) FlushAll() {
	if s.cfg.Snapshots == nil {
		return
	}
	for _, e := range s.store.snapshotEntries() {
		if s.snapshotWrite(e) != nil {
			s.scheduleRetry(e.ID)
		}
		s.store.release(e)
	}
}

// flushLoop periodically persists live sessions so a crash loses at most
// one flush interval of session work.
func (s *Server) flushLoop() {
	t := time.NewTicker(s.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.FlushAll()
		case <-s.stop:
			return
		}
	}
}

// onEvict is the store's eviction callback: metrics, then — with
// persistence configured — a final snapshot (LRU/TTL) or snapshot removal
// (explicit delete). It runs outside the store mutex and only after the
// last in-flight request released the entry, so taking the session lock
// here is safe.
func (s *Server) onEvict(e *sessionEntry, why evictReason) {
	s.metrics.evicted(why)
	if s.cfg.Snapshots == nil {
		return
	}
	if why == evictExplicit {
		s.snapshotDelete(e.ID)
		return
	}
	if s.snapshotWrite(e) != nil {
		// Graceful degradation: the store refused the snapshot, so evicting
		// now would lose the session. Readmit it pinned (exempt from LRU and
		// TTL eviction) and retry the write asynchronously; the first
		// successful write unpins it.
		if s.store.readmit(e) {
			s.scheduleRetry(e.ID)
		}
	}
}

// snapshotWrite persists one session and updates the snapshot index.
func (s *Server) snapshotWrite(e *sessionEntry) error {
	data, err := e.Sess.Snapshot()
	if err != nil {
		return err
	}
	ref := persist.Ref{ID: e.ID, Hash: e.Hash, Edited: s.store.isEdited(e)}
	if err := s.cfg.Snapshots.Put(ref, data); err != nil {
		s.metrics.snapshotWriteErrors.Add(1)
		s.health.noteErr(err)
		return err
	}
	s.metrics.snapshotWrites.Add(1)
	s.health.noteOK()
	// A successful write releases any degraded-mode state the session
	// accumulated: the persistence pin and its retry-queue slot.
	s.store.unpin(e)
	s.clearRetry(e.ID)
	s.snapMu.Lock()
	if old, ok := s.snapByID[ref.ID]; ok && !old.Edited && ref.Edited {
		if cur, ok := s.snapByHash[old.Hash]; ok && cur.ID == ref.ID {
			delete(s.snapByHash, old.Hash)
		}
	}
	s.snapByID[ref.ID] = ref
	if !ref.Edited {
		s.snapByHash[ref.Hash] = ref
	}
	s.snapMu.Unlock()
	return nil
}

// snapshotDelete removes a session's snapshot (explicit session deletion).
func (s *Server) snapshotDelete(id string) {
	s.snapMu.Lock()
	ref, ok := s.snapByID[id]
	if ok {
		delete(s.snapByID, id)
		if cur, ok := s.snapByHash[ref.Hash]; ok && cur.ID == id {
			delete(s.snapByHash, ref.Hash)
		}
	}
	s.snapMu.Unlock()
	if ok {
		s.cfg.Snapshots.Delete(ref)
	}
}

// dropSnapshot forgets an unusable (corrupt, version-skewed, or
// configuration-mismatched) snapshot so requests stop retrying it.
func (s *Server) dropSnapshot(ref persist.Ref) {
	s.metrics.snapshotCorrupt.Add(1)
	s.snapMu.Lock()
	if cur, ok := s.snapByID[ref.ID]; ok && cur == ref {
		delete(s.snapByID, ref.ID)
	}
	if cur, ok := s.snapByHash[ref.Hash]; ok && cur.ID == ref.ID {
		delete(s.snapByHash, ref.Hash)
	}
	s.snapMu.Unlock()
}

// pristineSnapshotFor returns the pristine snapshot ref for a content hash,
// if the index has one.
func (s *Server) pristineSnapshotFor(hash string) (persist.Ref, bool) {
	if s.cfg.Snapshots == nil {
		return persist.Ref{}, false
	}
	s.snapMu.Lock()
	ref, ok := s.snapByHash[hash]
	s.snapMu.Unlock()
	return ref, ok
}

// rehydrate restores session id from its snapshot and adopts it into the
// live store under its original ID. Concurrent rehydrations of the same ID
// single-flight; the returned entry (when ok) is acquired and must be
// released by the caller. A failed restore counts the snapshot corrupt and
// forgets it.
func (s *Server) rehydrate(ctx context.Context, id string) (*sessionEntry, bool) {
	if s.cfg.Snapshots == nil {
		return nil, false
	}
	for {
		s.snapMu.Lock()
		ref, ok := s.snapByID[id]
		if !ok {
			s.snapMu.Unlock()
			return nil, false
		}
		if call, inflight := s.rehydrating[id]; inflight {
			s.snapMu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, false
			}
			// The leader adopted (or dropped) the snapshot; a live lookup
			// resolves the former, a fresh spin of the loop the latter.
			if ent, ok := s.store.get(id); ok {
				return ent, true
			}
			continue
		}
		call := &rehydrateCall{done: make(chan struct{})}
		s.rehydrating[id] = call
		s.snapMu.Unlock()

		ent, ok := s.rehydrateLeader(ctx, id, ref)
		s.snapMu.Lock()
		delete(s.rehydrating, id)
		s.snapMu.Unlock()
		close(call.done)
		return ent, ok
	}
}

// engineFor resolves the engine serving a rules profile: the shared base
// engine for "" or its own profile, a cached per-profile engine otherwise. A
// derived engine inherits every non-rules knob (graph kind, T-join method,
// recheck mode, parallelism) from the base; an unknown profile name returns
// the registry's typed error.
func (s *Server) engineFor(profile string) (*aapsm.Engine, error) {
	base := s.cfg.Engine
	if profile == "" || profile == base.Profile() {
		return base, nil
	}
	s.engMu.Lock()
	defer s.engMu.Unlock()
	if e, ok := s.engines[profile]; ok {
		return e, nil
	}
	opt := base.DetectOptions()
	e := aapsm.NewEngine(
		aapsm.WithProfile(profile),
		aapsm.WithGraph(opt.Graph),
		aapsm.WithTJoinMethod(opt.Method),
		aapsm.WithImprovedRecheck(opt.ImprovedRecheck),
		aapsm.WithParallelism(base.Parallelism()),
	)
	if err := e.Err(); err != nil {
		return nil, err
	}
	s.engines[profile] = e
	return e, nil
}

// rehydrateLeader is the winning flight's restore: read the snapshot bytes,
// rebuild the session, adopt it under its original ID. The snapshot names
// the rules profile it was taken under, so the restore routes to the
// matching per-profile engine.
func (s *Server) rehydrateLeader(ctx context.Context, id string, ref persist.Ref) (*sessionEntry, bool) {
	// A concurrent request may have adopted the session between this
	// request's store miss and winning the flight.
	if ent, ok := s.store.get(id); ok {
		return ent, true
	}
	data, err := s.cfg.Snapshots.Get(ref)
	if err != nil {
		s.dropSnapshot(ref)
		return nil, false
	}
	profile, err := aapsm.SnapshotProfile(data)
	if err != nil {
		s.dropSnapshot(ref)
		return nil, false
	}
	eng, err := s.engineFor(profile)
	if err != nil {
		// The snapshot names a profile this build's registry does not have;
		// it can never restore here.
		s.dropSnapshot(ref)
		return nil, false
	}
	start := time.Now()
	sess, err := eng.RestoreSessionWithParallelism(ctx, data, s.cfg.DetectWorkers)
	if err != nil {
		// A cancelled restore says nothing about the snapshot; anything
		// else (corrupt, version skew, configuration mismatch) does.
		if ctx.Err() == nil {
			s.dropSnapshot(ref)
		}
		return nil, false
	}
	s.metrics.snapshotRestores.Add(1)
	s.metrics.observeRestore(time.Since(start))
	ent, _ := s.store.adopt(ref.ID, ref.Hash, ref.Edited, sess)
	return ent, true
}

func (s *Server) routes() {
	// Probes and metrics are exempt from admission control: an overloaded
	// instance must still answer its orchestrator.
	s.mux.HandleFunc("GET /healthz", s.route("healthz", false, s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.route("readyz", false, s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.route("metrics", false, s.handleMetrics))
	s.mux.HandleFunc("POST /v1/sessions", s.route("create", true, s.handleCreate))
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.route("info", true, s.session(s.handleInfo)))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.route("delete", true, s.handleDelete))
	s.mux.HandleFunc("POST /v1/sessions/{id}/edits", s.route("edits", true, s.session(s.handleEdits)))
	s.mux.HandleFunc("POST /v1/sessions/{id}/flush", s.route("flush", true, s.session(s.handleFlush)))
	// Read stages go through the per-stage single-flight: identical requests
	// at one session generation compute and encode the response once.
	s.mux.HandleFunc("GET /v1/sessions/{id}/detect", s.route("detect", true, s.session(s.coalesced("detect", s.handleDetect))))
	s.mux.HandleFunc("GET /v1/sessions/{id}/assign", s.route("assign", true, s.session(s.coalesced("assign", s.handleAssign))))
	s.mux.HandleFunc("GET /v1/sessions/{id}/correct", s.route("correct", true, s.session(s.coalesced("correct", s.handleCorrect))))
	s.mux.HandleFunc("GET /v1/sessions/{id}/drc", s.route("drc", true, s.session(s.coalesced("drc", s.handleDRC))))
	s.mux.HandleFunc("GET /v1/sessions/{id}/mask", s.route("mask", true, s.session(s.coalesced("mask", s.handleMask))))
	s.mux.HandleFunc("GET /v1/sessions/{id}/layout", s.route("layout", true, s.session(s.coalesced("layout", s.handleLayout))))
	s.mux.HandleFunc("GET /v1/sessions/{id}/svg", s.route("svg", true, s.session(s.coalesced("svg", s.handleSVG))))
	// Streams are long-lived: no global admission slot, no per-session slot,
	// no request timeout — bounded instead by MaxStreams and the client.
	s.mux.HandleFunc("GET /v1/sessions/{id}/stream", s.routeStream("stream", s.sessionWith(s.handleStream, false)))
}

// route wraps a handler with the cross-cutting serving concerns: panic
// isolation, admission control (when admit is set), in-flight accounting,
// the per-request pipeline timeout, and request metrics keyed by a stable
// route name (not the raw path, which would explode label cardinality).
func (s *Server) route(name string, admit bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		// Panic isolation: one broken request must not kill the daemon and
		// every other session with it. The recover turns the panic into a
		// typed 500 when the response has not started yet.
		defer func() {
			if v := recover(); v != nil {
				s.metrics.panicsHandler.Add(1)
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "panic", "", "",
						fmt.Sprintf("handler panic: %v", v))
				}
			}
			s.metrics.observe(name, sw.code, time.Since(start))
		}()
		if admit && s.sem != nil {
			if !s.admitRequest(sw, r) {
				return
			}
			defer func() { <-s.sem }()
		}
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(sw, r)
	}
}

// routeStream wraps the streaming endpoint: panic isolation and request
// metrics like route, but no admission slot and no request timeout — a
// stream is long-lived by design and is bounded by MaxStreams instead.
func (s *Server) routeStream(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if v := recover(); v != nil {
				s.metrics.panicsHandler.Add(1)
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "panic", "", "",
						fmt.Sprintf("handler panic: %v", v))
				}
			}
			s.metrics.observe(name, sw.code, time.Since(start))
		}()
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		h(sw, r)
	}
}

// admitRequest takes a global admission slot, queueing for up to
// cfg.QueueWait when the server is saturated. A request that cannot be
// admitted is shed with a typed 429 and a Retry-After derived from recently
// observed queue waits; an admitted request that had to queue reports its
// wait in the X-Aapsmd-Queue-Wait header and the queue-wait metrics. A
// client that disconnected while queueing is answered without Retry-After
// and counted separately (scope="client_gone") so disconnects do not pollute
// the overload signal.
func (s *Server) admitRequest(w http.ResponseWriter, r *http.Request) bool {
	return s.admitSem(w, r, s.sem, "overloaded",
		"server is at its in-flight request limit; retry shortly")
}

// admitSem is the admission core shared by the global semaphore and the
// per-session slot channels: immediate grab, bounded queue wait, then shed.
func (s *Server) admitSem(w http.ResponseWriter, r *http.Request, sem chan struct{}, code, msg string) bool {
	select {
	case sem <- struct{}{}:
		return true
	default:
	}
	if s.cfg.QueueWait <= 0 {
		s.shed(w, code, msg)
		return false
	}
	waitStart := time.Now()
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case sem <- struct{}{}:
		wait := time.Since(waitStart)
		s.metrics.observeQueueWait(wait)
		w.Header().Set("X-Aapsmd-Queue-Wait", wait.String())
		return true
	case <-t.C:
		// A timed-out wait IS an observed queue wait of the full budget;
		// feeding it into the Retry-After signal is what makes backoff grow
		// with saturation.
		s.metrics.noteQueueWait(s.cfg.QueueWait)
		s.shed(w, code, msg)
		return false
	case <-r.Context().Done():
		// The client is gone: answer without Retry-After (nobody is
		// listening) and keep it out of the overload counters — a wave of
		// disconnects is not saturation.
		s.metrics.shedClientGone.Add(1)
		writeError(w, http.StatusTooManyRequests, "client_gone", "", "",
			"request cancelled while queued for an admission slot")
		return false
	}
}

// shed rejects a request the admission layer could not seat. Retry-After is
// derived from the recently observed queue waits (rounded up to whole
// seconds, capped) so clients back off proportionally to actual saturation
// instead of a hardcoded constant.
func (s *Server) shed(w http.ResponseWriter, code, msg string) {
	if code == "session_busy" {
		s.metrics.shedSession.Add(1)
	} else {
		s.metrics.shedGlobal.Add(1)
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.metrics.retryAfterSecs()))
	writeError(w, http.StatusTooManyRequests, code, "", "", msg)
}

// session resolves the {id} path component to a stored session —
// rehydrating it from its snapshot if it is not live — before invoking the
// handler, and folds the request's incremental work profile delta into the
// per-stage reuse metrics afterwards. The entry is held (refcounted) for
// the duration of the handler, so a concurrent evict can never tear the
// session out from under the request. (Concurrent requests to the same
// session can observe overlapping deltas — the counters are operational
// telemetry, not an exact ledger.)
func (s *Server) session(h func(http.ResponseWriter, *http.Request, *sessionEntry)) http.HandlerFunc {
	return s.sessionWith(h, true)
}

// sessionWith is session with the per-session admission slot optional:
// streaming connections resolve the session but must not pin a slot for
// their whole lifetime (they would starve the very edits they watch).
func (s *Server) sessionWith(h func(http.ResponseWriter, *http.Request, *sessionEntry), useSlot bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		ent, ok := s.store.get(id)
		if !ok {
			ent, ok = s.rehydrate(r.Context(), id)
		}
		if !ok {
			writeError(w, http.StatusNotFound, "unknown_session", "", "",
				"no live session "+strconv.Quote(id)+" (expired, evicted, or never created)")
			return
		}
		defer s.store.release(ent)
		// Per-session admission: one hot session must not monopolize the
		// global in-flight budget. Saturated sessions queue with the same
		// bounded wait (timer/cancel logic) as the global semaphore.
		if useSlot && ent.slots != nil {
			if !s.admitSem(w, r, ent.slots, "session_busy",
				"session "+strconv.Quote(id)+" is at its concurrent request limit; retry shortly") {
				return
			}
			defer func() { <-ent.slots }()
		}
		before := ent.Sess.Stats().Incremental
		h(w, r, ent)
		s.metrics.observeReuse(before, ent.Sess.Stats().Incremental)
	}
}

// statusWriter records the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the wrapped writer so http.ResponseController can reach
// Flush on the real connection — the streaming endpoint depends on it.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// sweepLoop expires idle sessions in the background.
func (s *Server) sweepLoop() {
	if s.cfg.SessionTTL <= 0 {
		return
	}
	period := s.cfg.SessionTTL / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.store.sweep()
		case <-s.stop:
			return
		}
	}
}
