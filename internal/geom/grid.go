package geom

import (
	"slices"
	"sort"
)

// Grid is a uniform spatial hash over int64 space used to prune candidate
// pairs for rectangle-proximity and segment-crossing queries. Items are
// referenced by dense integer ids supplied by the caller.
//
// The entry set is kept as a sorted (cell, id) base array plus pending
// insert/remove logs; the first query after a mutation sorts only the
// pending logs and folds them into the base in one merge pass. One-shot
// build-then-sweep callers (insert everything, enumerate pairs) pay a single
// sort exactly as before, while long-lived callers — the incremental
// detection engine keeps a feature grid alive across edits — pay
// O(k log k + n) per batch of k edits instead of re-sorting the whole log.
//
// The zero Grid is not usable; construct with NewGrid. Cell size should be
// on the order of the query distance (rect proximity) or the median segment
// length (crossing detection); a poor choice affects only performance, never
// correctness.
type Grid struct {
	cell int64
	base []gridEntry // sorted by (key, id)
	adds []gridEntry // pending inserts, unsorted
	dels []gridEntry // pending removes, unsorted
}

type gridEntry struct {
	key uint64 // packed (cx, cy)
	id  int32
}

func packCell(cx, cy int32) uint64 {
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

// NewGrid creates a grid with the given cell edge length in nm.
// cell must be positive.
func NewGrid(cell int64) *Grid {
	if cell <= 0 {
		panic("geom: grid cell size must be positive")
	}
	return &Grid{cell: cell}
}

func (g *Grid) cellRange(r Rect) (cx0, cy0, cx1, cy1 int32) {
	return int32(floorDiv(r.X0, g.cell)), int32(floorDiv(r.Y0, g.cell)),
		int32(floorDiv(r.X1, g.cell)), int32(floorDiv(r.Y1, g.cell))
}

// Insert registers id with bounding box r in every cell it overlaps.
func (g *Grid) Insert(id int32, r Rect) {
	cx0, cy0, cx1, cy1 := g.cellRange(r)
	for cx := cx0; cx <= cx1; cx++ {
		for cy := cy0; cy <= cy1; cy++ {
			g.adds = append(g.adds, gridEntry{packCell(cx, cy), id})
		}
	}
	g.maybeCompact()
}

// Remove unregisters an id previously Inserted with the same bounding box r.
// Each Remove cancels exactly one matching Insert; removing an (id, r) pair
// that was never inserted is a no-op for cells no matching entry occupies.
func (g *Grid) Remove(id int32, r Rect) {
	cx0, cy0, cx1, cy1 := g.cellRange(r)
	for cx := cx0; cx <= cx1; cx++ {
		for cy := cy0; cy <= cy1; cy++ {
			g.dels = append(g.dels, gridEntry{packCell(cx, cy), id})
		}
	}
	g.maybeCompact()
}

// compactMinPending is the pending-log size below which mutations never
// trigger a compaction, so one-shot build-then-sweep callers still pay a
// single sort at the first query.
const compactMinPending = 1 << 10

// maybeCompact folds the pending logs into the base once they grow past a
// threshold. Without it a long-lived grid mutated in Insert/Remove cycles
// that are never interleaved with queries — exactly what an idle session's
// edit stream looks like — accumulates an unbounded log: cancelled pairs are
// only discarded by build. Folding when the log reaches a fraction of the
// base keeps memory proportional to the live entry count and amortizes the
// O(base) merge over the edits that filled the log.
func (g *Grid) maybeCompact() {
	pending := len(g.adds) + len(g.dels)
	if pending >= compactMinPending && pending >= len(g.base)/4 {
		g.build()
	}
}

// Len returns the number of live entries (cell registrations) after folding
// pending mutations.
func (g *Grid) Len() int {
	g.build()
	return len(g.base)
}

func entryLess(a, b gridEntry) int {
	if a.key != b.key {
		if a.key < b.key {
			return -1
		}
		return 1
	}
	return int(a.id) - int(b.id)
}

// build folds the pending insert/remove logs into the sorted base so each
// cell's ids form one contiguous run (ties by id for determinism).
func (g *Grid) build() {
	if len(g.adds) == 0 && len(g.dels) == 0 {
		return
	}
	slices.SortFunc(g.adds, entryLess)
	if len(g.dels) == 0 && len(g.base) == 0 {
		// Common one-shot path: the sorted adds are the base.
		g.base, g.adds = g.adds, nil
		return
	}
	slices.SortFunc(g.dels, entryLess)
	merged := make([]gridEntry, 0, len(g.base)+len(g.adds))
	bi, ai, di := 0, 0, 0
	next := func() (gridEntry, bool) {
		switch {
		case bi < len(g.base) && (ai >= len(g.adds) || entryLess(g.base[bi], g.adds[ai]) <= 0):
			e := g.base[bi]
			bi++
			return e, true
		case ai < len(g.adds):
			e := g.adds[ai]
			ai++
			return e, true
		}
		return gridEntry{}, false
	}
	for {
		e, ok := next()
		if !ok {
			break
		}
		// Skip removes with no matching live entry, then let each remaining
		// remove cancel one identical live entry.
		for di < len(g.dels) && entryLess(g.dels[di], e) < 0 {
			di++
		}
		if di < len(g.dels) && g.dels[di] == e {
			di++
			continue
		}
		merged = append(merged, e)
	}
	g.base, g.adds, g.dels = merged, nil, nil
}

// cellRun returns the [lo, hi) entry range of the cell, via binary search.
func (g *Grid) cellRun(key uint64) (int, int) {
	lo := sort.Search(len(g.base), func(i int) bool { return g.base[i].key >= key })
	hi := lo
	for hi < len(g.base) && g.base[hi].key == key {
		hi++
	}
	return lo, hi
}

// Query calls fn once per distinct id whose inserted bounds overlap a cell
// touched by r. The same id is never reported twice per call; candidates are
// a superset of true hits and must be filtered by the caller. seen is scratch
// storage reused across calls when non-nil: it must have capacity for all
// ids and be all-false on entry (Query resets it before returning). When
// seen is nil, ids are deduplicated internally.
func (g *Grid) Query(r Rect, seen []bool, fn func(id int32)) {
	g.build()
	cx0, cy0, cx1, cy1 := g.cellRange(r)
	var touched []int32
	var local map[int32]bool
	if seen == nil {
		local = make(map[int32]bool)
	}
	for cx := cx0; cx <= cx1; cx++ {
		for cy := cy0; cy <= cy1; cy++ {
			lo, hi := g.cellRun(packCell(cx, cy))
			for _, e := range g.base[lo:hi] {
				if seen != nil {
					if seen[e.id] {
						continue
					}
					seen[e.id] = true
					touched = append(touched, e.id)
				} else {
					if local[e.id] {
						continue
					}
					local[e.id] = true
				}
				fn(e.id)
			}
		}
	}
	for _, id := range touched {
		seen[id] = false
	}
}

// ForEachPair calls fn for every unordered candidate pair (i < j) that share
// at least one grid cell. Pairs are deduplicated (collected, sorted and
// uniqued, so memory is proportional to the candidate count).
func (g *Grid) ForEachPair(fn func(i, j int32)) {
	g.build()
	nPairs := 0
	for lo := 0; lo < len(g.base); {
		hi := lo + 1
		for hi < len(g.base) && g.base[hi].key == g.base[lo].key {
			hi++
		}
		n := hi - lo
		nPairs += n * (n - 1) / 2
		lo = hi
	}
	pairs := make([]uint64, 0, nPairs)
	for lo := 0; lo < len(g.base); {
		hi := lo + 1
		key := g.base[lo].key
		for hi < len(g.base) && g.base[hi].key == key {
			hi++
		}
		run := g.base[lo:hi]
		for a := 0; a < len(run); a++ {
			for b := a + 1; b < len(run); b++ {
				i, j := run[a].id, run[b].id
				if i == j {
					continue
				}
				if i > j {
					i, j = j, i
				}
				pairs = append(pairs, uint64(i)<<32|uint64(uint32(j)))
			}
		}
		lo = hi
	}
	slices.Sort(pairs)
	var prev uint64
	for k, p := range pairs {
		if k > 0 && p == prev {
			continue
		}
		prev = p
		fn(int32(p>>32), int32(uint32(p)))
	}
}

// floorDiv divides rounding toward negative infinity, so the grid is
// well-defined for negative coordinates.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}
