// Command benchtab regenerates the paper's evaluation artifacts on the
// synthetic benchmark suite:
//
//	benchtab -table 1 -n 5      # Table 1: conflict detection comparison
//	benchtab -table 2 -n 5      # Table 2: layout modification results
//	benchtab -fig 2             # Figure 2: PCG vs FG graph statistics
//	benchtab -fig 3             # Figures 3/4: gadget construction sizes
//	benchtab -json BENCH_detect.json -n 5 -workers 4
//	                            # machine-readable detection perf trajectory
//
// -n limits the number of suite designs (d1..dN); the full d8 run covers
// ~160K polygons and takes a few minutes.
//
// The -json mode runs the sharded detection flow on each design and writes
// graph sizes, per-stage nanoseconds and allocation counts to the given
// file (see README "Performance" for the schema), so successive PRs leave a
// comparable perf trajectory in the repository.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	aapsm "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	var (
		table    = flag.Int("table", 0, "paper table to regenerate (1 or 2)")
		fig      = flag.Int("fig", 0, "paper figure to regenerate (2, 3/4)")
		n        = flag.Int("n", 5, "number of suite designs to run (1..8)")
		jsonPath = flag.String("json", "", "write the detection perf trajectory to this file (e.g. BENCH_detect.json)")
		workers  = flag.Int("workers", 0, "detection worker count for -json (0 = GOMAXPROCS)")
	)
	flag.Parse()
	rules := aapsm.Default90nmRules()
	suite := bench.SmallSuite(*n)

	switch {
	case *jsonPath != "":
		check(writeDetectJSON(*jsonPath, suite, rules, *workers))
		fmt.Printf("wrote %s (%d designs)\n", *jsonPath, len(suite))
	case *table == 1:
		fmt.Println("Table 1: AAPSM conflict detection (quality and matching runtime)")
		fmt.Println(experiments.Table1Header())
		var avgGain float64
		for _, d := range suite {
			row, err := experiments.RunTable1Row(d, rules)
			check(err)
			fmt.Println(row)
			avgGain += row.Improvement()
		}
		fmt.Printf("average generalized-gadget matching gain: %.1f%% (paper: ~16%%)\n",
			avgGain/float64(len(suite)))

	case *table == 2:
		fmt.Println("Table 2: layout modification for a variety of designs")
		fmt.Println(experiments.Table2Header())
		minInc, maxInc, sum := 1e18, -1e18, 0.0
		for _, d := range suite {
			row, err := experiments.RunTable2Row(d, rules)
			check(err)
			fmt.Println(row)
			if row.AreaIncrease < minInc {
				minInc = row.AreaIncrease
			}
			if row.AreaIncrease > maxInc {
				maxInc = row.AreaIncrease
			}
			sum += row.AreaIncrease
		}
		fmt.Printf("area increase range %.2f%%..%.2f%%, average %.2f%% (paper: 0.7–11.8%%, avg ~4%%)\n",
			minInc, maxInc, sum/float64(len(suite)))

	case *fig == 2:
		st, err := experiments.RunFigure2(rules)
		check(err)
		fmt.Println("Figure 2: phase conflict graph vs feature graph (same layout)")
		fmt.Printf("  PCG: %3d nodes %3d edges %3d crossings\n", st.PCGNodes, st.PCGEdges, st.PCGCrossings)
		fmt.Printf("  FG : %3d nodes %3d edges %3d crossings (%d detour bends)\n",
			st.FGNodes, st.FGEdges, st.FGCrossings, st.FGBends)

	case *fig == 3 || *fig == 4:
		fmt.Println("Figures 3/4: gadget instance sizes by dual-node degree")
		fmt.Printf("%8s %18s %18s\n", "degree", "generalized(n/e)", "optimized(n/e)")
		for _, deg := range []int{3, 5, 8, 12, 20} {
			st, err := experiments.RunFigure34(deg)
			check(err)
			fmt.Printf("%8d %12d/%-6d %12d/%-6d\n", st.Degree,
				st.GeneralizedNodes, st.GeneralizedEdges,
				st.OptimizedNodes, st.OptimizedEdges)
		}

	default:
		fmt.Fprintln(os.Stderr, "benchtab: pass -table 1, -table 2, -fig 2 or -fig 3")
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(1)
	}
}

// detectStageNS is the per-stage wall/CPU breakdown of one detection run in
// nanoseconds. Build is graph construction; Cross is the global geometric
// crossing sweep; Planarize/Embed/Match/Recheck are summed across conflict
// clusters (CPU time when workers > 1); Total is wall clock for the flow
// (excluding Build).
type detectStageNS struct {
	Build     int64 `json:"build"`
	Cross     int64 `json:"cross"`
	Planarize int64 `json:"planarize"`
	Embed     int64 `json:"embed"`
	Match     int64 `json:"match"`
	Recheck   int64 `json:"recheck"`
	Total     int64 `json:"total"`
}

// detectRecord is one design's row in BENCH_detect.json.
type detectRecord struct {
	Name              string        `json:"name"`
	Polygons          int           `json:"polygons"`
	GraphNodes        int           `json:"graph_nodes"`
	GraphEdges        int           `json:"graph_edges"`
	CrossingPairs     int           `json:"crossing_pairs"`
	DualNodes         int           `json:"dual_nodes"`
	DualEdges         int           `json:"dual_edges"`
	OddFaces          int           `json:"odd_faces"`
	GadgetNodes       int           `json:"gadget_nodes"`
	GadgetEdges       int           `json:"gadget_edges"`
	Shards            int           `json:"shards"`
	LargestShardEdges int           `json:"largest_shard_edges"`
	Bipartization     int           `json:"bipartization_edges"`
	Conflicts         int           `json:"conflicts"`
	StageNS           detectStageNS `json:"stage_ns"`
	Allocs            uint64        `json:"allocs"`
	AllocBytes        uint64        `json:"alloc_bytes"`
	// Incremental edit-and-re-detect trajectory (schema v2): best-of-7
	// re-detect latency after a single-feature move on an edit session, the
	// clusters reused from cache on that re-detect, and the speedup vs the
	// full build+detect above.
	EditRedetectNS   int64   `json:"edit_redetect_ns"`
	EditReusedShards int     `json:"edit_reused_shards"`
	EditSpeedup      float64 `json:"edit_speedup"`
}

// detectTrajectory is the top-level BENCH_detect.json document.
type detectTrajectory struct {
	Schema      string         `json:"schema"`
	GeneratedAt string         `json:"generated_at"`
	GoMaxProcs  int            `json:"go_max_procs"`
	Workers     int            `json:"workers"`
	Designs     []detectRecord `json:"designs"`
}

func writeDetectJSON(path string, suite []bench.Design, rules aapsm.Rules, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	doc := detectTrajectory{
		Schema:      "aapsm/bench_detect/v2",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Workers:     workers,
	}
	for _, d := range suite {
		l := bench.Generate(d.Name, d.Params)

		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)

		tBuild := time.Now()
		cg, err := core.BuildGraph(l, rules, core.PCG)
		if err != nil {
			return fmt.Errorf("%s: %v", d.Name, err)
		}
		buildNS := time.Since(tBuild).Nanoseconds()
		det, err := core.Detect(cg, core.Options{Workers: workers})
		if err != nil {
			return fmt.Errorf("%s: %v", d.Name, err)
		}
		runtime.ReadMemStats(&after)

		editNS, editReused, err := measureEditRedetect(d, rules, workers)
		if err != nil {
			return fmt.Errorf("%s: edit redetect: %v", d.Name, err)
		}

		s := det.Stats
		doc.Designs = append(doc.Designs, detectRecord{
			Name:              d.Name,
			Polygons:          len(l.Features),
			GraphNodes:        s.GraphNodes,
			GraphEdges:        s.GraphEdges,
			CrossingPairs:     s.CrossingPairs,
			DualNodes:         s.DualNodes,
			DualEdges:         s.DualEdges,
			OddFaces:          s.OddFaces,
			GadgetNodes:       s.GadgetNodes,
			GadgetEdges:       s.GadgetEdges,
			Shards:            s.Shards,
			LargestShardEdges: s.LargestShardEdges,
			Bipartization:     len(det.BipartizationEdges),
			Conflicts:         len(det.FinalConflicts),
			StageNS: detectStageNS{
				Build:     buildNS,
				Cross:     s.CrossTime.Nanoseconds(),
				Planarize: s.PlanarTime.Nanoseconds(),
				Embed:     s.EmbedTime.Nanoseconds(),
				Match:     s.MatchTime.Nanoseconds(),
				Recheck:   s.RecheckTime.Nanoseconds(),
				Total:     s.TotalTime.Nanoseconds(),
			},
			Allocs:           after.Mallocs - before.Mallocs,
			AllocBytes:       after.TotalAlloc - before.TotalAlloc,
			EditRedetectNS:   editNS,
			EditReusedShards: editReused,
			EditSpeedup:      float64(buildNS+s.TotalTime.Nanoseconds()) / float64(editNS),
		})
		fmt.Printf("%-4s %7d polygons %8d edges %5d shards  total %8.2fms  match %8.2fms  edit-redetect %6.2fms (%.1fx)\n",
			d.Name, len(l.Features), s.GraphEdges, s.Shards,
			float64(s.TotalTime.Nanoseconds())/1e6, float64(s.MatchTime.Nanoseconds())/1e6,
			float64(editNS)/1e6, float64(buildNS+s.TotalTime.Nanoseconds())/float64(editNS))
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}

// measureEditRedetect times the incremental re-detect after a single-feature
// move on an edit session of the design (best of 7 alternating ±10 nm
// moves of the middle feature), and reports the clusters reused on the last
// re-detect.
func measureEditRedetect(d bench.Design, rules aapsm.Rules, workers int) (bestNS int64, reused int, err error) {
	ctx := context.Background()
	eng := aapsm.NewEngine(aapsm.WithRules(rules), aapsm.WithParallelism(workers))
	s := eng.NewSession(bench.Generate(d.Name, d.Params))
	mid := len(s.Layout().Features) / 2
	// Arm the incremental engine, then establish the cluster cache.
	if err := s.EnableEdits(); err != nil {
		return 0, 0, err
	}
	if _, err := s.Detect(ctx); err != nil {
		return 0, 0, err
	}
	for k := 0; k < 7; k++ {
		r := s.Layout().Features[mid].Rect
		delta := int64(10)
		if k%2 == 1 {
			delta = -10
		}
		if err := s.MoveFeature(mid, r.Translate(aapsm.Point{X: delta})); err != nil {
			return 0, 0, err
		}
		t0 := time.Now()
		res, err := s.Detect(ctx)
		if err != nil {
			return 0, 0, err
		}
		if ns := time.Since(t0).Nanoseconds(); bestNS == 0 || ns < bestNS {
			bestNS = ns
		}
		reused = res.Detection.Stats.ReusedShards
	}
	if st := s.Stats().Incremental; st.FallbackDirty != 0 {
		return 0, 0, fmt.Errorf("reuse invariant fallbacks: %+v", st)
	}
	return bestNS, reused, nil
}
