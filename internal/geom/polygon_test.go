package geom

import (
	"math/rand"
	"testing"
)

func checkDecomposition(t *testing.T, pts []Point, wantArea int64) []Rect {
	t.Helper()
	rects, err := DecomposeRectilinear(pts)
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	var sum int64
	for i, r := range rects {
		if r.Empty() {
			t.Fatalf("rect %d empty: %v", i, r)
		}
		sum += r.Area()
		for j := i + 1; j < len(rects); j++ {
			if r.Overlaps(rects[j]) {
				t.Fatalf("rects %d and %d overlap: %v %v", i, j, r, rects[j])
			}
		}
	}
	if sum != wantArea {
		t.Fatalf("area %d, want %d (rects %v)", sum, wantArea, rects)
	}
	return rects
}

func TestDecomposeRectangle(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(10, 0), Pt(10, 5), Pt(0, 5)}
	rects := checkDecomposition(t, pts, 50)
	if len(rects) != 1 || rects[0] != R(0, 0, 10, 5) {
		t.Fatalf("rects = %v", rects)
	}
	// Closed form and reversed orientation.
	closed := append(append([]Point{}, pts...), pts[0])
	checkDecomposition(t, closed, 50)
	rev := []Point{Pt(0, 5), Pt(10, 5), Pt(10, 0), Pt(0, 0)}
	checkDecomposition(t, rev, 50)
}

func TestDecomposeLShape(t *testing.T) {
	// L: 20x10 base with a 10x10 tower on the left.
	pts := []Point{Pt(0, 0), Pt(20, 0), Pt(20, 10), Pt(10, 10), Pt(10, 20), Pt(0, 20)}
	rects := checkDecomposition(t, pts, 20*10+10*10)
	if len(rects) != 2 {
		t.Fatalf("want 2 rects after merge, got %v", rects)
	}
}

func TestDecomposeTShape(t *testing.T) {
	// T: horizontal bar 30x10 on top of a vertical stem 10x20.
	pts := []Point{
		Pt(0, 20), Pt(30, 20), Pt(30, 30), Pt(0, 30), // drawn as closed loop below
	}
	_ = pts
	loop := []Point{
		Pt(10, 0), Pt(20, 0), Pt(20, 20), Pt(30, 20), Pt(30, 30),
		Pt(0, 30), Pt(0, 20), Pt(10, 20),
	}
	checkDecomposition(t, loop, 10*20+30*10)
}

func TestDecomposeUShape(t *testing.T) {
	loop := []Point{
		Pt(0, 0), Pt(30, 0), Pt(30, 20), Pt(20, 20), Pt(20, 10),
		Pt(10, 10), Pt(10, 20), Pt(0, 20),
	}
	checkDecomposition(t, loop, 30*10+2*10*10)
}

func TestDecomposeCollinearAndDuplicateVertices(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(5, 0), Pt(10, 0), Pt(10, 0), Pt(10, 5), Pt(0, 5), Pt(0, 2),
	}
	rects := checkDecomposition(t, pts, 50)
	if len(rects) != 1 {
		t.Fatalf("rects = %v", rects)
	}
}

func TestDecomposeRejectsBad(t *testing.T) {
	cases := [][]Point{
		{Pt(0, 0), Pt(10, 10), Pt(0, 10)}, // diagonal
		{Pt(0, 0), Pt(10, 0)},             // too few
		nil,                               // empty
		{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(20, 10), Pt(20, 0), Pt(30, 0), Pt(30, -10), Pt(0, -10), Pt(0, 0), Pt(5, 5)}, // junk tail diagonal
	}
	for i, pts := range cases {
		if _, err := DecomposeRectilinear(pts); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestDecomposeStaircaseRandom(t *testing.T) {
	// Random staircase polygons: x steps up then close along the top.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(6) + 2
		var pts []Point
		x, y := int64(0), int64(0)
		var area int64
		tops := make([][2]int64, 0, n) // x-range and height per column
		for i := 0; i < n; i++ {
			w := int64(rng.Intn(9) + 1)
			h := int64(rng.Intn(9) + 1)
			// staircase going up: each column [x, x+w) with height cumulative
			pts = append(pts, Pt(x, y))
			y += h
			pts = append(pts, Pt(x, y))
			x += w
			tops = append(tops, [2]int64{w, y})
			_ = tops
		}
		// close: right side down to 0, bottom back to origin
		pts = append(pts, Pt(x, y), Pt(x, 0))
		// area: Σ w_i * cumheight_i
		cum := int64(0)
		xx := int64(0)
		ptsIdx := 0
		_ = ptsIdx
		rngArea := func() int64 {
			a := int64(0)
			cum = 0
			xx = 0
			for i := 0; i < n; i++ {
				w := tops[i][0]
				cum = tops[i][1]
				a += w * cum
				xx += w
			}
			return a
		}
		area = rngArea()
		checkDecomposition(t, pts, area)
	}
}
