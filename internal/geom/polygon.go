package geom

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNotRectilinear is returned for polygons whose edges are not all
// axis-parallel or that are otherwise malformed.
var ErrNotRectilinear = errors.New("geom: polygon is not simple rectilinear")

// DecomposeRectilinear splits a simple rectilinear polygon into
// non-overlapping rectangles that exactly cover it, using horizontal slab
// decomposition. Vertices are given in order (either orientation); the
// closing edge back to the first vertex is implicit. Consecutive duplicate
// and collinear vertices are tolerated; self-intersecting polygons yield
// ErrNotRectilinear.
func DecomposeRectilinear(pts []Point) ([]Rect, error) {
	pts = normalizePolygon(pts)
	if len(pts) < 4 {
		return nil, fmt.Errorf("%w: %d effective vertices", ErrNotRectilinear, len(pts))
	}
	// Validate edges axis-parallel and collect vertical edges + slab ys.
	type vedge struct {
		x      int64
		y0, y1 int64 // y0 < y1
	}
	var vedges []vedge
	ys := make([]int64, 0, len(pts))
	for i, p := range pts {
		q := pts[(i+1)%len(pts)]
		switch {
		case p.X == q.X && p.Y != q.Y:
			lo, hi := p.Y, q.Y
			if lo > hi {
				lo, hi = hi, lo
			}
			vedges = append(vedges, vedge{p.X, lo, hi})
			ys = append(ys, lo, hi)
		case p.Y == q.Y && p.X != q.X:
			// horizontal edge: nothing to record
		default:
			return nil, fmt.Errorf("%w: edge %v-%v is diagonal or degenerate", ErrNotRectilinear, p, q)
		}
	}
	if len(vedges) == 0 {
		return nil, ErrNotRectilinear
	}
	sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
	ys = dedupInt64(ys)

	var out []Rect
	for i := 0; i+1 < len(ys); i++ {
		yLo, yHi := ys[i], ys[i+1]
		// Vertical edges spanning this slab, by x.
		var xs []int64
		for _, e := range vedges {
			if e.y0 <= yLo && e.y1 >= yHi {
				xs = append(xs, e.x)
			}
		}
		if len(xs)%2 != 0 {
			return nil, fmt.Errorf("%w: odd crossing count in slab [%d,%d)", ErrNotRectilinear, yLo, yHi)
		}
		sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
		for k := 0; k+1 < len(xs); k += 2 {
			if xs[k] == xs[k+1] {
				return nil, fmt.Errorf("%w: coincident vertical edges at x=%d", ErrNotRectilinear, xs[k])
			}
			out = append(out, Rect{xs[k], yLo, xs[k+1], yHi})
		}
	}
	if len(out) == 0 {
		return nil, ErrNotRectilinear
	}
	// Sanity: decomposed area must equal the polygon's shoelace area.
	var sum int64
	for _, r := range out {
		sum += r.Area()
	}
	if shoe := Abs(shoelace2(pts)) / 2; shoe != sum {
		return nil, fmt.Errorf("%w: area mismatch (self-intersecting?)", ErrNotRectilinear)
	}
	return mergeVertical(out), nil
}

// normalizePolygon removes an explicit closing vertex, consecutive
// duplicates and collinear middle vertices.
func normalizePolygon(pts []Point) []Point {
	if len(pts) > 1 && pts[0] == pts[len(pts)-1] {
		pts = pts[:len(pts)-1]
	}
	// Remove consecutive duplicates.
	var tmp []Point
	for i, p := range pts {
		if i == 0 || p != tmp[len(tmp)-1] {
			tmp = append(tmp, p)
		}
	}
	if len(tmp) > 1 && tmp[0] == tmp[len(tmp)-1] {
		tmp = tmp[:len(tmp)-1]
	}
	// Remove collinear middles (axis-parallel runs).
	var out []Point
	n := len(tmp)
	for i := 0; i < n; i++ {
		prev := tmp[(i-1+n)%n]
		cur := tmp[i]
		next := tmp[(i+1)%n]
		if (prev.X == cur.X && cur.X == next.X) || (prev.Y == cur.Y && cur.Y == next.Y) {
			continue
		}
		out = append(out, cur)
	}
	return out
}

// shoelace2 returns twice the signed polygon area.
func shoelace2(pts []Point) int64 {
	var s int64
	for i, p := range pts {
		q := pts[(i+1)%len(pts)]
		s += p.Cross(q)
	}
	return s
}

// mergeVertical joins vertically adjacent rectangles sharing an x-range,
// shrinking the decomposition without changing coverage.
func mergeVertical(rs []Rect) []Rect {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].X0 != rs[j].X0 {
			return rs[i].X0 < rs[j].X0
		}
		if rs[i].X1 != rs[j].X1 {
			return rs[i].X1 < rs[j].X1
		}
		return rs[i].Y0 < rs[j].Y0
	})
	var out []Rect
	for _, r := range rs {
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.X0 == r.X0 && last.X1 == r.X1 && last.Y1 == r.Y0 {
				last.Y1 = r.Y1
				continue
			}
		}
		out = append(out, r)
	}
	return out
}

func dedupInt64(a []int64) []int64 {
	out := a[:0]
	for i, v := range a {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
