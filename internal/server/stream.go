package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	aapsm "repro"
)

// The streaming session protocol: GET /v1/sessions/{id}/stream holds one
// chunked response open (Server-Sent Events framing, stdlib only) and pushes
// per-stage results plus reuse stats every time an edit batch commits. An
// interactive editor keeps the stream for results while POSTing edits; the
// edits coalesce through the batcher, and each committed batch wakes every
// stream of the session exactly once.
//
// Wire framing (SSE): each message is
//
//	event: <hello|edit|detect|assign|correct|drc|mask|layout|svg|error|bye>
//	id: <session generation the message was computed at>
//	data: <payload — JSON for hello/edit/error and the JSON stages; raw
//	       text/SVG lines for mask/layout/svg, one data: line per line>
//
// followed by a blank line. Heartbeat comments (`: ping`) keep idle
// connections alive through proxies. Streams are bounded by -stream-max and
// exempt from global/per-session admission (they are long-lived; counting
// them against the request budget would starve the edits they watch).

// streamStages are the read stages a stream may subscribe to, in emit order.
var streamStages = []string{"detect", "assign", "correct", "drc", "mask", "layout", "svg"}

// streamHello is the first event on a stream.
type streamHello struct {
	ID     string   `json:"id"`
	Gen    int64    `json:"gen"`
	Stages []string `json:"stages"`
}

// streamEdit announces a committed edit batch.
type streamEdit struct {
	Gen         int64                  `json:"gen"`
	Edits       int                    `json:"edits"`
	Features    int                    `json:"features"`
	Incremental aapsm.IncrementalStats `json:"incremental"`
}

// streamError wraps a failed stage read.
type streamError struct {
	Stage  string          `json:"stage"`
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body"`
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, ent *sessionEntry) {
	if s.streamSem != nil {
		select {
		case s.streamSem <- struct{}{}:
			defer func() { <-s.streamSem }()
		default:
			s.metrics.streamsRejected.Add(1)
			writeError(w, http.StatusTooManyRequests, "stream_limit", "", "",
				"server is at its concurrent stream limit; retry shortly")
			return
		}
	}
	fl := http.NewResponseController(w)
	stages, err := parseStreamStages(r.URL.Query().Get("stages"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "", "", err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	s.metrics.streamsActive.Add(1)
	defer s.metrics.streamsActive.Add(-1)
	s.metrics.streamsTotal.Add(1)

	heartbeat := s.cfg.StreamHeartbeat
	lastGen := int64(-1)
	for {
		// Fetch the notify channel BEFORE reading the generation: a batch
		// landing between the two is then caught by the select instead of
		// being missed.
		notify := ent.batch.editNotify()
		gen := ent.Sess.Generation()
		if gen != lastGen {
			if err := s.streamEmitGeneration(w, r, ent, stages, gen, lastGen >= 0); err != nil {
				return // client went away
			}
			if fl.Flush() != nil {
				return // connection cannot stream (or went away)
			}
			lastGen = gen
			continue // an edit may have landed while emitting
		}
		if s.Draining() {
			sseEvent(w, "bye", gen, []byte(`{"reason":"draining"}`))
			_ = fl.Flush()
			return
		}
		hb := time.NewTimer(heartbeat)
		select {
		case <-notify:
			hb.Stop()
		case <-hb.C:
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			if fl.Flush() != nil {
				return
			}
		case <-r.Context().Done():
			hb.Stop()
			return
		case <-s.stop:
			hb.Stop()
			return
		}
	}
}

// streamEmitGeneration pushes one generation's worth of events: the hello (or
// edit) header, then every subscribed stage through the read single-flight —
// so a stream and concurrent GETs of the same stage share one computation.
func (s *Server) streamEmitGeneration(w io.Writer, r *http.Request, ent *sessionEntry, stages []string, gen int64, edited bool) error {
	if !edited {
		if err := sseJSON(w, "hello", gen, streamHello{ID: ent.ID, Gen: gen, Stages: stages}); err != nil {
			return err
		}
	} else {
		st := ent.Sess.Stats()
		ev := streamEdit{Gen: gen, Edits: st.Edits, Features: ent.Sess.NumFeatures(), Incremental: st.Incremental}
		if err := sseJSON(w, "edit", gen, ev); err != nil {
			return err
		}
	}
	s.metrics.streamEvents.Add(1)
	for _, stage := range stages {
		h, _ := s.stageHandler(stage)
		req := r.Clone(r.Context())
		req.URL.RawQuery = ""
		code, _, body, ok := s.readCoalesced(req, ent, stage, "", h)
		if !ok {
			return r.Context().Err()
		}
		if code != http.StatusOK {
			if err := sseJSON(w, "error", gen, streamError{Stage: stage, Status: code, Body: json.RawMessage(bytes.TrimSpace(body))}); err != nil {
				return err
			}
			s.metrics.streamEvents.Add(1)
			continue
		}
		if err := sseEvent(w, stage, gen, body); err != nil {
			return err
		}
		s.metrics.streamEvents.Add(1)
	}
	return nil
}

// stageHandler maps a stream/read stage name to its underlying handler.
func (s *Server) stageHandler(stage string) (func(http.ResponseWriter, *http.Request, *sessionEntry), bool) {
	switch stage {
	case "detect":
		return s.handleDetect, true
	case "assign":
		return s.handleAssign, true
	case "correct":
		return s.handleCorrect, true
	case "drc":
		return s.handleDRC, true
	case "mask":
		return s.handleMask, true
	case "layout":
		return s.handleLayout, true
	case "svg":
		return s.handleSVG, true
	}
	return nil, false
}

// parseStreamStages validates the ?stages= list (default: detect).
func parseStreamStages(q string) ([]string, error) {
	if q == "" {
		return []string{"detect"}, nil
	}
	var out []string
	for _, st := range strings.Split(q, ",") {
		st = strings.TrimSpace(st)
		valid := false
		for _, known := range streamStages {
			if st == known {
				valid = true
				break
			}
		}
		if !valid {
			return nil, fmt.Errorf("unknown stage %q (want any of %s)", st, strings.Join(streamStages, ", "))
		}
		out = append(out, st)
	}
	return out, nil
}

// sseEvent writes one Server-Sent Event, framing multi-line payloads (mask
// text, SVG) as consecutive data: lines so the client reassembles them with
// a newline join.
func sseEvent(w io.Writer, event string, id int64, data []byte) error {
	if _, err := fmt.Fprintf(w, "event: %s\nid: %d\n", event, id); err != nil {
		return err
	}
	data = bytes.TrimRight(data, "\n")
	for _, line := range bytes.Split(data, []byte("\n")) {
		if _, err := fmt.Fprintf(w, "data: %s\n", line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// sseJSON marshals v and writes it as one event.
func sseJSON(w io.Writer, event string, id int64, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return sseEvent(w, event, id, data)
}
