package drc

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
)

func rules() layout.Rules { return layout.Default90nm() }

func TestCleanLayout(t *testing.T) {
	l := layout.New("clean")
	l.Add(geom.R(0, 0, 100, 1000))
	l.Add(geom.R(300, 0, 400, 1000)) // spacing 200 >= 140
	if v := Check(l, rules()); len(v) != 0 {
		t.Fatalf("violations on clean layout: %v", v)
	}
	if !Clean(l, rules()) {
		t.Error("Clean should report true")
	}
}

func TestMinWidthViolation(t *testing.T) {
	l := layout.New("thin")
	l.Add(geom.R(0, 0, 50, 1000)) // 50 < 100
	v := Check(l, rules())
	if len(v) != 1 || v[0].Kind != MinWidth || v[0].A != 0 || v[0].B != -1 {
		t.Fatalf("violations = %v", v)
	}
	if v[0].Actual != 50 || v[0].Limit != 100 {
		t.Errorf("actual/limit = %d/%d", v[0].Actual, v[0].Limit)
	}
}

func TestMinSpacingViolation(t *testing.T) {
	l := layout.New("close")
	l.Add(geom.R(0, 0, 100, 1000))
	l.Add(geom.R(200, 0, 300, 1000)) // spacing 100 < 140
	v := Check(l, rules())
	if len(v) != 1 || v[0].Kind != MinSpacing {
		t.Fatalf("violations = %v", v)
	}
	if v[0].Actual != 100 {
		t.Errorf("actual = %d", v[0].Actual)
	}
}

func TestTouchingFeaturesMerge(t *testing.T) {
	l := layout.New("abut")
	l.Add(geom.R(0, 0, 100, 1000))
	l.Add(geom.R(100, 0, 500, 200)) // abuts the first: merged, no violation
	if v := Check(l, rules()); len(v) != 0 {
		t.Fatalf("abutting features must not violate spacing: %v", v)
	}
}

func TestDegenerateFeature(t *testing.T) {
	l := layout.New("deg")
	l.Add(geom.R(5, 5, 5, 500))
	v := Check(l, rules())
	if len(v) != 1 || v[0].Kind != MinWidth {
		t.Fatalf("violations = %v", v)
	}
}

func TestDiagonalSpacingUsesRectilinearSeparation(t *testing.T) {
	l := layout.New("diag")
	l.Add(geom.R(0, 0, 100, 100))
	l.Add(geom.R(220, 220, 320, 320)) // both axis gaps 120 < 140
	v := Check(l, rules())
	if len(v) != 1 || v[0].Kind != MinSpacing || v[0].Actual != 120 {
		t.Fatalf("violations = %v", v)
	}
	// Move one axis clear: legal.
	l2 := layout.New("diag2")
	l2.Add(geom.R(0, 0, 100, 100))
	l2.Add(geom.R(400, 220, 500, 320)) // x gap 300 >= 140
	if v := Check(l2, rules()); len(v) != 0 {
		t.Fatalf("clear diagonal flagged: %v", v)
	}
}
