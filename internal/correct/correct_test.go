package correct

import (
	"testing"

	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/shifter"
)

func rules() layout.Rules { return layout.Default90nm() }

// detect builds the PCG and runs the optimal flow.
func detect(t *testing.T, l *layout.Layout) (*core.ConflictGraph, *core.Detection) {
	t.Helper()
	cg, err := core.BuildGraph(l, rules(), core.PCG)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.Detect(cg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return cg, det
}

// endToEnd runs detect → plan → apply → re-detect and asserts the modified
// layout is phase-assignable and DRC clean.
func endToEnd(t *testing.T, l *layout.Layout) (*Plan, *layout.Layout) {
	t.Helper()
	cg, det := detect(t, l)
	plan, err := BuildPlan(l, rules(), cg.Set, det.FinalConflicts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Unfixable) != 0 {
		t.Fatalf("unexpected unfixable conflicts: %v", plan.Unfixable)
	}
	mod := Apply(l, plan)
	if !drc.Clean(mod, rules()) {
		t.Fatalf("modification introduced DRC errors: %v", drc.Check(mod, rules()))
	}
	ok, err := core.IsPhaseAssignable(mod, rules())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("modified layout must be phase-assignable")
	}
	return plan, mod
}

func TestNoConflictsNoCuts(t *testing.T) {
	l := layout.New("clean")
	l.Add(geom.R(0, 0, 100, 1000))
	l.Add(geom.R(500, 0, 600, 1000))
	cg, det := detect(t, l)
	plan, err := BuildPlan(l, rules(), cg.Set, det.FinalConflicts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cuts) != 0 || plan.AddedWidth != 0 {
		t.Fatalf("plan = %+v", plan)
	}
	mod := Apply(l, plan)
	if mod.BBox() != l.BBox() {
		t.Error("no-op plan must not move anything")
	}
}

func TestDensePairCorrected(t *testing.T) {
	// Two vertical wires at pitch 350: odd cycle; a single vertical space
	// fixes it.
	l := layout.New("pair350")
	l.Add(geom.R(0, 0, 100, 1000))
	l.Add(geom.R(350, 0, 450, 1000))
	plan, mod := endToEnd(t, l)
	if len(plan.Cuts) == 0 {
		t.Fatal("expected at least one cut")
	}
	for _, c := range plan.Cuts {
		if c.Dir != VerticalCut {
			t.Errorf("vertical wires need vertical spaces, got %v", c.Dir)
		}
		if c.Pos <= 100 || c.Pos > 350 {
			t.Errorf("cut at %d should fall between the wires", c.Pos)
		}
	}
	if mod.Area() <= l.Area() {
		t.Error("area must grow")
	}
}

func TestTripleWireSingleSpaceSharing(t *testing.T) {
	// Figure-5 style: several vertically stacked conflict pairs aligned in
	// x — one vertical space should correct multiple conflicts at once.
	l := layout.New("fig5")
	for row := int64(0); row < 4; row++ {
		y := row * 1800
		l.Add(geom.R(0, y, 100, y+1000))
		l.Add(geom.R(350, y, 450, y+1000))
	}
	plan, _ := endToEnd(t, l)
	if plan.MaxPerLine() < 2 {
		t.Errorf("a single line should correct several conflicts, max=%d", plan.MaxPerLine())
	}
	var vcuts int
	for _, c := range plan.Cuts {
		if c.Dir == VerticalCut {
			vcuts++
		}
	}
	if vcuts != len(plan.Cuts) {
		t.Error("all cuts should be vertical here")
	}
}

func TestHorizontalWiresGetHorizontalCuts(t *testing.T) {
	l := layout.New("hpair")
	l.Add(geom.R(0, 0, 1000, 100))
	l.Add(geom.R(0, 350, 1000, 450))
	plan, _ := endToEnd(t, l)
	for _, c := range plan.Cuts {
		if c.Dir != HorizontalCut {
			t.Errorf("horizontal wires need horizontal spaces, got %v", c.Dir)
		}
	}
}

func TestFeatureEdgeConflictUnfixable(t *testing.T) {
	l := layout.New("x")
	l.Add(geom.R(0, 0, 100, 1000))
	set, err := shifter.Generate(l, rules())
	if err != nil {
		t.Fatal(err)
	}
	fake := []core.Conflict{{
		Edge: 0,
		Meta: core.EdgeMeta{Kind: core.FeatureEdge, S1: 0, S2: 1, Feature: 0, Overlap: -1},
	}}
	plan, err := BuildPlan(l, rules(), set, fake)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Unfixable) != 1 || len(plan.Cuts) != 0 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestApplyStretchesSpanningFeatures(t *testing.T) {
	// A horizontal rail spans the cut: its length must stretch so
	// connectivity is preserved.
	l := layout.New("rail")
	l.Add(geom.R(0, 0, 100, 1000))     // vertical wire A
	l.Add(geom.R(350, 0, 450, 1000))   // vertical wire B (conflict with A)
	l.Add(geom.R(0, 1500, 2000, 1600)) // wide horizontal rail, not critical
	cg, det := detect(t, l)
	plan, err := BuildPlan(l, rules(), cg.Set, det.FinalConflicts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cuts) == 0 {
		t.Fatal("expected cuts")
	}
	mod := Apply(l, plan)
	rail := mod.Features[2].Rect
	if rail.Width() != 2000+plan.AddedWidth {
		t.Errorf("rail width %d, want %d", rail.Width(), 2000+plan.AddedWidth)
	}
	if rail.Height() != 100 {
		t.Errorf("rail height changed: %d", rail.Height())
	}
	// Vertical wires keep their widths.
	for i := 0; i < 2; i++ {
		if mod.Features[i].Rect.Width() != 100 {
			t.Errorf("wire %d width changed to %d", i, mod.Features[i].Rect.Width())
		}
	}
}

func TestValidCutAvoidsWidthStretch(t *testing.T) {
	l := layout.New("v")
	l.Add(geom.R(0, 0, 100, 1000)) // vertical feature
	valid := NewCutChecker(l)
	if valid(VerticalCut, 50) {
		t.Error("cut through a vertical feature's x-span must be invalid")
	}
	if !valid(VerticalCut, 0) {
		t.Error("cut at the left edge shifts the whole feature: valid")
	}
	if valid(VerticalCut, 100) {
		t.Error("cut at the right edge would stretch the width")
	}
	if !valid(VerticalCut, 101) {
		t.Error("cut past the feature: valid")
	}
	if !valid(HorizontalCut, 500) {
		t.Error("horizontal cut stretches a vertical feature's length: valid")
	}
}

func TestCutIntervalSignedGap(t *testing.T) {
	// Features at [0,100] and [350,450]; facing shifters [100,300] and
	// [150,350] overlap by 150, so the need is 300+150 = 450.
	iv, need, ok := cutInterval(0, 100, 350, 450, 100, 300, 150, 350, 300)
	if !ok {
		t.Fatal("should be correctable")
	}
	if iv.Lo != 101 || iv.Hi != 350 {
		t.Errorf("interval = %+v", iv)
	}
	if need != 450 {
		t.Errorf("need = %d, want 450", need)
	}
	// Swapped order.
	iv2, need2, ok2 := cutInterval(350, 450, 0, 100, 150, 350, 100, 300, 300)
	if !ok2 || iv2 != iv || need2 != need {
		t.Errorf("swapped = %+v %d %v", iv2, need2, ok2)
	}
	// Overlapping features: not correctable.
	if _, _, ok := cutInterval(0, 100, 50, 200, 0, 0, 0, 0, 300); ok {
		t.Error("overlapping features must not be correctable")
	}
	// Abutting features: not correctable (would tear connectivity).
	if _, _, ok := cutInterval(0, 100, 100, 200, 0, 0, 0, 0, 300); ok {
		t.Error("abutting features must not be correctable")
	}
}

func TestSummarize(t *testing.T) {
	l := layout.New("sum")
	l.Add(geom.R(0, 0, 100, 1000))
	l.Add(geom.R(350, 0, 450, 1000))
	cg, det := detect(t, l)
	plan, _ := BuildPlan(l, rules(), cg.Set, det.FinalConflicts)
	mod := Apply(l, plan)
	st := Summarize(l, plan, mod)
	if st.AreaBefore != l.Area() || st.AreaAfter != mod.Area() {
		t.Error("areas wrong")
	}
	if st.AreaIncrease <= 0 {
		t.Errorf("area increase = %f", st.AreaIncrease)
	}
	if st.Conflicts != len(det.FinalConflicts) || st.Cuts != len(plan.Cuts) {
		t.Error("counts wrong")
	}
}

func TestBuildPlanRestrictedMatchesUnrestricted(t *testing.T) {
	l := layout.New("restr")
	l.Add(geom.R(0, 0, 100, 1000))
	l.Add(geom.R(350, 0, 450, 1000))
	cg, det := detect(t, l)
	free, err := BuildPlanRestricted(l, rules(), cg.Set, det.FinalConflicts, CutRegions{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := BuildPlan(l, rules(), cg.Set, det.FinalConflicts)
	if err != nil {
		t.Fatal(err)
	}
	if len(free.Cuts) != len(base.Cuts) || free.AddedWidth != base.AddedWidth {
		t.Fatalf("unrestricted regions must match BuildPlan: %+v vs %+v", free, base)
	}
}

func TestBuildPlanRestrictedWindows(t *testing.T) {
	l := layout.New("win")
	l.Add(geom.R(0, 0, 100, 1000))
	l.Add(geom.R(350, 0, 450, 1000))
	cg, det := detect(t, l)
	// Window inside the valid interval (101..350): cuts allowed.
	ok, err := BuildPlanRestricted(l, rules(), cg.Set, det.FinalConflicts,
		CutRegions{VerticalX: []geom.Interval{{Lo: 200, Hi: 300}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ok.Cuts) == 0 || len(ok.Unfixable) != 0 {
		t.Fatalf("in-window plan: %+v", ok)
	}
	for _, c := range ok.Cuts {
		if c.Pos < 200 || c.Pos > 300 {
			t.Errorf("cut at %d escapes the window", c.Pos)
		}
	}
	// Window entirely outside: everything unfixable, no cuts.
	blocked, err := BuildPlanRestricted(l, rules(), cg.Set, det.FinalConflicts,
		CutRegions{VerticalX: []geom.Interval{{Lo: 5000, Hi: 6000}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocked.Cuts) != 0 || len(blocked.Unfixable) != len(det.FinalConflicts) {
		t.Fatalf("blocked plan: %+v", blocked)
	}
	// The restricted-but-feasible plan still repairs the layout.
	mod := Apply(l, ok)
	assignable, err := core.IsPhaseAssignable(mod, rules())
	if err != nil {
		t.Fatal(err)
	}
	if !assignable {
		t.Fatal("windowed correction must still fix the layout")
	}
}
