// Correction: the paper's Figure 5 — a single end-to-end vertical space
// corrects multiple AAPSM conflicts at once. The example prints the chosen
// cut lines, shows which conflicts each one fixes, and verifies the widened
// layout.
package main

import (
	"fmt"
	"log"

	aapsm "repro"
)

func main() {
	rules := aapsm.Default90nmRules()
	l := aapsm.Figure5Layout() // five stacked conflict pairs, aligned in x

	res, err := aapsm.Detect(l, rules, aapsm.DetectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%q: %d conflicts detected across %d rows\n",
		l.Name, len(res.Conflicts()), 5)

	cor, err := aapsm.Correct(l, rules, res)
	if err != nil {
		log.Fatal(err)
	}
	for _, cut := range cor.Plan.Cuts {
		fmt.Printf("  %s space at %d nm, width %d nm, corrects %d conflicts\n",
			cut.Dir, cut.Pos, cut.Width, len(cut.Corrects))
	}
	fmt.Printf("max conflicts removed by one line: %d (paper Figure 5's point)\n",
		cor.Plan.MaxPerLine())
	fmt.Printf("area: %.2f µm² -> %.2f µm² (+%.2f%%)\n",
		float64(cor.Stats.AreaBefore)/1e6, float64(cor.Stats.AreaAfter)/1e6,
		cor.Stats.AreaIncrease)

	ok, err := aapsm.Assignable(cor.Layout, rules)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modified layout phase-assignable: %v, DRC violations: %d\n",
		ok, len(aapsm.CheckDRC(cor.Layout, rules)))
}
