package geom

import "sort"

// Grid is a uniform spatial hash over int64 space used to prune candidate
// pairs for rectangle-proximity and segment-crossing queries. Items are
// referenced by dense integer ids supplied by the caller.
//
// The zero Grid is not usable; construct with NewGrid. Cell size should be
// on the order of the query distance (rect proximity) or the median segment
// length (crossing detection); a poor choice affects only performance, never
// correctness.
type Grid struct {
	cell  int64
	cells map[cellKey][]int32
}

type cellKey struct{ cx, cy int32 }

// NewGrid creates a grid with the given cell edge length in nm.
// cell must be positive.
func NewGrid(cell int64) *Grid {
	if cell <= 0 {
		panic("geom: grid cell size must be positive")
	}
	return &Grid{cell: cell, cells: make(map[cellKey][]int32)}
}

func (g *Grid) cellRange(r Rect) (cx0, cy0, cx1, cy1 int32) {
	return int32(floorDiv(r.X0, g.cell)), int32(floorDiv(r.Y0, g.cell)),
		int32(floorDiv(r.X1, g.cell)), int32(floorDiv(r.Y1, g.cell))
}

// Insert registers id with bounding box r in every cell it overlaps.
func (g *Grid) Insert(id int32, r Rect) {
	cx0, cy0, cx1, cy1 := g.cellRange(r)
	for cx := cx0; cx <= cx1; cx++ {
		for cy := cy0; cy <= cy1; cy++ {
			k := cellKey{cx, cy}
			g.cells[k] = append(g.cells[k], id)
		}
	}
}

// Query calls fn once per distinct id whose inserted bounds overlap a cell
// touched by r. The same id is never reported twice per call; candidates are
// a superset of true hits and must be filtered by the caller. seen is scratch
// storage reused across calls when non-nil: it must have capacity for all
// ids and be all-false on entry (Query resets it before returning).
func (g *Grid) Query(r Rect, seen []bool, fn func(id int32)) {
	cx0, cy0, cx1, cy1 := g.cellRange(r)
	var touched []int32
	for cx := cx0; cx <= cx1; cx++ {
		for cy := cy0; cy <= cy1; cy++ {
			for _, id := range g.cells[cellKey{cx, cy}] {
				if seen != nil {
					if seen[id] {
						continue
					}
					seen[id] = true
					touched = append(touched, id)
				}
				fn(id)
			}
		}
	}
	for _, id := range touched {
		seen[id] = false
	}
}

// ForEachPair calls fn for every unordered candidate pair (i < j) that share
// at least one grid cell. Pairs are deduplicated (collected, sorted and
// uniqued, so memory is proportional to the candidate count).
func (g *Grid) ForEachPair(fn func(i, j int32)) {
	var pairs []uint64
	for _, ids := range g.cells {
		for a := 0; a < len(ids); a++ {
			for b := a + 1; b < len(ids); b++ {
				i, j := ids[a], ids[b]
				if i == j {
					continue
				}
				if i > j {
					i, j = j, i
				}
				pairs = append(pairs, uint64(i)<<32|uint64(uint32(j)))
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a] < pairs[b] })
	var prev uint64
	for k, p := range pairs {
		if k > 0 && p == prev {
			continue
		}
		prev = p
		fn(int32(p>>32), int32(uint32(p)))
	}
}

// floorDiv divides rounding toward negative infinity, so the grid is
// well-defined for negative coordinates.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}
