// Package core is a golden stand-in for a pipeline package: it is loaded
// under "repro/internal/core" so the ctxflow dropped-context rule applies.
package core

import "context"

// Solve is the context-less variant.
func Solve(n int) int { return n }

// SolveContext is the context-aware variant.
func SolveContext(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// Fresh invents a context in library code.
func Fresh(n int) int {
	return SolveContext(context.Background(), n) // want `context.Background in library code`
}

// Dropped has a ctx but calls the context-less sibling.
func Dropped(ctx context.Context, n int) int {
	return Solve(n) // want `call to Solve drops ctx: use SolveContext`
}

// Threaded passes its context through: the correct shape.
func Threaded(ctx context.Context, n int) int {
	return SolveContext(ctx, n)
}

// NilCtx passes a nil context.
func NilCtx(n int) int {
	return SolveContext(nil, n) // want `nil passed as context.Context`
}
