// Package matching provides an exact minimum-weight perfect matching solver
// for general graphs, the computational core of the T-join reduction in the
// AAPSM conflict-detection flow (paper §3.1.2).
//
// The implementation is the classical O(V³) primal–dual blossom algorithm
// on a dense edge matrix (Galil's exposition of Edmonds' algorithm). It
// maximizes total weight internally; MinWeightPerfectMatching negates
// weights against a large constant so that any perfect matching dominates
// any non-perfect one and minimum weight is recovered exactly. All
// arithmetic is int64 and weights are doubled internally so dual variables
// stay integral.
package matching

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrNoPerfectMatching is returned when the input graph admits no perfect
// matching (odd node count or structurally unmatchable).
var ErrNoPerfectMatching = errors.New("matching: graph has no perfect matching")

// MaxNodes bounds the solver's dense matrices. Component sizes in the AAPSM
// flow are far below this; the bound exists to fail fast on pathological
// inputs instead of exhausting memory.
const MaxNodes = 4096

// WeightedEdge is an input edge for the solvers.
type WeightedEdge struct {
	U, V   int
	Weight int64
}

// MinWeightPerfectMatching computes an exact minimum-weight perfect matching
// of the undirected graph with n nodes (0-indexed) and the given edges.
// Parallel edges are allowed (the cheapest is used); self-loops are ignored
// (they can never be matched). It returns mate[u] = v for every node and the
// total weight. Weights may be any non-negative int64 small enough that
// n*maxWeight does not overflow.
func MinWeightPerfectMatching(n int, edges []WeightedEdge) (mate []int, total int64, err error) {
	//aapsmvet:allow ctxflow compatibility wrapper for non-cancellable callers; MinWeightPerfectMatchingCtx is the ctx-aware entry point
	return MinWeightPerfectMatchingCtx(context.Background(), n, edges)
}

// MinWeightPerfectMatchingCtx is MinWeightPerfectMatching with cooperative
// cancellation: the solver polls ctx between primal-dual rounds (the O(V³)
// hot loop) and aborts with ctx.Err() once it is done.
func MinWeightPerfectMatchingCtx(ctx context.Context, n int, edges []WeightedEdge) (mate []int, total int64, err error) {
	if n == 0 {
		return nil, 0, nil
	}
	if n%2 != 0 {
		return nil, 0, ErrNoPerfectMatching
	}
	if n > MaxNodes {
		return nil, 0, fmt.Errorf("matching: %d nodes exceeds MaxNodes=%d", n, MaxNodes)
	}
	var maxW int64 = 0
	for _, e := range edges {
		if e.Weight < 0 {
			return nil, 0, fmt.Errorf("matching: negative weight %d on edge (%d,%d)", e.Weight, e.U, e.V)
		}
		if e.Weight > maxW {
			maxW = e.Weight
		}
	}
	// Transform to maximization: w' = C - w. C exceeds the weight of any
	// possible matching so that maximum-weight matching is forced to maximum
	// cardinality first (any perfect matching totals more than any smaller
	// one); it also keeps every present edge's transformed weight positive
	// (0 marks "no edge" internally).
	c := maxW*int64(n/2) + 1
	b := newBlossom(n)
	defer b.release()
	if ctx != nil && ctx.Done() != nil {
		b.ctx = ctx
	}
	present := 0
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, 0, fmt.Errorf("matching: edge (%d,%d) out of range n=%d", e.U, e.V, n)
		}
		w := c - e.Weight
		if b.setEdgeMax(e.U+1, e.V+1, w) {
			present++
		}
	}
	if present == 0 {
		return nil, 0, ErrNoPerfectMatching
	}
	pairs := b.solve()
	if b.err != nil {
		return nil, 0, b.err
	}
	if pairs != n/2 {
		return nil, 0, ErrNoPerfectMatching
	}
	mate = make([]int, n)
	total = 0
	for u := 1; u <= n; u++ {
		mate[u-1] = b.match[u] - 1
		if u < b.match[u] {
			total += c - b.wOrig[u*b.stride+b.match[u]]
		}
	}
	return mate, total, nil
}

// blossom holds the dense primal–dual state, 1-indexed; ids n+1..2n are
// blossom (super-node) slots.
type blossom struct {
	n, nx  int
	stride int
	// Edge matrices indexed [u*stride+v]: eu/ev are the real endpoints the
	// (possibly blossom-level) edge stands for; ew is the doubled,
	// transformed weight (0 = absent).
	eu, ev []int32
	ew     []int64
	wOrig  []int64 // transformed (un-doubled) weights between real nodes

	lab        []int64 // dual variables
	match      []int   // matched real endpoint (per real node / blossom)
	slack      []int
	st         []int // top-level blossom containing x
	pa         []int // parent arc tail (a real vertex id)
	flowerFrom [][]int
	ffBack     []int // flat backing for the flowerFrom rows (one allocation)
	flower     [][]int
	s          []int8 // -1 free, 0 outer (S), 1 inner (T)
	vis        []int
	visT       int
	q          []int

	ctx context.Context // nil = not cancellable
	err error           // sticky ctx.Err() once cancelled
}

// cancelled polls the context (when one is set) and latches its error.
func (b *blossom) cancelled() bool {
	if b.err != nil {
		return true
	}
	if b.ctx == nil {
		return false
	}
	select {
	case <-b.ctx.Done():
		b.err = b.ctx.Err()
		return true
	default:
		return false
	}
}

// blossomPool recycles solver state between solves. The detection flow runs
// one small matching instance per conflict cluster — thousands per layout —
// and the dense O(n²) matrices plus the per-node flower rows dominated its
// allocation profile; clearing a pooled instance is much cheaper than
// faulting in fresh zeroed pages every time.
var blossomPool sync.Pool

func newBlossom(n int) *blossom {
	nn := 2*n + 1
	b, _ := blossomPool.Get().(*blossom)
	if b == nil || cap(b.ew) < nn*nn || cap(b.ffBack) < nn*(n+1) || cap(b.flower) < nn {
		b = &blossom{
			eu:         make([]int32, nn*nn),
			ev:         make([]int32, nn*nn),
			ew:         make([]int64, nn*nn),
			wOrig:      make([]int64, (n+1)*nn),
			lab:        make([]int64, nn),
			match:      make([]int, nn),
			slack:      make([]int, nn),
			st:         make([]int, nn),
			pa:         make([]int, nn),
			s:          make([]int8, nn),
			vis:        make([]int, nn),
			ffBack:     make([]int, nn*(n+1)),
			flowerFrom: make([][]int, nn),
			flower:     make([][]int, nn),
		}
	} else {
		b.eu = b.eu[:nn*nn]
		b.ev = b.ev[:nn*nn]
		b.ew = b.ew[:nn*nn]
		b.wOrig = b.wOrig[:(n+1)*nn]
		b.lab = b.lab[:nn]
		b.match = b.match[:nn]
		b.slack = b.slack[:nn]
		b.st = b.st[:nn]
		b.pa = b.pa[:nn]
		b.s = b.s[:nn]
		b.vis = b.vis[:nn]
		b.ffBack = b.ffBack[:nn*(n+1)]
		b.flowerFrom = b.flowerFrom[:nn]
		b.flower = b.flower[:nn]
		clear(b.eu)
		clear(b.ev)
		clear(b.ew)
		clear(b.wOrig)
		clear(b.lab)
		clear(b.match)
		clear(b.slack)
		clear(b.st)
		clear(b.pa)
		clear(b.s)
		clear(b.vis)
		clear(b.ffBack)
		for i := range b.flower {
			if b.flower[i] != nil {
				b.flower[i] = b.flower[i][:0]
			}
		}
		b.q = b.q[:0]
		b.visT = 0
		b.ctx = nil
		b.err = nil
	}
	b.n, b.nx, b.stride = n, n, nn
	for u := 0; u < nn; u++ {
		b.flowerFrom[u] = b.ffBack[u*(n+1) : (u+1)*(n+1) : (u+1)*(n+1)]
	}
	for u := 1; u <= n; u++ {
		b.flowerFrom[u][u] = u
		b.st[u] = u
		for v := 1; v <= n; v++ {
			b.eu[u*b.stride+v] = int32(u)
			b.ev[u*b.stride+v] = int32(v)
		}
	}
	return b
}

// release returns the solver state to the pool. The caller must be done
// reading match/wOrig.
func (b *blossom) release() { blossomPool.Put(b) }

// setEdgeMax records the max-transformed weight w (>0) for edge (u,v),
// keeping the best parallel edge. Reports whether the edge was stored or
// improved.
func (b *blossom) setEdgeMax(u, v int, w int64) bool {
	i, j := u*b.stride+v, v*b.stride+u
	if b.ew[i] >= 2*w {
		return false
	}
	b.ew[i], b.ew[j] = 2*w, 2*w // double for integral duals
	b.wOrig[i], b.wOrig[j] = w, w
	return true
}

func (b *blossom) eDelta(u, v int) int64 {
	i := u*b.stride + v
	return b.lab[int(b.eu[i])] + b.lab[int(b.ev[i])] - b.ew[int(b.eu[i])*b.stride+int(b.ev[i])]
}

func (b *blossom) updateSlack(u, x int) {
	if b.slack[x] == 0 || b.eDelta(u, x) < b.eDelta(b.slack[x], x) {
		b.slack[x] = u
	}
}

func (b *blossom) setSlack(x int) {
	b.slack[x] = 0
	for u := 1; u <= b.n; u++ {
		if b.ew[u*b.stride+x] > 0 && b.st[u] != x && b.s[b.st[u]] == 0 {
			b.updateSlack(u, x)
		}
	}
}

func (b *blossom) qPush(x int) {
	if x <= b.n {
		b.q = append(b.q, x)
		return
	}
	for _, p := range b.flower[x] {
		b.qPush(p)
	}
}

func (b *blossom) setSt(x, v int) {
	b.st[x] = v
	if x > b.n {
		for _, p := range b.flower[x] {
			b.setSt(p, v)
		}
	}
}

// getPr rotates the parity of blossom bl's cycle so that the child xr sits
// at an even position from the base, returning that position.
func (b *blossom) getPr(bl, xr int) int {
	pr := 0
	for i, p := range b.flower[bl] {
		if p == xr {
			pr = i
			break
		}
	}
	if pr%2 == 1 {
		// Reverse the cycle (excluding the base) to flip traversal parity.
		f := b.flower[bl]
		for i, j := 1, len(f)-1; i < j; i, j = i+1, j-1 {
			f[i], f[j] = f[j], f[i]
		}
		return len(f) - pr
	}
	return pr
}

func (b *blossom) setMatch(u, v int) {
	i := u*b.stride + v
	b.match[u] = int(b.ev[i])
	if u <= b.n {
		return
	}
	xr := b.flowerFrom[u][int(b.eu[i])]
	pr := b.getPr(u, xr)
	for i := 0; i < pr; i++ {
		b.setMatch(b.flower[u][i], b.flower[u][i^1])
	}
	b.setMatch(xr, v)
	// Rotate so xr becomes the new base.
	f := b.flower[u]
	b.flower[u] = append(f[pr:], f[:pr]...)
}

func (b *blossom) augment(u, v int) {
	for {
		xnv := b.st[b.match[u]]
		b.setMatch(u, v)
		if xnv == 0 {
			return
		}
		b.setMatch(xnv, b.st[b.pa[xnv]])
		u, v = b.st[b.pa[xnv]], xnv
	}
}

func (b *blossom) getLca(u, v int) int {
	b.visT++
	for u != 0 || v != 0 {
		if u != 0 {
			if b.vis[u] == b.visT {
				return u
			}
			b.vis[u] = b.visT
			u = b.st[b.match[u]]
			if u != 0 {
				u = b.st[b.pa[u]]
			}
		}
		u, v = v, u
	}
	return 0
}

func (b *blossom) addBlossom(u, lca, v int) {
	bl := b.n + 1
	for bl <= b.nx && b.st[bl] != 0 {
		bl++
	}
	if bl > b.nx {
		b.nx++
	}
	b.lab[bl] = 0
	b.s[bl] = 0
	b.match[bl] = b.match[lca]
	b.flower[bl] = b.flower[bl][:0]
	b.flower[bl] = append(b.flower[bl], lca)
	for x := u; x != lca; {
		b.flower[bl] = append(b.flower[bl], x)
		y := b.st[b.match[x]]
		b.flower[bl] = append(b.flower[bl], y)
		b.qPush(y)
		x = b.st[b.pa[y]]
	}
	// Reverse all but the base so the u-side runs backwards from lca.
	f := b.flower[bl]
	for i, j := 1, len(f)-1; i < j; i, j = i+1, j-1 {
		f[i], f[j] = f[j], f[i]
	}
	for x := v; x != lca; {
		b.flower[bl] = append(b.flower[bl], x)
		y := b.st[b.match[x]]
		b.flower[bl] = append(b.flower[bl], y)
		b.qPush(y)
		x = b.st[b.pa[y]]
	}
	b.setSt(bl, bl)
	for x := 1; x <= b.nx; x++ {
		b.ew[bl*b.stride+x] = 0
		b.ew[x*b.stride+bl] = 0
	}
	for x := 1; x <= b.n; x++ {
		b.flowerFrom[bl][x] = 0
	}
	for _, xs := range b.flower[bl] {
		for x := 1; x <= b.nx; x++ {
			if b.ew[bl*b.stride+x] == 0 ||
				(b.ew[xs*b.stride+x] > 0 && b.eDelta(xs, x) < b.eDelta(bl, x)) {
				if b.ew[xs*b.stride+x] > 0 {
					i, j := bl*b.stride+x, x*b.stride+bl
					k, l := xs*b.stride+x, x*b.stride+xs
					b.eu[i], b.ev[i], b.ew[i] = b.eu[k], b.ev[k], b.ew[k]
					b.eu[j], b.ev[j], b.ew[j] = b.eu[l], b.ev[l], b.ew[l]
				}
			}
		}
		for x := 1; x <= b.n; x++ {
			if b.flowerFrom[xs][x] != 0 {
				b.flowerFrom[bl][x] = xs
			}
		}
	}
	b.setSlack(bl)
}

func (b *blossom) expandBlossom(bl int) {
	for _, xs := range b.flower[bl] {
		b.setSt(xs, xs)
	}
	xr := b.flowerFrom[bl][int(b.eu[bl*b.stride+b.pa[bl]])]
	pr := b.getPr(bl, xr)
	for i := 0; i < pr; i += 2 {
		xs := b.flower[bl][i]
		xns := b.flower[bl][i+1]
		b.pa[xs] = int(b.eu[xns*b.stride+xs])
		b.s[xs] = 1
		b.s[xns] = 0
		b.slack[xs] = 0
		b.setSlack(xns)
		b.qPush(xns)
	}
	b.s[xr] = 1
	b.pa[xr] = b.pa[bl]
	for i := pr + 1; i < len(b.flower[bl]); i++ {
		xs := b.flower[bl][i]
		b.s[xs] = -1
		b.setSlack(xs)
	}
	b.st[bl] = 0
	b.flower[bl] = b.flower[bl][:0]
}

// onFoundEdge processes a tight edge out of the S-node containing eu toward
// the node containing ev; returns true when it augments.
func (b *blossom) onFoundEdge(eu, ev int) bool {
	u, v := b.st[eu], b.st[ev]
	switch b.s[v] {
	case -1:
		b.pa[v] = eu
		b.s[v] = 1
		nu := b.st[b.match[v]]
		b.slack[v] = 0
		b.slack[nu] = 0
		b.s[nu] = 0
		b.qPush(nu)
	case 0:
		lca := b.getLca(u, v)
		if lca == 0 {
			b.augment(u, v)
			b.augment(v, u)
			return true
		}
		b.addBlossom(u, lca, v)
	}
	return false
}

// matchingPhase grows alternating trees until an augmentation or failure.
func (b *blossom) matchingPhase() bool {
	for x := 1; x <= b.nx; x++ {
		b.s[x] = -1
		b.slack[x] = 0
	}
	b.q = b.q[:0]
	for x := 1; x <= b.nx; x++ {
		if b.st[x] == x && b.match[x] == 0 {
			b.pa[x] = 0
			b.s[x] = 0
			b.qPush(x)
		}
	}
	if len(b.q) == 0 {
		return false
	}
	for {
		if b.cancelled() {
			return false
		}
		for len(b.q) > 0 {
			u := b.q[0]
			b.q = b.q[1:]
			if b.s[b.st[u]] == 1 {
				continue
			}
			for v := 1; v <= b.n; v++ {
				if b.ew[u*b.stride+v] > 0 && b.st[u] != b.st[v] {
					if b.eDelta(u, v) == 0 {
						if b.onFoundEdge(u, v) {
							return true
						}
					} else {
						b.updateSlack(u, b.st[v])
					}
				}
			}
		}
		d := int64(1) << 62
		for x := b.n + 1; x <= b.nx; x++ {
			if b.st[x] == x && b.s[x] == 1 && b.lab[x]/2 < d {
				d = b.lab[x] / 2
			}
		}
		for x := 1; x <= b.nx; x++ {
			if b.st[x] == x && b.slack[x] != 0 {
				switch b.s[x] {
				case -1:
					if dd := b.eDelta(b.slack[x], x); dd < d {
						d = dd
					}
				case 0:
					if dd := b.eDelta(b.slack[x], x) / 2; dd < d {
						d = dd
					}
				}
			}
		}
		for u := 1; u <= b.n; u++ {
			switch b.s[b.st[u]] {
			case 0:
				if b.lab[u] <= d {
					return false // a free dual hit zero: no augmenting path
				}
				b.lab[u] -= d
			case 1:
				b.lab[u] += d
			}
		}
		for bl := b.n + 1; bl <= b.nx; bl++ {
			if b.st[bl] == bl {
				switch b.s[bl] {
				case 0:
					b.lab[bl] += 2 * d
				case 1:
					b.lab[bl] -= 2 * d
				}
			}
		}
		b.q = b.q[:0]
		for x := 1; x <= b.nx; x++ {
			if b.st[x] == x && b.slack[x] != 0 && b.st[b.slack[x]] != x &&
				b.eDelta(b.slack[x], x) == 0 {
				if b.onFoundEdge(b.slack[x], x) {
					return true
				}
			}
		}
		for bl := b.n + 1; bl <= b.nx; bl++ {
			if b.st[bl] == bl && b.s[bl] == 1 && b.lab[bl] == 0 {
				b.expandBlossom(bl)
			}
		}
	}
}

// solve runs phases to completion and returns the number of matched pairs.
func (b *blossom) solve() int {
	var wMax int64
	for u := 1; u <= b.n; u++ {
		for v := 1; v <= b.n; v++ {
			if b.ew[u*b.stride+v] > wMax {
				wMax = b.ew[u*b.stride+v]
			}
		}
	}
	for u := 1; u <= b.n; u++ {
		b.lab[u] = wMax / 2
	}
	pairs := 0
	for !b.cancelled() && b.matchingPhase() {
		pairs++
	}
	return pairs
}
