// Command benchtab regenerates the paper's evaluation artifacts on the
// synthetic benchmark suite:
//
//	benchtab -table 1 -n 5      # Table 1: conflict detection comparison
//	benchtab -table 2 -n 5      # Table 2: layout modification results
//	benchtab -fig 2             # Figure 2: PCG vs FG graph statistics
//	benchtab -fig 3             # Figures 3/4: gadget construction sizes
//
// -n limits the number of suite designs (d1..dN); the full d8 run covers
// ~160K polygons and takes a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"

	aapsm "repro"
	"repro/internal/bench"
	"repro/internal/experiments"
)

func main() {
	var (
		table = flag.Int("table", 0, "paper table to regenerate (1 or 2)")
		fig   = flag.Int("fig", 0, "paper figure to regenerate (2, 3/4)")
		n     = flag.Int("n", 5, "number of suite designs to run (1..8)")
	)
	flag.Parse()
	rules := aapsm.Default90nmRules()
	suite := bench.SmallSuite(*n)

	switch {
	case *table == 1:
		fmt.Println("Table 1: AAPSM conflict detection (quality and matching runtime)")
		fmt.Println(experiments.Table1Header())
		var avgGain float64
		for _, d := range suite {
			row, err := experiments.RunTable1Row(d, rules)
			check(err)
			fmt.Println(row)
			avgGain += row.Improvement()
		}
		fmt.Printf("average generalized-gadget matching gain: %.1f%% (paper: ~16%%)\n",
			avgGain/float64(len(suite)))

	case *table == 2:
		fmt.Println("Table 2: layout modification for a variety of designs")
		fmt.Println(experiments.Table2Header())
		minInc, maxInc, sum := 1e18, -1e18, 0.0
		for _, d := range suite {
			row, err := experiments.RunTable2Row(d, rules)
			check(err)
			fmt.Println(row)
			if row.AreaIncrease < minInc {
				minInc = row.AreaIncrease
			}
			if row.AreaIncrease > maxInc {
				maxInc = row.AreaIncrease
			}
			sum += row.AreaIncrease
		}
		fmt.Printf("area increase range %.2f%%..%.2f%%, average %.2f%% (paper: 0.7–11.8%%, avg ~4%%)\n",
			minInc, maxInc, sum/float64(len(suite)))

	case *fig == 2:
		st, err := experiments.RunFigure2(rules)
		check(err)
		fmt.Println("Figure 2: phase conflict graph vs feature graph (same layout)")
		fmt.Printf("  PCG: %3d nodes %3d edges %3d crossings\n", st.PCGNodes, st.PCGEdges, st.PCGCrossings)
		fmt.Printf("  FG : %3d nodes %3d edges %3d crossings (%d detour bends)\n",
			st.FGNodes, st.FGEdges, st.FGCrossings, st.FGBends)

	case *fig == 3 || *fig == 4:
		fmt.Println("Figures 3/4: gadget instance sizes by dual-node degree")
		fmt.Printf("%8s %18s %18s\n", "degree", "generalized(n/e)", "optimized(n/e)")
		for _, deg := range []int{3, 5, 8, 12, 20} {
			st, err := experiments.RunFigure34(deg)
			check(err)
			fmt.Printf("%8d %12d/%-6d %12d/%-6d\n", st.Degree,
				st.GeneralizedNodes, st.GeneralizedEdges,
				st.OptimizedNodes, st.OptimizedEdges)
		}

	default:
		fmt.Fprintln(os.Stderr, "benchtab: pass -table 1, -table 2, -fig 2 or -fig 3")
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(1)
	}
}
